// Traffic monitoring: the DISC paper's motivating scenario. Vehicle GPS
// records stream in; congested road segments appear as dense clusters, and
// the small ε keeps adjacent roads separate. The example tracks how
// congestion clusters evolve (emerge, grow, split, dissipate) as the window
// slides, comparing DISC's incremental cost against re-running DBSCAN.
package main

import (
	"fmt"
	"time"

	"disc"
)

func main() {
	ds, err := disc.GenerateDataset("dtg", 30000, 42)
	if err != nil {
		panic(err)
	}
	// Table II regime, scaled: small ε to separate nearby roads; τ near the
	// average ε-neighborhood population of the window.
	cfg := disc.Config{Dims: 2, Eps: 0.002, MinPts: 20}

	const (
		windowSize = 10000 // ~a few minutes of records
		stride     = 500   // refresh every 500 records (5%)
	)
	eng := disc.NewDISC(cfg)
	base := disc.NewDBSCAN(cfg)
	steps, err := disc.Steps(ds.Points, windowSize, stride)
	if err != nil {
		panic(err)
	}

	var discTime, dbscanTime time.Duration
	for i, st := range steps {
		t0 := time.Now()
		eng.Advance(st.In, st.Out)
		discTime += time.Since(t0)

		t0 = time.Now()
		base.Advance(st.In, st.Out)
		dbscanTime += time.Since(t0)

		if i == 0 || i%10 != 0 {
			continue
		}
		// Report congestion: clusters are jammed road segments.
		sizes := map[int]int{}
		for _, a := range eng.Snapshot() {
			if a.ClusterID != disc.NoCluster {
				sizes[a.ClusterID]++
			}
		}
		biggest, biggestID := 0, 0
		for cid, n := range sizes {
			if n > biggest {
				biggest, biggestID = n, cid
			}
		}
		s := eng.Stats()
		fmt.Printf("t=%5d: %2d congested segments; worst jam: cluster %d with %d vehicles; splits=%d merges=%d\n",
			i*stride, len(sizes), biggestID, biggest, s.Splits, s.Merges)
	}

	fmt.Printf("\ncumulative update time over %d strides:\n", len(steps)-1)
	fmt.Printf("  DISC:   %v\n", discTime.Round(time.Millisecond))
	fmt.Printf("  DBSCAN: %v (from scratch each stride)\n", dbscanTime.Round(time.Millisecond))
	fmt.Printf("  speedup: %.1fx\n", float64(dbscanTime)/float64(discTime))

	// The two must agree exactly: DISC is an exact method.
	last := steps[len(steps)-1]
	if err := disc.SameClustering(eng.Snapshot(), base.Snapshot(), last.Window, cfg); err != nil {
		panic("DISC diverged from DBSCAN: " + err.Error())
	}
	fmt.Println("\nclustering verified identical to DBSCAN on the final window")
}
