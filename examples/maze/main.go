// Maze quality shoot-out: the paper's Fig. 9/12 scenario. One hundred seeds
// spread trails through the plane; each trail is one ground-truth cluster.
// The example runs DISC (exact) against the summarization-based DBSTREAM and
// EDMStream and the approximate ρ²-DBSCAN on the same sliding window, and
// prints each engine's ARI against the ground truth — showing why exact
// high-resolution clustering matters once the window holds many fine
// structures.
package main

import (
	"fmt"
	"math"
	"time"

	"disc"
)

func main() {
	const (
		n          = 30000
		windowSize = 8000
		stride     = 400 // 5%
	)
	ds, err := disc.GenerateDataset("maze", n, 42)
	if err != nil {
		panic(err)
	}
	cfg := disc.Config{Dims: 2, Eps: 0.6, MinPts: 4}

	// Give the decay-based engines a forgetting horizon matched to the
	// window, the best-effort setting the paper also granted them.
	lambda := math.Ln2 / float64(windowSize)
	dbs, err := disc.NewDBStream(cfg, disc.DBStreamOptions{Lambda: lambda})
	if err != nil {
		panic(err)
	}
	edm, err := disc.NewEDMStream(cfg, disc.EDMStreamOptions{Lambda: lambda})
	if err != nil {
		panic(err)
	}
	rho, err := disc.NewRho2DBSCAN(cfg, 0.001)
	if err != nil {
		panic(err)
	}
	den, err := disc.NewDenStream(cfg, disc.DenStreamOptions{Lambda: lambda})
	if err != nil {
		panic(err)
	}
	dst, err := disc.NewDStream(cfg, disc.DStreamOptions{Lambda: lambda})
	if err != nil {
		panic(err)
	}
	engines := []disc.Engine{disc.NewDISC(cfg), rho, dbs, edm, den, dst}

	steps, err := disc.Steps(ds.Points, windowSize, stride)
	if err != nil {
		panic(err)
	}

	type score struct {
		ariSum  float64
		samples int
		elapsed time.Duration
		points  int
	}
	scores := make([]score, len(engines))
	for si, st := range steps {
		// Ground truth restricted to the current window.
		truth := make(map[int64]int, len(st.Window))
		for _, p := range st.Window {
			truth[p.ID] = ds.Truth[p.ID]
		}
		for ei, eng := range engines {
			t0 := time.Now()
			eng.Advance(st.In, st.Out)
			scores[ei].elapsed += time.Since(t0)
			scores[ei].points += len(st.In)
			if si%5 != 0 || si == 0 {
				continue
			}
			pred := make(map[int64]int, len(st.Window))
			for _, p := range st.Window {
				if a, ok := eng.Assignment(p.ID); ok {
					pred[p.ID] = a.ClusterID
				}
			}
			scores[ei].ariSum += disc.ARI(truth, pred)
			scores[ei].samples++
		}
	}

	fmt.Printf("Maze, window=%d, stride=%d, eps=%g, minPts=%d\n\n", windowSize, stride, cfg.Eps, cfg.MinPts)
	fmt.Printf("%-20s %8s %14s\n", "engine", "ARI", "µs per point")
	for ei, eng := range engines {
		sc := scores[ei]
		fmt.Printf("%-20s %8.3f %14.1f\n", eng.Name(),
			sc.ariSum/float64(sc.samples),
			float64(sc.elapsed.Nanoseconds())/1000/float64(sc.points))
	}
	fmt.Println("\nExpected shape (paper Figs. 9 and 12): DISC holds ARI near 1;")
	fmt.Println("ρ²-DBSCAN matches its quality at a higher per-point cost at this ε;")
	fmt.Println("the summarization engines (DBSTREAM, EDMStream, and the extra")
	fmt.Println("DenStream/D-Stream baselines) are fast but mix up the fine trails.")
}
