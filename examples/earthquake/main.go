// Earthquake monitoring: continuous clustering of a 4-D event stream
// (latitude, longitude, depth/10, magnitude×10 — the paper's IRIS encoding)
// under a *time-based* sliding window. Clusters are seismically active
// zones; the example watches for newly emerging zones and reports when an
// active zone dissipates.
package main

import (
	"fmt"

	"disc"
)

func main() {
	ds, err := disc.GenerateDataset("iris", 40000, 42)
	if err != nil {
		panic(err)
	}
	cfg := disc.Config{Dims: 4, Eps: 2, MinPts: 9} // Table II thresholds

	// Time-based window: the generator stamps one event per tick, so a span
	// of 6000 ticks holds ~6000 events; refresh every 500 ticks.
	slider, err := disc.NewTimeSlider(6000, 500)
	if err != nil {
		panic(err)
	}
	eng := disc.NewDISC(cfg)

	seen := map[int]bool{} // active-zone ids already reported
	for _, p := range ds.Points {
		step := slider.Push(p)
		if step == nil {
			continue
		}
		eng.Advance(step.In, step.Out)

		sizes := map[int]int{}
		var maxMag float64
		for _, q := range step.Window {
			a, ok := eng.Assignment(q.ID)
			if !ok || a.ClusterID == disc.NoCluster {
				continue
			}
			sizes[a.ClusterID]++
			if m := q.Pos[3] / 10; m > maxMag {
				maxMag = m
			}
		}
		for cid, n := range sizes {
			if !seen[cid] && n >= 30 {
				seen[cid] = true
				fmt.Printf("t=%6d: new active zone %d with %d events in window\n", p.Time, cid, n)
			}
		}
		for cid := range seen {
			if sizes[cid] == 0 {
				fmt.Printf("t=%6d: active zone %d dissipated\n", p.Time, cid)
				delete(seen, cid)
			}
		}
		s := eng.Stats()
		if s.Strides%20 == 0 {
			fmt.Printf("t=%6d: window=%d events, %d active zones, strongest M%.1f; %d searches/stride avg\n",
				p.Time, len(step.Window), len(sizes), maxMag, s.RangeSearches/s.Strides)
		}
	}
}
