// Quickstart: cluster a small synthetic 2-D stream with DISC under a
// count-based sliding window and print what the clustering looks like after
// every stride — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"math/rand"

	"disc"
)

func main() {
	// Three drifting Gaussian blobs plus background noise.
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	stream := make([]disc.Point, 0, n)
	for i := 0; i < n; i++ {
		var x, y float64
		if rng.Float64() < 0.15 {
			x, y = rng.Float64()*60, rng.Float64()*60 // noise
		} else {
			c := float64(rng.Intn(3)) * 20
			drift := float64(i) / n * 8 // blobs wander as time passes
			x = c + drift + rng.NormFloat64()*1.5
			y = c + rng.NormFloat64()*1.5
		}
		p := disc.NewPoint(int64(i), x, y)
		p.Time = int64(i)
		stream = append(stream, p)
	}

	cfg := disc.Config{Dims: 2, Eps: 2.0, MinPts: 6}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := disc.NewDISC(cfg)
	slider, err := disc.NewCountSlider(1500, 250) // window of 1500, slide by 250
	if err != nil {
		panic(err)
	}

	for _, p := range stream {
		step := slider.Push(p)
		if step == nil {
			continue
		}
		eng.Advance(step.In, step.Out)

		clusters := map[int]int{}
		noise := 0
		for _, a := range eng.Snapshot() {
			if a.ClusterID == disc.NoCluster {
				noise++
			} else {
				clusters[a.ClusterID]++
			}
		}
		s := eng.Stats()
		fmt.Printf("stride %2d: %d clusters, %3d noise points, %5d range searches so far, %d splits, %d merges\n",
			s.Strides, len(clusters), noise, s.RangeSearches, s.Splits, s.Merges)
	}

	// Look up a single point.
	if a, ok := eng.Assignment(stream[n-1].ID); ok {
		fmt.Printf("\nnewest point: label=%s cluster=%d\n", a.Label, a.ClusterID)
	}
}
