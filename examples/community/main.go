// Community tracking: the introduction of the DISC paper motivates
// continuous clustering with "community tracking over social networks".
// This example embeds users of a simulated social stream in a 2-D interest
// space (users active on similar topics land close together), clusters the
// most recent activity with DISC under a sliding window, and narrates the
// life of the communities through DISC's cluster-evolution events:
// emergence, expansion, merger, split, shrink, and dissipation.
//
// Parameters are not hand-tuned: the K-distance heuristic the paper cites
// for its own threshold selection estimates ε from a warm-up sample.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"disc"
)

// communityStream simulates user activity: communities of users drift
// through interest space, occasionally approaching one another (merges) and
// drifting apart again (splits); one community goes quiet halfway through
// (dissipation) and a fresh one appears late (emergence).
func communityStream(n int, seed int64) []disc.Point {
	rng := rand.New(rand.NewSource(seed))
	type comm struct {
		x, y, vx, vy float64
		from, to     float64 // active fraction of the stream
	}
	comms := []comm{
		{x: 10, y: 10, vx: 18, vy: 0, from: 0, to: 1},     // drifts right, meets the next one
		{x: 40, y: 10, vx: -12, vy: 0, from: 0, to: 1},    // drifts left
		{x: 25, y: 40, vx: 0, vy: 0, from: 0, to: 0.5},    // goes quiet halfway
		{x: 60, y: 60, vx: 0, vy: 0, from: 0.55, to: 1.0}, // appears late
	}
	pts := make([]disc.Point, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		// Pick an active community.
		var active []int
		for ci, c := range comms {
			if t >= c.from && t < c.to {
				active = append(active, ci)
			}
		}
		c := comms[active[rng.Intn(len(active))]]
		x := c.x + c.vx*t + rng.NormFloat64()*1.2
		y := c.y + c.vy*t + rng.NormFloat64()*1.2
		if rng.Float64() < 0.08 { // lurkers with scattered interests
			x, y = rng.Float64()*80, rng.Float64()*80
		}
		p := disc.NewPoint(int64(i), x, y)
		p.Time = int64(i)
		pts = append(pts, p)
	}
	return pts
}

func main() {
	const (
		n          = 40000
		windowSize = 6000
		stride     = 300
	)
	stream := communityStream(n, 11)

	// Estimate ε from a warm-up sample with the paper's K-distance method.
	k := disc.DefaultK(2)
	sug, err := disc.SuggestParams(stream[:windowSize], 2, k, 2000, 1)
	if err != nil {
		panic(err)
	}
	// The knee estimate is tuned for separating noise; communities in this
	// stream are diffuse, so give the radius some slack to avoid narrating
	// micro-fissures at the cluster fringe.
	cfg := disc.Config{Dims: 2, Eps: sug.Eps * 2.5, MinPts: sug.MinPts}
	fmt.Printf("K-distance estimate: eps=%.2f (used: %.2f) minPts=%d (k=%d)\n\n", sug.Eps, cfg.Eps, cfg.MinPts, k)

	var strideNo uint64
	eng := disc.NewDISC(cfg, disc.WithEventHandler(func(ev disc.Event) {
		// Narrate only macro events; expansions/shrinks are routine churn.
		switch ev.Type {
		case disc.Emergence:
			if ev.Cores >= 10 {
				fmt.Printf("t=%5.0f%%  community %d emerged (%d cores)\n", pct(strideNo, n, stride, windowSize), ev.ClusterID, ev.Cores)
			}
		case disc.Merger:
			fmt.Printf("t=%5.0f%%  communities %v merged into %d\n", pct(strideNo, n, stride, windowSize), ev.Absorbed, ev.ClusterID)
		case disc.Split:
			fmt.Printf("t=%5.0f%%  community %d split off %v\n", pct(strideNo, n, stride, windowSize), ev.ClusterID, ev.NewClusters)
		case disc.Dissipation:
			if ev.Cores >= 10 {
				fmt.Printf("t=%5.0f%%  community %d dissipated\n", pct(strideNo, n, stride, windowSize), ev.ClusterID)
			}
		}
	}))

	slider, err := disc.NewCountSlider(windowSize, stride)
	if err != nil {
		panic(err)
	}
	for _, p := range stream {
		if step := slider.Push(p); step != nil {
			strideNo++
			eng.Advance(step.In, step.Out)
		}
	}

	// Final community census.
	sizes := map[int]int{}
	for _, a := range eng.Snapshot() {
		if a.ClusterID != disc.NoCluster {
			sizes[a.ClusterID]++
		}
	}
	fmt.Printf("\nfinal window: %d communities", len(sizes))
	biggest := 0
	for _, s := range sizes {
		if s > biggest {
			biggest = s
		}
	}
	fmt.Printf(", largest has %d active users\n", biggest)
	s := eng.Stats()
	fmt.Printf("lifetime: %d splits, %d merges over %d strides\n", s.Splits, s.Merges, s.Strides)
}

// pct maps a stride counter to the stream position in percent.
func pct(strideNo uint64, n, stride, window int) float64 {
	return math.Min(100, 100*float64(window+int(strideNo)*stride)/float64(n))
}
