package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randLabeling(rng *rand.Rand, n, k int) map[int64]int {
	m := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		m[int64(i)] = rng.Intn(k)
	}
	return m
}

// Property: ARI is symmetric in its arguments.
func TestARISymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(100)
		a := randLabeling(r, n, 2+r.Intn(5))
		b := randLabeling(r, n, 2+r.Intn(5))
		return math.Abs(ARI(a, b)-ARI(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: ARI is invariant under renaming cluster ids on either side.
func TestARIRenameInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(100)
		k := 2 + r.Intn(5)
		a := randLabeling(r, n, k)
		b := randLabeling(r, n, k)
		base := ARI(a, b)
		// Apply a random injective renaming to b.
		offset := 1000 + r.Intn(1000)
		renamed := make(map[int64]int, len(b))
		for id, c := range b {
			renamed[id] = c*7919 + offset
		}
		return math.Abs(ARI(a, renamed)-base) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: ARI(x, x) == 1 for any labeling with at least two points.
func TestARISelfIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		a := randLabeling(r, n, 1+r.Intn(6))
		return ARI(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: merging two clusters of the prediction never raises ARI above
// self-agreement, and ARI stays within [-1, 1].
func TestARIBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(150)
		a := randLabeling(r, n, 2+r.Intn(6))
		b := randLabeling(r, n, 2+r.Intn(6))
		v := ARI(a, b)
		return v >= -1-1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
