// Package metrics provides clustering-quality measures and correctness
// oracles: the Adjusted Rand Index used in Figs. 9 and 10 of the DISC paper,
// and an exact-equivalence checker that verifies an incremental engine
// produces the same clustering DBSCAN would, up to cluster renaming and the
// inherent arbitrariness of border assignment.
package metrics

import (
	"fmt"

	"disc/internal/geom"
	"disc/internal/model"
)

// ARI computes the Adjusted Rand Index (Hubert & Arabie 1985) between two
// labelings of the same point set. Labelings map point id to cluster id;
// every id present in truth must be present in pred. Noise can be encoded
// either as a shared cluster (id 0) or as distinct singleton ids, matching
// how stream-clustering literature evaluates: here all points labeled
// model.NoCluster are treated as one "noise" group.
//
// The result lies in [-1, 1]; 1 means identical partitions and 0 is the
// expected value for independent random partitions.
func ARI(truth, pred map[int64]int) float64 {
	// Contingency table.
	type pair struct{ t, p int }
	cont := make(map[pair]int64)
	tSizes := make(map[int]int64)
	pSizes := make(map[int]int64)
	var n int64
	for id, t := range truth {
		p, ok := pred[id]
		if !ok {
			continue
		}
		cont[pair{t, p}]++
		tSizes[t]++
		pSizes[p]++
		n++
	}
	if n < 2 {
		return 1
	}
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }
	var sumComb, sumT, sumP float64
	for _, c := range cont {
		sumComb += choose2(c)
	}
	for _, c := range tSizes {
		sumT += choose2(c)
	}
	for _, c := range pSizes {
		sumP += choose2(c)
	}
	total := choose2(n)
	expected := sumT * sumP / total
	maxIdx := (sumT + sumP) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial (all singletons or all one)
	}
	return (sumComb - expected) / (maxIdx - expected)
}

// Labels extracts a point-id → cluster-id map from an assignment snapshot,
// mapping noise to model.NoCluster.
func Labels(snap map[int64]model.Assignment) map[int64]int {
	out := make(map[int64]int, len(snap))
	for id, a := range snap {
		out[id] = a.ClusterID
	}
	return out
}

// SameClustering verifies that got is exactly the clustering want describes,
// up to renaming of cluster ids. Both snapshots must cover the same point
// set; pts supplies coordinates for validating border assignments.
//
// The contract, matching DBSCAN's semantics:
//   - the sets of core, border, and noise points are identical;
//   - the partition of core points into clusters is identical (a bijection
//     between got's and want's cluster ids exists over cores);
//   - every border point is assigned to a cluster that contains at least one
//     core within ε of it (DBSCAN assigns a border adjacent to several
//     clusters to any one of them, so requiring equality would be wrong).
//
// A nil return means equivalent.
func SameClustering(got, want map[int64]model.Assignment, pts []model.Point, cfg model.Config) error {
	if len(got) != len(want) {
		return fmt.Errorf("point sets differ: got %d, want %d", len(got), len(want))
	}
	pos := make(map[int64]geom.Vec, len(pts))
	for _, p := range pts {
		pos[p.ID] = p.Pos
	}
	// Label sets must match.
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			return fmt.Errorf("point %d missing from got", id)
		}
		if g.Label != w.Label {
			return fmt.Errorf("point %d: label %v, want %v", id, g.Label, w.Label)
		}
		if w.Label == model.Noise && g.ClusterID != model.NoCluster {
			return fmt.Errorf("noise point %d carries cluster id %d", id, g.ClusterID)
		}
	}
	// Core partition must be identical up to renaming: build the bijection.
	g2w := make(map[int]int)
	w2g := make(map[int]int)
	for id, w := range want {
		if w.Label != model.Core {
			continue
		}
		g := got[id]
		if g.ClusterID == model.NoCluster {
			return fmt.Errorf("core point %d has no cluster id in got", id)
		}
		if mapped, ok := g2w[g.ClusterID]; ok {
			if mapped != w.ClusterID {
				return fmt.Errorf("got cluster %d maps to both want clusters %d and %d (split missed)", g.ClusterID, mapped, w.ClusterID)
			}
		} else {
			g2w[g.ClusterID] = w.ClusterID
		}
		if mapped, ok := w2g[w.ClusterID]; ok {
			if mapped != g.ClusterID {
				return fmt.Errorf("want cluster %d maps to both got clusters %d and %d (merge missed)", w.ClusterID, mapped, g.ClusterID)
			}
		} else {
			w2g[w.ClusterID] = g.ClusterID
		}
	}
	// Border validity: some core ε-neighbor must share the border's cluster.
	for id, g := range got {
		if g.Label != model.Border {
			continue
		}
		if g.ClusterID == model.NoCluster {
			return fmt.Errorf("border point %d has no cluster id", id)
		}
		p, ok := pos[id]
		if !ok {
			return fmt.Errorf("no coordinates supplied for border point %d", id)
		}
		valid := false
		for cid, c := range pos {
			if cid == id {
				continue
			}
			other := got[cid]
			if other.Label == model.Core && other.ClusterID == g.ClusterID &&
				geom.WithinEps(p, c, cfg.Dims, cfg.Eps) {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("border point %d assigned to cluster %d with no core ε-neighbor in it", id, g.ClusterID)
		}
	}
	return nil
}

// Purity returns the fraction of points whose predicted cluster's dominant
// truth label matches their own truth label; a coarse secondary quality
// measure used in examples.
func Purity(truth, pred map[int64]int) float64 {
	byCluster := make(map[int]map[int]int)
	var n int
	for id, p := range pred {
		t, ok := truth[id]
		if !ok {
			continue
		}
		m, ok := byCluster[p]
		if !ok {
			m = make(map[int]int)
			byCluster[p] = m
		}
		m[t]++
		n++
	}
	if n == 0 {
		return 1
	}
	var correct int
	for _, m := range byCluster {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(n)
}
