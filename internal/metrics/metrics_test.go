package metrics

import (
	"math"
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
)

func TestARIIdenticalPartitions(t *testing.T) {
	truth := map[int64]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3}
	if got := ARI(truth, truth); got != 1 {
		t.Fatalf("ARI(self) = %v, want 1", got)
	}
	// Renamed cluster ids are still a perfect match.
	renamed := map[int64]int{1: 9, 2: 9, 3: 7, 4: 7, 5: 4}
	if got := ARI(truth, renamed); got != 1 {
		t.Fatalf("ARI(renamed) = %v, want 1", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Classic example: truth = {a,a,a,b,b,b}, pred = {a,a,b,b,c,c}.
	truth := map[int64]int{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 2}
	pred := map[int64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3}
	// Contingency: rows (3,3), cols (2,2,2); sum C(n_ij,2) = 1+0+0+0+1+1... :
	// cells: [2,1,0 / 0,1,2] -> sumComb = 1+0+0+0+0+1 = 2
	// sumT = 2*C(3,2)=6, sumP = 3*C(2,2... C(2,2)? C(2,2)=1 each -> 3
	// expected = 6*3/C(6,2)=18/15=1.2; max=(6+3)/2=4.5
	// ARI = (2-1.2)/(4.5-1.2) = 0.8/3.3 = 0.242424...
	want := 0.8 / 3.3
	if got := ARI(truth, pred); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ARI = %v, want %v", got, want)
	}
}

func TestARIIndependentPartitionsNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := map[int64]int{}
	pred := map[int64]int{}
	for i := int64(0); i < 5000; i++ {
		truth[i] = rng.Intn(5)
		pred[i] = rng.Intn(5)
	}
	if got := ARI(truth, pred); math.Abs(got) > 0.02 {
		t.Fatalf("ARI of independent partitions = %v, want ~0", got)
	}
}

func TestARISmallInputs(t *testing.T) {
	if got := ARI(map[int64]int{}, map[int64]int{}); got != 1 {
		t.Fatalf("ARI(empty) = %v", got)
	}
	if got := ARI(map[int64]int{1: 1}, map[int64]int{1: 2}); got != 1 {
		t.Fatalf("ARI(singleton) = %v", got)
	}
}

func TestARIMissingPredictionsIgnored(t *testing.T) {
	truth := map[int64]int{1: 1, 2: 1, 3: 2, 4: 2}
	pred := map[int64]int{1: 5, 2: 5} // ids 3,4 missing
	if got := ARI(truth, pred); got != 1 {
		t.Fatalf("ARI over intersection = %v, want 1", got)
	}
}

func TestLabels(t *testing.T) {
	snap := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 3},
		2: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	l := Labels(snap)
	if l[1] != 3 || l[2] != model.NoCluster {
		t.Fatalf("Labels = %v", l)
	}
}

func mkPts(coords ...[2]float64) []model.Point {
	pts := make([]model.Point, len(coords))
	for i, c := range coords {
		pts[i] = model.Point{ID: int64(i + 1), Pos: geom.NewVec(c[0], c[1])}
	}
	return pts
}

func TestSameClusteringAccepts(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 2}
	pts := mkPts([2]float64{0, 0}, [2]float64{1, 0}, [2]float64{10, 10})
	want := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Core, ClusterID: 1},
		3: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	got := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 42}, // renamed cluster
		2: {Label: model.Core, ClusterID: 42},
		3: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	if err := SameClustering(got, want, pts, cfg); err != nil {
		t.Fatalf("equivalent clusterings rejected: %v", err)
	}
}

func TestSameClusteringRejectsLabelMismatch(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 2}
	pts := mkPts([2]float64{0, 0}, [2]float64{1, 0})
	want := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Core, ClusterID: 1},
	}
	got := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	if err := SameClustering(got, want, pts, cfg); err == nil {
		t.Fatal("label mismatch accepted")
	}
}

func TestSameClusteringRejectsMissedSplit(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 1}
	pts := mkPts([2]float64{0, 0}, [2]float64{10, 10})
	want := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Core, ClusterID: 2},
	}
	got := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 5},
		2: {Label: model.Core, ClusterID: 5}, // merged: wrong
	}
	if err := SameClustering(got, want, pts, cfg); err == nil {
		t.Fatal("missed split accepted")
	}
}

func TestSameClusteringRejectsMissedMerge(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 1}
	pts := mkPts([2]float64{0, 0}, [2]float64{1, 0})
	want := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Core, ClusterID: 1},
	}
	got := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Core, ClusterID: 2}, // split: wrong
	}
	if err := SameClustering(got, want, pts, cfg); err == nil {
		t.Fatal("missed merge accepted")
	}
}

func TestSameClusteringBorderValidity(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.1, MinPts: 3}
	// 1,2,3 cluster around origin (cores); 4 is border of that cluster;
	// 5 is a distant core-pairless noise point.
	pts := mkPts([2]float64{0, 0}, [2]float64{1, 0}, [2]float64{0, 1},
		[2]float64{1.9, 0}, [2]float64{30, 30})
	want := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 1},
		2: {Label: model.Core, ClusterID: 1},
		3: {Label: model.Core, ClusterID: 1},
		4: {Label: model.Border, ClusterID: 1},
		5: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	okGot := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 7},
		2: {Label: model.Core, ClusterID: 7},
		3: {Label: model.Core, ClusterID: 7},
		4: {Label: model.Border, ClusterID: 7},
		5: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	if err := SameClustering(okGot, want, pts, cfg); err != nil {
		t.Fatalf("valid border rejected: %v", err)
	}
	badGot := map[int64]model.Assignment{
		1: {Label: model.Core, ClusterID: 7},
		2: {Label: model.Core, ClusterID: 7},
		3: {Label: model.Core, ClusterID: 7},
		4: {Label: model.Border, ClusterID: 99}, // no core neighbor in 99
		5: {Label: model.Noise, ClusterID: model.NoCluster},
	}
	if err := SameClustering(badGot, want, pts, cfg); err == nil {
		t.Fatal("border with phantom cluster accepted")
	}
}

func TestSameClusteringSizeMismatch(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 1}
	if err := SameClustering(map[int64]model.Assignment{}, map[int64]model.Assignment{
		1: {Label: model.Noise},
	}, nil, cfg); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPurity(t *testing.T) {
	truth := map[int64]int{1: 1, 2: 1, 3: 2, 4: 2}
	perfect := map[int64]int{1: 10, 2: 10, 3: 20, 4: 20}
	if got := Purity(truth, perfect); got != 1 {
		t.Fatalf("Purity(perfect) = %v", got)
	}
	mixed := map[int64]int{1: 10, 2: 10, 3: 10, 4: 10}
	if got := Purity(truth, mixed); got != 0.5 {
		t.Fatalf("Purity(mixed) = %v, want 0.5", got)
	}
}
