package dbscan

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

// naive is an O(n²) reference DBSCAN used to validate the indexed one.
func naive(points []model.Point, cfg model.Config) map[int64]model.Assignment {
	n := len(points)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && geom.WithinEps(points[i].Pos, points[j].Pos, cfg.Dims, cfg.Eps) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	core := make([]bool, n)
	for i := range core {
		core[i] = len(adj[i])+1 >= cfg.MinPts
	}
	cid := make([]int, n)
	next := 0
	for i := 0; i < n; i++ {
		if !core[i] || cid[i] != 0 {
			continue
		}
		next++
		stack := []int{i}
		cid[i] = next
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range adj[c] {
				if core[nb] && cid[nb] == 0 {
					cid[nb] = next
					stack = append(stack, nb)
				}
			}
		}
	}
	out := make(map[int64]model.Assignment, n)
	for i, p := range points {
		switch {
		case core[i]:
			out[p.ID] = model.Assignment{Label: model.Core, ClusterID: cid[i]}
		default:
			// Border iff some core neighbor exists.
			assigned := false
			for _, nb := range adj[i] {
				if core[nb] {
					out[p.ID] = model.Assignment{Label: model.Border, ClusterID: cid[nb]}
					assigned = true
					break
				}
			}
			if !assigned {
				out[p.ID] = model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
			}
		}
	}
	return out
}

func randomPoints(rng *rand.Rand, n, dims int) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		var v geom.Vec
		if rng.Float64() < 0.7 {
			c := float64(rng.Intn(4)) * 10
			for d := 0; d < dims; d++ {
				v[d] = c + rng.NormFloat64()*1.5
			}
		} else {
			for d := 0; d < dims; d++ {
				v[d] = rng.Float64() * 40
			}
		}
		pts[i] = model.Point{ID: int64(i), Pos: v}
	}
	return pts
}

func TestRunMatchesNaive(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(dims) * 31))
		pts := randomPoints(rng, 400, dims)
		for _, minPts := range []int{1, 4, 10} {
			cfg := model.Config{Dims: dims, Eps: 2.0, MinPts: minPts}
			got := Run(pts, cfg)
			want := naive(pts, cfg)
			if err := metrics.SameClustering(got, want, pts, cfg); err != nil {
				t.Fatalf("dims=%d minPts=%d: %v", dims, minPts, err)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 2}
	if got := Run(nil, cfg); len(got) != 0 {
		t.Fatal("empty input produced assignments")
	}
	one := []model.Point{{ID: 7, Pos: geom.NewVec(0, 0)}}
	got := Run(one, cfg)
	if got[7].Label != model.Noise {
		t.Fatalf("singleton labeled %v, want noise", got[7].Label)
	}
	// With MinPts 1 a singleton is its own core cluster.
	got = Run(one, model.Config{Dims: 2, Eps: 1, MinPts: 1})
	if got[7].Label != model.Core || got[7].ClusterID == model.NoCluster {
		t.Fatalf("singleton with MinPts=1: %+v", got[7])
	}
}

func TestEngineSlidingWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	data := randomPoints(rng, 600, 2)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	steps, _ := window.Steps(data, 200, 40)
	eng := New(cfg)
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := Run(st.Window, cfg)
		if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	// One range search per window point per stride, plus expansion searches;
	// at least |W| per stride.
	if eng.Stats().RangeSearches < int64(len(steps))*200 {
		t.Errorf("searches = %d, want >= %d", eng.Stats().RangeSearches, len(steps)*200)
	}
}

func TestEngineAssignmentLookup(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 2}
	eng := New(cfg)
	eng.Advance([]model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)},
		{ID: 2, Pos: geom.NewVec(1, 0)},
	}, nil)
	a, ok := eng.Assignment(1)
	if !ok || a.Label != model.Core {
		t.Fatalf("Assignment(1) = %+v, %v", a, ok)
	}
	if _, ok := eng.Assignment(99); ok {
		t.Fatal("unknown id tracked")
	}
}
