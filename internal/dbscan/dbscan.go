// Package dbscan implements the classic density-based clustering algorithm
// of Ester et al. (KDD 1996). It serves two roles in this repository: the
// from-scratch baseline of the DISC evaluation (clusters are recomputed over
// the whole window at every stride), and the ground-truth oracle against
// which the incremental engines are verified point-for-point.
package dbscan

import (
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/rtree"
)

// Run executes DBSCAN over a static set of points and returns an assignment
// per point id. A point is core iff at least cfg.MinPts points (itself
// included) lie within cfg.Eps of it; clusters are maximal sets of
// density-connected cores plus their borders. Cluster ids are assigned from
// 1 in discovery order.
func Run(points []model.Point, cfg model.Config) map[int64]model.Assignment {
	tree := rtree.New(cfg.Dims)
	for _, p := range points {
		tree.Insert(p.ID, p.Pos)
	}
	return runOnTree(points, tree, cfg, nil)
}

// runOnTree is the shared implementation: it labels points using an already
// populated R-tree. If searches is non-nil it accumulates the number of
// range queries issued.
func runOnTree(points []model.Point, tree *rtree.T, cfg model.Config, searches *int64) map[int64]model.Assignment {
	type state struct {
		pos     geom.Vec
		visited bool
		core    bool
		cid     int
	}
	states := make(map[int64]*state, len(points))
	for _, p := range points {
		states[p.ID] = &state{pos: p.Pos}
	}

	neighbors := func(pos geom.Vec) []int64 {
		if searches != nil {
			*searches++
		}
		var out []int64
		tree.SearchBall(pos, cfg.Eps, func(id int64, _ geom.Vec) bool {
			out = append(out, id)
			return true
		})
		return out
	}

	nextCID := 0
	for _, p := range points {
		s := states[p.ID]
		if s.visited {
			continue
		}
		s.visited = true
		seed := neighbors(s.pos)
		if len(seed) < cfg.MinPts {
			continue // tentatively noise; may become border via a later core
		}
		// Seeding phase: p starts a new cluster; growing phase: BFS over
		// directly density-reachable points.
		nextCID++
		s.core = true
		s.cid = nextCID
		queue := make([]int64, 0, len(seed))
		for _, q := range seed {
			if q != p.ID {
				queue = append(queue, q)
			}
		}
		for len(queue) > 0 {
			qid := queue[0]
			queue = queue[1:]
			qs := states[qid]
			if qs.cid == 0 {
				qs.cid = nextCID // border or core joins the cluster
			}
			if qs.visited {
				continue
			}
			qs.visited = true
			qn := neighbors(qs.pos)
			if len(qn) < cfg.MinPts {
				continue // border: do not expand
			}
			qs.core = true
			qs.cid = nextCID
			for _, r := range qn {
				rs := states[r]
				if !rs.visited || rs.cid == 0 {
					queue = append(queue, r)
				}
			}
		}
	}

	out := make(map[int64]model.Assignment, len(states))
	for id, s := range states {
		switch {
		case s.core:
			out[id] = model.Assignment{Label: model.Core, ClusterID: s.cid}
		case s.cid != 0:
			out[id] = model.Assignment{Label: model.Border, ClusterID: s.cid}
		default:
			out[id] = model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
		}
	}
	return out
}

// Engine is the sliding-window wrapper: it keeps the R-tree maintained
// incrementally but recomputes all labels from scratch on every Advance,
// exactly like the DBSCAN baseline of the paper's evaluation.
type Engine struct {
	cfg     model.Config
	tree    *rtree.T
	window  map[int64]model.Point
	current map[int64]model.Assignment
	stats   model.Stats
}

// New returns a DBSCAN engine for the given configuration. It panics on an
// invalid configuration; use cfg.Validate to pre-check user input.
func New(cfg model.Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{
		cfg:     cfg,
		tree:    rtree.New(cfg.Dims),
		window:  make(map[int64]model.Point),
		current: make(map[int64]model.Assignment),
	}
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "DBSCAN" }

// Advance implements model.Engine: it applies the window delta and re-runs
// DBSCAN over the whole window.
func (e *Engine) Advance(in, out []model.Point) {
	for _, p := range out {
		if _, ok := e.window[p.ID]; !ok {
			continue
		}
		e.tree.Delete(p.ID, p.Pos)
		delete(e.window, p.ID)
	}
	for _, p := range in {
		e.window[p.ID] = p
		e.tree.Insert(p.ID, p.Pos)
	}
	pts := make([]model.Point, 0, len(e.window))
	for _, p := range e.window {
		pts = append(pts, p)
	}
	before := e.tree.Stats()
	e.current = runOnTree(pts, e.tree, e.cfg, &e.stats.RangeSearches)
	after := e.tree.Stats()
	e.stats.NodeAccesses += after.NodeAccesses - before.NodeAccesses
	e.stats.Strides++
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	a, ok := e.current[id]
	return a, ok
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.current))
	for id, a := range e.current {
		out[id] = a
	}
	return out
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }
