package dyncon

import (
	"math/rand"
	"slices"
	"testing"
)

// refGraph is the brute-force reference: an adjacency-set graph whose
// components are recomputed by BFS on every query.
type refGraph struct {
	adj map[int64]map[int64]struct{}
}

func newRef() *refGraph { return &refGraph{adj: make(map[int64]map[int64]struct{})} }

func (g *refGraph) addVertex(id int64) bool {
	if _, ok := g.adj[id]; ok {
		return false
	}
	g.adj[id] = make(map[int64]struct{})
	return true
}

func (g *refGraph) removeVertex(id int64) bool {
	n, ok := g.adj[id]
	if !ok || len(n) != 0 {
		return false
	}
	delete(g.adj, id)
	return true
}

func (g *refGraph) addEdge(u, v int64) bool {
	nu, ok1 := g.adj[u]
	nv, ok2 := g.adj[v]
	if !ok1 || !ok2 || u == v {
		return false
	}
	if _, dup := nu[v]; dup {
		return false
	}
	nu[v] = struct{}{}
	nv[u] = struct{}{}
	return true
}

func (g *refGraph) removeEdge(u, v int64) bool {
	nu, ok := g.adj[u]
	if !ok {
		return false
	}
	if _, present := nu[v]; !present {
		return false
	}
	delete(nu, v)
	delete(g.adj[v], u)
	return true
}

func (g *refGraph) edgeCount() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// component returns the sorted members of id's component.
func (g *refGraph) component(id int64) []int64 {
	seen := map[int64]bool{id: true}
	stack := []int64{id}
	var out []int64
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, c)
		for w := range g.adj[c] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	slices.Sort(out)
	return out
}

// checkAgainstRef compares the forest's full component structure with the
// reference graph's.
func checkAgainstRef(t *testing.T, f *Forest, g *refGraph) {
	t.Helper()
	if f.NumVertices() != len(g.adj) {
		t.Fatalf("NumVertices = %d, ref %d", f.NumVertices(), len(g.adj))
	}
	if f.NumEdges() != g.edgeCount() {
		t.Fatalf("NumEdges = %d, ref %d", f.NumEdges(), g.edgeCount())
	}
	for id := range g.adj {
		want := g.component(id)
		c, ok := f.Root(id)
		if !ok {
			t.Fatalf("Root(%d): vertex missing", id)
		}
		if c.Size() != len(want) {
			t.Fatalf("component of %d: Size=%d, ref %d", id, c.Size(), len(want))
		}
		got := f.AppendMembers(c, nil)
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("component of %d: members %v, ref %v", id, got, want)
		}
		for _, w := range want {
			if conn, ok := f.Connected(id, w); !ok || !conn {
				t.Fatalf("Connected(%d,%d) = %v,%v; ref connected", id, w, conn, ok)
			}
		}
	}
}

func TestForestBasics(t *testing.T) {
	f := New()
	if !f.AddVertex(1) || !f.AddVertex(2) || !f.AddVertex(3) {
		t.Fatal("fresh vertex adds must succeed")
	}
	if f.AddVertex(2) {
		t.Fatal("duplicate vertex add must fail")
	}
	if f.AddEdge(1, 1) {
		t.Fatal("self-loop must fail")
	}
	if f.AddEdge(1, 9) {
		t.Fatal("edge to missing vertex must fail")
	}
	if !f.AddEdge(1, 2) {
		t.Fatal("fresh edge add must succeed")
	}
	if f.AddEdge(2, 1) {
		t.Fatal("duplicate edge add (either orientation) must fail")
	}
	if conn, ok := f.Connected(1, 2); !ok || !conn {
		t.Fatal("1-2 must be connected")
	}
	if conn, ok := f.Connected(1, 3); !ok || conn {
		t.Fatal("1-3 must not be connected")
	}
	if f.RemoveVertex(1) {
		t.Fatal("removing a vertex with edges must fail")
	}
	if f.RemoveEdge(1, 3) {
		t.Fatal("removing an absent edge must fail")
	}
	if !f.RemoveEdge(2, 1) {
		t.Fatal("removing a present edge must succeed")
	}
	if !f.RemoveVertex(1) || !f.RemoveVertex(2) || !f.RemoveVertex(3) {
		t.Fatal("removing isolated vertices must succeed")
	}
	if f.RemoveVertex(3) {
		t.Fatal("removing an absent vertex must fail")
	}
	if f.NumVertices() != 0 || f.NumEdges() != 0 {
		t.Fatalf("forest not empty: %d vertices, %d edges", f.NumVertices(), f.NumEdges())
	}
}

// TestForestReplacement pins the replacement-edge mechanics on a ring:
// cutting any single ring edge must keep the ring connected (the non-tree
// closing edge is promoted), and cutting a second edge must split it.
func TestForestReplacement(t *testing.T) {
	const n = 64
	f := New()
	g := newRef()
	for i := int64(0); i < n; i++ {
		f.AddVertex(i)
		g.addVertex(i)
	}
	for i := int64(0); i < n; i++ {
		j := (i + 1) % n
		if !f.AddEdge(i, j) {
			t.Fatalf("ring edge %d-%d", i, j)
		}
		g.addEdge(i, j)
	}
	if !f.RemoveEdge(10, 11) {
		t.Fatal("ring cut failed")
	}
	g.removeEdge(10, 11)
	if conn, _ := f.Connected(10, 11); !conn {
		t.Fatal("ring must stay connected after one cut (replacement edge)")
	}
	if !f.RemoveEdge(40, 41) {
		t.Fatal("second cut failed")
	}
	g.removeEdge(40, 41)
	// The ring is now two arcs: {11..40} and {41..63, 0..10}.
	if conn, _ := f.Connected(11, 41); conn {
		t.Fatal("two cuts must split the ring")
	}
	if conn, _ := f.Connected(10, 41); !conn {
		t.Fatal("10 and 41 lie on the same surviving arc")
	}
	checkAgainstRef(t, f, g)
	if s := f.Stats(); s.ReplacementSearches == 0 {
		t.Fatal("expected at least one replacement search")
	}
}

// TestForestRandomOps runs randomized add/remove sequences, verifying the
// full component structure against the brute-force reference after every
// batch.
func TestForestRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		f := New()
		g := newRef()
		var verts []int64
		next := int64(0)
		randVert := func() int64 {
			return verts[rng.Intn(len(verts))]
		}
		for step := 0; step < 600; step++ {
			switch op := rng.Intn(10); {
			case op < 3 || len(verts) < 2: // add vertex
				id := next
				next++
				if f.AddVertex(id) != g.addVertex(id) {
					t.Fatalf("seed %d step %d: AddVertex(%d) disagrees", seed, step, id)
				}
				verts = append(verts, id)
			case op < 7: // add edge
				u, v := randVert(), randVert()
				if f.AddEdge(u, v) != g.addEdge(u, v) {
					t.Fatalf("seed %d step %d: AddEdge(%d,%d) disagrees", seed, step, u, v)
				}
			case op < 9: // remove edge (sometimes absent)
				u, v := randVert(), randVert()
				if f.RemoveEdge(u, v) != g.removeEdge(u, v) {
					t.Fatalf("seed %d step %d: RemoveEdge(%d,%d) disagrees", seed, step, u, v)
				}
			default: // remove vertex: detach its edges first, then remove
				id := randVert()
				for w := range g.adj[id] {
					if !f.RemoveEdge(id, w) {
						t.Fatalf("seed %d step %d: detach %d-%d failed", seed, step, id, w)
					}
					g.removeEdge(id, w)
				}
				if f.RemoveVertex(id) != g.removeVertex(id) {
					t.Fatalf("seed %d step %d: RemoveVertex(%d) disagrees", seed, step, id)
				}
				verts = slices.DeleteFunc(verts, func(v int64) bool { return v == id })
			}
			if step%25 == 0 {
				checkAgainstRef(t, f, g)
			}
		}
		checkAgainstRef(t, f, g)
	}
}

// TestForestReset pins that Reset empties the structure but keeps stats.
func TestForestReset(t *testing.T) {
	f := New()
	f.AddVertex(1)
	f.AddVertex(2)
	f.AddEdge(1, 2)
	ops := f.Stats().Ops()
	if ops == 0 {
		t.Fatal("stats must count ops")
	}
	f.Reset()
	if f.NumVertices() != 0 || f.NumEdges() != 0 {
		t.Fatal("Reset must empty the forest")
	}
	if f.HasVertex(1) {
		t.Fatal("vertex survived Reset")
	}
	if f.Stats().Ops() != ops {
		t.Fatal("Reset must not clear stats")
	}
	if !f.AddVertex(1) || !f.AddVertex(2) || !f.AddEdge(1, 2) {
		t.Fatal("forest must be reusable after Reset")
	}
	if conn, ok := f.Connected(1, 2); !ok || !conn {
		t.Fatal("rebuilt edge must connect")
	}
}

// FuzzForest drives the forest with an arbitrary op tape, comparing against
// the brute-force reference throughout.
func FuzzForest(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 2, 3, 1, 2})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 1, 0, 1, 1, 2, 0, 1, 1, 2, 2, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		fo := New()
		g := newRef()
		const maxID = 16
		for i := 0; i+1 < len(tape) && i < 400; i += 2 {
			op, arg := tape[i]%4, tape[i+1]
			u := int64(arg % maxID)
			v := int64((arg / maxID) % maxID)
			switch op {
			case 0:
				if fo.AddVertex(u) != g.addVertex(u) {
					t.Fatalf("AddVertex(%d) disagrees", u)
				}
			case 1:
				if fo.AddEdge(u, v) != g.addEdge(u, v) {
					t.Fatalf("AddEdge(%d,%d) disagrees", u, v)
				}
			case 2:
				if fo.RemoveEdge(u, v) != g.removeEdge(u, v) {
					t.Fatalf("RemoveEdge(%d,%d) disagrees", u, v)
				}
			case 3:
				if fo.RemoveVertex(u) != g.removeVertex(u) {
					t.Fatalf("RemoveVertex(%d) disagrees", u)
				}
			}
		}
		for id := range g.adj {
			want := g.component(id)
			c, ok := fo.Root(id)
			if !ok {
				t.Fatalf("vertex %d missing", id)
			}
			got := fo.AppendMembers(c, nil)
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("component of %d: %v, ref %v", id, got, want)
			}
		}
	})
}
