// Package dyncon maintains the connected components of an undirected graph
// under vertex and edge insertions AND deletions — dynamic connectivity.
//
// DISC consults it for the CLUSTER connectivity check (Algorithm 2): instead
// of re-discovering the density-connected components of the minimal bonding
// cores with a fresh multi-starter BFS every stride, the engine keeps a
// Forest over the core-adjacency graph (vertices: current cores; edges:
// ε-adjacent core pairs) and applies only the stride's delta — ex-cores
// leave, neo-cores arrive — so a component query costs a tree walk instead
// of a traversal of the component ("Dynamic DBSCAN with Euler Tour
// Sequences", arXiv 2503.08246, applies the same structure to fully-dynamic
// DBSCAN).
//
// # Structure
//
// A spanning forest of the graph is represented as Euler tour sequences:
// the tour of each spanning tree — one self-loop occurrence per vertex plus
// the two directed arcs of every tree edge — is stored in a balanced search
// tree keyed by tour position. We use treaps with parent pointers and
// deterministic pseudo-random priorities (splitmix64 of an insertion
// counter): two vertices are connected iff their self-loop nodes reach the
// same treap root, and link/cut are O(log n) expected splits and merges of
// the tour.
//
// Non-tree edges (edges whose endpoints were already connected when the
// edge was inserted) live in per-vertex adjacency sets. Deleting a non-tree
// edge never changes connectivity. Deleting a tree edge cuts the tour in
// two; a replacement edge, if one exists, must be a non-tree edge with one
// endpoint on each side, so the smaller side (by maintained vertex count)
// is searched for one. Each tour node additionally aggregates the non-tree
// degree of the self-loops below it (ntSum), so the search descends only
// into subtrees that actually hold non-tree edges: a side with none is
// dismissed in O(1), and in general the search costs O(k log n) for k
// candidate edges scanned rather than O(side size). This is the
// replacement-edge scheme of Henzinger–King without the level hierarchy of
// Holm–de Lichtenberg–Thorup: worst-case deletions can rescan edges, but
// the stride deltas DISC applies are small and the common case — a churned
// chain or ring where MS-BFS would traverse the whole component — is
// polylogarithmic.
//
// # Concurrency
//
// Mutating calls (Add/Remove) require external serialization. The query
// surface — HasVertex, Root, Connected, Size, AppendMembers, NumVertices,
// NumEdges — is strictly read-only (root walks never rotate, splay, or
// path-compress), so any number of queries may run concurrently with each
// other, as the parallel CLUSTER phase does, provided no mutation is in
// flight.
//
// # Strictness
//
// Every mutation reports whether the forest state matched the caller's
// expectation (vertex absent on add, edge present on remove, ...). A false
// return means the caller's view of the graph has diverged from the
// forest's — DISC treats that as desync and rebuilds from scratch — and
// leaves the forest unchanged.
package dyncon

// Stats counts the structural work the forest has performed since creation
// (Reset does not clear it). All fields are monotonic.
type Stats struct {
	VertexAdds    int64
	VertexRemoves int64
	EdgeAdds      int64
	EdgeRemoves   int64
	Links         int64 // tree-edge attachments (including promoted replacements)
	Cuts          int64 // tree-edge detachments
	// ReplacementSearches counts tree-edge deletions that had candidate
	// non-tree edges to scan; ReplacementScans counts the candidate edges
	// examined across those searches.
	ReplacementSearches int64
	ReplacementScans    int64
}

// Ops returns the total number of graph mutations applied.
func (s Stats) Ops() int64 {
	return s.VertexAdds + s.VertexRemoves + s.EdgeAdds + s.EdgeRemoves
}

// node is one Euler-tour occurrence: a vertex self-loop (loop=true, vid
// valid) or one directed arc of a tree edge. Nodes form a treap ordered by
// tour position (no explicit keys; position is implicit) with max-heap
// priorities.
type node struct {
	parent, left, right *node
	prio                uint64
	vid                 int64
	loop                bool
	ntDeg               int32 // self-loops: incident non-tree edges
	size                int32 // subtree: total nodes
	vcount              int32 // subtree: self-loops (= vertices)
	ntSum               int32 // subtree: sum of ntDeg
}

// update recomputes x's aggregates from its children.
func (x *node) update() {
	x.size, x.ntSum = 1, x.ntDeg
	if x.loop {
		x.vcount = 1
	} else {
		x.vcount = 0
	}
	if l := x.left; l != nil {
		x.size += l.size
		x.vcount += l.vcount
		x.ntSum += l.ntSum
	}
	if r := x.right; r != nil {
		x.size += r.size
		x.vcount += r.vcount
		x.ntSum += r.ntSum
	}
}

// merge concatenates two treaps (every position in a before every position
// in b) and returns the new root, with its parent pointer cleared.
func merge(a, b *node) *node {
	if a == nil {
		if b != nil {
			b.parent = nil
		}
		return b
	}
	if b == nil {
		a.parent = nil
		return a
	}
	if a.prio >= b.prio {
		r := merge(a.right, b)
		a.right = r
		r.parent = a
		a.update()
		a.parent = nil
		return a
	}
	l := merge(a, b.left)
	b.left = l
	l.parent = b
	b.update()
	b.parent = nil
	return b
}

// splitBefore detaches the tour into (everything before x, x and everything
// after) by walking x's root path, reassembling each severed ancestor
// segment onto the proper side.
func splitBefore(x *node) (l, r *node) {
	l = x.left
	if l != nil {
		l.parent = nil
		x.left = nil
	}
	p := x.parent
	x.parent = nil
	x.update()
	r = x
	cur := x
	for p != nil {
		next := p.parent
		fromRight := p.right == cur
		if fromRight {
			// p and its left subtree precede x: prepend to l.
			p.right = nil
			p.parent = nil
			p.update()
			l = merge(p, l)
		} else {
			// p and its right subtree follow x: append to r.
			p.left = nil
			p.parent = nil
			p.update()
			r = merge(r, p)
		}
		cur, p = p, next
	}
	return l, r
}

// removeNode deletes x (known to be in root's treap) and returns the new
// root, which may be nil.
func removeNode(root, x *node) *node {
	sub := merge(x.left, x.right)
	p := x.parent
	if sub != nil {
		sub.parent = p
	}
	x.parent, x.left, x.right = nil, nil, nil
	if p == nil {
		return sub
	}
	if p.left == x {
		p.left = sub
	} else {
		p.right = sub
	}
	for q := p; ; q = q.parent {
		q.update()
		if q.parent == nil {
			return q
		}
	}
}

// index returns x's tour position, for ordering the two arcs of a cut.
func index(x *node) int32 {
	var i int32
	if x.left != nil {
		i = x.left.size
	}
	for cur := x; cur.parent != nil; cur = cur.parent {
		p := cur.parent
		if p.right == cur {
			i++
			if p.left != nil {
				i += p.left.size
			}
		}
	}
	return i
}

// rootOf walks to the treap root. Read-only.
func rootOf(x *node) *node {
	for x.parent != nil {
		x = x.parent
	}
	return x
}

// vertex is a graph vertex: its tour self-loop and its non-tree adjacency.
type vertex struct {
	loop *node
	nt   map[int64]struct{}
}

// edgeKey is the normalized (a < b) identity of an undirected edge.
type edgeKey struct{ a, b int64 }

func key(u, v int64) edgeKey {
	if u < v {
		return edgeKey{u, v}
	}
	return edgeKey{v, u}
}

// edgeRec is the stored state of one edge. Tree edges carry their two tour
// arcs (ab runs key.a→key.b).
type edgeRec struct {
	tree   bool
	ab, ba *node
}

// Component identifies one connected component. It is valid only until the
// next mutating call on the forest (mutations restructure tours and change
// roots); compare with == to test "same component".
type Component struct{ root *node }

// Size returns the number of vertices in the component.
func (c Component) Size() int {
	if c.root == nil {
		return 0
	}
	return int(c.root.vcount)
}

// Forest is the dynamic-connectivity structure. The zero value is not
// usable; construct with New. See the package comment for the concurrency
// and strictness contracts.
type Forest struct {
	verts map[int64]*vertex
	edges map[edgeKey]edgeRec

	seq       uint64 // priority sequence; deterministic across runs
	stats     Stats
	freeNodes []*node
	freeVerts []*vertex
	walk      []*node // replacement-search descent stack (mutation path only)
}

// New returns an empty forest.
func New() *Forest {
	return &Forest{
		verts: make(map[int64]*vertex),
		edges: make(map[edgeKey]edgeRec),
	}
}

// Reset empties the forest, keeping accumulated Stats. In-flight Components
// become invalid.
func (f *Forest) Reset() {
	clear(f.verts)
	clear(f.edges)
	// Tour nodes still linked into dropped trees are unrecoverable without a
	// traversal; let the GC take them (Reset is the rare rebuild path).
	f.freeNodes = f.freeNodes[:0]
	f.freeVerts = f.freeVerts[:0]
}

// Stats returns the monotonic operation counters.
func (f *Forest) Stats() Stats { return f.stats }

// NumVertices returns the current vertex count.
func (f *Forest) NumVertices() int { return len(f.verts) }

// NumEdges returns the current edge count (tree and non-tree).
func (f *Forest) NumEdges() int { return len(f.edges) }

// splitmix64 is the SplitMix64 finalizer; it turns the sequential counter
// into well-distributed treap priorities without any runtime randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (f *Forest) newNode(vid int64, loop bool) *node {
	var x *node
	if k := len(f.freeNodes); k > 0 {
		x = f.freeNodes[k-1]
		f.freeNodes[k-1] = nil
		f.freeNodes = f.freeNodes[:k-1]
		*x = node{}
	} else {
		x = &node{}
	}
	f.seq++
	x.prio = splitmix64(f.seq)
	x.vid, x.loop = vid, loop
	x.update()
	return x
}

func (f *Forest) putNode(x *node) {
	x.parent, x.left, x.right = nil, nil, nil
	f.freeNodes = append(f.freeNodes, x)
}

// HasVertex reports whether id is a vertex of the graph. Read-only.
func (f *Forest) HasVertex(id int64) bool {
	_, ok := f.verts[id]
	return ok
}

// AddVertex inserts an isolated vertex. False if it already exists.
func (f *Forest) AddVertex(id int64) bool {
	if _, ok := f.verts[id]; ok {
		return false
	}
	var v *vertex
	if k := len(f.freeVerts); k > 0 {
		v = f.freeVerts[k-1]
		f.freeVerts[k-1] = nil
		f.freeVerts = f.freeVerts[:k-1]
	} else {
		v = &vertex{nt: make(map[int64]struct{})}
	}
	v.loop = f.newNode(id, true)
	f.verts[id] = v
	f.stats.VertexAdds++
	return true
}

// RemoveVertex deletes vertex id, which must be isolated (no incident
// edges); false if it is absent or still has edges.
func (f *Forest) RemoveVertex(id int64) bool {
	v, ok := f.verts[id]
	if !ok || len(v.nt) != 0 {
		return false
	}
	lp := v.loop
	if lp.parent != nil || lp.left != nil || lp.right != nil {
		return false // tour longer than the self-loop ⇒ tree edges remain
	}
	delete(f.verts, id)
	f.putNode(lp)
	v.loop = nil
	f.freeVerts = append(f.freeVerts, v)
	f.stats.VertexRemoves++
	return true
}

// Root returns the component of vertex id. Read-only.
func (f *Forest) Root(id int64) (Component, bool) {
	v, ok := f.verts[id]
	if !ok {
		return Component{}, false
	}
	return Component{rootOf(v.loop)}, true
}

// Connected reports whether u and v are in one component; ok is false when
// either vertex is absent. Read-only.
func (f *Forest) Connected(u, v int64) (conn, ok bool) {
	vu, ok1 := f.verts[u]
	vv, ok2 := f.verts[v]
	if !ok1 || !ok2 {
		return false, false
	}
	return rootOf(vu.loop) == rootOf(vv.loop), true
}

// AppendMembers appends the component's vertex ids to buf in tour order and
// returns the extended slice. Read-only; allocation-free when buf has
// capacity.
func (f *Forest) AppendMembers(c Component, buf []int64) []int64 {
	return appendLoops(c.root, buf)
}

func appendLoops(x *node, buf []int64) []int64 {
	if x == nil {
		return buf
	}
	buf = appendLoops(x.left, buf)
	if x.loop {
		buf = append(buf, x.vid)
	}
	return appendLoops(x.right, buf)
}

// bumpNt adjusts the non-tree degree of a self-loop and the ntSum of its
// whole root path.
func bumpNt(loop *node, d int32) {
	loop.ntDeg += d
	for x := loop; x != nil; x = x.parent {
		x.ntSum += d
	}
}

// reroot rotates the tour of loop's tree so it starts at loop.
func (f *Forest) reroot(loop *node) *node {
	l, r := splitBefore(loop)
	return merge(r, l)
}

// linkTrees joins the (distinct) trees of u and v with a new tree edge,
// returning the arcs (u→v, v→u).
func (f *Forest) linkTrees(lu, lv *node) (uv, vu *node) {
	tu := f.reroot(lu)
	tv := f.reroot(lv)
	uv = f.newNode(0, false)
	vu = f.newNode(0, false)
	merge(merge(merge(tu, uv), tv), vu)
	f.stats.Links++
	return uv, vu
}

// AddEdge inserts the undirected edge (u, v). False — with no change — if
// either vertex is absent, u == v, or the edge already exists.
func (f *Forest) AddEdge(u, v int64) bool {
	if u == v {
		return false
	}
	vu, ok1 := f.verts[u]
	vv, ok2 := f.verts[v]
	if !ok1 || !ok2 {
		return false
	}
	k := key(u, v)
	if _, dup := f.edges[k]; dup {
		return false
	}
	if rootOf(vu.loop) != rootOf(vv.loop) {
		a, b := f.linkTrees(vu.loop, vv.loop)
		if k.a != u { // arcs are stored keyed: ab runs key.a→key.b
			a, b = b, a
		}
		f.edges[k] = edgeRec{tree: true, ab: a, ba: b}
	} else {
		vu.nt[v] = struct{}{}
		vv.nt[u] = struct{}{}
		bumpNt(vu.loop, 1)
		bumpNt(vv.loop, 1)
		f.edges[k] = edgeRec{}
	}
	f.stats.EdgeAdds++
	return true
}

// cutArcs removes a tree edge's arcs from the tour, returning the two
// resulting trees: the tour segment strictly between the arcs, and the
// outer remainder. Both are non-empty (each contains one endpoint's loop).
func (f *Forest) cutArcs(x, y *node) (inner, outer *node) {
	if index(x) > index(y) {
		x, y = y, x
	}
	before, _ := splitBefore(x) // right side = [x] inner [y] after; y stays reachable
	mid, tail := splitBefore(y) // mid = [x] inner, tail = [y] after
	inner = removeNode(mid, x)
	after := removeNode(tail, y)
	outer = merge(before, after)
	f.stats.Cuts++
	return inner, outer
}

// findReplacement scans the non-tree edges of small's tree for one whose far
// endpoint lies in other's tree, descending only into subtrees that hold
// non-tree edges (ntSum > 0).
func (f *Forest) findReplacement(small, other *node) (a, b int64, ok bool) {
	f.walk = append(f.walk[:0], small)
	for len(f.walk) > 0 {
		x := f.walk[len(f.walk)-1]
		f.walk = f.walk[:len(f.walk)-1]
		if x == nil || x.ntSum == 0 {
			continue
		}
		if x.loop && x.ntDeg > 0 {
			for w := range f.verts[x.vid].nt {
				f.stats.ReplacementScans++
				if rootOf(f.verts[w].loop) == other {
					return x.vid, w, true
				}
			}
		}
		f.walk = append(f.walk, x.left, x.right)
	}
	return 0, 0, false
}

// RemoveEdge deletes the undirected edge (u, v); false — with no change —
// if it is absent. Deleting a tree edge promotes a replacement non-tree
// edge when one reconnects the two sides.
func (f *Forest) RemoveEdge(u, v int64) bool {
	k := key(u, v)
	rec, ok := f.edges[k]
	if !ok {
		return false
	}
	delete(f.edges, k)
	f.stats.EdgeRemoves++
	vu, vv := f.verts[u], f.verts[v]
	if !rec.tree {
		delete(vu.nt, v)
		delete(vv.nt, u)
		bumpNt(vu.loop, -1)
		bumpNt(vv.loop, -1)
		return true
	}
	inner, outer := f.cutArcs(rec.ab, rec.ba)
	f.putNode(rec.ab)
	f.putNode(rec.ba)
	small, large := inner, outer
	if outer.vcount < inner.vcount {
		small, large = outer, inner
	}
	if small.ntSum == 0 {
		return true // no candidate edges: the split is final
	}
	f.stats.ReplacementSearches++
	ra, rb, found := f.findReplacement(small, large)
	if !found {
		return true
	}
	// Promote (ra, rb) from non-tree to tree: it now spans the two sides.
	va, vb := f.verts[ra], f.verts[rb]
	delete(va.nt, rb)
	delete(vb.nt, ra)
	bumpNt(va.loop, -1)
	bumpNt(vb.loop, -1)
	ab, ba := f.linkTrees(va.loop, vb.loop)
	rk := key(ra, rb)
	if rk.a != ra {
		ab, ba = ba, ab
	}
	f.edges[rk] = edgeRec{tree: true, ab: ab, ba: ba}
	return true
}
