package window

import (
	"testing"
	"testing/quick"

	"disc/internal/model"
)

// Property: for any (n, window, stride), Steps produces windows that are
// exactly the sliding view of the data: step k covers data[k*stride :
// k*stride+window], Out is the prefix that left, In the suffix that
// arrived, and In/Out transform window k-1 into window k.
func TestStepsSlidingViewProperty(t *testing.T) {
	f := func(nRaw, winRaw, strideRaw uint16) bool {
		n := int(nRaw)%400 + 1
		win := int(winRaw)%n + 1
		stride := int(strideRaw)%win + 1
		data := make([]model.Point, n)
		for i := range data {
			data[i] = model.Point{ID: int64(i)}
		}
		steps, err := Steps(data, win, stride)
		if err != nil {
			return false
		}
		for k, st := range steps {
			start := k * stride
			if len(st.Window) != win {
				return false
			}
			for i, p := range st.Window {
				if p.ID != int64(start+i) {
					return false
				}
			}
			if k == 0 {
				if len(st.Out) != 0 || len(st.In) != win {
					return false
				}
				continue
			}
			if len(st.Out) != stride || len(st.In) != stride {
				return false
			}
			if st.Out[0].ID != int64(start-stride) || st.In[0].ID != int64(start+win-stride) {
				return false
			}
		}
		// Steps must cover as many slides as fit.
		wantSteps := 1 + (n-win)/stride
		return len(steps) == wantSteps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the streaming CountSlider emits exactly the same steps as the
// batch Steps function for any parameters.
func TestCountSliderMatchesStepsProperty(t *testing.T) {
	f := func(nRaw, winRaw, strideRaw uint16) bool {
		n := int(nRaw)%300 + 1
		win := int(winRaw)%n + 1
		stride := int(strideRaw)%win + 1
		data := make([]model.Point, n)
		for i := range data {
			data[i] = model.Point{ID: int64(i)}
		}
		want, err := Steps(data, win, stride)
		if err != nil {
			return false
		}
		s, err := NewCountSlider(win, stride)
		if err != nil {
			return false
		}
		var got []*Step
		for _, p := range data {
			if st := s.Push(p); st != nil {
				got = append(got, st)
				// Windows alias internal state; verify immediately.
				w := want[len(got)-1]
				if len(st.In) != len(w.In) || len(st.Out) != len(w.Out) || len(st.Window) != len(w.Window) {
					return false
				}
				for i := range st.In {
					if st.In[i].ID != w.In[i].ID {
						return false
					}
				}
				for i := range st.Out {
					if st.Out[i].ID != w.Out[i].ID {
						return false
					}
				}
				for i := range st.Window {
					if st.Window[i].ID != w.Window[i].ID {
						return false
					}
				}
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
