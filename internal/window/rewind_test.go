package window

import (
	"math/rand"
	"reflect"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
)

func pt(id int64) model.Point {
	return model.Point{ID: id, Time: id, Pos: geom.NewVec(float64(id), 0)}
}

// cloneState captures everything observable about a slider: window
// contents, pending contents, and residency answers for a set of ids.
func cloneState(s *CountSlider, ids []int64) (win, pend []model.Point, present map[int64]bool) {
	win = append([]model.Point(nil), s.Window()...)
	pend = append([]model.Point(nil), s.Pending()...)
	present = make(map[int64]bool, len(ids))
	for _, id := range ids {
		present[id] = s.Contains(id)
	}
	return win, pend, present
}

// TestRewindSteadyStride: rewinding a steady-state stride restores the
// exact pre-Push state minus nothing — the triggering point is dropped.
func TestRewindSteadyStride(t *testing.T) {
	s, err := NewCountSlider(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for id := int64(0); id < 20; id++ {
		ids = append(ids, id)
	}
	// Warm up: 6 points fill the window, then one pending point.
	for id := int64(0); id < 7; id++ {
		s.Push(pt(id))
	}
	preWin, prePend, prePresent := cloneState(s, ids)

	step := s.Push(pt(7)) // completes the stride
	if step == nil {
		t.Fatal("8th push did not complete a stride")
	}
	s.Rewind(step)

	win, pend, present := cloneState(s, ids)
	if !reflect.DeepEqual(win, preWin) {
		t.Fatalf("window after rewind %v, want %v", win, preWin)
	}
	if !reflect.DeepEqual(pend, prePend) {
		t.Fatalf("pending after rewind %v, want %v", pend, prePend)
	}
	if !reflect.DeepEqual(present, prePresent) {
		t.Fatalf("residency after rewind %v, want %v", present, prePresent)
	}

	// The stream resumes exactly as if the rejected point never arrived:
	// pushing a replacement completes the stride with the replacement.
	step = s.Push(pt(100))
	if step == nil {
		t.Fatal("replacement push did not complete the stride")
	}
	if got := step.In[len(step.In)-1].ID; got != 100 {
		t.Fatalf("stride trigger id %d, want the replacement 100", got)
	}
	if s.Contains(7) {
		t.Fatal("rewound trigger id 7 still reported resident")
	}
}

// TestRewindInitialFill: rewinding the warm-up step returns the slider to
// its cold state with all but the trigger pending.
func TestRewindInitialFill(t *testing.T) {
	s, err := NewCountSlider(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 3; id++ {
		if st := s.Push(pt(id)); st != nil {
			t.Fatal("stride before the window filled")
		}
	}
	step := s.Push(pt(3))
	if step == nil || len(step.Out) != 0 {
		t.Fatalf("fill step = %+v, want In-only", step)
	}
	s.Rewind(step)
	if len(s.Window()) != 0 {
		t.Fatalf("window %v after fill rewind, want empty", s.Window())
	}
	if got := len(s.Pending()); got != 3 {
		t.Fatalf("pending %d after fill rewind, want 3", got)
	}
	if s.Contains(3) {
		t.Fatal("rewound trigger still resident")
	}
	// Refill works.
	if step := s.Push(pt(9)); step == nil || len(step.In) != 4 {
		t.Fatalf("refill step %+v", step)
	}
}

// TestRewindMatchesFreshSlider: after any prefix of pushes, a push+rewind
// leaves the slider behaviorally identical to one that never saw the
// rejected point — checked by replaying the remainder of the stream on
// both and comparing every emitted step.
func TestRewindMatchesFreshSlider(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		window := 2 + rng.Intn(8)
		stride := 1 + rng.Intn(window)
		a, _ := NewCountSlider(window, stride)
		b, _ := NewCountSlider(window, stride)

		n := window + rng.Intn(4*window)
		var steps int
		for id := int64(0); id < int64(n); id++ {
			sa := a.Push(pt(id))
			sb := b.Push(pt(id))
			if (sa == nil) != (sb == nil) {
				t.Fatalf("trial %d: sliders disagree at id %d", trial, id)
			}
			if sa != nil {
				steps++
			}
		}
		// Poison stream a with a rejected point at the next boundary, then
		// rewind. Slider b never sees it.
		var rejected *Step
		id := int64(n)
		for rejected == nil {
			rejected = a.Push(pt(10_000 + id))
			if rejected == nil {
				b.Push(pt(10_000 + id)) // keep b in lockstep for accepted points
			}
			id++
		}
		a.Rewind(rejected)

		// Replay 3 more windows' worth of stream on both; every step must
		// be identical.
		for k := int64(0); k < int64(3*window); k++ {
			pid := int64(20_000) + k
			sa, sb := a.Push(pt(pid)), b.Push(pt(pid))
			if (sa == nil) != (sb == nil) {
				t.Fatalf("trial %d: post-rewind stride disagreement at %d", trial, pid)
			}
			if sa == nil {
				continue
			}
			if !reflect.DeepEqual(sa.In, sb.In) || !reflect.DeepEqual(sa.Out, sb.Out) {
				t.Fatalf("trial %d: post-rewind step differs:\n a: in=%v out=%v\n b: in=%v out=%v",
					trial, sa.In, sa.Out, sb.In, sb.Out)
			}
			if !reflect.DeepEqual(a.Window(), b.Window()) {
				t.Fatalf("trial %d: post-rewind windows differ", trial)
			}
		}
	}
}

// TestRewindMisusePanics: Rewind is only legal immediately after a Push
// that returned a step.
func TestRewindMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	s, _ := NewCountSlider(3, 1)
	expectPanic("rewind on fresh slider", func() { s.Rewind(&Step{In: []model.Point{pt(0)}}) })
	for id := int64(0); id < 3; id++ {
		s.Push(pt(id))
	}
	step := s.Push(pt(3))
	if step == nil {
		t.Fatal("no stride")
	}
	s.Rewind(step)
	expectPanic("double rewind", func() { s.Rewind(step) })

	step = s.Push(pt(3))
	if step == nil {
		t.Fatal("no stride on re-push")
	}
	s.Push(pt(4)) // mutates: the step is stale now
	expectPanic("stale rewind", func() { s.Rewind(step) })
	expectPanic("nil rewind", func() { s.Rewind(nil) })
}

// TestRewindForgetsTriggerBothBranches: Rewind must release the triggering
// point's residency count in BOTH the cold (initial-fill) and warm
// (steady-stride) branches — a forget applied in only one branch would make
// Contains report the rejected id resident forever, so a consumer running
// the documented duplicate check could never re-send a corrected point
// under the same id. The re-push must then reproduce the identical step.
func TestRewindForgetsTriggerBothBranches(t *testing.T) {
	// Cold branch: the rewound fill trigger must be re-sendable.
	s, err := NewCountSlider(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 3; id++ {
		s.Push(pt(id))
	}
	first := s.Push(pt(3))
	if first == nil {
		t.Fatal("no fill step")
	}
	wantIn := append([]model.Point(nil), first.In...)
	s.Rewind(first)
	if s.Contains(3) {
		t.Fatal("cold branch: rewound trigger id 3 still resident")
	}
	second := s.Push(pt(3)) // same id re-sent
	if second == nil {
		t.Fatal("re-sent trigger did not complete the fill")
	}
	if !reflect.DeepEqual(second.In, wantIn) {
		t.Fatalf("re-sent fill step In = %v, want %v", second.In, wantIn)
	}

	// Warm branch: same contract for a steady-state stride.
	for id := int64(4); id < 5; id++ {
		s.Push(pt(id))
	}
	step := s.Push(pt(5))
	if step == nil {
		t.Fatal("no stride step")
	}
	wantIn = append(wantIn[:0:0], step.In...)
	wantOut := append([]model.Point(nil), step.Out...)
	s.Rewind(step)
	if s.Contains(5) {
		t.Fatal("warm branch: rewound trigger id 5 still resident")
	}
	redo := s.Push(pt(5))
	if redo == nil {
		t.Fatal("re-sent stride trigger did not complete the stride")
	}
	if !reflect.DeepEqual(redo.In, wantIn) || !reflect.DeepEqual(redo.Out, wantOut) {
		t.Fatalf("re-sent stride step in=%v out=%v, want in=%v out=%v",
			redo.In, redo.Out, wantIn, wantOut)
	}
}

// TestRewindDuplicateIDCounts: present is a count map precisely so that
// duplicate ids survive Rewind's bookkeeping. Two scenarios where the
// trigger's id collides with another resident copy: the trigger duplicates
// a departing window point, and the trigger duplicates a pending arrival.
// In both, Rewind must restore the exact pre-Push residency — decrementing
// the trigger's copy without erasing the survivor's.
func TestRewindDuplicateIDCounts(t *testing.T) {
	ids := []int64{1, 2, 3, 4, 5, 9}

	// Trigger id 1 duplicates window-resident (and departing) point 1.
	s, _ := NewCountSlider(4, 2)
	for id := int64(1); id <= 4; id++ {
		s.Push(pt(id))
	}
	s.Push(pt(5))
	preWin, prePend, prePresent := cloneState(s, ids)
	step := s.Push(pt(1))
	if step == nil || step.Out[0].ID != 1 {
		t.Fatalf("expected a stride departing id 1, got %+v", step)
	}
	s.Rewind(step)
	win, pend, present := cloneState(s, ids)
	if !reflect.DeepEqual(win, preWin) || !reflect.DeepEqual(pend, prePend) {
		t.Fatalf("state after duplicate-of-departure rewind: win=%v pend=%v, want win=%v pend=%v",
			win, pend, preWin, prePend)
	}
	if !reflect.DeepEqual(present, prePresent) {
		t.Fatalf("residency after duplicate-of-departure rewind %v, want %v", present, prePresent)
	}
	if !s.Contains(1) {
		t.Fatal("surviving window copy of id 1 lost its residency")
	}

	// Trigger id 9 duplicates the pending arrival 9.
	s2, _ := NewCountSlider(4, 2)
	for id := int64(1); id <= 4; id++ {
		s2.Push(pt(id))
	}
	s2.Push(pt(9))
	pre2Win, pre2Pend, pre2Present := cloneState(s2, ids)
	step2 := s2.Push(pt(9))
	if step2 == nil {
		t.Fatal("duplicate pending push did not trigger a stride")
	}
	s2.Rewind(step2)
	win2, pend2, present2 := cloneState(s2, ids)
	if !reflect.DeepEqual(win2, pre2Win) || !reflect.DeepEqual(pend2, pre2Pend) {
		t.Fatalf("state after duplicate-of-pending rewind: win=%v pend=%v, want win=%v pend=%v",
			win2, pend2, pre2Win, pre2Pend)
	}
	if !reflect.DeepEqual(present2, pre2Present) {
		t.Fatalf("residency after duplicate-of-pending rewind %v, want %v", present2, pre2Present)
	}
	if !s2.Contains(9) {
		t.Fatal("surviving pending copy of id 9 lost its residency")
	}
}

// TestContainsTracksResidency: Contains covers window and pending points
// and expires with eviction.
func TestContainsTracksResidency(t *testing.T) {
	s, _ := NewCountSlider(4, 2)
	for id := int64(0); id < 5; id++ { // 4 fill the window, 1 pending
		s.Push(pt(id))
	}
	for id := int64(0); id < 5; id++ {
		if !s.Contains(id) {
			t.Fatalf("id %d not resident", id)
		}
	}
	if s.Contains(99) {
		t.Fatal("phantom resident")
	}
	s.Push(pt(5)) // stride: 0 and 1 leave
	for id, want := range map[int64]bool{0: false, 1: false, 2: true, 5: true} {
		if got := s.Contains(id); got != want {
			t.Fatalf("Contains(%d) = %v after stride, want %v", id, got, want)
		}
	}
	// RestoreWindow rebuilds residency from scratch.
	if err := s.RestoreWindow([]model.Point{pt(10), pt(11), pt(12), pt(13)}); err != nil {
		t.Fatal(err)
	}
	if s.Contains(2) || !s.Contains(12) {
		t.Fatal("residency not rebuilt by RestoreWindow")
	}
}
