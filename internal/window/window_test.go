package window

import (
	"testing"

	"disc/internal/model"
)

func pts(ids ...int64) []model.Point {
	out := make([]model.Point, len(ids))
	for i, id := range ids {
		out[i] = model.Point{ID: id, Time: id}
	}
	return out
}

func ids(ps []model.Point) []int64 {
	out := make([]int64, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func eq(a []int64, b ...int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCountSliderWarmupAndSlides(t *testing.T) {
	s, err := NewCountSlider(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var steps []*Step
	for _, p := range pts(1, 2, 3, 4, 5, 6, 7, 8) {
		if st := s.Push(p); st != nil {
			steps = append(steps, st)
		}
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(steps))
	}
	if !eq(ids(steps[0].In), 1, 2, 3, 4) || len(steps[0].Out) != 0 {
		t.Fatalf("warmup step wrong: in=%v out=%v", ids(steps[0].In), ids(steps[0].Out))
	}
	if !eq(ids(steps[1].Out), 1, 2) || !eq(ids(steps[1].In), 5, 6) {
		t.Fatalf("step1 wrong: in=%v out=%v", ids(steps[1].In), ids(steps[1].Out))
	}
	if !eq(ids(steps[2].Out), 3, 4) || !eq(ids(steps[2].In), 7, 8) {
		t.Fatalf("step2 wrong: in=%v out=%v", ids(steps[2].In), ids(steps[2].Out))
	}
	if !eq(ids(s.Window()), 5, 6, 7, 8) {
		t.Fatalf("window = %v", ids(s.Window()))
	}
}

func TestCountSliderStrideEqualsWindow(t *testing.T) {
	s, _ := NewCountSlider(3, 3)
	var steps []*Step
	for _, p := range pts(1, 2, 3, 4, 5, 6) {
		if st := s.Push(p); st != nil {
			steps = append(steps, st)
		}
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	if !eq(ids(steps[1].Out), 1, 2, 3) || !eq(ids(steps[1].In), 4, 5, 6) {
		t.Fatal("full-window slide wrong")
	}
}

func TestCountSliderValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {-1, -1}} {
		if _, err := NewCountSlider(tc[0], tc[1]); err == nil {
			t.Errorf("NewCountSlider(%d,%d) accepted", tc[0], tc[1])
		}
	}
}

// Property: In/Out deltas must reconstruct the window exactly.
func TestCountSliderDeltaInvariant(t *testing.T) {
	s, _ := NewCountSlider(10, 3)
	win := map[int64]bool{}
	for id := int64(0); id < 100; id++ {
		st := s.Push(model.Point{ID: id})
		if st == nil {
			continue
		}
		for _, p := range st.Out {
			if !win[p.ID] {
				t.Fatalf("out point %d was not in window", p.ID)
			}
			delete(win, p.ID)
		}
		for _, p := range st.In {
			if win[p.ID] {
				t.Fatalf("in point %d already in window", p.ID)
			}
			win[p.ID] = true
		}
		if len(win) != 10 {
			t.Fatalf("window size %d after step", len(win))
		}
		if len(st.Window) != 10 {
			t.Fatalf("reported window size %d", len(st.Window))
		}
		for _, p := range st.Window {
			if !win[p.ID] {
				t.Fatalf("reported window contains stale point %d", p.ID)
			}
		}
	}
}

func TestTimeSlider(t *testing.T) {
	s, err := NewTimeSlider(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	var steps []*Step
	// Points at times 0..24.
	for tm := int64(0); tm < 25; tm++ {
		if st := s.Push(model.Point{ID: tm, Time: tm}); st != nil {
			steps = append(steps, st)
		}
	}
	if st := s.Flush(); st != nil {
		steps = append(steps, st)
	}
	if len(steps) != 4 {
		t.Fatalf("got %d steps, want 4", len(steps))
	}
	// First step: initial fill with times 0..9.
	if !eq(ids(steps[0].In), 0, 1, 2, 3, 4, 5, 6, 7, 8, 9) {
		t.Fatalf("warmup in = %v", ids(steps[0].In))
	}
	// Second step: in 10..14, out 0..4.
	if !eq(ids(steps[1].In), 10, 11, 12, 13, 14) || !eq(ids(steps[1].Out), 0, 1, 2, 3, 4) {
		t.Fatalf("step1 in=%v out=%v", ids(steps[1].In), ids(steps[1].Out))
	}
}

func TestTimeSliderGap(t *testing.T) {
	s, _ := NewTimeSlider(10, 5)
	var steps []*Step
	for _, tm := range []int64{0, 1, 2, 50, 51} {
		if st := s.Push(model.Point{ID: tm, Time: tm}); st != nil {
			steps = append(steps, st)
		}
	}
	if st := s.Flush(); st != nil {
		steps = append(steps, st)
	}
	// After the gap, old points must all have expired.
	last := steps[len(steps)-1]
	for _, p := range last.Window {
		if p.Time < 41 {
			t.Fatalf("stale point %d survived the gap", p.ID)
		}
	}
}

// TestTimeSliderGapSkipsStrides is the regression test for gaps spanning
// several stride boundaries: the step emitted by the triggering point must
// reflect the LAST crossed boundary, so points expired by the skipped
// boundaries are evicted from the emitted window instead of lingering until
// the next emit.
func TestTimeSliderGapSkipsStrides(t *testing.T) {
	s, _ := NewTimeSlider(10, 5) // boundaries at 10, 15, 20, ...
	var steps []*Step
	// Warm-up window (0,10], one normal stride, then a gap spanning four
	// stride boundaries (20, 25, 30, 35) before the trigger at t=36.
	for _, tm := range []int64{0, 3, 7, 9, 12, 14, 16, 36} {
		if st := s.Push(model.Point{ID: tm, Time: tm}); st != nil {
			steps = append(steps, st)
		}
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps, want 3 (fill, stride, gap)", len(steps))
	}
	// Fill at boundary 10: window (0,10].
	if !eq(ids(steps[0].In), 0, 3, 7, 9) {
		t.Fatalf("fill in = %v", ids(steps[0].In))
	}
	// Boundary 15: in 12,14, out 0,3 (times ≤ 5).
	if !eq(ids(steps[1].In), 12, 14) || !eq(ids(steps[1].Out), 0, 3) {
		t.Fatalf("stride in=%v out=%v", ids(steps[1].In), ids(steps[1].Out))
	}
	// The trigger at t=36 crosses boundaries 20, 25, 30 and 35; the emitted
	// step is the boundary-35 window (25,35]. Every buffered point expired
	// (all times < 25) and must be reported out; the pending point t=16 also
	// expired before any boundary emitted it, so it appears nowhere.
	gap := steps[2]
	if !eq(ids(gap.Out), 7, 9, 12, 14) {
		t.Fatalf("gap out = %v, want the whole stale window", ids(gap.Out))
	}
	if len(gap.In) != 0 {
		t.Fatalf("gap in = %v, want empty (t=16 expired while pending)", ids(gap.In))
	}
	if len(gap.Window) != 0 {
		t.Fatalf("gap window = %v, want empty — stale points must not linger", ids(gap.Window))
	}
	// The trigger itself belongs to the next stride.
	if st := s.Flush(); st == nil || !eq(ids(st.In), 36) || !eq(ids(st.Window), 36) {
		t.Fatalf("flush after gap = %+v, want window {36}", st)
	}
}

// TestTimeSliderGapEngineConsistency feeds a gapped time-sliced stream into
// a DISC-like in/out ledger and verifies the In/Out protocol stays
// consistent: no point is removed twice or removed without having entered,
// and the ledger always equals the reported window.
func TestTimeSliderGapEngineConsistency(t *testing.T) {
	s, _ := NewTimeSlider(20, 4)
	live := map[int64]bool{}
	apply := func(st *Step) {
		t.Helper()
		for _, p := range st.Out {
			if !live[p.ID] {
				t.Fatalf("point %d left but never entered", p.ID)
			}
			delete(live, p.ID)
		}
		for _, p := range st.In {
			if live[p.ID] {
				t.Fatalf("point %d entered twice", p.ID)
			}
			live[p.ID] = true
		}
		if len(live) != len(st.Window) {
			t.Fatalf("ledger %d points, window %d", len(live), len(st.Window))
		}
		for _, p := range st.Window {
			if !live[p.ID] {
				t.Fatalf("window point %d missing from ledger", p.ID)
			}
		}
	}
	times := []int64{0, 2, 5, 9, 13, 18, 21, 22, 24, 70, 71, 90, 130, 131, 133}
	for i, tm := range times {
		if st := s.Push(model.Point{ID: int64(i), Time: tm}); st != nil {
			apply(st)
		}
	}
	if st := s.Flush(); st != nil {
		apply(st)
	}
}

func TestStepsBatch(t *testing.T) {
	data := pts(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	steps, err := Steps(data, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(steps))
	}
	if !eq(ids(steps[0].In), 1, 2, 3, 4) {
		t.Fatal("bad initial window")
	}
	last := steps[len(steps)-1]
	if !eq(ids(last.Window), 7, 8, 9, 10) {
		t.Fatalf("last window = %v", ids(last.Window))
	}
	// Each step's In/Out must be consistent with consecutive windows.
	for i := 1; i < len(steps); i++ {
		prev := map[int64]bool{}
		for _, p := range steps[i-1].Window {
			prev[p.ID] = true
		}
		for _, p := range steps[i].Out {
			if !prev[p.ID] {
				t.Fatalf("step %d out %d not in previous window", i, p.ID)
			}
		}
	}
}

func TestStepsErrors(t *testing.T) {
	data := pts(1, 2, 3)
	if _, err := Steps(data, 5, 1); err == nil {
		t.Error("window larger than data accepted")
	}
	if _, err := Steps(data, 2, 3); err == nil {
		t.Error("stride > window accepted")
	}
	if _, err := Steps(data, 0, 0); err == nil {
		t.Error("zero sizes accepted")
	}
}

func TestRestoreWindow(t *testing.T) {
	s, _ := NewCountSlider(4, 2)
	// Restore a full window; the next two pushes complete a stride.
	if err := s.RestoreWindow(pts(10, 11, 12, 13)); err != nil {
		t.Fatal(err)
	}
	if st := s.Push(pts(14)[0]); st != nil {
		t.Fatal("premature step after restore")
	}
	st := s.Push(pts(15)[0])
	if st == nil {
		t.Fatal("no step after a full stride post-restore")
	}
	if !eq(ids(st.Out), 10, 11) || !eq(ids(st.In), 14, 15) {
		t.Fatalf("step after restore: in=%v out=%v", ids(st.In), ids(st.Out))
	}
	// Restoring empty resets to cold start.
	if err := s.RestoreWindow(nil); err != nil {
		t.Fatal(err)
	}
	var steps int
	for _, p := range pts(1, 2, 3, 4) {
		if s.Push(p) != nil {
			steps++
		}
	}
	if steps != 1 {
		t.Fatalf("cold restart warmup steps = %d, want 1", steps)
	}
	// Wrong length is rejected.
	if err := s.RestoreWindow(pts(1, 2)); err == nil {
		t.Fatal("partial window accepted")
	}
}
