// Package window implements the sliding-window model of stream processing
// used throughout the DISC paper: a window of fixed extent anchored at the
// newest data, advancing in strides. Both count-based windows (extent and
// stride measured in points) and time-based windows (measured in timestamp
// units) are provided; the clustering engines are agnostic to which is used,
// exactly as §II-B of the paper requires.
package window

import (
	"fmt"

	"disc/internal/model"
)

// Step is one window advance: Out lists points leaving the window, In points
// entering it. For the first step Out is empty and In is the initial window
// fill.
type Step struct {
	In, Out []model.Point
	// Window is the full content of the window after this step, in arrival
	// order. It aliases the slider's internal storage and is only valid
	// until the next step.
	Window []model.Point
}

// CountSlider produces steps for a count-based sliding window over a stream
// of points delivered via Push. The window holds exactly `window` points
// (once warm) and advances whenever `stride` new points have accumulated.
type CountSlider struct {
	window, stride int
	buf            []model.Point // current window contents, arrival order
	pending        []model.Point
	warm           bool
	// present counts, per id, how many resident copies (window + pending)
	// the slider holds; Contains answers duplicate checks in O(1). A count
	// map rather than a set so the slider itself stays agnostic to
	// duplicates — rejecting them is the consumer's policy.
	present map[int64]int
	// lastStep is the step returned by the most recent Push, cleared by
	// any other mutation; Rewind is only meaningful against it.
	lastStep *Step
}

// NewCountSlider returns a slider for a count-based window. stride must not
// exceed window; both must be positive.
func NewCountSlider(window, stride int) (*CountSlider, error) {
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("window: extent %d and stride %d must be positive", window, stride)
	}
	if stride > window {
		return nil, fmt.Errorf("window: stride %d exceeds window %d", stride, window)
	}
	return &CountSlider{window: window, stride: stride, present: make(map[int64]int)}, nil
}

// Push adds one point to the stream. It returns a non-nil Step when the
// arrival completes a stride (or the initial window fill), nil otherwise.
func (s *CountSlider) Push(p model.Point) *Step {
	s.lastStep = nil
	s.pending = append(s.pending, p)
	s.present[p.ID]++
	if !s.warm {
		if len(s.pending) < s.window {
			return nil
		}
		s.buf = append(s.buf, s.pending...)
		s.pending = s.pending[:0]
		s.warm = true
		in := make([]model.Point, len(s.buf))
		copy(in, s.buf)
		s.lastStep = &Step{In: in, Window: s.buf}
		return s.lastStep
	}
	if len(s.pending) < s.stride {
		return nil
	}
	out := make([]model.Point, s.stride)
	copy(out, s.buf[:s.stride])
	for _, q := range out {
		s.forget(q.ID)
	}
	s.buf = append(s.buf[:0], s.buf[s.stride:]...)
	in := make([]model.Point, len(s.pending))
	copy(in, s.pending)
	s.buf = append(s.buf, in...)
	s.pending = s.pending[:0]
	s.lastStep = &Step{In: in, Out: out, Window: s.buf}
	return s.lastStep
}

// Rewind undoes the most recent Push — legal only when that Push returned
// a step which the consumer then failed to apply (e.g. the engine rejected
// the advance). The departed points of step.Out re-enter the window, the
// stride's arrivals return to the pending buffer, and the triggering point
// itself — the one passed to the rewound Push — is discarded entirely, as
// if it had never arrived. Afterwards the slider is exactly in its
// pre-Push state, so the stream can resume with corrected input. The step
// (including its aliased Window slice) must not be used again. Rewind
// panics if the preceding Push did not return a step or the slider mutated
// since: silently accepting a stale rewind would corrupt the window.
func (s *CountSlider) Rewind(step *Step) {
	if step == nil || step != s.lastStep {
		panic("window: Rewind without an immediately preceding Push that returned this step")
	}
	s.lastStep = nil
	trigger := step.In[len(step.In)-1]
	if len(step.Out) == 0 {
		// Undo the initial window fill: back to cold, everything but the
		// triggering point pending again.
		s.pending = append(s.pending[:0], step.In[:len(step.In)-1]...)
		s.buf = s.buf[:0]
		s.warm = false
	} else {
		// Undo a steady-state stride: shift the survivors right (copy is
		// memmove-safe for the overlap), restore the departed prefix, and
		// return Δin minus the trigger to pending.
		copy(s.buf[s.stride:], s.buf[:len(s.buf)-s.stride])
		copy(s.buf, step.Out)
		s.pending = append(s.pending[:0], step.In[:len(step.In)-1]...)
		for _, q := range step.Out {
			s.present[q.ID]++
		}
	}
	s.forget(trigger.ID)
}

// Contains reports whether a point with the given id is currently resident
// in the slider — in the window proper or buffered in the pending partial
// stride. Consumers that feed an engine which rejects duplicate ids (DISC
// panics on them) should check this before Push.
func (s *CountSlider) Contains(id int64) bool { return s.present[id] > 0 }

// forget decrements id's residency count, dropping the entry at zero.
func (s *CountSlider) forget(id int64) {
	if n := s.present[id] - 1; n <= 0 {
		delete(s.present, id)
	} else {
		s.present[id] = n
	}
}

// Window returns the current window contents in arrival order (aliased).
func (s *CountSlider) Window() []model.Point { return s.buf }

// Pending returns the points buffered below the next stride boundary, in
// arrival order (aliased): accepted by Push but not yet part of any step.
func (s *CountSlider) Pending() []model.Point { return s.pending }

// PendingLen reports how many points are buffered below the next stride
// boundary — the slider's backlog. Readiness probes compare it against a
// high-water mark without materializing the slice.
func (s *CountSlider) PendingLen() int { return len(s.pending) }

// RestoreWindow primes the slider with an already-full window in arrival
// order (resuming from a checkpoint). Any pending partial stride is
// discarded. The slice must be empty (reset to cold start) or exactly one
// window long.
func (s *CountSlider) RestoreWindow(pts []model.Point) error {
	if len(pts) != 0 && len(pts) != s.window {
		return fmt.Errorf("window: restore needs 0 or %d points, got %d", s.window, len(pts))
	}
	s.buf = append(s.buf[:0], pts...)
	s.pending = s.pending[:0]
	s.warm = len(pts) == s.window
	s.lastStep = nil
	s.present = make(map[int64]int, len(pts))
	for _, p := range pts {
		s.present[p.ID]++
	}
	return nil
}

// TimeSlider produces steps for a time-based sliding window: the window
// covers (t-window, t] where t is the end of the most recent stride
// boundary, and advances every `stride` timestamp units. Points must be
// pushed in non-decreasing timestamp order.
type TimeSlider struct {
	window, stride int64
	origin         int64 // timestamp of the first point
	nextBoundary   int64
	started        bool
	buf            []model.Point
	pending        []model.Point
}

// NewTimeSlider returns a slider for a time-based window measured in the
// units of model.Point.Time.
func NewTimeSlider(window, stride int64) (*TimeSlider, error) {
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("window: extent %d and stride %d must be positive", window, stride)
	}
	if stride > window {
		return nil, fmt.Errorf("window: stride %d exceeds window %d", stride, window)
	}
	return &TimeSlider{window: window, stride: stride}, nil
}

// Push adds one point; it returns a Step when the point's timestamp crosses
// a stride boundary. The triggering point belongs to the *next* stride, as
// is conventional: a boundary at time b emits the window (b-window, b].
func (s *TimeSlider) Push(p model.Point) *Step {
	if !s.started {
		s.started = true
		s.origin = p.Time
		s.nextBoundary = p.Time + s.window
	}
	if p.Time < s.nextBoundary {
		s.pending = append(s.pending, p)
		return nil
	}
	// A quiet stream can leave several stride boundaries behind before the
	// triggering point arrives. Advance to the last boundary the point
	// crosses before emitting, so the emitted window reflects every expiry
	// the skipped boundaries caused — emitting at the first boundary would
	// hand the consumer points that are already out of the window, leaving
	// them to linger until the next emit.
	for p.Time >= s.nextBoundary+s.stride {
		s.nextBoundary += s.stride
	}
	step := s.emit()
	s.nextBoundary += s.stride
	s.pending = append(s.pending, p)
	return step
}

// Flush emits a final step covering any pending points, as if the next
// stride boundary had just been reached; returns nil if nothing is pending.
func (s *TimeSlider) Flush() *Step {
	if len(s.pending) == 0 {
		return nil
	}
	return s.emit()
}

func (s *TimeSlider) emit() *Step {
	lo := s.nextBoundary - s.window // expiry threshold: drop Time < lo ... window covers [lo, boundary)
	// A pending point that already expired — possible only when a gap
	// skipped past it before any boundary emitted it — was never part of an
	// observable window: drop it silently rather than reporting it in In
	// (it would instantly be stale) or Out (it was never In).
	in := make([]model.Point, 0, len(s.pending))
	for _, p := range s.pending {
		if p.Time >= lo {
			in = append(in, p)
		}
	}
	s.pending = s.pending[:0]
	var out []model.Point
	keep := s.buf[:0]
	for _, p := range s.buf {
		if p.Time < lo {
			out = append(out, p)
		} else {
			keep = append(keep, p)
		}
	}
	s.buf = append(keep, in...)
	return &Step{In: in, Out: out, Window: s.buf}
}

// Steps slices a finite dataset into count-based window steps: the first
// step fills the window, each later step advances by stride. Points are
// taken in slice order (the paper ingests by record timestamp order). The
// returned steps share backing storage with data; callers must not mutate.
func Steps(data []model.Point, window, stride int) ([]Step, error) {
	if window <= 0 || stride <= 0 || stride > window {
		return nil, fmt.Errorf("window: invalid extent %d / stride %d", window, stride)
	}
	if len(data) < window {
		return nil, fmt.Errorf("window: dataset of %d points smaller than window %d", len(data), window)
	}
	steps := []Step{{In: data[:window], Window: data[:window]}}
	for start := stride; start+window <= len(data); start += stride {
		steps = append(steps, Step{
			Out:    data[start-stride : start],
			In:     data[start+window-stride : start+window],
			Window: data[start : start+window],
		})
	}
	return steps, nil
}
