// Package dstream implements D-Stream (Chen & Tu: KDD 2007), the
// density-grid stream clustering method — reference [16] of the DISC paper
// and, with DenStream, the other root of the summarization family its
// evaluation draws on. Included as an extra baseline beyond the paper's
// line-up.
//
// Space is partitioned into grid cells; each arriving point adds decayed
// mass to its cell. Cells are classified by decayed mass: dense (≥ Cm),
// sparse (≤ Cl), or transitional in between. (The original normalizes the
// thresholds by the total domain cell count N, which is unbounded for
// open-domain streams; absolute decayed-mass thresholds — defaulting to
// the MinPts density the exact engines use — are the equivalent for an
// unbounded grid.) Clusters are connected components of dense cells, with adjacent
// transitional cells attached as their rim; sporadic sparse cells are
// periodically evicted. Insert-only, decay-based forgetting — the same
// structural mismatch with hard sliding windows as the other
// summarization engines.
package dstream

import (
	"fmt"
	"math"

	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/model"
)

// Options are the D-Stream knobs; zero values select defaults.
type Options struct {
	CellSide float64 // grid resolution; defaults to cfg.Eps
	Lambda   float64 // decay rate per point; default ln2/2000
	Cm       float64 // dense threshold (decayed mass); default max(3, MinPts)
	Cl       float64 // sparse threshold (decayed mass); default 1
	Gap      int64   // eviction period in points; default 500
}

func (o *Options) fill(cfg model.Config) {
	if o.CellSide <= 0 {
		o.CellSide = cfg.Eps
	}
	if o.Lambda <= 0 {
		o.Lambda = math.Ln2 / 2000
	}
	if o.Cm <= 0 {
		o.Cm = 3
		if float64(cfg.MinPts) > o.Cm {
			o.Cm = float64(cfg.MinPts)
		}
	}
	if o.Cl <= 0 || o.Cl >= o.Cm {
		o.Cl = 1
	}
	if o.Gap <= 0 {
		o.Gap = 500
	}
}

type cellKind uint8

const (
	sparse cellKind = iota
	transitional
	dense
)

type cell struct {
	mass float64
	last int64
	kind cellKind
	cid  int
}

// Engine implements model.Engine for D-Stream.
type Engine struct {
	cfg   model.Config
	opt   Options
	cells map[grid.Key]*cell
	now   int64

	assign map[int64]grid.Key
	stats  model.Stats
}

// New returns a D-Stream engine.
func New(cfg model.Config, opt Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.fill(cfg)
	return &Engine{
		cfg:    cfg,
		opt:    opt,
		cells:  make(map[grid.Key]*cell),
		assign: make(map[int64]grid.Key),
	}, nil
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "D-Stream" }

func (e *Engine) keyOf(pos geom.Vec) grid.Key {
	var k grid.Key
	for d := 0; d < e.cfg.Dims; d++ {
		k[d] = int32(math.Floor(pos[d] / e.opt.CellSide))
	}
	return k
}

func decay(lambda float64, dt int64) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp(-lambda * float64(dt))
}

// Advance implements model.Engine. Departures only unregister labels.
func (e *Engine) Advance(in, out []model.Point) {
	for _, p := range out {
		delete(e.assign, p.ID)
	}
	for _, p := range in {
		e.now++
		k := e.keyOf(p.Pos)
		c, ok := e.cells[k]
		if !ok {
			c = &cell{}
			e.cells[k] = c
		}
		c.mass = c.mass*decay(e.opt.Lambda, e.now-c.last) + 1
		c.last = e.now
		e.assign[p.ID] = k
		if e.now%e.opt.Gap == 0 {
			e.evict()
		}
	}
	e.recluster()
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.cells))
}

// evict removes sporadic cells whose decayed mass is negligible.
func (e *Engine) evict() {
	for k, c := range e.cells {
		if c.mass*decay(e.opt.Lambda, e.now-c.last) < 0.05 {
			delete(e.cells, k)
		}
	}
}

// recluster reclassifies every cell by decayed mass and rebuilds clusters:
// connected components of dense cells plus their adjacent transitional rim.
func (e *Engine) recluster() {
	if len(e.cells) == 0 {
		return
	}
	for _, c := range e.cells {
		c.mass *= decay(e.opt.Lambda, e.now-c.last)
		c.last = e.now
		switch {
		case c.mass >= e.opt.Cm:
			c.kind = dense
		case c.mass <= e.opt.Cl:
			c.kind = sparse
		default:
			c.kind = transitional
		}
		c.cid = 0
	}

	next := 0
	var stack []grid.Key
	for k, c := range e.cells {
		if c.kind != dense || c.cid != 0 {
			continue
		}
		next++
		c.cid = next
		stack = append(stack[:0], k)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			e.forAdjacent(cur, func(nk grid.Key, n *cell) {
				if n.kind == dense && n.cid == 0 {
					n.cid = next
					stack = append(stack, nk)
				}
			})
		}
	}
	// Transitional rim: attach to any adjacent dense cluster.
	for k, c := range e.cells {
		if c.kind != transitional {
			continue
		}
		e.forAdjacent(k, func(_ grid.Key, n *cell) {
			if c.cid == 0 && n.kind == dense && n.cid != 0 {
				c.cid = n.cid
			}
		})
	}
}

// forAdjacent visits the existing cells sharing a face or corner with k.
func (e *Engine) forAdjacent(k grid.Key, fn func(grid.Key, *cell)) {
	dims := e.cfg.Dims
	var walk func(d int, cur grid.Key, moved bool)
	walk = func(d int, cur grid.Key, moved bool) {
		if d == dims {
			if !moved {
				return
			}
			if c, ok := e.cells[cur]; ok {
				fn(cur, c)
			}
			return
		}
		for off := int32(-1); off <= 1; off++ {
			cur[d] = k[d] + off
			walk(d+1, cur, moved || off != 0)
		}
	}
	walk(0, grid.Key{}, false)
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	k, ok := e.assign[id]
	if !ok {
		return model.Assignment{}, false
	}
	if c, ok := e.cells[k]; ok && c.cid != 0 {
		return model.Assignment{Label: model.Core, ClusterID: c.cid}, true
	}
	return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}, true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.assign))
	for id := range e.assign {
		a, _ := e.Assignment(id)
		out[id] = a
	}
	return out
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }

// Cells returns the number of live grid cells.
func (e *Engine) Cells() int { return len(e.cells) }

// String describes the configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("D-Stream(side=%g λ=%g Cm=%g Cl=%g)", e.opt.CellSide, e.opt.Lambda, e.opt.Cm, e.opt.Cl)
}
