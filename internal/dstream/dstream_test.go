package dstream

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
)

func threeBlobs(rng *rand.Rand, n int) ([]model.Point, map[int64]int) {
	truth := make(map[int64]int, n)
	pts := make([]model.Point, n)
	for i := range pts {
		b := rng.Intn(3)
		x := float64(b)*30 + rng.NormFloat64()*1.5
		y := rng.NormFloat64() * 1.5
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		truth[int64(i)] = b + 1
	}
	return pts, truth
}

func TestSeparatedBlobsClusterWell(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	data, truth := threeBlobs(rng, 3000)
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 5}
	eng, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(data, nil)
	ari := metrics.ARI(truth, metrics.Labels(eng.Snapshot()))
	if ari < 0.7 {
		t.Fatalf("ARI on separated blobs = %.3f, want >= 0.7", ari)
	}
	t.Logf("ARI = %.3f with %d cells", ari, eng.Cells())
}

func TestDenseCellConnectivity(t *testing.T) {
	// One dense strip must be one cluster; a far-away strip another.
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(82))
	var pts []model.Point
	for i := 0; i < 3000; i++ {
		base := 0.0
		if i%2 == 0 {
			base = 40
		}
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(base+rng.Float64()*8, rng.Float64()*2)})
	}
	eng.Advance(pts, nil)
	clusters := map[int]bool{}
	for _, a := range eng.Snapshot() {
		if a.ClusterID != model.NoCluster {
			clusters[a.ClusterID] = true
		}
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 strips", len(clusters))
	}
}

func TestSparseBackgroundIsNoise(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(83))
	var pts []model.Point
	// Dense blob + thin uniform background.
	for i := 0; i < 2000; i++ {
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(rng.NormFloat64(), rng.NormFloat64())})
	}
	for i := 2000; i < 2300; i++ {
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*200-100, rng.Float64()*200-100)})
	}
	eng.Advance(pts, nil)
	noiseBg, clusteredBg := 0, 0
	for id := int64(2000); id < 2300; id++ {
		a, ok := eng.Assignment(id)
		if !ok {
			continue
		}
		if a.ClusterID == model.NoCluster {
			noiseBg++
		} else {
			clusteredBg++
		}
	}
	if noiseBg < clusteredBg {
		t.Fatalf("background: %d noise vs %d clustered; sparse cells leaking into clusters", noiseBg, clusteredBg)
	}
}

func TestEvictionDropsStaleCells(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	eng, _ := New(cfg, Options{Lambda: 0.05, Gap: 100})
	var burst []model.Point
	for i := 0; i < 10; i++ {
		burst = append(burst, model.Point{ID: int64(i), Pos: geom.NewVec(0, 0)})
	}
	eng.Advance(burst, nil)
	var far []model.Point
	for i := 0; i < 3000; i++ {
		far = append(far, model.Point{ID: int64(1000 + i), Pos: geom.NewVec(60, 60)})
	}
	eng.Advance(far, nil)
	for k := range eng.cells {
		if k[0] < 30 {
			t.Fatal("stale origin cell survived eviction")
		}
	}
}

func TestDepartedPointsLeaveSnapshot(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(84))
	data, _ := threeBlobs(rng, 200)
	eng.Advance(data[:120], nil)
	eng.Advance(data[120:], data[:60])
	if got := len(eng.Snapshot()); got != 140 {
		t.Fatalf("snapshot size %d, want 140", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(model.Config{}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}
