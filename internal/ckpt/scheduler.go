package ckpt

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Scheduler drives many per-stream Runners from one goroutine: a single
// poll ticker walks every registered runner and gives it one tick. This is
// the multi-tenant shape — N streams cost one checkpointing goroutine, not
// N — while each runner keeps its own stride cadence, retry backoff, and
// store, so one stream's broken disk never delays another stream's retry
// accounting (it can delay its wall-clock slot within a tick: ticks are
// sequential; the snapshot itself is cheap, the disk I/O dominates and is
// per-store).
//
// Runners may be added and removed while Run is active; a removed runner
// simply stops being ticked. Run's shutdown writes a final generation for
// every still-registered runner with unsaved stride progress.
type Scheduler struct {
	poll time.Duration

	mu      sync.Mutex
	entries map[string]*Runner
}

// SchedulerOption configures a Scheduler.
type SchedulerOption func(*Scheduler)

// WithSchedulerPoll sets how often the scheduler sweeps its runners
// (default DefaultPoll).
func WithSchedulerPoll(d time.Duration) SchedulerOption {
	return func(s *Scheduler) {
		if d > 0 {
			s.poll = d
		}
	}
}

// NewScheduler returns an empty scheduler.
func NewScheduler(opts ...SchedulerOption) *Scheduler {
	s := &Scheduler{poll: DefaultPoll, entries: make(map[string]*Runner)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Add registers a runner under the given name, replacing any runner
// previously registered under it. The runner must not also be driven by
// its own Run loop — the scheduler is now its single driving goroutine.
func (s *Scheduler) Add(name string, r *Runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[name] = r
}

// Remove unregisters the named runner; it is not ticked again and gets no
// shutdown final. Removing an unknown name is a no-op. It returns the
// removed runner (nil when unknown) so a caller that wants a last
// generation can invoke CheckpointNow itself.
func (s *Scheduler) Remove(name string) *Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.entries[name]
	delete(s.entries, name)
	return r
}

// Names returns the registered runner names, sorted.
func (s *Scheduler) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// snapshot copies the current runner set so ticking proceeds without
// holding the lock — Add/Remove from request handlers never wait on a
// checkpoint write.
func (s *Scheduler) snapshot() []*Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Runner, 0, len(s.entries))
	for _, r := range s.entries {
		out = append(out, r)
	}
	return out
}

// Run sweeps every registered runner on the poll interval until ctx is
// canceled, then writes a final generation for each runner with unsaved
// stride progress. It is meant to be run in its own goroutine.
func (s *Scheduler) Run(ctx context.Context) {
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			for _, r := range s.snapshot() {
				r.final()
			}
			return
		case <-ticker.C:
		}
		now := time.Now()
		for _, r := range s.snapshot() {
			r.tick(now)
		}
	}
}
