package ckpt

import (
	"context"
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

// TestSchedulerDrivesManyRunners: one scheduler goroutine checkpoints two
// independent sources into two independent stores, each on its own stride
// cadence.
func TestSchedulerDrivesManyRunners(t *testing.T) {
	storeA := mustOpen(t, t.TempDir())
	storeB := mustOpen(t, t.TempDir())
	srcA, srcB := &fakeSource{}, &fakeSource{}
	recA, recB := &recorder{}, &recorder{}

	sched := NewScheduler(WithSchedulerPoll(time.Millisecond))
	sched.Add("a", NewRunner(storeA, srcA, 5, WithObserver(recA)))
	sched.Add("b", NewRunner(storeB, srcB, 2, WithObserver(recB)))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sched.Run(ctx); close(done) }()

	srcA.strides.Store(5)
	srcB.strides.Store(2)
	waitFor(t, "both streams checkpointed", func() bool {
		return len(recA.snapshot()) >= 1 && len(recB.snapshot()) >= 1
	})
	// B's tighter cadence keeps producing without A advancing.
	srcB.strides.Store(4)
	waitFor(t, "second checkpoint of b", func() bool { return len(recB.snapshot()) >= 2 })
	if got := len(recA.snapshot()); got != 1 {
		t.Fatalf("stream a checkpointed %d times without stride progress, want 1", got)
	}

	// Each store holds its own source's payload, not the other's.
	payloadA, _, err := storeA.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(payloadA); got != 5 {
		t.Fatalf("store a captured stride %d, want 5", got)
	}
	payloadB, _, err := storeB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(payloadB); got != 4 {
		t.Fatalf("store b captured stride %d, want 4", got)
	}

	cancel()
	<-done
}

// TestSchedulerShutdownFinals: cancellation writes a final generation for
// every registered runner with unsaved progress — the multi-stream
// equivalent of the single Runner's shutdown final.
func TestSchedulerShutdownFinals(t *testing.T) {
	storeA := mustOpen(t, t.TempDir())
	storeB := mustOpen(t, t.TempDir())
	srcA, srcB := &fakeSource{}, &fakeSource{}

	sched := NewScheduler(WithSchedulerPoll(time.Hour)) // never ticks organically
	sched.Add("a", NewRunner(storeA, srcA, 100))
	sched.Add("b", NewRunner(storeB, srcB, 100))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sched.Run(ctx); close(done) }()

	srcA.strides.Store(7)
	srcB.strides.Store(9)
	cancel()
	<-done

	for name, st := range map[string]*Store{"a": storeA, "b": storeB} {
		if _, _, err := st.Recover(); err != nil {
			t.Fatalf("stream %s: no final checkpoint on shutdown: %v", name, err)
		}
	}
}

// TestSchedulerRemove: a removed runner is never ticked again and gets no
// shutdown final; Names reflects membership.
func TestSchedulerRemove(t *testing.T) {
	store := mustOpen(t, t.TempDir())
	src := &fakeSource{}
	sched := NewScheduler(WithSchedulerPoll(time.Millisecond))
	r := NewRunner(store, src, 1)
	sched.Add("x", r)
	sched.Add("y", NewRunner(mustOpen(t, t.TempDir()), &fakeSource{}, 1))
	if got := sched.Names(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Names = %v", got)
	}
	if removed := sched.Remove("x"); removed != r {
		t.Fatal("Remove did not return the registered runner")
	}
	if removed := sched.Remove("x"); removed != nil {
		t.Fatal("second Remove must be a nil no-op")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sched.Run(ctx); close(done) }()
	src.strides.Store(50)
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done
	if _, _, err := store.Recover(); err == nil {
		t.Fatal("removed runner still produced checkpoints")
	}
}
