package ckpt

// Write-ahead log for the ingest pipeline. The WAL reuses the checkpoint
// frame format (frame.go): each record is one CRC32-C-framed blob whose
// payload starts with the record's 8-byte big-endian stream position (how
// many points the stream had applied before the record), followed by an
// opaque payload the server defines. Records are appended to segment
// files named wal-<position>.wseg after the position of their first
// record; a segment is rotated when it passes a size threshold, and
// records never straddle segments, so truncating the log to a checkpoint
// position is whole-file removal.
//
// Durability contract: Append writes the frame, Sync flushes it; the
// server acknowledges an ingest batch only after both, so every
// acknowledged point is either inside the newest durable checkpoint or
// replayable from the log. Torn tails (a crash mid-append) are repaired
// on the next open-for-append by truncating to the last valid frame
// boundary — exactly the state replay would have stopped at anyway.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	walPrefix = "wal-"
	walSuffix = ".wseg"

	// DefaultWALSegmentBytes is the rotation threshold for one segment.
	DefaultWALSegmentBytes = 8 << 20
)

// ErrWALWait is returned by WALReader.Next when no further complete
// record is available yet: the log ends cleanly at a frame boundary, or
// its final frame is torn in a way consistent with a write still in
// flight. A tailer retries later; a one-shot replay stops here.
var ErrWALWait = errors.New("ckpt: wal has no complete record available")

// ErrWALCorrupt marks a record that is definitively damaged (bad magic,
// checksum mismatch, or a torn frame that can no longer be in flight
// because a newer segment exists after it). Replay stops at the last
// valid record; everything after the damage is unrecoverable.
var ErrWALCorrupt = errors.New("ckpt: wal corrupt")

// WALObserver receives the WAL's telemetry; obs.WALMetrics implements it.
type WALObserver interface {
	ObserveWALAppend(bytes, segments int)
	ObserveWALSync(d time.Duration)
	ObserveWALTruncate(removed, remaining int)
}

// WALOption configures OpenWAL.
type WALOption func(*WAL)

// WithWALSegmentBytes sets the segment rotation threshold.
func WithWALSegmentBytes(n int64) WALOption {
	return func(w *WAL) {
		if n > 0 {
			w.maxSeg = n
		}
	}
}

// WithWALMaxPayload caps the payload size accepted when scanning or
// replaying records; <= 0 means unlimited.
func WithWALMaxPayload(n int64) WALOption {
	return func(w *WAL) { w.maxPayload = n }
}

// WithWALNoSync makes Sync a no-op. Benchmarks use it to isolate the
// CPU cost of the logging path from device fsync latency; production
// appenders must not.
func WithWALNoSync() WALOption {
	return func(w *WAL) { w.noSync = true }
}

// WithWALObserver attaches a telemetry hook.
func WithWALObserver(o WALObserver) WALOption {
	return func(w *WAL) { w.obs = o }
}

// WithWALLogger attaches a structured logger for repair/truncation events.
func WithWALLogger(l *slog.Logger) WALOption {
	return func(w *WAL) { w.logger = l }
}

// WAL is an append handle on a write-ahead log directory. Methods are
// safe for concurrent use — the server appends under its write mutex
// while the checkpoint scheduler truncates from its own goroutine.
type WAL struct {
	dir        string
	maxSeg     int64
	maxPayload int64
	noSync     bool
	obs        WALObserver
	logger     *slog.Logger

	mu       sync.Mutex
	f        *os.File // active segment, nil until the first Append
	segStart uint64   // position the active segment is named after
	segSize  int64
	segs     int    // segment count on disk (including active)
	scratch  []byte // reusable [8-byte pos][payload] buffer
}

// OpenWAL opens dir for appending, creating it if needed. It scans every
// segment in order and repairs the log to its last valid frame boundary:
// the first damaged or torn record — wherever it is — truncates its
// segment at the preceding boundary and deletes every later segment, so
// the log never contains records that a crashed replay could not have
// applied. The returned WAL appends after the repaired tail.
func OpenWAL(dir string, opts ...WALOption) (*WAL, error) {
	w := &WAL{dir: dir, maxSeg: DefaultWALSegmentBytes}
	for _, o := range opts {
		o(w)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating wal dir: %w", err)
	}
	starts, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	// Repair pass: find the first invalid frame across all segments.
	for i, start := range starts {
		valid, total, err := scanSegment(walSegPath(dir, start), w.maxPayload)
		if err != nil {
			return nil, err
		}
		if valid == total {
			continue
		}
		// Damage found: truncate this segment to its last valid boundary
		// and drop everything after it.
		path := walSegPath(dir, start)
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("ckpt: repairing wal segment %s: %w", path, err)
		}
		if w.logger != nil {
			w.logger.Warn("repaired torn wal segment", "segment", path,
				"valid_bytes", valid, "dropped_bytes", total-valid, "dropped_segments", len(starts)-i-1)
		}
		for _, later := range starts[i+1:] {
			if err := os.Remove(walSegPath(dir, later)); err != nil {
				return nil, fmt.Errorf("ckpt: removing wal segment past damage: %w", err)
			}
		}
		starts = starts[:i+1]
		// An empty repaired segment carries no records; remove it so the
		// next append names a fresh segment by its true position.
		if valid == 0 {
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("ckpt: removing empty wal segment: %w", err)
			}
			starts = starts[:i]
		}
		break
	}
	w.segs = len(starts)
	if n := len(starts); n > 0 {
		last := starts[n-1]
		f, err := os.OpenFile(walSegPath(dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("ckpt: opening wal segment for append: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ckpt: sizing wal segment: %w", err)
		}
		w.f, w.segStart, w.segSize = f, last, st.Size()
	}
	return w, nil
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// Append frames one record at the given stream position and writes it to
// the active segment, rotating first when the segment has reached the
// size threshold. The record is not durable until Sync returns.
func (w *WAL) Append(pos uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	need := int64(HeaderSize + 8 + len(payload))
	if w.f != nil && w.segSize > 0 && w.segSize+need > w.maxSeg && pos != w.segStart {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if w.f == nil {
		f, err := os.OpenFile(walSegPath(w.dir, pos), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("ckpt: creating wal segment: %w", err)
		}
		w.f, w.segStart, w.segSize = f, pos, 0
		w.segs++
	}
	if cap(w.scratch) < 8+len(payload) {
		w.scratch = make([]byte, 0, 8+len(payload))
	}
	w.scratch = w.scratch[:8]
	binary.BigEndian.PutUint64(w.scratch, pos)
	w.scratch = append(w.scratch, payload...)
	n, err := WriteFrame(w.f, w.scratch)
	w.segSize += int64(n)
	if err != nil {
		return fmt.Errorf("ckpt: appending wal record at position %d: %w", pos, err)
	}
	if w.obs != nil {
		w.obs.ObserveWALAppend(n, w.segs)
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.f == nil || w.noSync {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: fsync wal segment: %w", err)
	}
	if w.obs != nil {
		w.obs.ObserveWALSync(time.Since(start))
	}
	return nil
}

// rotate fsyncs and closes the active segment; the next Append opens a
// new one named after its record's position.
func (w *WAL) rotate() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("ckpt: closing wal segment: %w", err)
	}
	w.f = nil
	return nil
}

// Truncate removes whole segments that can no longer matter to recovery:
// segment i is removed iff the next segment starts at or below keepFrom
// (every record at or past keepFrom then still lives in a later segment).
// The active segment is never removed. Callers pass the position of the
// oldest checkpoint generation they retain.
func (w *WAL) Truncate(keepFrom uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := walSegments(w.dir)
	if err != nil {
		return err
	}
	removed := 0
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1] > keepFrom || (w.f != nil && starts[i] == w.segStart) {
			break
		}
		if err := os.Remove(walSegPath(w.dir, starts[i])); err != nil {
			return fmt.Errorf("ckpt: truncating wal segment: %w", err)
		}
		removed++
	}
	if removed > 0 {
		w.segs -= removed
		if w.logger != nil {
			w.logger.Info("truncated wal", "removed_segments", removed,
				"remaining_segments", w.segs, "keep_from", keepFrom)
		}
	}
	if w.obs != nil {
		w.obs.ObserveWALTruncate(removed, w.segs)
	}
	return nil
}

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walSegPath names a segment after its first record's stream position.
func walSegPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", walPrefix, start, walSuffix))
}

// parseWALSeg extracts the starting position from a segment filename.
func parseWALSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	mid := name[len(walPrefix) : len(name)-len(walSuffix)]
	start, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return start, true
}

// walSegments lists segment start positions in dir, ascending.
func walSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: scanning wal dir: %w", err)
	}
	var starts []uint64
	for _, ent := range entries {
		if start, ok := parseWALSeg(ent.Name()); ok {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// scanSegment reads records from one segment until the first invalid
// frame, returning the byte offset of the last valid frame boundary and
// the file's total size.
func scanSegment(path string, maxPayload int64) (valid, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("ckpt: opening wal segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("ckpt: sizing wal segment: %w", err)
	}
	total = st.Size()
	for {
		payload, err := ReadFrame(f, maxPayload)
		if err != nil {
			return valid, total, nil // first invalid frame: repair boundary found
		}
		if len(payload) < 8 {
			return valid, total, nil // framed but not a record: treat as damage
		}
		valid += int64(HeaderSize + len(payload))
	}
}

// WALReader iterates a log's records in order, optionally tailing a log
// that a live appender is still growing. It is not safe for concurrent
// use.
type WALReader struct {
	dir        string
	maxPayload int64

	f        *os.File
	segStart uint64
	off      int64
	started  bool
}

// OpenWALReader positions a reader so that every record covering stream
// positions >= from is yielded: reading starts at the newest segment
// whose start position is <= from (records before from are still yielded;
// the caller skips what it has already applied). from = 0 reads the whole
// log.
func OpenWALReader(dir string, from uint64, maxPayload int64) *WALReader {
	return &WALReader{dir: dir, maxPayload: maxPayload, segStart: from}
}

// Next returns the next record's stream position and payload. It returns
// ErrWALWait when the log currently ends cleanly (a tailer retries after
// the leader appends more; a one-shot replay is done), and an error
// wrapping ErrWALCorrupt at definitive damage (replay must stop; nothing
// after the damage is recoverable).
func (r *WALReader) Next() (pos uint64, payload []byte, err error) {
	for {
		if r.f == nil {
			if err := r.openNext(); err != nil {
				return 0, nil, err
			}
		}
		if _, err := r.f.Seek(r.off, io.SeekStart); err != nil {
			return 0, nil, fmt.Errorf("ckpt: seeking wal segment: %w", err)
		}
		framed, err := ReadFrame(r.f, r.maxPayload)
		if err == nil {
			if len(framed) < 8 {
				return 0, nil, fmt.Errorf("%w: record shorter than its position header", ErrWALCorrupt)
			}
			r.off += int64(HeaderSize + len(framed))
			return binary.BigEndian.Uint64(framed[:8]), framed[8:], nil
		}
		newer, nerr := r.hasNewerSegment()
		if nerr != nil {
			return 0, nil, nerr
		}
		atBoundary := errors.Is(err, io.ErrUnexpectedEOF) && r.tornHeaderOnly()
		switch {
		case atBoundary && newer:
			// Clean end of a rotated segment: move on.
			r.f.Close()
			r.f = nil
			continue
		case !newer && errors.Is(err, io.ErrUnexpectedEOF):
			// Torn tail of the newest segment — the appender may be
			// mid-write. Leave the offset so a retry re-reads the frame.
			return 0, nil, ErrWALWait
		default:
			// Damage: a non-truncation frame error, or a torn frame that a
			// newer segment proves will never be completed.
			return 0, nil, fmt.Errorf("%w: segment %s offset %d: %w",
				ErrWALCorrupt, walSegPath(r.dir, r.segStart), r.off, err)
		}
	}
}

// tornHeaderOnly reports whether the current offset is exactly at the end
// of the file — i.e. the "torn frame" is actually a clean boundary.
func (r *WALReader) tornHeaderOnly() bool {
	st, err := r.f.Stat()
	return err == nil && st.Size() == r.off
}

// openNext opens the segment the reader should process next: on first
// use, the newest segment starting at or below the requested position
// (or the oldest segment, when all start above it); afterwards, the next
// segment in order. It returns ErrWALWait when no such segment exists.
func (r *WALReader) openNext() error {
	starts, err := walSegments(r.dir)
	if err != nil {
		return err
	}
	if len(starts) == 0 {
		return ErrWALWait
	}
	var pick uint64
	found := false
	if !r.started {
		pick = starts[0]
		for _, s := range starts {
			if s <= r.segStart {
				pick = s
			}
		}
		found = true
	} else {
		for _, s := range starts {
			if s > r.segStart {
				pick = s
				found = true
				break
			}
		}
	}
	if !found {
		return ErrWALWait
	}
	f, err := os.Open(walSegPath(r.dir, pick))
	if err != nil {
		return fmt.Errorf("ckpt: opening wal segment: %w", err)
	}
	r.f, r.segStart, r.off, r.started = f, pick, 0, true
	return nil
}

// hasNewerSegment reports whether a segment newer than the current one
// exists on disk.
func (r *WALReader) hasNewerSegment() (bool, error) {
	starts, err := walSegments(r.dir)
	if err != nil {
		return false, err
	}
	for _, s := range starts {
		if s > r.segStart {
			return true, nil
		}
	}
	return false, nil
}

// Close releases the reader's file handle.
func (r *WALReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
