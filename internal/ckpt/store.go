package ckpt

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint is returned by Recover when the directory holds no
// checkpoint generation at all — the caller should start fresh.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// ErrNoValidCheckpoint is returned by Recover when generations exist but
// every one of them failed frame validation — the caller must decide
// whether starting fresh (losing the window) is acceptable.
var ErrNoValidCheckpoint = errors.New("ckpt: no valid checkpoint generation")

// DefaultKeep is how many generations a Store retains: the newest plus one
// fallback, which is the minimum for crash safety (a crash mid-write can
// tear at most the newest).
const DefaultKeep = 2

const (
	genPrefix = "ckpt-"
	genSuffix = ".disc"
	tmpSuffix = ".tmp"
)

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithKeep sets how many checkpoint generations to retain (minimum 2, the
// newest plus one fallback).
func WithKeep(n int) StoreOption {
	return func(s *Store) {
		if n >= 2 {
			s.keep = n
		}
	}
}

// WithMaxPayload caps the payload size Recover will allocate for one
// generation; <= 0 means unlimited.
func WithMaxPayload(n int64) StoreOption {
	return func(s *Store) { s.maxPayload = n }
}

// WithStoreLogf sets the destination for the store's recovery/pruning log
// lines (default: discard).
func WithStoreLogf(logf func(format string, args ...any)) StoreOption {
	return func(s *Store) {
		if logf != nil {
			s.logf = logf
		}
	}
}

// WithStoreLogger attaches a structured logger; the store's recovery and
// pruning events are also emitted through it with generation attributes.
// Independent of the WithStoreLogf seam, which keeps working.
func WithStoreLogger(l *slog.Logger) StoreOption {
	return func(s *Store) { s.slogger = l }
}

// Store persists framed checkpoint payloads in a directory as numbered
// generations (ckpt-<seq>.disc). Writes are atomic: the frame goes to a
// temp file which is fsynced and renamed into place, then the directory is
// fsynced, so a crash at any instant leaves either the previous generation
// set intact or the new generation fully visible — never a half-written
// file under a final name. Methods are not safe for concurrent use; the
// single Runner (or the single recovery path at startup) is the intended
// caller.
type Store struct {
	dir        string
	keep       int
	maxPayload int64
	seq        uint64 // highest generation present (0 = none)
	logf       func(format string, args ...any)
	slogger    *slog.Logger

	// wrapWriter, when set, wraps the temp-file writer during Save. Test
	// hook: fault-injection tests use it to fail or truncate the write
	// mid-frame, simulating a crash between the first byte and the rename.
	wrapWriter func(io.Writer) io.Writer
}

// Open prepares dir (creating it if needed), removes stale temp files left
// by a crash mid-write, and scans existing generations.
func Open(dir string, opts ...StoreOption) (*Store, error) {
	s := &Store{dir: dir, keep: DefaultKeep, logf: func(string, ...any) {}}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: scanning checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A temp file can only be a write that never completed; it was
			// never visible as a generation, so removing it is always safe.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("ckpt: removing stale temp %s: %w", name, err)
			}
			s.logf("ckpt: removed stale temp file %s (crash mid-write)", name)
			if s.slogger != nil {
				s.slogger.Warn("removed stale temp checkpoint (crash mid-write)", "file", name)
			}
			continue
		}
		if gen, ok := parseGen(name); ok && gen > s.seq {
			s.seq = gen
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// parseGen extracts the generation number from a ckpt-<seq>.disc filename.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	mid := name[len(genPrefix) : len(name)-len(genSuffix)]
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || gen == 0 {
		return 0, false
	}
	return gen, true
}

func (s *Store) genPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016d%s", genPrefix, gen, genSuffix))
}

// Generations returns the generation numbers present on disk, ascending.
func (s *Store) Generations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: scanning checkpoint dir: %w", err)
	}
	var gens []uint64
	for _, ent := range entries {
		if gen, ok := parseGen(ent.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Save durably writes payload as the next generation and prunes old
// generations beyond the retention count. On any error the directory is
// left exactly as it was: the temp file is removed and no generation
// becomes visible.
func (s *Store) Save(payload []byte) (gen uint64, err error) {
	gen = s.seq + 1
	tmp := s.genPath(gen) + tmpSuffix
	if err := s.writeTemp(tmp, payload); err != nil {
		os.Remove(tmp) // best effort; Open also sweeps stale temps
		return 0, err
	}
	final := s.genPath(gen)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("ckpt: publishing generation %d: %w", gen, err)
	}
	// The rename is only durable once the directory entry is flushed:
	// without this fsync a power cut could roll back to a state where
	// neither the temp nor the final name exists.
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	s.seq = gen
	s.prune()
	return gen, nil
}

// writeTemp writes the framed payload to path and flushes it to stable
// storage before returning.
func (s *Store) writeTemp(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: creating temp checkpoint: %w", err)
	}
	var w io.Writer = f
	if s.wrapWriter != nil {
		w = s.wrapWriter(f)
	}
	if _, err := WriteFrame(w, payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: fsync temp checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: closing temp checkpoint: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: fsync checkpoint dir: %w", err)
	}
	return nil
}

// prune removes generations beyond the newest s.keep. Failures only log:
// a leftover old generation is harmless, and the checkpoint that was just
// written must not be reported failed because of it.
func (s *Store) prune() {
	gens, err := s.Generations()
	if err != nil {
		s.logf("ckpt: prune scan failed: %v", err)
		if s.slogger != nil {
			s.slogger.Warn("checkpoint prune scan failed", "err", err)
		}
		return
	}
	if len(gens) <= s.keep {
		return
	}
	for _, gen := range gens[:len(gens)-s.keep] {
		if err := os.Remove(s.genPath(gen)); err != nil {
			s.logf("ckpt: pruning generation %d failed: %v", gen, err)
			if s.slogger != nil {
				s.slogger.Warn("pruning checkpoint generation failed", "generation", gen, "err", err)
			}
		}
	}
}

// Load reads and verifies one specific generation.
func (s *Store) Load(gen uint64) ([]byte, error) {
	f, err := os.Open(s.genPath(gen))
	if err != nil {
		return nil, fmt.Errorf("ckpt: opening generation %d: %w", gen, err)
	}
	defer f.Close()
	payload, err := ReadFrame(f, s.maxPayload)
	if err != nil {
		return nil, fmt.Errorf("ckpt: generation %d: %w", gen, err)
	}
	// A frame followed by trailing garbage means the file was appended to
	// or mixed up; treat it as corrupt rather than silently ignoring it.
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("ckpt: generation %d: %w", gen, errors.New("trailing bytes after frame"))
	}
	return payload, nil
}

// Recover returns the payload of the newest generation that passes frame
// validation, trying older generations when newer ones are torn or
// corrupt and logging every generation it skips. It returns
// ErrNoCheckpoint when the directory holds no generations, and an error
// wrapping ErrNoValidCheckpoint (with every per-generation failure
// attached) when generations exist but none validates.
func (s *Store) Recover() (payload []byte, gen uint64, err error) {
	gens, err := s.Generations()
	if err != nil {
		return nil, 0, err
	}
	if len(gens) == 0 {
		return nil, 0, ErrNoCheckpoint
	}
	var failures []error
	for i := len(gens) - 1; i >= 0; i-- {
		payload, err := s.Load(gens[i])
		if err != nil {
			s.logf("ckpt: skipping generation %d: %v", gens[i], err)
			if s.slogger != nil {
				s.slogger.Warn("skipping corrupt checkpoint generation", "generation", gens[i], "err", err)
			}
			failures = append(failures, err)
			continue
		}
		if i != len(gens)-1 {
			s.logf("ckpt: recovered from fallback generation %d (newest is %d)", gens[i], gens[len(gens)-1])
			if s.slogger != nil {
				s.slogger.Warn("recovered from fallback checkpoint generation",
					"generation", gens[i], "newest", gens[len(gens)-1])
			}
		}
		return payload, gens[i], nil
	}
	return nil, 0, fmt.Errorf("%w: %w", ErrNoValidCheckpoint, errors.Join(failures...))
}
