package ckpt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func mustSave(t *testing.T, s *Store, payload []byte) uint64 {
	t.Helper()
	gen, err := s.Save(payload)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func mustOpen(t *testing.T, dir string, opts ...StoreOption) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSaveRecover(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if _, _, err := s.Recover(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: %v, want ErrNoCheckpoint", err)
	}
	p1, p2 := testPayload(100), testPayload(200)
	g1 := mustSave(t, s, p1)
	g2 := mustSave(t, s, p2)
	if g1 != 1 || g2 != 2 {
		t.Fatalf("generations %d,%d want 1,2", g1, g2)
	}
	got, gen, err := s.Recover()
	if err != nil || gen != g2 || !bytes.Equal(got, p2) {
		t.Fatalf("recover = gen %d err %v", gen, err)
	}
	// Reopening the directory (a process restart) sees the same state and
	// continues the generation sequence.
	s2 := mustOpen(t, s.Dir())
	got, gen, err = s2.Recover()
	if err != nil || gen != g2 || !bytes.Equal(got, p2) {
		t.Fatalf("recover after reopen = gen %d err %v", gen, err)
	}
	if g3 := mustSave(t, s2, p1); g3 != 3 {
		t.Fatalf("generation after reopen = %d, want 3", g3)
	}
}

func TestStorePrunesOldGenerations(t *testing.T) {
	s := mustOpen(t, t.TempDir(), WithKeep(2))
	for i := 0; i < 5; i++ {
		mustSave(t, s, testPayload(10+i))
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("generations after prune: %v, want [4 5]", gens)
	}
}

// TestStoreCorruptNewestFallsBack: a flipped payload bit in the newest
// generation is caught by the CRC and recovery falls back to the previous
// generation.
func TestStoreCorruptNewestFallsBack(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	p1, p2 := testPayload(100), testPayload(150)
	g1 := mustSave(t, s, p1)
	g2 := mustSave(t, s, p2)

	path := s.genPath(g2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[HeaderSize+17] ^= 0x04 // one payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, gen, err := s.Recover()
	if err != nil || gen != g1 || !bytes.Equal(got, p1) {
		t.Fatalf("recover after corruption = gen %d err %v, want fallback to %d", gen, err, g1)
	}
}

// TestStoreTruncatedNewestFallsBack: the newest generation truncated at
// every byte offset (all frame boundaries included) is rejected and the
// previous generation is served instead.
func TestStoreTruncatedNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p1, p2 := testPayload(80), testPayload(90)
	g1 := mustSave(t, s, p1)
	g2 := mustSave(t, s, p2)
	raw, err := os.ReadFile(s.genPath(g2))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(s.genPath(g2), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, gen, err := s.Recover()
		if err != nil || gen != g1 || !bytes.Equal(got, p1) {
			t.Fatalf("cut=%d: recover = gen %d err %v, want fallback to %d", cut, gen, err, g1)
		}
	}
}

func TestStoreTrailingGarbageRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	g1 := mustSave(t, s, testPayload(40))
	g2 := mustSave(t, s, testPayload(50))
	f, err := os.OpenFile(s.genPath(g2), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("junk")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, gen, err := s.Recover()
	if err != nil || gen != g1 {
		t.Fatalf("recover = gen %d err %v, want fallback to %d", gen, err, g1)
	}
}

func TestStoreAllGenerationsCorrupt(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	mustSave(t, s, testPayload(30))
	mustSave(t, s, testPayload(35))
	gens, _ := s.Generations()
	for _, g := range gens {
		if err := os.WriteFile(s.genPath(g), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := s.Recover()
	if !errors.Is(err, ErrNoValidCheckpoint) {
		t.Fatalf("recover = %v, want ErrNoValidCheckpoint", err)
	}
}

// TestStoreCrashMidWrite: a write failing partway through the frame (disk
// full, power cut) must not publish a new generation, must clean up its
// temp file, and must leave the previous generation recoverable.
func TestStoreCrashMidWrite(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	p1 := testPayload(120)
	g1 := mustSave(t, s, p1)

	for _, limit := range []int{0, 3, HeaderSize, HeaderSize + 1, HeaderSize + 60} {
		s.wrapWriter = func(w io.Writer) io.Writer { return &teeLimit{w: w, limit: limit} }
		if _, err := s.Save(testPayload(130)); err == nil {
			t.Fatalf("limit=%d: save with failing writer succeeded", limit)
		}
		s.wrapWriter = nil

		gens, err := s.Generations()
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) != 1 || gens[0] != g1 {
			t.Fatalf("limit=%d: generations %v after failed save, want [%d]", limit, gens, g1)
		}
		entries, _ := os.ReadDir(s.Dir())
		for _, e := range entries {
			if filepath.Ext(e.Name()) == tmpSuffix {
				t.Fatalf("limit=%d: stale temp %s left behind", limit, e.Name())
			}
		}
		got, gen, err := s.Recover()
		if err != nil || gen != g1 || !bytes.Equal(got, p1) {
			t.Fatalf("limit=%d: recover = gen %d err %v", limit, gen, err)
		}
	}
	// The store still works once the fault clears.
	p2 := testPayload(140)
	g2 := mustSave(t, s, p2)
	got, gen, err := s.Recover()
	if err != nil || gen != g2 || !bytes.Equal(got, p2) {
		t.Fatalf("recover after fault cleared = gen %d err %v", gen, err)
	}
}

// teeLimit forwards writes to w until limit bytes, then fails — the
// on-disk temp file ends up torn exactly as a crash would leave it.
type teeLimit struct {
	w     io.Writer
	limit int
	n     int
}

func (t *teeLimit) Write(p []byte) (int, error) {
	if t.n+len(p) <= t.limit {
		t.n += len(p)
		return t.w.Write(p)
	}
	take := t.limit - t.n
	t.n = t.limit
	if take > 0 {
		t.w.Write(p[:take])
	}
	return take, errors.New("injected crash mid-write")
}

// TestStoreOpenSweepsStaleTemp: a temp file left by a crash between write
// and rename is removed on the next Open, and never mistaken for a
// generation.
func TestStoreOpenSweepsStaleTemp(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g1 := mustSave(t, s, testPayload(25))
	stale := s.genPath(g1+1) + tmpSuffix
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp survived reopen")
	}
	_, gen, err := s2.Recover()
	if err != nil || gen != g1 {
		t.Fatalf("recover = gen %d err %v, want %d", gen, err, g1)
	}
}
