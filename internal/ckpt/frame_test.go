package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// testPayload is deterministic so every corruption assertion is exact.
func testPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + 17)
	}
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 20, 257, 4096} {
		payload := testPayload(n)
		var buf bytes.Buffer
		wrote, err := WriteFrame(&buf, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if wrote != HeaderSize+n || buf.Len() != wrote {
			t.Fatalf("n=%d: wrote %d bytes, want %d", n, wrote, HeaderSize+n)
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload mangled", n)
		}
	}
}

// TestFrameTruncationEverywhere: a frame cut short at ANY byte offset —
// every header boundary and every payload position — must be rejected,
// never decoded as a shorter valid frame.
func TestFrameTruncationEverywhere(t *testing.T) {
	payload := testPayload(64)
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if err == nil {
			t.Fatalf("frame truncated to %d of %d bytes accepted", cut, len(frame))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestFrameBitFlips: flipping any single bit anywhere in the frame —
// magic, version, length, checksum, or payload — must be detected.
func TestFrameBitFlips(t *testing.T) {
	payload := testPayload(256)
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for pos := 0; pos < len(frame); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 1 << bit
			if _, err := ReadFrame(bytes.NewReader(mut), 1<<20); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", pos, bit)
			}
		}
	}
}

func TestFrameErrorKinds(t *testing.T) {
	payload := testPayload(32)
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	corrupt := func(pos int, x byte) []byte {
		mut := append([]byte(nil), frame...)
		mut[pos] ^= x
		return mut
	}
	if _, err := ReadFrame(bytes.NewReader(corrupt(0, 0xff)), 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic corruption: %v, want ErrBadMagic", err)
	}
	if _, err := ReadFrame(bytes.NewReader(corrupt(5, 0x01)), 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version corruption: %v, want ErrBadVersion", err)
	}
	if _, err := ReadFrame(bytes.NewReader(corrupt(19, 0x01)), 0); !errors.Is(err, ErrChecksum) {
		t.Errorf("crc corruption: %v, want ErrChecksum", err)
	}
	if _, err := ReadFrame(bytes.NewReader(corrupt(HeaderSize+3, 0x10)), 0); !errors.Is(err, ErrChecksum) {
		t.Errorf("payload corruption: %v, want ErrChecksum", err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame), int64(len(payload)-1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize payload: %v, want ErrTooLarge", err)
	}
}

// failingWriter fails (or short-writes) once limit bytes have been
// accepted, simulating a disk filling up or a crash mid-write.
type failingWriter struct {
	limit int
	n     int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n+len(p) <= w.limit {
		w.n += len(p)
		return len(p), nil
	}
	take := w.limit - w.n
	w.n = w.limit
	return take, fmt.Errorf("injected write failure after %d bytes", w.limit)
}

// TestFrameFailingWriter: a write failing at any byte must surface as an
// error from WriteFrame — no silent short frames.
func TestFrameFailingWriter(t *testing.T) {
	payload := testPayload(48)
	total := HeaderSize + len(payload)
	for limit := 0; limit < total; limit++ {
		if _, err := WriteFrame(&failingWriter{limit: limit}, payload); err == nil {
			t.Fatalf("write failing at byte %d reported success", limit)
		}
	}
}
