package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// walRec is one (position, payload) pair used to build test logs.
type walRec struct {
	pos     uint64
	payload []byte
}

// buildWAL writes recs into dir with the given segment threshold and
// closes the appender.
func buildWAL(t *testing.T, dir string, segBytes int64, recs []walRec) {
	t.Helper()
	w, err := OpenWAL(dir, WithWALSegmentBytes(segBytes))
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for _, rec := range recs {
		if err := w.Append(rec.pos, rec.payload); err != nil {
			t.Fatalf("Append(%d): %v", rec.pos, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// readAll drains a reader from the given position, returning every record
// it yields and the terminal error (ErrWALWait or an ErrWALCorrupt wrap).
func readAll(t *testing.T, dir string, from uint64) ([]walRec, error) {
	t.Helper()
	r := OpenWALReader(dir, from, 1<<20)
	defer r.Close()
	var out []walRec
	for {
		pos, payload, err := r.Next()
		if err != nil {
			return out, err
		}
		out = append(out, walRec{pos, append([]byte(nil), payload...)})
	}
}

// testRecs builds n distinguishable records with ~32-byte payloads.
func testRecs(n int) []walRec {
	recs := make([]walRec, n)
	for i := range recs {
		recs[i] = walRec{
			pos:     uint64(i * 10),
			payload: []byte(fmt.Sprintf("record-%03d-%s", i, string(bytes.Repeat([]byte{byte('a' + i%26)}, 16)))),
		}
	}
	return recs
}

// requirePrefix asserts got is a byte-identical prefix of want.
func requirePrefix(t *testing.T, got, want []walRec) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("read %d records, only %d were written", len(got), len(want))
	}
	for i := range got {
		if got[i].pos != want[i].pos || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)",
				i, got[i].pos, got[i].payload, want[i].pos, want[i].payload)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecs(7)
	buildWAL(t, dir, DefaultWALSegmentBytes, recs)

	got, err := readAll(t, dir, 0)
	if !errors.Is(err, ErrWALWait) {
		t.Fatalf("terminal error = %v, want ErrWALWait", err)
	}
	requirePrefix(t, got, recs)
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	recs := testRecs(20)
	// ~60 bytes per framed record; a 150-byte threshold forces rotation
	// every couple of records.
	buildWAL(t, dir, 150, recs)

	starts, err := walSegments(dir)
	if err != nil {
		t.Fatalf("walSegments: %v", err)
	}
	if len(starts) < 3 {
		t.Fatalf("got %d segments, want rotation to produce at least 3", len(starts))
	}
	for i, s := range starts {
		// Segments are named by their first record's position, so starts
		// must be a subsequence of record positions, ascending.
		if i > 0 && s <= starts[i-1] {
			t.Fatalf("segment starts not ascending: %v", starts)
		}
	}
	got, err := readAll(t, dir, 0)
	if !errors.Is(err, ErrWALWait) {
		t.Fatalf("terminal error = %v, want ErrWALWait", err)
	}
	requirePrefix(t, got, recs)
	if len(got) != len(recs) {
		t.Fatalf("read %d records across segments, want %d", len(got), len(recs))
	}
}

func TestWALTruncate(t *testing.T) {
	dir := t.TempDir()
	recs := testRecs(20)
	w, err := OpenWAL(dir, WithWALSegmentBytes(150))
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	for _, rec := range recs {
		if err := w.Append(rec.pos, rec.payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before, _ := walSegments(dir)

	// Truncating to 0 must remove nothing.
	if err := w.Truncate(0); err != nil {
		t.Fatalf("Truncate(0): %v", err)
	}
	if after, _ := walSegments(dir); len(after) != len(before) {
		t.Fatalf("Truncate(0) removed segments: %d -> %d", len(before), len(after))
	}

	// Truncating to a mid-log position removes only segments whose
	// successor starts at or below it; every record >= keepFrom survives.
	keepFrom := recs[10].pos
	if err := w.Truncate(keepFrom); err != nil {
		t.Fatalf("Truncate(%d): %v", keepFrom, err)
	}
	after, _ := walSegments(dir)
	if len(after) >= len(before) {
		t.Fatalf("Truncate(%d) removed nothing (%d segments)", keepFrom, len(after))
	}
	got, err := readAll(t, dir, keepFrom)
	if !errors.Is(err, ErrWALWait) {
		t.Fatalf("terminal error = %v, want ErrWALWait", err)
	}
	// The reader may yield records before keepFrom (the caller skips
	// those); it must yield every record at or past it.
	var tail []walRec
	for _, rec := range got {
		if rec.pos >= keepFrom {
			tail = append(tail, rec)
		}
	}
	requirePrefix(t, tail, recs[10:])
	if len(tail) != len(recs)-10 {
		t.Fatalf("after truncate, read %d records >= %d, want %d", len(tail), keepFrom, len(recs)-10)
	}

	// The active segment must survive even when keepFrom passes its end.
	if err := w.Truncate(1 << 60); err != nil {
		t.Fatalf("Truncate(max): %v", err)
	}
	final, _ := walSegments(dir)
	if len(final) == 0 {
		t.Fatal("truncate removed the active segment")
	}
}

// TestWALTruncationAtEveryOffset is the torn-write sweep: for every byte
// length the log's final segment could have been cut to by a crash,
// replay must yield a byte-identical prefix of the original records and
// stop cleanly, and OpenWAL must repair the log to a state that accepts
// new appends which replay contiguously after that prefix.
func TestWALTruncationAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	recs := testRecs(6)
	buildWAL(t, master, DefaultWALSegmentBytes, recs)
	starts, err := walSegments(master)
	if err != nil || len(starts) != 1 {
		t.Fatalf("want a single master segment, got %v (%v)", starts, err)
	}
	segName := filepath.Base(walSegPath(master, starts[0]))
	whole, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatalf("reading master segment: %v", err)
	}

	for cut := 0; cut < len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), whole[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}

		// Replay the torn log: a prefix, then a clean stop (a torn tail of
		// the newest segment is indistinguishable from an in-flight append,
		// so the terminal error is ErrWALWait, never a panic or a bogus
		// record).
		got, rerr := readAll(t, dir, 0)
		if !errors.Is(rerr, ErrWALWait) {
			t.Fatalf("cut %d: terminal error = %v, want ErrWALWait", cut, rerr)
		}
		requirePrefix(t, got, recs)
		prefix := len(got)

		// Repair and append: the recovered log must accept a new record and
		// replay prefix + new contiguously.
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("cut %d: OpenWAL: %v", cut, err)
		}
		next := walRec{pos: 1000, payload: []byte("post-repair")}
		if err := w.Append(next.pos, next.payload); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		again, rerr := readAll(t, dir, 0)
		if !errors.Is(rerr, ErrWALWait) {
			t.Fatalf("cut %d: post-repair terminal error = %v", cut, rerr)
		}
		want := append(append([]walRec(nil), recs[:prefix]...), next)
		requirePrefix(t, again, want)
		if len(again) != len(want) {
			t.Fatalf("cut %d: post-repair read %d records, want %d", cut, len(again), len(want))
		}
	}
}

// TestWALBitFlips flips every bit of the log in turn: replay must yield a
// byte-identical prefix of the original records and stop (wait or
// corrupt) without ever yielding a damaged record — the CRC32-C frame is
// what stands between a flipped bit and silent divergence.
func TestWALBitFlips(t *testing.T) {
	master := t.TempDir()
	recs := testRecs(4)
	buildWAL(t, master, DefaultWALSegmentBytes, recs)
	starts, _ := walSegments(master)
	segName := filepath.Base(walSegPath(master, starts[0]))
	whole, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatalf("reading master segment: %v", err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, segName)
	for off := 0; off < len(whole); off++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), whole...)
			flipped[off] ^= 1 << bit
			if err := os.WriteFile(path, flipped, 0o644); err != nil {
				t.Fatalf("writing flipped segment: %v", err)
			}
			got, rerr := readAll(t, dir, 0)
			if !errors.Is(rerr, ErrWALWait) && !errors.Is(rerr, ErrWALCorrupt) {
				t.Fatalf("flip %d/%d: terminal error = %v", off, bit, rerr)
			}
			requirePrefix(t, got, recs)
			if len(got) == len(recs) {
				t.Fatalf("flip %d/%d: all %d records replayed despite damage", off, bit, len(recs))
			}
		}
	}
}

// TestWALTornFinalFrame covers the canonical crash: a partial frame at
// the very end of the newest segment. A tailer waits (the append may be
// in flight); OpenWAL repairs the tail and appending resumes.
func TestWALTornFinalFrame(t *testing.T) {
	dir := t.TempDir()
	recs := testRecs(3)
	buildWAL(t, dir, DefaultWALSegmentBytes, recs)
	starts, _ := walSegments(dir)
	path := walSegPath(dir, starts[0])

	// Simulate a torn append: half of a frame header.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("DCKP\x00\x00")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, rerr := readAll(t, dir, 0)
	if !errors.Is(rerr, ErrWALWait) {
		t.Fatalf("torn tail: terminal error = %v, want ErrWALWait", rerr)
	}
	requirePrefix(t, got, recs)
	if len(got) != len(recs) {
		t.Fatalf("torn tail: read %d complete records, want %d", len(got), len(recs))
	}

	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL over torn tail: %v", err)
	}
	next := walRec{pos: 999, payload: []byte("after-repair")}
	if err := w.Append(next.pos, next.payload); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	w.Close()
	again, rerr := readAll(t, dir, 0)
	if !errors.Is(rerr, ErrWALWait) {
		t.Fatalf("post-repair terminal error = %v", rerr)
	}
	requirePrefix(t, again, append(append([]walRec(nil), recs...), next))
	if len(again) != len(recs)+1 {
		t.Fatalf("post-repair read %d records, want %d", len(again), len(recs)+1)
	}
}

// TestWALCorruptionMidLog: damage in a non-final segment is definitive —
// a newer segment proves the frame will never be completed — so the
// reader reports ErrWALCorrupt, and OpenWAL drops everything past the
// damage.
func TestWALCorruptionMidLog(t *testing.T) {
	dir := t.TempDir()
	recs := testRecs(20)
	buildWAL(t, dir, 150, recs)
	starts, _ := walSegments(dir)
	if len(starts) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(starts))
	}

	// Flip a payload byte in the middle segment.
	victim := walSegPath(dir, starts[1])
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rerr := readAll(t, dir, 0)
	if !errors.Is(rerr, ErrWALCorrupt) {
		t.Fatalf("mid-log damage: terminal error = %v, want ErrWALCorrupt", rerr)
	}
	requirePrefix(t, got, recs)
	prefix := len(got)
	if prefix == 0 || prefix >= len(recs) {
		t.Fatalf("mid-log damage: replayed %d of %d records, want a proper prefix", prefix, len(recs))
	}

	// Repair: later segments are unrecoverable and must be dropped; the
	// log then replays exactly the prefix the reader salvaged.
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL over mid-log damage: %v", err)
	}
	w.Close()
	again, rerr := readAll(t, dir, 0)
	if !errors.Is(rerr, ErrWALWait) {
		t.Fatalf("post-repair terminal error = %v", rerr)
	}
	requirePrefix(t, again, recs)
	if len(again) != prefix {
		t.Fatalf("post-repair replayed %d records, reader salvaged %d", len(again), prefix)
	}
}

// TestWALReaderTailsLiveAppends: a reader that has hit ErrWALWait picks
// up records appended afterwards, including across a rotation.
func TestWALReaderTailsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WithWALSegmentBytes(150))
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()

	r := OpenWALReader(dir, 0, 1<<20)
	defer r.Close()
	if _, _, err := r.Next(); !errors.Is(err, ErrWALWait) {
		t.Fatalf("empty log: %v, want ErrWALWait", err)
	}

	recs := testRecs(12)
	for i, rec := range recs {
		if err := w.Append(rec.pos, rec.payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		pos, payload, err := r.Next()
		if err != nil {
			t.Fatalf("tailing record %d: %v", i, err)
		}
		if pos != rec.pos || !bytes.Equal(payload, rec.payload) {
			t.Fatalf("tailing record %d: got (%d, %q), want (%d, %q)", i, pos, payload, rec.pos, rec.payload)
		}
		if _, _, err := r.Next(); !errors.Is(err, ErrWALWait) {
			t.Fatalf("after record %d: %v, want ErrWALWait", i, err)
		}
	}
	if starts, _ := walSegments(dir); len(starts) < 2 {
		t.Fatalf("tail test never crossed a rotation (%d segments)", len(starts))
	}
}
