package ckpt

import (
	"bytes"
	"context"
	"io"
	"time"
)

// Source is what the Runner checkpoints: the running service. Both methods
// must be safe for concurrent use (the server guards them with its mutex).
type Source interface {
	// Strides returns the number of window advances processed so far; the
	// Runner checkpoints every N of them.
	Strides() uint64
	// WriteCheckpoint writes a restorable snapshot of the service to w.
	WriteCheckpoint(w io.Writer) error
}

// Record describes one checkpoint attempt, delivered to the Observer.
type Record struct {
	Gen      uint64 // generation written; 0 on failure
	Strides  uint64 // source stride count captured for this attempt
	Bytes    int    // payload size; 0 on failure
	Duration time.Duration
	Err      error // nil on success
}

// Observer receives one Record per checkpoint attempt. The obs package's
// CheckpointMetrics implements it to feed the disc_checkpoint_* family.
type Observer interface {
	ObserveCheckpoint(Record)
}

// Runner defaults.
const (
	DefaultPoll       = time.Second
	DefaultBackoff    = time.Second
	DefaultMaxBackoff = time.Minute
)

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithPoll sets how often the runner samples the source's stride count.
func WithPoll(d time.Duration) RunnerOption {
	return func(r *Runner) {
		if d > 0 {
			r.poll = d
		}
	}
}

// WithBackoff sets the initial and maximum retry delay after a failed
// checkpoint; the delay doubles per consecutive failure up to max.
func WithBackoff(initial, max time.Duration) RunnerOption {
	return func(r *Runner) {
		if initial > 0 {
			r.backoff = initial
		}
		if max >= initial {
			r.maxBackoff = max
		}
	}
}

// WithObserver attaches a per-attempt metrics hook.
func WithObserver(o Observer) RunnerOption {
	return func(r *Runner) { r.obs = o }
}

// WithRunnerLogf sets the destination for the runner's log lines
// (default: discard).
func WithRunnerLogf(logf func(format string, args ...any)) RunnerOption {
	return func(r *Runner) {
		if logf != nil {
			r.logf = logf
		}
	}
}

// Runner periodically persists a Source through a Store: every `every`
// strides it writes a new generation; a failed write is retried with
// exponential backoff without blocking the service (the snapshot is taken
// under the server's lock, the disk I/O outside any lock).
type Runner struct {
	store *Store
	src   Source
	every uint64

	poll       time.Duration
	backoff    time.Duration
	maxBackoff time.Duration
	obs        Observer
	logf       func(format string, args ...any)

	lastSaved uint64 // stride count at the last successful checkpoint
}

// NewRunner returns a runner checkpointing src into store every `every`
// strides (minimum 1).
func NewRunner(store *Store, src Source, every uint64, opts ...RunnerOption) *Runner {
	if every == 0 {
		every = 1
	}
	r := &Runner{
		store: store, src: src, every: every,
		poll:       DefaultPoll,
		backoff:    DefaultBackoff,
		maxBackoff: DefaultMaxBackoff,
		logf:       func(string, ...any) {},
	}
	for _, o := range opts {
		o(r)
	}
	// Strides already processed when the runner is created (e.g. restored
	// from a checkpoint at startup) are durable or intentionally fresh;
	// the first automatic checkpoint comes after `every` further strides.
	r.lastSaved = src.Strides()
	return r
}

// CheckpointNow takes one snapshot and persists it, regardless of stride
// progress, reporting the attempt to the observer. It returns the
// generation written.
func (r *Runner) CheckpointNow() (uint64, error) {
	start := time.Now()
	strides := r.src.Strides()
	var buf bytes.Buffer
	gen, err := uint64(0), r.src.WriteCheckpoint(&buf)
	if err == nil {
		gen, err = r.store.Save(buf.Bytes())
	}
	rec := Record{Gen: gen, Strides: strides, Duration: time.Since(start), Err: err}
	if err == nil {
		rec.Bytes = buf.Len()
		r.lastSaved = strides
	}
	if r.obs != nil {
		r.obs.ObserveCheckpoint(rec)
	}
	return gen, err
}

// Run checkpoints src until ctx is canceled, then — if strides advanced
// since the last successful checkpoint — writes one final generation so a
// graceful shutdown never loses completed strides. It is meant to be run
// in its own goroutine.
func (r *Runner) Run(ctx context.Context) {
	backoff := time.Duration(0) // active retry delay; 0 = healthy
	var notBefore time.Time     // earliest next attempt while backing off

	ticker := time.NewTicker(r.poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			r.final()
			return
		case <-ticker.C:
		}
		if backoff > 0 && time.Now().Before(notBefore) {
			continue
		}
		strides := r.src.Strides()
		if strides < r.lastSaved+r.every {
			continue
		}
		gen, err := r.CheckpointNow()
		if err != nil {
			if backoff == 0 {
				backoff = r.backoff
			} else if backoff < r.maxBackoff {
				backoff = min(2*backoff, r.maxBackoff)
			}
			notBefore = time.Now().Add(backoff)
			r.logf("ckpt: checkpoint at stride %d failed (retry in %v): %v", strides, backoff, err)
			continue
		}
		backoff = 0
		r.logf("ckpt: wrote generation %d at stride %d", gen, strides)
	}
}

// final writes a last checkpoint on shutdown when there is unsaved stride
// progress; failures only log — shutdown must not hang on a broken disk.
func (r *Runner) final() {
	if r.src.Strides() == r.lastSaved {
		return
	}
	gen, err := r.CheckpointNow()
	if err != nil {
		r.logf("ckpt: final checkpoint on shutdown failed: %v", err)
		return
	}
	r.logf("ckpt: wrote final generation %d on shutdown", gen)
}
