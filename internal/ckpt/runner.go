package ckpt

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"time"

	"disc/internal/trace"
)

// Source is what the Runner checkpoints: the running service. Both methods
// must be safe for concurrent use (the server guards them with its mutex).
type Source interface {
	// Strides returns the number of window advances processed so far; the
	// Runner checkpoints every N of them.
	Strides() uint64
	// WriteCheckpoint writes a restorable snapshot of the service to w.
	WriteCheckpoint(w io.Writer) error
}

// TraceSource is optionally implemented by a Source that can name the
// trace of the most recent stride. A Runner with a tracer attached joins
// its checkpoint spans to that trace, so a slow stride's recorded trace
// also shows the checkpoint write it triggered.
type TraceSource interface {
	TraceContext() trace.SpanContext
}

// Record describes one checkpoint attempt, delivered to the Observer.
type Record struct {
	Gen      uint64 // generation written; 0 on failure
	Strides  uint64 // source stride count captured for this attempt
	Bytes    int    // payload size; 0 on failure
	Duration time.Duration
	Err      error // nil on success
}

// Observer receives one Record per checkpoint attempt. The obs package's
// CheckpointMetrics implements it to feed the disc_checkpoint_* family.
type Observer interface {
	ObserveCheckpoint(Record)
}

// Runner defaults.
const (
	DefaultPoll       = time.Second
	DefaultBackoff    = time.Second
	DefaultMaxBackoff = time.Minute
)

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithPoll sets how often the runner samples the source's stride count.
func WithPoll(d time.Duration) RunnerOption {
	return func(r *Runner) {
		if d > 0 {
			r.poll = d
		}
	}
}

// WithBackoff sets the initial and maximum retry delay after a failed
// checkpoint; the delay doubles per consecutive failure up to max.
func WithBackoff(initial, max time.Duration) RunnerOption {
	return func(r *Runner) {
		if initial > 0 {
			r.backoff = initial
		}
		if max >= initial {
			r.maxBackoff = max
		}
	}
}

// WithObserver attaches a per-attempt metrics hook.
func WithObserver(o Observer) RunnerOption {
	return func(r *Runner) { r.obs = o }
}

// WithRunnerLogf sets the destination for the runner's log lines
// (default: discard).
func WithRunnerLogf(logf func(format string, args ...any)) RunnerOption {
	return func(r *Runner) {
		if logf != nil {
			r.logf = logf
		}
	}
}

// WithRunnerLogger attaches a structured logger. Every runner log line is
// emitted through it with stride / generation / trace_id attributes, in
// addition to whatever WithRunnerLogf destination is set — the two seams
// are independent so existing logf-based tests and callers keep working.
func WithRunnerLogger(l *slog.Logger) RunnerOption {
	return func(r *Runner) { r.slogger = l }
}

// WithRunnerTracer makes each checkpoint attempt record a span tree —
// "checkpoint" with "checkpoint.snapshot" and "checkpoint.save" children.
// When the Source also implements TraceSource, the fragment joins the
// covered stride's trace by id; otherwise it is recorded standalone.
func WithRunnerTracer(t *trace.Tracer) RunnerOption {
	return func(r *Runner) { r.tracer = t }
}

// Runner periodically persists a Source through a Store: every `every`
// strides it writes a new generation; a failed write is retried with
// exponential backoff without blocking the service (the snapshot is taken
// under the server's lock, the disk I/O outside any lock).
type Runner struct {
	store *Store
	src   Source
	every uint64

	poll       time.Duration
	backoff    time.Duration
	maxBackoff time.Duration
	obs        Observer
	logf       func(format string, args ...any)
	slogger    *slog.Logger
	tracer     *trace.Tracer

	lastSaved uint64 // stride count at the last successful checkpoint
	// lastTraceID names the trace the most recent checkpoint attempt joined
	// (empty when untraced); log lines carry it so a slow checkpoint can be
	// looked up at /debug/traces. The runner is driven by exactly one
	// goroutine at a time (its own Run loop, or a Scheduler), so plain
	// fields suffice.
	lastTraceID string
	// Retry state across ticks: curBackoff is the active retry delay (0 =
	// healthy) and notBefore the earliest next attempt while backing off.
	curBackoff time.Duration
	notBefore  time.Time
}

// NewRunner returns a runner checkpointing src into store every `every`
// strides (minimum 1).
func NewRunner(store *Store, src Source, every uint64, opts ...RunnerOption) *Runner {
	if every == 0 {
		every = 1
	}
	r := &Runner{
		store: store, src: src, every: every,
		poll:       DefaultPoll,
		backoff:    DefaultBackoff,
		maxBackoff: DefaultMaxBackoff,
		logf:       func(string, ...any) {},
	}
	for _, o := range opts {
		o(r)
	}
	// Strides already processed when the runner is created (e.g. restored
	// from a checkpoint at startup) are durable or intentionally fresh;
	// the first automatic checkpoint comes after `every` further strides.
	r.lastSaved = src.Strides()
	return r
}

// CheckpointNow takes one snapshot and persists it, regardless of stride
// progress, reporting the attempt to the observer. It returns the
// generation written.
func (r *Runner) CheckpointNow() (uint64, error) {
	var tr *trace.Trace
	if r.tracer != nil {
		var parent trace.SpanContext
		if ts, ok := r.src.(TraceSource); ok {
			parent = ts.TraceContext()
		}
		tr = r.tracer.StartTrace(parent)
		r.lastTraceID = tr.ID().String()
	}
	start := time.Now()
	root := tr.StartSpanAt("checkpoint", nil, start)
	strides := r.src.Strides()
	spSnap := tr.StartSpanAt("checkpoint.snapshot", root, start)
	var buf bytes.Buffer
	gen, err := uint64(0), r.src.WriteCheckpoint(&buf)
	spSnap.SetInt("bytes", buf.Len())
	spSnap.EndNow()
	if err == nil {
		spSave := tr.StartSpan("checkpoint.save", root)
		gen, err = r.store.Save(buf.Bytes())
		spSave.SetInt("generation", int(gen))
		spSave.EndNow()
	}
	rec := Record{Gen: gen, Strides: strides, Duration: time.Since(start), Err: err}
	if err == nil {
		rec.Bytes = buf.Len()
		r.lastSaved = strides
	}
	root.SetInt("generation", int(gen))
	root.EndNow()
	if tr != nil {
		r.tracer.Finish(tr)
	}
	if r.obs != nil {
		r.obs.ObserveCheckpoint(rec)
	}
	return gen, err
}

// Run checkpoints src until ctx is canceled, then — if strides advanced
// since the last successful checkpoint — writes one final generation so a
// graceful shutdown never loses completed strides. It is meant to be run
// in its own goroutine. A process hosting many streams should drive the
// per-stream runners through one shared Scheduler instead of one Run
// goroutine each.
func (r *Runner) Run(ctx context.Context) {
	ticker := time.NewTicker(r.poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			r.final()
			return
		case <-ticker.C:
		}
		r.tick(time.Now())
	}
}

// tick runs one scheduling step at the given instant: if the source has
// advanced `every` strides since the last save and any retry backoff has
// elapsed, one checkpoint is taken and persisted. It never blocks beyond
// that single attempt. Exactly one goroutine may drive a runner's ticks.
func (r *Runner) tick(now time.Time) {
	if r.curBackoff > 0 && now.Before(r.notBefore) {
		return
	}
	strides := r.src.Strides()
	if strides < r.lastSaved+r.every {
		return
	}
	gen, err := r.CheckpointNow()
	if err != nil {
		if r.curBackoff == 0 {
			r.curBackoff = r.backoff
		} else if r.curBackoff < r.maxBackoff {
			r.curBackoff = min(2*r.curBackoff, r.maxBackoff)
		}
		r.notBefore = now.Add(r.curBackoff)
		r.logf("ckpt: checkpoint at stride %d failed (retry in %v): %v", strides, r.curBackoff, err)
		if r.slogger != nil {
			r.slogger.Error("checkpoint failed",
				"stride", strides, "retry_in", r.curBackoff, "trace_id", r.lastTraceID, "err", err)
		}
		return
	}
	r.curBackoff = 0
	r.logf("ckpt: wrote generation %d at stride %d", gen, strides)
	if r.slogger != nil {
		r.slogger.Info("checkpoint written",
			"generation", gen, "stride", strides, "trace_id", r.lastTraceID)
	}
}

// final writes a last checkpoint on shutdown when there is unsaved stride
// progress; failures only log — shutdown must not hang on a broken disk.
func (r *Runner) final() {
	if r.src.Strides() == r.lastSaved {
		return
	}
	gen, err := r.CheckpointNow()
	if err != nil {
		r.logf("ckpt: final checkpoint on shutdown failed: %v", err)
		if r.slogger != nil {
			r.slogger.Error("final checkpoint on shutdown failed",
				"stride", r.src.Strides(), "trace_id", r.lastTraceID, "err", err)
		}
		return
	}
	r.logf("ckpt: wrote final generation %d on shutdown", gen)
	if r.slogger != nil {
		r.slogger.Info("final checkpoint written on shutdown",
			"generation", gen, "stride", r.lastSaved, "trace_id", r.lastTraceID)
	}
}
