// Package ckpt turns the in-memory engine/service snapshot into crash-safe
// persistence. It has three layers:
//
//   - A framed on-disk format (frame.go): a fixed header of magic, format
//     version, payload length, and a CRC32-C checksum wrapped around an
//     opaque payload (in practice the gob snapshot the server already
//     produces). Any torn write — truncation at any byte, a flipped bit,
//     a short write — is detected at read time instead of being decoded
//     into a silently wrong engine.
//   - An atomic generational store (store.go): each checkpoint is written
//     to a temp file, fsynced, and renamed into place as the next
//     generation; the previous generation is retained, so recovery can
//     fall back when the newest file is torn or corrupt.
//   - A periodic runner (runner.go): watches a Source's stride count and
//     checkpoints every N strides, with retry/backoff on I/O failure and
//     an Observer hook for the disc_checkpoint_* metrics family.
//
// Everything is stdlib-only, matching the repository rule.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout (big-endian):
//
//	offset 0  magic   "DCKP" (4 bytes)
//	offset 4  version uint32 (currently 1)
//	offset 8  length  uint64 payload bytes
//	offset 16 crc32c  uint32 Castagnoli checksum of the payload
//	offset 20 payload
const (
	frameMagic   = "DCKP"
	frameVersion = 1
	// HeaderSize is the size of the fixed frame header in bytes.
	HeaderSize = 20
)

// Errors distinguishing why a frame was rejected. Torn files (shorter than
// the header, or shorter than the declared payload) surface as errors
// wrapping io.ErrUnexpectedEOF.
var (
	ErrBadMagic   = errors.New("ckpt: bad frame magic")
	ErrBadVersion = errors.New("ckpt: unsupported frame version")
	ErrTooLarge   = errors.New("ckpt: frame payload exceeds limit")
	ErrChecksum   = errors.New("ckpt: frame checksum mismatch")
)

// castagnoli is the CRC32-C table; Castagnoli has hardware support on
// amd64/arm64 and better error-detection properties than IEEE.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one framed payload to w. The header carries the
// payload's length and CRC32-C, so a reader can detect truncation and
// corruption. Returns the total number of bytes written (useful for byte
// accounting even on short-write failures).
func WriteFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [HeaderSize]byte
	copy(hdr[0:4], frameMagic)
	binary.BigEndian.PutUint32(hdr[4:8], frameVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.Checksum(payload, castagnoli))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, fmt.Errorf("ckpt: writing frame header: %w", err)
	}
	m, err := w.Write(payload)
	n += m
	if err != nil {
		return n, fmt.Errorf("ckpt: writing frame payload: %w", err)
	}
	return n, nil
}

// ReadFrame reads and verifies one framed payload from r. maxPayload caps
// the declared payload length before any allocation, so a corrupted length
// field cannot trigger a giant allocation; maxPayload <= 0 means no limit.
func ReadFrame(r io.Reader, maxPayload int64) ([]byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("ckpt: truncated frame header: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("ckpt: reading frame header: %w", err)
	}
	if string(hdr[0:4]) != frameMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, hdr[0:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != frameVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, frameVersion)
	}
	length := binary.BigEndian.Uint64(hdr[8:16])
	if maxPayload > 0 && length > uint64(maxPayload) {
		return nil, fmt.Errorf("%w: %d bytes declared, limit %d", ErrTooLarge, length, maxPayload)
	}
	payload := make([]byte, length)
	if n, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("ckpt: truncated frame payload (%d of %d bytes): %w",
				n, length, io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("ckpt: reading frame payload: %w", err)
	}
	want := binary.BigEndian.Uint32(hdr[16:20])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: computed %08x, header %08x", ErrChecksum, got, want)
	}
	return payload, nil
}
