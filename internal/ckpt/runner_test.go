package ckpt

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource is a Source whose checkpoint payload encodes its current
// stride count, so tests can tell which stride a generation captured.
type fakeSource struct {
	strides atomic.Uint64
	fail    atomic.Int64 // number of WriteCheckpoint calls left to fail
}

func (f *fakeSource) Strides() uint64 { return f.strides.Load() }

func (f *fakeSource) WriteCheckpoint(w io.Writer) error {
	if f.fail.Load() > 0 {
		f.fail.Add(-1)
		return errors.New("injected checkpoint failure")
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], f.strides.Load())
	_, err := w.Write(b[:])
	return err
}

// recorder collects every Record the runner reports.
type recorder struct {
	mu   sync.Mutex
	recs []Record
}

func (r *recorder) ObserveCheckpoint(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, rec)
}

func (r *recorder) snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRunnerCheckpointsEveryNStrides: generations appear only once the
// stride counter advances past the threshold, and capture it.
func TestRunnerCheckpointsEveryNStrides(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	src := &fakeSource{}
	rec := &recorder{}
	r := NewRunner(s, src, 5, WithPoll(time.Millisecond), WithObserver(rec))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { r.Run(ctx); close(done) }()

	// Below the threshold nothing may be written.
	src.strides.Store(4)
	time.Sleep(20 * time.Millisecond)
	if gens, _ := s.Generations(); len(gens) != 0 {
		t.Fatalf("checkpoint written below stride threshold: %v", gens)
	}

	src.strides.Store(5)
	waitFor(t, "first generation", func() bool { gens, _ := s.Generations(); return len(gens) >= 1 })
	payload, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(payload); got != 5 {
		t.Fatalf("checkpoint captured stride %d, want 5", got)
	}

	// Shutdown with unsaved progress writes one final generation.
	src.strides.Store(7)
	cancel()
	<-done
	payload, _, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(payload); got != 7 {
		t.Fatalf("final checkpoint captured stride %d, want 7", got)
	}
}

// TestRunnerRetriesWithBackoff: failed attempts are reported, retried, and
// eventually succeed without losing the stride trigger.
func TestRunnerRetriesWithBackoff(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	src := &fakeSource{}
	src.fail.Store(2)
	rec := &recorder{}
	r := NewRunner(s, src, 1,
		WithPoll(time.Millisecond),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithObserver(rec))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { r.Run(ctx); close(done) }()

	src.strides.Store(1)
	waitFor(t, "successful checkpoint after retries", func() bool {
		gens, _ := s.Generations()
		return len(gens) >= 1
	})
	cancel()
	<-done

	var failures, successes int
	for _, rc := range rec.snapshot() {
		if rc.Err != nil {
			failures++
		} else {
			successes++
			if rc.Bytes == 0 || rc.Gen == 0 {
				t.Fatalf("success record without bytes/gen: %+v", rc)
			}
		}
	}
	if failures != 2 {
		t.Fatalf("observed %d failures, want 2", failures)
	}
	if successes == 0 {
		t.Fatal("no successful attempt observed")
	}
}

// TestRunnerCheckpointNow writes immediately regardless of stride count.
func TestRunnerCheckpointNow(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	src := &fakeSource{}
	src.strides.Store(42)
	r := NewRunner(s, src, 1000)
	gen, err := r.CheckpointNow()
	if err != nil || gen != 1 {
		t.Fatalf("CheckpointNow = gen %d err %v", gen, err)
	}
	payload, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(payload); got != 42 {
		t.Fatalf("captured stride %d, want 42", got)
	}
}

// TestRunnerStoreFaultThenRecovery: the store's disk failing (not the
// source) also counts as a failed attempt and is retried.
func TestRunnerStoreFaultThenRecovery(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	var broken atomic.Bool
	broken.Store(true)
	s.wrapWriter = func(w io.Writer) io.Writer {
		if broken.Load() {
			return &teeLimit{w: w, limit: 3}
		}
		return w
	}
	src := &fakeSource{}
	rec := &recorder{}
	r := NewRunner(s, src, 1, WithPoll(time.Millisecond),
		WithBackoff(time.Millisecond, 2*time.Millisecond), WithObserver(rec))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { r.Run(ctx); close(done) }()

	src.strides.Store(3)
	waitFor(t, "failed attempts while disk broken", func() bool {
		for _, rc := range rec.snapshot() {
			if rc.Err != nil {
				return true
			}
		}
		return false
	})
	if gens, _ := s.Generations(); len(gens) != 0 {
		t.Fatalf("broken disk produced generations: %v", gens)
	}
	broken.Store(false)
	waitFor(t, "checkpoint after disk recovers", func() bool {
		gens, _ := s.Generations()
		return len(gens) >= 1
	})
	cancel()
	<-done
	if _, _, err := s.Recover(); err != nil {
		t.Fatalf("recover after disk healed: %v", err)
	}
}
