package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"disc/internal/geom"
)

// opScript is a generated sequence of tree operations; quick drives random
// scripts and the property re-validates tree contents and invariants after
// each one.
type opScript struct {
	Seed int64
	N    uint8 // operations, scaled up
}

// Property: after any random sequence of insert/delete operations, the tree
// matches a brute-force set and all structural invariants hold.
func TestRandomOpScriptProperty(t *testing.T) {
	f := func(s opScript) bool {
		rng := rand.New(rand.NewSource(s.Seed))
		nOps := int(s.N)*4 + 10
		tr := New(2)
		bf := newBrute(2)
		live := make(map[int64]geom.Vec)
		var next int64
		for i := 0; i < nOps; i++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.65:
				p := randVec(rng, 2, 64)
				tr.Insert(next, p)
				bf.insert(next, p)
				live[next] = p
				next++
			default:
				var id int64
				for id = range live {
					break
				}
				if !tr.Delete(id, live[id]) {
					return false
				}
				bf.delete(id)
				delete(live, id)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			c := randVec(rng, 2, 64)
			eps := rng.Float64() * 12
			if !equalIDs(collectBall(tr, c, eps), bf.searchBall(c, eps)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a bulk-loaded tree and an insert-built tree over the same points
// answer every ball query identically.
func TestBulkLoadEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)*8 + 1
		ids := make([]int64, n)
		pos := make([]geom.Vec, n)
		inc := New(3)
		for i := 0; i < n; i++ {
			ids[i] = int64(i)
			pos[i] = randVec(rng, 3, 40)
			inc.Insert(ids[i], pos[i])
		}
		bulk := New(3)
		bulk.BulkLoad(ids, pos)
		if err := bulk.checkInvariants(); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			c := randVec(rng, 3, 40)
			eps := rng.Float64() * 10
			if !equalIDs(collectBall(bulk, c, eps), collectBall(inc, c, eps)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: KNN(k) of a tree equals the k smallest ball-search distances,
// for any k and any query point.
func TestKNNConsistentWithBallProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(2)
	for i := int64(0); i < 800; i++ {
		tr.Insert(i, randVec(rng, 2, 50))
	}
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw)%30 + 1
		c := randVec(r, 2, 50)
		nn := tr.KNN(c, k)
		if len(nn) != k {
			return false
		}
		// The ball of radius = k-th distance must contain at least k points,
		// and any strictly smaller ball fewer than k.
		rk := nn[len(nn)-1].Dist2
		within := 0
		// Nudge the radius one ulp up: squaring the square root can round
		// just below the true k-th distance.
		radius := math.Nextafter(math.Sqrt(rk), math.Inf(1))
		tr.SearchBall(c, radius, func(int64, geom.Vec) bool { within++; return true })
		return within >= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
