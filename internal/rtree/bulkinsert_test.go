package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"disc/internal/geom"
)

// collectBallRO gathers ids via the read-only search path.
func collectBallRO(t *T, c geom.Vec, eps float64) []int64 {
	var out []int64
	t.SearchBallRO(c, eps, func(id int64, _ geom.Vec) bool {
		out = append(out, id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collectBallEpoch gathers ids via one epoch-pruned search, stamping every
// visited point.
func collectBallEpoch(t *T, c geom.Vec, eps float64, tick uint64) []int64 {
	var out []int64
	t.SearchBallEpoch(c, eps, tick, func(id int64, _ geom.Vec) bool {
		out = append(out, id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Property: BulkInsert is observationally identical to per-point Insert.
// Starting from a shared random prefix built incrementally in both trees,
// one tree BulkInserts each subsequent batch while the other inserts the
// same points one by one; after every batch — and after a wave of deletes —
// every search flavor returns the same visit set and both trees satisfy all
// structural invariants. Batch sizes straddle the per-point/graft threshold
// (maxEntries) so both BulkInsert regimes are exercised.
func TestBulkInsertEquivalenceProperty(t *testing.T) {
	f := func(seed int64, prefixRaw, batchesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 2 + rng.Intn(2)
		prefix := int(prefixRaw) % 120
		batches := int(batchesRaw)%5 + 1

		bulk, inc := New(dims), New(dims)
		live := make(map[int64]geom.Vec)
		var next int64
		add := func(tr *T, id int64, p geom.Vec) {
			tr.Insert(id, p)
		}
		for i := 0; i < prefix; i++ {
			p := randVec(rng, dims, 48)
			add(bulk, next, p)
			add(inc, next, p)
			live[next] = p
			next++
		}

		check := func() bool {
			if bulk.Len() != inc.Len() || bulk.Len() != len(live) {
				return false
			}
			if err := bulk.checkInvariants(); err != nil {
				return false
			}
			if err := inc.checkInvariants(); err != nil {
				return false
			}
			for trial := 0; trial < 4; trial++ {
				c := randVec(rng, dims, 48)
				eps := rng.Float64() * 14
				want := collectBall(inc, c, eps)
				if !equalIDs(collectBall(bulk, c, eps), want) {
					return false
				}
				if !equalIDs(collectBallRO(bulk, c, eps), want) {
					return false
				}
			}
			return true
		}

		for b := 0; b < batches; b++ {
			// Mix sub-threshold batches (per-point path) with multi-leaf
			// ones (STR graft path).
			n := rng.Intn(3 * defaultMaxEntries)
			ids := make([]int64, n)
			pos := make([]geom.Vec, n)
			for i := 0; i < n; i++ {
				ids[i] = next
				pos[i] = randVec(rng, dims, 48)
				live[next] = pos[i]
				next++
			}
			bulk.BulkInsert(ids, pos)
			for i := range ids {
				inc.Insert(ids[i], pos[i])
			}
			if !check() {
				return false
			}
		}

		// Deleting through bulk-built leaves must uphold the same
		// invariants and search results as through insert-built ones.
		for id, p := range live {
			if rng.Float64() < 0.4 {
				if !bulk.Delete(id, p) || !inc.Delete(id, p) {
					return false
				}
				delete(live, id)
			}
		}
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: epoch-pruned searches agree between a bulk-built and an
// insert-built tree. Visit sets under SearchBallEpoch depend only on the
// point multiset and the stamp history, never on node layout: each call
// visits exactly the in-ball points whose epoch is below the tick and stamps
// them, so an identical call sequence yields identical sets.
func TestBulkInsertEpochEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 700
	ids := make([]int64, n)
	pos := make([]geom.Vec, n)
	inc := New(2)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		pos[i] = randVec(rng, 2, 40)
	}
	// Seed both trees with the first half, then BulkInsert vs insert the rest.
	bulk := New(2)
	for i := 0; i < n/2; i++ {
		bulk.Insert(ids[i], pos[i])
		inc.Insert(ids[i], pos[i])
	}
	bulk.BulkInsert(ids[n/2:], pos[n/2:])
	for i := n / 2; i < n; i++ {
		inc.Insert(ids[i], pos[i])
	}

	for round := 0; round < 20; round++ {
		bt, it := bulk.NextTick(), inc.NextTick()
		if bt != it {
			t.Fatalf("tick mismatch: bulk %d inc %d", bt, it)
		}
		// Several overlapping searches within one tick: later searches must
		// skip exactly the points earlier ones stamped, in both trees.
		for s := 0; s < 4; s++ {
			c := randVec(rng, 2, 40)
			eps := rng.Float64() * 12
			got, want := collectBallEpoch(bulk, c, eps, bt), collectBallEpoch(inc, c, eps, it)
			if !equalIDs(got, want) {
				t.Fatalf("round %d search %d: epoch visit sets differ: bulk %v inc %v", round, s, got, want)
			}
		}
	}
}

// BulkInsert must reject mismatched inputs like BulkLoad does.
func TestBulkInsertLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on id/position length mismatch")
		}
	}()
	New(2).BulkInsert([]int64{1, 2}, []geom.Vec{geom.NewVec(0, 0)})
}

// A BulkInsert into an empty tree must replace the root exactly like
// BulkLoad, including when the tree previously held points.
func TestBulkInsertIntoEmptiedTree(t *testing.T) {
	tr := New(2)
	p := geom.NewVec(1, 1)
	tr.Insert(7, p)
	if !tr.Delete(7, p) {
		t.Fatal("delete failed")
	}
	ids := make([]int64, 100)
	pos := make([]geom.Vec, 100)
	rng := rand.New(rand.NewSource(3))
	for i := range ids {
		ids[i] = int64(i)
		pos[i] = randVec(rng, 2, 20)
	}
	tr.BulkInsert(ids, pos)
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
