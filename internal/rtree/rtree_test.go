package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"disc/internal/geom"
)

// brute is a reference implementation: a flat slice scanned linearly.
type brute struct {
	dims int
	pts  map[int64]geom.Vec
}

func newBrute(dims int) *brute { return &brute{dims: dims, pts: make(map[int64]geom.Vec)} }

func (b *brute) insert(id int64, p geom.Vec) { b.pts[id] = p }
func (b *brute) delete(id int64)             { delete(b.pts, id) }

func (b *brute) searchBall(c geom.Vec, eps float64) []int64 {
	var out []int64
	for id, p := range b.pts {
		if geom.WithinEps(p, c, b.dims, eps) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectBall(t *T, c geom.Vec, eps float64) []int64 {
	var out []int64
	t.SearchBall(c, eps, func(id int64, _ geom.Vec) bool {
		out = append(out, id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randVec(rng *rand.Rand, dims int, scale float64) geom.Vec {
	var v geom.Vec
	for i := 0; i < dims; i++ {
		v[i] = rng.Float64() * scale
	}
	return v
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if got := collectBall(tr, geom.NewVec(0, 0), 10); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	if tr.Delete(1, geom.NewVec(0, 0)) {
		t.Fatal("Delete on empty tree returned true")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(2)
	tr.Insert(1, geom.NewVec(0, 0))
	tr.Insert(2, geom.NewVec(1, 0))
	tr.Insert(3, geom.NewVec(5, 5))
	got := collectBall(tr, geom.NewVec(0, 0), 1.5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("search = %v, want [1 2]", got)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	tr := New(2)
	p := geom.NewVec(1, 1)
	for id := int64(0); id < 100; id++ {
		tr.Insert(id, p)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	got := collectBall(tr, p, 0)
	if len(got) != 100 {
		t.Fatalf("found %d duplicates, want 100", len(got))
	}
	for id := int64(0); id < 100; id++ {
		if !tr.Delete(id, p) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after deletes = %d, want 0", tr.Len())
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(dims) * 101))
		tr := New(dims)
		bf := newBrute(dims)
		for id := int64(0); id < 2000; id++ {
			p := randVec(rng, dims, 100)
			tr.Insert(id, p)
			bf.insert(id, p)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
		for i := 0; i < 200; i++ {
			c := randVec(rng, dims, 100)
			eps := rng.Float64() * 20
			got := collectBall(tr, c, eps)
			want := bf.searchBall(c, eps)
			if !equalIDs(got, want) {
				t.Fatalf("dims=%d search mismatch: got %d ids, want %d", dims, len(got), len(want))
			}
		}
	}
}

func TestInsertDeleteInterleavedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New(2)
	bf := newBrute(2)
	live := make(map[int64]geom.Vec)
	var nextID int64
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := randVec(rng, 2, 50)
			tr.Insert(nextID, p)
			bf.insert(nextID, p)
			live[nextID] = p
			nextID++
		} else {
			// Delete a random live id.
			var id int64
			for id = range live {
				break
			}
			p := live[id]
			if !tr.Delete(id, p) {
				t.Fatalf("step %d: Delete(%d) failed", step, id)
			}
			bf.delete(id)
			delete(live, id)
		}
		if step%500 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len=%d, want %d", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c := randVec(rng, 2, 50)
		eps := rng.Float64() * 10
		if got, want := collectBall(tr, c, eps), bf.searchBall(c, eps); !equalIDs(got, want) {
			t.Fatalf("post-churn search mismatch: got %v want %v", got, want)
		}
	}
}

func TestSearchRect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(2)
	bf := newBrute(2)
	for id := int64(0); id < 1000; id++ {
		p := randVec(rng, 2, 100)
		tr.Insert(id, p)
		bf.insert(id, p)
	}
	for i := 0; i < 100; i++ {
		lo := randVec(rng, 2, 90)
		r := geom.Rect{Min: lo, Max: geom.NewVec(lo[0]+rng.Float64()*20, lo[1]+rng.Float64()*20)}
		var got []int64
		tr.SearchRect(r, func(id int64, _ geom.Vec) bool { got = append(got, id); return true })
		var want []int64
		for id, p := range bf.pts {
			if r.Contains(p, 2) {
				want = append(want, id)
			}
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if !equalIDs(got, want) {
			t.Fatalf("rect search mismatch: got %v want %v", got, want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(2)
	for id := int64(0); id < 100; id++ {
		tr.Insert(id, geom.NewVec(float64(id%10), float64(id/10)))
	}
	count := 0
	completed := tr.SearchBall(geom.NewVec(5, 5), 100, func(int64, geom.Vec) bool {
		count++
		return count < 5
	})
	if completed {
		t.Error("search should report early termination")
	}
	if count != 5 {
		t.Errorf("callback ran %d times, want 5", count)
	}
}

// TestEpochSearchEquivalence: an epoch search that stamps nothing must see
// exactly what a plain search sees; stamped points must vanish for the same
// tick but reappear under a fresh tick.
func TestEpochSearchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := New(3)
	bf := newBrute(3)
	for id := int64(0); id < 3000; id++ {
		p := randVec(rng, 3, 100)
		tr.Insert(id, p)
		bf.insert(id, p)
	}
	for i := 0; i < 50; i++ {
		c := randVec(rng, 3, 100)
		eps := 5 + rng.Float64()*10
		tick := tr.NextTick()

		var seen []int64
		tr.SearchBallEpoch(c, eps, tick, func(id int64, _ geom.Vec) bool {
			seen = append(seen, id)
			return false // no stamping
		})
		sort.Slice(seen, func(a, b int) bool { return seen[a] < seen[b] })
		if want := bf.searchBall(c, eps); !equalIDs(seen, want) {
			t.Fatalf("epoch search (no stamping) mismatch: got %d want %d", len(seen), len(want))
		}

		// Stamp everything, same tick: second search must be empty.
		tr.SearchBallEpoch(c, eps, tick, func(int64, geom.Vec) bool { return true })
		empty := true
		tr.SearchBallEpoch(c, eps, tick, func(int64, geom.Vec) bool { empty = false; return false })
		if !empty {
			t.Fatal("points remained visible after stamping with same tick")
		}

		// Fresh tick: everything visible again with zero reset work.
		tick2 := tr.NextTick()
		var again []int64
		tr.SearchBallEpoch(c, eps, tick2, func(id int64, _ geom.Vec) bool {
			again = append(again, id)
			return false
		})
		sort.Slice(again, func(a, b int) bool { return again[a] < again[b] })
		if want := bf.searchBall(c, eps); !equalIDs(again, want) {
			t.Fatal("fresh tick did not resurrect stamped points")
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochPartialStamp: selective stamping hides only the stamped subset.
func TestEpochPartialStamp(t *testing.T) {
	tr := New(2)
	for id := int64(0); id < 500; id++ {
		tr.Insert(id, geom.NewVec(float64(id%25), float64(id/25)))
	}
	tick := tr.NextTick()
	c := geom.NewVec(12, 10)
	// Stamp even ids only.
	tr.SearchBallEpoch(c, 30, tick, func(id int64, _ geom.Vec) bool { return id%2 == 0 })
	var visible []int64
	tr.SearchBallEpoch(c, 30, tick, func(id int64, _ geom.Vec) bool {
		visible = append(visible, id)
		return false
	})
	for _, id := range visible {
		if id%2 == 0 {
			t.Fatalf("stamped id %d still visible", id)
		}
	}
	if len(visible) != 250 {
		t.Fatalf("visible = %d, want 250 odd ids", len(visible))
	}
}

// TestEpochSurvivesStructuralChange: inserts after stamping must be visible
// under the same tick (fresh entries carry epoch 0).
func TestEpochSurvivesStructuralChange(t *testing.T) {
	tr := New(2)
	for id := int64(0); id < 200; id++ {
		tr.Insert(id, geom.NewVec(float64(id), 0))
	}
	tick := tr.NextTick()
	tr.SearchBallEpoch(geom.NewVec(100, 0), 300, tick, func(int64, geom.Vec) bool { return true })
	tr.Insert(1000, geom.NewVec(50, 0))
	found := false
	tr.SearchBallEpoch(geom.NewVec(50, 0), 1, tick, func(id int64, _ geom.Vec) bool {
		if id == 1000 {
			found = true
		}
		return false
	})
	if !found {
		t.Fatal("entry inserted after stamping is invisible to the same tick")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	tr := New(2)
	for id := int64(0); id < 100; id++ {
		tr.Insert(id, geom.NewVec(float64(id), float64(id)))
	}
	tr.ResetStats()
	tr.SearchBall(geom.NewVec(50, 50), 5, func(int64, geom.Vec) bool { return true })
	s := tr.Stats()
	if s.RangeSearches != 1 {
		t.Errorf("RangeSearches = %d, want 1", s.RangeSearches)
	}
	if s.NodeAccesses < 1 {
		t.Errorf("NodeAccesses = %d, want >= 1", s.NodeAccesses)
	}
	tr.ResetStats()
	if tr.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestDeleteMissingPoint(t *testing.T) {
	tr := New(2)
	tr.Insert(1, geom.NewVec(1, 1))
	if tr.Delete(1, geom.NewVec(2, 2)) {
		t.Error("Delete with wrong coordinates must fail")
	}
	if tr.Delete(2, geom.NewVec(1, 1)) {
		t.Error("Delete with wrong id must fail")
	}
	if !tr.Delete(1, geom.NewVec(1, 1)) {
		t.Error("Delete with exact match must succeed")
	}
}

func TestNextTickMonotonic(t *testing.T) {
	tr := New(2)
	prev := tr.NextTick()
	for i := 0; i < 100; i++ {
		next := tr.NextTick()
		if next <= prev {
			t.Fatalf("tick not strictly increasing: %d then %d", prev, next)
		}
		prev = next
	}
}

func TestInvalidDims(t *testing.T) {
	for _, d := range []int{0, -1, geom.MaxDims + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), randVec(rng, 2, 1000))
	}
}

func BenchmarkSearchBall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(2)
	for i := 0; i < 100000; i++ {
		tr.Insert(int64(i), randVec(rng, 2, 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SearchBall(randVec(rng, 2, 1000), 10, func(int64, geom.Vec) bool { return true })
	}
}
