// Package rtree implements an in-memory R-tree over low-dimensional points,
// following Guttman's original design (quadratic split, condense-tree
// deletion). It is the spatial substrate for every exact clustering engine
// in this repository.
//
// Beyond the classic operations it implements the epoch-based probing method
// of the DISC paper (Algorithm 4): every leaf entry and every node carries an
// epoch drawn from a monotonically increasing tick counter. A range search
// executed under a tick skips any entry or subtree whose epoch equals that
// tick, so one connectivity check (one MS-BFS instance) can mark points as
// visited inside the index itself and later searches of the same instance
// prune whole subtrees — with no reset cost between instances, because a new
// instance simply draws a larger tick.
//
// Leaves use a struct-of-arrays layout: one contiguous float64 coordinate
// slab plus parallel id and epoch slices, so range searches run a batched
// distance kernel over linear memory instead of chasing per-entry
// rectangles. Structural operations (split, condense, bulk tiling) draw all
// scratch from buffers pooled on T and recycle freed nodes through a free
// list, making the steady-state write path allocation-free.
package rtree

import (
	"fmt"
	"slices"
	"sort"

	"disc/internal/geom"
)

const (
	defaultMaxEntries = 32
	defaultMinEntries = 13 // ~40% fill, Guttman's recommendation

	// maxFreeNodes caps the node free list so a transient shrink cannot pin
	// an arbitrarily large high-water mark of leaf slabs.
	maxFreeNodes = 4096
)

// Stats counts the work performed by the tree since construction or the last
// ResetStats. The DISC evaluation (Fig. 7) reports range-search invocations;
// node accesses additionally expose the benefit of epoch-based pruning.
type Stats struct {
	RangeSearches int64 // number of SearchBall/SearchRect/SearchBallEpoch calls
	NodeAccesses  int64 // number of tree nodes touched by searches
	// EpochPruned counts the entries — leaf points or whole subtrees — an
	// epoch-probed search skipped because their epoch already matched the
	// search's tick: the work Algorithm 4 saves over re-descending for
	// every already-visited point.
	EpochPruned int64
}

// entry is one child slot of an internal node. Leaves do not use entries:
// their points live in the node's coordinate slab and parallel slices.
type entry struct {
	rect  geom.Rect
	child *node
	epoch uint64
}

// node is either an internal node (entries populated) or a leaf in
// struct-of-arrays form: coords holds count×dims float64s with the i-th
// point at coords[i*dims : (i+1)*dims], and ids/epochs run parallel to it.
type node struct {
	leaf    bool
	entries []entry   // internal nodes only
	coords  []float64 // leaf coordinate slab
	ids     []int64   // leaf point ids
	epochs  []uint64  // leaf point epochs
	epoch   uint64    // min over children/points; 0 means "contains unvisited"
}

// count returns the node's fill: children for internal nodes, points for
// leaves.
func (n *node) count() int {
	if n.leaf {
		return len(n.ids)
	}
	return len(n.entries)
}

// T is an R-tree over points of a fixed dimensionality. The zero value is
// not usable; construct with New. T is not safe for concurrent use.
type T struct {
	dims       int
	maxEntries int
	minEntries int
	root       *node
	size       int
	tick       uint64

	stats Stats

	// free recycles nodes removed by condense/root-shrink back into
	// splits and bulk tiling; slabs keep their capacity across reuse.
	free []*node

	// Split scratch: rects of the items being distributed, the undistributed
	// index worklist, and the two output groups. Splits are not reentrant
	// (a split never triggers another split of the same node set), so one
	// set of buffers suffices.
	splitRects []geom.Rect
	splitRest  []int
	groupA     []int
	groupB     []int

	// Condense scratch: orphaned points awaiting reinsertion. Reinsertion
	// can split but never re-enter condense, so one set suffices.
	orphIDs    []int64
	orphPos    []geom.Vec
	orphEpochs []uint64

	// Bulk-load scratch: the sort permutation and produced-leaf list for
	// STR tiling, plus the allocation-free permutation sorter.
	perm    []int
	leafBuf []*node
	psort   pointPermSorter
}

// New returns an empty R-tree for points with the given number of dimensions
// (1..geom.MaxDims).
func New(dims int) *T {
	if dims < 1 || dims > geom.MaxDims {
		panic(fmt.Sprintf("rtree: invalid dims %d", dims))
	}
	return &T{
		dims:       dims,
		maxEntries: defaultMaxEntries,
		minEntries: defaultMinEntries,
		root:       &node{leaf: true},
	}
}

// Len returns the number of points currently indexed.
func (t *T) Len() int { return t.size }

// Dims returns the dimensionality the tree was created with.
func (t *T) Dims() int { return t.dims }

// Stats returns a copy of the tree's work counters.
func (t *T) Stats() Stats { return t.stats }

// ResetStats zeroes the work counters.
func (t *T) ResetStats() { t.stats = Stats{} }

// NextTick returns a fresh, strictly increasing tick for one epoch-probed
// traversal instance (e.g. one MS-BFS run). Entries stamped with this tick
// are invisible to searches carrying the same tick.
func (t *T) NextTick() uint64 {
	t.tick++
	return t.tick
}

// newNode pops a recycled node from the free list (or allocates one) and
// resets it to an empty node of the requested kind.
func (t *T) newNode(leaf bool) *node {
	if k := len(t.free); k > 0 {
		n := t.free[k-1]
		t.free[k-1] = nil
		t.free = t.free[:k-1]
		n.leaf = leaf
		return n
	}
	return &node{leaf: leaf}
}

// freeNode empties n and pushes it onto the free list (dropping it instead
// once the list is full). Callers must have detached n from the tree.
func (t *T) freeNode(n *node) {
	for i := range n.entries {
		n.entries[i].child = nil
	}
	n.entries = n.entries[:0]
	n.coords = n.coords[:0]
	n.ids = n.ids[:0]
	n.epochs = n.epochs[:0]
	n.epoch = 0
	if len(t.free) < maxFreeNodes {
		t.free = append(t.free, n)
	}
}

// freeTree recycles every node of the subtree rooted at n, children first.
func (t *T) freeTree(n *node) {
	if !n.leaf {
		for i := range n.entries {
			t.freeTree(n.entries[i].child)
		}
	}
	t.freeNode(n)
}

// leafAppend adds one point to a leaf's slab and parallel slices.
func (t *T) leafAppend(n *node, id int64, p geom.Vec, epoch uint64) {
	n.coords = append(n.coords, p[:t.dims]...)
	n.ids = append(n.ids, id)
	n.epochs = append(n.epochs, epoch)
}

// leafVec materializes the i-th leaf point as a zero-padded Vec.
func (t *T) leafVec(n *node, i int) geom.Vec {
	return geom.VecFromSlab(n.coords[i*t.dims : (i+1)*t.dims])
}

// leafRemove deletes the i-th leaf point, preserving order.
func (t *T) leafRemove(n *node, i int) {
	d := t.dims
	last := len(n.ids) - 1
	copy(n.coords[i*d:], n.coords[(i+1)*d:])
	n.coords = n.coords[:last*d]
	copy(n.ids[i:], n.ids[i+1:])
	n.ids = n.ids[:last]
	copy(n.epochs[i:], n.epochs[i+1:])
	n.epochs = n.epochs[:last]
}

// Insert adds a point with the given id. Duplicate coordinates and duplicate
// ids are permitted (the tree is a multiset); Delete removes one matching
// entry.
func (t *T) Insert(id int64, p geom.Vec) {
	t.insertPoint(id, p, 0)
	t.size++
}

// insertPoint places a point (with an explicit epoch, for orphan
// reinsertion) into the tree, growing the root on overflow. It does not
// touch t.size.
func (t *T) insertPoint(id int64, p geom.Vec, epoch uint64) {
	if split := t.insertRec(t.root, id, p, epoch); split != nil {
		t.growRoot(split)
	}
}

func (t *T) height(n *node) int {
	h := 0
	for !n.leaf {
		n = n.entries[0].child
		h++
	}
	return h
}

// insertRec places the point in the subtree rooted at n and returns a new
// sibling node if n was split, nil otherwise.
func (t *T) insertRec(n *node, id int64, p geom.Vec, epoch uint64) *node {
	if n.leaf {
		t.leafAppend(n, id, p, epoch)
		if len(n.ids) == 1 || epoch < n.epoch {
			n.epoch = epoch
		}
		if len(n.ids) > t.maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	r := geom.PointRect(p)
	i := t.chooseSubtree(n, r)
	child := n.entries[i].child
	split := t.insertRec(child, id, p, epoch)
	n.entries[i].rect = n.entries[i].rect.Enlarged(r, t.dims)
	n.entries[i].epoch = child.epoch
	if split != nil {
		n.entries = append(n.entries, entry{rect: nodeRect(split, t.dims), child: split, epoch: split.epoch})
	}
	n.epoch = minEpoch(n)
	if len(n.entries) > t.maxEntries {
		return t.splitInternal(n)
	}
	return nil
}

// chooseSubtree returns the index of the child entry of n needing the least
// area enlargement to cover r; ties broken by smallest area (Guttman's
// ChooseLeaf criterion).
func (t *T) chooseSubtree(n *node, r geom.Rect) int {
	best := 0
	bestEnl := n.entries[0].rect.EnlargementArea(r, t.dims)
	bestArea := n.entries[0].rect.Area(t.dims)
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].rect.EnlargementArea(r, t.dims)
		area := n.entries[i].rect.Area(t.dims)
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// rectScratch returns the pooled rect buffer resized to count.
func (t *T) rectScratch(count int) []geom.Rect {
	if cap(t.splitRects) < count {
		t.splitRects = make([]geom.Rect, count)
	}
	t.splitRects = t.splitRects[:count]
	return t.splitRects
}

// distribute runs Guttman's quadratic split over the count items whose
// rects occupy t.splitRects[:count], filling t.groupA and t.groupB with the
// item indices of the two groups. All scratch is pooled on T.
func (t *T) distribute(count int) {
	rects := t.splitRects[:count]
	seedA, seedB := t.pickSeeds(rects)
	t.groupA = append(t.groupA[:0], seedA)
	t.groupB = append(t.groupB[:0], seedB)
	rectA := rects[seedA]
	rectB := rects[seedB]

	rest := t.splitRest[:0]
	for i := 0; i < count; i++ {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	defer func() { t.splitRest = rest[:0] }()

	for len(rest) > 0 {
		// If one group must take all remaining entries to reach minEntries, do so.
		if len(t.groupA)+len(rest) == t.minEntries {
			for _, i := range rest {
				t.groupA = append(t.groupA, i)
			}
			return
		}
		if len(t.groupB)+len(rest) == t.minEntries {
			for _, i := range rest {
				t.groupB = append(t.groupB, i)
			}
			return
		}
		// PickNext: entry with maximum preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for k, i := range rest {
			dA := rectA.EnlargementArea(rects[i], t.dims)
			dB := rectB.EnlargementArea(rects[i], t.dims)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = k, diff
			}
		}
		i := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dA := rectA.EnlargementArea(rects[i], t.dims)
		dB := rectB.EnlargementArea(rects[i], t.dims)
		switch {
		case dA < dB:
			t.groupA = append(t.groupA, i)
			rectA = rectA.Enlarged(rects[i], t.dims)
		case dB < dA:
			t.groupB = append(t.groupB, i)
			rectB = rectB.Enlarged(rects[i], t.dims)
		case rectA.Area(t.dims) < rectB.Area(t.dims):
			t.groupA = append(t.groupA, i)
			rectA = rectA.Enlarged(rects[i], t.dims)
		case len(t.groupA) <= len(t.groupB):
			t.groupA = append(t.groupA, i)
			rectA = rectA.Enlarged(rects[i], t.dims)
		default:
			t.groupB = append(t.groupB, i)
			rectB = rectB.Enlarged(rects[i], t.dims)
		}
	}
}

// splitInternal distributes an overfull internal node's children between n
// and a recycled sibling, returning the sibling.
func (t *T) splitInternal(n *node) *node {
	count := len(n.entries)
	rects := t.rectScratch(count)
	for i := range n.entries {
		rects[i] = n.entries[i].rect
	}
	t.distribute(count)

	sib := t.newNode(false)
	for _, i := range t.groupB {
		sib.entries = append(sib.entries, n.entries[i])
	}
	// Compact group A in place. Ascending order guarantees every read index
	// is at or beyond the write index, so nothing is clobbered.
	slices.Sort(t.groupA)
	for j, idx := range t.groupA {
		if j != idx {
			n.entries[j] = n.entries[idx]
		}
	}
	for i := len(t.groupA); i < len(n.entries); i++ {
		n.entries[i].child = nil
	}
	n.entries = n.entries[:len(t.groupA)]
	n.epoch = minEpoch(n)
	sib.epoch = minEpoch(sib)
	return sib
}

// splitLeaf distributes an overfull leaf's points between n and a recycled
// sibling, returning the sibling.
func (t *T) splitLeaf(n *node) *node {
	count := len(n.ids)
	d := t.dims
	rects := t.rectScratch(count)
	for i := 0; i < count; i++ {
		rects[i] = geom.PointRect(t.leafVec(n, i))
	}
	t.distribute(count)

	sib := t.newNode(true)
	for _, i := range t.groupB {
		t.leafAppend(sib, n.ids[i], t.leafVec(n, i), n.epochs[i])
	}
	slices.Sort(t.groupA)
	for j, idx := range t.groupA {
		if j != idx {
			copy(n.coords[j*d:(j+1)*d], n.coords[idx*d:(idx+1)*d])
			n.ids[j] = n.ids[idx]
			n.epochs[j] = n.epochs[idx]
		}
	}
	k := len(t.groupA)
	n.coords = n.coords[:k*d]
	n.ids = n.ids[:k]
	n.epochs = n.epochs[:k]
	n.epoch = minEpoch(n)
	sib.epoch = minEpoch(sib)
	return sib
}

// pickSeeds returns the two rects wasting the most area if grouped together
// (Guttman's quadratic PickSeeds).
func (t *T) pickSeeds(rects []geom.Rect) (int, int) {
	a, b, worst := 0, 1, -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Enlarged(rects[j], t.dims).Area(t.dims) -
				rects[i].Area(t.dims) - rects[j].Area(t.dims)
			if waste > worst {
				a, b, worst = i, j, waste
			}
		}
	}
	return a, b
}

// Delete removes one entry with the given id located at p. It reports
// whether an entry was found and removed.
func (t *T) Delete(id int64, p geom.Vec) bool {
	leaf, idx := t.findLeaf(t.root, id, p)
	if leaf == nil {
		return false
	}
	t.leafRemove(leaf, idx)
	leaf.epoch = minEpoch(leaf)
	t.condense(leaf, p)
	t.size--
	// Shrink the root while it is an internal node with a single child, and
	// reset to an empty leaf if everything was orphaned away.
	for !t.root.leaf && len(t.root.entries) == 1 {
		old := t.root
		t.root = old.entries[0].child
		t.freeNode(old)
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root.leaf = true
	}
	return true
}

// findLeaf locates the leaf containing (id, p), returning the leaf and point
// index, or (nil, 0) if absent.
func (t *T) findLeaf(n *node, id int64, p geom.Vec) (*node, int) {
	if n.leaf {
		d := t.dims
		for i, eid := range n.ids {
			if eid != id {
				continue
			}
			match := true
			for k := 0; k < d; k++ {
				if n.coords[i*d+k] != p[k] {
					match = false
					break
				}
			}
			if match {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.Contains(p, t.dims) {
			if leaf, idx := t.findLeaf(e.child, id, p); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, 0
}

// condense walks from the root to the leaf that lost an entry, removing
// underfull nodes and reinserting the points of their subtrees, and
// tightening bounding rectangles along the path (Guttman's CondenseTree,
// with orphaned subtrees reinserted as points for simplicity). Orphan
// buffers are pooled on T: reinsertion can split but never re-enters
// condense.
func (t *T) condense(target *node, p geom.Vec) {
	t.orphIDs = t.orphIDs[:0]
	t.orphPos = t.orphPos[:0]
	t.orphEpochs = t.orphEpochs[:0]
	t.condenseRec(t.root, target, p)
	// Orphaned points were never subtracted from t.size, and insertPoint
	// does not add to it, so reinsertion keeps the count consistent.
	for i := range t.orphIDs {
		t.insertPoint(t.orphIDs[i], t.orphPos[i], t.orphEpochs[i])
	}
}

// condenseRec returns true if the subtree rooted at n contains target (so
// ancestors adjust rects) and prunes underfull children, collecting their
// points into the pooled orphan buffers and recycling their nodes.
func (t *T) condenseRec(n, target *node, p geom.Vec) bool {
	if n == target {
		return true
	}
	if n.leaf {
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Contains(p, t.dims) {
			continue
		}
		if !t.condenseRec(e.child, target, p) {
			continue
		}
		child := e.child
		if child.count() < t.minEntries {
			t.collectLeafPoints(child)
			t.freeTree(child)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			n.entries[:cap(n.entries)][len(n.entries)].child = nil
		} else {
			e.rect = nodeRect(child, t.dims)
			e.epoch = child.epoch
		}
		n.epoch = minEpoch(n)
		return true
	}
	return false
}

func (t *T) growRoot(split *node) {
	oldRoot := t.root
	nr := t.newNode(false)
	nr.entries = append(nr.entries,
		entry{rect: nodeRect(oldRoot, t.dims), child: oldRoot, epoch: oldRoot.epoch},
		entry{rect: nodeRect(split, t.dims), child: split, epoch: split.epoch})
	nr.epoch = minEpoch(nr)
	t.root = nr
}

// collectLeafPoints appends every point of the subtree rooted at n to the
// pooled orphan buffers.
func (t *T) collectLeafPoints(n *node) {
	if n.leaf {
		for i := range n.ids {
			t.orphIDs = append(t.orphIDs, n.ids[i])
			t.orphPos = append(t.orphPos, t.leafVec(n, i))
			t.orphEpochs = append(t.orphEpochs, n.epochs[i])
		}
		return
	}
	for i := range n.entries {
		t.collectLeafPoints(n.entries[i].child)
	}
}

// nodeRect computes the tight bounding rectangle of a non-empty node.
func nodeRect(n *node, dims int) geom.Rect {
	if n.leaf {
		var r geom.Rect
		for d := 0; d < dims; d++ {
			r.Min[d] = n.coords[d]
			r.Max[d] = n.coords[d]
		}
		for i := 1; i < len(n.ids); i++ {
			base := i * dims
			for d := 0; d < dims; d++ {
				c := n.coords[base+d]
				if c < r.Min[d] {
					r.Min[d] = c
				}
				if c > r.Max[d] {
					r.Max[d] = c
				}
			}
		}
		return r
	}
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Enlarged(e.rect, dims)
	}
	return r
}

// minEpoch returns the minimum epoch over a node's children or points
// (0 for an empty node).
func minEpoch(n *node) uint64 {
	if n.leaf {
		if len(n.epochs) == 0 {
			return 0
		}
		m := n.epochs[0]
		for _, e := range n.epochs[1:] {
			if e < m {
				m = e
			}
		}
		return m
	}
	if len(n.entries) == 0 {
		return 0
	}
	m := n.entries[0].epoch
	for _, e := range n.entries[1:] {
		if e.epoch < m {
			m = e.epoch
		}
	}
	return m
}

// SearchBall visits every indexed point within distance eps of c. The
// callback returns false to stop the search early; SearchBall reports
// whether the traversal ran to completion.
func (t *T) SearchBall(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.RangeSearches++
	return t.searchBall(t.root, c, eps, fn)
}

func (t *T) searchBall(n *node, c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.NodeAccesses++
	if n.leaf {
		d := t.dims
		eps2 := eps * eps
		for i, base := 0, 0; i < len(n.ids); i, base = i+1, base+d {
			if geom.Dist2Slab(n.coords[base:], c, d) <= eps2 {
				if !fn(n.ids[i], t.leafVec(n, i)) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.IntersectsBall(c, t.dims, eps) {
			continue
		}
		if !t.searchBall(e.child, c, eps, fn) {
			return false
		}
	}
	return true
}

// SearchBallRO is SearchBall without statistics accounting: it performs no
// writes to the tree whatsoever, so any number of SearchBallRO calls may run
// concurrently (with each other and with SearchBall-free readers) as long as
// no mutation — Insert, Delete, BulkLoad, BulkInsert, SearchBallEpoch — is in
// flight. It returns the number of nodes the traversal touched so callers can
// fold the work into their own counters.
func (t *T) SearchBallRO(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) (nodes int64) {
	t.searchBallRO(t.root, c, eps, fn, &nodes)
	return nodes
}

func (t *T) searchBallRO(n *node, c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool, nodes *int64) bool {
	*nodes++
	if n.leaf {
		d := t.dims
		eps2 := eps * eps
		for i, base := 0, 0; i < len(n.ids); i, base = i+1, base+d {
			if geom.Dist2Slab(n.coords[base:], c, d) <= eps2 {
				if !fn(n.ids[i], t.leafVec(n, i)) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.IntersectsBall(c, t.dims, eps) {
			continue
		}
		if !t.searchBallRO(e.child, c, eps, fn, nodes) {
			return false
		}
	}
	return true
}

// SearchRect visits every indexed point inside rectangle r.
func (t *T) SearchRect(r geom.Rect, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.RangeSearches++
	return t.searchRect(t.root, r, fn)
}

func (t *T) searchRect(n *node, r geom.Rect, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.NodeAccesses++
	if n.leaf {
		for i := range n.ids {
			p := t.leafVec(n, i)
			if r.Contains(p, t.dims) {
				if !fn(n.ids[i], p) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(r, t.dims) {
			continue
		}
		if !t.searchRect(e.child, r, fn) {
			return false
		}
	}
	return true
}

// SearchBallEpoch is the epoch-probed range search of DISC (Algorithm 4).
// It visits every point within eps of c whose epoch is strictly below tick,
// pruning any entry or subtree already stamped with tick. For each visited
// point the callback decides, by returning true, whether to stamp the
// point's leaf entry with tick, hiding it from subsequent searches that use
// the same tick. On backtracking, node and parent-entry epochs are updated
// to the minimum of their children, as in the paper.
func (t *T) SearchBallEpoch(c geom.Vec, eps float64, tick uint64, fn func(id int64, p geom.Vec) bool) {
	t.stats.RangeSearches++
	t.searchBallEpoch(t.root, c, eps, tick, fn)
}

// searchBallEpoch reports whether any epoch under n changed, so ancestors
// recompute their minima only along paths where stamping actually happened.
func (t *T) searchBallEpoch(n *node, c geom.Vec, eps float64, tick uint64, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.NodeAccesses++
	changed := false
	if n.leaf {
		d := t.dims
		eps2 := eps * eps
		for i, base := 0, 0; i < len(n.ids); i, base = i+1, base+d {
			if n.epochs[i] >= tick {
				t.stats.EpochPruned++
				continue
			}
			if geom.Dist2Slab(n.coords[base:], c, d) <= eps2 && fn(n.ids[i], t.leafVec(n, i)) {
				n.epochs[i] = tick
				changed = true
			}
		}
		if changed {
			n.epoch = minEpoch(n)
		}
		return changed
	}
	for i := range n.entries {
		e := &n.entries[i]
		if e.epoch >= tick {
			t.stats.EpochPruned++
			continue
		}
		if !e.rect.IntersectsBall(c, t.dims, eps) {
			continue
		}
		if t.searchBallEpoch(e.child, c, eps, tick, fn) {
			e.epoch = e.child.epoch
			changed = true
		}
	}
	if changed {
		n.epoch = minEpoch(n)
	}
	return changed
}

// StampBall stamps with tick every point within eps of c satisfying pred,
// without invoking any per-point work. It is used to mark a search center as
// expanded.
func (t *T) StampBall(c geom.Vec, eps float64, tick uint64, pred func(id int64) bool) {
	t.searchBallEpoch(t.root, c, eps, tick, func(id int64, _ geom.Vec) bool { return pred(id) })
}

// Depth returns the height of the tree (1 for a lone leaf root).
func (t *T) Depth() int { return t.height(t.root) + 1 }

// checkInvariants validates structural invariants; used by tests.
func (t *T) checkInvariants() error {
	return t.check(t.root, true)
}

func (t *T) check(n *node, isRoot bool) error {
	if !isRoot && (n.count() < t.minEntries || n.count() > t.maxEntries) {
		return fmt.Errorf("node fill %d outside [%d,%d]", n.count(), t.minEntries, t.maxEntries)
	}
	if n.count() > 0 && n.epoch != minEpoch(n) {
		return fmt.Errorf("node epoch %d != min entry epoch %d", n.epoch, minEpoch(n))
	}
	if n.leaf {
		if len(n.coords) != len(n.ids)*t.dims || len(n.epochs) != len(n.ids) {
			return fmt.Errorf("leaf slab lengths inconsistent: %d coords, %d ids, %d epochs",
				len(n.coords), len(n.ids), len(n.epochs))
		}
		if len(n.entries) != 0 {
			return fmt.Errorf("leaf with %d internal entries", len(n.entries))
		}
		return nil
	}
	if len(n.ids) != 0 || len(n.coords) != 0 || len(n.epochs) != 0 {
		return fmt.Errorf("internal node carries leaf slabs")
	}
	h := -1
	for _, e := range n.entries {
		if e.child == nil {
			return fmt.Errorf("internal entry without child")
		}
		if got := nodeRect(e.child, t.dims); !e.rect.ContainsRect(got, t.dims) {
			return fmt.Errorf("entry rect %+v does not cover child rect %+v", e.rect, got)
		}
		if e.epoch != e.child.epoch {
			return fmt.Errorf("entry epoch %d != child epoch %d", e.epoch, e.child.epoch)
		}
		ch := t.height(e.child)
		if h == -1 {
			h = ch
		} else if h != ch {
			return fmt.Errorf("unbalanced: child heights %d and %d", h, ch)
		}
		if err := t.check(e.child, false); err != nil {
			return err
		}
	}
	return nil
}

// pointPermSorter sorts a permutation of point indices by one coordinate.
// It lives on T and is driven through sort.Sort with a pointer receiver, so
// repeated tiling sorts allocate nothing.
type pointPermSorter struct {
	perm []int
	pos  []geom.Vec
	dim  int
}

func (s *pointPermSorter) Len() int { return len(s.perm) }
func (s *pointPermSorter) Less(i, j int) bool {
	return s.pos[s.perm[i]][s.dim] < s.pos[s.perm[j]][s.dim]
}
func (s *pointPermSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

var _ sort.Interface = (*pointPermSorter)(nil)
