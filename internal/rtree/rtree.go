// Package rtree implements an in-memory R-tree over low-dimensional points,
// following Guttman's original design (quadratic split, condense-tree
// deletion). It is the spatial substrate for every exact clustering engine
// in this repository.
//
// Beyond the classic operations it implements the epoch-based probing method
// of the DISC paper (Algorithm 4): every leaf entry and every node carries an
// epoch drawn from a monotonically increasing tick counter. A range search
// executed under a tick skips any entry or subtree whose epoch equals that
// tick, so one connectivity check (one MS-BFS instance) can mark points as
// visited inside the index itself and later searches of the same instance
// prune whole subtrees — with no reset cost between instances, because a new
// instance simply draws a larger tick.
package rtree

import (
	"fmt"

	"disc/internal/geom"
)

const (
	defaultMaxEntries = 32
	defaultMinEntries = 13 // ~40% fill, Guttman's recommendation
)

// Stats counts the work performed by the tree since construction or the last
// ResetStats. The DISC evaluation (Fig. 7) reports range-search invocations;
// node accesses additionally expose the benefit of epoch-based pruning.
type Stats struct {
	RangeSearches int64 // number of SearchBall/SearchRect/SearchBallEpoch calls
	NodeAccesses  int64 // number of tree nodes touched by searches
	// EpochPruned counts the entries — leaf points or whole subtrees — an
	// epoch-probed search skipped because their epoch already matched the
	// search's tick: the work Algorithm 4 saves over re-descending for
	// every already-visited point.
	EpochPruned int64
}

type entry struct {
	rect  geom.Rect
	child *node // nil for leaf entries
	id    int64 // point id, valid for leaf entries
	epoch uint64
}

type node struct {
	leaf    bool
	entries []entry
	epoch   uint64 // min over entries' epochs; 0 means "contains unvisited"
}

// T is an R-tree over points of a fixed dimensionality. The zero value is
// not usable; construct with New. T is not safe for concurrent use.
type T struct {
	dims       int
	maxEntries int
	minEntries int
	root       *node
	size       int
	tick       uint64

	stats Stats
}

// New returns an empty R-tree for points with the given number of dimensions
// (1..geom.MaxDims).
func New(dims int) *T {
	if dims < 1 || dims > geom.MaxDims {
		panic(fmt.Sprintf("rtree: invalid dims %d", dims))
	}
	return &T{
		dims:       dims,
		maxEntries: defaultMaxEntries,
		minEntries: defaultMinEntries,
		root:       &node{leaf: true},
	}
}

// Len returns the number of points currently indexed.
func (t *T) Len() int { return t.size }

// Dims returns the dimensionality the tree was created with.
func (t *T) Dims() int { return t.dims }

// Stats returns a copy of the tree's work counters.
func (t *T) Stats() Stats { return t.stats }

// ResetStats zeroes the work counters.
func (t *T) ResetStats() { t.stats = Stats{} }

// NextTick returns a fresh, strictly increasing tick for one epoch-probed
// traversal instance (e.g. one MS-BFS run). Entries stamped with this tick
// are invisible to searches carrying the same tick.
func (t *T) NextTick() uint64 {
	t.tick++
	return t.tick
}

// Insert adds a point with the given id. Duplicate coordinates and duplicate
// ids are permitted (the tree is a multiset); Delete removes one matching
// entry.
func (t *T) Insert(id int64, p geom.Vec) {
	e := entry{rect: geom.PointRect(p), id: id}
	split := t.insert(t.root, e)
	if split != nil {
		t.growRoot(split)
	}
	t.size++
}

func (t *T) height(n *node) int {
	h := 0
	for !n.leaf {
		n = n.entries[0].child
		h++
	}
	return h
}

// insert places e in the subtree rooted at n and returns a new sibling node
// if n was split, nil otherwise.
func (t *T) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		n.epoch = 0 // fresh entry is unvisited
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	i := t.chooseSubtree(n, e.rect)
	child := n.entries[i].child
	split := t.insert(child, e)
	n.entries[i].rect = n.entries[i].rect.Enlarged(e.rect, t.dims)
	n.entries[i].epoch = child.epoch
	if split != nil {
		n.entries = append(n.entries, entry{rect: nodeRect(split, t.dims), child: split, epoch: split.epoch})
	}
	n.epoch = minEpoch(n)
	if len(n.entries) > t.maxEntries {
		return t.splitNode(n)
	}
	return nil
}

// chooseSubtree returns the index of the child entry of n needing the least
// area enlargement to cover r; ties broken by smallest area (Guttman's
// ChooseLeaf criterion).
func (t *T) chooseSubtree(n *node, r geom.Rect) int {
	best := 0
	bestEnl := n.entries[0].rect.EnlargementArea(r, t.dims)
	bestArea := n.entries[0].rect.Area(t.dims)
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].rect.EnlargementArea(r, t.dims)
		area := n.entries[i].rect.Area(t.dims)
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split on an overfull node in place
// and returns the newly created sibling.
func (t *T) splitNode(n *node) *node {
	entries := n.entries
	seedA, seedB := t.pickSeeds(entries)
	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	rectA := entries[seedA].rect
	rectB := entries[seedB].rect

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// If one group must take all remaining entries to reach minEntries, do so.
		if len(groupA)+len(rest) == t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA = rectA.Enlarged(e.rect, t.dims)
			}
			rest = nil
			break
		}
		if len(groupB)+len(rest) == t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB = rectB.Enlarged(e.rect, t.dims)
			}
			rest = nil
			break
		}
		// PickNext: entry with maximum preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := rectA.EnlargementArea(e.rect, t.dims)
			dB := rectB.EnlargementArea(e.rect, t.dims)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dA := rectA.EnlargementArea(e.rect, t.dims)
		dB := rectB.EnlargementArea(e.rect, t.dims)
		switch {
		case dA < dB:
			groupA = append(groupA, e)
			rectA = rectA.Enlarged(e.rect, t.dims)
		case dB < dA:
			groupB = append(groupB, e)
			rectB = rectB.Enlarged(e.rect, t.dims)
		case rectA.Area(t.dims) < rectB.Area(t.dims):
			groupA = append(groupA, e)
			rectA = rectA.Enlarged(e.rect, t.dims)
		case len(groupA) <= len(groupB):
			groupA = append(groupA, e)
			rectA = rectA.Enlarged(e.rect, t.dims)
		default:
			groupB = append(groupB, e)
			rectB = rectB.Enlarged(e.rect, t.dims)
		}
	}

	n.entries = groupA
	n.epoch = minEpoch(n)
	sib := &node{leaf: n.leaf, entries: groupB}
	sib.epoch = minEpoch(sib)
	return sib
}

// pickSeeds returns the two entries wasting the most area if grouped
// together (Guttman's quadratic PickSeeds).
func (t *T) pickSeeds(entries []entry) (int, int) {
	a, b, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.Enlarged(entries[j].rect, t.dims).Area(t.dims) -
				entries[i].rect.Area(t.dims) - entries[j].rect.Area(t.dims)
			if waste > worst {
				a, b, worst = i, j, waste
			}
		}
	}
	return a, b
}

// Delete removes one entry with the given id located at p. It reports
// whether an entry was found and removed.
func (t *T) Delete(id int64, p geom.Vec) bool {
	leaf, idx := t.findLeaf(t.root, id, p)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	leaf.epoch = minEpoch(leaf)
	t.condense(leaf, p)
	t.size--
	// Shrink the root while it is an internal node with a single child, and
	// reset to an empty leaf if everything was orphaned away.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

// findLeaf locates the leaf containing (id, p), returning the leaf and entry
// index, or (nil, 0) if absent.
func (t *T) findLeaf(n *node, id int64, p geom.Vec) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && e.rect.Min == p {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.Contains(p, t.dims) {
			if leaf, idx := t.findLeaf(e.child, id, p); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, 0
}

// condense walks from the root to the leaf that lost an entry, removing
// underfull nodes and reinserting the points of their subtrees, and
// tightening bounding rectangles along the path (Guttman's CondenseTree,
// with orphaned subtrees reinserted as points for simplicity).
func (t *T) condense(target *node, p geom.Vec) {
	var orphans []entry
	t.condenseRec(t.root, target, p, &orphans)
	// Orphaned points were never subtracted from t.size, and t.insert does
	// not add to it, so reinsertion keeps the count consistent.
	for _, e := range orphans {
		split := t.insert(t.root, e)
		if split != nil {
			t.growRoot(split)
		}
	}
}

// condenseRec returns true if the subtree rooted at n contains target (so
// ancestors adjust rects) and prunes underfull children, collecting their
// point entries into orphans.
func (t *T) condenseRec(n *node, target *node, p geom.Vec, orphans *[]entry) bool {
	if n == target {
		return true
	}
	if n.leaf {
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Contains(p, t.dims) {
			continue
		}
		if !t.condenseRec(e.child, target, p, orphans) {
			continue
		}
		child := e.child
		if len(child.entries) < t.minEntries {
			collectLeafEntries(child, orphans)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.rect = nodeRect(child, t.dims)
			e.epoch = child.epoch
		}
		n.epoch = minEpoch(n)
		return true
	}
	return false
}

func (t *T) growRoot(split *node) {
	oldRoot := t.root
	t.root = &node{
		leaf: false,
		entries: []entry{
			{rect: nodeRect(oldRoot, t.dims), child: oldRoot, epoch: oldRoot.epoch},
			{rect: nodeRect(split, t.dims), child: split, epoch: split.epoch},
		},
	}
	t.root.epoch = minEpoch(t.root)
}

func collectLeafEntries(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, e := range n.entries {
		collectLeafEntries(e.child, out)
	}
}

func nodeRect(n *node, dims int) geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Enlarged(e.rect, dims)
	}
	return r
}

func minEpoch(n *node) uint64 {
	if len(n.entries) == 0 {
		return 0
	}
	m := n.entries[0].epoch
	for _, e := range n.entries[1:] {
		if e.epoch < m {
			m = e.epoch
		}
	}
	return m
}

// SearchBall visits every indexed point within distance eps of c. The
// callback returns false to stop the search early; SearchBall reports
// whether the traversal ran to completion.
func (t *T) SearchBall(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.RangeSearches++
	return t.searchBall(t.root, c, eps, fn)
}

func (t *T) searchBall(n *node, c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.NodeAccesses++
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.IntersectsBall(c, t.dims, eps) {
			continue
		}
		if n.leaf {
			if geom.WithinEps(e.rect.Min, c, t.dims, eps) {
				if !fn(e.id, e.rect.Min) {
					return false
				}
			}
		} else if !t.searchBall(e.child, c, eps, fn) {
			return false
		}
	}
	return true
}

// SearchBallRO is SearchBall without statistics accounting: it performs no
// writes to the tree whatsoever, so any number of SearchBallRO calls may run
// concurrently (with each other and with SearchBall-free readers) as long as
// no mutation — Insert, Delete, BulkLoad, SearchBallEpoch — is in flight. It
// returns the number of nodes the traversal touched so callers can fold the
// work into their own counters.
func (t *T) SearchBallRO(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) (nodes int64) {
	t.searchBallRO(t.root, c, eps, fn, &nodes)
	return nodes
}

func (t *T) searchBallRO(n *node, c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool, nodes *int64) bool {
	*nodes++
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.IntersectsBall(c, t.dims, eps) {
			continue
		}
		if n.leaf {
			if geom.WithinEps(e.rect.Min, c, t.dims, eps) {
				if !fn(e.id, e.rect.Min) {
					return false
				}
			}
		} else if !t.searchBallRO(e.child, c, eps, fn, nodes) {
			return false
		}
	}
	return true
}

// SearchRect visits every indexed point inside rectangle r.
func (t *T) SearchRect(r geom.Rect, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.RangeSearches++
	return t.searchRect(t.root, r, fn)
}

func (t *T) searchRect(n *node, r geom.Rect, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.NodeAccesses++
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(r, t.dims) {
			continue
		}
		if n.leaf {
			if r.Contains(e.rect.Min, t.dims) {
				if !fn(e.id, e.rect.Min) {
					return false
				}
			}
		} else if !t.searchRect(e.child, r, fn) {
			return false
		}
	}
	return true
}

// SearchBallEpoch is the epoch-probed range search of DISC (Algorithm 4).
// It visits every point within eps of c whose epoch is strictly below tick,
// pruning any entry or subtree already stamped with tick. For each visited
// point the callback decides, by returning true, whether to stamp the
// point's leaf entry with tick, hiding it from subsequent searches that use
// the same tick. On backtracking, node and parent-entry epochs are updated
// to the minimum of their children, as in the paper.
func (t *T) SearchBallEpoch(c geom.Vec, eps float64, tick uint64, fn func(id int64, p geom.Vec) bool) {
	t.stats.RangeSearches++
	t.searchBallEpoch(t.root, c, eps, tick, fn)
}

// searchBallEpoch reports whether any epoch under n changed, so ancestors
// recompute their minima only along paths where stamping actually happened.
func (t *T) searchBallEpoch(n *node, c geom.Vec, eps float64, tick uint64, fn func(id int64, p geom.Vec) bool) bool {
	t.stats.NodeAccesses++
	changed := false
	for i := range n.entries {
		e := &n.entries[i]
		if e.epoch >= tick {
			t.stats.EpochPruned++
			continue
		}
		if !e.rect.IntersectsBall(c, t.dims, eps) {
			continue
		}
		if n.leaf {
			if geom.WithinEps(e.rect.Min, c, t.dims, eps) && fn(e.id, e.rect.Min) {
				e.epoch = tick
				changed = true
			}
		} else if t.searchBallEpoch(e.child, c, eps, tick, fn) {
			e.epoch = e.child.epoch
			changed = true
		}
	}
	if changed {
		n.epoch = minEpoch(n)
	}
	return changed
}

// StampBall stamps with tick every point within eps of c satisfying pred,
// without invoking any per-point work. It is used to mark a search center as
// expanded.
func (t *T) StampBall(c geom.Vec, eps float64, tick uint64, pred func(id int64) bool) {
	t.searchBallEpoch(t.root, c, eps, tick, func(id int64, _ geom.Vec) bool { return pred(id) })
}

// Depth returns the height of the tree (1 for a lone leaf root).
func (t *T) Depth() int { return t.height(t.root) + 1 }

// checkInvariants validates structural invariants; used by tests.
func (t *T) checkInvariants() error {
	return t.check(t.root, true)
}

func (t *T) check(n *node, isRoot bool) error {
	if !isRoot && (len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries) {
		return fmt.Errorf("node fill %d outside [%d,%d]", len(n.entries), t.minEntries, t.maxEntries)
	}
	if len(n.entries) > 0 && n.epoch != minEpoch(n) {
		return fmt.Errorf("node epoch %d != min entry epoch %d", n.epoch, minEpoch(n))
	}
	if n.leaf {
		return nil
	}
	h := -1
	for _, e := range n.entries {
		if e.child == nil {
			return fmt.Errorf("internal entry without child")
		}
		if got := nodeRect(e.child, t.dims); !e.rect.ContainsRect(got, t.dims) {
			return fmt.Errorf("entry rect %+v does not cover child rect %+v", e.rect, got)
		}
		if e.epoch != e.child.epoch {
			return fmt.Errorf("entry epoch %d != child epoch %d", e.epoch, e.child.epoch)
		}
		ch := t.height(e.child)
		if h == -1 {
			h = ch
		} else if h != ch {
			return fmt.Errorf("unbalanced: child heights %d and %d", h, ch)
		}
		if err := t.check(e.child, false); err != nil {
			return err
		}
	}
	return nil
}
