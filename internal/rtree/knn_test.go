package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"disc/internal/geom"
)

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(dims) * 71))
		tr := New(dims)
		type pt struct {
			id  int64
			pos geom.Vec
		}
		var pts []pt
		for id := int64(0); id < 2000; id++ {
			p := randVec(rng, dims, 100)
			tr.Insert(id, p)
			pts = append(pts, pt{id, p})
		}
		for trial := 0; trial < 50; trial++ {
			c := randVec(rng, dims, 100)
			k := 1 + rng.Intn(20)
			got := tr.KNN(c, k)
			if len(got) != k {
				t.Fatalf("dims=%d: KNN returned %d, want %d", dims, len(got), k)
			}
			// Brute force: sort all by distance.
			dists := make([]float64, len(pts))
			for i, p := range pts {
				dists[i] = geom.Dist2(p.pos, c, dims)
			}
			sort.Float64s(dists)
			for i, nb := range got {
				if nb.Dist2 != dists[i] {
					t.Fatalf("dims=%d k=%d: neighbor %d dist2 %g, want %g", dims, k, i, nb.Dist2, dists[i])
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if got[i].Dist2 < got[i-1].Dist2 {
					t.Fatal("KNN results not ascending")
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := New(2)
	if got := tr.KNN(geom.NewVec(0, 0), 5); got != nil {
		t.Fatal("KNN on empty tree returned results")
	}
	tr.Insert(1, geom.NewVec(1, 1))
	tr.Insert(2, geom.NewVec(2, 2))
	if got := tr.KNN(geom.NewVec(0, 0), 10); len(got) != 2 {
		t.Fatalf("k beyond size: got %d, want 2", len(got))
	}
	if got := tr.KNN(geom.NewVec(0, 0), 0); got != nil {
		t.Fatal("k=0 returned results")
	}
	got := tr.KNN(geom.NewVec(0.9, 0.9), 1)
	if got[0].ID != 1 {
		t.Fatalf("nearest = %d, want 1", got[0].ID)
	}
}

func TestBulkLoadInvariantsAndSearch(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 33, 1000, 10000} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := New(2)
		bf := newBrute(2)
		ids := make([]int64, n)
		pos := make([]geom.Vec, n)
		for i := 0; i < n; i++ {
			ids[i] = int64(i)
			pos[i] = randVec(rng, 2, 200)
			bf.insert(ids[i], pos[i])
		}
		tr.BulkLoad(ids, pos)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 30; trial++ {
			c := randVec(rng, 2, 200)
			eps := rng.Float64() * 30
			if got, want := collectBall(tr, c, eps), bf.searchBall(c, eps); !equalIDs(got, want) {
				t.Fatalf("n=%d: bulk-loaded search mismatch (%d vs %d)", n, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New(3)
	bf := newBrute(3)
	ids := make([]int64, 500)
	pos := make([]geom.Vec, 500)
	for i := range ids {
		ids[i] = int64(i)
		pos[i] = randVec(rng, 3, 50)
		bf.insert(ids[i], pos[i])
	}
	tr.BulkLoad(ids, pos)
	// Mixed mutations on a bulk-loaded tree must keep it consistent.
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			id := int64(1000 + i)
			p := randVec(rng, 3, 50)
			tr.Insert(id, p)
			bf.insert(id, p)
		} else {
			id := ids[i]
			if tr.Delete(id, pos[i]) {
				bf.delete(id)
			}
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		c := randVec(rng, 3, 50)
		if got, want := collectBall(tr, c, 8), bf.searchBall(c, 8); !equalIDs(got, want) {
			t.Fatal("search mismatch after mutating a bulk-loaded tree")
		}
	}
}

func TestBulkLoadMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	New(2).BulkLoad([]int64{1}, nil)
}

func TestBulkLoadEpochsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := New(2)
	ids := make([]int64, 300)
	pos := make([]geom.Vec, 300)
	for i := range ids {
		ids[i] = int64(i)
		pos[i] = randVec(rng, 2, 40)
	}
	tr.BulkLoad(ids, pos)
	tick := tr.NextTick()
	c := geom.NewVec(20, 20)
	tr.SearchBallEpoch(c, 15, tick, func(int64, geom.Vec) bool { return true })
	count := 0
	tr.SearchBallEpoch(c, 15, tick, func(int64, geom.Vec) bool { count++; return false })
	if count != 0 {
		t.Fatalf("%d stamped points visible under same tick after bulk load", count)
	}
}

func BenchmarkBulkLoadVsInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 50000
	ids := make([]int64, n)
	pos := make([]geom.Vec, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		pos[i] = randVec(rng, 2, 1000)
	}
	b.Run("BulkLoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New(2)
			tr.BulkLoad(ids, pos)
		}
	})
	b.Run("Insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New(2)
			for j := range ids {
				tr.Insert(ids[j], pos[j])
			}
		}
	})
}

func BenchmarkKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New(2)
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, randVec(rng, 2, 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(randVec(rng, 2, 1000), 10)
	}
}
