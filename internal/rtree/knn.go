package rtree

import (
	"container/heap"
	"sort"

	"disc/internal/geom"
)

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	ID    int64
	Pos   geom.Vec
	Dist2 float64
}

// KNN returns the k nearest indexed points to c in ascending distance order
// (fewer if the tree holds fewer than k points). It runs the classic
// best-first traversal with a priority queue ordered by minimum possible
// distance, so node accesses are bounded by the result neighborhood.
//
// KNN powers the K-distance-graph parameter estimation the DISC evaluation
// uses to pick ε and τ (Table II cites Ester et al. and Schubert et al.).
func (t *T) KNN(c geom.Vec, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	t.stats.RangeSearches++
	pq := &knnQueue{}
	heap.Push(pq, knnItem{node: t.root, dist2: 0})
	var out []Neighbor
	// worst is the current k-th best distance; prune nodes beyond it.
	worst := func() float64 {
		if len(out) < k {
			return -1 // not enough results yet: nothing prunable
		}
		return out[len(out)-1].Dist2
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnItem)
		if w := worst(); w >= 0 && it.dist2 > w {
			break // nothing closer remains anywhere in the queue
		}
		if !it.point {
			t.stats.NodeAccesses++
			for i := range it.node.entries {
				e := &it.node.entries[i]
				if it.node.leaf {
					d2 := geom.Dist2(e.rect.Min, c, t.dims)
					if w := worst(); w < 0 || d2 < w {
						heap.Push(pq, knnItem{leafID: e.id, leafPos: e.rect.Min, dist2: d2, point: true})
					}
				} else {
					d2 := e.rect.MinDist2(c, t.dims)
					if w := worst(); w < 0 || d2 <= w {
						heap.Push(pq, knnItem{node: e.child, dist2: d2})
					}
				}
			}
			continue
		}
		// A point surfaced before any node that could contain anything
		// closer: it is final.
		out = insertNeighbor(out, Neighbor{ID: it.leafID, Pos: it.leafPos, Dist2: it.dist2}, k)
	}
	return out
}

// insertNeighbor keeps out sorted ascending and capped at k entries.
func insertNeighbor(out []Neighbor, n Neighbor, k int) []Neighbor {
	i := sort.Search(len(out), func(i int) bool { return out[i].Dist2 > n.Dist2 })
	out = append(out, Neighbor{})
	copy(out[i+1:], out[i:])
	out[i] = n
	if len(out) > k {
		out = out[:k]
	}
	return out
}

type knnItem struct {
	node    *node
	leafID  int64
	leafPos geom.Vec
	dist2   float64
	point   bool
}

type knnQueue []knnItem

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist2 < q[j].dist2 }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// BulkLoad builds a tree from scratch using Sort-Tile-Recursive packing,
// which produces well-shaped rectangles and full leaves — considerably
// better than repeated insertion for the initial window fill. Any existing
// contents of the tree are replaced.
func (t *T) BulkLoad(ids []int64, positions []geom.Vec) {
	if len(ids) != len(positions) {
		panic("rtree: BulkLoad id/position length mismatch")
	}
	entries := make([]entry, len(ids))
	for i := range ids {
		entries[i] = entry{rect: geom.PointRect(positions[i]), id: ids[i]}
	}
	t.root = t.strPack(entries, true)
	t.size = len(ids)
}

// strPack recursively packs entries into nodes of maxEntries each, sorting
// by dimension 0 then tiling by the remaining dimensions.
func (t *T) strPack(entries []entry, leaf bool) *node {
	if len(entries) == 0 {
		return &node{leaf: true}
	}
	if len(entries) <= t.maxEntries {
		n := &node{leaf: leaf, entries: entries}
		n.epoch = minEpoch(n)
		return n
	}
	nodes := t.strTile(entries, 0, leaf)
	// Pack the produced nodes upward until one root remains.
	for len(nodes) > 1 {
		parents := make([]entry, len(nodes))
		for i, nd := range nodes {
			parents[i] = entry{rect: nodeRect(nd, t.dims), child: nd, epoch: nd.epoch}
		}
		if len(parents) <= t.maxEntries {
			root := &node{leaf: false, entries: parents}
			root.epoch = minEpoch(root)
			return root
		}
		nodes = t.strTile(parents, 0, false)
	}
	return nodes[0]
}

// strTile sorts entries along dim and slices them into runs, recursively
// tiling the next dimension, finally emitting packed nodes.
func (t *T) strTile(entries []entry, dim int, leaf bool) []*node {
	centerOf := func(e *entry, d int) float64 { return (e.rect.Min[d] + e.rect.Max[d]) / 2 }
	sort.Slice(entries, func(i, j int) bool {
		return centerOf(&entries[i], dim) < centerOf(&entries[j], dim)
	})
	if dim == t.dims-1 {
		var out []*node
		for _, chunk := range evenChunks(entries, t.maxEntries) {
			c := make([]entry, len(chunk))
			copy(c, chunk)
			n := &node{leaf: leaf, entries: c}
			n.epoch = minEpoch(n)
			out = append(out, n)
		}
		return out
	}
	// Number of vertical slices: S = ceil((N/M)^((D-d-1)/(D-d))) per STR; a
	// simple square-ish split works well for our low dimensionalities.
	perSlice := t.maxEntries
	leafCount := (len(entries) + t.maxEntries - 1) / t.maxEntries
	slices := intSqrtCeil(leafCount)
	if slices < 1 {
		slices = 1
	}
	perSlice = (len(entries) + slices - 1) / slices
	var out []*node
	for start := 0; start < len(entries); start += perSlice {
		end := start + perSlice
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, t.strTile(entries[start:end], dim+1, leaf)...)
	}
	return out
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// evenChunks partitions entries into the minimum number of runs of at most
// max entries each, sized as evenly as possible, so every produced node
// satisfies the minimum-fill invariant (max/2-ish) whenever more than one
// node is needed.
func evenChunks(entries []entry, max int) [][]entry {
	num := (len(entries) + max - 1) / max
	if num == 0 {
		return nil
	}
	base := len(entries) / num
	extra := len(entries) % num
	out := make([][]entry, 0, num)
	start := 0
	for i := 0; i < num; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, entries[start:start+size])
		start += size
	}
	return out
}
