package rtree

import (
	"container/heap"
	"sort"

	"disc/internal/geom"
)

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	ID    int64
	Pos   geom.Vec
	Dist2 float64
}

// KNN returns the k nearest indexed points to c in ascending distance order
// (fewer if the tree holds fewer than k points). It runs the classic
// best-first traversal with a priority queue ordered by minimum possible
// distance, so node accesses are bounded by the result neighborhood.
//
// KNN powers the K-distance-graph parameter estimation the DISC evaluation
// uses to pick ε and τ (Table II cites Ester et al. and Schubert et al.).
func (t *T) KNN(c geom.Vec, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	t.stats.RangeSearches++
	pq := &knnQueue{}
	heap.Push(pq, knnItem{node: t.root, dist2: 0})
	var out []Neighbor
	// worst is the current k-th best distance; prune nodes beyond it.
	worst := func() float64 {
		if len(out) < k {
			return -1 // not enough results yet: nothing prunable
		}
		return out[len(out)-1].Dist2
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnItem)
		if w := worst(); w >= 0 && it.dist2 > w {
			break // nothing closer remains anywhere in the queue
		}
		if !it.point {
			t.stats.NodeAccesses++
			n := it.node
			if n.leaf {
				d := t.dims
				for i, base := 0, 0; i < len(n.ids); i, base = i+1, base+d {
					d2 := geom.Dist2Slab(n.coords[base:], c, d)
					if w := worst(); w < 0 || d2 < w {
						heap.Push(pq, knnItem{leafID: n.ids[i], leafPos: t.leafVec(n, i), dist2: d2, point: true})
					}
				}
			} else {
				for i := range n.entries {
					e := &n.entries[i]
					d2 := e.rect.MinDist2(c, t.dims)
					if w := worst(); w < 0 || d2 <= w {
						heap.Push(pq, knnItem{node: e.child, dist2: d2})
					}
				}
			}
			continue
		}
		// A point surfaced before any node that could contain anything
		// closer: it is final.
		out = insertNeighbor(out, Neighbor{ID: it.leafID, Pos: it.leafPos, Dist2: it.dist2}, k)
	}
	return out
}

// insertNeighbor keeps out sorted ascending and capped at k entries.
func insertNeighbor(out []Neighbor, n Neighbor, k int) []Neighbor {
	i := sort.Search(len(out), func(i int) bool { return out[i].Dist2 > n.Dist2 })
	out = append(out, Neighbor{})
	copy(out[i+1:], out[i:])
	out[i] = n
	if len(out) > k {
		out = out[:k]
	}
	return out
}

type knnItem struct {
	node    *node
	leafID  int64
	leafPos geom.Vec
	dist2   float64
	point   bool
}

type knnQueue []knnItem

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist2 < q[j].dist2 }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// BulkLoad builds a tree from scratch using Sort-Tile-Recursive packing,
// which produces well-shaped rectangles and full leaves — considerably
// better than repeated insertion for the initial window fill. Any existing
// contents of the tree are replaced.
func (t *T) BulkLoad(ids []int64, positions []geom.Vec) {
	if len(ids) != len(positions) {
		panic("rtree: BulkLoad id/position length mismatch")
	}
	t.root = t.strPackPoints(ids, positions)
	t.size = len(ids)
}

// BulkInsert adds a batch of points to the existing tree. The resulting
// point multiset is identical to inserting the batch point by point — only
// the node layout may differ, never the visit set of any search. Batches
// larger than one node are STR-tiled into packed struct-of-arrays leaves
// which are grafted at leaf level through a single chooseSubtree descent
// each, replacing per-point descents and the split churn they cause. All
// scratch is pooled on T, so the steady-state path allocates nothing.
func (t *T) BulkInsert(ids []int64, positions []geom.Vec) {
	if len(ids) != len(positions) {
		panic("rtree: BulkInsert id/position length mismatch")
	}
	n := len(ids)
	if n == 0 {
		return
	}
	if t.size == 0 {
		t.freeTree(t.root)
		t.root = t.strPackPoints(ids, positions)
		t.size = n
		return
	}
	if n <= t.maxEntries || t.root.leaf {
		// Small batch, or a tree too shallow to graft into: per-point
		// insertion through the pooled split path.
		for i := range ids {
			t.insertPoint(ids[i], positions[i], 0)
		}
		t.size += n
		return
	}
	t.perm = t.perm[:0]
	for i := 0; i < n; i++ {
		t.perm = append(t.perm, i)
	}
	t.leafBuf = t.leafBuf[:0]
	t.buildLeaves(ids, positions, t.perm, 0)
	for i, lf := range t.leafBuf {
		if split := t.insertChild(t.root, lf, nodeRect(lf, t.dims)); split != nil {
			t.growRoot(split)
		}
		t.leafBuf[i] = nil
	}
	t.leafBuf = t.leafBuf[:0]
	t.size += n
}

// insertChild grafts sub — a packed leaf — under n at leaf-parent level,
// mirroring insertRec's descent, rect/epoch maintenance and split
// propagation. n must be internal.
func (t *T) insertChild(n *node, sub *node, r geom.Rect) *node {
	if n.entries[0].child.leaf {
		n.entries = append(n.entries, entry{rect: r, child: sub, epoch: sub.epoch})
		n.epoch = minEpoch(n)
		if len(n.entries) > t.maxEntries {
			return t.splitInternal(n)
		}
		return nil
	}
	i := t.chooseSubtree(n, r)
	child := n.entries[i].child
	split := t.insertChild(child, sub, r)
	n.entries[i].rect = n.entries[i].rect.Enlarged(r, t.dims)
	n.entries[i].epoch = child.epoch
	if split != nil {
		n.entries = append(n.entries, entry{rect: nodeRect(split, t.dims), child: split, epoch: split.epoch})
	}
	n.epoch = minEpoch(n)
	if len(n.entries) > t.maxEntries {
		return t.splitInternal(n)
	}
	return nil
}

// strPackPoints builds a full STR-packed tree over the given points (all at
// epoch 0): tile into struct-of-arrays leaves, then pack parent levels until
// a single root remains. Leaves come from the free list; the upward packing
// allocates parent entry slices, which become node storage anyway.
func (t *T) strPackPoints(ids []int64, pos []geom.Vec) *node {
	n := len(ids)
	if n == 0 {
		return t.newNode(true)
	}
	if n <= t.maxEntries {
		nd := t.newNode(true)
		for i := range ids {
			t.leafAppend(nd, ids[i], pos[i], 0)
		}
		return nd
	}
	t.perm = t.perm[:0]
	for i := 0; i < n; i++ {
		t.perm = append(t.perm, i)
	}
	t.leafBuf = t.leafBuf[:0]
	t.buildLeaves(ids, pos, t.perm, 0)
	root := t.packUpward(t.leafBuf)
	for i := range t.leafBuf {
		t.leafBuf[i] = nil
	}
	t.leafBuf = t.leafBuf[:0]
	return root
}

// buildLeaves STR-tiles the points selected by perm into packed
// struct-of-arrays leaves appended to t.leafBuf: sort the permutation along
// dim, slice into near-even vertical runs, recurse on the next dimension,
// and emit evenly-filled leaves on the last one. The even split arithmetic
// guarantees every produced leaf holds at least maxEntries/2 points whenever
// the batch exceeds one node, satisfying the minimum-fill invariant.
func (t *T) buildLeaves(ids []int64, pos []geom.Vec, perm []int, dim int) {
	t.psort.perm, t.psort.pos, t.psort.dim = perm, pos, dim
	sort.Sort(&t.psort)
	t.psort.perm, t.psort.pos = nil, nil
	if dim == t.dims-1 {
		num := (len(perm) + t.maxEntries - 1) / t.maxEntries
		base, extra := len(perm)/num, len(perm)%num
		start := 0
		for i := 0; i < num; i++ {
			size := base
			if i < extra {
				size++
			}
			nd := t.newNode(true)
			for _, pi := range perm[start : start+size] {
				t.leafAppend(nd, ids[pi], pos[pi], 0)
			}
			t.leafBuf = append(t.leafBuf, nd)
			start += size
		}
		return
	}
	leafCount := (len(perm) + t.maxEntries - 1) / t.maxEntries
	slices := intSqrtCeil(leafCount)
	if slices < 1 {
		slices = 1
	}
	perSlice := (len(perm) + slices - 1) / slices
	for start := 0; start < len(perm); start += perSlice {
		end := start + perSlice
		if end > len(perm) {
			end = len(perm)
		}
		t.buildLeaves(ids, pos, perm[start:end], dim+1)
	}
}

// packUpward packs a level of nodes into parents until one root remains.
func (t *T) packUpward(nodes []*node) *node {
	for len(nodes) > 1 {
		ents := make([]entry, len(nodes))
		for i, nd := range nodes {
			ents[i] = entry{rect: nodeRect(nd, t.dims), child: nd, epoch: nd.epoch}
		}
		if len(ents) <= t.maxEntries {
			root := t.newNode(false)
			root.entries = append(root.entries, ents...)
			root.epoch = minEpoch(root)
			return root
		}
		nodes = t.tileEntries(ents, 0, nodes[:0])
	}
	return nodes[0]
}

// tileEntries STR-tiles parent entries into internal nodes appended to out.
func (t *T) tileEntries(ents []entry, dim int, out []*node) []*node {
	sort.Slice(ents, func(i, j int) bool {
		return ents[i].rect.Min[dim]+ents[i].rect.Max[dim] < ents[j].rect.Min[dim]+ents[j].rect.Max[dim]
	})
	if dim == t.dims-1 {
		for _, chunk := range evenChunks(ents, t.maxEntries) {
			nd := t.newNode(false)
			nd.entries = append(nd.entries, chunk...)
			nd.epoch = minEpoch(nd)
			out = append(out, nd)
		}
		return out
	}
	// Number of vertical slices: S = ceil((N/M)^((D-d-1)/(D-d))) per STR; a
	// simple square-ish split works well for our low dimensionalities.
	leafCount := (len(ents) + t.maxEntries - 1) / t.maxEntries
	slices := intSqrtCeil(leafCount)
	if slices < 1 {
		slices = 1
	}
	perSlice := (len(ents) + slices - 1) / slices
	for start := 0; start < len(ents); start += perSlice {
		end := start + perSlice
		if end > len(ents) {
			end = len(ents)
		}
		out = t.tileEntries(ents[start:end], dim+1, out)
	}
	return out
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// evenChunks partitions entries into the minimum number of runs of at most
// max entries each, sized as evenly as possible, so every produced node
// satisfies the minimum-fill invariant (max/2-ish) whenever more than one
// node is needed.
func evenChunks(entries []entry, max int) [][]entry {
	num := (len(entries) + max - 1) / max
	if num == 0 {
		return nil
	}
	base := len(entries) / num
	extra := len(entries) % num
	out := make([][]entry, 0, num)
	start := 0
	for i := 0; i < num; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, entries[start:start+size])
		start += size
	}
	return out
}
