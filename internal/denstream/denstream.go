// Package denstream implements DenStream (Cao, Ester, Qian, Zhou: SDM
// 2006), the seminal density-based stream clustering method with decaying
// micro-clusters — reference [6] of the DISC paper and the ancestor of the
// summarization family (DBSTREAM, EDMStream) its evaluation compares
// against. It is included as an additional baseline beyond the paper's
// line-up.
//
// Streaming points are absorbed into potential core-micro-clusters (p-MCs)
// or outlier-micro-clusters (o-MCs), each maintaining exponentially decayed
// cluster features (weight, linear sum, squared sum) from which center and
// radius follow. A point joins the nearest p-MC if the merged radius stays
// within ε, else the nearest o-MC under the same test, else it seeds a new
// o-MC; o-MCs that accumulate enough weight are promoted, and periodic
// pruning demotes p-MCs whose decayed weight falls below β·µ. The offline
// phase connects p-MCs whose centers lie within 2ε plus their radii into
// macro-clusters.
//
// Like the other summarization engines here it is insertion-only: sliding
// window departures only unregister the point's label; forgetting is
// decay's job — precisely the mismatch with hard windows that the DISC
// evaluation's quality experiments expose.
package denstream

import (
	"fmt"
	"math"

	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/model"
)

// Options are the DenStream knobs; zero values select defaults.
type Options struct {
	Epsilon float64 // micro-cluster radius bound; defaults to cfg.Eps
	Lambda  float64 // decay rate per point; default ln2/2000
	Mu      float64 // core weight threshold µ; defaults to MinPts
	Beta    float64 // outlier threshold β in (0,1]; default 0.25
	Tp      int64   // pruning period in points; default 500
}

func (o *Options) fill(cfg model.Config) {
	if o.Epsilon <= 0 {
		o.Epsilon = cfg.Eps
	}
	if o.Lambda <= 0 {
		o.Lambda = math.Ln2 / 2000
	}
	if o.Mu <= 0 {
		o.Mu = float64(cfg.MinPts)
	}
	if o.Beta <= 0 || o.Beta > 1 {
		o.Beta = 0.25
	}
	if o.Tp <= 0 {
		o.Tp = 500
	}
}

// micro is one micro-cluster with decayed cluster features.
type micro struct {
	id        int64
	w         float64  // decayed weight
	cf1       geom.Vec // decayed linear sum
	cf2       float64  // decayed squared norm sum
	last      int64    // last update time
	potential bool     // p-MC vs o-MC
	created   int64    // creation time (o-MC pruning)
}

func (m *micro) decayTo(now int64, lambda float64) {
	if now <= m.last {
		return
	}
	f := math.Exp(-lambda * float64(now-m.last))
	m.w *= f
	for d := range m.cf1 {
		m.cf1[d] *= f
	}
	m.cf2 *= f
	m.last = now
}

func (m *micro) center(dims int) geom.Vec {
	var c geom.Vec
	if m.w == 0 {
		return c
	}
	for d := 0; d < dims; d++ {
		c[d] = m.cf1[d] / m.w
	}
	return c
}

// radius returns the RMS deviation of the MC's mass from its center.
func (m *micro) radius(dims int) float64 {
	if m.w == 0 {
		return 0
	}
	c := m.center(dims)
	var c2 float64
	for d := 0; d < dims; d++ {
		c2 += c[d] * c[d]
	}
	v := m.cf2/m.w - c2
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// mergedRadius returns the radius the MC would have after absorbing p.
func (m *micro) mergedRadius(p geom.Vec, dims int) float64 {
	w := m.w + 1
	var c2, cf2 float64
	cf2 = m.cf2
	for d := 0; d < dims; d++ {
		cf2 += p[d] * p[d]
		c := (m.cf1[d] + p[d]) / w
		c2 += c * c
	}
	v := cf2/w - c2
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

func (m *micro) absorb(p geom.Vec, dims int) {
	m.w++
	for d := 0; d < dims; d++ {
		m.cf1[d] += p[d]
	}
	for d := 0; d < dims; d++ {
		m.cf2 += p[d] * p[d]
	}
}

// Engine implements model.Engine for DenStream.
type Engine struct {
	cfg    model.Config
	opt    Options
	mcs    map[int64]*micro
	idx    *grid.Grid // over MC centers
	nextMC int64
	now    int64

	assign map[int64]int64 // point id -> MC id
	macro  map[int64]int   // p-MC id -> macro cluster (rebuilt per Advance)
	stats  model.Stats
}

// New returns a DenStream engine.
func New(cfg model.Config, opt Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.fill(cfg)
	return &Engine{
		cfg:    cfg,
		opt:    opt,
		mcs:    make(map[int64]*micro),
		idx:    grid.New(cfg.Dims, opt.Epsilon),
		assign: make(map[int64]int64),
		macro:  make(map[int64]int),
	}, nil
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "DenStream" }

// Advance implements model.Engine.
func (e *Engine) Advance(in, out []model.Point) {
	for _, p := range out {
		delete(e.assign, p.ID)
	}
	for _, p := range in {
		e.insert(p)
	}
	e.recluster()
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.mcs))
}

// nearest returns the closest MC of the given kind within 2ε of p.
func (e *Engine) nearest(p geom.Vec, potential bool) *micro {
	var best *micro
	bestD := math.Inf(1)
	e.idx.SearchBall(p, 2*e.opt.Epsilon, func(id int64, _ geom.Vec) bool {
		mc := e.mcs[id]
		if mc == nil || mc.potential != potential {
			return true
		}
		d := geom.Dist2(mc.center(e.cfg.Dims), p, e.cfg.Dims)
		if d < bestD {
			bestD, best = d, mc
		}
		return true
	})
	return best
}

func (e *Engine) insert(p model.Point) {
	e.now++
	e.stats.RangeSearches++

	try := func(mc *micro) bool {
		if mc == nil {
			return false
		}
		mc.decayTo(e.now, e.opt.Lambda)
		if mc.mergedRadius(p.Pos, e.cfg.Dims) > e.opt.Epsilon {
			return false
		}
		old := mc.center(e.cfg.Dims)
		mc.absorb(p.Pos, e.cfg.Dims)
		e.reindex(mc, old)
		e.assign[p.ID] = mc.id
		return true
	}

	if try(e.nearest(p.Pos, true)) { // nearest p-MC first
		e.maybePrune()
		return
	}
	if o := e.nearest(p.Pos, false); try(o) {
		// Promote the o-MC once it outweighs β·µ.
		if o.w > e.opt.Beta*e.opt.Mu {
			o.potential = true
		}
		e.maybePrune()
		return
	}
	// Seed a fresh o-MC at p.
	mc := &micro{id: e.nextMC, w: 1, last: e.now, created: e.now}
	e.nextMC++
	mc.cf1 = p.Pos
	for d := 0; d < e.cfg.Dims; d++ {
		mc.cf2 += p.Pos[d] * p.Pos[d]
	}
	e.mcs[mc.id] = mc
	e.idx.Insert(mc.id, mc.center(e.cfg.Dims))
	e.assign[p.ID] = mc.id
	e.maybePrune()
}

func (e *Engine) reindex(mc *micro, oldCenter geom.Vec) {
	nc := mc.center(e.cfg.Dims)
	if e.idx.KeyOf(oldCenter) != e.idx.KeyOf(nc) {
		e.idx.Delete(mc.id, oldCenter)
		e.idx.Insert(mc.id, nc)
	}
}

// maybePrune runs the periodic maintenance: demote/drop weak p-MCs, drop
// stale o-MCs whose weight lags the expected growth curve.
func (e *Engine) maybePrune() {
	if e.now%e.opt.Tp != 0 {
		return
	}
	lambda := e.opt.Lambda
	for id, mc := range e.mcs {
		mc.decayTo(e.now, lambda)
		if mc.potential {
			if mc.w < e.opt.Beta*e.opt.Mu {
				e.idx.Delete(id, mc.center(e.cfg.Dims))
				delete(e.mcs, id)
			}
			continue
		}
		// Expected lower bound for a legitimate outlier-MC of this age
		// (Cao et al.'s ξ threshold, simplified to a decayed unit weight).
		xi := math.Exp(-lambda * float64(e.now-mc.created) / 2)
		if mc.w < xi {
			e.idx.Delete(id, mc.center(e.cfg.Dims))
			delete(e.mcs, id)
		}
	}
}

// recluster is the offline phase: p-MCs are density-connected when their
// centers are within 2ε plus both RMS radii — micro-clusters are extended
// objects, so center distance alone under-connects contiguous regions
// summarized by few wide MCs.
func (e *Engine) recluster() {
	e.macro = make(map[int64]int)
	next := 0
	var stack []int64
	for id, mc := range e.mcs {
		mc.decayTo(e.now, e.opt.Lambda)
		if !mc.potential || mc.w < e.opt.Beta*e.opt.Mu {
			continue
		}
		if _, done := e.macro[id]; done {
			continue
		}
		next++
		e.macro[id] = next
		stack = append(stack[:0], id)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cmc := e.mcs[cur]
			center := cmc.center(e.cfg.Dims)
			curR := cmc.radius(e.cfg.Dims)
			// Radii are bounded by ε, so 4ε covers every connectable center.
			e.idx.SearchBall(center, 4*e.opt.Epsilon, func(nid int64, _ geom.Vec) bool {
				if nid == cur {
					return true
				}
				n := e.mcs[nid]
				if n == nil || !n.potential || n.w < e.opt.Beta*e.opt.Mu {
					return true
				}
				if _, done := e.macro[nid]; done {
					return true
				}
				reach := 2*e.opt.Epsilon + curR + n.radius(e.cfg.Dims)
				if geom.WithinEps(center, n.center(e.cfg.Dims), e.cfg.Dims, reach) {
					e.macro[nid] = next
					stack = append(stack, nid)
				}
				return true
			})
		}
	}
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	mcID, ok := e.assign[id]
	if !ok {
		return model.Assignment{}, false
	}
	if cid, ok := e.macro[mcID]; ok {
		return model.Assignment{Label: model.Core, ClusterID: cid}, true
	}
	return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}, true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.assign))
	for id := range e.assign {
		a, _ := e.Assignment(id)
		out[id] = a
	}
	return out
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }

// MicroClusters returns the live (p, o) micro-cluster counts.
func (e *Engine) MicroClusters() (p, o int) {
	for _, mc := range e.mcs {
		if mc.potential {
			p++
		} else {
			o++
		}
	}
	return p, o
}

// String describes the configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("DenStream(eps=%g λ=%g µ=%g β=%g)", e.opt.Epsilon, e.opt.Lambda, e.opt.Mu, e.opt.Beta)
}
