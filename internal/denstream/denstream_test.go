package denstream

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
)

func threeBlobs(rng *rand.Rand, n int) ([]model.Point, map[int64]int) {
	truth := make(map[int64]int, n)
	pts := make([]model.Point, n)
	for i := range pts {
		b := rng.Intn(3)
		x := float64(b)*30 + rng.NormFloat64()*1.5
		y := rng.NormFloat64() * 1.5
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		truth[int64(i)] = b + 1
	}
	return pts, truth
}

func TestSeparatedBlobsClusterWell(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data, truth := threeBlobs(rng, 3000)
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 5}
	eng, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(data, nil)
	ari := metrics.ARI(truth, metrics.Labels(eng.Snapshot()))
	if ari < 0.85 {
		t.Fatalf("ARI on separated blobs = %.3f, want >= 0.85", ari)
	}
	p, o := eng.MicroClusters()
	t.Logf("ARI = %.3f with %d p-MCs, %d o-MCs", ari, p, o)
	if p == 0 {
		t.Fatal("no potential micro-clusters formed")
	}
}

func TestMicroClusterRadiusBounded(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(72))
	var pts []model.Point
	for i := 0; i < 2000; i++ {
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*20, rng.Float64()*20)})
	}
	eng.Advance(pts, nil)
	for _, mc := range eng.mcs {
		if r := mc.radius(2); r > eng.opt.Epsilon+1e-9 {
			t.Fatalf("micro-cluster radius %.3f exceeds epsilon %.3f", r, eng.opt.Epsilon)
		}
	}
}

func TestOutlierPromotion(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 4}
	eng, _ := New(cfg, Options{Beta: 0.5})
	// Hammer one location: the o-MC must become a p-MC once w > β·µ = 2.
	var pts []model.Point
	for i := 0; i < 10; i++ {
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(5, 5)})
	}
	eng.Advance(pts, nil)
	p, _ := eng.MicroClusters()
	if p == 0 {
		t.Fatal("dense spot never promoted to a potential micro-cluster")
	}
	if a, _ := eng.Assignment(9); a.Label != model.Core {
		t.Fatalf("point in dense spot labeled %v", a.Label)
	}
}

func TestDecayDropsStaleClusters(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	eng, _ := New(cfg, Options{Lambda: 0.05, Tp: 100})
	var burst []model.Point
	for i := 0; i < 20; i++ {
		burst = append(burst, model.Point{ID: int64(i), Pos: geom.NewVec(0, 0)})
	}
	eng.Advance(burst, nil)
	var far []model.Point
	for i := 0; i < 3000; i++ {
		far = append(far, model.Point{ID: int64(1000 + i), Pos: geom.NewVec(100, 100)})
	}
	eng.Advance(far, nil)
	for _, mc := range eng.mcs {
		c := mc.center(2)
		if c[0] < 50 {
			t.Fatal("stale micro-cluster at origin survived pruning")
		}
	}
}

func TestDepartedPointsLeaveSnapshot(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(73))
	data, _ := threeBlobs(rng, 200)
	eng.Advance(data[:120], nil)
	eng.Advance(data[120:], data[:60])
	if got := len(eng.Snapshot()); got != 140 {
		t.Fatalf("snapshot size %d, want 140", got)
	}
	if _, ok := eng.Assignment(data[0].ID); ok {
		t.Fatal("departed point still assigned")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(model.Config{}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBridgedRidgeIsOneCluster(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(74))
	var pts []model.Point
	for i := 0; i < 3000; i++ {
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*10, rng.NormFloat64()*0.3)})
	}
	eng.Advance(pts, nil)
	counts := map[int]int{}
	clustered := 0
	for _, a := range eng.Snapshot() {
		if a.ClusterID != model.NoCluster {
			counts[a.ClusterID]++
			clustered++
		}
	}
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	if maxc < clustered*7/10 {
		t.Fatalf("ridge fragmented: largest %d of %d clustered", maxc, clustered)
	}
}
