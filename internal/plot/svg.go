// Package plot renders cluster dumps as SVG scatter plots — the visual form
// of the paper's Fig. 12 — using only the standard library. Clusters get
// distinct hues from a golden-angle walk around the color wheel; noise is
// drawn as small gray dots.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Dot is one point to plot.
type Dot struct {
	X, Y    float64
	Cluster int // 0 = noise
}

// Options controls the rendering.
type Options struct {
	Width, Height int     // canvas size in pixels; defaults 800×600
	Radius        float64 // dot radius; default 2
	Title         string
	Background    string // CSS color; default white
}

func (o *Options) fill() {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.Height <= 0 {
		o.Height = 600
	}
	if o.Radius <= 0 {
		o.Radius = 2
	}
	if o.Background == "" {
		o.Background = "#ffffff"
	}
}

// SVG writes an SVG scatter plot of the dots to w.
func SVG(w io.Writer, dots []Dot, opt Options) error {
	opt.fill()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, d := range dots {
		minX, maxX = math.Min(minX, d.X), math.Max(maxX, d.X)
		minY, maxY = math.Min(minY, d.Y), math.Max(maxY, d.Y)
	}
	if len(dots) == 0 || minX == maxX {
		maxX = minX + 1
	}
	if len(dots) == 0 || minY == maxY {
		maxY = minY + 1
	}
	const margin = 20.0
	sx := (float64(opt.Width) - 2*margin) / (maxX - minX)
	sy := (float64(opt.Height) - 2*margin) / (maxY - minY)

	colors := colorMap(dots)

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Width, opt.Height, opt.Width, opt.Height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="%s"/>`+"\n", opt.Background)
	if opt.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="16" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			int(margin), xmlEscape(opt.Title))
	}
	// Noise first so clusters draw on top.
	for _, noisePass := range []bool{true, false} {
		for _, d := range dots {
			if (d.Cluster == 0) != noisePass {
				continue
			}
			px := margin + (d.X-minX)*sx
			py := float64(opt.Height) - margin - (d.Y-minY)*sy // y up
			r := opt.Radius
			color := colors[d.Cluster]
			if d.Cluster == 0 {
				r = opt.Radius * 0.6
			}
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", px, py, r, color)
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// colorMap assigns each cluster a hue via the golden-angle walk, in
// ascending cluster-id order so output is deterministic.
func colorMap(dots []Dot) map[int]string {
	ids := map[int]bool{}
	for _, d := range dots {
		if d.Cluster != 0 {
			ids[d.Cluster] = true
		}
	}
	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Ints(sorted)
	out := map[int]string{0: "#c8c8c8"}
	const golden = 137.50776405
	for i, id := range sorted {
		h := math.Mod(float64(i)*golden, 360)
		out[id] = hslToHex(h, 0.65, 0.45)
	}
	return out
}

// hslToHex converts HSL (h in degrees, s/l in [0,1]) to a #rrggbb string.
func hslToHex(h, s, l float64) string {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	to := func(v float64) int {
		n := int(math.Round((v + m) * 255))
		if n < 0 {
			n = 0
		}
		if n > 255 {
			n = 255
		}
		return n
	}
	return fmt.Sprintf("#%02x%02x%02x", to(r), to(g), to(b))
}

func xmlEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
