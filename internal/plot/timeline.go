package plot

import (
	"fmt"
	"io"
	"sort"
)

// TimelineEvent is one cluster-evolution occurrence to render.
type TimelineEvent struct {
	Stride  uint64
	Type    string // "emergence", "expansion", "merger", "split", "shrink", "dissipation"
	Cluster int
}

// Timeline renders cluster-evolution events as an SVG swim-lane chart: one
// horizontal lane per cluster id, strides on the x axis, one glyph per
// event. It turns the event stream of DISC's WithEventHandler (or the
// discserver /events endpoint) into a picture of each cluster's life.
func Timeline(w io.Writer, events []TimelineEvent, opt Options) error {
	opt.fill()
	if len(events) == 0 {
		_, err := fmt.Fprintf(w,
			`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"/>`+"\n",
			opt.Width, opt.Height)
		return err
	}

	// Lanes in order of first appearance; stride extent for the x scale.
	laneOf := map[int]int{}
	var laneIDs []int
	minS, maxS := events[0].Stride, events[0].Stride
	for _, ev := range events {
		if _, ok := laneOf[ev.Cluster]; !ok {
			laneOf[ev.Cluster] = len(laneIDs)
			laneIDs = append(laneIDs, ev.Cluster)
		}
		if ev.Stride < minS {
			minS = ev.Stride
		}
		if ev.Stride > maxS {
			maxS = ev.Stride
		}
	}
	if maxS == minS {
		maxS = minS + 1
	}

	const (
		marginL = 60.0
		marginR = 15.0
		marginT = 30.0
		laneGap = 22.0
	)
	height := marginT + laneGap*float64(len(laneIDs)) + 15
	if int(height) > opt.Height {
		opt.Height = int(height)
	}
	sx := (float64(opt.Width) - marginL - marginR) / float64(maxS-minS)
	xOf := func(s uint64) float64 { return marginL + float64(s-minS)*sx }
	yOf := func(cluster int) float64 { return marginT + laneGap*float64(laneOf[cluster]) + laneGap/2 }

	colors := map[string]string{
		"emergence":   "#2a9d3a",
		"expansion":   "#7cc36a",
		"merger":      "#1c6fd6",
		"split":       "#d6671c",
		"shrink":      "#c9b458",
		"dissipation": "#c03030",
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Width, opt.Height, opt.Width, opt.Height)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="%s"/>`+"\n", opt.Background)
	if opt.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="18" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			int(marginL), xmlEscape(opt.Title))
	}

	// Lane guides and labels.
	sort.Ints(laneIDs) // draw labels in id order; lane positions unchanged
	for _, id := range laneIDs {
		y := yOf(id)
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e5e5"/>`+"\n",
			marginL, y, opt.Width-int(marginR), y)
		fmt.Fprintf(w, `<text x="4" y="%.1f" font-family="sans-serif" font-size="10" fill="#555">c%d</text>`+"\n",
			y+3, id)
	}

	// Life spans: from first to last event of each lane.
	first := map[int]uint64{}
	last := map[int]uint64{}
	for _, ev := range events {
		if _, ok := first[ev.Cluster]; !ok || ev.Stride < first[ev.Cluster] {
			first[ev.Cluster] = ev.Stride
		}
		if ev.Stride > last[ev.Cluster] {
			last[ev.Cluster] = ev.Stride
		}
	}
	for id := range laneOf {
		y := yOf(id)
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bdbdbd" stroke-width="3"/>`+"\n",
			xOf(first[id]), y, xOf(last[id]), y)
	}

	// Event glyphs.
	for _, ev := range events {
		color, ok := colors[ev.Type]
		if !ok {
			color = "#777777"
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"><title>%s @ stride %d</title></circle>`+"\n",
			xOf(ev.Stride), yOf(ev.Cluster), color, xmlEscape(ev.Type), ev.Stride)
	}

	// Legend.
	lx := marginL
	for _, name := range []string{"emergence", "expansion", "merger", "split", "shrink", "dissipation"} {
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", lx, float64(opt.Height)-8, colors[name])
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" fill="#333">%s</text>`+"\n",
			lx+7, float64(opt.Height)-5, name)
		lx += float64(len(name))*5.6 + 22
	}

	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
