package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestSVGBasics(t *testing.T) {
	dots := []Dot{
		{X: 0, Y: 0, Cluster: 1},
		{X: 1, Y: 1, Cluster: 1},
		{X: 5, Y: 5, Cluster: 2},
		{X: 9, Y: 9, Cluster: 0}, // noise
	}
	var buf bytes.Buffer
	if err := SVG(&buf, dots, Options{Title: "test <plot>"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(out, "<circle") != 4 {
		t.Fatalf("circle count = %d, want 4", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, "test &lt;plot&gt;") {
		t.Fatal("title not escaped")
	}
	// Noise color present, and two distinct cluster colors.
	if !strings.Contains(out, "#c8c8c8") {
		t.Fatal("noise color missing")
	}
}

func TestSVGDistinctClusterColors(t *testing.T) {
	dots := make([]Dot, 0, 20)
	for c := 1; c <= 20; c++ {
		dots = append(dots, Dot{X: float64(c), Y: float64(c % 5), Cluster: c})
	}
	var buf bytes.Buffer
	if err := SVG(&buf, dots, Options{}); err != nil {
		t.Fatal(err)
	}
	colors := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if i := strings.Index(line, `fill="#`); i >= 0 && strings.HasPrefix(line, "<circle") {
			colors[line[i+6:i+13]] = true
		}
	}
	if len(colors) != 20 {
		t.Fatalf("distinct colors = %d, want 20", len(colors))
	}
}

func TestSVGEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// All points identical: no division by zero.
	buf.Reset()
	if err := SVG(&buf, []Dot{{X: 3, Y: 3, Cluster: 1}, {X: 3, Y: 3, Cluster: 1}}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Fatal("degenerate points not drawn")
	}
}

func TestHSLToHex(t *testing.T) {
	// Pure-ish red at h=0.
	if got := hslToHex(0, 1, 0.5); got != "#ff0000" {
		t.Fatalf("red = %s", got)
	}
	if got := hslToHex(120, 1, 0.5); got != "#00ff00" {
		t.Fatalf("green = %s", got)
	}
	if got := hslToHex(240, 1, 0.5); got != "#0000ff" {
		t.Fatalf("blue = %s", got)
	}
	// Gray at s=0.
	if got := hslToHex(77, 0, 0.5); got != "#808080" {
		t.Fatalf("gray = %s", got)
	}
}

func TestTimelineBasics(t *testing.T) {
	events := []TimelineEvent{
		{Stride: 1, Type: "emergence", Cluster: 1},
		{Stride: 3, Type: "expansion", Cluster: 1},
		{Stride: 5, Type: "split", Cluster: 1},
		{Stride: 5, Type: "emergence", Cluster: 2},
		{Stride: 9, Type: "merger", Cluster: 1},
		{Stride: 9, Type: "dissipation", Cluster: 2},
	}
	var buf bytes.Buffer
	if err := Timeline(&buf, events, Options{Title: "life & times"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") {
		t.Fatal("not an SVG")
	}
	// 6 event glyphs + 6 legend dots.
	if got := strings.Count(out, "<circle"); got != 12 {
		t.Fatalf("circles = %d, want 12", got)
	}
	for _, lane := range []string{">c1<", ">c2<"} {
		if !strings.Contains(out, lane) {
			t.Fatalf("missing lane label %s", lane)
		}
	}
	if !strings.Contains(out, "emergence @ stride 1") {
		t.Fatal("missing tooltip")
	}
}

func TestTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Timeline(&buf, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no svg emitted")
	}
}

func TestTimelineSingleStride(t *testing.T) {
	var buf bytes.Buffer
	// All events at one stride: no division-by-zero in the x scale.
	if err := Timeline(&buf, []TimelineEvent{
		{Stride: 7, Type: "emergence", Cluster: 1},
		{Stride: 7, Type: "emergence", Cluster: 2},
	}, Options{}); err != nil {
		t.Fatal(err)
	}
}
