package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"disc/internal/ckpt"
	"disc/internal/model"
)

// BenchmarkIngestRouting measures the full HTTP ingest path — decode,
// validate, slider push, engine advance, view publish — through the two
// route surfaces: "single" is the standalone single-stream Server,
// "multi" is the registry's legacy alias onto the default stream. CI
// A/B-gates the pair: the registry indirection (handler adapter + stream
// lookup-free alias) must not cost the single-stream path more than the
// benchdiff threshold.
func BenchmarkIngestRouting(b *testing.B) {
	cfg := Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  1000,
		Stride:  100,
	}
	b.Run("single", func(b *testing.B) {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchIngest(b, s.Handler())
	})
	b.Run("multi", func(b *testing.B) {
		m, err := NewMulti(MultiConfig{Default: cfg})
		if err != nil {
			b.Fatal(err)
		}
		benchIngest(b, m.Handler())
	})
}

// BenchmarkAdvanceWAL measures the ingest path with write-ahead logging
// off and on. The WAL variant uses WithWALNoSync to isolate the logging
// path's CPU cost — record encode, frame, CRC, buffered write — from
// device fsync latency, which would otherwise dominate a sub-millisecond
// advance and turn the CI gate into a disk benchmark. CI A/B-gates the
// pair: the logging path must not cost the ingest path more than the
// benchdiff threshold.
func BenchmarkAdvanceWAL(b *testing.B) {
	cfg := Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  1000,
		Stride:  100,
	}
	b.Run("off", func(b *testing.B) {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchIngest(b, s.Handler())
	})
	b.Run("on", func(b *testing.B) {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w, err := ckpt.OpenWAL(b.TempDir(), ckpt.WithWALNoSync(),
			ckpt.WithWALMaxPayload(s.walRecordMaxPayload()))
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		s.AttachWAL(w)
		benchIngest(b, s.Handler())
	})
}

// benchIngest drives one stride-sized batch per iteration straight into
// the handler (no network, no client): ids are globally unique across
// iterations so the stream never rejects a duplicate, and the JSON
// marshal cost is identical across variants, so the measured difference
// isolates the routing layer.
func benchIngest(b *testing.B, h http.Handler) {
	b.ReportAllocs()
	const batch = 100
	id := int64(0)
	pts := make([]ingestPoint, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pts {
			c := float64((id % 2) * 20)
			pts[j] = ingestPoint{
				ID:   id,
				Time: id,
				// Deterministic in-blob jitter, cheap enough to stay timed.
				Coords: []float64{c + float64(id%7)/7, c + float64(id%11)/11},
			}
			id++
		}
		body, err := json.Marshal(pts)
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(fmt.Errorf("ingest status %d: %s", rec.Code, rec.Body.String()))
		}
	}
}
