// Multi-tenant stream registry: one process hosting many independent DISC
// streams. Each stream owns the full single-stream stack — engine, slider,
// published view, write mutex, optional tracer, and checkpoint generation
// directory — so writes to different streams proceed concurrently (there
// is no global write lock; the registry's own mutex guards only the
// name→stream map and is held for map operations, never across engine
// work). The single-stream HTTP surface moves under /streams/{name}/...;
// the historical routes remain as aliases for the undeletable "default"
// stream, so existing clients, disccli, and discload keep working
// unchanged.
//
// Telemetry: every stream records into one shared registry through a
// {stream="<name>"}-labeled instrument bundle. The label's cardinality is
// hard-capped (MetricStreams); tenants beyond the cap share one
// {stream="other"} bundle, so scrape size is bounded no matter how many
// streams a tenant storm registers. Durability: per-stream ckpt stores
// under <dir>/streams/<name> (the default stream keeps <dir> itself — the
// pre-multi-tenant layout — so existing deployments recover their data),
// all driven by one shared ckpt.Scheduler goroutine.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"disc/internal/ckpt"
	"disc/internal/core"
	"disc/internal/model"
	"disc/internal/obs"
	"disc/internal/window"
)

// DefaultStream is the name of the stream the legacy single-stream routes
// alias. It always exists and cannot be deleted.
const DefaultStream = "default"

// Registry limits.
const (
	DefaultMaxStreams    = 1024 // registered streams per process
	DefaultMetricStreams = 32   // dedicated stream label values (then "other")
)

// Errors of the registry lifecycle, mapped to HTTP statuses by the
// /streams handlers.
var (
	ErrStreamExists   = errors.New("stream already exists")
	ErrUnknownStream  = errors.New("unknown stream")
	ErrTooManyStreams = errors.New("stream limit reached")
	ErrBadStreamName  = errors.New("bad stream name")
)

// streamNameRe bounds names to something that is safe in a URL path, a
// Prometheus label value, and a directory name.
var streamNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// MultiConfig configures the multi-tenant service.
type MultiConfig struct {
	// Default is the configuration of the default stream AND the template
	// dynamically created streams inherit their operational settings from
	// (body limits, tracing, event-log size). Clustering parameters
	// (Cluster, Window, Stride, Connectivity) act as per-field fallbacks
	// for POST /streams requests that omit them.
	Default Config
	// MaxStreams caps registered streams (0 selects DefaultMaxStreams).
	MaxStreams int
	// MetricStreams caps the cardinality of the `stream` metric label
	// (0 selects DefaultMetricStreams); streams beyond it share one
	// {stream="other"} instrument bundle.
	MetricStreams int
	// CheckpointDir enables per-stream durable checkpointing under this
	// directory; empty disables durability. The default stream stores its
	// generations in CheckpointDir itself (the pre-registry layout, so
	// existing single-stream deployments recover in place); stream X uses
	// CheckpointDir/streams/X.
	CheckpointDir string
	// CheckpointEvery is the stride cadence of the shared checkpoint
	// scheduler (0 selects 20).
	CheckpointEvery uint64
	// WALDir enables per-stream write-ahead logging under this directory;
	// empty disables it. Layout mirrors CheckpointDir: the default stream
	// logs into WALDir itself, stream X into WALDir/streams/X. With a log
	// attached every acknowledged ingest batch is fsynced before its 200,
	// so a crash between checkpoints loses nothing a client was told was
	// applied. Log segments older than the previous successful checkpoint
	// are pruned automatically (only when CheckpointDir is also set —
	// without checkpoints the log is the only durable history and is kept
	// whole).
	WALDir string
	// Logger receives stream lifecycle and recovery log lines; nil
	// discards them.
	Logger *slog.Logger
}

// Multi is the multi-tenant stream service. Create with NewMulti, mount
// via Handler. All methods are safe for concurrent use.
type Multi struct {
	cfg    MultiConfig
	reg    *obs.Registry
	pool   *obs.StreamMetricsPool
	sched  *ckpt.Scheduler
	logger *slog.Logger

	streamsGauge *obs.Gauge   // disc_streams
	createdMx    *obs.Counter // disc_streams_created_total

	mu      sync.RWMutex
	streams map[string]*stream
}

// stream is one registered tenant: its server plus the request handlers
// and durability hooks built once at registration.
type stream struct {
	name  string
	srv   *Server
	store *ckpt.Store // nil when durability is off
	wal   *ckpt.WAL   // nil when write-ahead logging is off

	// Prebuilt serveView adapters (they close over the per-stream query
	// metrics, so they are made once, not per request).
	clusters, point, events, stats http.HandlerFunc
}

// NewMulti returns a registry hosting the default stream built from
// cfg.Default. When CheckpointDir is set, the default stream recovers from
// the newest valid generation before NewMulti returns — a load balancer
// probing /readyz (with Default.StartNotReady) never routes to a window
// about to be replaced by a restore.
func NewMulti(cfg MultiConfig) (*Multi, error) {
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = DefaultMaxStreams
	}
	if cfg.MetricStreams <= 0 {
		cfg.MetricStreams = DefaultMetricStreams
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 20
	}
	reg := obs.NewRegistry()
	m := &Multi{
		cfg:    cfg,
		reg:    reg,
		pool:   obs.NewStreamMetricsPool(reg, cfg.MetricStreams),
		logger: cfg.Logger,
		streamsGauge: reg.Gauge("disc_streams",
			"Streams currently registered.", nil),
		createdMx: reg.Counter("disc_streams_created_total",
			"Streams registered over the process lifetime (including the default stream).", nil),
		streams: make(map[string]*stream),
	}
	if cfg.CheckpointDir != "" {
		m.sched = ckpt.NewScheduler()
	}
	if _, err := m.CreateStream(DefaultStream, cfg.Default); err != nil {
		return nil, fmt.Errorf("creating default stream: %w", err)
	}
	return m, nil
}

// Registry exposes the shared metrics registry.
func (m *Multi) Registry() *obs.Registry { return m.reg }

// Stream returns the named stream's server, or nil when unknown — the
// seam in-process drivers (discserver shutdown, tests) use.
func (m *Multi) Stream(name string) *Server {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if st, ok := m.streams[name]; ok {
		return st.srv
	}
	return nil
}

// CreateStream registers a new stream. The returned server is live as soon
// as this returns; when durability is configured the stream has already
// recovered from its newest valid checkpoint generation.
func (m *Multi) CreateStream(name string, cfg Config) (*Server, error) {
	if !streamNameRe.MatchString(name) {
		return nil, fmt.Errorf("%w: %q must match %s", ErrBadStreamName, name, streamNameRe)
	}
	// Registration is serialized by a plain mutex section around the map
	// checks, but the heavyweight parts (engine construction, checkpoint
	// recovery) run outside it so creating one stream never stalls another
	// stream's ingest path. The map is re-checked on insert: two
	// concurrent creates of one name race to the second check, and the
	// loser's engine is discarded.
	m.mu.RLock()
	_, exists := m.streams[name]
	n := len(m.streams)
	m.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	if n >= m.cfg.MaxStreams {
		return nil, fmt.Errorf("%w: %d streams registered, limit %d", ErrTooManyStreams, n, m.cfg.MaxStreams)
	}

	// Validate before touching the metrics pool: a dedicated stream label
	// slot is never reclaimed, so a flood of invalid create requests must
	// not be able to consume the cap and push real streams to "other".
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if _, err := window.NewCountSlider(cfg.Window, cfg.Stride); err != nil {
		return nil, err
	}
	srv, err := newServer(cfg, m.reg, m.pool.Acquire(name))
	if err != nil {
		return nil, err
	}
	st := &stream{name: name, srv: srv}
	st.clusters = srv.serveView("clusters", srv.handleClusters)
	st.point = srv.serveView("point", srv.handlePoint)
	st.events = srv.serveView("events", srv.handleEvents)
	st.stats = srv.serveView("stats", srv.handleStats)

	if m.cfg.CheckpointDir != "" {
		store, err := ckpt.Open(m.streamDir(m.cfg.CheckpointDir, name),
			ckpt.WithMaxPayload(srv.cfg.MaxCheckpointBytes), ckpt.WithStoreLogger(m.logger))
		if err != nil {
			return nil, fmt.Errorf("stream %q: opening checkpoint store: %w", name, err)
		}
		if err := m.recoverStream(st, store); err != nil {
			return nil, err
		}
		st.store = store
	}

	// The write-ahead log layers on top of checkpoint recovery: open (which
	// repairs any torn tail from a crash mid-append), replay every record
	// past the restored position, then attach for appending — open repair
	// and replay stop at the same boundary, so the log and the recovered
	// state agree before the first new batch lands.
	var ckptObs ckpt.Observer = srv.sm.Checkpoint
	if m.cfg.WALDir != "" {
		wdir := m.streamDir(m.cfg.WALDir, name)
		wal, err := ckpt.OpenWAL(wdir,
			ckpt.WithWALObserver(srv.sm.WAL), ckpt.WithWALLogger(m.logger),
			ckpt.WithWALMaxPayload(srv.walRecordMaxPayload()))
		if err != nil {
			return nil, fmt.Errorf("stream %q: opening write-ahead log: %w", name, err)
		}
		replayed, err := srv.RecoverWAL(wdir, m.logger)
		if err != nil {
			wal.Close()
			return nil, fmt.Errorf("stream %q: replaying write-ahead log: %w", name, err)
		}
		if replayed > 0 && m.logger != nil {
			m.logger.Info("stream replayed write-ahead log", "stream", name,
				"records", replayed, "stride", srv.Strides())
		}
		srv.AttachWAL(wal)
		st.wal = wal
		if st.store != nil {
			ckptObs = &walTruncatingObserver{inner: ckptObs, wal: wal, logger: m.logger,
				window: uint64(cfg.Window), stride: uint64(cfg.Stride)}
		}
	}

	var runner *ckpt.Runner
	if st.store != nil {
		runner = ckpt.NewRunner(st.store, srv, m.cfg.CheckpointEvery,
			ckpt.WithObserver(ckptObs),
			ckpt.WithRunnerLogger(m.logger),
			ckpt.WithRunnerTracer(srv.Tracer()))
	}
	if st.store != nil || st.wal != nil {
		srv.SetReady(true)
	}

	m.mu.Lock()
	if _, raced := m.streams[name]; raced {
		m.mu.Unlock()
		if st.wal != nil {
			st.wal.Close()
		}
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	m.streams[name] = st
	m.streamsGauge.Set(float64(len(m.streams)))
	m.mu.Unlock()
	m.createdMx.Inc()
	if m.sched != nil && runner != nil {
		m.sched.Add(name, runner)
	}
	if m.logger != nil {
		m.logger.Info("stream registered", "stream", name,
			"dims", cfg.Cluster.Dims, "eps", cfg.Cluster.Eps, "minpts", cfg.Cluster.MinPts,
			"window", cfg.Window, "stride", cfg.Stride, "connectivity", cfg.Connectivity.String())
	}
	return srv, nil
}

// streamDir maps a stream name into a durability root: the default stream
// keeps the root itself (the pre-multi-tenant layout, so existing
// deployments recover in place), stream X uses root/streams/X. The same
// layout serves both the checkpoint and write-ahead log trees.
func (m *Multi) streamDir(root, name string) string {
	if name == DefaultStream {
		return root
	}
	return filepath.Join(root, "streams", name)
}

// walTruncatingObserver prunes write-ahead log segments as checkpoints
// land. After a successful generation it truncates the log to the
// PREVIOUS successful checkpoint's stream position — the store retains
// two generations, and recovery may fall back to the older one, so the
// log must stay replayable from there. Until a second checkpoint
// succeeds nothing is pruned.
type walTruncatingObserver struct {
	inner          ckpt.Observer
	wal            *ckpt.WAL
	logger         *slog.Logger
	window, stride uint64

	mu       sync.Mutex
	prevPos  uint64
	havePrev bool
}

func (o *walTruncatingObserver) ObserveCheckpoint(rec ckpt.Record) {
	if o.inner != nil {
		o.inner.ObserveCheckpoint(rec)
	}
	if rec.Err != nil {
		return
	}
	var pos uint64
	if rec.Strides > 0 {
		pos = o.window + (rec.Strides-1)*o.stride
	}
	o.mu.Lock()
	prev, have := o.prevPos, o.havePrev
	o.prevPos, o.havePrev = pos, true
	o.mu.Unlock()
	if have {
		if err := o.wal.Truncate(prev); err != nil && o.logger != nil {
			// Pruning is best-effort: a failed removal wastes disk but never
			// loses data, so log and keep checkpointing.
			o.logger.Warn("wal truncation failed", "keep_from", prev, "err", err)
		}
	}
}

// recoverStream restores st from the newest valid generation in store,
// mirroring the single-stream startup policy: no checkpoint → fresh, no
// valid checkpoint → warn and fresh, a checkpoint that fails to restore →
// hard error (starting fresh would silently discard the window the
// operator meant to keep).
func (m *Multi) recoverStream(st *stream, store *ckpt.Store) error {
	payload, gen, err := store.Recover()
	switch {
	case err == nil:
		restored, err := st.srv.ReadCheckpoint(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("stream %q: checkpoint generation %d does not restore: %w", st.name, gen, err)
		}
		if m.logger != nil {
			m.logger.Info("stream recovered from checkpoint", "stream", st.name,
				"generation", gen, "bytes", len(payload), "window_points", restored, "stride", st.srv.Strides())
		}
	case errors.Is(err, ckpt.ErrNoCheckpoint):
		if m.logger != nil {
			m.logger.Info("no checkpoint found, stream starting fresh", "stream", st.name)
		}
	case errors.Is(err, ckpt.ErrNoValidCheckpoint):
		if m.logger != nil {
			m.logger.Warn("checkpoints exist but none is valid, stream starting fresh",
				"stream", st.name, "err", err)
		}
	default:
		return fmt.Errorf("stream %q: checkpoint recovery: %w", st.name, err)
	}
	return nil
}

// DeleteStream unregisters a stream and removes its durable state — the
// checkpoint generations under CheckpointDir/streams/<name> and the
// write-ahead log under WALDir/streams/<name>. The default stream cannot
// be deleted (the legacy aliases must always resolve). In-flight requests
// on the stream complete against its (now orphaned) server. Deletion is
// destructive by contract: re-creating the stream under the same name
// starts empty, never resurrecting the deleted tenant's window.
func (m *Multi) DeleteStream(name string) error {
	if name == DefaultStream {
		return fmt.Errorf("%w: the default stream cannot be deleted", ErrBadStreamName)
	}
	m.mu.Lock()
	st, ok := m.streams[name]
	if ok {
		delete(m.streams, name)
		m.streamsGauge.Set(float64(len(m.streams)))
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	if m.sched != nil {
		// Remove before deleting the directory: a scheduler tick racing the
		// removal would otherwise re-create the generation dir with a fresh
		// checkpoint of the orphaned server.
		m.sched.Remove(name)
	}
	if st.wal != nil {
		st.wal.Close()
	}
	var errs []error
	// name != DefaultStream here, so both paths are guaranteed to be the
	// tenant's own streams/<name> subdirectory, never the shared root.
	if m.cfg.CheckpointDir != "" {
		if err := os.RemoveAll(m.streamDir(m.cfg.CheckpointDir, name)); err != nil {
			errs = append(errs, fmt.Errorf("removing checkpoints: %w", err))
		}
	}
	if m.cfg.WALDir != "" {
		if err := os.RemoveAll(m.streamDir(m.cfg.WALDir, name)); err != nil {
			errs = append(errs, fmt.Errorf("removing write-ahead log: %w", err))
		}
	}
	if m.logger != nil {
		m.logger.Info("stream deleted", "stream", name)
	}
	if len(errs) > 0 {
		return fmt.Errorf("stream %q deleted but its durable state remains: %w", name, errors.Join(errs...))
	}
	return nil
}

// RunCheckpoints drives the shared checkpoint scheduler until ctx is
// canceled, then writes final generations for every stream with unsaved
// stride progress. It returns immediately when durability is off.
func (m *Multi) RunCheckpoints(ctx context.Context) {
	if m.sched == nil {
		return
	}
	m.sched.Run(ctx)
}

// lookup resolves a stream by name under the read lock, which is held only
// for the map access — request handling proceeds on the stream's own
// state, so a wedged write path on one stream never blocks another
// stream's requests (and never blocks CreateStream/DeleteStream either).
func (m *Multi) lookup(name string) (*stream, bool) {
	m.mu.RLock()
	st, ok := m.streams[name]
	m.mu.RUnlock()
	return st, ok
}

// withStream adapts a per-stream handler into an http.HandlerFunc that
// resolves the {stream} path value (404 on unknown names).
func (m *Multi) withStream(h func(st *stream, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.lookup(r.PathValue("stream"))
		if !ok {
			http.Error(w, fmt.Sprintf("unknown stream %q", r.PathValue("stream")), http.StatusNotFound)
			return
		}
		h(st, w, r)
	}
}

// streamSpec is the wire form of POST /streams. Omitted clustering fields
// inherit the registry's default-stream template.
type streamSpec struct {
	Name   string  `json:"name"`
	Dims   int     `json:"dims,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	MinPts int     `json:"minPts,omitempty"`
	Window int     `json:"window,omitempty"`
	Stride int     `json:"stride,omitempty"`
	// Connectivity is "msbfs" or "dynamic"; empty inherits the template.
	Connectivity string `json:"connectivity,omitempty"`
}

// streamInfo is one row of GET /streams (and the POST /streams response).
type streamInfo struct {
	Name         string       `json:"name"`
	Config       model.Config `json:"config"`
	Window       int          `json:"windowExtent"`
	Stride       int          `json:"stride"`
	Connectivity string       `json:"connectivity"`
	Strides      uint64       `json:"strides"`
	Ingested     uint64       `json:"ingested"`
	Resident     int          `json:"resident"`
}

func (st *stream) info() streamInfo {
	v := st.srv.view.Load()
	return streamInfo{
		Name:         st.name,
		Config:       st.srv.cfg.Cluster,
		Window:       st.srv.cfg.Window,
		Stride:       st.srv.cfg.Stride,
		Connectivity: st.srv.cfg.Connectivity.String(),
		Strides:      v.strides,
		Ingested:     v.stats.Ingested,
		Resident:     v.stats.Resident,
	}
}

// parseConnStrategy maps the wire names to core strategies.
func parseConnStrategy(s string) (core.ConnStrategy, error) {
	switch s {
	case "", "msbfs":
		return core.ConnMSBFS, nil
	case "dynamic":
		return core.ConnDynamic, nil
	default:
		return 0, fmt.Errorf("unknown connectivity strategy %q (want msbfs or dynamic)", s)
	}
}

// handleStreamCreate registers a tenant: 201 with its descriptor, 400 for
// an invalid name or configuration, 409 for a duplicate, 429 at the
// stream limit.
func (m *Multi) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var spec streamSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	// A typoed field name ("min_pts") would otherwise silently inherit the
	// template value — for a config-bearing create, that is a 400.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad stream spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	cfg := m.cfg.Default
	cfg.StartNotReady = false // dynamically created streams are born ready
	if spec.Dims != 0 {
		cfg.Cluster.Dims = spec.Dims
	}
	if spec.Eps != 0 {
		cfg.Cluster.Eps = spec.Eps
	}
	if spec.MinPts != 0 {
		cfg.Cluster.MinPts = spec.MinPts
	}
	if spec.Window != 0 {
		cfg.Window = spec.Window
	}
	if spec.Stride != 0 {
		cfg.Stride = spec.Stride
	}
	if spec.Connectivity != "" {
		conn, err := parseConnStrategy(spec.Connectivity)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg.Connectivity = conn
	}
	if _, err := m.CreateStream(spec.Name, cfg); err != nil {
		switch {
		case errors.Is(err, ErrStreamExists):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, ErrTooManyStreams):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrBadStreamName):
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			// newServer validation (dims/eps/minpts/window/stride) lands
			// here: the same rules discserver enforces at startup, as 400s.
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	st, _ := m.lookup(spec.Name)
	writeJSONStatus(w, http.StatusCreated, st.info())
}

// handleStreamList serves the sorted stream inventory.
func (m *Multi) handleStreamList(w http.ResponseWriter, _ *http.Request) {
	m.mu.RLock()
	sts := make([]*stream, 0, len(m.streams))
	for _, st := range m.streams {
		sts = append(sts, st)
	}
	m.mu.RUnlock()
	infos := make([]streamInfo, 0, len(sts))
	for _, st := range sts {
		infos = append(infos, st.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, map[string]any{"streams": infos})
}

func (m *Multi) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	err := m.DeleteStream(r.PathValue("stream"))
	switch {
	case errors.Is(err, ErrUnknownStream):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadStreamName):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		writeJSON(w, map[string]any{"deleted": r.PathValue("stream")})
	}
}

// Handler returns the multi-tenant route multiplexer: the /streams
// registry API, the per-stream endpoints, and the legacy single-stream
// routes aliased to the default stream.
func (m *Multi) Handler() http.Handler {
	def, _ := m.lookup(DefaultStream) // always present; undeletable
	mux := http.NewServeMux()

	mux.HandleFunc("POST /streams", m.handleStreamCreate)
	mux.HandleFunc("GET /streams", m.handleStreamList)
	mux.HandleFunc("DELETE /streams/{stream}", m.handleStreamDelete)

	mux.Handle("POST /streams/{stream}/ingest",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.srv.handleIngest(w, r) }))
	mux.Handle("GET /streams/{stream}/clusters",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.clusters(w, r) }))
	mux.Handle("GET /streams/{stream}/points/{id}",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.point(w, r) }))
	mux.Handle("GET /streams/{stream}/events",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.events(w, r) }))
	mux.Handle("GET /streams/{stream}/stats",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.stats(w, r) }))
	mux.Handle("GET /streams/{stream}/checkpoint",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.srv.handleCheckpointSave(w, r) }))
	mux.Handle("POST /streams/{stream}/checkpoint",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.srv.handleCheckpointLoad(w, r) }))
	mux.Handle("GET /streams/{stream}/readyz",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) { st.srv.handleReady(w, r) }))
	mux.Handle("GET /streams/{stream}/debug/traces",
		m.withStream(func(st *stream, w http.ResponseWriter, r *http.Request) {
			if st.srv.tracer == nil {
				http.Error(w, "tracing disabled", http.StatusNotFound)
				return
			}
			st.srv.tracer.Handler().ServeHTTP(w, r)
		}))

	// Legacy single-stream aliases → the default stream.
	mux.HandleFunc("POST /ingest", def.srv.handleIngest)
	mux.Handle("GET /clusters", def.clusters)
	mux.Handle("GET /points/{id}", def.point)
	mux.Handle("GET /events", def.events)
	mux.Handle("GET /stats", def.stats)
	mux.HandleFunc("GET /checkpoint", def.srv.handleCheckpointSave)
	mux.HandleFunc("POST /checkpoint", def.srv.handleCheckpointLoad)
	mux.HandleFunc("GET /readyz", def.srv.handleReady)
	if def.srv.tracer != nil {
		mux.Handle("GET /debug/traces", def.srv.tracer.Handler())
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", m.reg.Handler())
	m.reg.PublishExpvar("disc")
	mux.Handle("GET /debug/vars", expvar.Handler())
	if m.cfg.Default.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}
