// Package server provides an HTTP facade over a DISC engine: a minimal
// stream-clustering service that ingests points, advances a count-based
// sliding window, and answers cluster queries — the shape in which a
// monitoring deployment (the paper's traffic scenario) would consume the
// library. Everything is stdlib net/http; state is guarded by one mutex,
// matching the single-writer nature of the engine.
package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"disc/internal/core"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/obs"
	"disc/internal/window"
)

// Config configures the service.
type Config struct {
	Cluster model.Config
	Window  int // sliding-window extent in points
	Stride  int // points per window advance
	// EventLog bounds the in-memory cluster-evolution event ring; 0 keeps
	// the default of 1024.
	EventLog int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and should only be
	// reachable on trusted networks.
	EnablePprof bool
}

// Server is the HTTP handler set. Create with New, mount via Handler.
type Server struct {
	cfg Config

	// Telemetry. The registry's instruments are atomics, so /metrics and
	// /debug/vars scrape them without taking mu — scrapes never stall
	// ingestion and ingestion never stalls scrapes.
	reg      *obs.Registry
	metrics  *obs.EngineMetrics
	ingestMx *obs.Counter // disc_ingested_points_total

	mu       sync.Mutex
	eng      *core.Engine
	slider   *window.CountSlider
	events   []eventRecord
	eventSeq uint64
	ingested uint64
}

type eventRecord struct {
	Seq     uint64 `json:"seq"`
	Stride  uint64 `json:"stride"`
	Type    string `json:"type"`
	Cluster int    `json:"cluster"`
	// Extra carries merged-away or split-off cluster ids when applicable.
	Extra []int `json:"extra,omitempty"`
	Cores int   `json:"cores"`
}

// New returns a service around a fresh DISC engine.
func New(cfg Config) (*Server, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	slider, err := window.NewCountSlider(cfg.Window, cfg.Stride)
	if err != nil {
		return nil, err
	}
	if cfg.EventLog <= 0 {
		cfg.EventLog = 1024
	}
	s := &Server{cfg: cfg, slider: slider, reg: obs.NewRegistry()}
	s.metrics = obs.NewEngineMetrics(s.reg)
	s.ingestMx = s.reg.Counter("disc_ingested_points_total",
		"Points accepted by POST /ingest (including those still buffered below a stride boundary).", nil)
	s.eng = core.New(cfg.Cluster,
		core.WithEventHandler(s.recordEvent), core.WithObserver(s.metrics))
	return s, nil
}

// Registry exposes the server's metrics registry, e.g. to add
// process-level instruments before mounting the handler.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) recordEvent(ev core.Event) {
	s.eventSeq++
	rec := eventRecord{
		Seq:     s.eventSeq,
		Stride:  ev.Stride,
		Type:    ev.Type.String(),
		Cluster: ev.ClusterID,
		Cores:   ev.Cores,
	}
	switch ev.Type {
	case core.Merger:
		rec.Extra = ev.Absorbed
	case core.Split:
		rec.Extra = ev.NewClusters
	}
	s.events = append(s.events, rec)
	if len(s.events) > s.cfg.EventLog {
		s.events = s.events[len(s.events)-s.cfg.EventLog:]
	}
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /clusters", s.handleClusters)
	mux.HandleFunc("GET /points/{id}", s.handlePoint)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /checkpoint", s.handleCheckpointSave)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpointLoad)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	// expvar: the registry is published process-wide under "disc"
	// (first server wins — expvar names cannot be unpublished), alongside
	// the standard cmdline/memstats vars.
	s.reg.PublishExpvar("disc")
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// checkpointEnvelope carries the engine snapshot plus the service's own
// stream position: the window contents in arrival order (pending partial
// strides are dropped — checkpoints represent the last stride boundary).
type checkpointEnvelope struct {
	Engine   []byte
	Window   []model.Point
	Ingested uint64
	EventSeq uint64
}

// handleCheckpointSave streams a binary service checkpoint.
func (s *Server) handleCheckpointSave(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	var engBuf bytes.Buffer
	err := s.eng.SaveSnapshot(&engBuf)
	env := checkpointEnvelope{
		Engine:   engBuf.Bytes(),
		Window:   append([]model.Point(nil), s.slider.Window()...),
		Ingested: s.ingested,
		EventSeq: s.eventSeq,
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleCheckpointLoad replaces the engine and stream position with the
// posted checkpoint; ingestion then resumes exactly where the checkpoint
// was taken.
func (s *Server) handleCheckpointLoad(w http.ResponseWriter, r *http.Request) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(r.Body).Decode(&env); err != nil {
		http.Error(w, "bad checkpoint: "+err.Error(), http.StatusBadRequest)
		return
	}
	eng, err := core.LoadEngine(bytes.NewReader(env.Engine),
		core.WithEventHandler(s.recordEvent), core.WithObserver(s.metrics))
	if err != nil {
		http.Error(w, "bad checkpoint: "+err.Error(), http.StatusBadRequest)
		return
	}
	slider, err := window.NewCountSlider(s.cfg.Window, s.cfg.Stride)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := slider.RestoreWindow(env.Window); err != nil {
		http.Error(w, "bad checkpoint: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = eng
	s.slider = slider
	s.ingested = env.Ingested
	s.eventSeq = env.EventSeq
	s.events = nil
	writeJSON(w, map[string]any{"restored": eng.WindowSize()})
}

// ingestPoint is the wire form of one point.
type ingestPoint struct {
	ID     int64     `json:"id"`
	Time   int64     `json:"time"`
	Coords []float64 `json:"coords"`
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Strides  uint64 `json:"strides"`
	Window   int    `json:"window"`
}

// handleIngest accepts a JSON array of points (or a single object) and
// pushes them through the sliding window, advancing the engine whenever a
// stride completes.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	var batch []ingestPoint
	// Accept either a JSON array or a single object.
	if err := dec.Decode(&batch); err != nil {
		http.Error(w, "body must be a JSON array of {id,time,coords}: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ip := range batch {
		if len(ip.Coords) != s.cfg.Cluster.Dims {
			http.Error(w, fmt.Sprintf("point %d: got %d coords, want %d", i, len(ip.Coords), s.cfg.Cluster.Dims), http.StatusBadRequest)
			return
		}
		p := model.Point{ID: ip.ID, Time: ip.Time, Pos: geom.NewVec(ip.Coords...)}
		if step := s.slider.Push(p); step != nil {
			if err := s.safeAdvance(step); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
		}
		s.ingested++
		s.ingestMx.Inc()
	}
	writeJSON(w, ingestResponse{
		Accepted: len(batch),
		Strides:  uint64(s.eng.Stats().Strides),
		Window:   s.eng.WindowSize(),
	})
}

// safeAdvance converts engine protocol panics (duplicate ids and the like)
// into HTTP-reportable errors rather than crashing the service.
func (s *Server) safeAdvance(step *window.Step) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rejected: %v", r)
		}
	}()
	s.eng.Advance(step.In, step.Out)
	return nil
}

type clusterSummary struct {
	ID      int `json:"id"`
	Size    int `json:"size"`
	Cores   int `json:"cores"`
	Borders int `json:"borders"`
}

type clustersResponse struct {
	Strides  uint64           `json:"strides"`
	Window   int              `json:"window"`
	Noise    int              `json:"noise"`
	Clusters []clusterSummary `json:"clusters"`
}

func (s *Server) handleClusters(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	strides := uint64(s.eng.Stats().Strides)
	s.mu.Unlock()
	byID := map[int]*clusterSummary{}
	noise := 0
	for _, a := range snap {
		if a.ClusterID == model.NoCluster {
			noise++
			continue
		}
		cs := byID[a.ClusterID]
		if cs == nil {
			cs = &clusterSummary{ID: a.ClusterID}
			byID[a.ClusterID] = cs
		}
		cs.Size++
		if a.Label == model.Core {
			cs.Cores++
		} else {
			cs.Borders++
		}
	}
	resp := clustersResponse{Strides: strides, Window: len(snap), Noise: noise}
	for _, cs := range byID {
		resp.Clusters = append(resp.Clusters, *cs)
	}
	sort.Slice(resp.Clusters, func(i, j int) bool {
		if resp.Clusters[i].Size != resp.Clusters[j].Size {
			return resp.Clusters[i].Size > resp.Clusters[j].Size
		}
		return resp.Clusters[i].ID < resp.Clusters[j].ID
	})
	writeJSON(w, resp)
}

type pointResponse struct {
	ID      int64  `json:"id"`
	Label   string `json:"label"`
	Cluster int    `json:"cluster"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(strings.TrimSpace(r.PathValue("id")), 10, 64)
	if err != nil {
		http.Error(w, "bad point id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	a, ok := s.eng.Assignment(id)
	s.mu.Unlock()
	if !ok {
		http.Error(w, "point not in the current window", http.StatusNotFound)
		return
	}
	writeJSON(w, pointResponse{ID: id, Label: a.Label.String(), Cluster: a.ClusterID})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	s.mu.Lock()
	var out []eventRecord
	for _, ev := range s.events {
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

type statsResponse struct {
	Config    model.Config `json:"config"`
	Window    int          `json:"windowExtent"`
	Stride    int          `json:"stride"`
	Ingested  uint64       `json:"ingested"`
	Resident  int          `json:"resident"`
	Stats     model.Stats  `json:"stats"`
	EventSeq  uint64       `json:"eventSeq"`
	EventKept int          `json:"eventKept"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statsResponse{
		Config:    s.cfg.Cluster,
		Window:    s.cfg.Window,
		Stride:    s.cfg.Stride,
		Ingested:  s.ingested,
		Resident:  s.eng.WindowSize(),
		Stats:     s.eng.Stats(),
		EventSeq:  s.eventSeq,
		EventKept: len(s.events),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
