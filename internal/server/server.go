// Package server provides an HTTP facade over a DISC engine: a minimal
// stream-clustering service that ingests points, advances a count-based
// sliding window, and answers cluster queries — the shape in which a
// monitoring deployment (the paper's traffic scenario) would consume the
// library. Everything is stdlib net/http; state is guarded by one mutex,
// matching the single-writer nature of the engine.
package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"disc/internal/core"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/obs"
	"disc/internal/window"
)

// Default request-body bounds. Both paths decode untrusted input into
// memory, so they must be capped; the checkpoint default is generous
// because a checkpoint carries the full window.
const (
	DefaultMaxIngestBytes     = 8 << 20   // 8 MiB of JSON points per POST /ingest
	DefaultMaxCheckpointBytes = 256 << 20 // 256 MiB per POST /checkpoint
)

// Config configures the service.
type Config struct {
	Cluster model.Config
	Window  int // sliding-window extent in points
	Stride  int // points per window advance
	// EventLog bounds the in-memory cluster-evolution event ring; 0 keeps
	// the default of 1024.
	EventLog int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and should only be
	// reachable on trusted networks.
	EnablePprof bool
	// MaxIngestBytes caps the request body of POST /ingest; 0 selects
	// DefaultMaxIngestBytes. Oversized requests get 413.
	MaxIngestBytes int64
	// MaxCheckpointBytes caps the request body of POST /checkpoint; 0
	// selects DefaultMaxCheckpointBytes. Oversized requests get 413.
	MaxCheckpointBytes int64
}

// Server is the HTTP handler set. Create with New, mount via Handler.
type Server struct {
	cfg Config

	// Telemetry. The registry's instruments are atomics, so /metrics and
	// /debug/vars scrape them without taking mu — scrapes never stall
	// ingestion and ingestion never stalls scrapes.
	reg      *obs.Registry
	metrics  *obs.EngineMetrics
	ingestMx *obs.Counter // disc_ingested_points_total

	mu       sync.Mutex
	eng      *core.Engine
	slider   *window.CountSlider
	events   []eventRecord
	eventSeq uint64
	ingested uint64
}

type eventRecord struct {
	Seq     uint64 `json:"seq"`
	Stride  uint64 `json:"stride"`
	Type    string `json:"type"`
	Cluster int    `json:"cluster"`
	// Extra carries merged-away or split-off cluster ids when applicable.
	Extra []int `json:"extra,omitempty"`
	Cores int   `json:"cores"`
}

// New returns a service around a fresh DISC engine.
func New(cfg Config) (*Server, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	slider, err := window.NewCountSlider(cfg.Window, cfg.Stride)
	if err != nil {
		return nil, err
	}
	if cfg.EventLog <= 0 {
		cfg.EventLog = 1024
	}
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = DefaultMaxIngestBytes
	}
	if cfg.MaxCheckpointBytes <= 0 {
		cfg.MaxCheckpointBytes = DefaultMaxCheckpointBytes
	}
	s := &Server{cfg: cfg, slider: slider, reg: obs.NewRegistry()}
	s.metrics = obs.NewEngineMetrics(s.reg)
	s.ingestMx = s.reg.Counter("disc_ingested_points_total",
		"Points accepted by POST /ingest (including those still buffered below a stride boundary).", nil)
	s.eng = core.New(cfg.Cluster,
		core.WithEventHandler(s.recordEvent), core.WithObserver(s.metrics))
	return s, nil
}

// Registry exposes the server's metrics registry, e.g. to add
// process-level instruments before mounting the handler.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) recordEvent(ev core.Event) {
	s.eventSeq++
	rec := eventRecord{
		Seq:     s.eventSeq,
		Stride:  ev.Stride,
		Type:    ev.Type.String(),
		Cluster: ev.ClusterID,
		Cores:   ev.Cores,
	}
	switch ev.Type {
	case core.Merger:
		rec.Extra = ev.Absorbed
	case core.Split:
		rec.Extra = ev.NewClusters
	}
	s.events = append(s.events, rec)
	if len(s.events) > s.cfg.EventLog {
		s.events = s.events[len(s.events)-s.cfg.EventLog:]
	}
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /clusters", s.handleClusters)
	mux.HandleFunc("GET /points/{id}", s.handlePoint)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /checkpoint", s.handleCheckpointSave)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpointLoad)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	// expvar: the registry is published process-wide under "disc"
	// (first server wins — expvar names cannot be unpublished), alongside
	// the standard cmdline/memstats vars.
	s.reg.PublishExpvar("disc")
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// checkpointEnvelope carries the engine snapshot plus the service's own
// stream position: the window contents in arrival order (pending partial
// strides are dropped — checkpoints represent the last stride boundary).
type checkpointEnvelope struct {
	Engine   []byte
	Window   []model.Point
	Ingested uint64
	EventSeq uint64
}

// ErrCheckpointMismatch reports a checkpoint whose clustering
// configuration (dims, eps, minPts) differs from the serving
// configuration. Accepting one would leave ingest validating coordinates
// against the wrong dimensionality and clustering under the wrong
// thresholds, so restore paths reject it (HTTP 409).
var ErrCheckpointMismatch = errors.New("checkpoint/config mismatch")

// errBadCheckpoint marks checkpoints that fail to decode or validate
// structurally (HTTP 400).
var errBadCheckpoint = errors.New("bad checkpoint")

// Strides returns the number of window advances processed. Together with
// WriteCheckpoint this makes the server a ckpt.Source for the durable
// auto-checkpointer.
func (s *Server) Strides() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(s.eng.Stats().Strides)
}

// WriteCheckpoint writes a restorable snapshot of the service — engine
// state plus stream position — to w. The snapshot is taken under the
// server mutex; encoding to w happens outside it.
func (s *Server) WriteCheckpoint(w io.Writer) error {
	s.mu.Lock()
	var engBuf bytes.Buffer
	err := s.eng.SaveSnapshot(&engBuf)
	env := checkpointEnvelope{
		Engine:   engBuf.Bytes(),
		Window:   append([]model.Point(nil), s.slider.Window()...),
		Ingested: s.ingested,
		EventSeq: s.eventSeq,
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&env)
}

// ReadCheckpoint replaces the engine and stream position with the
// checkpoint read from r; ingestion then resumes exactly where the
// checkpoint was taken. It returns the restored window size. Errors wrap
// errBadCheckpoint for undecodable input and ErrCheckpointMismatch for a
// checkpoint taken under a different clustering configuration.
func (s *Server) ReadCheckpoint(r io.Reader) (int, error) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return 0, fmt.Errorf("%w: %w", errBadCheckpoint, err)
	}
	eng, err := core.LoadEngine(bytes.NewReader(env.Engine),
		core.WithEventHandler(s.recordEvent), core.WithObserver(s.metrics))
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errBadCheckpoint, err)
	}
	if got, want := eng.Config(), s.cfg.Cluster; got != want {
		return 0, fmt.Errorf("%w: checkpoint built with dims=%d eps=%g minPts=%d, server runs dims=%d eps=%g minPts=%d",
			ErrCheckpointMismatch, got.Dims, got.Eps, got.MinPts, want.Dims, want.Eps, want.MinPts)
	}
	slider, err := window.NewCountSlider(s.cfg.Window, s.cfg.Stride)
	if err != nil {
		return 0, err
	}
	if err := slider.RestoreWindow(env.Window); err != nil {
		return 0, fmt.Errorf("%w: %w", errBadCheckpoint, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = eng
	s.slider = slider
	s.ingested = env.Ingested
	s.eventSeq = env.EventSeq
	s.events = nil
	// The telemetry counter must agree with the restored stream position,
	// or /stats and /metrics disagree forever after a restore.
	s.ingestMx.Set(int64(env.Ingested))
	return eng.WindowSize(), nil
}

// handleCheckpointSave streams a binary service checkpoint.
func (s *Server) handleCheckpointSave(w http.ResponseWriter, _ *http.Request) {
	// Encode to a buffer first: an encoding failure after the first body
	// byte could not change the status code anymore.
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf.Bytes())
}

// handleCheckpointLoad restores the service from a posted checkpoint:
// 400 for undecodable input, 409 for a configuration mismatch, 413 for a
// body over the configured limit.
func (s *Server) handleCheckpointLoad(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxCheckpointBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("checkpoint exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading checkpoint: "+err.Error(), http.StatusBadRequest)
		return
	}
	restored, err := s.ReadCheckpoint(bytes.NewReader(body))
	switch {
	case errors.Is(err, ErrCheckpointMismatch):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, errBadCheckpoint):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		writeJSON(w, map[string]any{"restored": restored})
	}
}

// ingestPoint is the wire form of one point.
type ingestPoint struct {
	ID     int64     `json:"id"`
	Time   int64     `json:"time"`
	Coords []float64 `json:"coords"`
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Strides  uint64 `json:"strides"`
	Window   int    `json:"window"`
}

// ingestError is the body of a failed ingest: Applied says how many points
// of the batch made it into the stream before the failure, so the client
// knows exactly where to resume (or what it must not re-send).
type ingestError struct {
	Error   string `json:"error"`
	Applied int    `json:"applied"`
}

// handleIngest accepts a JSON array of points and pushes them through the
// sliding window, advancing the engine whenever a stride completes. The
// batch is atomic with respect to validation: every point is checked
// before any is pushed, so a malformed point rejects the whole batch with
// 400 and zero side effects. If the engine itself rejects an advance
// mid-batch (e.g. a duplicate id), the 409 body reports how many points
// were applied.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("ingest body exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var batch []ingestPoint
	if err := json.Unmarshal(body, &batch); err != nil {
		http.Error(w, "body must be a JSON array of {id,time,coords}: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate the whole batch before pushing anything: a bad point
	// mid-batch must not leave a half-ingested prefix behind a 400.
	for i, ip := range batch {
		if len(ip.Coords) != s.cfg.Cluster.Dims {
			http.Error(w, fmt.Sprintf("point %d: got %d coords, want %d (no points applied)", i, len(ip.Coords), s.cfg.Cluster.Dims), http.StatusBadRequest)
			return
		}
	}
	applied := 0
	for _, ip := range batch {
		p := model.Point{ID: ip.ID, Time: ip.Time, Pos: geom.NewVec(ip.Coords...)}
		if step := s.slider.Push(p); step != nil {
			if err := s.safeAdvance(step); err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusConflict)
				json.NewEncoder(w).Encode(ingestError{Error: err.Error(), Applied: applied})
				return
			}
		}
		applied++
		s.ingested++
		s.ingestMx.Inc()
	}
	writeJSON(w, ingestResponse{
		Accepted: len(batch),
		Strides:  uint64(s.eng.Stats().Strides),
		Window:   s.eng.WindowSize(),
	})
}

// safeAdvance converts engine protocol panics (duplicate ids and the like)
// into HTTP-reportable errors rather than crashing the service.
func (s *Server) safeAdvance(step *window.Step) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rejected: %v", r)
		}
	}()
	s.eng.Advance(step.In, step.Out)
	return nil
}

type clusterSummary struct {
	ID      int `json:"id"`
	Size    int `json:"size"`
	Cores   int `json:"cores"`
	Borders int `json:"borders"`
}

type clustersResponse struct {
	Strides  uint64           `json:"strides"`
	Window   int              `json:"window"`
	Noise    int              `json:"noise"`
	Clusters []clusterSummary `json:"clusters"`
}

func (s *Server) handleClusters(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	strides := uint64(s.eng.Stats().Strides)
	s.mu.Unlock()
	byID := map[int]*clusterSummary{}
	noise := 0
	for _, a := range snap {
		if a.ClusterID == model.NoCluster {
			noise++
			continue
		}
		cs := byID[a.ClusterID]
		if cs == nil {
			cs = &clusterSummary{ID: a.ClusterID}
			byID[a.ClusterID] = cs
		}
		cs.Size++
		if a.Label == model.Core {
			cs.Cores++
		} else {
			cs.Borders++
		}
	}
	resp := clustersResponse{Strides: strides, Window: len(snap), Noise: noise}
	for _, cs := range byID {
		resp.Clusters = append(resp.Clusters, *cs)
	}
	sort.Slice(resp.Clusters, func(i, j int) bool {
		if resp.Clusters[i].Size != resp.Clusters[j].Size {
			return resp.Clusters[i].Size > resp.Clusters[j].Size
		}
		return resp.Clusters[i].ID < resp.Clusters[j].ID
	})
	writeJSON(w, resp)
}

type pointResponse struct {
	ID      int64  `json:"id"`
	Label   string `json:"label"`
	Cluster int    `json:"cluster"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(strings.TrimSpace(r.PathValue("id")), 10, 64)
	if err != nil {
		http.Error(w, "bad point id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	a, ok := s.eng.Assignment(id)
	s.mu.Unlock()
	if !ok {
		http.Error(w, "point not in the current window", http.StatusNotFound)
		return
	}
	writeJSON(w, pointResponse{ID: id, Label: a.Label.String(), Cluster: a.ClusterID})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	s.mu.Lock()
	// Non-nil so an empty result renders as the JSON [] clients expect,
	// never null.
	out := []eventRecord{}
	for _, ev := range s.events {
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

type statsResponse struct {
	Config    model.Config `json:"config"`
	Window    int          `json:"windowExtent"`
	Stride    int          `json:"stride"`
	Ingested  uint64       `json:"ingested"`
	Resident  int          `json:"resident"`
	Stats     model.Stats  `json:"stats"`
	EventSeq  uint64       `json:"eventSeq"`
	EventKept int          `json:"eventKept"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statsResponse{
		Config:    s.cfg.Cluster,
		Window:    s.cfg.Window,
		Stride:    s.cfg.Stride,
		Ingested:  s.ingested,
		Resident:  s.eng.WindowSize(),
		Stats:     s.eng.Stats(),
		EventSeq:  s.eventSeq,
		EventKept: len(s.events),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
