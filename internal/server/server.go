// Package server provides an HTTP facade over a DISC engine: a minimal
// stream-clustering service that ingests points, advances a count-based
// sliding window, and answers cluster queries — the shape in which a
// monitoring deployment (the paper's traffic scenario) would consume the
// library. Everything is stdlib net/http.
//
// Concurrency model: the write path (ingest, checkpoint restore) is
// guarded by one mutex, matching the single-writer nature of the engine.
// The read path never takes that mutex — after every successful stride the
// ingest path publishes an immutable view behind an atomic pointer and the
// GET handlers serve from it (see view.go), so any number of queries
// proceed concurrently with each other and with ingestion.
package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disc/internal/ckpt"
	"disc/internal/core"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/obs"
	"disc/internal/trace"
	"disc/internal/window"
)

// Default request-body bounds. Both paths decode untrusted input into
// memory, so they must be capped; the checkpoint default is generous
// because a checkpoint carries the full window.
const (
	DefaultMaxIngestBytes     = 8 << 20   // 8 MiB of JSON points per POST /ingest
	DefaultMaxCheckpointBytes = 256 << 20 // 256 MiB per POST /checkpoint
)

// Config configures the service.
type Config struct {
	Cluster model.Config
	Window  int // sliding-window extent in points
	Stride  int // points per window advance
	// Connectivity selects the engine's density-connectivity strategy
	// (core.ConnMSBFS by default; core.ConnDynamic maintains the
	// incremental forest). Every strategy yields bit-identical clustering;
	// the choice is per-stream cost tuning. A restore keeps the serving
	// strategy — the engine option overrides whatever the checkpoint
	// persisted.
	Connectivity core.ConnStrategy
	// EventLog bounds the in-memory cluster-evolution event ring; 0 keeps
	// the default of 1024.
	EventLog int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and should only be
	// reachable on trusted networks.
	EnablePprof bool
	// MaxIngestBytes caps the request body of POST /ingest; 0 selects
	// DefaultMaxIngestBytes. Oversized requests get 413.
	MaxIngestBytes int64
	// MaxCheckpointBytes caps the request body of POST /checkpoint; 0
	// selects DefaultMaxCheckpointBytes. Oversized requests get 413.
	MaxCheckpointBytes int64
	// Tracing enables the span recorder and GET /debug/traces; nil
	// disables tracing entirely (the write path then pays one nil check
	// per hook).
	Tracing *TraceConfig
	// StartNotReady makes GET /readyz report 503 until SetReady(true) is
	// called. Operators that restore from a checkpoint before serving set
	// it so load balancers hold traffic until recovery has resolved
	// (fresh start or restored) — /healthz stays 200 throughout, keeping
	// liveness and readiness distinct.
	StartNotReady bool
	// ReadyHighWater makes GET /readyz report 503 while the slider's
	// pending backlog (points buffered below the next stride boundary)
	// exceeds this many points; 0 disables the backlog gate.
	ReadyHighWater int
	// IngestHighWater makes POST /ingest shed load with 429 + Retry-After
	// while the slider backlog exceeds this many points, instead of
	// queueing writes without bound; 0 disables backpressure.
	IngestHighWater int
	// SeqWindow is how many recent X-Disc-Seq sequence numbers (with
	// their original responses) are remembered per client for idempotent
	// ingest; 0 selects DefaultSeqWindow.
	SeqWindow int
	// SeqClients caps how many distinct clients the dedup table tracks
	// before evicting the least recently used; 0 selects
	// DefaultSeqClients.
	SeqClients int
}

// TraceConfig sizes the server's trace recorder.
type TraceConfig struct {
	// Recent and Slow are the ring capacities (trace.DefRecent /
	// trace.DefSlow when <= 0).
	Recent int
	Slow   int
	// SlowThreshold retains any ingest trace at least this slow in the
	// slow ring; <= 0 disables slow capture.
	SlowThreshold time.Duration
}

// Server is the HTTP handler set. Create with New, mount via Handler.
type Server struct {
	cfg Config

	// Telemetry. The registry's instruments are atomics, so /metrics and
	// /debug/vars scrape them without taking mu — scrapes never stall
	// ingestion and ingestion never stalls scrapes. The registry may be
	// shared with other streams (multi-tenant mode), in which case sm is a
	// {stream="<name>"}-labeled bundle from the shared pool.
	reg      *obs.Registry
	sm       *obs.StreamMetrics
	metrics  *obs.EngineMetrics
	ingestMx *obs.Counter // disc_ingested_points_total
	qm       *obs.QueryMetrics

	// tracer records ingest span trees when Config.Tracing is set; nil
	// otherwise. ready and pending back GET /readyz: both are atomics so
	// the probe never touches mu. strideCtx holds the SpanContext of the
	// most recent traced stride, the join point for the checkpoint
	// runner's asynchronous trace fragment.
	tracer    *trace.Tracer
	ready     atomic.Bool
	pending   atomic.Int64
	strideCtx atomic.Pointer[trace.SpanContext]

	// view is the immutable read-path snapshot, replaced wholesale after
	// every successful stride and every restore (view.go). GET handlers
	// only ever Load it; they never acquire mu.
	view atomic.Pointer[publishedView]

	mu       sync.Mutex
	eng      *core.Engine
	slider   *window.CountSlider
	events   []eventRecord
	eventSeq uint64
	ingested uint64
	// wal, when attached, receives one durable record per acknowledged
	// ingest batch before the 200 leaves the mutex. walBroken latches a
	// failed append: later ingests answer 503 rather than acknowledging
	// batches a replica could never replay. seqs is the X-Disc-Seq dedup
	// window (wal.go).
	wal       *ckpt.WAL
	walBroken bool
	seqs      *seqTable
	// viewEpoch distinguishes pre- and post-restore views in the ETag: a
	// restore can rewind the stride counter to a value whose content
	// differs from what a client cached under the same stride number.
	viewEpoch uint64

	// testAdvanceErr, when non-nil, replaces the engine advance inside
	// handleIngest. Test seam for the 409 rollback path: up-front batch
	// validation leaves it with no organic trigger, but it must stay
	// correct against engine-internal failures.
	testAdvanceErr func(*window.Step) error
}

type eventRecord struct {
	Seq     uint64 `json:"seq"`
	Stride  uint64 `json:"stride"`
	Type    string `json:"type"`
	Cluster int    `json:"cluster"`
	// Extra carries merged-away or split-off cluster ids when applicable.
	Extra []int `json:"extra,omitempty"`
	Cores int   `json:"cores"`
}

// New returns a service around a fresh DISC engine with its own private
// metrics registry (the historical single-stream shape).
func New(cfg Config) (*Server, error) {
	reg := obs.NewRegistry()
	return newServer(cfg, reg, obs.SingleStreamMetrics(reg))
}

// newServer builds a Server on an externally owned registry and instrument
// bundle — the seam the multi-tenant registry uses to share one registry
// (with per-stream labels) across every tenant's engine.
func newServer(cfg Config, reg *obs.Registry, sm *obs.StreamMetrics) (*Server, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	slider, err := window.NewCountSlider(cfg.Window, cfg.Stride)
	if err != nil {
		return nil, err
	}
	if cfg.EventLog <= 0 {
		cfg.EventLog = 1024
	}
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = DefaultMaxIngestBytes
	}
	if cfg.MaxCheckpointBytes <= 0 {
		cfg.MaxCheckpointBytes = DefaultMaxCheckpointBytes
	}
	s := &Server{cfg: cfg, slider: slider, reg: reg, sm: sm,
		seqs: newSeqTable(cfg.SeqWindow, cfg.SeqClients)}
	if tc := cfg.Tracing; tc != nil {
		s.tracer = trace.NewTracer(trace.Config{
			Recent: tc.Recent, Slow: tc.Slow, SlowThreshold: tc.SlowThreshold,
		})
	}
	s.ready.Store(!cfg.StartNotReady)
	s.metrics = sm.Engine
	s.ingestMx = sm.Ingested
	s.qm = sm.Query
	s.eng = core.New(cfg.Cluster,
		core.WithEventHandler(s.recordEvent), core.WithObserver(s.metrics),
		core.WithConnectivity(cfg.Connectivity))
	// Publish the empty stride-0 view so the read path serves (vacuously
	// consistent) answers before the first stride completes.
	s.publish()
	return s, nil
}

// Registry exposes the server's metrics registry, e.g. to add
// process-level instruments before mounting the handler.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) recordEvent(ev core.Event) {
	s.eventSeq++
	rec := eventRecord{
		Seq:     s.eventSeq,
		Stride:  ev.Stride,
		Type:    ev.Type.String(),
		Cluster: ev.ClusterID,
		Cores:   ev.Cores,
	}
	switch ev.Type {
	case core.Merger:
		rec.Extra = ev.Absorbed
	case core.Split:
		rec.Extra = ev.NewClusters
	}
	s.events = append(s.events, rec)
	if len(s.events) > s.cfg.EventLog {
		s.events = s.events[len(s.events)-s.cfg.EventLog:]
	}
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /clusters", s.serveView("clusters", s.handleClusters))
	mux.HandleFunc("GET /points/{id}", s.serveView("point", s.handlePoint))
	mux.HandleFunc("GET /events", s.serveView("events", s.handleEvents))
	mux.HandleFunc("GET /stats", s.serveView("stats", s.handleStats))
	mux.HandleFunc("GET /checkpoint", s.handleCheckpointSave)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpointLoad)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.tracer != nil {
		mux.Handle("GET /debug/traces", s.tracer.Handler())
	}
	mux.Handle("GET /metrics", s.reg.Handler())
	// expvar: the registry is published process-wide under "disc"
	// (first server wins — expvar names cannot be unpublished), alongside
	// the standard cmdline/memstats vars.
	s.reg.PublishExpvar("disc")
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleReady is the readiness probe, distinct from /healthz liveness:
// 503 until checkpoint recovery has resolved (Config.StartNotReady +
// SetReady) and while the slider backlog exceeds Config.ReadyHighWater.
// It reads only atomics, so probes never contend with ingest.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "not ready: checkpoint recovery pending", http.StatusServiceUnavailable)
		return
	}
	if hw := s.cfg.ReadyHighWater; hw > 0 {
		if backlog := s.pending.Load(); backlog > int64(hw) {
			http.Error(w, fmt.Sprintf("not ready: slider backlog %d exceeds high-water mark %d",
				backlog, hw), http.StatusServiceUnavailable)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// SetReady resolves (or revokes) the recovery gate of GET /readyz. The
// serving binary calls SetReady(true) once checkpoint recovery has
// resolved — a successful restore or a clean fresh start.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Tracer returns the server's span recorder, nil when tracing is off.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// TraceContext returns the span context of the most recent traced stride
// (zero before the first one). The checkpoint runner joins its write
// spans to this context, completing the ingest → … → checkpoint trace.
func (s *Server) TraceContext() trace.SpanContext {
	if ctx := s.strideCtx.Load(); ctx != nil {
		return *ctx
	}
	return trace.SpanContext{}
}

// checkpointEnvelope carries the engine snapshot plus the service's own
// stream position: the window contents in arrival order (pending partial
// strides are dropped — checkpoints represent the last stride boundary).
type checkpointEnvelope struct {
	Engine   []byte
	Window   []model.Point
	Ingested uint64
	EventSeq uint64
	// Seqs is the X-Disc-Seq dedup table, sorted by client name so the
	// envelope's bytes are a deterministic function of stream content
	// (absent in pre-WAL checkpoints; gob restores it as empty).
	Seqs []persistedClient
}

// ErrCheckpointMismatch reports a checkpoint whose clustering
// configuration (dims, eps, minPts) differs from the serving
// configuration. Accepting one would leave ingest validating coordinates
// against the wrong dimensionality and clustering under the wrong
// thresholds, so restore paths reject it (HTTP 409).
var ErrCheckpointMismatch = errors.New("checkpoint/config mismatch")

// errBadCheckpoint marks checkpoints that fail to decode or validate
// structurally (HTTP 400).
var errBadCheckpoint = errors.New("bad checkpoint")

// Strides returns the number of window advances processed. Together with
// WriteCheckpoint this makes the server a ckpt.Source for the durable
// auto-checkpointer. It reads the published view, so polling it (the
// checkpoint Runner does, often) never contends with ingest.
func (s *Server) Strides() uint64 { return s.view.Load().strides }

// WriteCheckpoint writes a restorable snapshot of the service — engine
// state plus stream position — to w. The snapshot is taken under the
// server mutex; encoding to w happens outside it.
func (s *Server) WriteCheckpoint(w io.Writer) error {
	s.mu.Lock()
	var engBuf bytes.Buffer
	err := s.eng.SaveSnapshot(&engBuf)
	env := checkpointEnvelope{
		Engine:   engBuf.Bytes(),
		Window:   append([]model.Point(nil), s.slider.Window()...),
		Ingested: s.ingested,
		EventSeq: s.eventSeq,
		Seqs:     s.seqs.persist(),
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&env)
}

// ReadCheckpoint replaces the engine and stream position with the
// checkpoint read from r; ingestion then resumes exactly where the
// checkpoint was taken. It returns the restored window size. Errors wrap
// errBadCheckpoint for undecodable input and ErrCheckpointMismatch for a
// checkpoint taken under a different clustering configuration.
func (s *Server) ReadCheckpoint(r io.Reader) (int, error) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return 0, fmt.Errorf("%w: %w", errBadCheckpoint, err)
	}
	eng, err := core.LoadEngine(bytes.NewReader(env.Engine),
		core.WithEventHandler(s.recordEvent), core.WithObserver(s.metrics),
		// The serving strategy wins over whatever the checkpoint persisted:
		// a stream configured for the dynamic forest must not silently fall
		// back to MS-BFS because it restored an MS-BFS-era snapshot.
		core.WithConnectivity(s.cfg.Connectivity))
	if err != nil {
		return 0, fmt.Errorf("%w: %w", errBadCheckpoint, err)
	}
	if got, want := eng.Config(), s.cfg.Cluster; got != want {
		return 0, fmt.Errorf("%w: checkpoint built with dims=%d eps=%g minPts=%d, server runs dims=%d eps=%g minPts=%d",
			ErrCheckpointMismatch, got.Dims, got.Eps, got.MinPts, want.Dims, want.Eps, want.MinPts)
	}
	// The engine snapshot has its own integrity checks; the window payload
	// needs the same ingest-grade validation — a NaN coordinate restored
	// here would poison R-tree MBRs and distance comparisons for the life
	// of the window, and a duplicated id would abort a later stride.
	seen := make(map[int64]struct{}, len(env.Window))
	for i, p := range env.Window {
		for d := 0; d < s.cfg.Cluster.Dims; d++ {
			if math.IsNaN(p.Pos[d]) || math.IsInf(p.Pos[d], 0) {
				return 0, fmt.Errorf("%w: window point %d (id %d) has non-finite coordinate %v",
					errBadCheckpoint, i, p.ID, p.Pos[d])
			}
		}
		if _, dup := seen[p.ID]; dup {
			return 0, fmt.Errorf("%w: window point %d duplicates id %d", errBadCheckpoint, i, p.ID)
		}
		seen[p.ID] = struct{}{}
	}
	slider, err := window.NewCountSlider(s.cfg.Window, s.cfg.Stride)
	if err != nil {
		return 0, err
	}
	if err := slider.RestoreWindow(env.Window); err != nil {
		return 0, fmt.Errorf("%w: %w", errBadCheckpoint, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = eng
	s.slider = slider
	s.ingested = env.Ingested
	s.eventSeq = env.EventSeq
	s.events = nil
	s.seqs.restore(env.Seqs)
	// The telemetry counter must agree with the restored stream position,
	// or /stats and /metrics disagree forever after a restore. Skipped on
	// a shared overflow bundle: that counter aggregates several streams,
	// and forcing it to one stream's position would erase the others.
	if s.sm.Dedicated {
		s.ingestMx.Set(int64(env.Ingested))
	}
	// Readers must see the restored world immediately — and must be able
	// to tell it apart from the pre-restore world even when the stride
	// counter rewound to a number they already cached, hence the epoch.
	s.viewEpoch++
	s.publish()
	// The pre-restore stride's trace context must not outlive the world it
	// belongs to: the checkpoint runner joins its next write spans to this
	// context, and a stale one would stitch a post-restore checkpoint onto
	// a trace of strides the restore just discarded — the trace-level twin
	// of serving a restored view under a pre-restore X-Disc-Stride.
	s.strideCtx.Store(nil)
	// A restore discards any pending partial stride, so the readiness
	// backlog gauge resets with it.
	s.pending.Store(int64(s.slider.PendingLen()))
	return eng.WindowSize(), nil
}

// handleCheckpointSave streams a binary service checkpoint. The body is
// buffered first so Content-Length names the complete encoding: without
// it a client whose connection dropped mid-download would hold a
// truncated checkpoint indistinguishable from a complete one. A failed
// write is logged, not 500'd — the status already left.
func (s *Server) handleCheckpointSave(w http.ResponseWriter, _ *http.Request) {
	// Encode to a buffer first: an encoding failure after the first body
	// byte could not change the status code anymore.
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		slog.Warn("server: writing checkpoint response", "err", err)
	}
}

// handleCheckpointLoad restores the service from a posted checkpoint:
// 400 for undecodable input, 409 for a configuration mismatch, 413 for a
// body over the configured limit.
func (s *Server) handleCheckpointLoad(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxCheckpointBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("checkpoint exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading checkpoint: "+err.Error(), http.StatusBadRequest)
		return
	}
	restored, err := s.ReadCheckpoint(bytes.NewReader(body))
	switch {
	case errors.Is(err, ErrCheckpointMismatch):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, errBadCheckpoint):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		writeJSON(w, map[string]any{"restored": restored})
	}
}

// ingestPoint is the wire form of one point.
type ingestPoint struct {
	ID     int64     `json:"id"`
	Time   int64     `json:"time"`
	Coords []float64 `json:"coords"`
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Strides  uint64 `json:"strides"`
	Window   int    `json:"window"`
}

// ingestError is the body of a failed ingest: Applied says how many points
// of the batch made it into the stream before the failure, so the client
// knows exactly where to resume (or what it must not re-send).
type ingestError struct {
	Error   string `json:"error"`
	Applied int    `json:"applied"`
}

// handleIngest accepts a JSON array of points and pushes them through the
// sliding window, advancing the engine whenever a stride completes and
// publishing a fresh read view after each successful advance. The batch is
// atomic with respect to validation: every point is checked before any is
// pushed — wrong dimensionality, non-finite coordinates, ids duplicated
// within the batch or against the resident window all reject the whole
// batch with 400 and zero side effects. If the engine itself rejects an
// advance mid-batch, the triggering point is rolled out of the slider
// (keeping slider and engine in lockstep) and the 409 body reports how
// many points were applied so the client knows where to resume.
// When tracing is enabled each request records a span tree — ingest →
// decode/validate → one advance (with engine phase and worker children)
// and publish per completed stride — into a trace whose id either came
// from the client's W3C traceparent header or was minted here; the id is
// echoed in the X-Disc-Trace response header and the completed trace is
// queryable at GET /debug/traces.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Backpressure: shed load before reading the body. The gauge is an
	// atomic, so an overloaded stream answers 429 without touching the
	// mutex the backlog is queued behind.
	if hw := s.cfg.IngestHighWater; hw > 0 {
		if backlog := s.pending.Load(); backlog > int64(hw) {
			w.Header().Set("Retry-After", "1")
			writeJSONStatus(w, http.StatusTooManyRequests, ingestError{
				Error: fmt.Sprintf("slider backlog %d exceeds ingest high-water mark %d; retry after the backlog drains",
					backlog, hw),
			})
			return
		}
	}
	var tr *trace.Trace
	var root *trace.Span
	if s.tracer != nil {
		tr = s.tracer.StartTrace(trace.ParseTraceparent(r.Header.Get("traceparent")))
		root = tr.StartSpan("ingest", nil)
		w.Header().Set("X-Disc-Trace", tr.ID().String())
		defer func() {
			root.EndNow()
			s.tracer.Finish(tr)
		}()
	}
	// Idempotency headers: an optional client-chosen sequence number per
	// batch. A batch re-sent under the same (client, seq) after a lost
	// response is answered from the dedup window with its original 200
	// instead of being re-applied (or 400-rejected as a duplicate).
	client := r.Header.Get("X-Disc-Client")
	var seq uint64
	hasSeq := false
	if h := r.Header.Get("X-Disc-Seq"); h != "" {
		v, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			http.Error(w, "X-Disc-Seq must be an unsigned integer: "+err.Error(), http.StatusBadRequest)
			return
		}
		seq, hasSeq = v, true
		if client == "" {
			client = "default"
		}
	}
	spDecode := tr.StartSpan("decode", root)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes))
	if err != nil {
		spDecode.EndNow()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("ingest body exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var batch []ingestPoint
	if err := json.Unmarshal(body, &batch); err != nil {
		spDecode.EndNow()
		http.Error(w, "body must be a JSON array of {id,time,coords}: "+err.Error(), http.StatusBadRequest)
		return
	}
	spDecode.SetInt("batch", len(batch))
	spDecode.EndNow()
	root.SetInt("batch", len(batch))
	s.mu.Lock()
	defer s.mu.Unlock()
	// The probe gauge tracks the slider backlog across every exit path.
	defer func() { s.pending.Store(int64(s.slider.PendingLen())) }()
	if s.walBroken {
		http.Error(w, "write-ahead log failed; stream is read-only until repaired", http.StatusServiceUnavailable)
		return
	}
	if hasSeq {
		if resp, hit, tooOld := s.seqs.lookup(client, seq); hit {
			// Exactly-once apply under at-least-once delivery: the batch was
			// already applied and acknowledged; replay the original body.
			w.Header().Set("X-Disc-Deduped", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			if _, err := w.Write(resp); err != nil {
				slog.Warn("server: writing deduplicated response", "err", err)
			}
			return
		} else if tooOld {
			writeJSONStatus(w, http.StatusConflict, ingestError{
				Error: fmt.Sprintf("seq %d for client %q is below the dedup window (last %d sequence numbers kept): cannot prove whether the batch was applied",
					seq, client, s.seqs.window),
			})
			return
		}
	}
	spValidate := tr.StartSpan("validate", root)
	msg := s.validateBatch(batch)
	spValidate.EndNow()
	if msg != "" {
		http.Error(w, msg+" (no points applied)", http.StatusBadRequest)
		return
	}
	// With a WAL attached, materialize the batch once up front: the same
	// slice feeds the slider and becomes the record's Points, so the log
	// carries exactly what the engine saw.
	var logPts []model.Point
	if s.wal != nil {
		logPts = make([]model.Point, len(batch))
		for i, ip := range batch {
			logPts[i] = model.Point{ID: ip.ID, Time: ip.Time, Pos: geom.NewVec(ip.Coords...)}
		}
	}
	start := s.ingested
	applied := 0
	for i, ip := range batch {
		var p model.Point
		if logPts != nil {
			p = logPts[i]
		} else {
			p = model.Point{ID: ip.ID, Time: ip.Time, Pos: geom.NewVec(ip.Coords...)}
		}
		if step := s.slider.Push(p); step != nil {
			if err := s.safeAdvance(step, tr, root); err != nil {
				// The engine refused the stride, so the slider must not keep
				// it either: roll the triggering point back out, leaving both
				// exactly at the pre-push stream position. Without this the
				// slider runs one stride ahead of the engine forever.
				s.slider.Rewind(step)
				// The applied prefix is in the stream, so it must be in the
				// log too, or a replica replaying past this point diverges.
				// No sequence number: a partial apply must not be dedup-
				// replayed as if it had succeeded.
				if applied > 0 && logPts != nil {
					if werr := s.walAppend(&walRecord{Start: start, Points: logPts[:applied]}); werr != nil {
						http.Error(w, "write-ahead log failed; stream is read-only until repaired", http.StatusServiceUnavailable)
						return
					}
				}
				writeJSONStatus(w, http.StatusConflict, ingestError{Error: err.Error(), Applied: applied})
				return
			}
			// The stride landed: this view is the one the paper's exactness
			// guarantee is about, so publish it before touching more input.
			applied++
			s.ingested++
			s.ingestMx.Inc()
			spPub := tr.StartSpan("publish", root)
			s.publish()
			spPub.EndNow()
			if tr != nil {
				// Remember where the stride's trace can be joined; the
				// checkpoint runner parents its write spans here.
				ctx := tr.Context(root)
				s.strideCtx.Store(&ctx)
			}
			continue
		}
		applied++
		s.ingested++
		s.ingestMx.Inc()
	}
	resp := ingestResponse{
		Accepted: len(batch),
		Strides:  uint64(s.eng.Stats().Strides),
		Window:   s.eng.WindowSize(),
	}
	ack, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ack = append(ack, '\n') // match the writeJSON encoder framing
	// Durability before acknowledgment: the record (including the exact
	// body about to be sent) is framed and fsynced while the mutex is
	// still held, so a checkpoint can never capture un-logged state and
	// an acknowledged batch can always be replayed.
	if len(batch) > 0 || hasSeq {
		if err := s.walAppend(&walRecord{
			Start: start, Client: client, Seq: seq, HasSeq: hasSeq,
			Points: logPts, Resp: ack,
		}); err != nil {
			http.Error(w, "write-ahead log failed; stream is read-only until repaired", http.StatusServiceUnavailable)
			return
		}
	}
	if hasSeq {
		s.seqs.record(client, seq, ack, s.ingested)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(ack); err != nil {
		slog.Warn("server: writing response", "err", err)
	}
}

// validateBatch checks a decoded ingest batch against everything that can
// be known before any point is pushed: coordinate dimensionality, finite
// values (NaN/Inf corrupt distance comparisons and R-tree bounds), and id
// uniqueness both within the batch and against points still resident in
// the window or pending buffer. It returns "" when the batch is clean, or
// a client-facing description of the first violation. Caller holds s.mu.
func (s *Server) validateBatch(batch []ingestPoint) string {
	seen := make(map[int64]int, len(batch))
	for i, ip := range batch {
		if len(ip.Coords) != s.cfg.Cluster.Dims {
			return fmt.Sprintf("point %d: got %d coords, want %d", i, len(ip.Coords), s.cfg.Cluster.Dims)
		}
		for d, c := range ip.Coords {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Sprintf("point %d (id %d): coordinate %d is non-finite (%v)", i, ip.ID, d, c)
			}
		}
		if j, dup := seen[ip.ID]; dup {
			return fmt.Sprintf("point %d duplicates id %d of point %d in the same batch (intra-batch duplicate: the batch itself is malformed; fix it and resend)", i, ip.ID, j)
		}
		seen[ip.ID] = i
		if s.slider.Contains(ip.ID) {
			return fmt.Sprintf("point %d: id %d is still resident in the window (window-resident duplicate: if this is a retry of a batch whose response was lost, the batch may already be fully applied and retrying it is unsafe; send an X-Disc-Seq header to make retries idempotent)", i, ip.ID)
		}
	}
	return ""
}

// safeAdvance converts engine protocol panics (duplicate ids and the like)
// into HTTP-reportable errors rather than crashing the service. With a
// trace active the stride's spans land under parent in tr.
func (s *Server) safeAdvance(step *window.Step, tr *trace.Trace, parent *trace.Span) (err error) {
	if s.testAdvanceErr != nil {
		return s.testAdvanceErr(step)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rejected: %v", r)
		}
	}()
	s.eng.AdvanceTraced(tr, parent, step.In, step.Out)
	return nil
}

type clusterSummary struct {
	ID      int `json:"id"`
	Size    int `json:"size"`
	Cores   int `json:"cores"`
	Borders int `json:"borders"`
}

type clustersResponse struct {
	Strides  uint64           `json:"strides"`
	Window   int              `json:"window"`
	Noise    int              `json:"noise"`
	Clusters []clusterSummary `json:"clusters"`
}

// handleClusters serves the precomputed census of the pinned view: the
// whole body was aggregated and sorted at publication, so this is one
// JSON encode with no locking.
func (s *Server) handleClusters(v *publishedView, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, v.clusters)
}

type pointResponse struct {
	ID      int64  `json:"id"`
	Label   string `json:"label"`
	Cluster int    `json:"cluster"`
}

// handlePoint answers from the pinned view's assignment map — the exact
// per-point labels of the view's stride.
func (s *Server) handlePoint(v *publishedView, w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(strings.TrimSpace(r.PathValue("id")), 10, 64)
	if err != nil {
		http.Error(w, "bad point id", http.StatusBadRequest)
		return
	}
	a, ok := v.assign[id]
	if !ok {
		http.Error(w, "point not in the current window", http.StatusNotFound)
		return
	}
	writeJSON(w, pointResponse{ID: id, Label: a.Label.String(), Cluster: a.ClusterID})
}

// handleEvents filters the pinned view's event tail by the optional
// ?since= sequence cursor.
func (s *Server) handleEvents(v *publishedView, w http.ResponseWriter, r *http.Request) {
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	// Non-nil so an empty result renders as the JSON [] clients expect,
	// never null.
	out := []eventRecord{}
	for _, ev := range v.events {
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	writeJSON(w, out)
}

type statsResponse struct {
	Config    model.Config `json:"config"`
	Window    int          `json:"windowExtent"`
	Stride    int          `json:"stride"`
	Ingested  uint64       `json:"ingested"`
	Resident  int          `json:"resident"`
	Stats     model.Stats  `json:"stats"`
	EventSeq  uint64       `json:"eventSeq"`
	EventKept int          `json:"eventKept"`
}

// handleStats serves the pinned view's precomputed stats body. All
// counters (ingested, resident, event sequence) are the values as of the
// view's stride — the body can never mix stride N counters with stride
// N+1 state, and it always matches the X-Disc-Stride header.
func (s *Server) handleStats(v *publishedView, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, v.stats)
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus encodes v to a buffer first, then writes the status and
// body. Encoding straight into the ResponseWriter would commit an implicit
// 200 on the first byte; an error after that could only bolt a second
// status (and an error string) onto a half-written JSON body. With the
// buffer, an encode failure becomes a clean 500 and a write failure — the
// client hung up — is logged and dropped, never a second WriteHeader.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		slog.Warn("server: writing response", "err", err)
	}
}
