package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"disc/internal/model"
)

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(21))
	postPoints(t, ts, clusteredBatch(rng, 0, 400)).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE disc_stride_duration_seconds histogram",
		`disc_stride_duration_seconds_bucket{le="+Inf"} 5`, // 200 fill + 4×50
		"# TYPE disc_range_searches_total counter",
		`disc_phase_duration_seconds_bucket{phase="collect"`,
		"disc_strides_total 5",
		"disc_points_in_total 400",
		"disc_ingested_points_total 400",
		"disc_window_size 200",
		`disc_cluster_events_total{type="emergence"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// disc_range_searches_total must carry a nonzero value.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "disc_range_searches_total ") {
			var v float64
			if _, err := fmt.Sscanf(line, "disc_range_searches_total %g", &v); err != nil || v <= 0 {
				t.Fatalf("bad range-search sample %q (err %v)", line, err)
			}
		}
	}
	// Minimal exposition-format lint: every non-comment line is
	// "name{labels} value" with a parseable float value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := fmt.Sscanf(fields[1], "%g", new(float64)); err != nil {
			t.Fatalf("unparseable value in %q", line)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(22))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("expvar memstats missing")
	}
	// The registry publishes under "disc" (first server in the process
	// wins; under `go test` that is whichever test constructed one first,
	// so only presence is asserted, not this server's values).
	if _, ok := vars["disc"]; !ok {
		t.Error("registry not published under \"disc\"")
	}
}

func TestPprofGating(t *testing.T) {
	// Disabled by default.
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: %d", resp.StatusCode)
	}
	// Enabled by config.
	s, err := New(Config{
		Cluster:     model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:      200,
		Stride:      50,
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with EnablePprof: %d", resp2.StatusCode)
	}
}

// TestConcurrentIngestAndScrape runs writers (POST /ingest) against
// readers (/metrics, /stats, /events, /debug/vars) simultaneously; under
// -race this verifies the lock-free scrape path against live updates.
func TestConcurrentIngestAndScrape(t *testing.T) {
	ts, _ := newTestServer(t)
	const (
		writers = 3
		batches = 8
		readers = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for b := 0; b < batches; b++ {
				base := int64(w*1_000_000 + b*1000)
				resp := postPoints(t, ts, clusteredBatch(rng, base, 100))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest: %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	paths := []string{"/metrics", "/stats", "/events?since=0", "/debug/vars", "/clusters"}
	for rix := 0; rix < readers; rix++ {
		wg.Add(1)
		go func(rix int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + paths[(rix+i)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: %d", paths[(rix+i)%len(paths)], resp.StatusCode)
				}
			}
		}(rix)
	}
	wg.Wait()

	// After the dust settles the counters reflect every accepted point.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf("disc_ingested_points_total %d", writers*batches*100)
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %q after concurrent ingest", want)
	}
}

// TestMetricsSurviveCheckpointRestore ensures the restored engine keeps
// feeding the same registry (the observer is re-attached on load).
func TestMetricsSurviveCheckpointRestore(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(23))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()

	ck, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckBytes, _ := io.ReadAll(ck.Body)
	ck.Body.Close()
	resp, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", strings.NewReader(string(ckBytes)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d", resp.StatusCode)
	}

	stridesBefore := metricValue(t, ts, "disc_strides_total")
	postPoints(t, ts, clusteredBatch(rng, 10_000, 100)).Body.Close()
	if after := metricValue(t, ts, "disc_strides_total"); after <= stridesBefore {
		t.Fatalf("strides_total stuck at %g after restore+ingest", after)
	}
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
