package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"disc/internal/model"
	"disc/internal/window"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	s, err := New(Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  200,
		Stride:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func postPoints(t *testing.T, ts *httptest.Server, pts []ingestPoint) *http.Response {
	t.Helper()
	body, _ := json.Marshal(pts)
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func clusteredBatch(rng *rand.Rand, idBase int64, n int) []ingestPoint {
	out := make([]ingestPoint, n)
	for i := range out {
		c := float64(rng.Intn(2)) * 20
		out[i] = ingestPoint{
			ID:     idBase + int64(i),
			Time:   idBase + int64(i),
			Coords: []float64{c + rng.NormFloat64(), c + rng.NormFloat64()},
		}
	}
	return out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestIngestAndClusters(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(1))
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 400))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if ir.Accepted != 400 || ir.Strides == 0 {
		t.Fatalf("ingest response %+v", ir)
	}

	var cr clustersResponse
	getJSON(t, ts.URL+"/clusters", &cr)
	if cr.Window != 200 {
		t.Fatalf("window %d, want 200", cr.Window)
	}
	if len(cr.Clusters) < 2 {
		t.Fatalf("found %d clusters, want >= 2", len(cr.Clusters))
	}
	total := cr.Noise
	for _, c := range cr.Clusters {
		total += c.Size
		if c.Size != c.Cores+c.Borders {
			t.Fatalf("cluster %d: size %d != cores %d + borders %d", c.ID, c.Size, c.Cores, c.Borders)
		}
	}
	if total != cr.Window {
		t.Fatalf("sizes sum to %d, window %d", total, cr.Window)
	}
}

func TestPointLookup(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(2))
	postPoints(t, ts, clusteredBatch(rng, 0, 250)).Body.Close()

	// The newest points are certainly in the window.
	var pr pointResponse
	resp := getJSON(t, fmt.Sprintf("%s/points/%d", ts.URL, 249), &pr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if pr.ID != 249 || pr.Label == "" {
		t.Fatalf("point response %+v", pr)
	}
	// Expired or unknown points are 404.
	if resp := getJSON(t, ts.URL+"/points/0", new(pointResponse)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired point status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/points/abc", new(pointResponse)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d, want 400", resp.StatusCode)
	}
}

func TestEventsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(3))
	postPoints(t, ts, clusteredBatch(rng, 0, 400)).Body.Close()

	var evs []eventRecord
	getJSON(t, ts.URL+"/events", &evs)
	if len(evs) == 0 {
		t.Fatal("no events after clustered ingest")
	}
	foundEmergence := false
	for _, ev := range evs {
		if ev.Type == "emergence" {
			foundEmergence = true
		}
		if ev.Seq == 0 {
			t.Fatal("event without sequence number")
		}
	}
	if !foundEmergence {
		t.Fatalf("no emergence among %d events", len(evs))
	}
	// since= filters.
	last := evs[len(evs)-1].Seq
	var tail []eventRecord
	getJSON(t, fmt.Sprintf("%s/events?since=%d", ts.URL, last), &tail)
	if len(tail) != 0 {
		t.Fatalf("since=%d returned %d events", last, len(tail))
	}
	if resp := getJSON(t, ts.URL+"/events?since=x", &tail); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad since accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(4))
	postPoints(t, ts, clusteredBatch(rng, 0, 300)).Body.Close()
	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Ingested != 300 || sr.Resident != 200 {
		t.Fatalf("stats %+v", sr)
	}
	if sr.Stats.RangeSearches == 0 {
		t.Fatal("no work recorded")
	}
}

func TestIngestValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	// Wrong dimensionality.
	resp := postPoints(t, ts, []ingestPoint{{ID: 1, Coords: []float64{1, 2, 3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("3-coord point accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Not JSON.
	r2, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte("nope")))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", r2.StatusCode)
	}
	r2.Body.Close()
}

func TestDuplicateIDRejectedNotFatal(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(5))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()
	// Re-sending ids still in the window is caught by up-front batch
	// validation: 400 with zero side effects, never a crash. (It used to
	// surface as a mid-batch engine 409 that left the slider desynced.)
	resp := postPoints(t, ts, clusteredBatch(rng, 100, 200))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate ingest status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Ingested != 200 {
		t.Fatalf("rejected batch moved ingested to %d, want 200", sr.Ingested)
	}
	// And the service must still be healthy.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatal("service unhealthy after rejected batch")
	}
	hz.Body.Close()
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
	resp.Body.Close()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Cluster: model.Config{}, Window: 10, Stride: 5}); err == nil {
		t.Error("invalid cluster config accepted")
	}
	if _, err := New(Config{Cluster: model.Config{Dims: 2, Eps: 1, MinPts: 2}, Window: 5, Stride: 10}); err == nil {
		t.Error("stride > window accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(6))
	postPoints(t, ts, clusteredBatch(rng, 0, 300)).Body.Close()

	// Snapshot the service.
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("checkpoint save: status %d, %d bytes", resp.StatusCode, len(blob))
	}
	var before clustersResponse
	getJSON(t, ts.URL+"/clusters", &before)

	// Fresh server restores from the checkpoint and continues the stream.
	ts2, _ := newTestServer(t)
	r2, err := http.Post(ts2.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(r2.Body)
		t.Fatalf("checkpoint load: status %d: %s", r2.StatusCode, body)
	}
	r2.Body.Close()
	var after clustersResponse
	getJSON(t, ts2.URL+"/clusters", &after)
	if after.Window != before.Window || len(after.Clusters) != len(before.Clusters) {
		t.Fatalf("restored census differs: %+v vs %+v", after, before)
	}
	// Resume ingestion exactly where the checkpoint left off.
	resp3 := postPoints(t, ts2, clusteredBatch(rng, 300, 200))
	if resp3.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp3.Body)
		t.Fatalf("resume ingest: status %d: %s", resp3.StatusCode, body)
	}
	resp3.Body.Close()
	var sr statsResponse
	getJSON(t, ts2.URL+"/stats", &sr)
	if sr.Ingested != 500 {
		t.Fatalf("ingested = %d, want 500 (300 pre-checkpoint + 200 resumed)", sr.Ingested)
	}
}

// TestIngestBatchAtomicValidation: a bad point mid-batch must reject the
// whole batch with zero side effects. The original handler validated and
// pushed per point, so points before the bad one were silently ingested
// (and strides advanced) behind the 400.
func TestIngestBatchAtomicValidation(t *testing.T) {
	ts, s := newTestServer(t)
	batch := []ingestPoint{
		{ID: 1, Coords: []float64{0, 0}},
		{ID: 2, Coords: []float64{1, 1}},
		{ID: 3, Coords: []float64{1, 2, 3}}, // wrong dims
		{ID: 4, Coords: []float64{2, 2}},
	}
	resp := postPoints(t, ts, batch)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", resp.StatusCode)
	}
	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Ingested != 0 {
		t.Fatalf("bad batch left %d points ingested, want 0", sr.Ingested)
	}
	if got := s.ingestMx.Value(); got != 0 {
		t.Fatalf("bad batch left ingest counter at %d, want 0", got)
	}
	// The same points without the bad one are still ingestible (nothing
	// was pushed into the slider on the failed attempt).
	resp = postPoints(t, ts, append(batch[:2:2], batch[3]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean retry status %d, want 200", resp.StatusCode)
	}
}

// TestIngestConflictReportsApplied: when the engine rejects an advance
// mid-batch, the 409 body must say how many points of the batch were
// applied, so the client knows where it stands. Up-front validation now
// catches duplicates before they can trip the engine, so the failure is
// injected through the advance seam.
func TestIngestConflictReportsApplied(t *testing.T) {
	ts, s := newTestServer(t)
	rng := rand.New(rand.NewSource(9))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()

	s.testAdvanceErr = func(*window.Step) error {
		return errors.New("injected advance failure")
	}
	// 100 fresh points: the stride fires on the 50th push of this batch
	// and the injected failure rejects it, with 49 points already applied
	// (the triggering 50th is rolled back out of the slider).
	resp := postPoints(t, ts, clusteredBatch(rng, 200, 100))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rejected ingest status %d, want 409", resp.StatusCode)
	}
	var ie ingestError
	if err := json.NewDecoder(resp.Body).Decode(&ie); err != nil {
		t.Fatalf("409 body is not the ingest error JSON: %v", err)
	}
	if ie.Error == "" {
		t.Fatal("409 body carries no error message")
	}
	if ie.Applied != 49 {
		t.Fatalf("applied = %d, want 49 (one full stride minus the rejected trigger)", ie.Applied)
	}
	// /stats serves the published view, which still reflects the last
	// successful stride: the 49 buffered survivors are not visible until
	// the next stride lands.
	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Ingested != 200 {
		t.Fatalf("view ingested = %d, want 200 (last published stride)", sr.Ingested)
	}
	if got := s.ingested; got != 249 {
		t.Fatalf("live ingested = %d, want 200 + 49 applied", got)
	}
}

// TestCheckpointConfigMismatchRejected: a checkpoint taken under different
// clustering thresholds must be refused with 409, not silently adopted.
func TestCheckpointConfigMismatchRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(10))
	postPoints(t, ts, clusteredBatch(rng, 0, 250)).Body.Close()
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	for _, other := range []model.Config{
		{Dims: 3, Eps: 2, MinPts: 4},   // different dims
		{Dims: 2, Eps: 2.5, MinPts: 4}, // different eps
		{Dims: 2, Eps: 2, MinPts: 7},   // different minPts
	} {
		s2, err := New(Config{Cluster: other, Window: 200, Stride: 50})
		if err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(s2.Handler())
		r2, err := http.Post(ts2.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		ts2.Close()
		if r2.StatusCode != http.StatusConflict {
			t.Fatalf("config %+v: mismatched checkpoint status %d, want 409 (%s)", other, r2.StatusCode, body)
		}
		if !strings.Contains(string(body), "mismatch") {
			t.Fatalf("config %+v: undescriptive mismatch error: %s", other, body)
		}
	}
}

// TestCheckpointRestoreSyncsIngestCounter: after a restore, /metrics'
// disc_ingested_points_total must equal /stats' ingested — the original
// code left the counter at its pre-restore value forever.
func TestCheckpointRestoreSyncsIngestCounter(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(11))
	postPoints(t, ts, clusteredBatch(rng, 0, 300)).Body.Close()
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	ts2, s2 := newTestServer(t)
	// Give the fresh server some pre-restore traffic so a stale counter
	// cannot accidentally look right.
	postPoints(t, ts2, clusteredBatch(rng, 10_000, 250)).Body.Close()
	r2, err := http.Post(ts2.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", r2.StatusCode)
	}
	var sr statsResponse
	getJSON(t, ts2.URL+"/stats", &sr)
	if sr.Ingested != 300 {
		t.Fatalf("stats ingested = %d, want 300", sr.Ingested)
	}
	if got := s2.ingestMx.Value(); got != 300 {
		t.Fatalf("metrics counter = %d after restore, want 300", got)
	}
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "disc_ingested_points_total 300") {
		t.Fatal("/metrics does not report the restored ingest total")
	}
}

// TestEventsEmptyIsArray: no matching events must render as JSON [], not
// null — clients iterate the result.
func TestEventsEmptyIsArray(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Fatalf("empty events rendered %q, want []", got)
	}
	// Same once events exist but the cursor excludes them all.
	rng := rand.New(rand.NewSource(12))
	postPoints(t, ts, clusteredBatch(rng, 0, 300)).Body.Close()
	resp, err = http.Get(ts.URL + "/events?since=999999")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Fatalf("filtered-out events rendered %q, want []", got)
	}
}

// TestRequestBodyLimits: oversized ingest and checkpoint bodies get 413,
// and the configured checkpoint limit is honored.
func TestRequestBodyLimits(t *testing.T) {
	s, err := New(Config{
		Cluster:            model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:             200,
		Stride:             50,
		MaxIngestBytes:     512,
		MaxCheckpointBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	big := bytes.Repeat([]byte("x"), 2048)
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest status %d, want 413", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized checkpoint status %d, want 413", resp.StatusCode)
	}
	// Small bodies still work under the tightened limits.
	r2 := postPoints(t, ts, []ingestPoint{{ID: 1, Coords: []float64{0, 0}}})
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("small ingest under limit: status %d", r2.StatusCode)
	}
}

func TestCheckpointLoadRejectsGarbage(t *testing.T) {
	ts, _ := newTestServer(t)
	r, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage checkpoint: status %d, want 400", r.StatusCode)
	}
}
