// Read path: after every successful stride (and every checkpoint restore)
// the ingest path materializes ONE immutable view of everything the GET
// endpoints serve — cluster census, per-point assignments, stats, event
// tail, stride/window counters — and installs it with a single atomic
// pointer store. Queries load the pointer and read; they never touch the
// server mutex, so reads cannot block the stream and the stream cannot
// block reads (RCU-style snapshot publication). Every response from one
// view is exactly consistent with every other response from that view:
// DISC's per-stride exactness (the paper's core claim) extends to the
// serving surface, stride by stride.
//
// Memory bound: at most one view is reachable from the server plus one per
// in-flight reader (a reader pins the view it loaded only for the duration
// of its handler), so retained view memory is O((1 + concurrent readers) ×
// window) in the worst instant and ~2× window state in practice — the old
// view becomes garbage the moment the last overlapping reader returns.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"disc/internal/model"
)

// publishedView is one immutable per-stride snapshot of the serving state.
// Nothing in it is ever mutated after publication; handlers may read any
// field concurrently without synchronization.
type publishedView struct {
	strides uint64 // engine strides completed when this view was built
	epoch   uint64 // restore epoch this view belongs to (s.viewEpoch)
	etag    string // `"disc-e<epoch>-s<strides>"`; epoch bumps on restore
	// assign maps every resident point id to its exact assignment as of
	// this stride (the engine Snapshot taken at publication).
	assign map[int64]model.Assignment
	// clusters is the fully aggregated and sorted census — precomputed so
	// /clusters is a pointer load plus one JSON encode.
	clusters clustersResponse
	// stats is the complete /stats body: counters are the values as of
	// this view's stride, so header and body can never disagree.
	stats statsResponse
	// events is the retained event tail at publication (oldest first).
	events []eventRecord
}

// buildView materializes the current service state. Callers must hold s.mu
// (or have exclusive access, as in New).
func (s *Server) buildView() *publishedView {
	snap := s.eng.Snapshot()
	stats := s.eng.Stats()
	strides := uint64(stats.Strides)
	v := &publishedView{
		strides: strides,
		epoch:   s.viewEpoch,
		etag:    fmt.Sprintf("\"disc-e%d-s%d\"", s.viewEpoch, strides),
		assign:  snap,
		events:  append([]eventRecord(nil), s.events...),
	}
	byID := map[int]*clusterSummary{}
	noise := 0
	for _, a := range snap {
		if a.ClusterID == model.NoCluster {
			noise++
			continue
		}
		cs := byID[a.ClusterID]
		if cs == nil {
			cs = &clusterSummary{ID: a.ClusterID}
			byID[a.ClusterID] = cs
		}
		cs.Size++
		if a.Label == model.Core {
			cs.Cores++
		} else {
			cs.Borders++
		}
	}
	v.clusters = clustersResponse{Strides: strides, Window: len(snap), Noise: noise}
	for _, cs := range byID {
		v.clusters.Clusters = append(v.clusters.Clusters, *cs)
	}
	sort.Slice(v.clusters.Clusters, func(i, j int) bool {
		if v.clusters.Clusters[i].Size != v.clusters.Clusters[j].Size {
			return v.clusters.Clusters[i].Size > v.clusters.Clusters[j].Size
		}
		return v.clusters.Clusters[i].ID < v.clusters.Clusters[j].ID
	})
	v.stats = statsResponse{
		Config:    s.cfg.Cluster,
		Window:    s.cfg.Window,
		Stride:    s.cfg.Stride,
		Ingested:  s.ingested,
		Resident:  len(snap),
		Stats:     stats,
		EventSeq:  s.eventSeq,
		EventKept: len(v.events),
	}
	return v
}

// publish builds and atomically installs a fresh view. Callers must hold
// s.mu (or have exclusive access).
func (s *Server) publish() { s.view.Store(s.buildView()) }

// serveView adapts a view-reading handler into an instrumented, lock-free
// http.HandlerFunc: it pins the current view ONCE and derives everything —
// the X-Disc-Stride header, the strong ETag, the If-None-Match freshness
// check, the body, and the lag baseline — from that single instance, so a
// view published mid-request can never leak into the response or the
// metrics attributed to it. (If-None-Match short-circuits to 304; every
// GET body is a pure function of (view, URL), which is what makes the
// ETag sound.) It records latency plus served-stride lag.
func (s *Server) serveView(endpoint string, h func(v *publishedView, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		v := s.view.Load()
		w.Header().Set("X-Disc-Stride", strconv.FormatUint(v.strides, 10))
		w.Header().Set("ETag", v.etag)
		if r.Header.Get("If-None-Match") == v.etag {
			w.WriteHeader(http.StatusNotModified)
		} else {
			h(v, w, r)
		}
		// Lag = strides published while this request was being served,
		// measured against the served instance v. The epoch guard keeps the
		// comparison within v's own restore epoch: a checkpoint restored
		// mid-request installs a view whose stride counter belongs to a
		// different history, and diffing across epochs would charge this
		// (perfectly fresh) read with an arbitrary fabricated lag.
		lag := float64(0)
		if now := s.view.Load(); now.epoch == v.epoch && now.strides > v.strides {
			lag = float64(now.strides - v.strides)
		}
		s.qm.ObserveQuery(endpoint, time.Since(start).Seconds(), lag)
	}
}
