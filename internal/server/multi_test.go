package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"disc/internal/model"

	"context"
)

func testMultiConfig() MultiConfig {
	return MultiConfig{
		Default: Config{
			Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
			Window:  200,
			Stride:  50,
		},
	}
}

func newTestMulti(t *testing.T, mcfg MultiConfig) (*httptest.Server, *Multi) {
	t.Helper()
	m, err := NewMulti(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)
	return ts, m
}

// createStream POSTs a stream spec and returns the response (caller closes).
func createStream(t *testing.T, ts *httptest.Server, spec streamSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustCreateStream(t *testing.T, ts *httptest.Server, spec streamSpec) streamInfo {
	t.Helper()
	resp := createStream(t, ts, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("creating stream %q: status %d: %s", spec.Name, resp.StatusCode, body)
	}
	var info streamInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func postStreamPoints(t *testing.T, ts *httptest.Server, stream string, pts []ingestPoint) *http.Response {
	t.Helper()
	body, _ := json.Marshal(pts)
	resp, err := http.Post(ts.URL+"/streams/"+stream+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func listStreams(t *testing.T, ts *httptest.Server) []streamInfo {
	t.Helper()
	var out struct {
		Streams []streamInfo `json:"streams"`
	}
	resp := getJSON(t, ts.URL+"/streams", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /streams status %d", resp.StatusCode)
	}
	return out.Streams
}

func TestMultiStreamCRUD(t *testing.T) {
	ts, _ := newTestMulti(t, testMultiConfig())

	// The default stream exists from birth.
	if got := listStreams(t, ts); len(got) != 1 || got[0].Name != DefaultStream {
		t.Fatalf("initial inventory %+v, want just %q", got, DefaultStream)
	}

	// Create inherits the template for omitted fields and overrides the rest.
	info := mustCreateStream(t, ts, streamSpec{Name: "tenant-a", Eps: 3, Connectivity: "dynamic"})
	if info.Config.Eps != 3 || info.Config.Dims != 2 || info.Config.MinPts != 4 {
		t.Fatalf("created config %+v, want eps=3 with inherited dims/minPts", info.Config)
	}
	if info.Connectivity != "dynamic" || info.Window != 200 || info.Stride != 50 {
		t.Fatalf("created stream %+v, want dynamic connectivity and inherited window/stride", info)
	}

	// Duplicate name → 409.
	resp := createStream(t, ts, streamSpec{Name: "tenant-a"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status %d, want 409", resp.StatusCode)
	}
	// Malformed names → 400 (they must be safe as URL segments, label
	// values, and directory names).
	for _, bad := range []string{"", "has space", "slash/y", "-leading", "x" + string(make([]byte, 80))} {
		resp := createStream(t, ts, streamSpec{Name: bad})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("name %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Inventory is sorted by name.
	got := listStreams(t, ts)
	if len(got) != 2 || got[0].Name != DefaultStream || got[1].Name != "tenant-a" {
		t.Fatalf("inventory %+v, want [default tenant-a]", got)
	}

	// Delete; a second delete and requests to the gone stream 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/streams/tenant-a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d, want 404", dresp2.StatusCode)
	}
	iresp := postStreamPoints(t, ts, "tenant-a", []ingestPoint{{ID: 1, Coords: []float64{0, 0}}})
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest to deleted stream status %d, want 404", iresp.StatusCode)
	}

	// The default stream is undeletable — the legacy aliases must resolve.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/streams/default", nil)
	dresp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp3.Body.Close()
	if dresp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("delete default status %d, want 400", dresp3.StatusCode)
	}
}

func TestMultiStreamLimit(t *testing.T) {
	cfg := testMultiConfig()
	cfg.MaxStreams = 2 // default + one tenant
	ts, _ := newTestMulti(t, cfg)
	mustCreateStream(t, ts, streamSpec{Name: "one"})
	resp := createStream(t, ts, streamSpec{Name: "two"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit create status %d, want 429", resp.StatusCode)
	}
	// Deleting frees the slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/streams/one", nil)
	dresp, _ := http.DefaultClient.Do(req)
	dresp.Body.Close()
	mustCreateStream(t, ts, streamSpec{Name: "two"})
}

// TestMultiCreateRejectsBadConfig: POST /streams enforces the same
// parameter validation discserver applies at startup — out-of-range dims,
// non-positive eps/minPts, stride > window, unknown connectivity — as 400s,
// with no stream registered.
func TestMultiCreateRejectsBadConfig(t *testing.T) {
	ts, _ := newTestMulti(t, testMultiConfig())
	for name, spec := range map[string]streamSpec{
		"dims too large":   {Name: "x", Dims: 9},
		"dims negative":    {Name: "x", Dims: -1},
		"eps negative":     {Name: "x", Eps: -1},
		"minPts negative":  {Name: "x", MinPts: -3},
		"stride > window":  {Name: "x", Window: 10, Stride: 100},
		"window negative":  {Name: "x", Window: -5},
		"bad connectivity": {Name: "x", Connectivity: "quantum"},
	} {
		resp := createStream(t, ts, spec)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, body)
		}
	}
	// Undecodable body → 400 too.
	resp, err := http.Post(ts.URL+"/streams", "application/json", bytes.NewReader([]byte("nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage spec status %d, want 400", resp.StatusCode)
	}
	// A typoed field name must 400, not silently inherit the template
	// (the wire name is minPts).
	resp, err = http.Post(ts.URL+"/streams", "application/json",
		bytes.NewReader([]byte(`{"name":"x","min_pts":4}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field spec status %d, want 400", resp.StatusCode)
	}
	// Nothing leaked into the registry.
	if got := listStreams(t, ts); len(got) != 1 {
		t.Fatalf("rejected creates registered streams: %+v", got)
	}
}

// TestMultiLegacyAliases: the historical single-stream routes serve the
// default stream — a pre-multi-tenant client and a /streams/default client
// observe the same state.
func TestMultiLegacyAliases(t *testing.T) {
	ts, _ := newTestMulti(t, testMultiConfig())
	rng := rand.New(rand.NewSource(31))
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 300)) // legacy /ingest
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy ingest status %d", resp.StatusCode)
	}

	var legacy, scoped statsResponse
	getJSON(t, ts.URL+"/stats", &legacy)
	getJSON(t, ts.URL+"/streams/default/stats", &scoped)
	if !reflect.DeepEqual(legacy, scoped) {
		t.Fatalf("legacy /stats %+v != /streams/default/stats %+v", legacy, scoped)
	}
	if legacy.Ingested != 300 {
		t.Fatalf("ingested %d, want 300", legacy.Ingested)
	}
	var lc, sc clustersResponse
	getJSON(t, ts.URL+"/clusters", &lc)
	getJSON(t, ts.URL+"/streams/default/clusters", &sc)
	if !reflect.DeepEqual(lc, sc) {
		t.Fatal("legacy and scoped cluster censuses differ")
	}

	// Scoped ingest is visible through the legacy route too.
	resp = postStreamPoints(t, ts, "default", clusteredBatch(rng, 1000, 100))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scoped ingest status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/stats", &legacy)
	if legacy.Ingested != 400 {
		t.Fatalf("legacy stats after scoped ingest: %d, want 400", legacy.Ingested)
	}

	// Checkpoint save/restore through both route families round-trips.
	cresp, err := http.Get(ts.URL + "/streams/default/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("scoped checkpoint save: status %d, %d bytes", cresp.StatusCode, len(blob))
	}
	lresp, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("legacy checkpoint restore: status %d", lresp.StatusCode)
	}
}

// TestMultiStreamIsolation is the per-stream isolation suite: two streams
// with different clustering parameters ingest concurrently (run under
// -race), and each must end bit-identical to a standalone single-stream
// server fed the same input — tenancy must not perturb results in either
// direction, and neither stream's points may be visible in the other.
func TestMultiStreamIsolation(t *testing.T) {
	ts, _ := newTestMulti(t, testMultiConfig())
	mustCreateStream(t, ts, streamSpec{Name: "a", Eps: 2, MinPts: 4})
	mustCreateStream(t, ts, streamSpec{Name: "b", Eps: 1.2, MinPts: 3, Window: 100, Stride: 25})

	// Deterministic per-stream workloads over disjoint id spaces.
	const batches, perBatch = 8, 100
	mkBatches := func(seed, idBase int64) [][]ingestPoint {
		rng := rand.New(rand.NewSource(seed))
		out := make([][]ingestPoint, batches)
		for i := range out {
			out[i] = clusteredBatch(rng, idBase+int64(i*perBatch), perBatch)
		}
		return out
	}
	batchesA := mkBatches(41, 0)
	batchesB := mkBatches(42, 1_000_000)

	var wg sync.WaitGroup
	for _, w := range []struct {
		stream  string
		batches [][]ingestPoint
	}{{"a", batchesA}, {"b", batchesB}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range w.batches {
				resp := postStreamPoints(t, ts, w.stream, b)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("stream %s ingest status %d", w.stream, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Standalone references: the same configs and inputs through plain
	// single-stream servers.
	reference := func(cfg Config, bs [][]ingestPoint) (clustersResponse, statsResponse) {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rts := httptest.NewServer(s.Handler())
		defer rts.Close()
		for _, b := range bs {
			resp := postPoints(t, rts, b)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reference ingest status %d", resp.StatusCode)
			}
		}
		var cr clustersResponse
		var sr statsResponse
		getJSON(t, rts.URL+"/clusters", &cr)
		getJSON(t, rts.URL+"/stats", &sr)
		return cr, sr
	}
	refAC, refAS := reference(Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4}, Window: 200, Stride: 50,
	}, batchesA)
	refBC, refBS := reference(Config{
		Cluster: model.Config{Dims: 2, Eps: 1.2, MinPts: 3}, Window: 100, Stride: 25,
	}, batchesB)

	for _, cmp := range []struct {
		stream string
		refC   clustersResponse
		refS   statsResponse
	}{{"a", refAC, refAS}, {"b", refBC, refBS}} {
		var cr clustersResponse
		var sr statsResponse
		getJSON(t, ts.URL+"/streams/"+cmp.stream+"/clusters", &cr)
		getJSON(t, ts.URL+"/streams/"+cmp.stream+"/stats", &sr)
		if !reflect.DeepEqual(cr, cmp.refC) {
			t.Errorf("stream %s census diverges from standalone run:\n multi %+v\n solo  %+v", cmp.stream, cr, cmp.refC)
		}
		if !reflect.DeepEqual(sr, cmp.refS) {
			t.Errorf("stream %s stats diverge from standalone run:\n multi %+v\n solo  %+v", cmp.stream, sr, cmp.refS)
		}
	}

	// No bleed: a point resident in one stream must be unknown to the other.
	var pr pointResponse
	if resp := getJSON(t, ts.URL+"/streams/a/points/799", &pr); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream a's own point: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/streams/b/points/799", new(pointResponse)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream a's point visible in stream b: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/streams/a/points/1000799", new(pointResponse)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream b's point visible in stream a: status %d, want 404", resp.StatusCode)
	}
}

// TestMultiNoGlobalWriteLock proves writes are independent across streams:
// with one stream's write mutex wedged solid, another stream's ingest, the
// registry API, and stream creation all still complete. A registry built on
// a global write lock fails this by timeout.
func TestMultiNoGlobalWriteLock(t *testing.T) {
	ts, m := newTestMulti(t, testMultiConfig())
	mustCreateStream(t, ts, streamSpec{Name: "wedged"})
	mustCreateStream(t, ts, streamSpec{Name: "healthy"})

	// Wedge: hold the stream's write mutex as a stuck writer would.
	wedged := m.Stream("wedged")
	wedged.mu.Lock()
	defer wedged.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(51))
		resp := postStreamPoints(t, ts, "healthy", clusteredBatch(rng, 0, 100))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthy ingest status %d", resp.StatusCode)
		}
		if got := listStreams(t, ts); len(got) != 3 {
			t.Errorf("inventory size %d, want 3", len(got))
		}
		mustCreateStream(t, ts, streamSpec{Name: "born-under-wedge"})
		// Reads on the wedged stream itself still serve (lock-free path).
		if resp := getJSON(t, ts.URL+"/streams/wedged/stats", new(statsResponse)); resp.StatusCode != http.StatusOK {
			t.Errorf("wedged stream read status %d", resp.StatusCode)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("operations on other streams blocked behind one stream's write mutex")
	}
}

// TestMultiCheckpointLifecycle: per-stream durability — the default stream
// keeps the legacy directory layout at the root (existing deployments
// recover in place), tenants get streams/<name> subdirectories, the shared
// scheduler writes shutdown finals for every stream, and a re-created
// registry (or re-created stream) recovers its own window, never a
// neighbor's.
func TestMultiCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := testMultiConfig()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 2
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.RunCheckpoints(ctx); close(done) }()

	mustCreateStream(t, ts, streamSpec{Name: "tenant"})
	rng := rand.New(rand.NewSource(61))
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 300)) // default stream
	resp.Body.Close()
	resp = postStreamPoints(t, ts, "tenant", clusteredBatch(rng, 500_000, 250))
	resp.Body.Close()

	cancel() // shutdown finals flush both streams
	<-done
	ts.Close()

	if fi, err := os.Stat(filepath.Join(dir, "streams", "tenant")); err != nil || !fi.IsDir() {
		t.Fatalf("tenant checkpoint directory missing: %v", err)
	}

	// Rebirth: the default stream recovers during NewMulti; the tenant
	// recovers when re-registered under its old name.
	m2, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()
	var sr statsResponse
	getJSON(t, ts2.URL+"/stats", &sr)
	if sr.Ingested != 300 {
		t.Fatalf("default stream recovered ingested=%d, want 300", sr.Ingested)
	}
	mustCreateStream(t, ts2, streamSpec{Name: "tenant"})
	getJSON(t, ts2.URL+"/streams/tenant/stats", &sr)
	if sr.Ingested != 250 {
		t.Fatalf("tenant recovered ingested=%d, want 250", sr.Ingested)
	}
	// Recovery restored the tenant's own points, not the default's.
	if resp := getJSON(t, ts2.URL+"/streams/tenant/points/500249", new(pointResponse)); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant's own newest point after recovery: status %d", resp.StatusCode)
	}
}

// TestMultiMetricsStreamLabels: the shared /metrics endpoint carries one
// stream-labeled series per tenant (until the cardinality cap), and the
// registry-level stream gauge tracks membership.
func TestMultiMetricsStreamLabels(t *testing.T) {
	ts, _ := newTestMulti(t, testMultiConfig())
	mustCreateStream(t, ts, streamSpec{Name: "tenant-a"})
	rng := rand.New(rand.NewSource(71))
	resp := postStreamPoints(t, ts, "tenant-a", clusteredBatch(rng, 0, 120))
	resp.Body.Close()
	resp = postPoints(t, ts, clusteredBatch(rng, 10_000, 70))
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`disc_ingested_points_total{stream="tenant-a"} 120`,
		`disc_ingested_points_total{stream="default"} 70`,
		`disc_streams 2`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func ExampleMulti() {
	m, _ := NewMulti(MultiConfig{Default: Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4}, Window: 200, Stride: 50,
	}})
	_, err := m.CreateStream("metrics-eu", Config{
		Cluster: model.Config{Dims: 2, Eps: 0.5, MinPts: 6}, Window: 1000, Stride: 100,
	})
	fmt.Println(err, m.Stream("metrics-eu") != nil)
	// Output: <nil> true
}
