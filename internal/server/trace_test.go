package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"disc/internal/ckpt"
	"disc/internal/model"
)

// getBody fetches url and returns status plus body text.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestReadyzRecoveryGate covers the first /readyz transition: a server
// started not-ready (checkpoint recovery pending) reports 503 until
// SetReady, while /healthz liveness stays 200 throughout.
func TestReadyzRecoveryGate(t *testing.T) {
	s, err := New(Config{
		Cluster:       model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:        200,
		Stride:        50,
		StartNotReady: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "recovery") {
		t.Fatalf("not-ready readyz = %d %q, want 503 mentioning recovery", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d while not ready, want 200", code)
	}
	s.SetReady(true)
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d after SetReady(true), want 200", code)
	}
	s.SetReady(false)
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d after SetReady(false), want 503", code)
	}
}

// TestReadyzBacklogHighWater covers the second transition: /readyz trips
// while the slider's pending backlog exceeds the high-water mark and
// recovers once a stride boundary drains it.
func TestReadyzBacklogHighWater(t *testing.T) {
	s, err := New(Config{
		Cluster:        model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:         200,
		Stride:         50,
		ReadyHighWater: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("fresh readyz = %d, want 200", code)
	}

	// 20 points buffered below the 200-point fill boundary: backlog 20 > 10.
	rng := rand.New(rand.NewSource(7))
	postPoints(t, ts, clusteredBatch(rng, 0, 20)).Body.Close()
	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "backlog") {
		t.Fatalf("backlogged readyz = %d %q, want 503 mentioning backlog", code, body)
	}

	// Filling the window crosses the boundary; the backlog drains to zero.
	postPoints(t, ts, clusteredBatch(rng, 20, 180)).Body.Close()
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d after boundary drained backlog, want 200", code)
	}
}

// tracesPayload mirrors the GET /debug/traces wire shape.
type tracesPayload struct {
	Traces []struct {
		TraceID string `json:"trace_id"`
		Root    string `json:"root"`
		Spans   []struct {
			ID     string `json:"id"`
			Parent string `json:"parent"`
			Name   string `json:"name"`
		} `json:"spans"`
	} `json:"traces"`
}

// TestIngestTraceSpanTree is the acceptance scenario end to end: a traced
// ingest crossing a stride boundary records ingest → advance → {collect,
// cluster, finalize} → publish under the client's traceparent id, and a
// checkpoint joins the same trace as checkpoint → {snapshot, save}. Run
// under -race this exercises concurrent span writes from the fan-out
// workers against /debug/traces readers.
func TestIngestTraceSpanTree(t *testing.T) {
	s, err := New(Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  200,
		Stride:  50,
		Tracing: &TraceConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	rng := rand.New(rand.NewSource(3))
	body, _ := json.Marshal(clusteredBatch(rng, 0, 200))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Disc-Trace"); got != tid {
		t.Fatalf("X-Disc-Trace = %q, want client trace id %q", got, tid)
	}

	// An immediate checkpoint joins the stride's trace by id.
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runner := ckpt.NewRunner(store, s, 1, ckpt.WithRunnerTracer(s.Tracer()))
	if _, err := runner.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	var payload tracesPayload
	getJSON(t, ts.URL+"/debug/traces?trace="+tid, &payload)
	if len(payload.Traces) != 1 {
		t.Fatalf("traces for id %s: %d, want 1", tid, len(payload.Traces))
	}
	tr := payload.Traces[0]

	spanID := map[string]string{}
	parent := map[string]string{}
	for _, sp := range tr.Spans {
		if _, dup := spanID[sp.Name]; !dup {
			spanID[sp.Name] = sp.ID
			parent[sp.Name] = sp.Parent
		}
	}
	for _, want := range []string{
		"ingest", "decode", "validate", "advance",
		"collect", "cluster.excores", "cluster.neocores", "finalize",
		"publish", "checkpoint", "checkpoint.snapshot", "checkpoint.save",
	} {
		if _, ok := spanID[want]; !ok {
			t.Fatalf("span %q missing from trace (have %v)", want, keysOf(spanID))
		}
	}
	// Parent links: everything hangs off the ingest root; the root itself
	// hangs off the remote parent from the traceparent header.
	if parent["ingest"] != "f067aa0ba902b7" {
		t.Fatalf("ingest parent = %q, want remote parent id", parent["ingest"])
	}
	for _, child := range []string{"decode", "validate", "advance", "publish", "checkpoint"} {
		if parent[child] != spanID["ingest"] {
			t.Fatalf("%q parent = %q, want ingest %q", child, parent[child], spanID["ingest"])
		}
	}
	for _, phase := range []string{"collect", "cluster.excores", "cluster.neocores", "finalize"} {
		if parent[phase] != spanID["advance"] {
			t.Fatalf("%q parent = %q, want advance %q", phase, parent[phase], spanID["advance"])
		}
	}
	for _, child := range []string{"checkpoint.snapshot", "checkpoint.save"} {
		if parent[child] != spanID["checkpoint"] {
			t.Fatalf("%q parent = %q, want checkpoint %q", child, parent[child], spanID["checkpoint"])
		}
	}
}

func keysOf(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestIngestUntracedHasNoTraceEndpoints pins that a server without
// Tracing config mounts no /debug/traces route and stamps no header.
func TestIngestUntracedHasNoTraceEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(5))
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 10))
	resp.Body.Close()
	if h := resp.Header.Get("X-Disc-Trace"); h != "" {
		t.Fatalf("untraced ingest stamped X-Disc-Trace %q", h)
	}
	if code, _ := getBody(t, ts.URL+"/debug/traces"); code != http.StatusNotFound {
		t.Fatalf("/debug/traces = %d without tracing, want 404", code)
	}
}
