package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"disc/internal/ckpt"
	"disc/internal/core"
	"disc/internal/model"
)

// --- seq table unit tests -------------------------------------------------

func TestSeqTableWindowAndClassification(t *testing.T) {
	tbl := newSeqTable(3, 8)
	for seq := uint64(1); seq <= 5; seq++ {
		tbl.record("c", seq, []byte(fmt.Sprintf("resp-%d", seq)), seq*10)
	}
	// Window 3 keeps seqs 3..5; 1 and 2 fell off the front.
	if resp, hit, _ := tbl.lookup("c", 4); !hit || string(resp) != "resp-4" {
		t.Fatalf("lookup(4) = (%q, %v), want hit with resp-4", resp, hit)
	}
	if _, hit, tooOld := tbl.lookup("c", 2); hit || !tooOld {
		t.Fatalf("lookup(2) = hit=%v tooOld=%v, want evicted (tooOld)", hit, tooOld)
	}
	if _, hit, tooOld := tbl.lookup("c", 6); hit || tooOld {
		t.Fatalf("lookup(6) = hit=%v tooOld=%v, want fresh", hit, tooOld)
	}
	if _, hit, tooOld := tbl.lookup("stranger", 1); hit || tooOld {
		t.Fatalf("unknown client = hit=%v tooOld=%v, want fresh", hit, tooOld)
	}
	// Re-recording an already-known seq must keep the original response.
	tbl.record("c", 4, []byte("impostor"), 99)
	if resp, _, _ := tbl.lookup("c", 4); string(resp) != "resp-4" {
		t.Fatalf("re-record overwrote original response: %q", resp)
	}
}

func TestSeqTableEvictionDeterminism(t *testing.T) {
	// Two tables fed the same history in different client orders must
	// evict the same victim: eviction keys on (LastUsed, name), never on
	// map iteration order.
	build := func(names []string) *seqTable {
		tbl := newSeqTable(4, 2)
		for i, name := range names {
			tbl.record(name, 1, []byte("r"), uint64(10+i))
		}
		// A third client forces one eviction.
		tbl.record("zz", 1, []byte("r"), 100)
		return tbl
	}
	a := build([]string{"alpha", "beta"})
	b := build([]string{"alpha", "beta"})
	if !reflect.DeepEqual(a.persist(), b.persist()) {
		t.Fatalf("eviction diverged:\n%v\nvs\n%v", a.persist(), b.persist())
	}
	// alpha (LastUsed 10) is older than beta (11): alpha must be gone.
	if _, ok := a.m["alpha"]; ok {
		t.Fatal("eviction kept the least-recently-used client")
	}
	if _, ok := a.m["beta"]; !ok {
		t.Fatal("eviction removed the wrong client")
	}
}

func TestSeqTablePersistRestoreRoundTrip(t *testing.T) {
	tbl := newSeqTable(4, 8)
	tbl.record("b", 7, []byte("b7"), 20)
	tbl.record("a", 1, []byte("a1"), 10)
	tbl.record("a", 2, []byte("a2"), 15)
	pcs := tbl.persist()
	if len(pcs) != 2 || pcs[0].Client != "a" || pcs[1].Client != "b" {
		t.Fatalf("persist not sorted by client: %+v", pcs)
	}
	fresh := newSeqTable(4, 8)
	fresh.restore(pcs)
	if !reflect.DeepEqual(fresh.persist(), pcs) {
		t.Fatalf("restore round trip diverged:\n%v\nvs\n%v", fresh.persist(), pcs)
	}
}

// --- exactly-once ingest over HTTP ---------------------------------------

// postPointsSeq posts a batch with the idempotency headers set.
func postPointsSeq(t *testing.T, url string, pts []ingestPoint, client string, seq uint64) *http.Response {
	t.Helper()
	body, _ := json.Marshal(pts)
	req, err := http.NewRequest(http.MethodPost, url+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Disc-Client", client)
	req.Header.Set("X-Disc-Seq", strconv.FormatUint(seq, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newWALServer builds a standalone server with a write-ahead log attached
// in a temp dir, returning the test server, the server, and the WAL dir.
func newWALServer(t *testing.T, cfg Config) (*httptest.Server, *Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := ckpt.OpenWAL(dir, ckpt.WithWALMaxPayload(s.walRecordMaxPayload()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	s.AttachWAL(w)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, dir
}

func testWALConfig() Config {
	return Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  200,
		Stride:  50,
	}
}

// TestIngestSeqDedup: re-delivering an acknowledged batch under the same
// (client, seq) answers with the original body — byte for byte — and
// applies nothing twice.
func TestIngestSeqDedup(t *testing.T) {
	ts, s, _ := newWALServer(t, testWALConfig())
	rng := rand.New(rand.NewSource(7))
	batch := clusteredBatch(rng, 0, 60)

	first := postPointsSeq(t, ts.URL, batch, "loader", 1)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first delivery: status %d: %s", first.StatusCode, readBody(t, first))
	}
	firstBody := readBody(t, first)

	// The retry carries the same points, which are still window-resident —
	// without dedup this would be a 400.
	retry := postPointsSeq(t, ts.URL, batch, "loader", 1)
	if retry.StatusCode != http.StatusOK {
		t.Fatalf("retry: status %d: %s", retry.StatusCode, readBody(t, retry))
	}
	if retry.Header.Get("X-Disc-Deduped") != "1" {
		t.Fatal("retry was not marked deduplicated")
	}
	retryBody := readBody(t, retry)
	if !bytes.Equal(firstBody, retryBody) {
		t.Fatalf("dedup body diverged:\n%s\nvs\n%s", firstBody, retryBody)
	}
	s.mu.Lock()
	ingested := s.ingested
	s.mu.Unlock()
	if ingested != 60 {
		t.Fatalf("ingested = %d after dedup, want 60 (nothing applied twice)", ingested)
	}
	if got := s.pending.Load(); got != 60 {
		t.Fatalf("pending = %d, want 60 (window not yet warm)", got)
	}
}

// TestIngestSeqBelowWindow: a sequence number that has fallen out of the
// dedup window cannot be proven applied or unapplied — 409, not a silent
// re-apply and not a misleading 400.
func TestIngestSeqBelowWindow(t *testing.T) {
	cfg := testWALConfig()
	cfg.SeqWindow = 2
	ts, _, _ := newWALServer(t, cfg)
	rng := rand.New(rand.NewSource(8))
	for seq := uint64(1); seq <= 3; seq++ {
		resp := postPointsSeq(t, ts.URL, clusteredBatch(rng, int64(seq)*1000, 10), "loader", seq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seq %d: status %d: %s", seq, resp.StatusCode, readBody(t, resp))
		}
		resp.Body.Close()
	}
	// Window 2 now remembers seqs {2,3}; seq 1 is below it.
	resp := postPointsSeq(t, ts.URL, clusteredBatch(rng, 1000, 10), "loader", 1)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("below-window seq: status %d, want 409", resp.StatusCode)
	}
	if body := readBody(t, resp); !strings.Contains(string(body), "below the dedup window") {
		t.Fatalf("below-window body does not explain itself: %s", body)
	}
}

// TestIngestRetryWedgeWithoutSeq pins the 400 wording for the two
// duplicate cases a seq-less client can hit. A window-resident duplicate
// is the at-least-once wedge: the batch may have been fully applied and
// only the response lost, so the body must say retrying is unsafe and
// point at the fix. An intra-batch duplicate is a malformed batch, and
// retrying it verbatim can never succeed — the body must distinguish it.
func TestIngestRetryWedgeWithoutSeq(t *testing.T) {
	ts, _, _ := newWALServer(t, testWALConfig())
	rng := rand.New(rand.NewSource(9))
	batch := clusteredBatch(rng, 0, 30)
	resp := postPoints(t, ts, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first delivery: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Retry without a seq: window-resident duplicate.
	retry := postPoints(t, ts, batch)
	if retry.StatusCode != http.StatusBadRequest {
		t.Fatalf("seq-less retry: status %d, want 400", retry.StatusCode)
	}
	body := string(readBody(t, retry))
	for _, want := range []string{"window-resident duplicate", "retrying it is unsafe", "X-Disc-Seq", "no points applied"} {
		if !strings.Contains(body, want) {
			t.Fatalf("window-resident 400 missing %q:\n%s", want, body)
		}
	}

	// Intra-batch duplicate: a genuinely malformed batch.
	bad := clusteredBatch(rng, 10_000, 5)
	bad[3].ID = bad[1].ID
	resp = postPoints(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("intra-batch duplicate: status %d, want 400", resp.StatusCode)
	}
	body = string(readBody(t, resp))
	for _, want := range []string{"intra-batch duplicate", "malformed"} {
		if !strings.Contains(body, want) {
			t.Fatalf("intra-batch 400 missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "window-resident") {
		t.Fatalf("intra-batch 400 mislabeled as window-resident:\n%s", body)
	}
}

// TestIngestBackpressure: past the high-water mark the server sheds load
// with 429 + Retry-After instead of queueing without bound.
func TestIngestBackpressure(t *testing.T) {
	cfg := testWALConfig()
	cfg.IngestHighWater = 10
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(10))

	// 20 points, no stride boundary: backlog 20 > high water 10.
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filling batch: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postPoints(t, ts, clusteredBatch(rng, 1000, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over high water: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var ie ingestError
	if err := json.NewDecoder(resp.Body).Decode(&ie); err != nil {
		t.Fatalf("429 body: %v", err)
	}
	resp.Body.Close()
	if !strings.Contains(ie.Error, "high-water mark") {
		t.Fatalf("429 body does not explain the shed: %q", ie.Error)
	}

	// Raising the mark (an operator intervention) reopens ingest — the
	// shed is a pure function of backlog vs mark, with no latch.
	s.cfg.IngestHighWater = 100
	resp = postPoints(t, ts, clusteredBatch(rng, 2000, 30))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("below raised mark: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// --- leader restart and follower replay ----------------------------------

// ingestScript drives a deterministic batch sequence (sizes chosen to
// straddle stride boundaries) against a base URL with seq headers.
func ingestScript(t *testing.T, url string, seed int64, batches, per int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < batches; i++ {
		pts := clusteredBatch(rng, int64(i)*10_000, per)
		resp := postPointsSeq(t, url, pts, "script", uint64(i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", i, resp.StatusCode, readBody(t, resp))
		}
		resp.Body.Close()
	}
}

func getBodyString(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return string(readBody(t, resp))
}

func checkpointBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLeaderRestartReplaysWAL: kill a leader without a checkpoint and
// restart it over the log — every acknowledged batch (pending partial
// strides included) comes back, bit-identically.
func TestLeaderRestartReplaysWAL(t *testing.T) {
	cfg := testWALConfig()
	ts, s1, dir := newWALServer(t, cfg)
	ingestScript(t, ts.URL, 21, 9, 37) // 333 points: 6 strides + 33 pending
	want := checkpointBytes(t, s1)
	wantStats := getBodyString(t, ts.URL+"/stats")

	// "Crash": no Close, no checkpoint — the log alone must carry the state.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.RecoverWAL(dir, nil)
	if err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	if n != 9 {
		t.Fatalf("replayed %d records, want 9", n)
	}
	if got := checkpointBytes(t, s2); !bytes.Equal(got, want) {
		t.Fatalf("restarted leader state diverged: %d vs %d checkpoint bytes", len(got), len(want))
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	gotStats := getBodyString(t, ts2.URL+"/stats")
	if gotStats != wantStats {
		t.Fatalf("stats diverged:\n%s\nvs\n%s", gotStats, wantStats)
	}

	// The restarted leader must also dedup retries acknowledged before the
	// crash: the log carries the seq table's content.
	rng := rand.New(rand.NewSource(21))
	var last []ingestPoint
	for i := 0; i < 9; i++ {
		last = clusteredBatch(rng, int64(i)*10_000, 37)
	}
	resp := postPointsSeq(t, ts2.URL, last, "script", 9)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Disc-Deduped") != "1" {
		t.Fatalf("post-restart retry: status %d deduped=%q", resp.StatusCode, resp.Header.Get("X-Disc-Deduped"))
	}
	resp.Body.Close()
}

// TestCheckpointPlusWALRecovery: restore from a mid-stream checkpoint,
// then replay only the log's tail — the result matches a leader that
// never crashed.
func TestCheckpointPlusWALRecovery(t *testing.T) {
	cfg := testWALConfig()
	ts, s1, dir := newWALServer(t, cfg)
	ingestScript(t, ts.URL, 22, 4, 37)
	mid := checkpointBytes(t, s1)
	// More acknowledged batches after the checkpoint.
	rng := rand.New(rand.NewSource(99))
	for i := 4; i < 9; i++ {
		pts := clusteredBatch(rng, int64(i)*10_000+5_000_000, 37)
		resp := postPointsSeq(t, ts.URL, pts, "script", uint64(i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	want := checkpointBytes(t, s1)

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ReadCheckpoint(bytes.NewReader(mid)); err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if _, err := s2.RecoverWAL(dir, nil); err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	if got := checkpointBytes(t, s2); !bytes.Equal(got, want) {
		t.Fatal("checkpoint + wal tail replay diverged from the uninterrupted leader")
	}
}

// TestFollowerDifferential is the replication acceptance test: a follower
// tailing the live log converges to bit-identical state — same /clusters,
// /stats, /events bodies, same checkpoint bytes — across datasets and
// both connectivity strategies, then takes over as leader and keeps the
// dedup window.
func TestFollowerDifferential(t *testing.T) {
	datasets := []struct {
		name  string
		seed  int64
		per   int // batch size; chosen to straddle stride boundaries
		count int
	}{
		{"clustered-straddling", 41, 37, 12},
		{"clustered-stride-aligned", 42, 50, 9},
		{"sparse-small-batches", 43, 7, 30},
	}
	for _, conn := range []core.ConnStrategy{core.ConnMSBFS, core.ConnDynamic} {
		for _, ds := range datasets {
			t.Run(fmt.Sprintf("%s/%s", conn, ds.name), func(t *testing.T) {
				cfg := testWALConfig()
				cfg.Connectivity = conn
				ts, leader, dir := newWALServer(t, cfg)

				// The follower tails while the leader is still ingesting —
				// the race detector watches this overlap.
				f, err := NewFollower(FollowerConfig{Server: cfg, WALDir: dir, Poll: time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				runDone := make(chan error, 1)
				go func() { runDone <- f.Run(ctx) }()

				ingestScript(t, ts.URL, ds.seed, ds.count, ds.per)

				// Wait for the follower to catch up to the leader's position.
				deadline := time.Now().Add(10 * time.Second)
				for {
					leader.mu.Lock()
					lead := leader.ingested
					leader.mu.Unlock()
					f.srv.mu.Lock()
					repl := f.srv.ingested
					f.srv.mu.Unlock()
					if repl == lead {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("follower stuck at %d/%d points", repl, lead)
					}
					time.Sleep(time.Millisecond)
				}

				fts := httptest.NewServer(f.Handler())
				defer fts.Close()
				for _, path := range []string{"/clusters", "/stats", "/events"} {
					lr, err := http.Get(ts.URL + path)
					if err != nil {
						t.Fatal(err)
					}
					fr, err := http.Get(fts.URL + path)
					if err != nil {
						t.Fatal(err)
					}
					lb, fb := readBody(t, lr), readBody(t, fr)
					if !bytes.Equal(lb, fb) {
						t.Fatalf("%s diverged:\nleader:   %s\nfollower: %s", path, lb, fb)
					}
				}
				if lw, fw := checkpointBytes(t, leader), checkpointBytes(t, f.srv); !bytes.Equal(lw, fw) {
					t.Fatalf("checkpoint bytes diverged: %d vs %d", len(lw), len(fw))
				}

				// Writes are refused until promotion...
				resp, err := http.Post(fts.URL+"/ingest", "application/json", strings.NewReader("[]"))
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusForbidden {
					t.Fatalf("pre-promotion write: status %d, want 403", resp.StatusCode)
				}
				resp.Body.Close()

				// ...then the follower becomes the leader: the old one stops,
				// promotion drains the log and reopens it for appending.
				ts.Close()
				resp, err = http.Post(fts.URL+"/promote", "application/json", nil)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("promote: status %d: %s", resp.StatusCode, readBody(t, resp))
				}
				resp.Body.Close()
				if err := <-runDone; err != nil {
					t.Fatalf("follower run: %v", err)
				}

				// A retry of the final pre-failover batch dedups against the
				// replicated window with the leader's original body.
				rng := rand.New(rand.NewSource(ds.seed))
				var last []ingestPoint
				for i := 0; i < ds.count; i++ {
					last = clusteredBatch(rng, int64(i)*10_000, ds.per)
				}
				resp = postPointsSeq(t, fts.URL, last, "script", uint64(ds.count))
				if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Disc-Deduped") != "1" {
					t.Fatalf("post-promotion retry: status %d deduped=%q: %s",
						resp.StatusCode, resp.Header.Get("X-Disc-Deduped"), readBody(t, resp))
				}
				resp.Body.Close()

				// And fresh ingest lands in the promoted leader's log.
				resp = postPointsSeq(t, fts.URL, clusteredBatch(rng, 77_000_000, ds.per), "script", uint64(ds.count+1))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("post-promotion ingest: status %d: %s", resp.StatusCode, readBody(t, resp))
				}
				resp.Body.Close()
			})
		}
	}
}

// --- bugfix sweep regressions --------------------------------------------

// TestMultiDeleteStreamRemovesDurableState is the regression for the
// delete/recreate resurrection bug: deleting a stream must remove its
// checkpoint generations and write-ahead log, so a tenant re-created
// under the same name starts empty instead of inheriting the deleted
// tenant's window.
func TestMultiDeleteStreamRemovesDurableState(t *testing.T) {
	ckptDir, walDir := t.TempDir(), t.TempDir()
	mcfg := testMultiConfig()
	mcfg.CheckpointDir = ckptDir
	mcfg.WALDir = walDir
	ts, m := newTestMulti(t, mcfg)

	mustCreateStream(t, ts, streamSpec{Name: "tenant"})
	rng := rand.New(rand.NewSource(51))
	resp := postStreamPoints(t, ts, "tenant", clusteredBatch(rng, 0, 250))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Force a final checkpoint for every stream with progress.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.RunCheckpoints(ctx)

	tenantCkpt := filepath.Join(ckptDir, "streams", "tenant")
	tenantWAL := filepath.Join(walDir, "streams", "tenant")
	if _, err := os.Stat(tenantCkpt); err != nil {
		t.Fatalf("tenant checkpoint dir missing before delete: %v", err)
	}
	if _, err := os.Stat(tenantWAL); err != nil {
		t.Fatalf("tenant wal dir missing before delete: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/streams/tenant", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	resp.Body.Close()

	if _, err := os.Stat(tenantCkpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tenant checkpoint dir survived deletion: %v", err)
	}
	if _, err := os.Stat(tenantWAL); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tenant wal dir survived deletion: %v", err)
	}
	// The shared roots (default stream's layout) must be untouched.
	if _, err := os.Stat(ckptDir); err != nil {
		t.Fatalf("checkpoint root damaged by tenant delete: %v", err)
	}

	// Recreate under the same name: a fresh, empty stream.
	mustCreateStream(t, ts, streamSpec{Name: "tenant"})
	var sr statsResponse
	getJSON(t, ts.URL+"/streams/tenant/stats", &sr)
	if sr.Ingested != 0 || sr.Resident != 0 {
		t.Fatalf("recreated stream inherited the deleted tenant's state: ingested=%d resident=%d",
			sr.Ingested, sr.Resident)
	}
	if resp := getJSON(t, ts.URL+"/streams/tenant/points/249", new(pointResponse)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted tenant's point still resolves: status %d", resp.StatusCode)
	}
}

// shortResponseWriter fails after writing a fixed number of body bytes —
// a client that disconnected mid-download.
type shortResponseWriter struct {
	http.ResponseWriter
	remaining int
}

func (s *shortResponseWriter) Write(b []byte) (int, error) {
	if len(b) > s.remaining {
		n := s.remaining
		s.remaining = 0
		s.ResponseWriter.Write(b[:n])
		return n, errors.New("connection reset by peer")
	}
	s.remaining -= len(b)
	return s.ResponseWriter.Write(b)
}

// TestCheckpointSaveShortWrite is the regression for the ignored-error
// checkpoint download: the handler must set Content-Length (so the client
// can detect the truncation) and treat the failed write as a logged event,
// not a crash or a second status code.
func TestCheckpointSaveShortWrite(t *testing.T) {
	_, s := newTestServer(t)
	rec := httptest.NewRecorder()
	sw := &shortResponseWriter{ResponseWriter: rec, remaining: 16}
	req := httptest.NewRequest(http.MethodGet, "/checkpoint", nil)
	s.handleCheckpointSave(sw, req) // must not panic
	if rec.Code != http.StatusOK {
		t.Fatalf("short write changed the status to %d", rec.Code)
	}
	cl := rec.Header().Get("Content-Length")
	if cl == "" {
		t.Fatal("checkpoint download without Content-Length: truncation would be undetectable")
	}
	want, err := strconv.Atoi(cl)
	if err != nil || want <= 0 {
		t.Fatalf("bad Content-Length %q", cl)
	}
	if rec.Body.Len() >= want {
		t.Fatalf("short writer delivered %d of %d bytes — the test harness is broken", rec.Body.Len(), want)
	}

	// The full-length path still matches Content-Length exactly.
	rec2 := httptest.NewRecorder()
	s.handleCheckpointSave(rec2, req)
	if got := strconv.Itoa(rec2.Body.Len()); got != rec2.Header().Get("Content-Length") {
		t.Fatalf("Content-Length %s != body %s", rec2.Header().Get("Content-Length"), got)
	}
}

// TestIngestWALFailureTurnsStreamReadOnly: a failed append must latch the
// stream read-only (503) instead of acknowledging batches replicas will
// never see.
func TestIngestWALFailureTurnsStreamReadOnly(t *testing.T) {
	cfg := testWALConfig()
	ts, s, dir := newWALServer(t, cfg)
	rng := rand.New(rand.NewSource(53))
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming batch: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Break the log out from under the server: close the handle and make
	// the directory unwritable by swapping it for a file.
	s.mu.Lock()
	s.wal.Close()
	s.mu.Unlock()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	resp = postPoints(t, ts, clusteredBatch(rng, 1000, 10))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append onto broken log: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	// The latch holds for subsequent requests without retrying the device.
	resp = postPoints(t, ts, clusteredBatch(rng, 2000, 10))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("latched broken log: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}
