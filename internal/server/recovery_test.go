package server

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"

	"disc/internal/ckpt"
	"disc/internal/model"
)

// These tests exercise the full durability loop: a serving process writes
// checkpoints through a ckpt.Store, "dies" (we simply abandon it), and a
// fresh process recovers from disk. The recovered service must be
// bit-identical in engine state and stream position to the one that died.

// checkpointTo writes the server's checkpoint as the next store generation.
func checkpointTo(t *testing.T, store *ckpt.Store, s *Server) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	gen, err := store.Save(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// recoverServer opens the directory as a fresh process would and restores
// the newest valid generation into a brand-new server.
func recoverServer(t *testing.T, dir string) (*Server, uint64) {
	t.Helper()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload, gen, err := store.Recover()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  200,
		Stride:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadCheckpoint(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	return s, gen
}

// TestKillAndRestartRecovery: ingest, checkpoint durably, abandon the
// server, recover from disk, and assert the recovered engine and stream
// position are identical — then keep streaming to prove the recovered
// service is live, not just a lookalike.
func TestKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	ts, s1 := newTestServer(t)
	rng := rand.New(rand.NewSource(21))
	postPoints(t, ts, clusteredBatch(rng, 0, 350)).Body.Close()
	checkpointTo(t, store, s1)

	preSnap := s1.eng.Snapshot()
	preStats := s1.eng.Stats()
	preIngested := s1.ingested
	ts.Close() // the "crash"

	s2, gen := recoverServer(t, dir)
	if gen != 1 {
		t.Fatalf("recovered generation %d, want 1", gen)
	}
	if !reflect.DeepEqual(s2.eng.Snapshot(), preSnap) {
		t.Fatal("recovered engine snapshot differs from pre-crash state")
	}
	if s2.eng.Stats() != preStats {
		t.Fatalf("recovered stats %+v, want %+v", s2.eng.Stats(), preStats)
	}
	if s2.ingested != preIngested {
		t.Fatalf("recovered ingested %d, want %d", s2.ingested, preIngested)
	}
	if got := s2.ingestMx.Value(); got != int64(preIngested) {
		t.Fatalf("recovered ingest counter %d, want %d", got, preIngested)
	}

	// The recovered service keeps clustering: stream more points through
	// its HTTP surface and watch strides advance.
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp := postPoints(t, ts2, clusteredBatch(rng, 1000, 100))
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-recovery ingest status %d", resp.StatusCode)
	}
	if after := s2.eng.Stats(); after.Strides <= preStats.Strides {
		t.Fatalf("recovered service stuck at stride %d", after.Strides)
	}
}

// TestRecoveryFallsBackToPreviousGeneration: with two durable generations
// on disk and the newest corrupted (bit flip, then truncations at several
// offsets), recovery must land on the older generation and restore the
// state checkpointed at that earlier moment.
func TestRecoveryFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	ts, s1 := newTestServer(t)
	rng := rand.New(rand.NewSource(22))
	postPoints(t, ts, clusteredBatch(rng, 0, 250)).Body.Close()
	checkpointTo(t, store, s1)
	genOneSnap := s1.eng.Snapshot() // state the fallback must restore

	postPoints(t, ts, clusteredBatch(rng, 250, 100)).Body.Close()
	gen2 := checkpointTo(t, store, s1)
	ts.Close()

	gen2Path := dir + "/" + "ckpt-0000000000000002.disc"
	pristine, err := os.ReadFile(gen2Path)
	if err != nil {
		t.Fatal(err)
	}
	_ = gen2

	corruptions := []struct {
		name string
		mut  func() []byte
	}{
		{"bit flip in payload", func() []byte {
			b := append([]byte(nil), pristine...)
			b[ckpt.HeaderSize+len(b)/2] ^= 0x10
			return b
		}},
		{"truncated header", func() []byte { return pristine[:ckpt.HeaderSize-3] }},
		{"truncated payload", func() []byte { return pristine[:len(pristine)-7] }},
		{"empty file", func() []byte { return nil }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			if err := os.WriteFile(gen2Path, c.mut(), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, gen := recoverServer(t, dir)
			if gen != 1 {
				t.Fatalf("recovered generation %d, want fallback to 1", gen)
			}
			if !reflect.DeepEqual(s2.eng.Snapshot(), genOneSnap) {
				t.Fatal("fallback recovery does not restore the older checkpoint's state")
			}
		})
	}

	// With the newest generation intact again, recovery prefers it.
	if err := os.WriteFile(gen2Path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, gen := recoverServer(t, dir); gen != 2 {
		t.Fatalf("recovered generation %d with both intact, want 2", gen)
	}
}

// TestRunnerCheckpointsLiveServer wires the real Runner to a real Server —
// the same coupling cmd/discserver uses — and verifies CheckpointNow
// produces a generation a fresh process can recover.
func TestRunnerCheckpointsLiveServer(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	ts, s1 := newTestServer(t)
	rng := rand.New(rand.NewSource(23))
	postPoints(t, ts, clusteredBatch(rng, 0, 300)).Body.Close()

	runner := ckpt.NewRunner(store, s1, 1)
	wrote, err := runner.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Strides() == 0 {
		t.Fatal("test server never advanced a stride; checkpoint would be vacuous")
	}
	preSnap := s1.eng.Snapshot()
	ts.Close()

	s2, gen := recoverServer(t, dir)
	if gen != wrote {
		t.Fatalf("recovered generation %d, runner wrote %d", gen, wrote)
	}
	if !reflect.DeepEqual(s2.eng.Snapshot(), preSnap) {
		t.Fatal("runner-written checkpoint restores different engine state")
	}
}
