// Write-ahead logging, idempotent ingest, and replay: the server-side
// half of the exactly-once pipeline. Every acknowledged ingest batch is
// encoded as one WAL record — the batch's points, its stream position,
// and (when the client sent X-Disc-Seq) the sequence number plus the
// exact 200 body that acknowledged it — and fsynced before the response
// leaves the mutex. Replay pushes the same points through a fresh slider
// and engine, so stride boundaries, cluster labels, events, and the
// dedup window all recompute deterministically: a follower (or a
// restarted leader) converges to bit-identical state.
//
// Records are batch-grained rather than stride-grained so that a batch
// straddling a stride boundary is never half-durable: marking its
// sequence number applied while its pending tail points were not yet
// logged would make the dedup window swallow the client's retry and
// lose the tail forever. The per-stride guarantee the WAL exists for
// still holds — a stride only completes inside some acknowledged batch,
// and every acknowledged batch is durable before its 200.
package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"sort"

	"disc/internal/ckpt"
	"disc/internal/model"
)

// Dedup-window defaults: how many recent sequence numbers (with their
// original responses) are remembered per client, and how many clients.
const (
	DefaultSeqWindow  = 32
	DefaultSeqClients = 256
)

// walRecord is the payload of one WAL record: one acknowledged ingest
// batch. Start is the stream position (points applied since the stream
// began) before the batch; Points is the entire batch in arrival order;
// Resp is the exact 200 body the batch was acknowledged with, replayed
// verbatim when a deduplicated retry arrives.
type walRecord struct {
	Start  uint64
	Client string
	Seq    uint64
	HasSeq bool
	Points []model.Point
	Resp   []byte
}

// encodeWALRecord gobs one record as a self-contained blob (each record
// carries its own type preamble, so replay can start at any record).
func encodeWALRecord(rec *walRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("encoding wal record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeWALRecord(b []byte) (*walRecord, error) {
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("decoding wal record: %w", err)
	}
	return &rec, nil
}

// seqEntry is one remembered (sequence number, original response) pair.
type seqEntry struct {
	Seq  uint64
	Resp []byte
}

// clientSeqs is one client's bounded dedup window: entries ascending by
// sequence number, LastUsed the stream position of the client's newest
// acknowledged batch (the deterministic eviction key).
type clientSeqs struct {
	LastUsed uint64
	Entries  []seqEntry
}

// persistedClient is the checkpoint wire form of one client's window.
// Persisted sorted by client name so checkpoint bytes are deterministic.
type persistedClient struct {
	Client   string
	LastUsed uint64
	Entries  []seqEntry
}

// seqTable is the per-client dedup state. All methods require the
// server mutex (or exclusive access).
type seqTable struct {
	window  int // sequence numbers remembered per client
	clients int // clients tracked before deterministic eviction
	m       map[string]*clientSeqs
}

func newSeqTable(window, clients int) *seqTable {
	if window <= 0 {
		window = DefaultSeqWindow
	}
	if clients <= 0 {
		clients = DefaultSeqClients
	}
	return &seqTable{window: window, clients: clients, m: make(map[string]*clientSeqs)}
}

// lookup classifies a sequence number: hit (already applied — replay
// resp), tooOld (below the remembered window, so dedup can no longer be
// proven), or neither (new — apply it).
func (t *seqTable) lookup(client string, seq uint64) (resp []byte, hit, tooOld bool) {
	cs := t.m[client]
	if cs == nil || len(cs.Entries) == 0 {
		return nil, false, false
	}
	i := sort.Search(len(cs.Entries), func(i int) bool { return cs.Entries[i].Seq >= seq })
	if i < len(cs.Entries) && cs.Entries[i].Seq == seq {
		return cs.Entries[i].Resp, true, false
	}
	if seq < cs.Entries[0].Seq {
		return nil, false, true
	}
	return nil, false, false
}

// record remembers an acknowledged (seq, resp) for client, trimming the
// window to its bound and evicting the least-recently-used client at the
// client cap. lastUsed is the stream position after the batch — a value
// both the live path and replay compute identically, which is what makes
// eviction order (and therefore checkpoint bytes) deterministic across
// leader, restarted leader, and follower.
func (t *seqTable) record(client string, seq uint64, resp []byte, lastUsed uint64) {
	cs := t.m[client]
	if cs == nil {
		if len(t.m) >= t.clients {
			t.evictOldest()
		}
		cs = &clientSeqs{}
		t.m[client] = cs
	}
	if lastUsed > cs.LastUsed {
		cs.LastUsed = lastUsed
	}
	i := sort.Search(len(cs.Entries), func(i int) bool { return cs.Entries[i].Seq >= seq })
	if i < len(cs.Entries) && cs.Entries[i].Seq == seq {
		return // already remembered (replay over a checkpointed entry)
	}
	cs.Entries = append(cs.Entries, seqEntry{})
	copy(cs.Entries[i+1:], cs.Entries[i:])
	cs.Entries[i] = seqEntry{Seq: seq, Resp: resp}
	if n := len(cs.Entries) - t.window; n > 0 {
		cs.Entries = append(cs.Entries[:0], cs.Entries[n:]...)
	}
}

// evictOldest drops the client with the smallest LastUsed (ties broken
// by name, keeping eviction deterministic).
func (t *seqTable) evictOldest() {
	var victim string
	var vLast uint64
	first := true
	for name, cs := range t.m {
		if first || cs.LastUsed < vLast || (cs.LastUsed == vLast && name < victim) {
			victim, vLast, first = name, cs.LastUsed, false
		}
	}
	if !first {
		delete(t.m, victim)
	}
}

// persist flattens the table sorted by client name — the deterministic
// form the checkpoint envelope carries.
func (t *seqTable) persist() []persistedClient {
	if len(t.m) == 0 {
		return nil
	}
	out := make([]persistedClient, 0, len(t.m))
	for name, cs := range t.m {
		out = append(out, persistedClient{
			Client:   name,
			LastUsed: cs.LastUsed,
			Entries:  append([]seqEntry(nil), cs.Entries...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// restore replaces the table's contents from a checkpoint.
func (t *seqTable) restore(pcs []persistedClient) {
	t.m = make(map[string]*clientSeqs, len(pcs))
	for _, pc := range pcs {
		t.m[pc.Client] = &clientSeqs{
			LastUsed: pc.LastUsed,
			Entries:  append([]seqEntry(nil), pc.Entries...),
		}
	}
}

// AttachWAL attaches a write-ahead log to the ingest path: every
// acknowledged batch is appended and fsynced before its response.
// Callers attach after any recovery replay (RecoverWAL), so the log is
// positioned at the stream's durable tail.
func (s *Server) AttachWAL(w *ckpt.WAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = w
	s.walBroken = false
}

// walAppend encodes and durably appends one record, marking the stream
// broken on failure: acknowledging later batches after a lost record
// would leave replicas silently divergent, so a failed append turns the
// stream read-only (ingest answers 503) until the operator intervenes.
// Caller holds s.mu.
func (s *Server) walAppend(rec *walRecord) error {
	if s.wal == nil {
		return nil
	}
	b, err := encodeWALRecord(rec)
	if err == nil {
		err = s.wal.Append(rec.Start, b)
	}
	if err == nil {
		err = s.wal.Sync()
	}
	if err != nil {
		s.walBroken = true
		slog.Error("server: wal append failed; stream is now read-only", "err", err)
	}
	return err
}

// streamPos returns the stream position of the last stride boundary for
// the server's current engine state: the number of points that are
// durable in window terms (pending partial strides excluded).
func (s *Server) streamPos() uint64 {
	strides := uint64(s.eng.Stats().Strides)
	if strides == 0 {
		return 0
	}
	return uint64(s.cfg.Window) + (strides-1)*uint64(s.cfg.Stride)
}

// beginWALReplay aligns the ingested counter with the durable stream
// position before records are replayed. A checkpoint stores the ingested
// counter as of snapshot time — including pending points it dropped —
// so replaying the records that carry those points again would double
// count; resetting to the stride-boundary position makes replay
// re-increment through them exactly once. Caller holds s.mu.
func (s *Server) beginWALReplay() uint64 {
	pos := s.streamPos()
	s.ingested = pos
	if s.sm.Dedicated {
		s.ingestMx.Set(int64(pos))
	}
	return pos
}

// applyRecord replays one WAL record: points the stream has already
// applied (below s.ingested) are skipped, the rest are pushed through
// the slider and engine exactly as live ingest would, and the record's
// sequence number is folded into the dedup window. Caller holds s.mu.
func (s *Server) applyRecord(rec *walRecord) error {
	pos := s.ingested
	if rec.Start > pos {
		return fmt.Errorf("wal gap: record starts at position %d but the stream has only applied %d", rec.Start, pos)
	}
	if skip := pos - rec.Start; skip < uint64(len(rec.Points)) {
		for _, p := range rec.Points[skip:] {
			if step := s.slider.Push(p); step != nil {
				if err := s.safeAdvance(step, nil, nil); err != nil {
					s.slider.Rewind(step)
					return fmt.Errorf("replaying stride at position %d: %w", s.ingested, err)
				}
				s.ingested++
				s.ingestMx.Inc()
				s.publish()
				continue
			}
			s.ingested++
			s.ingestMx.Inc()
		}
	}
	if rec.HasSeq {
		s.seqs.record(rec.Client, rec.Seq, rec.Resp, rec.Start+uint64(len(rec.Points)))
	}
	s.pending.Store(int64(s.slider.PendingLen()))
	return nil
}

// walRecordMaxPayload bounds one decoded WAL record: a batch is capped
// at MaxIngestBytes of JSON, and its gob form (points plus the stored
// response body) stays within a small multiple of that.
func (s *Server) walRecordMaxPayload() int64 {
	return 4*s.cfg.MaxIngestBytes + (1 << 20)
}

// replayWAL drains records from r into the server until the log ends
// (ckpt.ErrWALWait) or turns definitively corrupt — corruption stops
// replay cleanly at the last valid record, which is exactly the boundary
// OpenWAL repairs the log to. It returns the number of records applied.
// Caller holds s.mu.
func (s *Server) replayWAL(r *ckpt.WALReader, logger *slog.Logger) (int, error) {
	applied := 0
	for {
		_, payload, err := r.Next()
		if err != nil {
			if errors.Is(err, ckpt.ErrWALWait) {
				return applied, nil
			}
			if errors.Is(err, ckpt.ErrWALCorrupt) {
				if logger != nil {
					logger.Warn("wal replay stopped at corrupt record; later records are unrecoverable",
						"records_applied", applied, "err", err)
				}
				return applied, nil
			}
			return applied, err
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			if logger != nil {
				logger.Warn("wal replay stopped at undecodable record", "records_applied", applied, "err", err)
			}
			return applied, nil
		}
		if err := s.applyRecord(rec); err != nil {
			return applied, err
		}
		applied++
	}
}

// RecoverWAL replays the log in dir from the server's durable stream
// position — after a checkpoint restore (or from the stream's beginning
// when no checkpoint existed) — bringing back every acknowledged batch
// the newest checkpoint had not yet captured, pending partial strides
// included. Call it before AttachWAL; the open-for-append tail repair
// and replay stop at the same boundary, so the log and the recovered
// state agree.
func (s *Server) RecoverWAL(dir string, logger *slog.Logger) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pos := s.beginWALReplay()
	r := ckpt.OpenWALReader(dir, pos, s.walRecordMaxPayload())
	defer r.Close()
	return s.replayWAL(r, logger)
}
