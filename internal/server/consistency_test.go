package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"disc/internal/model"
	"disc/internal/trace"
)

// takeCheckpoint ingests n points into a throwaway server with the default
// test config and returns its checkpoint blob.
func takeCheckpoint(t *testing.T, seed int64, n int) []byte {
	t.Helper()
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(seed))
	resp := postPoints(t, ts, clusteredBatch(rng, 0, n))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint source ingest status %d", resp.StatusCode)
	}
	cresp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint save status %d", cresp.StatusCode)
	}
	return blob
}

// TestServeViewSingleLoadUnderRestore: a checkpoint restored between a
// read's view pin and its post-response freshness sample must not corrupt
// either the response or the metrics attributed to it. The handler pins one
// view; a restore that lands mid-request installs a view from a different
// history (here: one with MORE strides), and the lag instrument must not
// diff stride counters across that epoch boundary. Before the fix the
// sample charged this read with a fabricated cross-epoch lag.
func TestServeViewSingleLoadUnderRestore(t *testing.T) {
	blob := takeCheckpoint(t, 81, 400) // 5 strides of history

	s, err := New(Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  200,
		Stride:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(s.Handler())
	t.Cleanup(sts.Close)
	rng := rand.New(rand.NewSource(82))
	resp := postPoints(t, sts, clusteredBatch(rng, 10_000, 200)) // 1 stride (the window fill)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Drive serveView directly with an inner handler that restores the
	// 5-stride checkpoint mid-request — exactly the window between the
	// view pin and the freshness sample.
	preETag := s.view.Load().etag
	h := s.serveView("stats", func(v *publishedView, w http.ResponseWriter, r *http.Request) {
		if _, err := s.ReadCheckpoint(bytes.NewReader(blob)); err != nil {
			t.Errorf("mid-request restore: %v", err)
		}
		s.handleStats(v, w, r)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))

	// Response integrity: everything came from the pinned pre-restore view.
	if got := rec.Header().Get("X-Disc-Stride"); got != "1" {
		t.Fatalf("X-Disc-Stride = %s, want the pinned view's 1", got)
	}
	if got := rec.Header().Get("ETag"); got != preETag {
		t.Fatalf("ETag = %s, want pinned %s", got, preETag)
	}
	var sr statsResponse
	if err := json.NewDecoder(rec.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Ingested != 200 || sr.Stats.Strides != 1 {
		t.Fatalf("body from post-restore view: %+v, want pre-restore ingested=200 strides=1", sr)
	}

	// Metrics integrity: no fabricated lag. The restored view has strides=5
	// > 1; an epoch-blind sampler records lag 4 here.
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disc_query_stride_lag_sum 0") {
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "disc_query_stride_lag_sum") {
				t.Fatalf("cross-epoch restore fabricated stride lag: %s", line)
			}
		}
		t.Fatal("disc_query_stride_lag_sum not rendered")
	}
}

// TestRestoreReadConsistencyUnderLoad hammers the read path while restores
// alternate between two checkpoints of different stream positions: every
// response's X-Disc-Stride header, ETag, and body must describe one single
// view — a reader must never observe a restored body under a pre-restore
// stride header or vice versa. Run under -race this also proves the
// slider/view/trace swap in ReadCheckpoint is safe against concurrent
// readers.
func TestRestoreReadConsistencyUnderLoad(t *testing.T) {
	blobA := takeCheckpoint(t, 91, 250) // 2 strides, ingested 250
	blobB := takeCheckpoint(t, 92, 400) // 5 strides, ingested 400
	ingestedByStride := map[uint64]uint64{2: 250, 5: 400}

	ts, _ := newTestServer(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/stats")
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				hdr := resp.Header.Get("X-Disc-Stride")
				etag := resp.Header.Get("ETag")
				var sr statsResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				strides, _ := strconv.ParseUint(hdr, 10, 64)
				if uint64(sr.Stats.Strides) != strides {
					t.Errorf("header stride %s but body stride %d — mixed worlds", hdr, sr.Stats.Strides)
					return
				}
				if !strings.HasSuffix(etag, fmt.Sprintf("-s%d\"", strides)) {
					t.Errorf("ETag %s does not match served stride %d", etag, strides)
					return
				}
				if strides != 0 { // pre-first-restore empty view
					if want := ingestedByStride[strides]; sr.Ingested != want {
						t.Errorf("stride %d view reports ingested %d, want %d — restored body under stale counters",
							strides, sr.Ingested, want)
						return
					}
				}
			}
		}()
	}

	for i := 0; i < 30 && !t.Failed(); i++ {
		blob := blobA
		if i%2 == 1 {
			blob = blobB
		}
		resp, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restore %d status %d", i, resp.StatusCode)
		}
	}
	time.Sleep(10 * time.Millisecond) // let readers overlap the final world
	close(stop)
	wg.Wait()
}

// TestRestoreClearsStrideTraceContext: the trace context of the most
// recent pre-restore stride must not survive a restore — the checkpoint
// runner would otherwise stitch its next write span onto a trace of
// strides the restore just discarded. Before the fix TraceContext kept
// returning the stale pre-restore context.
func TestRestoreClearsStrideTraceContext(t *testing.T) {
	blob := takeCheckpoint(t, 93, 250)

	s, err := New(Config{
		Cluster: model.Config{Dims: 2, Eps: 2, MinPts: 4},
		Window:  200,
		Stride:  50,
		Tracing: &TraceConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	rng := rand.New(rand.NewSource(94))
	resp := postPoints(t, ts, clusteredBatch(rng, 50_000, 200))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if s.TraceContext() == (trace.SpanContext{}) {
		t.Fatal("no stride trace context after a traced stride")
	}

	if _, err := s.ReadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if got := s.TraceContext(); got != (trace.SpanContext{}) {
		t.Fatalf("stale pre-restore stride trace context survived the restore: %+v", got)
	}
}
