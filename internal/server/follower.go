// Follower replay: a read-only replica that tails a leader's write-ahead
// log and replays every acknowledged batch through its own slider and
// engine. Because DISC is deterministic — same points in, same strides
// out — the follower's published views (assignments, census, stats,
// events) are bit-identical to the leader's at every stride boundary it
// has replayed; the full GET surface serves from those views exactly as
// on the leader. Promote turns the follower into a leader: it drains the
// remaining log, repairs any torn tail, reopens the log for appending,
// and enables the write path.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"disc/internal/ckpt"
	"disc/internal/obs"
)

// FollowerConfig configures a read-only replica.
type FollowerConfig struct {
	// Server is the stream configuration, which must match the leader's
	// (a mismatched window or stride would replay the same points into
	// different strides).
	Server Config
	// WALDir is the leader's write-ahead log directory (shared
	// filesystem or a synchronized copy).
	WALDir string
	// CheckpointDir, when set, restores the newest valid checkpoint
	// generation before tailing, so the follower only replays the log's
	// tail instead of the stream's whole history.
	CheckpointDir string
	// Poll is how often the tailer re-checks the log when it is caught
	// up; 0 selects 25ms.
	Poll time.Duration
	// Logger receives replay and promotion events; nil discards them.
	Logger *slog.Logger
}

// Follower wraps a Server whose state is driven by WAL replay instead of
// HTTP ingest. Create with NewFollower, drive with Run, expose with
// Handler, and call Promote (or POST /promote) to take over as leader.
type Follower struct {
	srv    *Server
	cfg    FollowerConfig
	rep    *obs.ReplicationMetrics
	logger *slog.Logger

	promoted atomic.Bool

	mu      sync.Mutex // guards reader/cancel/done across Run and Promote
	reader  *ckpt.WALReader
	cancel  context.CancelFunc
	done    chan struct{}
	running bool
}

// NewFollower builds the replica and, when CheckpointDir is set,
// restores it from the newest valid checkpoint generation.
func NewFollower(fc FollowerConfig) (*Follower, error) {
	if fc.WALDir == "" {
		return nil, errors.New("follower: WALDir is required")
	}
	if fc.Poll <= 0 {
		fc.Poll = 25 * time.Millisecond
	}
	srv, err := New(fc.Server)
	if err != nil {
		return nil, err
	}
	f := &Follower{srv: srv, cfg: fc, logger: fc.Logger,
		rep: obs.NewReplicationMetrics(srv.Registry())}
	if fc.CheckpointDir != "" {
		store, err := ckpt.Open(fc.CheckpointDir,
			ckpt.WithMaxPayload(srv.cfg.MaxCheckpointBytes), ckpt.WithStoreLogger(fc.Logger))
		if err != nil {
			return nil, fmt.Errorf("follower: opening checkpoint store: %w", err)
		}
		payload, gen, err := store.Recover()
		switch {
		case err == nil:
			restored, err := srv.ReadCheckpoint(bytes.NewReader(payload))
			if err != nil {
				return nil, fmt.Errorf("follower: checkpoint generation %d does not restore: %w", gen, err)
			}
			if fc.Logger != nil {
				fc.Logger.Info("follower restored from checkpoint",
					"generation", gen, "window_points", restored, "stride", srv.Strides())
			}
		case errors.Is(err, ckpt.ErrNoCheckpoint), errors.Is(err, ckpt.ErrNoValidCheckpoint):
			if fc.Logger != nil {
				fc.Logger.Info("follower starting from the log's beginning", "reason", err)
			}
		default:
			return nil, fmt.Errorf("follower: checkpoint recovery: %w", err)
		}
	}
	srv.SetReady(true)
	return f, nil
}

// Server exposes the underlying replica server (tests and the serving
// binary read its views and registry through it).
func (f *Follower) Server() *Server { return f.srv }

// Promoted reports whether the follower has taken over as leader.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Run tails the log until ctx is canceled or the log turns definitively
// corrupt, applying each record as it becomes durable. It is meant to be
// run in its own goroutine; GET handlers serve concurrently from the
// published views throughout.
func (f *Follower) Run(ctx context.Context) error {
	f.mu.Lock()
	if f.running || f.promoted.Load() {
		f.mu.Unlock()
		return errors.New("follower: already running or promoted")
	}
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	s := f.srv
	s.mu.Lock()
	pos := s.beginWALReplay()
	s.mu.Unlock()
	r := ckpt.OpenWALReader(f.cfg.WALDir, pos, s.walRecordMaxPayload())
	f.reader, f.cancel, f.done, f.running = r, cancel, done, true
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.running = false
		f.mu.Unlock()
	}()
	// Registered after the f.mu-taking defer so it runs first: Promote
	// holds f.mu while waiting on done, so closing done must never itself
	// wait on f.mu.
	defer close(done)
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		applied, err := f.drain(r)
		if applied > 0 {
			continue // keep draining while records flow
		}
		if err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(f.cfg.Poll):
		}
	}
}

// drain applies records until the log is exhausted (nil error) or
// definitively corrupt. Corruption while the leader is alive is fatal
// for the replica — it must not guess past damage the leader may still
// be extending the log beyond.
func (f *Follower) drain(r *ckpt.WALReader) (int, error) {
	applied := 0
	for {
		_, payload, err := r.Next()
		if err != nil {
			if errors.Is(err, ckpt.ErrWALWait) {
				return applied, nil
			}
			if f.logger != nil {
				f.logger.Error("follower: wal tail failed", "err", err)
			}
			return applied, err
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			if f.logger != nil {
				f.logger.Error("follower: undecodable wal record", "err", err)
			}
			return applied, err
		}
		s := f.srv
		s.mu.Lock()
		recEnd := rec.Start + uint64(len(rec.Points))
		if s.cfg.Stride > 0 && recEnd > s.ingested {
			f.rep.Lag.Set(float64(recEnd-s.ingested) / float64(s.cfg.Stride))
		}
		aerr := s.applyRecord(rec)
		if aerr == nil {
			f.rep.Lag.Set(0)
		}
		s.mu.Unlock()
		if aerr != nil {
			if f.logger != nil {
				f.logger.Error("follower: replaying wal record", "err", aerr)
			}
			return applied, aerr
		}
		applied++
		f.rep.Records.Inc()
		f.rep.Points.Add(int64(len(rec.Points)))
	}
}

// Promote turns the follower into a leader: stop tailing, drain whatever
// complete records remain, repair the log's torn tail (if the dead
// leader was mid-append), reopen it for appending, and enable the write
// path. Only call it once the old leader is known dead — two appenders
// on one log would interleave corruptly.
func (f *Follower) Promote() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted.Load() {
		return nil
	}
	if f.cancel != nil {
		f.cancel()
		<-f.done
	}
	if f.reader == nil {
		// Run never started; position the replay cursor now.
		s := f.srv
		s.mu.Lock()
		pos := s.beginWALReplay()
		s.mu.Unlock()
		f.reader = ckpt.OpenWALReader(f.cfg.WALDir, pos, s.walRecordMaxPayload())
	}
	// Final drain: everything completely framed gets applied; a torn or
	// corrupt tail stops the drain at exactly the boundary OpenWAL will
	// repair the log to.
	s := f.srv
	s.mu.Lock()
	if _, err := s.replayWAL(f.reader, f.logger); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("follower: draining log for promotion: %w", err)
	}
	s.mu.Unlock()
	f.reader.Close()
	w, err := ckpt.OpenWAL(f.cfg.WALDir,
		ckpt.WithWALObserver(s.sm.WAL), ckpt.WithWALLogger(f.logger),
		ckpt.WithWALMaxPayload(s.walRecordMaxPayload()))
	if err != nil {
		return fmt.Errorf("follower: reopening log for append: %w", err)
	}
	s.AttachWAL(w)
	f.promoted.Store(true)
	if f.logger != nil {
		f.logger.Info("follower promoted to leader", "stride", s.Strides())
	}
	return nil
}

// Handler exposes the replica: the full GET surface of the underlying
// server, POST /promote, and — until promotion — 403 on every other
// write. After promotion the handler is the full leader surface.
func (f *Follower) Handler() http.Handler {
	inner := f.srv.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/promote" {
			if err := f.Promote(); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, map[string]any{"promoted": true, "strides": f.srv.Strides()})
			return
		}
		if !f.promoted.Load() && r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "read-only follower: POST /promote to take over as leader", http.StatusForbidden)
			return
		}
		inner.ServeHTTP(w, r)
	})
}
