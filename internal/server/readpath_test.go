package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"disc/internal/window"
)

// sliderEngineAgree asserts the slider's window and the engine's snapshot
// describe the same point set — the invariant the rollback fix protects.
func sliderEngineAgree(t *testing.T, s *Server) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.eng.Snapshot()
	win := s.slider.Window()
	if len(win) != len(snap) {
		t.Fatalf("slider window has %d points, engine %d", len(win), len(snap))
	}
	for _, p := range win {
		if _, ok := snap[p.ID]; !ok {
			t.Fatalf("slider holds id %d, engine does not", p.ID)
		}
	}
}

// TestAdvanceRejectionRollsBackSlider: when the engine refuses a stride
// mid-batch, the slider must rewind to the engine's stream position. On
// pre-fix code the slider kept the stride and ran one window ahead of the
// engine forever; this asserts the two agree after the 409 and that the
// stream recovers cleanly.
func TestAdvanceRejectionRollsBackSlider(t *testing.T) {
	ts, s := newTestServer(t)
	rng := rand.New(rand.NewSource(20))

	s.testAdvanceErr = func(*window.Step) error {
		return errors.New("injected advance failure")
	}
	// The very first stride (the 200-point window fill) fails: 199 points
	// applied, the triggering 200th rolled back out.
	resp := postPoints(t, ts, clusteredBatch(rng, 0, 200))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rejected ingest status %d, want 409", resp.StatusCode)
	}
	var ie ingestError
	if err := json.NewDecoder(resp.Body).Decode(&ie); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ie.Applied != 199 {
		t.Fatalf("applied = %d, want 199", ie.Applied)
	}
	sliderEngineAgree(t, s)

	// With the failure cleared, one replacement point completes the fill
	// exactly as if the rejected trigger never arrived.
	s.testAdvanceErr = nil
	resp = postPoints(t, ts, clusteredBatch(rng, 500, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery ingest status %d, want 200", resp.StatusCode)
	}
	var ir ingestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if ir.Strides != 1 || ir.Window != 200 {
		t.Fatalf("recovery response %+v, want strides=1 window=200", ir)
	}
	sliderEngineAgree(t, s)
}

// TestDuplicateIngestRejectedUpFront: ids duplicated against the resident
// window or within the batch itself are caught before any point is
// pushed — 400 with zero side effects.
func TestDuplicateIngestRejectedUpFront(t *testing.T) {
	ts, s := newTestServer(t)
	rng := rand.New(rand.NewSource(21))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()

	// Batch overlapping the resident window (ids 150-249).
	resp := postPoints(t, ts, clusteredBatch(rng, 150, 100))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("window-duplicate batch status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Ingested != 200 {
		t.Fatalf("rejected batch moved ingested to %d, want 200", sr.Ingested)
	}
	sliderEngineAgree(t, s)

	// Batch duplicating an id against itself.
	dup := clusteredBatch(rng, 300, 3)
	dup[2].ID = dup[0].ID
	resp = postPoints(t, ts, dup)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("intra-batch duplicate status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// A clean continuation still works.
	resp = postPoints(t, ts, clusteredBatch(rng, 300, 100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean continuation status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	sliderEngineAgree(t, s)
}

// TestIngestRejectsNonFiniteCoords: NaN and ±Inf coordinates fail
// validation (they poison distance comparisons and R-tree bounds).
// JSON itself cannot carry them, so the wire-level check is the raw-body
// decode rejection; the validator is exercised directly for the values.
func TestIngestRejectsNonFiniteCoords(t *testing.T) {
	ts, s := newTestServer(t)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		batch := []ingestPoint{{ID: 1, Coords: []float64{bad, 0}}}
		if msg := s.validateBatch(batch); msg == "" {
			t.Fatalf("coordinate %v passed validation", bad)
		}
	}
	if msg := s.validateBatch([]ingestPoint{{ID: 1, Coords: []float64{1, 2}}}); msg != "" {
		t.Fatalf("finite point rejected: %s", msg)
	}
	// Over the wire, an out-of-range literal must die at decode with 400.
	resp, err := http.Post(ts.URL+"/ingest", "application/json",
		bytes.NewReader([]byte(`[{"id":1,"time":0,"coords":[1e999,0]}]`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1e999 coordinate status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestCheckpointRejectsCorruptWindow: a checkpoint whose window payload
// smuggles a non-finite coordinate or a duplicated id must be refused with
// 400 — gob, unlike JSON, encodes NaN happily, so this is the one wire
// path that could plant one in the window.
func TestCheckpointRejectsCorruptWindow(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(22))
	postPoints(t, ts, clusteredBatch(rng, 0, 250)).Body.Close()
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	corrupt := func(name string, mutate func(env *checkpointEnvelope)) {
		var env checkpointEnvelope
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&env); err != nil {
			t.Fatal(err)
		}
		mutate(&env)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			t.Fatal(err)
		}
		r, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: restore status %d, want 400", name, r.StatusCode)
		}
	}
	corrupt("NaN coordinate", func(env *checkpointEnvelope) {
		env.Window[7].Pos[0] = math.NaN()
	})
	corrupt("Inf coordinate", func(env *checkpointEnvelope) {
		env.Window[7].Pos[1] = math.Inf(-1)
	})
	corrupt("duplicate id", func(env *checkpointEnvelope) {
		env.Window[7].ID = env.Window[8].ID
	})

	// The pristine checkpoint still restores.
	r, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pristine restore status %d, want 200", r.StatusCode)
	}
	r.Body.Close()
}

// failingWriter counts WriteHeader calls and fails every body write,
// simulating a client that hung up mid-response.
type failingWriter struct {
	header      http.Header
	headerCalls []int
}

func (f *failingWriter) Header() http.Header       { return f.header }
func (f *failingWriter) WriteHeader(code int)      { f.headerCalls = append(f.headerCalls, code) }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestWriteJSONSingleStatus: writeJSON must never attempt a second
// WriteHeader. Pre-fix it encoded straight into the ResponseWriter, so a
// write error produced an implicit 200 followed by http.Error's 500.
func TestWriteJSONSingleStatus(t *testing.T) {
	fw := &failingWriter{header: http.Header{}}
	writeJSON(fw, map[string]int{"x": 1})
	if len(fw.headerCalls) != 1 {
		t.Fatalf("WriteHeader called %d times (%v), want exactly 1", len(fw.headerCalls), fw.headerCalls)
	}
	if fw.headerCalls[0] != http.StatusOK {
		t.Fatalf("status %d, want 200", fw.headerCalls[0])
	}
	// An unencodable value becomes a clean 500, still a single status.
	fw2 := &failingWriter{header: http.Header{}}
	writeJSON(fw2, func() {})
	if len(fw2.headerCalls) != 1 || fw2.headerCalls[0] != http.StatusInternalServerError {
		t.Fatalf("encode failure statuses %v, want exactly [500]", fw2.headerCalls)
	}
}

// TestReadsServeWhileMutexHeld: the tentpole's headline property — GET
// endpoints never touch the server mutex. The test wedges the write lock
// shut and demands all four reads still answer within the deadline.
func TestReadsServeWhileMutexHeld(t *testing.T) {
	ts, s := newTestServer(t)
	rng := rand.New(rand.NewSource(23))
	postPoints(t, ts, clusteredBatch(rng, 0, 250)).Body.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	client := &http.Client{Timeout: 2 * time.Second}
	for _, path := range []string{"/clusters", "/points/100", "/events", "/stats"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s blocked behind the write lock: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d with mutex held", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestStrideETagAndConditionalGet: every read names its view via the
// X-Disc-Stride header and a strong ETag; If-None-Match on the current
// view short-circuits to 304, and a new stride mints a new ETag.
func TestStrideETagAndConditionalGet(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(24))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()

	resp, err := http.Get(ts.URL + "/clusters")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /clusters")
	}
	if got := resp.Header.Get("X-Disc-Stride"); got != "1" {
		t.Fatalf("X-Disc-Stride = %q, want 1", got)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/clusters", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status %d, want 304", resp.StatusCode)
	}

	// Advance one stride; the cached ETag must stop matching.
	postPoints(t, ts, clusteredBatch(rng, 200, 50)).Body.Close()
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-stride conditional GET status %d, want 200", resp.StatusCode)
	}
	if newTag := resp.Header.Get("ETag"); newTag == etag {
		t.Fatalf("ETag %q unchanged across a stride", newTag)
	}
	if got := resp.Header.Get("X-Disc-Stride"); got != "2" {
		t.Fatalf("X-Disc-Stride = %q after second stride, want 2", got)
	}
}

// TestConcurrentReadsUnderIngest hammers all four GET endpoints from many
// goroutines while a writer drives the stream across many stride
// boundaries, asserting every single response is internally consistent:
// the stride named in the header matches the counters in the body, sizes
// add up, and event sequences ascend. Run under -race this also proves
// the read path is data-race-free against ingest.
func TestConcurrentReadsUnderIngest(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(25))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()

	const readers = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				switch r.Intn(4) {
				case 0:
					resp, err := http.Get(ts.URL + "/clusters")
					if err != nil {
						fail("GET /clusters: %v", err)
						return
					}
					var cr clustersResponse
					err = json.NewDecoder(resp.Body).Decode(&cr)
					resp.Body.Close()
					if err != nil {
						fail("decode /clusters: %v", err)
						return
					}
					hdr := resp.Header.Get("X-Disc-Stride")
					if hdr != strconv.FormatUint(cr.Strides, 10) {
						fail("/clusters header stride %s != body stride %d", hdr, cr.Strides)
						return
					}
					total := cr.Noise
					for _, c := range cr.Clusters {
						total += c.Size
					}
					if total != cr.Window {
						fail("/clusters sizes sum %d != window %d at stride %d", total, cr.Window, cr.Strides)
						return
					}
				case 1:
					id := int64(r.Intn(2000))
					resp, err := http.Get(ts.URL + "/points/" + strconv.FormatInt(id, 10))
					if err != nil {
						fail("GET /points: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						fail("/points/%d status %d", id, resp.StatusCode)
						return
					}
				case 2:
					resp, err := http.Get(ts.URL + "/events")
					if err != nil {
						fail("GET /events: %v", err)
						return
					}
					var evs []eventRecord
					err = json.NewDecoder(resp.Body).Decode(&evs)
					resp.Body.Close()
					if err != nil {
						fail("decode /events: %v", err)
						return
					}
					for j := 1; j < len(evs); j++ {
						if evs[j].Seq <= evs[j-1].Seq {
							fail("/events sequence not ascending: %d then %d", evs[j-1].Seq, evs[j].Seq)
							return
						}
					}
				case 3:
					resp, err := http.Get(ts.URL + "/stats")
					if err != nil {
						fail("GET /stats: %v", err)
						return
					}
					var sr statsResponse
					err = json.NewDecoder(resp.Body).Decode(&sr)
					resp.Body.Close()
					if err != nil {
						fail("decode /stats: %v", err)
						return
					}
					hdr := resp.Header.Get("X-Disc-Stride")
					if hdr != strconv.FormatUint(uint64(sr.Stats.Strides), 10) {
						fail("/stats header stride %s != body stride %d", hdr, sr.Stats.Strides)
						return
					}
					// Ingested is a view counter: it must equal the points
					// that produced the view's stride exactly (window extent
					// plus one stride's worth per later advance).
					if want := uint64(200 + 50*(sr.Stats.Strides-1)); sr.Stats.Strides > 0 && sr.Ingested != want {
						fail("/stats ingested %d at stride %d, want %d", sr.Ingested, sr.Stats.Strides, want)
						return
					}
				}
			}
		}(int64(100 + i))
	}

	// Writer: ~20 more strides in small batches.
	for id := int64(200); id < 1250; id += 25 {
		resp := postPoints(t, ts, clusteredBatch(rng, id, 25))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("writer batch at id %d: status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(done)
	wg.Wait()

	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Stats.Strides != 22 {
		t.Fatalf("final strides %d, want 22", sr.Stats.Strides)
	}
}

// TestQueryMetricsExposed: serving reads populates the disc_query_* family.
func TestQueryMetricsExposed(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(26))
	postPoints(t, ts, clusteredBatch(rng, 0, 200)).Body.Close()
	for _, path := range []string{"/clusters", "/points/10", "/events", "/stats"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, ep := range []string{"clusters", "point", "events", "stats"} {
		want := fmt.Sprintf(`disc_query_duration_seconds_count{endpoint=%q} 1`, ep)
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	if !bytes.Contains(body, []byte("disc_query_stride_lag_count 4")) {
		t.Error("metrics exposition missing stride-lag samples")
	}
}

// TestViewAcrossRestore: a checkpoint restore republishes the view
// immediately and mints a new ETag epoch, so clients cannot confuse
// pre- and post-restore state even at the same stride number.
func TestViewAcrossRestore(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(27))
	postPoints(t, ts, clusteredBatch(rng, 0, 250)).Body.Close()

	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/clusters")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	preTag := resp.Header.Get("ETag")
	preStride := resp.Header.Get("X-Disc-Stride")

	r, err := http.Post(ts.URL+"/checkpoint", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", r.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/clusters")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Disc-Stride"); got != preStride {
		t.Fatalf("stride %s after same-position restore, want %s", got, preStride)
	}
	if got := resp.Header.Get("ETag"); got == preTag {
		t.Fatalf("ETag %q unchanged across restore; epoch must bump", got)
	}
	var sr statsResponse
	getJSON(t, ts.URL+"/stats", &sr)
	if sr.Ingested != 250 {
		t.Fatalf("restored view ingested %d, want 250", sr.Ingested)
	}
}
