// Package pardbscan implements a parallel static DBSCAN in the spirit of the
// grid/partition-based parallel algorithms the DISC paper's related work
// cites (RP-DBSCAN, Song & Lee SIGMOD 2018; Wang, Gu & Shun SIGMOD 2020):
// the plane is cut into cells of side ε/√d, cells are sharded across
// workers that compute core status and intra-shard connectivity
// independently, and a final sequential pass stitches shards by unioning
// cells whose points are within ε across shard boundaries.
//
// It produces exactly the DBSCAN clustering (verified against the
// sequential oracle in tests) and is offered as a bootstrap for very large
// initial windows on multi-core hosts — the speedup scales with
// GOMAXPROCS; on a single CPU it only adds goroutine overhead. The
// incremental engines remain single-threaded as in the paper.
package pardbscan

import (
	"runtime"
	"sort"
	"sync"

	"disc/internal/dsu"
	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/model"
)

// Run clusters points with parallel DBSCAN using the given number of
// workers (<= 0 selects GOMAXPROCS). The result is identical to
// dbscan.Run up to cluster renaming.
func Run(points []model.Point, cfg model.Config, workers int) map[int64]model.Assignment {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(points)
	out := make(map[int64]model.Assignment, n)
	if n == 0 {
		return out
	}

	// Shared read-only grid over all points; cells of side ε/√d so points
	// sharing a cell are mutually within ε.
	side := cfg.Eps / sqrtDims(cfg.Dims)
	g := grid.New(cfg.Dims, side)
	idx := make(map[int64]int, n) // id -> position in points
	for i, p := range points {
		g.Insert(p.ID, p.Pos)
		idx[p.ID] = i
	}

	// Deterministic cell ordering and sharding.
	type cellInfo struct {
		key   grid.Key
		items []grid.Item
	}
	var cells []cellInfo
	g.ForCells(func(k grid.Key, items []grid.Item) {
		cells = append(cells, cellInfo{k, items})
	})
	sort.Slice(cells, func(i, j int) bool { return keyLess(cells[i].key, cells[j].key) })
	cellIdx := make(map[grid.Key]int, len(cells))
	for i, c := range cells {
		cellIdx[c.key] = i
	}

	// Phase 1 (parallel): exact core status per point.
	core := make([]bool, n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if g.CountBall(points[i].Pos, cfg.Eps, cfg.MinPts) >= cfg.MinPts {
					core[i] = true
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Phase 2 (parallel): discover cell-graph edges — pairs of cells holding
	// cores within ε of each other. Each worker scans a shard of cells and
	// emits edges to its own slice; no shared mutation.
	type edge struct{ a, b int }
	edgeShards := make([][]edge, workers)
	for w := 0; w < workers; w++ {
		lo := w * ((len(cells) + workers - 1) / workers)
		hi := lo + (len(cells)+workers-1)/workers
		if hi > len(cells) {
			hi = len(cells)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var edges []edge
			for ci := lo; ci < hi; ci++ {
				c := cells[ci]
				// A cell is a core cell if it holds at least one core.
				if !hasCore(c.items, idx, core) {
					continue
				}
				for _, it := range c.items {
					if !core[idx[it.ID]] {
						continue
					}
					g.SearchBall(it.Pos, cfg.Eps, func(qid int64, qpos geom.Vec) bool {
						qi := idx[qid]
						if !core[qi] {
							return true
						}
						qc := cellIdx[g.KeyOf(qpos)]
						if qc != ci {
							edges = append(edges, edge{ci, qc})
						}
						return true
					})
				}
			}
			edgeShards[w] = edges
		}(w, lo, hi)
	}
	wg.Wait()

	// Phase 3 (sequential stitch): union core cells along the edges.
	cellSet := dsu.NewDense(len(cells))
	for _, shard := range edgeShards {
		for _, e := range shard {
			cellSet.Union(e.a, e.b)
		}
	}

	// Assign cluster ids per core-cell component, pre-resolved into a flat
	// array so the parallel labeling below performs no union-find mutation
	// (Dense.Find path-halving is not concurrency-safe).
	cellCID := make([]int, len(cells))
	nextCID := 0
	cidOf := make(map[int]int)
	for ci := range cells {
		if !hasCore(cells[ci].items, idx, core) {
			continue
		}
		root := cellSet.Find(ci)
		cid, ok := cidOf[root]
		if !ok {
			nextCID++
			cid = nextCID
			cidOf[root] = cid
		}
		cellCID[ci] = cid
	}

	// Phase 4 (parallel): label every point. Cores read their cell's id;
	// borders search for any core within ε and take its cell's id.
	assigns := make([]model.Assignment, n)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if core[i] {
					assigns[i] = model.Assignment{
						Label:     model.Core,
						ClusterID: cellCID[cellIdx[g.KeyOf(points[i].Pos)]],
					}
					continue
				}
				found := model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
				g.SearchBall(points[i].Pos, cfg.Eps, func(qid int64, qpos geom.Vec) bool {
					qi := idx[qid]
					if qi == i || !core[qi] {
						return true
					}
					found = model.Assignment{
						Label:     model.Border,
						ClusterID: cellCID[cellIdx[g.KeyOf(qpos)]],
					}
					return false
				})
				assigns[i] = found
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := range points {
		out[points[i].ID] = assigns[i]
	}
	return out
}

func hasCore(items []grid.Item, idx map[int64]int, core []bool) bool {
	for _, it := range items {
		if core[idx[it.ID]] {
			return true
		}
	}
	return false
}

func keyLess(a, b grid.Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func sqrtDims(d int) float64 {
	switch d {
	case 1:
		return 1
	case 2:
		return 1.4142135623730951
	case 3:
		return 1.7320508075688772
	default:
		return 2
	}
}
