package pardbscan

import (
	"fmt"
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
)

func stream(rng *rand.Rand, n, dims int) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		var v geom.Vec
		if rng.Float64() < 0.2 {
			for d := 0; d < dims; d++ {
				v[d] = rng.Float64() * 50
			}
		} else {
			c := float64(rng.Intn(3)) * 15
			for d := 0; d < dims; d++ {
				v[d] = c + rng.NormFloat64()*1.5
			}
		}
		pts[i] = model.Point{ID: int64(i), Pos: v}
	}
	return pts
}

func TestMatchesSequentialDBSCAN(t *testing.T) {
	for _, dims := range []int{2, 3} {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("dims=%d/workers=%d", dims, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(dims*100 + workers)))
				pts := stream(rng, 2500, dims)
				cfg := model.Config{Dims: dims, Eps: 2, MinPts: 5}
				got := Run(pts, cfg, workers)
				want := dbscan.Run(pts, cfg)
				if err := metrics.SameClustering(got, want, pts, cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestMatchesAcrossParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := stream(rng, 1500, 2)
	for _, eps := range []float64{0.5, 2, 6} {
		for _, minPts := range []int{1, 4, 15} {
			cfg := model.Config{Dims: 2, Eps: eps, MinPts: minPts}
			got := Run(pts, cfg, 4)
			want := dbscan.Run(pts, cfg)
			if err := metrics.SameClustering(got, want, pts, cfg); err != nil {
				t.Fatalf("eps=%g minPts=%d: %v", eps, minPts, err)
			}
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := stream(rng, 2000, 2)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	a := Run(pts, cfg, 1)
	b := Run(pts, cfg, 7)
	// Partitions must agree exactly (ids may be renamed).
	if err := metrics.SameClustering(a, b, pts, cfg); err != nil {
		t.Fatal(err)
	}
	if ari := metrics.ARI(metrics.Labels(a), metrics.Labels(b)); ari != 1 {
		t.Fatalf("worker counts changed the partition: ARI %.3f", ari)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 2}
	if got := Run(nil, cfg, 4); len(got) != 0 {
		t.Fatal("empty input produced output")
	}
	one := []model.Point{{ID: 5, Pos: geom.NewVec(1, 1)}}
	got := Run(one, cfg, 4)
	if got[5].Label != model.Noise {
		t.Fatalf("singleton = %+v", got[5])
	}
}

func TestRaceSafety(t *testing.T) {
	// Meaningful under -race: many workers over shared read-only state.
	rng := rand.New(rand.NewSource(11))
	pts := stream(rng, 3000, 2)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	_ = Run(pts, cfg, 16)
}

// BenchmarkParallelVsSequential compares the two implementations; the
// parallel one only wins with several CPUs (GOMAXPROCS > 1) — on a
// single-CPU container it measures pure goroutine overhead.
func BenchmarkParallelVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := stream(rng, 6000, 2)
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 5}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dbscan.Run(pts, cfg)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(pts, cfg, 0)
		}
	})
}
