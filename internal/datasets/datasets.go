// Package datasets generates the synthetic analogs of the four real-world
// datasets of the DISC evaluation (DTG, GeoLife, COVID-19, IRIS) and the
// paper's own synthetic Maze benchmark. The real datasets are proprietary or
// too large to ship; each generator reproduces the properties the evaluation
// exercises — dimensionality, cluster shape regime, density profile, and
// temporal churn — with deterministic seeded randomness. See DESIGN.md §3
// for the substitution rationale.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"disc/internal/geom"
	"disc/internal/model"
)

// Dataset is a generated stream: points in arrival (timestamp) order, plus
// ground-truth labels when the generator defines them (Maze only).
type Dataset struct {
	Name   string
	Dims   int
	Points []model.Point
	// Truth maps point id to its generating cluster (Maze); nil otherwise.
	Truth map[int64]int
}

// DTG emulates the digital-tachograph vehicle stream: 2-D positions of
// commercial vehicles moving along a rectangular road grid of a metropolitan
// area, with congestion hotspots. Roads are spaced closely relative to the
// clustering threshold, reproducing the paper's motivation of separating
// congested roads in close proximity. Coordinates are in degrees-like units
// spanning a ~0.5° city.
func DTG(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const (
		citySize    = 0.5   // extent of the road grid
		roadSpacing = 0.02  // distance between parallel roads
		jitter      = 0.001 // GPS noise around the road axis
	)
	numRoads := int(citySize/roadSpacing) + 1
	// Vehicles: each follows one road (horizontal or vertical) with a slowly
	// drifting position; congested vehicles cluster near hotspot positions.
	type vehicle struct {
		horizontal bool
		road       int     // road index
		pos        float64 // position along the road
		speed      float64
	}
	numVehicles := 400
	if n < 4000 {
		numVehicles = n/10 + 1
	}
	vehicles := make([]vehicle, numVehicles)
	// Hotspots concentrate traffic on a few roads.
	for i := range vehicles {
		v := &vehicles[i]
		v.horizontal = rng.Intn(2) == 0
		if rng.Float64() < 0.6 {
			v.road = rng.Intn(4) // congested roads
			v.pos = 0.2 + rng.Float64()*0.1
			v.speed = 0.00002 + rng.Float64()*0.00005 // crawling
		} else {
			v.road = rng.Intn(numRoads)
			v.pos = rng.Float64() * citySize
			v.speed = 0.0005 + rng.Float64()*0.001
		}
	}
	pts := make([]model.Point, n)
	for i := 0; i < n; i++ {
		v := &vehicles[rng.Intn(numVehicles)]
		v.pos += v.speed
		if v.pos > citySize {
			v.pos -= citySize
		}
		onRoad := float64(v.road) * roadSpacing
		var x, y float64
		if v.horizontal {
			x, y = v.pos, onRoad+rng.NormFloat64()*jitter
		} else {
			x, y = onRoad+rng.NormFloat64()*jitter, v.pos
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y), Time: int64(i)}
	}
	return Dataset{Name: "DTG", Dims: 2, Points: pts}
}

// GeoLife emulates the GeoLife GPS trajectory collection: 182 users moving
// between home/work anchors in 3-D (lat, lon, alt/300000 as the paper
// normalizes it).
func GeoLife(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const users = 182
	type user struct {
		home, work [2]float64
		cur        [2]float64
		toWork     bool
	}
	us := make([]user, users)
	for i := range us {
		// Anchors drawn from a handful of district centers so trajectories
		// overlap into density clusters.
		dh := float64(rng.Intn(5)) * 0.08
		dw := float64(rng.Intn(5)) * 0.08
		us[i].home = [2]float64{dh + rng.NormFloat64()*0.01, dh + rng.NormFloat64()*0.01}
		us[i].work = [2]float64{dw + rng.NormFloat64()*0.01, 0.3 - dw/2 + rng.NormFloat64()*0.01}
		us[i].cur = us[i].home
	}
	pts := make([]model.Point, n)
	for i := 0; i < n; i++ {
		u := &us[rng.Intn(users)]
		target := u.home
		if u.toWork {
			target = u.work
		}
		// Move a fraction toward the target with jitter; flip when close.
		dx, dy := target[0]-u.cur[0], target[1]-u.cur[1]
		if dx*dx+dy*dy < 1e-6 {
			u.toWork = !u.toWork
		}
		u.cur[0] += dx*0.02 + rng.NormFloat64()*0.002
		u.cur[1] += dy*0.02 + rng.NormFloat64()*0.002
		alt := (200 + 400*math.Abs(u.cur[0])) / 300000 * (1 + rng.NormFloat64()*0.1)
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(u.cur[0], u.cur[1], alt), Time: int64(i)}
	}
	return Dataset{Name: "GeoLife", Dims: 3, Points: pts}
}

// COVID emulates the geo-tagged tweet stream: a sparse 2-D world-scale point
// set concentrated in Zipf-weighted city hotspots with a uniform global
// noise floor. Coordinates are (lat, lon) in degrees.
func COVID(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const cities = 250
	type city struct {
		lat, lon, spread, weight float64
	}
	cs := make([]city, cities)
	totalW := 0.0
	for i := range cs {
		cs[i] = city{
			lat:    rng.Float64()*120 - 55,
			lon:    rng.Float64()*340 - 170,
			spread: 0.5 + rng.Float64()*0.9,
			weight: 1 / math.Pow(float64(i+1), 0.6), // flat-ish Zipf
		}
		totalW += cs[i].weight
	}
	pts := make([]model.Point, n)
	for i := 0; i < n; i++ {
		var lat, lon float64
		if rng.Float64() < 0.25 {
			lat, lon = rng.Float64()*140-65, rng.Float64()*360-180
		} else {
			r := rng.Float64() * totalW
			var c city
			for _, cand := range cs {
				if r -= cand.weight; r <= 0 {
					c = cand
					break
				}
			}
			lat = c.lat + rng.NormFloat64()*c.spread
			lon = c.lon + rng.NormFloat64()*c.spread
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(lat, lon), Time: int64(i)}
	}
	return Dataset{Name: "COVID-19", Dims: 2, Points: pts}
}

// IRIS emulates the global earthquake catalog in the paper's 4-D encoding
// (lat, lon, depth/10, magnitude*10): events along synthetic fault arcs with
// exponential depth and Gutenberg-Richter-like magnitudes.
func IRIS(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const faults = 8
	type fault struct {
		lat0, lon0, dLat, dLon, length, depthScale float64
	}
	fs := make([]fault, faults)
	for i := range fs {
		ang := rng.Float64() * 2 * math.Pi
		fs[i] = fault{
			lat0:       rng.Float64()*120 - 60,
			lon0:       rng.Float64()*340 - 170,
			dLat:       math.Sin(ang),
			dLon:       math.Cos(ang),
			length:     10 + rng.Float64()*25,
			depthScale: 4 + rng.Float64()*10,
		}
	}
	pts := make([]model.Point, n)
	for i := 0; i < n; i++ {
		f := fs[rng.Intn(faults)]
		t := rng.Float64() * f.length
		lat := f.lat0 + f.dLat*t + rng.NormFloat64()*0.25
		lon := f.lon0 + f.dLon*t + rng.NormFloat64()*0.25
		depth := rng.ExpFloat64() * f.depthScale // km
		if depth > 700 {
			depth = 700
		}
		mag := 4 + rng.ExpFloat64()/2 // Gutenberg-Richter-ish
		if mag > 9 {
			mag = 9
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(lat, lon, depth/10, mag*10), Time: int64(i)}
	}
	return Dataset{Name: "IRIS", Dims: 4, Points: pts}
}

// Maze is the paper's synthetic quality benchmark: numSeeds random seeds are
// placed in the 2-D plane and spread out over time; the trajectory of each
// seed is one ground-truth cluster. As the window grows, trajectories become
// longer and closer to one another, complicating the cluster shapes — the
// regime where summarization-based methods lose accuracy.
func Maze(n int, seed int64) Dataset {
	return MazeN(n, 100, seed)
}

// MazeN is Maze with a configurable number of spreading seeds. Each seed's
// trail meanders within its own territory (a tile of a √numSeeds × √numSeeds
// grid, with a margin separating neighboring tiles), so the trails form
// increasingly long and winding — but still separable — clusters as the
// window grows, exactly the regime the paper uses to probe how well each
// method tracks many fine-grained structures.
func MazeN(n, numSeeds int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const area = 100.0
	const margin = 1.5 // inter-tile gap, comfortably above the evaluation ε
	grid := int(math.Ceil(math.Sqrt(float64(numSeeds))))
	tile := area / float64(grid)
	type walker struct {
		x, y                   float64
		ang                    float64
		spread                 float64
		minX, maxX, minY, maxY float64
	}
	ws := make([]walker, numSeeds)
	for i := range ws {
		tx, ty := i%grid, i/grid
		minX := float64(tx)*tile + margin/2
		maxX := float64(tx+1)*tile - margin/2
		minY := float64(ty)*tile + margin/2
		maxY := float64(ty+1)*tile - margin/2
		ws[i] = walker{
			x:      minX + rng.Float64()*(maxX-minX),
			y:      minY + rng.Float64()*(maxY-minY),
			ang:    rng.Float64() * 2 * math.Pi,
			spread: 0.05 + rng.Float64()*0.1,
			minX:   minX, maxX: maxX, minY: minY, maxY: maxY,
		}
	}
	pts := make([]model.Point, n)
	truth := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		wi := rng.Intn(numSeeds)
		w := &ws[wi]
		// Meandering spread: the trajectory advances with a slowly turning
		// heading, leaving a dense trail behind.
		w.ang += rng.NormFloat64() * 0.25
		w.x += math.Cos(w.ang) * w.spread
		w.y += math.Sin(w.ang) * w.spread
		// Reflect at the territory boundary.
		if w.x < w.minX || w.x > w.maxX {
			w.ang = math.Pi - w.ang
			w.x = math.Min(math.Max(w.x, w.minX), w.maxX)
		}
		if w.y < w.minY || w.y > w.maxY {
			w.ang = -w.ang
			w.y = math.Min(math.Max(w.y, w.minY), w.maxY)
		}
		pts[i] = model.Point{
			ID:   int64(i),
			Pos:  geom.NewVec(w.x+rng.NormFloat64()*0.05, w.y+rng.NormFloat64()*0.05),
			Time: int64(i),
		}
		truth[int64(i)] = wi + 1
	}
	return Dataset{Name: "Maze", Dims: 2, Points: pts, Truth: truth}
}

// Names lists the available generator names for ByName.
func Names() []string { return []string{"dtg", "geolife", "covid", "iris", "maze"} }

// ByName dispatches to a generator by its lower-case name.
func ByName(name string, n int, seed int64) (Dataset, error) {
	switch name {
	case "dtg":
		return DTG(n, seed), nil
	case "geolife":
		return GeoLife(n, seed), nil
	case "covid":
		return COVID(n, seed), nil
	case "iris":
		return IRIS(n, seed), nil
	case "maze":
		return Maze(n, seed), nil
	default:
		return Dataset{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
}
