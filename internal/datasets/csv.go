package datasets

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"disc/internal/geom"
	"disc/internal/model"
)

// WriteCSV writes a dataset as CSV: header, then one row per point with
// id, time, the active coordinates, and — when ground truth exists — the
// generating label.
func WriteCSV(w io.Writer, ds Dataset) error {
	bw := bufio.NewWriter(w)
	header := "id,time"
	for d := 0; d < ds.Dims; d++ {
		header += fmt.Sprintf(",x%d", d)
	}
	if ds.Truth != nil {
		header += ",label"
	}
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for _, p := range ds.Points {
		if _, err := fmt.Fprintf(bw, "%d,%d", p.ID, p.Time); err != nil {
			return err
		}
		for d := 0; d < ds.Dims; d++ {
			if _, err := fmt.Fprintf(bw, ",%g", p.Pos[d]); err != nil {
				return err
			}
		}
		if ds.Truth != nil {
			if _, err := fmt.Fprintf(bw, ",%d", ds.Truth[p.ID]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV with columns
// id, time, x0..x{dims-1}[, label]). The dimensionality is inferred from
// the header's xN columns; a trailing "label" column populates Truth.
func ReadCSV(r io.Reader) (Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return Dataset{}, fmt.Errorf("datasets: reading header: %w", err)
	}
	dims := 0
	hasLabel := false
	for _, col := range header {
		if len(col) >= 2 && col[0] == 'x' {
			dims++
		}
		if col == "label" {
			hasLabel = true
		}
	}
	if dims < 1 || dims > geom.MaxDims {
		return Dataset{}, fmt.Errorf("datasets: header %v has %d coordinate columns (want 1-%d)", header, dims, geom.MaxDims)
	}
	ds := Dataset{Name: "csv", Dims: dims}
	if hasLabel {
		ds.Truth = make(map[int64]int)
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Dataset{}, err
		}
		if len(rec) < 2+dims {
			return Dataset{}, fmt.Errorf("datasets: line %d has %d fields, want >= %d", line, len(rec), 2+dims)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return Dataset{}, fmt.Errorf("datasets: line %d: bad id %q", line, rec[0])
		}
		ts, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return Dataset{}, fmt.Errorf("datasets: line %d: bad time %q", line, rec[1])
		}
		var v geom.Vec
		for d := 0; d < dims; d++ {
			x, err := strconv.ParseFloat(rec[2+d], 64)
			if err != nil {
				return Dataset{}, fmt.Errorf("datasets: line %d: bad coordinate %q", line, rec[2+d])
			}
			v[d] = x
		}
		ds.Points = append(ds.Points, model.Point{ID: id, Time: ts, Pos: v})
		if hasLabel {
			l, err := strconv.Atoi(rec[2+dims])
			if err != nil {
				return Dataset{}, fmt.Errorf("datasets: line %d: bad label %q", line, rec[2+dims])
			}
			ds.Truth[id] = l
		}
	}
	return ds, nil
}
