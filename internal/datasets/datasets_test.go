package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/metrics"
	"disc/internal/model"
)

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 2000, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := ByName(name, 2000, 7)
		if len(a.Points) != len(b.Points) {
			t.Fatalf("%s: nondeterministic length", name)
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: nondeterministic at %d", name, i)
			}
		}
		c, _ := ByName(name, 2000, 8)
		same := true
		for i := range a.Points {
			if a.Points[i].Pos != c.Points[i].Pos {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seed has no effect", name)
		}
	}
}

func TestShapes(t *testing.T) {
	wantDims := map[string]int{"dtg": 2, "geolife": 3, "covid": 2, "iris": 4, "maze": 2}
	for name, dims := range wantDims {
		ds, err := ByName(name, 500, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Dims != dims {
			t.Errorf("%s: Dims = %d, want %d", name, ds.Dims, dims)
		}
		if len(ds.Points) != 500 {
			t.Errorf("%s: %d points, want 500", name, len(ds.Points))
		}
		// IDs and times must be unique and monotonically increasing.
		for i, p := range ds.Points {
			if p.ID != int64(i) {
				t.Fatalf("%s: non-sequential id at %d", name, i)
			}
		}
		// Unused trailing dims must be zero so Vec comparisons are valid.
		for _, p := range ds.Points {
			for d := ds.Dims; d < len(p.Pos); d++ {
				if p.Pos[d] != 0 {
					t.Fatalf("%s: dim %d not zero", name, d)
				}
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestMazeTruthCoversAllPoints(t *testing.T) {
	ds := Maze(5000, 3)
	if ds.Truth == nil {
		t.Fatal("Maze must carry ground truth")
	}
	clusters := map[int]int{}
	for _, p := range ds.Points {
		l, ok := ds.Truth[p.ID]
		if !ok {
			t.Fatalf("point %d unlabeled", p.ID)
		}
		clusters[l]++
	}
	if len(clusters) < 90 {
		t.Fatalf("only %d of 100 seeds emitted points", len(clusters))
	}
}

// TestMazeSeparability: on a modest window, exact DBSCAN with a small ε must
// recover the trajectories well (high ARI vs ground truth) — the property
// Figs. 9 and 12 rely on.
func TestMazeSeparability(t *testing.T) {
	ds := MazeN(4000, 20, 5)
	cfg := model.Config{Dims: 2, Eps: 0.6, MinPts: 4}
	snap := dbscan.Run(ds.Points, cfg)
	ari := metrics.ARI(ds.Truth, metrics.Labels(snap))
	if ari < 0.6 {
		t.Fatalf("DBSCAN ARI on Maze = %.3f; trajectories not separable", ari)
	}
	t.Logf("Maze DBSCAN ARI = %.3f", ari)
}

// TestDTGFormsElongatedClusters: congested roads must yield dense clusters
// at the evaluation's ε scale.
func TestDTGFormsElongatedClusters(t *testing.T) {
	ds := DTG(5000, 5)
	cfg := model.Config{Dims: 2, Eps: 0.004, MinPts: 8}
	snap := dbscan.Run(ds.Points, cfg)
	clusters := map[int]int{}
	cores := 0
	for _, a := range snap {
		if a.Label == model.Core {
			cores++
		}
		if a.ClusterID != model.NoCluster {
			clusters[a.ClusterID]++
		}
	}
	if len(clusters) < 2 {
		t.Fatalf("DTG produced %d clusters; want several congested segments", len(clusters))
	}
	if cores < 500 {
		t.Fatalf("DTG produced only %d cores; density too low for the ε/τ regime", cores)
	}
}

func TestCOVIDNoiseFloor(t *testing.T) {
	ds := COVID(5000, 5)
	cfg := model.Config{Dims: 2, Eps: 1.2, MinPts: 5}
	snap := dbscan.Run(ds.Points, cfg)
	noise := 0
	for _, a := range snap {
		if a.Label == model.Noise {
			noise++
		}
	}
	if noise == 0 {
		t.Fatal("COVID stream has no noise; uniform floor missing")
	}
	if noise > len(snap)/2 {
		t.Fatalf("COVID stream is %d/%d noise; hotspots too weak", noise, len(snap))
	}
}

func TestIRISClusterable(t *testing.T) {
	ds := IRIS(5000, 5)
	cfg := model.Config{Dims: 4, Eps: 2, MinPts: 9} // Table II thresholds
	snap := dbscan.Run(ds.Points, cfg)
	clusters := map[int]bool{}
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			clusters[a.ClusterID] = true
		}
	}
	if len(clusters) < 2 {
		t.Fatalf("IRIS produced %d clusters at Table II thresholds", len(clusters))
	}
}

func TestGeoLifeTrajectories(t *testing.T) {
	ds := GeoLife(5000, 5)
	cfg := model.Config{Dims: 3, Eps: 0.01, MinPts: 7} // Table II thresholds
	snap := dbscan.Run(ds.Points, cfg)
	clustered := 0
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			clustered++
		}
	}
	if clustered < len(snap)/10 {
		t.Fatalf("GeoLife: only %d/%d points clustered at Table II thresholds", clustered, len(snap))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	for _, name := range []string{"maze", "iris"} {
		ds, _ := ByName(name, 500, 3)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Dims != ds.Dims || len(back.Points) != len(ds.Points) {
			t.Fatalf("%s: round trip changed shape: dims %d->%d, n %d->%d",
				name, ds.Dims, back.Dims, len(ds.Points), len(back.Points))
		}
		for i := range ds.Points {
			if ds.Points[i].ID != back.Points[i].ID || ds.Points[i].Time != back.Points[i].Time {
				t.Fatalf("%s: id/time mismatch at %d", name, i)
			}
			for d := 0; d < ds.Dims; d++ {
				if math.Abs(ds.Points[i].Pos[d]-back.Points[i].Pos[d]) > 1e-12 {
					t.Fatalf("%s: coordinate drift at %d dim %d", name, i, d)
				}
			}
		}
		if (ds.Truth == nil) != (back.Truth == nil) {
			t.Fatalf("%s: truth presence changed", name)
		}
		if ds.Truth != nil {
			for id, l := range ds.Truth {
				if back.Truth[id] != l {
					t.Fatalf("%s: truth mismatch for %d", name, id)
				}
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",                            // no header
		"id,time\n",                   // no coordinate columns
		"id,time,x0\n1,2\n",           // short row
		"id,time,x0\nx,2,3\n",         // bad id
		"id,time,x0\n1,y,3\n",         // bad time
		"id,time,x0\n1,2,z\n",         // bad coordinate
		"id,time,x0,label\n1,2,3,w\n", // bad label
	}
	for i, in := range bad {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
