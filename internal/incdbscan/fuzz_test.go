package incdbscan

import (
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

// FuzzIncDBSCANEquivalence mirrors the DISC core's fuzz target for the
// per-point engine: any stream, window geometry and thresholds must match
// from-scratch DBSCAN at every stride.
func FuzzIncDBSCANEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(100), uint8(20), uint8(25), uint8(5))
	f.Add(int64(2), uint8(60), uint8(60), uint8(5), uint8(1))
	f.Add(int64(3), uint8(150), uint8(3), uint8(40), uint8(12))
	// The multi-cut regression's regime: huge eps, MinPts 1.
	f.Add(int64(-11), uint8(83), uint8(150), uint8(63), uint8(210))
	f.Fuzz(func(t *testing.T, seed int64, winRaw, strideRaw, epsRaw, minPtsRaw uint8) {
		win := int(winRaw)%150 + 20
		stride := int(strideRaw)%win + 1
		eps := 0.2 + float64(epsRaw)*0.1
		minPts := int(minPtsRaw)%15 + 1
		rng := rand.New(rand.NewSource(seed))
		n := win + stride*5
		data := make([]model.Point, n)
		for i := range data {
			var x, y float64
			if rng.Float64() < 0.2 {
				x, y = rng.Float64()*40, rng.Float64()*40
			} else {
				c := float64(rng.Intn(3)) * 12
				x, y = c+rng.NormFloat64()*1.5, c+rng.NormFloat64()*1.5
			}
			data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		}
		cfg := model.Config{Dims: 2, Eps: eps, MinPts: minPts}
		steps, err := window.Steps(data, win, stride)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(cfg)
		for i, st := range steps {
			eng.Advance(st.In, st.Out)
			want := dbscan.Run(st.Window, cfg)
			if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
				t.Fatalf("step %d (win=%d stride=%d eps=%.2f minPts=%d): %v",
					i, win, stride, eps, minPts, err)
			}
		}
	})
}
