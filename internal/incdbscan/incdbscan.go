// Package incdbscan implements Incremental DBSCAN (Ester, Kriegel, Sander,
// Wimmer, Xu: "Incremental Clustering for Mining in a Data Warehousing
// Environment", VLDB 1998) — the first exact incremental density-based
// clustering algorithm, and the closest prior work to DISC.
//
// Updates are applied one point at a time. An insertion updates the
// ε-neighbor counts of the new point's neighborhood, gathers the *seed
// objects* — the cores in the ε-neighborhoods of the cores newly created by
// the insertion — and classifies the update as noise/border (no new cores),
// cluster creation (seeds carry no cluster), absorption (one cluster among
// the seeds), or merger (several). A deletion symmetrically gathers the
// still-core seeds around the cores destroyed by the removal and, because
// removing a core can sever density-reachable paths, must check whether the
// seeds remain density-connected: if not, the cluster splits.
//
// Following the DISC paper's evaluation setup, the deletion connectivity
// check runs the Multi-Starter BFS "in its own favor" (epoch-based index
// probing, presented by that paper as a DISC-side optimization, is off by
// default but available as an option). What this engine cannot do, by
// construction, is DISC's batching: every arrival and departure of a stride
// pays its own seed gathering and — for deletions — its own connectivity
// check, where DISC consolidates them per retro-/nascent-reachable
// component. The measured gap between the two engines is exactly the value
// of that consolidation.
package incdbscan

import (
	"fmt"

	"disc/internal/dsu"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/queue"
	"disc/internal/rtree"
)

const noHint = int64(-1)

// Option configures the engine.
type Option func(*Engine)

// WithMSBFS toggles the MS-BFS favor granted by the DISC evaluation
// (default on). Disabling it reverts deletions to sequential BFS checks.
func WithMSBFS(on bool) Option { return func(e *Engine) { e.useMSBFS = on } }

// WithEpochProbing toggles epoch-based index probing (default off: the
// paper's evaluation granted IncDBSCAN the MS-BFS algorithm "in its own
// favor" but not the epoch probing, which is presented as a DISC
// optimization).
func WithEpochProbing(on bool) Option { return func(e *Engine) { e.useEpoch = on } }

type pstate struct {
	pos     geom.Vec
	n       int32 // ε-neighbors including self
	coreDeg int32 // core ε-neighbors, excluding self
	cid     int
	hint    int64
	label   model.Label
}

// Engine is the Incremental DBSCAN engine. It implements model.Engine.
// Not safe for concurrent use.
type Engine struct {
	cfg      model.Config
	tree     *rtree.T
	pts      map[int64]*pstate
	cids     *dsu.Int
	nextCID  int
	updates  uint64 // per-update compaction counter
	useMSBFS bool
	useEpoch bool
	stats    model.Stats
}

// New returns an IncDBSCAN engine for the given configuration. It panics on
// an invalid configuration; use cfg.Validate to pre-check user input.
func New(cfg model.Config, opts ...Option) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:      cfg,
		tree:     rtree.New(cfg.Dims),
		pts:      make(map[int64]*pstate),
		cids:     dsu.NewInt(),
		nextCID:  1,
		useMSBFS: true,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "IncDBSCAN" }

// Advance implements model.Engine: departures are applied first, then
// arrivals, each as an individual incremental update (the 1998 algorithm
// knows no batching).
func (e *Engine) Advance(in, out []model.Point) {
	treeBefore := e.tree.Stats()
	for _, p := range out {
		e.deleteOne(p)
	}
	for _, p := range in {
		e.insertOne(p)
	}
	treeAfter := e.tree.Stats()
	e.stats.RangeSearches += treeAfter.RangeSearches - treeBefore.RangeSearches
	e.stats.NodeAccesses += treeAfter.NodeAccesses - treeBefore.NodeAccesses
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.pts))
}

func (e *Engine) isCore(st *pstate) bool { return st.n >= int32(e.cfg.MinPts) }

// neighbors runs one ε-range search around pos and returns the ids found
// (excluding self).
func (e *Engine) neighbors(self int64, pos geom.Vec) []int64 {
	var out []int64
	e.tree.SearchBall(pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
		if qid != self {
			out = append(out, qid)
		}
		return true
	})
	return out
}

// --- Insertion ---------------------------------------------------------------

func (e *Engine) insertOne(p model.Point) {
	if _, dup := e.pts[p.ID]; dup {
		panic(fmt.Sprintf("incdbscan: duplicate point id %d", p.ID))
	}
	st := &pstate{pos: p.Pos, n: 1, hint: noHint, label: model.Unclassified}
	e.pts[p.ID] = st
	e.tree.Insert(p.ID, p.Pos)

	// Update counts; collect the cores created by this insertion.
	nbrs := e.neighbors(p.ID, p.Pos)
	var newCores []int64
	for _, qid := range nbrs {
		q := e.pts[qid]
		q.n++
		st.n++
		if q.label == model.Core {
			st.coreDeg++
			if st.hint == noHint {
				st.hint = qid
			}
		}
		if q.n == int32(e.cfg.MinPts) {
			newCores = append(newCores, qid) // q just became a core
		}
	}
	if e.isCore(st) {
		newCores = append(newCores, p.ID)
	}

	if len(newCores) == 0 {
		// No structural change: p is a border of an existing cluster or noise.
		if st.coreDeg > 0 {
			st.label = model.Border
		} else {
			st.label = model.Noise
		}
		return
	}

	// The new cores all lie within ε of p but are only mutually
	// density-reachable along ε-adjacency among themselves (if p did not
	// become a core itself, two distant new cores may belong to separate
	// clusters). Group them into ε-adjacency components first — when p is a
	// core, p is adjacent to every new core and everything collapses into
	// one component.
	comps := adjacencyComponents(newCores, e.pts, e.cfg)

	// Seed objects per component: cores in the ε-neighborhoods of the
	// component's new cores. One range search per new core; the same
	// searches maintain coreDeg and hints of the neighbors and gather the
	// clusters represented among the seeds.
	for _, comp := range comps {
		cidSet := make(map[int]bool)
		var borderTouch []int64
		for _, ncid := range comp {
			cst := e.pts[ncid]
			for _, qid := range e.neighbors(ncid, cst.pos) {
				q := e.pts[qid]
				q.coreDeg++
				q.hint = ncid
				if q.label == model.Core {
					// A pre-existing core among the seeds contributes its
					// cluster (new cores still carry their old labels here).
					cidSet[e.cids.Find(q.cid)] = true
				} else {
					borderTouch = append(borderTouch, qid)
				}
			}
		}

		var cid int
		switch len(cidSet) {
		case 0: // creation: the seeds span no existing cluster
			cid = e.nextCID
			e.nextCID++
		case 1: // absorption
			for c := range cidSet {
				cid = c
			}
		default: // merger
			cid = -1
			for c := range cidSet {
				if cid == -1 || c < cid {
					cid = c
				}
			}
			for c := range cidSet {
				if c != cid {
					e.cids.UnionInto(cid, c)
					e.stats.Merges++
				}
			}
		}
		for _, ncid := range comp {
			c := e.pts[ncid]
			c.label = model.Core
			c.cid = cid
		}
		// Non-core neighbors of new cores become borders (any core neighbor
		// is an exact assignment; their hint now names a new core).
		for _, qid := range borderTouch {
			q := e.pts[qid]
			if q.label != model.Core {
				q.label = model.Border
			}
		}
	}
	if st.label == model.Unclassified { // p itself, when not a new core
		if st.coreDeg > 0 {
			st.label = model.Border
		} else {
			st.label = model.Noise
		}
	}
	e.maybeCompact()
}

// adjacencyComponents partitions the new cores into ε-adjacency components
// (pairwise distance checks suffice: the set is small, all within 2ε).
func adjacencyComponents(ids []int64, pts map[int64]*pstate, cfg model.Config) [][]int64 {
	if len(ids) == 1 {
		return [][]int64{ids}
	}
	d := dsu.NewDense(len(ids))
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if geom.WithinEps(pts[ids[i]].pos, pts[ids[j]].pos, cfg.Dims, cfg.Eps) {
				d.Union(i, j)
			}
		}
	}
	byRoot := make(map[int][]int64)
	for i, id := range ids {
		r := d.Find(i)
		byRoot[r] = append(byRoot[r], id)
	}
	out := make([][]int64, 0, len(byRoot))
	for _, comp := range byRoot {
		out = append(out, comp)
	}
	return out
}

// --- Deletion ----------------------------------------------------------------

func (e *Engine) deleteOne(p model.Point) {
	st, ok := e.pts[p.ID]
	if !ok {
		panic(fmt.Sprintf("incdbscan: point %d left but was never inserted", p.ID))
	}
	wasCore := st.label == model.Core
	st.label = model.Deleted
	st.n = 0

	// Update counts; collect the cores destroyed by this removal. The point
	// itself stays in the R-tree until the seeds are gathered when it was a
	// core (its neighborhood defines the lost reachability), mirroring C_out
	// in DISC.
	var lostCores []int64
	nbrs := e.neighbors(p.ID, st.pos)
	for _, qid := range nbrs {
		q := e.pts[qid]
		q.n--
		if q.label == model.Core && !e.isCore(q) {
			lostCores = append(lostCores, qid)
		}
	}
	if wasCore {
		lostCores = append(lostCores, p.ID)
	}

	if len(lostCores) == 0 {
		// p was border or noise and destroyed nothing.
		e.tree.Delete(p.ID, st.pos)
		delete(e.pts, p.ID)
		return
	}

	// Seed objects: still-cores adjacent to a destroyed core. The same
	// searches decrement coreDeg and invalidate hints of the lost cores'
	// neighbors — those labels are refreshed below.
	var seeds []int64
	seedSeen := make(map[int64]bool)
	var touched []int64
	for _, lid := range lostCores {
		lst := e.pts[lid]
		for _, qid := range e.neighbors(lid, lst.pos) {
			q := e.pts[qid]
			if q.label == model.Deleted {
				continue
			}
			if qid != p.ID {
				q.coreDeg--
				if q.hint == lid {
					q.hint = noHint
				}
				touched = append(touched, qid)
			}
			if q.label == model.Core && e.isCore(q) && !seedSeen[qid] {
				seedSeen[qid] = true
				seeds = append(seeds, qid)
			}
		}
	}
	e.tree.Delete(p.ID, st.pos)
	delete(e.pts, p.ID)

	// Connectivity of the seeds decides shrink vs split (the "potential
	// split" of the 1998 paper).
	if len(seeds) > 1 {
		closed, ncc := e.connectivity(seeds)
		if ncc > 1 {
			e.stats.Splits += int64(ncc - 1)
			for _, comp := range closed {
				cid := e.nextCID
				e.nextCID++
				for _, id := range comp {
					e.pts[id].cid = cid
				}
			}
		}
	}

	// Demote the destroyed cores that remain in the window and refresh the
	// labels of every touched neighbor.
	for _, lid := range lostCores {
		if lid == p.ID {
			continue
		}
		e.refreshLabel(lid)
	}
	for _, qid := range touched {
		if q := e.pts[qid]; q != nil && q.label != model.Deleted {
			e.refreshLabel(qid)
		}
	}
	e.maybeCompact()
}

// refreshLabel recomputes a point's label from its maintained counters,
// re-acquiring a border hint with one early-terminating search if needed.
func (e *Engine) refreshLabel(id int64) {
	st := e.pts[id]
	if e.isCore(st) {
		st.label = model.Core
		return
	}
	st.cid = 0
	if st.coreDeg > 0 {
		st.label = model.Border
		if !e.hintValid(st) {
			st.hint = e.findHint(id, st)
		}
		return
	}
	st.label = model.Noise
	st.hint = noHint
}

func (e *Engine) hintValid(st *pstate) bool {
	if st.hint == noHint {
		return false
	}
	h, ok := e.pts[st.hint]
	return ok && h.label != model.Deleted && e.isCore(h)
}

func (e *Engine) findHint(id int64, st *pstate) int64 {
	found := noHint
	e.tree.SearchBall(st.pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
		if qid == id {
			return true
		}
		if q := e.pts[qid]; q.label != model.Deleted && e.isCore(q) {
			found = qid
			return false
		}
		return true
	})
	if found == noHint {
		panic(fmt.Sprintf("incdbscan: point %d has coreDeg=%d but no core ε-neighbor", id, st.coreDeg))
	}
	return found
}

// --- Connectivity (deletion checks) -------------------------------------------

// connectivity checks density-connectedness of the seed cores over the
// current core graph. Connected sets exit early with nothing to relabel;
// once a split is detected every component drains fully and all are
// returned, so the caller relabels each with a fresh id (no component may
// keep the old id — one cluster can be severed at several places by
// successive deletions and independent checks; see the DISC core's
// TestMultiCutSplitRegression).
func (e *Engine) connectivity(seeds []int64) (closed [][]int64, ncc int) {
	if e.useMSBFS {
		return e.multiStarterBFS(seeds)
	}
	return e.sequentialBFS(seeds)
}

type thread struct {
	q       queue.Q
	members []int64
	closed  bool
	dead    bool
	root    int
}

type visitState struct {
	tick    uint64
	owner   map[int64]int
	stamped map[int64]bool
}

func (e *Engine) newVisitState() *visitState {
	vs := &visitState{owner: make(map[int64]int)}
	if e.useEpoch {
		vs.tick = e.tree.NextTick()
	} else {
		vs.stamped = make(map[int64]bool)
	}
	return vs
}

// expand visits the un-stamped core neighbors of center; the center itself
// is stamped (visit-on-expansion, as in DISC's MS-BFS).
func (e *Engine) expand(center int64, vs *visitState, onCore func(id int64)) {
	cst := e.pts[center]
	visit := func(qid int64, _ geom.Vec) bool {
		if qid == center {
			return true
		}
		q := e.pts[qid]
		if q.label == model.Deleted || !e.isCore(q) {
			return true
		}
		onCore(qid)
		return false
	}
	if e.useEpoch {
		e.tree.SearchBallEpoch(cst.pos, e.cfg.Eps, vs.tick, visit)
		return
	}
	e.tree.SearchBall(cst.pos, e.cfg.Eps, func(qid int64, p geom.Vec) bool {
		if vs.stamped[qid] {
			return true
		}
		if visit(qid, p) {
			vs.stamped[qid] = true
		}
		return true
	})
}

func (e *Engine) multiStarterBFS(seeds []int64) (closed [][]int64, ncc int) {
	vs := e.newVisitState()
	groups := make([]*thread, len(seeds))
	threads := dsu.NewDense(len(seeds))
	active := make([]*thread, len(seeds))
	for i, m := range seeds {
		groups[i] = &thread{root: i}
		groups[i].q.Push(m)
		vs.owner[m] = i
		active[i] = groups[i]
	}
	live := len(seeds)
	for live > 0 {
		if live == 1 && ncc == 0 {
			return nil, 1 // connected: early exit
		}
		w := active[:0]
		for _, g := range active {
			if g.dead || g.closed {
				continue
			}
			w = append(w, g)
			if g.q.Empty() {
				g.closed = true
				live--
				closed = append(closed, g.members)
				ncc++
				continue
			}
			id := g.q.Pop()
			g.members = append(g.members, id)
			e.expand(id, vs, func(qid int64) {
				j, seen := vs.owner[qid]
				if !seen {
					vs.owner[qid] = g.root
					g.q.Push(qid)
					return
				}
				other := groups[threads.Find(j)]
				if other == g {
					return
				}
				threads.Union(g.root, j)
				g.q.Concat(&other.q)
				g.members = append(g.members, other.members...)
				other.members = nil
				other.dead = true
				g.root = threads.Find(g.root)
				groups[g.root] = g
				live--
			})
		}
		active = w
	}
	return closed, ncc
}

func (e *Engine) sequentialBFS(seeds []int64) (closed [][]int64, ncc int) {
	vs := e.newVisitState()
	for idx, m := range seeds {
		if _, seen := vs.owner[m]; seen {
			continue
		}
		ncc++
		var members []int64
		var q queue.Q
		q.Push(m)
		vs.owner[m] = idx
		for !q.Empty() {
			id := q.Pop()
			members = append(members, id)
			e.expand(id, vs, func(qid int64) {
				if _, seen := vs.owner[qid]; !seen {
					vs.owner[qid] = idx
					q.Push(qid)
				}
			})
		}
		closed = append(closed, members)
	}
	return closed, ncc
}

// --- Bookkeeping ---------------------------------------------------------------

const compactInterval = 1 << 16

func (e *Engine) maybeCompact() {
	e.updates++
	if e.updates%compactInterval != 0 {
		return
	}
	for _, st := range e.pts {
		if st.cid != 0 {
			st.cid = e.cids.Find(st.cid)
		}
	}
	e.cids.Reset()
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	st, ok := e.pts[id]
	if !ok {
		return model.Assignment{}, false
	}
	return e.assignmentOf(id, st), true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.pts))
	for id, st := range e.pts {
		out[id] = e.assignmentOf(id, st)
	}
	return out
}

func (e *Engine) assignmentOf(id int64, st *pstate) model.Assignment {
	switch st.label {
	case model.Core:
		return model.Assignment{Label: model.Core, ClusterID: e.cids.Find(st.cid)}
	case model.Border:
		h, ok := e.pts[st.hint]
		if !ok {
			panic(fmt.Sprintf("incdbscan: border point %d hints at absent point %d", id, st.hint))
		}
		return model.Assignment{Label: model.Border, ClusterID: e.cids.Find(h.cid)}
	default:
		return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
	}
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }
