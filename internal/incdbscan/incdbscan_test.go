package incdbscan

import (
	"fmt"
	"math/rand"
	"testing"

	"disc/internal/core"
	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

func stream(rng *rand.Rand, n int) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		var x, y float64
		if rng.Float64() < 0.2 {
			x, y = rng.Float64()*40, rng.Float64()*40
		} else {
			cx := float64(rng.Intn(3)) * 12
			cy := float64(rng.Intn(3)) * 12
			x = cx + rng.NormFloat64()*1.5
			y = cy + rng.NormFloat64()*1.5
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
	}
	return pts
}

func verify(t *testing.T, data []model.Point, cfg model.Config, win, stride int, opts ...Option) {
	t.Helper()
	steps, err := window.Steps(data, win, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg, opts...)
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestEquivalenceWithDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := stream(rng, 900)
	verify(t, data, model.Config{Dims: 2, Eps: 2, MinPts: 5}, 300, 30)
}

func TestEquivalenceLargeStride(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := stream(rng, 600)
	verify(t, data, model.Config{Dims: 2, Eps: 2, MinPts: 4}, 200, 200)
}

func TestEquivalenceAblations(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"SeqBFS", []Option{WithMSBFS(false)}},
		{"Epoch", []Option{WithEpochProbing(true)}},
		{"SeqBFSEpoch", []Option{WithMSBFS(false), WithEpochProbing(true)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			data := stream(rng, 600)
			verify(t, data, model.Config{Dims: 2, Eps: 2, MinPts: 5}, 200, 25, tc.opts...)
		})
	}
}

func TestEquivalenceMinPtsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	data := stream(rng, 400)
	verify(t, data, model.Config{Dims: 2, Eps: 2, MinPts: 1}, 150, 25)
}

func TestEquivalence4D(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	data := make([]model.Point, 600)
	for i := range data {
		c := float64(rng.Intn(3)) * 14
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(
			c+rng.NormFloat64()*1.5, c+rng.NormFloat64()*1.5,
			rng.NormFloat64()*1.5, c/3+rng.NormFloat64())}
	}
	verify(t, data, model.Config{Dims: 4, Eps: 3, MinPts: 6}, 200, 20)
}

// TestRandomizedFuzz: the exactness property across random configurations,
// mirroring DISC's flagship test.
func TestRandomizedFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000 + trial)))
			n := 300 + rng.Intn(400)
			data := stream(rng, n)
			win := 100 + rng.Intn(120)
			stride := 1 + rng.Intn(win)
			eps := 0.5 + rng.Float64()*4
			minPts := 2 + rng.Intn(10)
			t.Logf("n=%d win=%d stride=%d eps=%.2f minPts=%d", n, win, stride, eps, minPts)
			verify(t, data, model.Config{Dims: 2, Eps: eps, MinPts: minPts}, win, stride)
		})
	}
}

// TestNonCoreDepartureDemotesAcrossClusters exercises the case where a
// border point adjacent to cores of two different clusters departs and
// demotes cores on both sides in one update.
func TestNonCoreDepartureDemotesAcrossClusters(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.1, MinPts: 3}
	// Cluster A around x=0, cluster B around x=3.6; the point m in the
	// middle is within ε of one core of each but the clusters stay separate
	// (their cores are not mutually reachable).
	pts := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0.5, 0.9)},
		{ID: 4, Pos: geom.NewVec(3.6, 0)}, {ID: 5, Pos: geom.NewVec(4.6, 0)},
		{ID: 6, Pos: geom.NewVec(4.1, 0.9)},
		{ID: 7, Pos: geom.NewVec(2.3, 0)}, // middle border point
	}
	eng := New(cfg)
	eng.Advance(pts, nil)
	want := dbscan.Run(pts, cfg)
	if err := metrics.SameClustering(eng.Snapshot(), want, pts, cfg); err != nil {
		t.Fatal(err)
	}
	// Remove the middle point; both clusters' nearest cores lose a neighbor.
	eng.Advance(nil, pts[6:7])
	rest := pts[:6]
	want = dbscan.Run(rest, cfg)
	if err := metrics.SameClustering(eng.Snapshot(), want, rest, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNonCoreInsertCreatesTwoSeparateCores exercises the subtle insertion
// case: p itself does not become a core but turns two mutually distant
// points into cores of *different* clusters, which must not be merged.
func TestNonCoreInsertCreatesTwoSeparateCores(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	// q1 at (-0.9, 0) with one existing neighbor; q2 at (0.9, 0) with one
	// existing neighbor; p at origin is within ε of q1 and q2 but has only
	// those 2 neighbors (n=3 >= 3... choose MinPts=4 to keep p non-core).
	cfg.MinPts = 4
	pts := []model.Point{
		{ID: 1, Pos: geom.NewVec(-0.9, 0)},
		{ID: 2, Pos: geom.NewVec(-1.7, 0)}, {ID: 3, Pos: geom.NewVec(-1.7, 0.5)},
		{ID: 4, Pos: geom.NewVec(0.9, 0)},
		{ID: 5, Pos: geom.NewVec(1.7, 0)}, {ID: 6, Pos: geom.NewVec(1.7, 0.5)},
	}
	eng := New(cfg)
	eng.Advance(pts, nil)
	// Now insert p: q1 (id 1) gets neighbors {2,3,p} + self = 4 -> core;
	// q2 (id 4) likewise; p has neighbors {1,4} + self = 3 -> not core.
	p := model.Point{ID: 7, Pos: geom.NewVec(0, 0)}
	eng.Advance([]model.Point{p}, nil)
	all := append(append([]model.Point{}, pts...), p)
	want := dbscan.Run(all, cfg)
	if err := metrics.SameClustering(eng.Snapshot(), want, all, cfg); err != nil {
		t.Fatal(err)
	}
	a1, _ := eng.Assignment(1)
	a4, _ := eng.Assignment(4)
	if a1.ClusterID == a4.ClusterID {
		t.Fatal("distant new cores wrongly merged into one cluster")
	}
}

// TestMoreSearchesThanDISC verifies the cost relationship of Fig. 7:
// per-point processing issues at least as many range searches as DISC's
// batched processing of the same strides.
func TestMoreSearchesThanDISC(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	data := stream(rng, 2000)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	steps, _ := window.Steps(data, 1000, 50)
	inc := New(cfg)
	batch := core.New(cfg)
	for _, st := range steps {
		inc.Advance(st.In, st.Out)
		batch.Advance(st.In, st.Out)
	}
	i, d := inc.Stats().RangeSearches, batch.Stats().RangeSearches
	if i < d {
		t.Errorf("IncDBSCAN searches %d < DISC %d; batching should not lose", i, d)
	}
	t.Logf("range searches: IncDBSCAN=%d DISC=%d", i, d)
}

func TestPanicsOnMisuse(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 2}
	t.Run("unknown exit", func(t *testing.T) {
		eng := New(cfg)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		eng.Advance(nil, []model.Point{{ID: 9, Pos: geom.NewVec(0, 0)}})
	})
	t.Run("duplicate id", func(t *testing.T) {
		eng := New(cfg)
		p := model.Point{ID: 1, Pos: geom.NewVec(0, 0)}
		eng.Advance([]model.Point{p}, nil)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		eng.Advance([]model.Point{p}, nil)
	})
}

func TestName(t *testing.T) {
	if New(model.Config{Dims: 2, Eps: 1, MinPts: 3}).Name() != "IncDBSCAN" {
		t.Fatal("wrong name")
	}
}
