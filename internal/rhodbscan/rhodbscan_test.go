package rhodbscan

import (
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

func stream(rng *rand.Rand, n int) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		var x, y float64
		if rng.Float64() < 0.2 {
			x, y = rng.Float64()*40, rng.Float64()*40
		} else {
			cx := float64(rng.Intn(3)) * 12
			cy := float64(rng.Intn(3)) * 12
			x = cx + rng.NormFloat64()*1.5
			y = cy + rng.NormFloat64()*1.5
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
	}
	return pts
}

// With ρ = 0 the approximate connectivity collapses to the exact predicate,
// so the engine must reproduce DBSCAN exactly at every stride.
func TestRhoZeroIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := stream(rng, 900)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	steps, _ := window.Steps(data, 300, 30)
	eng, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestRhoZeroIsExact3D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]model.Point, 600)
	for i := range data {
		c := float64(rng.Intn(3)) * 14
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(
			c+rng.NormFloat64()*1.5, c+rng.NormFloat64()*1.5, rng.NormFloat64()*1.5)}
	}
	cfg := model.Config{Dims: 3, Eps: 2.5, MinPts: 6}
	steps, _ := window.Steps(data, 200, 20)
	eng, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// With well-separated clusters (gaps far larger than ε(1+ρ)), even the
// approximate engine must match DBSCAN's partition perfectly.
func TestSeparatedClustersHighARI(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := stream(rng, 900)
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 5}
	steps, _ := window.Steps(data, 300, 30)
	eng, err := New(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		if i%3 != 0 {
			continue
		}
		want := dbscan.Run(st.Window, cfg)
		ari := metrics.ARI(metrics.Labels(want), metrics.Labels(eng.Snapshot()))
		if ari < 0.80 {
			t.Fatalf("step %d: ARI %.3f < 0.80", i, ari)
		}
	}
}

// The approximation may only add connectivity, never lose it: every pair of
// cores DBSCAN puts together must be together in the ρ² result.
func TestApproximationIsOneSided(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	data := stream(rng, 600)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	steps, _ := window.Steps(data, 200, 40)
	eng, _ := New(cfg, 0.25)
	for si, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		got := eng.Snapshot()
		// Collect cores by exact cluster; each exact cluster must live inside
		// one approximate cluster.
		exact2approx := map[int]int{}
		for id, w := range want {
			if w.Label != model.Core {
				continue
			}
			g := got[id]
			if g.Label != model.Core {
				t.Fatalf("step %d: core %d not core in approx result (core status must be exact)", si, id)
			}
			if prev, ok := exact2approx[w.ClusterID]; ok && prev != g.ClusterID {
				t.Fatalf("step %d: exact cluster %d straddles approx clusters %d and %d", si, w.ClusterID, prev, g.ClusterID)
			}
			exact2approx[w.ClusterID] = g.ClusterID
		}
	}
}

func TestSmallerRhoCostsMoreDistanceWork(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// A near-threshold workload: clusters separated by gaps close to ε(1+ρ).
	data := make([]model.Point, 2000)
	for i := range data {
		cx := float64(rng.Intn(8)) * 2.2
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(cx+rng.Float64()*0.8, rng.Float64()*40)}
	}
	cfg := model.Config{Dims: 2, Eps: 0.5, MinPts: 4}
	run := func(rho float64) int64 {
		steps, _ := window.Steps(data, 1000, 100)
		eng, _ := New(cfg, rho)
		for _, st := range steps {
			eng.Advance(st.In, st.Out)
		}
		return eng.Stats().MemoryItems // proxy: resident cells+edges, same for both
	}
	// Pure smoke/regression: both must complete; relative timing is measured
	// by the benchmark harness, not asserted here.
	if run(0.1) == 0 || run(0.001) == 0 {
		t.Fatal("engines did no work")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(model.Config{Dims: 2, Eps: 1, MinPts: 3}, -0.5); err == nil {
		t.Error("negative rho accepted")
	}
	if _, err := New(model.Config{}, 0.1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestName(t *testing.T) {
	eng, _ := New(model.Config{Dims: 2, Eps: 1, MinPts: 3}, 0.1)
	if eng.Name() != "rho2-DBSCAN(0.1)" {
		t.Fatalf("Name = %q", eng.Name())
	}
}
