// Package rhodbscan implements a ρ-double-approximate dynamic DBSCAN in the
// style of Gan & Tao (SIGMOD 2015 static, SIGMOD 2017 dynamic): the grid
// based approximate clustering method the DISC paper compares against as
// "ρ²-DBSCAN".
//
// The space is partitioned into cells of side ε/√d, so any two points in
// one cell are within ε of each other. Core status is exact and maintained
// incrementally: per stride, only the ε-neighborhood counts of points near
// the delta are updated, mirroring Algorithm 1 of DISC but on the grid.
// Connectivity is approximate: two core cells are connected if some pair of
// their cores lies within ε(1+ρ) — pairs beyond ε but within ε(1+ρ) may be
// accepted, which is exactly the ρ-approximate guarantee (the result equals
// an exact DBSCAN for some distance threshold in [ε, ε(1+ρ)]). A smaller ρ
// forces edge tests to distinguish near-threshold pairs and therefore scan
// more of each cell pair before accepting, which is why ρ = 0.001 runs
// markedly slower than ρ = 0.1 — the trade-off Figs. 9-11 of the paper
// exercise. Cell-pair edge decisions are cached and invalidated by per-cell
// core-set versions; the cluster graph over core cells is re-swept each
// stride, which is where the method's cost concentrates once ε is small and
// cells are many.
package rhodbscan

import (
	"fmt"
	"math"

	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/model"
)

type pstate struct {
	pos       geom.Vec
	n         int32 // ε-neighbors including self; maintained incrementally
	core      bool
	hasAnchor bool
	anchor    grid.Key // core cell justifying Border status
}

type cellState struct {
	cores   map[int64]geom.Vec
	version uint64
}

type pairKey struct{ a, b grid.Key }

type edgeCache struct {
	connected bool
	va, vb    uint64
}

// Engine implements model.Engine for ρ²-DBSCAN.
type Engine struct {
	cfg   model.Config
	rho   float64
	reach float64 // ε(1+ρ): the approximate connectivity radius
	g     *grid.Grid
	pts   map[int64]*pstate
	cells map[grid.Key]*cellState
	edges map[pairKey]edgeCache

	cellCID map[grid.Key]int // rebuilt every stride
	stats   model.Stats

	// Stride scratch.
	dirty map[grid.Key]bool
}

// New returns a ρ²-DBSCAN engine. rho is the approximation parameter; the
// paper evaluates 0.1 (fast, low accuracy) and 0.001 (slow, high accuracy).
func New(cfg model.Config, rho float64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rho < 0 {
		return nil, fmt.Errorf("rhodbscan: negative rho %g", rho)
	}
	side := cfg.Eps / math.Sqrt(float64(cfg.Dims))
	return &Engine{
		cfg:     cfg,
		rho:     rho,
		reach:   cfg.Eps * (1 + rho),
		g:       grid.New(cfg.Dims, side),
		pts:     make(map[int64]*pstate),
		cells:   make(map[grid.Key]*cellState),
		edges:   make(map[pairKey]edgeCache),
		cellCID: make(map[grid.Key]int),
		dirty:   make(map[grid.Key]bool),
	}, nil
}

// Name implements model.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("rho2-DBSCAN(%g)", e.rho)
}

// Advance implements model.Engine.
func (e *Engine) Advance(in, out []model.Point) {
	e.dirty = make(map[grid.Key]bool)
	affected := make(map[int64]bool)

	for _, p := range out {
		st, ok := e.pts[p.ID]
		if !ok {
			panic(fmt.Sprintf("rhodbscan: point %d left but was never inserted", p.ID))
		}
		e.g.Delete(p.ID, st.pos)
		if st.core {
			e.dropCore(p.ID, st)
		}
		delete(e.pts, p.ID)
		delete(affected, p.ID)
		e.stats.RangeSearches++
		e.g.SearchBall(st.pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
			e.pts[qid].n--
			affected[qid] = true
			return true
		})
	}

	for _, p := range in {
		if _, dup := e.pts[p.ID]; dup {
			panic(fmt.Sprintf("rhodbscan: duplicate point id %d", p.ID))
		}
		st := &pstate{pos: p.Pos, n: 1}
		e.pts[p.ID] = st
		e.g.Insert(p.ID, p.Pos)
		e.stats.RangeSearches++
		e.g.SearchBall(p.Pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
			if qid == p.ID {
				return true
			}
			e.pts[qid].n++
			st.n++
			affected[qid] = true
			return true
		})
		affected[p.ID] = true
	}

	// Core-status flips move points in and out of their cell's core set.
	minPts := int32(e.cfg.MinPts)
	for id := range affected {
		st := e.pts[id]
		isCore := st.n >= minPts
		if isCore == st.core {
			continue
		}
		if isCore {
			e.addCore(id, st)
		} else {
			e.dropCore(id, st)
		}
		st.core = isCore
	}

	e.rebuildClusters()
	e.refreshBorders(affected)
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.edges)) + int64(len(e.cells))

	// Bound the edge cache: stale cell pairs accumulate as the stream moves
	// through space.
	if len(e.edges) > 8*len(e.cells)*(3*e.cfg.Dims) {
		e.edges = make(map[pairKey]edgeCache)
	}
}

func (e *Engine) addCore(id int64, st *pstate) {
	k := e.g.KeyOf(st.pos)
	c, ok := e.cells[k]
	if !ok {
		c = &cellState{cores: make(map[int64]geom.Vec)}
		e.cells[k] = c
	}
	c.cores[id] = st.pos
	c.version++
	e.dirty[k] = true
}

func (e *Engine) dropCore(id int64, st *pstate) {
	k := e.g.KeyOf(st.pos)
	c, ok := e.cells[k]
	if !ok {
		return
	}
	delete(c.cores, id)
	c.version++
	e.dirty[k] = true
	if len(c.cores) == 0 {
		delete(e.cells, k)
	}
}

// neighborCellKeys enumerates keys of cells whose boxes lie within the
// approximate reach of cell k (including k itself).
func (e *Engine) neighborCellKeys(k grid.Key, fn func(grid.Key)) {
	r := int32(math.Ceil(e.reach/e.g.Side())) + 1
	dims := e.cfg.Dims
	var walk func(d int, cur grid.Key)
	walk = func(d int, cur grid.Key) {
		if d == dims {
			fn(cur)
			return
		}
		for off := -r; off <= r; off++ {
			cur[d] = k[d] + off
			walk(d+1, cur)
		}
	}
	walk(0, grid.Key{})
}

// connected decides the approximate cell-graph edge between core cells a
// and b, using the version-stamped cache.
func (e *Engine) connected(a, b grid.Key, ca, cb *cellState) bool {
	if keyLess(b, a) {
		a, b = b, a
		ca, cb = cb, ca
	}
	pk := pairKey{a, b}
	if ec, ok := e.edges[pk]; ok && ec.va == ca.version && ec.vb == cb.version {
		return ec.connected
	}
	conn := false
	reach2 := e.reach * e.reach
scan:
	for _, pa := range ca.cores {
		for _, pb := range cb.cores {
			if geom.Dist2(pa, pb, e.cfg.Dims) <= reach2 {
				conn = true
				break scan
			}
		}
	}
	e.edges[pk] = edgeCache{connected: conn, va: ca.version, vb: cb.version}
	return conn
}

func keyLess(a, b grid.Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// rebuildClusters sweeps the core-cell graph and assigns a cluster id per
// core cell.
func (e *Engine) rebuildClusters() {
	e.cellCID = make(map[grid.Key]int, len(e.cells))
	next := 0
	var stack []grid.Key
	for k := range e.cells {
		if _, done := e.cellCID[k]; done {
			continue
		}
		next++
		e.cellCID[k] = next
		stack = append(stack[:0], k)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cc := e.cells[cur]
			e.neighborCellKeys(cur, func(nk grid.Key) {
				if nk == cur {
					return
				}
				nc, ok := e.cells[nk]
				if !ok {
					return
				}
				if _, done := e.cellCID[nk]; done {
					return
				}
				if e.connected(cur, nk, cc, nc) {
					e.cellCID[nk] = next
					stack = append(stack, nk)
				}
			})
		}
	}
}

// refreshBorders recomputes the border anchor of non-core points whose
// neighborhoods may have changed: the affected set plus every point within
// reach of a cell whose core set changed.
func (e *Engine) refreshBorders(affected map[int64]bool) {
	todo := make(map[int64]*pstate)
	for id := range affected {
		if st, ok := e.pts[id]; ok && !st.core {
			todo[id] = st
		}
	}
	for k := range e.dirty {
		e.neighborCellKeys(k, func(nk grid.Key) {
			for _, it := range e.g.Cell(nk) {
				if st := e.pts[it.ID]; !st.core {
					todo[it.ID] = st
				}
			}
		})
	}
	for id, st := range todo {
		_ = id
		e.resolveAnchor(st)
	}
}

// resolveAnchor finds a core within the approximate reach of the non-core
// point and records its cell.
func (e *Engine) resolveAnchor(st *pstate) {
	st.hasAnchor = false
	k := e.g.KeyOf(st.pos)
	reach2 := e.reach * e.reach
	e.neighborCellKeys(k, func(nk grid.Key) {
		if st.hasAnchor {
			return
		}
		nc, ok := e.cells[nk]
		if !ok {
			return
		}
		for _, cp := range nc.cores {
			if geom.Dist2(st.pos, cp, e.cfg.Dims) <= reach2 {
				st.hasAnchor = true
				st.anchor = nk
				return
			}
		}
	})
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	st, ok := e.pts[id]
	if !ok {
		return model.Assignment{}, false
	}
	return e.assignmentOf(st), true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.pts))
	for id, st := range e.pts {
		out[id] = e.assignmentOf(st)
	}
	return out
}

func (e *Engine) assignmentOf(st *pstate) model.Assignment {
	if st.core {
		return model.Assignment{Label: model.Core, ClusterID: e.cellCID[e.g.KeyOf(st.pos)]}
	}
	if st.hasAnchor {
		if cid, ok := e.cellCID[st.anchor]; ok {
			return model.Assignment{Label: model.Border, ClusterID: cid}
		}
		// Anchor went stale between strides; retry once.
		e.resolveAnchor(st)
		if st.hasAnchor {
			if cid, ok := e.cellCID[st.anchor]; ok {
				return model.Assignment{Label: model.Border, ClusterID: cid}
			}
		}
	}
	return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }
