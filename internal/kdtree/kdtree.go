// Package kdtree implements a bucket k-d tree over low-dimensional points:
// internal nodes split space on one axis at a median, leaves hold small
// point buckets. It is the third spatial substrate available to DISC
// (besides the paper's R-tree and the hash grid), included to complete the
// index-choice ablation: k-d trees are the textbook alternative for
// low-dimensional range search.
//
// Deletions remove points from leaf buckets in place; the structure above
// is untouched, so heavy churn skews the tree relative to the live data.
// The tree therefore tracks a modification counter and rebuilds itself —
// a balanced bulk construction over the live points — once modifications
// since the last build exceed the current size. This amortized O(n log n)
// maintenance is the standard remedy for dynamic k-d trees.
package kdtree

import (
	"fmt"
	"sort"

	"disc/internal/geom"
)

const bucketSize = 32

type item struct {
	id  int64
	pos geom.Vec
}

type node struct {
	// Leaf fields.
	items []item
	// Internal fields.
	axis        int
	split       float64
	left, right *node
}

func (n *node) leaf() bool { return n.left == nil && n.right == nil }

// T is a bucket k-d tree. The zero value is unusable; construct with New.
// Not safe for concurrent use.
type T struct {
	dims int
	root *node
	size int
	mods int // inserts+deletes since the last rebuild

	searches     int64
	nodeAccesses int64
}

// New returns an empty tree for the given dimensionality.
func New(dims int) *T {
	if dims < 1 || dims > geom.MaxDims {
		panic(fmt.Sprintf("kdtree: invalid dims %d", dims))
	}
	return &T{dims: dims, root: &node{}}
}

// Len returns the number of stored points.
func (t *T) Len() int { return t.size }

// Searches returns the number of SearchBall calls since construction.
func (t *T) Searches() int64 { return t.searches }

// NodeAccesses returns the number of nodes visited by searches.
func (t *T) NodeAccesses() int64 { return t.nodeAccesses }

// Insert adds a point; duplicates are allowed.
func (t *T) Insert(id int64, p geom.Vec) {
	t.insert(t.root, item{id, p}, 0)
	t.size++
	t.maybeRebuild()
}

func (t *T) insert(n *node, it item, depth int) {
	for !n.leaf() {
		if it.pos[n.axis] < n.split {
			n = n.left
		} else {
			n = n.right
		}
		depth++
	}
	n.items = append(n.items, it)
	if len(n.items) > bucketSize {
		t.splitLeaf(n, depth)
	}
}

// splitLeaf turns an overfull leaf into an internal node with two leaves,
// splitting at the median of the widest axis.
func (t *T) splitLeaf(n *node, depth int) {
	axis := t.widestAxis(n.items)
	sort.Slice(n.items, func(i, j int) bool { return n.items[i].pos[axis] < n.items[j].pos[axis] })
	mid := len(n.items) / 2
	split := n.items[mid].pos[axis]
	// All coordinates equal on this axis: no useful split; allow the
	// oversized bucket (duplicate-heavy data) rather than recursing forever.
	if n.items[0].pos[axis] == n.items[len(n.items)-1].pos[axis] {
		return
	}
	// Ensure the left side is strictly below the split value.
	for mid > 0 && n.items[mid-1].pos[axis] == split {
		mid--
	}
	if mid == 0 {
		// Degenerate distribution; move the boundary up instead.
		for mid < len(n.items) && n.items[mid].pos[axis] == split {
			mid++
		}
		if mid == len(n.items) {
			return
		}
		split = n.items[mid].pos[axis]
	}
	left := &node{items: append([]item(nil), n.items[:mid]...)}
	right := &node{items: append([]item(nil), n.items[mid:]...)}
	n.items = nil
	n.axis = axis
	n.split = split
	n.left = left
	n.right = right
}

func (t *T) widestAxis(items []item) int {
	var lo, hi geom.Vec
	lo, hi = items[0].pos, items[0].pos
	for _, it := range items[1:] {
		for d := 0; d < t.dims; d++ {
			if it.pos[d] < lo[d] {
				lo[d] = it.pos[d]
			}
			if it.pos[d] > hi[d] {
				hi[d] = it.pos[d]
			}
		}
	}
	axis := 0
	best := hi[0] - lo[0]
	for d := 1; d < t.dims; d++ {
		if w := hi[d] - lo[d]; w > best {
			axis, best = d, w
		}
	}
	return axis
}

// Delete removes one point with the given id at p, reporting success.
func (t *T) Delete(id int64, p geom.Vec) bool {
	n := t.root
	for !n.leaf() {
		if p[n.axis] < n.split {
			n = n.left
		} else {
			n = n.right
		}
	}
	for i := range n.items {
		if n.items[i].id == id && n.items[i].pos == p {
			n.items[i] = n.items[len(n.items)-1]
			n.items = n.items[:len(n.items)-1]
			t.size--
			t.maybeRebuild()
			return true
		}
	}
	return false
}

// maybeRebuild rebalances once churn since the last build exceeds the live
// size (amortized O(log n) structure quality).
func (t *T) maybeRebuild() {
	t.mods++
	if t.mods < 64 || t.mods < t.size {
		return
	}
	items := make([]item, 0, t.size)
	collect(t.root, &items)
	t.root = t.build(items)
	t.mods = 0
}

func collect(n *node, out *[]item) {
	if n.leaf() {
		*out = append(*out, n.items...)
		return
	}
	collect(n.left, out)
	collect(n.right, out)
}

// build constructs a balanced subtree over items (which it may reorder).
func (t *T) build(items []item) *node {
	if len(items) <= bucketSize {
		return &node{items: items}
	}
	axis := t.widestAxis(items)
	sort.Slice(items, func(i, j int) bool { return items[i].pos[axis] < items[j].pos[axis] })
	mid := len(items) / 2
	split := items[mid].pos[axis]
	if items[0].pos[axis] == items[len(items)-1].pos[axis] {
		return &node{items: items} // all equal on the widest axis: one bucket
	}
	for mid > 0 && items[mid-1].pos[axis] == split {
		mid--
	}
	if mid == 0 {
		for mid < len(items) && items[mid].pos[axis] == split {
			mid++
		}
		if mid == len(items) {
			return &node{items: items}
		}
		split = items[mid].pos[axis]
	}
	return &node{
		axis:  axis,
		split: split,
		left:  t.build(items[:mid:mid]),
		right: t.build(items[mid:]),
	}
}

// BulkLoad replaces the contents with a balanced tree over the points.
func (t *T) BulkLoad(ids []int64, positions []geom.Vec) {
	if len(ids) != len(positions) {
		panic("kdtree: BulkLoad id/position length mismatch")
	}
	items := make([]item, len(ids))
	for i := range ids {
		items[i] = item{ids[i], positions[i]}
	}
	t.root = t.build(items)
	t.size = len(ids)
	t.mods = 0
}

// SearchBall visits every point within eps of c; fn returns false to stop.
// It reports whether the traversal ran to completion.
func (t *T) SearchBall(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool {
	t.searches++
	return t.search(t.root, c, eps, fn)
}

// SearchBallRO is SearchBall without the search/node-access accounting: it
// performs no writes to the tree, so concurrent SearchBallRO calls are safe
// as long as no Insert/Delete/BulkLoad runs. It returns the number of nodes
// touched so callers can fold the work into their own counters.
func (t *T) SearchBallRO(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) (nodes int64) {
	t.searchRO(t.root, c, eps, fn, &nodes)
	return nodes
}

func (t *T) searchRO(n *node, c geom.Vec, eps float64, fn func(int64, geom.Vec) bool, nodes *int64) bool {
	*nodes++
	if n.leaf() {
		for i := range n.items {
			if geom.WithinEps(n.items[i].pos, c, t.dims, eps) {
				if !fn(n.items[i].id, n.items[i].pos) {
					return false
				}
			}
		}
		return true
	}
	d := c[n.axis] - n.split
	near, far := n.left, n.right
	if d >= 0 {
		near, far = n.right, n.left
	}
	if !t.searchRO(near, c, eps, fn, nodes) {
		return false
	}
	if d*d <= eps*eps {
		return t.searchRO(far, c, eps, fn, nodes)
	}
	return true
}

func (t *T) search(n *node, c geom.Vec, eps float64, fn func(int64, geom.Vec) bool) bool {
	t.nodeAccesses++
	if n.leaf() {
		for i := range n.items {
			if geom.WithinEps(n.items[i].pos, c, t.dims, eps) {
				if !fn(n.items[i].id, n.items[i].pos) {
					return false
				}
			}
		}
		return true
	}
	// Visit the side containing c first; the far side only if the slab
	// distance allows.
	d := c[n.axis] - n.split
	near, far := n.left, n.right
	if d >= 0 {
		near, far = n.right, n.left
	}
	if !t.search(near, c, eps, fn) {
		return false
	}
	if d*d <= eps*eps {
		return t.search(far, c, eps, fn)
	}
	return true
}
