package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"disc/internal/geom"
)

func randVec(rng *rand.Rand, dims int, scale float64) geom.Vec {
	var v geom.Vec
	for i := 0; i < dims; i++ {
		v[i] = rng.Float64()*scale - scale/2
	}
	return v
}

type brute struct {
	dims int
	pts  map[int64]geom.Vec
}

func newBrute(dims int) *brute { return &brute{dims: dims, pts: map[int64]geom.Vec{}} }

func (b *brute) search(c geom.Vec, eps float64) []int64 {
	var out []int64
	for id, p := range b.pts {
		if geom.WithinEps(p, c, b.dims, eps) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectBall(t *T, c geom.Vec, eps float64) []int64 {
	var out []int64
	t.SearchBall(c, eps, func(id int64, _ geom.Vec) bool { out = append(out, id); return true })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(dims) * 13))
		tr := New(dims)
		bf := newBrute(dims)
		for id := int64(0); id < 3000; id++ {
			p := randVec(rng, dims, 100)
			tr.Insert(id, p)
			bf.pts[id] = p
		}
		for i := 0; i < 150; i++ {
			c := randVec(rng, dims, 100)
			eps := rng.Float64() * 15
			if got, want := collectBall(tr, c, eps), bf.search(c, eps); !equal(got, want) {
				t.Fatalf("dims=%d: got %d ids, want %d", dims, len(got), len(want))
			}
		}
	}
}

func TestInsertDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(2)
	bf := newBrute(2)
	var next int64
	for step := 0; step < 20000; step++ {
		if len(bf.pts) == 0 || rng.Float64() < 0.55 {
			p := randVec(rng, 2, 60)
			tr.Insert(next, p)
			bf.pts[next] = p
			next++
		} else {
			for id, p := range bf.pts {
				if !tr.Delete(id, p) {
					t.Fatalf("step %d: delete %d failed", step, id)
				}
				delete(bf.pts, id)
				break
			}
		}
	}
	if tr.Len() != len(bf.pts) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(bf.pts))
	}
	for i := 0; i < 80; i++ {
		c := randVec(rng, 2, 60)
		eps := rng.Float64() * 10
		if got, want := collectBall(tr, c, eps), bf.search(c, eps); !equal(got, want) {
			t.Fatal("post-churn search mismatch")
		}
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	tr := New(2)
	p := geom.NewVec(1, 1)
	for id := int64(0); id < 200; id++ {
		tr.Insert(id, p)
	}
	if got := collectBall(tr, p, 0); len(got) != 200 {
		t.Fatalf("found %d stacked points, want 200", len(got))
	}
	for id := int64(0); id < 200; id++ {
		if !tr.Delete(id, p) {
			t.Fatalf("delete %d failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("leftovers after deleting duplicates")
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)*8 + 1
		ids := make([]int64, n)
		pos := make([]geom.Vec, n)
		inc := New(3)
		for i := 0; i < n; i++ {
			ids[i] = int64(i)
			pos[i] = randVec(rng, 3, 40)
			inc.Insert(ids[i], pos[i])
		}
		bulk := New(3)
		bulk.BulkLoad(ids, pos)
		if bulk.Len() != n {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			c := randVec(rng, 3, 40)
			eps := rng.Float64() * 10
			if !equal(collectBall(bulk, c, eps), collectBall(inc, c, eps)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New(2)
	for id := int64(0); id < 100; id++ {
		tr.Insert(id, geom.NewVec(float64(id%10), float64(id/10)))
	}
	count := 0
	if tr.SearchBall(geom.NewVec(5, 5), 100, func(int64, geom.Vec) bool {
		count++
		return count < 3
	}) {
		t.Fatal("early-stopped search reported completion")
	}
	if count != 3 {
		t.Fatalf("callback ran %d times", count)
	}
}

func TestStatsAndValidation(t *testing.T) {
	tr := New(2)
	tr.Insert(1, geom.NewVec(0, 0))
	tr.SearchBall(geom.NewVec(0, 0), 1, func(int64, geom.Vec) bool { return true })
	if tr.Searches() != 1 || tr.NodeAccesses() < 1 {
		t.Fatal("stats not counted")
	}
	for _, d := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("BulkLoad mismatch did not panic")
		}
	}()
	tr.BulkLoad([]int64{1}, nil)
}

func BenchmarkSearchBall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(2)
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, randVec(rng, 2, 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SearchBall(randVec(rng, 2, 1000), 10, func(int64, geom.Vec) bool { return true })
	}
}
