package grid

import (
	"math/rand"
	"sort"
	"testing"

	"disc/internal/geom"
)

func randVec(rng *rand.Rand, dims int, scale float64) geom.Vec {
	var v geom.Vec
	for i := 0; i < dims; i++ {
		v[i] = rng.Float64()*scale - scale/2 // exercise negative coordinates
	}
	return v
}

func TestInsertDeleteLen(t *testing.T) {
	g := New(2, 1.0)
	g.Insert(1, geom.NewVec(0.5, 0.5))
	g.Insert(2, geom.NewVec(0.6, 0.6))
	g.Insert(3, geom.NewVec(5, 5))
	if g.Len() != 3 || g.CellCount() != 2 {
		t.Fatalf("Len=%d CellCount=%d", g.Len(), g.CellCount())
	}
	if !g.Delete(1, geom.NewVec(0.5, 0.5)) {
		t.Fatal("delete failed")
	}
	if g.Delete(1, geom.NewVec(0.5, 0.5)) {
		t.Fatal("double delete succeeded")
	}
	if g.Len() != 2 {
		t.Fatalf("Len=%d after delete", g.Len())
	}
}

func TestKeyOfNegativeCoordinates(t *testing.T) {
	g := New(2, 1.0)
	k1 := g.KeyOf(geom.NewVec(-0.5, 0.5))
	if k1[0] != -1 || k1[1] != 0 {
		t.Fatalf("KeyOf(-0.5,0.5) = %v", k1)
	}
	k2 := g.KeyOf(geom.NewVec(-1.0, 0))
	if k2[0] != -1 {
		t.Fatalf("KeyOf(-1,0)[0] = %d, want -1", k2[0])
	}
}

func TestSearchBallMatchesBruteForce(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(dims) * 7))
		g := New(dims, 0.8)
		type pt struct {
			id  int64
			pos geom.Vec
		}
		var pts []pt
		for id := int64(0); id < 1500; id++ {
			p := randVec(rng, dims, 30)
			g.Insert(id, p)
			pts = append(pts, pt{id, p})
		}
		for trial := 0; trial < 100; trial++ {
			c := randVec(rng, dims, 30)
			eps := rng.Float64() * 4
			var got []int64
			g.SearchBall(c, eps, func(id int64, _ geom.Vec) bool { got = append(got, id); return true })
			var want []int64
			for _, p := range pts {
				if geom.WithinEps(p.pos, c, dims, eps) {
					want = append(want, p.id)
				}
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("dims=%d: got %d, want %d", dims, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dims=%d: mismatch at %d", dims, i)
				}
			}
		}
	}
}

func TestSearchBallWithDeletions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New(2, 1.0)
	live := map[int64]geom.Vec{}
	var next int64
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.55 {
			p := randVec(rng, 2, 20)
			g.Insert(next, p)
			live[next] = p
			next++
		} else {
			for id, p := range live {
				if !g.Delete(id, p) {
					t.Fatalf("delete %d failed", id)
				}
				delete(live, id)
				break
			}
		}
	}
	if g.Len() != len(live) {
		t.Fatalf("Len=%d want %d", g.Len(), len(live))
	}
	c := geom.NewVec(0, 0)
	count := 0
	g.SearchBall(c, 5, func(id int64, _ geom.Vec) bool { count++; return true })
	want := 0
	for _, p := range live {
		if geom.WithinEps(p, c, 2, 5) {
			want++
		}
	}
	if count != want {
		t.Fatalf("post-churn search: got %d want %d", count, want)
	}
}

func TestCountBallEarlyExit(t *testing.T) {
	g := New(2, 1.0)
	for id := int64(0); id < 100; id++ {
		g.Insert(id, geom.NewVec(0.1*float64(id%10), 0.1*float64(id/10)))
	}
	if n := g.CountBall(geom.NewVec(0.5, 0.5), 10, 7); n != 7 {
		t.Fatalf("CountBall early = %d, want 7", n)
	}
	if n := g.CountBall(geom.NewVec(0.5, 0.5), 10, -1); n != 100 {
		t.Fatalf("CountBall exact = %d, want 100", n)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	g := New(2, 1.0)
	for id := int64(0); id < 50; id++ {
		g.Insert(id, geom.NewVec(0, 0))
	}
	n := 0
	if g.SearchBall(geom.NewVec(0, 0), 1, func(int64, geom.Vec) bool { n++; return n < 3 }) {
		t.Fatal("early-stopped search reported completion")
	}
	if n != 3 {
		t.Fatalf("callback ran %d times, want 3", n)
	}
}

func TestPanicsOnBadConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(5, 1) },
		func() { New(2, 0) },
		func() { New(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
