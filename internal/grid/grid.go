// Package grid provides a hash-grid spatial index over low-dimensional
// points. It is the substrate of the approximate engines: ρ²-DBSCAN uses
// cells of side ε/√d (so all points sharing a cell are mutually within ε),
// and the summarization-based engines use it to locate nearby micro-clusters
// and cluster-cells quickly.
package grid

import (
	"fmt"
	"math"

	"disc/internal/geom"
)

// Key identifies a grid cell by its integer coordinates.
type Key [geom.MaxDims]int32

// Item is one indexed point.
type Item struct {
	ID  int64
	Pos geom.Vec
}

// Grid is a hash grid with fixed cell side length. The zero value is not
// usable; construct with New. Not safe for concurrent use.
type Grid struct {
	dims  int
	side  float64
	cells map[Key][]Item
	size  int
}

// New returns an empty grid with the given dimensionality and cell side.
func New(dims int, side float64) *Grid {
	if dims < 1 || dims > geom.MaxDims {
		panic(fmt.Sprintf("grid: invalid dims %d", dims))
	}
	if side <= 0 {
		panic(fmt.Sprintf("grid: invalid cell side %g", side))
	}
	return &Grid{dims: dims, side: side, cells: make(map[Key][]Item)}
}

// Side returns the cell side length.
func (g *Grid) Side() float64 { return g.side }

// Dims returns the dimensionality.
func (g *Grid) Dims() int { return g.dims }

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.size }

// CellCount returns the number of non-empty cells.
func (g *Grid) CellCount() int { return len(g.cells) }

// KeyOf returns the cell key containing pos.
func (g *Grid) KeyOf(pos geom.Vec) Key {
	var k Key
	for d := 0; d < g.dims; d++ {
		k[d] = int32(math.Floor(pos[d] / g.side))
	}
	return k
}

// Insert adds a point. Duplicate ids and positions are permitted.
func (g *Grid) Insert(id int64, pos geom.Vec) {
	k := g.KeyOf(pos)
	g.cells[k] = append(g.cells[k], Item{ID: id, Pos: pos})
	g.size++
}

// Delete removes one point with the given id from the cell containing pos,
// reporting whether it was found.
func (g *Grid) Delete(id int64, pos geom.Vec) bool {
	k := g.KeyOf(pos)
	items := g.cells[k]
	for i := range items {
		if items[i].ID == id {
			items[i] = items[len(items)-1]
			items = items[:len(items)-1]
			if len(items) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = items
			}
			g.size--
			return true
		}
	}
	return false
}

// Cell returns the items of the cell with key k (shared slice; do not
// mutate).
func (g *Grid) Cell(k Key) []Item { return g.cells[k] }

// ForCells calls fn for every non-empty cell.
func (g *Grid) ForCells(fn func(Key, []Item)) {
	for k, items := range g.cells {
		fn(k, items)
	}
}

// cellRect returns the bounding rectangle of cell k.
func (g *Grid) cellRect(k Key) geom.Rect {
	var r geom.Rect
	for d := 0; d < g.dims; d++ {
		r.Min[d] = float64(k[d]) * g.side
		r.Max[d] = float64(k[d]+1) * g.side
	}
	return r
}

// ForNeighborCells calls fn for every non-empty cell whose bounding box is
// within eps of pos (including pos's own cell). fn may return false to stop.
func (g *Grid) ForNeighborCells(pos geom.Vec, eps float64, fn func(Key, []Item) bool) {
	center := g.KeyOf(pos)
	reach := int32(math.Ceil(eps/g.side)) + 1
	var walk func(d int, k Key) bool
	walk = func(d int, k Key) bool {
		if d == g.dims {
			items, ok := g.cells[k]
			if !ok {
				return true
			}
			if g.cellRect(k).MinDist2(pos, g.dims) > eps*eps {
				return true
			}
			return fn(k, items)
		}
		for off := -reach; off <= reach; off++ {
			k[d] = center[d] + off
			if !walk(d+1, k) {
				return false
			}
		}
		return true
	}
	walk(0, Key{})
}

// SearchBall calls fn for every point within eps of pos. fn may return false
// to stop early. It reports whether the search ran to completion.
func (g *Grid) SearchBall(pos geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool {
	done := true
	g.ForNeighborCells(pos, eps, func(_ Key, items []Item) bool {
		for _, it := range items {
			if geom.WithinEps(it.Pos, pos, g.dims, eps) {
				if !fn(it.ID, it.Pos) {
					done = false
					return false
				}
			}
		}
		return true
	})
	return done
}

// CountBall returns the number of points within eps of pos, stopping early
// once the count reaches atLeast (pass a negative atLeast for an exact
// count). The early exit is the approximation lever ρ-style methods use for
// core tests.
func (g *Grid) CountBall(pos geom.Vec, eps float64, atLeast int) int {
	n := 0
	g.SearchBall(pos, eps, func(int64, geom.Vec) bool {
		n++
		return atLeast < 0 || n < atLeast
	})
	return n
}
