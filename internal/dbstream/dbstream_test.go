package dbstream

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
)

// threeBlobs emits n points from three well-separated Gaussians, with the
// generating blob index as ground-truth label.
func threeBlobs(rng *rand.Rand, n int) ([]model.Point, map[int64]int) {
	truth := make(map[int64]int, n)
	pts := make([]model.Point, n)
	for i := range pts {
		b := rng.Intn(3)
		x := float64(b)*30 + rng.NormFloat64()*1.5
		y := rng.NormFloat64() * 1.5
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		truth[int64(i)] = b + 1
	}
	return pts, truth
}

func TestSeparatedBlobsClusterWell(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data, truth := threeBlobs(rng, 3000)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	eng, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(data, nil)
	pred := metrics.Labels(eng.Snapshot())
	ari := metrics.ARI(truth, pred)
	if ari < 0.9 {
		t.Fatalf("ARI on separated blobs = %.3f, want >= 0.9", ari)
	}
	t.Logf("ARI = %.3f with %d micro-clusters", ari, eng.MicroClusters())
}

func TestDepartedPointsLeaveSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	data, _ := threeBlobs(rng, 200)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	eng, _ := New(cfg, Options{})
	eng.Advance(data[:100], nil)
	eng.Advance(data[100:], data[:50])
	snap := eng.Snapshot()
	if len(snap) != 150 {
		t.Fatalf("snapshot covers %d points, want 150", len(snap))
	}
	if _, ok := eng.Assignment(0); ok {
		t.Fatal("departed point still assigned")
	}
}

func TestMicroClustersBounded(t *testing.T) {
	// Repeatedly hammering the same spot must keep reusing one MC.
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{})
	pts := make([]model.Point, 500)
	for i := range pts {
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(0.01*float64(i%7), 0)}
	}
	eng.Advance(pts, nil)
	if mc := eng.MicroClusters(); mc > 3 {
		t.Fatalf("points within one radius created %d MCs", mc)
	}
}

func TestDecayForgetsStaleWeight(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{Lambda: 0.05, GapTime: 100})
	// Burst at origin, then a long stream elsewhere; the origin MC must be
	// cleaned up once its decayed weight is negligible.
	var burst []model.Point
	for i := 0; i < 20; i++ {
		burst = append(burst, model.Point{ID: int64(i), Pos: geom.NewVec(0, 0)})
	}
	eng.Advance(burst, nil)
	var far []model.Point
	for i := 0; i < 2000; i++ {
		far = append(far, model.Point{ID: int64(1000 + i), Pos: geom.NewVec(100, 100)})
	}
	eng.Advance(far, nil)
	for _, mc := range eng.mcs {
		if mc.center[0] < 50 {
			t.Fatal("stale origin micro-cluster survived decay cleanup")
		}
	}
}

func TestSharedDensityConnectsTouchingBlobs(t *testing.T) {
	// Two streams of points whose MCs overlap through a dense corridor must
	// end up in one macro cluster.
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(53))
	var pts []model.Point
	for i := 0; i < 2000; i++ {
		// One elongated dense ridge from x=0 to x=10.
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*10, rng.NormFloat64()*0.3)})
	}
	eng.Advance(pts, nil)
	snap := eng.Snapshot()
	counts := map[int]int{}
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			counts[a.ClusterID]++
		}
	}
	// The dominant cluster should hold the bulk of the ridge.
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	if maxc < len(snap)*6/10 {
		t.Fatalf("largest macro cluster holds %d of %d points; ridge fragmented", maxc, len(snap))
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(model.Config{}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestInsertionOnlyStats(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{})
	eng.Advance([]model.Point{{ID: 1, Pos: geom.NewVec(0, 0)}}, nil)
	if eng.Stats().RangeSearches != 1 {
		t.Fatalf("RangeSearches = %d, want 1 (one MC lookup per insertion)", eng.Stats().RangeSearches)
	}
	eng.Advance(nil, []model.Point{{ID: 1, Pos: geom.NewVec(0, 0)}})
	if eng.Stats().RangeSearches != 1 {
		t.Fatal("deletion must not trigger searches (insertion-only method)")
	}
}
