// Package dbstream implements DBSTREAM (Hahsler & Bolaños, TKDE 2016), the
// shared-density micro-cluster stream clustering method the DISC paper
// compares against in Figs. 9, 10 and 12.
//
// Streaming points are absorbed by micro-clusters (MCs): small moving
// centers with exponentially decaying weights. A point within radius r of
// several MCs updates all of them and — the distinguishing idea of DBSTREAM
// — increments a decaying *shared density* counter for every such pair,
// recording that the two MCs overlap in a dense region. Reclustering
// connects MCs whose shared density relative to their weights exceeds the
// intersection factor α, yielding macro-clusters of arbitrary shape.
//
// The method is insertion-only: sliding-window deletions are not processed
// (the paper therefore measures only its insertion latency); forgetting
// happens through exponential decay, whose mismatch with a hard window is
// one of the reasons quality collapses as windows grow. Per-point labels for
// ARI evaluation are obtained by remembering which MC absorbed each point.
package dbstream

import (
	"fmt"
	"math"

	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/model"
)

// Options are the DBSTREAM tuning knobs with the defaults used by the
// benchmark harness. Radius <= 0 selects ε from the Config.
type Options struct {
	Radius    float64 // MC radius r; defaults to cfg.Eps
	Lambda    float64 // decay rate λ (per point); default ln2/2000 (2000-point half-life)
	Alpha     float64 // intersection factor α for connecting MCs; default 0.3
	WeightMin float64 // minimum weight for an MC to participate in clusters; default 3
	GapTime   int64   // cleanup interval in points; default 1000
}

func (o *Options) fill(cfg model.Config) {
	if o.Radius <= 0 {
		o.Radius = cfg.Eps
	}
	if o.Lambda <= 0 {
		o.Lambda = math.Ln2 / 2000
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.12
	}
	if o.WeightMin <= 0 {
		o.WeightMin = 3
	}
	if o.GapTime <= 0 {
		o.GapTime = 1000
	}
}

type micro struct {
	id     int64
	center geom.Vec
	weight float64
	last   int64 // point-time of last update
}

type edgeKey struct{ a, b int64 }

type edge struct {
	shared float64
	last   int64
}

// Engine implements model.Engine for DBSTREAM.
type Engine struct {
	cfg    model.Config
	opt    Options
	mcs    map[int64]*micro
	idx    *grid.Grid // over MC centers
	edges  map[edgeKey]*edge
	nextMC int64
	now    int64 // logical time: points processed

	assign map[int64]int64 // point id -> absorbing MC id
	macro  map[int64]int   // MC id -> macro cluster id (rebuilt per Advance)
	stats  model.Stats
}

// New returns a DBSTREAM engine.
func New(cfg model.Config, opt Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.fill(cfg)
	return &Engine{
		cfg:    cfg,
		opt:    opt,
		mcs:    make(map[int64]*micro),
		idx:    grid.New(cfg.Dims, opt.Radius),
		edges:  make(map[edgeKey]*edge),
		assign: make(map[int64]int64),
		macro:  make(map[int64]int),
	}, nil
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "DBSTREAM" }

// Advance implements model.Engine. Departing points are only unregistered
// from the per-point label map (no cluster maintenance happens for them, as
// in the original insertion-only design); arriving points run the DBSTREAM
// update rule.
func (e *Engine) Advance(in, out []model.Point) {
	for _, p := range out {
		delete(e.assign, p.ID)
	}
	for _, p := range in {
		e.insert(p)
	}
	e.recluster()
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.mcs)) + int64(len(e.edges))
}

func (e *Engine) insert(p model.Point) {
	e.now++
	t := e.now
	r := e.opt.Radius

	// Find all MCs whose (current) center is within r of p.
	var hits []*micro
	e.stats.RangeSearches++
	e.idx.SearchBall(p.Pos, r, func(id int64, _ geom.Vec) bool {
		hits = append(hits, e.mcs[id])
		return true
	})

	if len(hits) == 0 {
		mc := &micro{id: e.nextMC, center: p.Pos, weight: 1, last: t}
		e.nextMC++
		e.mcs[mc.id] = mc
		e.idx.Insert(mc.id, mc.center)
		e.assign[p.ID] = mc.id
		if t%e.opt.GapTime == 0 {
			e.cleanup()
		}
		return
	}

	// Update every hit: decay weight, absorb the point, move the center
	// toward p with a Gaussian neighborhood function (σ = r/3).
	sigma2 := (r / 3) * (r / 3)
	var closest *micro
	best := math.Inf(1)
	oldCenters := make([]geom.Vec, len(hits))
	for i, mc := range hits {
		dt := t - mc.last
		mc.weight = mc.weight*decay(e.opt.Lambda, dt) + 1
		mc.last = t
		d2 := geom.Dist2(mc.center, p.Pos, e.cfg.Dims)
		h := math.Exp(-d2 / (2 * sigma2))
		oldCenters[i] = mc.center
		for d := 0; d < e.cfg.Dims; d++ {
			mc.center[d] += h * (p.Pos[d] - mc.center[d])
		}
		if d2 < best {
			best, closest = d2, mc
		}
	}
	// Anti-collapse rule of the original: if a move would bring two absorbing
	// MCs within r of each other, both moves are undone — MCs tile dense
	// regions instead of converging onto one spot, and the shared-density
	// graph carries the connectivity.
	for i := 0; i < len(hits); i++ {
		for j := i + 1; j < len(hits); j++ {
			if geom.Dist2(hits[i].center, hits[j].center, e.cfg.Dims) < r*r {
				hits[i].center = oldCenters[i]
				hits[j].center = oldCenters[j]
			}
		}
	}
	// Keep the spatial index consistent with any moved centers.
	for i, mc := range hits {
		if e.idx.KeyOf(oldCenters[i]) != e.idx.KeyOf(mc.center) {
			e.idx.Delete(mc.id, oldCenters[i])
			e.idx.Insert(mc.id, mc.center)
		}
	}
	// Shared density for every pair of hit MCs.
	for i := 0; i < len(hits); i++ {
		for j := i + 1; j < len(hits); j++ {
			k := pairKey(hits[i].id, hits[j].id)
			ed, ok := e.edges[k]
			if !ok {
				ed = &edge{}
				e.edges[k] = ed
			}
			ed.shared = ed.shared*decay(e.opt.Lambda, t-ed.last) + 1
			ed.last = t
		}
	}
	e.assign[p.ID] = closest.id

	if t%e.opt.GapTime == 0 {
		e.cleanup()
	}
}

// decay returns the exponential forgetting factor e^{-λ·dt}; with the
// default λ = ln2/2000 an untouched weight halves every 2000 points.
func decay(lambda float64, dt int64) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp(-lambda * float64(dt))
}

func pairKey(a, b int64) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// cleanup removes weak micro-clusters and weak edges, as the original does
// every t_gap time units.
func (e *Engine) cleanup() {
	weak := decay(e.opt.Lambda, e.opt.GapTime)
	for id, mc := range e.mcs {
		if mc.weight*decay(e.opt.Lambda, e.now-mc.last) < weak {
			e.idx.Delete(id, mc.center)
			delete(e.mcs, id)
		}
	}
	for k, ed := range e.edges {
		_, okA := e.mcs[k.a]
		_, okB := e.mcs[k.b]
		if !okA || !okB || ed.shared*decay(e.opt.Lambda, e.now-ed.last) < weak {
			delete(e.edges, k)
		}
	}
}

// recluster rebuilds macro-clusters: strong MCs are vertices; an edge
// connects two MCs when their shared density relative to their mean weight
// exceeds α.
func (e *Engine) recluster() {
	e.macro = make(map[int64]int, len(e.mcs))
	adj := make(map[int64][]int64)
	for k, ed := range e.edges {
		a, okA := e.mcs[k.a]
		b, okB := e.mcs[k.b]
		if !okA || !okB {
			continue
		}
		wa := a.weight * decay(e.opt.Lambda, e.now-a.last)
		wb := b.weight * decay(e.opt.Lambda, e.now-b.last)
		s := ed.shared * decay(e.opt.Lambda, e.now-ed.last)
		if wa < e.opt.WeightMin || wb < e.opt.WeightMin {
			continue
		}
		if s/((wa+wb)/2) >= e.opt.Alpha {
			adj[k.a] = append(adj[k.a], k.b)
			adj[k.b] = append(adj[k.b], k.a)
		}
	}
	next := 0
	var stack []int64
	for id, mc := range e.mcs {
		if _, done := e.macro[id]; done {
			continue
		}
		if mc.weight*decay(e.opt.Lambda, e.now-mc.last) < e.opt.WeightMin {
			continue // weak MC: its points read as noise
		}
		next++
		e.macro[id] = next
		stack = append(stack[:0], id)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range adj[cur] {
				if _, done := e.macro[nb]; !done {
					e.macro[nb] = next
					stack = append(stack, nb)
				}
			}
		}
	}
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	mcID, ok := e.assign[id]
	if !ok {
		return model.Assignment{}, false
	}
	return e.assignmentOf(mcID), true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.assign))
	for id, mcID := range e.assign {
		out[id] = e.assignmentOf(mcID)
	}
	return out
}

func (e *Engine) assignmentOf(mcID int64) model.Assignment {
	if cid, ok := e.macro[mcID]; ok {
		return model.Assignment{Label: model.Core, ClusterID: cid}
	}
	return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }

// MicroClusters returns the number of live micro-clusters (drill-down for
// the evaluation's observation that fine-grained data forces DBSTREAM to
// manage very many MCs).
func (e *Engine) MicroClusters() int { return len(e.mcs) }

// String describes the engine configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("DBSTREAM(r=%g λ=%g α=%g)", e.opt.Radius, e.opt.Lambda, e.opt.Alpha)
}
