// Package extran implements EXTRA-N (Yang, Rundensteiner, Ward: EDBT 2009)
// in the form the DISC paper evaluates it: a neighbor-based pattern
// detection engine for count-based sliding windows that eliminates range
// searches for expiring points by *predicting*, at each point's arrival, its
// neighbor count for every future slide both endpoints will live through.
//
// Mechanics. With window W and stride S, a window spans k = W/S slides and
// every point lives through at most k of them. An arriving point performs
// one range search; for each neighbor found, both endpoints increment their
// per-slide predicted counts over the slides their lifetimes overlap, and
// record each other in materialized neighbor lists. When the window slides,
// expired points are simply dropped — their contribution was never counted
// for the slides after their expiry — and the clustering for the new window
// is assembled from the predicted counts (core status is a single array
// lookup) and the neighbor lists (connectivity needs no index searches).
//
// This faithfully reproduces EXTRA-N's published cost profile, which the
// DISC evaluation exercises: per-slide cost is dominated by the O(k)
// bookkeeping per neighbor pair and the neighbor-list sweep over the whole
// window, so its speedup over DBSCAN saturates as the stride shrinks
// (Fig. 4) and its memory footprint grows with both the window size and the
// number of sub-windows until it becomes impractical (the DNFs of Fig. 5).
// Where the original maintains hierarchical "predicted cluster membership"
// views, this implementation recomputes connectivity per slide from the
// materialized lists; both variants issue zero range searches per expiry,
// which is the property under evaluation.
package extran

import (
	"fmt"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/rtree"
)

type pstate struct {
	pos    geom.Vec
	entry  int64   // slide at which the point entered the window
	expiry int64   // slide at which it is predicted to leave
	cnt    []int32 // cnt[j]: predicted ε-neighbors (excl. self) at slide entry+j
	nbrs   []int64 // materialized neighbor ids (pruned lazily)
	label  model.Label
	cid    int
}

// Engine implements model.Engine for EXTRA-N. It requires a fixed
// count-based window whose size is a multiple of the stride, matching the
// sub-window structure of the original algorithm.
type Engine struct {
	cfg     model.Config
	window  int
	stride  int
	k       int // sub-windows per window
	slide   int64
	seq     int64 // global arrival sequence number
	pts     map[int64]*pstate
	tree    *rtree.T
	stats   model.Stats
	memPeak int64
}

// New returns an EXTRA-N engine. window must be a positive multiple of
// stride; the engine's expiry predictions depend on it.
func New(cfg model.Config, window, stride int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if window <= 0 || stride <= 0 || window%stride != 0 {
		return nil, fmt.Errorf("extran: window %d must be a positive multiple of stride %d", window, stride)
	}
	return &Engine{
		cfg:    cfg,
		window: window,
		stride: stride,
		k:      window / stride,
		pts:    make(map[int64]*pstate),
		tree:   rtree.New(cfg.Dims),
	}, nil
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "EXTRA-N" }

// Advance implements model.Engine.
func (e *Engine) Advance(in, out []model.Point) {
	e.slide++
	// Expiry: no range searches, by design.
	for _, p := range out {
		st, ok := e.pts[p.ID]
		if !ok {
			panic(fmt.Sprintf("extran: point %d left but was never inserted", p.ID))
		}
		if st.expiry != e.slide {
			panic(fmt.Sprintf("extran: point %d expired at slide %d, predicted %d; the engine requires fixed count-based strides", p.ID, e.slide, st.expiry))
		}
		e.tree.Delete(p.ID, st.pos)
		delete(e.pts, p.ID)
	}

	// Arrival: one range search per point; predicted counts for every
	// overlapping future slide on both endpoints.
	treeBefore := e.tree.Stats()
	for _, p := range in {
		if _, dup := e.pts[p.ID]; dup {
			panic(fmt.Sprintf("extran: duplicate point id %d", p.ID))
		}
		st := &pstate{
			pos:    p.Pos,
			entry:  e.slide,
			expiry: e.seq/int64(e.stride) + 2,
			cnt:    make([]int32, e.k),
		}
		e.seq++
		e.pts[p.ID] = st
		e.tree.Insert(p.ID, p.Pos)
		e.tree.SearchBall(p.Pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
			if qid == p.ID {
				return true
			}
			q := e.pts[qid]
			st.nbrs = append(st.nbrs, qid)
			q.nbrs = append(q.nbrs, p.ID)
			last := st.expiry
			if q.expiry < last {
				last = q.expiry
			}
			for s := e.slide; s < last; s++ {
				st.cnt[s-st.entry]++
				q.cnt[s-q.entry]++
			}
			return true
		})
	}
	treeAfter := e.tree.Stats()
	e.stats.RangeSearches += treeAfter.RangeSearches - treeBefore.RangeSearches
	e.stats.NodeAccesses += treeAfter.NodeAccesses - treeBefore.NodeAccesses

	e.recluster()
	e.stats.Strides++
	var mem int64
	for _, st := range e.pts {
		mem += int64(len(st.nbrs)) + int64(e.k)
	}
	if mem > e.memPeak {
		e.memPeak = mem
	}
	e.stats.MemoryItems = e.memPeak
}

// recluster assembles the clustering of the current window from predicted
// counts and materialized neighbor lists; zero index searches.
func (e *Engine) recluster() {
	minPts := int32(e.cfg.MinPts)
	// Core status is an O(1) lookup per point.
	for _, st := range e.pts {
		if st.cnt[e.slide-st.entry]+1 >= minPts {
			st.label = model.Core
		} else {
			st.label = model.Unclassified
		}
		st.cid = 0
	}
	// Connectivity over cores via neighbor lists, pruning dead entries.
	nextCID := 0
	var stack []int64
	for id, st := range e.pts {
		if st.label != model.Core || st.cid != 0 {
			continue
		}
		nextCID++
		st.cid = nextCID
		stack = append(stack[:0], id)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cst := e.pts[cur]
			live := cst.nbrs[:0]
			for _, nid := range cst.nbrs {
				n, ok := e.pts[nid]
				if !ok {
					continue // expired neighbor: prune lazily
				}
				live = append(live, nid)
				if n.label == model.Core && n.cid == 0 {
					n.cid = nextCID
					stack = append(stack, nid)
				}
			}
			cst.nbrs = live
		}
	}
	// Borders take the cluster of any live core neighbor.
	for _, st := range e.pts {
		if st.label == model.Core {
			continue
		}
		st.label = model.Noise
		for _, nid := range st.nbrs {
			if n, ok := e.pts[nid]; ok && n.label == model.Core {
				st.label = model.Border
				st.cid = n.cid
				break
			}
		}
	}
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	st, ok := e.pts[id]
	if !ok {
		return model.Assignment{}, false
	}
	return model.Assignment{Label: st.label, ClusterID: st.cid}, true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.pts))
	for id, st := range e.pts {
		out[id] = model.Assignment{Label: st.label, ClusterID: st.cid}
	}
	return out
}

// Stats implements model.Engine. MemoryItems reports the peak number of
// resident bookkeeping entries (neighbor-list slots plus per-slide
// counters), the quantity whose growth forces the DNFs in Fig. 5.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{}; e.memPeak = 0 }

// MemoryItems returns the current resident bookkeeping entry count.
func (e *Engine) MemoryItems() int64 {
	var mem int64
	for _, st := range e.pts {
		mem += int64(len(st.nbrs)) + int64(e.k)
	}
	return mem
}
