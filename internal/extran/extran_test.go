package extran

import (
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

func stream(rng *rand.Rand, n int) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		var x, y float64
		if rng.Float64() < 0.2 {
			x, y = rng.Float64()*40, rng.Float64()*40
		} else {
			cx := float64(rng.Intn(3)) * 12
			cy := float64(rng.Intn(3)) * 12
			x = cx + rng.NormFloat64()*1.5
			y = cy + rng.NormFloat64()*1.5
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
	}
	return pts
}

func TestEquivalenceWithDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := stream(rng, 900)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	steps, err := window.Steps(data, 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestEquivalenceStrideEqualsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data := stream(rng, 600)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 4}
	steps, _ := window.Steps(data, 200, 200)
	eng, err := New(cfg, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestNoExpirySearches(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	data := stream(rng, 800)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}
	steps, _ := window.Steps(data, 400, 40)
	eng, _ := New(cfg, 400, 40)
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	// Exactly one range search per arrived point, none for expiries.
	if got, want := eng.Stats().RangeSearches, int64(len(data)); got != want {
		t.Errorf("range searches = %d, want exactly %d (one per arrival)", got, want)
	}
}

func TestMemoryGrowsWithSubWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	data := stream(rng, 1200)
	cfg := model.Config{Dims: 2, Eps: 2, MinPts: 5}

	run := func(win, stride int) int64 {
		steps, _ := window.Steps(data, win, stride)
		eng, err := New(cfg, win, stride)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			eng.Advance(st.In, st.Out)
		}
		return eng.Stats().MemoryItems
	}
	coarse := run(400, 200) // k = 2 sub-windows
	fine := run(400, 10)    // k = 40 sub-windows
	if fine <= coarse {
		t.Errorf("memory with 40 sub-windows (%d) not larger than with 2 (%d)", fine, coarse)
	}
	t.Logf("memory items: k=2 -> %d, k=40 -> %d", coarse, fine)
}

func TestConstructorValidation(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	if _, err := New(cfg, 100, 30); err == nil {
		t.Error("non-divisible window accepted")
	}
	if _, err := New(cfg, 0, 10); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(model.Config{}, 100, 10); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPanicsOnIrregularStride(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 2}
	eng, _ := New(cfg, 4, 2)
	mk := func(id int64) model.Point { return model.Point{ID: id, Pos: geom.NewVec(float64(id), 0)} }
	eng.Advance([]model.Point{mk(0), mk(1), mk(2), mk(3)}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for off-schedule expiry")
		}
	}()
	// Points 0..1 expire at slide 2; expiring point 2 early must panic.
	eng.Advance(nil, []model.Point{mk(2)})
}
