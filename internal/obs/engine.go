package obs

import (
	"disc/internal/core"
)

// EngineMetrics is a core.Observer that feeds a Registry: one instance
// registers the full disc_* metric family and translates each StrideRecord
// into counter/gauge/histogram updates. Attach it with
// core.WithObserver(m) (or Engine.SetObserver) and mount the registry's
// Handler at /metrics.
//
// Metric inventory (all prefixed disc_):
//
//	stride_duration_seconds        histogram  whole-Advance latency
//	phase_duration_seconds{phase}  histogram  collect|ex_cores|neo_cores|finalize
//	strides_total                  counter    window advances
//	points_in_total                counter    Δin arrivals
//	points_out_total               counter    Δout departures
//	ex_cores_total                 counter    ex-cores identified
//	neo_cores_total                counter    neo-cores identified
//	range_searches_total           counter    ε-range searches issued
//	node_accesses_total            counter    index nodes / grid cells touched
//	epoch_pruned_total             counter    entries hidden by epoch probing
//	msbfs_queue_merges_total       counter    MS-BFS thread merges
//	cluster_events_total{type}     counter    emergence|expansion|merger|split|shrink|dissipation
//	connectivity_checks_total      counter    MS-BFS connectivity checks dispatched
//	scratch_pool_grows_total       counter    scratch-pool misses (new allocations)
//	window_size                    gauge      resident points after the last stride
//	collect_workers                gauge      COLLECT fan-out width of the last stride
//	cluster_workers                gauge      widest CLUSTER fan-out of the last stride
//
// Connectivity-strategy family (how the configured strategy paid for the
// identical answers; traversal counters stay zero under the dynamic forest,
// forest counters stay zero under MS-BFS):
//
//	connectivity_strategy{strategy}              gauge      1 on the active strategy, 0 on the other
//	connectivity_check_duration_seconds          histogram  phase-C connectivity query time per stride
//	connectivity_forest_update_duration_seconds  histogram  dyncon forest sync time per stride
//	connectivity_traversal_searches_total        counter    MS-BFS/seq expansion searches run
//	connectivity_traversal_nodes_total           counter    index nodes those searches touched
//	connectivity_forest_ops_total                counter    forest mutations applied (amortized ns = update sum / ops)
//	connectivity_replacement_searches_total      counter    replacement-edge searches after tree cuts
//	connectivity_replacement_scans_total         counter    candidate edges scanned by those searches
//	connectivity_forest_rebuilds_total           counter    full forest rebuilds (desync fallbacks)
//	connectivity_forest_vertices                 gauge      forest size after the last stride (cores)
//	connectivity_forest_edges                    gauge      core-adjacency edges tracked
type EngineMetrics struct {
	strideDur *Histogram
	phaseDur  [4]*Histogram // collect, ex_cores, neo_cores, finalize

	strides       *Counter
	pointsIn      *Counter
	pointsOut     *Counter
	exCores       *Counter
	neoCores      *Counter
	rangeSearches *Counter
	nodeAccesses  *Counter
	epochPruned   *Counter
	msbfsMerges   *Counter
	connChecks    *Counter
	poolGrows     *Counter
	events        [6]*Counter // indexed by core.EventType

	windowSize     *Gauge
	workers        *Gauge
	clusterWorkers *Gauge

	connStrategy    [2]*Gauge // msbfs, dynamic — 1 on the active one
	connCheckDur    *Histogram
	forestUpdateDur *Histogram
	connSearches    *Counter
	connNodes       *Counter
	forestOps       *Counter
	replSearches    *Counter
	replScans       *Counter
	forestRebuilds  *Counter
	forestVertices  *Gauge
	forestEdges     *Gauge
}

// NewEngineMetrics registers the disc_* instruments on r and returns the
// observer. Register at most once per registry (duplicate names panic).
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return NewEngineMetricsLabeled(r, nil)
}

// NewEngineMetricsLabeled registers the disc_* instruments with the given
// constant base labels on every family — the multi-tenant server passes
// {stream="<name>"} so one registry carries one family set per tenant.
// With a nil base it is identical to NewEngineMetrics. Each (family, base)
// pair may be registered at most once per registry.
func NewEngineMetricsLabeled(r *Registry, base Labels) *EngineMetrics {
	m := &EngineMetrics{
		strideDur: r.Histogram("disc_stride_duration_seconds",
			"Wall-clock duration of one window advance (COLLECT through finalize).", nil, base),
		strides: r.Counter("disc_strides_total",
			"Window advances processed.", base),
		pointsIn: r.Counter("disc_points_in_total",
			"Points that entered the window (sum of stride delta-in sizes).", base),
		pointsOut: r.Counter("disc_points_out_total",
			"Points that left the window (sum of stride delta-out sizes).", base),
		exCores: r.Counter("disc_ex_cores_total",
			"Ex-cores identified by COLLECT (were cores, no longer are or exited).", base),
		neoCores: r.Counter("disc_neo_cores_total",
			"Neo-cores identified by COLLECT (are cores, were not or just arrived).", base),
		rangeSearches: r.Counter("disc_range_searches_total",
			"Epsilon-range searches issued against the spatial index.", base),
		nodeAccesses: r.Counter("disc_node_accesses_total",
			"Index nodes (or grid cells) touched by range searches.", base),
		epochPruned: r.Counter("disc_epoch_pruned_total",
			"Entries or subtrees hidden from reachability searches by epoch probing.", base),
		msbfsMerges: r.Counter("disc_msbfs_queue_merges_total",
			"Multi-Starter BFS thread merges (two search frontiers met).", base),
		connChecks: r.Counter("disc_connectivity_checks_total",
			"Density-connectivity checks dispatched by the ex-core phase.", base),
		poolGrows: r.Counter("disc_scratch_pool_grows_total",
			"Scratch-pool misses: nodes or buffers newly allocated instead of reused.", base),
		windowSize: r.Gauge("disc_window_size",
			"Points resident in the sliding window after the last stride.", base),
		workers: r.Gauge("disc_collect_workers",
			"COLLECT worker fan-out width used by the last stride.", base),
		clusterWorkers: r.Gauge("disc_cluster_workers",
			"Widest CLUSTER fan-out (capture or connectivity) used by the last stride.", base),
		connCheckDur: r.Histogram("disc_connectivity_check_duration_seconds",
			"Phase-C connectivity query time per stride, under the configured strategy.", nil, base),
		forestUpdateDur: r.Histogram("disc_connectivity_forest_update_duration_seconds",
			"Dynamic-forest sync time per stride (zero under MS-BFS strategies).", nil, base),
		connSearches: r.Counter("disc_connectivity_traversal_searches_total",
			"Traversal expansion searches run by MS-BFS/sequential connectivity checks.", base),
		connNodes: r.Counter("disc_connectivity_traversal_nodes_total",
			"Index nodes touched by connectivity traversal searches.", base),
		forestOps: r.Counter("disc_connectivity_forest_ops_total",
			"Dynamic-forest mutations applied (vertices and edges); amortized update time is the update-duration sum over this.", base),
		replSearches: r.Counter("disc_connectivity_replacement_searches_total",
			"Replacement-edge searches triggered by spanning-tree cuts.", base),
		replScans: r.Counter("disc_connectivity_replacement_scans_total",
			"Candidate edges scanned by replacement-edge searches.", base),
		forestRebuilds: r.Counter("disc_connectivity_forest_rebuilds_total",
			"Full forest rebuilds (restore or desync fallbacks).", base),
		forestVertices: r.Gauge("disc_connectivity_forest_vertices",
			"Vertices (cores) in the maintained connectivity forest after the last stride.", base),
		forestEdges: r.Gauge("disc_connectivity_forest_edges",
			"Core-adjacency edges tracked by the maintained connectivity forest.", base),
	}
	for i, s := range []string{"msbfs", "dynamic"} {
		m.connStrategy[i] = r.Gauge("disc_connectivity_strategy",
			"1 on the configured connectivity strategy, 0 on the others.", base.With(Labels{"strategy": s}))
	}
	phases := []string{"collect", "ex_cores", "neo_cores", "finalize"}
	for i, ph := range phases {
		m.phaseDur[i] = r.Histogram("disc_phase_duration_seconds",
			"Wall-clock duration of one DISC phase within an advance.", nil, base.With(Labels{"phase": ph}))
	}
	for t := core.EventType(0); int(t) < len(m.events); t++ {
		m.events[t] = r.Counter("disc_cluster_events_total",
			"Cluster-evolution events detected, by kind.", base.With(Labels{"type": t.String()}))
	}
	return m
}

// ObserveStride implements core.Observer.
func (m *EngineMetrics) ObserveStride(rec core.StrideRecord) {
	m.strideDur.Observe(rec.Total.Seconds())
	m.phaseDur[0].Observe(rec.Collect.Seconds())
	m.phaseDur[1].Observe(rec.ExCorePhase.Seconds())
	m.phaseDur[2].Observe(rec.NeoCorePhase.Seconds())
	m.phaseDur[3].Observe(rec.Finalize.Seconds())

	m.strides.Inc()
	m.pointsIn.Add(int64(rec.DeltaIn))
	m.pointsOut.Add(int64(rec.DeltaOut))
	m.exCores.Add(int64(rec.ExCores))
	m.neoCores.Add(int64(rec.NeoCores))
	m.rangeSearches.Add(rec.RangeSearches)
	m.nodeAccesses.Add(rec.NodeAccesses)
	m.epochPruned.Add(rec.EpochPruned)
	m.msbfsMerges.Add(rec.MSBFSMerges)
	m.connChecks.Add(int64(rec.ConnChecks))
	m.poolGrows.Add(rec.PoolGrows)

	m.events[core.Emergence].Add(int64(rec.Emergences))
	m.events[core.Expansion].Add(int64(rec.Expansions))
	m.events[core.Merger].Add(int64(rec.Mergers))
	m.events[core.Split].Add(int64(rec.Splits))
	m.events[core.Shrink].Add(int64(rec.Shrinks))
	m.events[core.Dissipation].Add(int64(rec.Dissipations))

	m.windowSize.Set(float64(rec.WindowSize))
	m.workers.Set(float64(rec.Workers))
	m.clusterWorkers.Set(float64(rec.ClusterWorkers))

	for i, s := range []string{"msbfs", "dynamic"} {
		var on float64
		if rec.ConnStrategy == s {
			on = 1
		}
		m.connStrategy[i].Set(on)
	}
	m.connCheckDur.Observe(rec.Connectivity.Seconds())
	m.forestUpdateDur.Observe(rec.ForestUpdate.Seconds())
	m.connSearches.Add(rec.ConnSearches)
	m.connNodes.Add(rec.ConnNodes)
	m.forestOps.Add(rec.ForestOps)
	m.replSearches.Add(rec.ForestReplSearches)
	m.replScans.Add(rec.ForestReplScans)
	m.forestRebuilds.Add(rec.ForestRebuilds)
	m.forestVertices.Set(float64(rec.ForestVertices))
	m.forestEdges.Set(float64(rec.ForestEdges))
}
