package obs

import (
	"disc/internal/ckpt"
)

// CheckpointMetrics is a ckpt.Observer feeding a Registry: one instance
// registers the disc_checkpoint_* family and translates each checkpoint
// attempt into instrument updates. Attach it with
// ckpt.WithObserver(m) on the auto-checkpoint runner.
//
// Metric inventory (all prefixed disc_checkpoint_):
//
//	attempts_total    counter    checkpoint attempts (success + failure)
//	failures_total    counter    attempts that failed (snapshot or I/O)
//	bytes_total       counter    payload bytes durably written
//	duration_seconds  histogram  wall-clock time per attempt
//	generation        gauge      newest generation number written
//	last_strides      gauge      stride count the newest checkpoint captured
type CheckpointMetrics struct {
	attempts *Counter
	failures *Counter
	bytes    *Counter
	dur      *Histogram
	gen      *Gauge
	strides  *Gauge
}

// NewCheckpointMetrics registers the disc_checkpoint_* instruments on r
// and returns the observer. Register at most once per registry (duplicate
// names panic).
func NewCheckpointMetrics(r *Registry) *CheckpointMetrics {
	return NewCheckpointMetricsLabeled(r, nil)
}

// NewCheckpointMetricsLabeled registers the disc_checkpoint_* instruments
// with the given constant base labels (the multi-tenant server passes
// {stream="<name>"}). With a nil base it is identical to
// NewCheckpointMetrics.
func NewCheckpointMetricsLabeled(r *Registry, base Labels) *CheckpointMetrics {
	return &CheckpointMetrics{
		attempts: r.Counter("disc_checkpoint_attempts_total",
			"Durable checkpoint attempts, successful or not.", base),
		failures: r.Counter("disc_checkpoint_failures_total",
			"Durable checkpoint attempts that failed (snapshot encoding or disk I/O).", base),
		bytes: r.Counter("disc_checkpoint_bytes_total",
			"Checkpoint payload bytes durably written (framing overhead excluded).", base),
		dur: r.Histogram("disc_checkpoint_duration_seconds",
			"Wall-clock duration of one checkpoint attempt (snapshot + frame + fsync + rename).", nil, base),
		gen: r.Gauge("disc_checkpoint_generation",
			"Newest checkpoint generation number written by this process.", base),
		strides: r.Gauge("disc_checkpoint_last_strides",
			"Stride count captured by the newest successful checkpoint.", base),
	}
}

// ObserveCheckpoint implements ckpt.Observer.
func (m *CheckpointMetrics) ObserveCheckpoint(rec ckpt.Record) {
	m.attempts.Inc()
	m.dur.Observe(rec.Duration.Seconds())
	if rec.Err != nil {
		m.failures.Inc()
		return
	}
	m.bytes.Add(int64(rec.Bytes))
	m.gen.Set(float64(rec.Gen))
	m.strides.Set(float64(rec.Strides))
}
