package obs

import (
	"strings"
	"testing"
)

func TestQueryMetricsRegistersAndRenders(t *testing.T) {
	r := NewRegistry()
	m := NewQueryMetrics(r)

	m.ObserveQuery("clusters", 0.0002, 0)
	m.ObserveQuery("clusters", 0.004, 1)
	m.ObserveQuery("stats", 0.00002, 0)
	m.ObserveQuery("point", 0.00007, 0)
	m.ObserveQuery("events", 0.3, 5)
	// An endpoint the family does not know must not panic and still
	// contributes its lag observation.
	m.ObserveQuery("mystery", 1.0, 2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE disc_query_duration_seconds histogram",
		`disc_query_duration_seconds_count{endpoint="clusters"} 2`,
		`disc_query_duration_seconds_count{endpoint="stats"} 1`,
		`disc_query_duration_seconds_count{endpoint="point"} 1`,
		`disc_query_duration_seconds_count{endpoint="events"} 1`,
		"# TYPE disc_query_stride_lag histogram",
		"disc_query_stride_lag_count 6",
		`disc_query_stride_lag_bucket{le="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Per-endpoint histograms really separate observations: the clusters
	// histogram saw both samples, the stats one only the fast sample.
	if got := m.dur["clusters"].Count(); got != 2 {
		t.Fatalf("clusters count %d, want 2", got)
	}
	if got := m.dur["stats"].Sum(); got >= 0.001 {
		t.Fatalf("stats sum %g leaked a foreign observation", got)
	}
	if got := m.lag.Count(); got != 6 {
		t.Fatalf("lag count %d, want 6 (unknown endpoint still counted)", got)
	}
}
