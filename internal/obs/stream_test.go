package obs

import (
	"strings"
	"testing"
)

// TestStreamMetricsPoolCap pins the cardinality contract: the first `cap`
// distinct names get dedicated label values, everything after shares one
// {stream="other"} bundle, and re-acquiring a name returns its original
// bundle.
func TestStreamMetricsPoolCap(t *testing.T) {
	r := NewRegistry()
	p := NewStreamMetricsPool(r, 2)

	a := p.Acquire("a")
	b := p.Acquire("b")
	c := p.Acquire("c")
	d := p.Acquire("d")

	if !a.Dedicated || a.Label != "a" {
		t.Fatalf("stream a: got label %q dedicated %v", a.Label, a.Dedicated)
	}
	if !b.Dedicated || b.Label != "b" {
		t.Fatalf("stream b: got label %q dedicated %v", b.Label, b.Dedicated)
	}
	if c.Dedicated || c.Label != OverflowStream {
		t.Fatalf("stream c past cap: got label %q dedicated %v", c.Label, c.Dedicated)
	}
	if d != c {
		t.Fatal("streams past the cap must share one overflow bundle")
	}
	if got := p.Acquire("a"); got != a {
		t.Fatal("re-acquiring a dedicated stream must return its original bundle")
	}
	if n := p.DedicatedStreams(); n != 2 {
		t.Fatalf("dedicated streams = %d, want 2", n)
	}
}

// TestStreamMetricsPoolOtherNameCollision: a tenant literally named
// "other" must not claim a dedicated slot that would collide with the
// overflow label value.
func TestStreamMetricsPoolOtherNameCollision(t *testing.T) {
	r := NewRegistry()
	p := NewStreamMetricsPool(r, 8)
	o := p.Acquire(OverflowStream)
	if o.Dedicated {
		t.Fatal(`stream named "other" must map to the shared overflow bundle`)
	}
	// And a later overflow stream shares it rather than re-registering.
	for i := 0; i < 8; i++ {
		p.Acquire(strings.Repeat("x", i+1))
	}
	if got := p.Acquire("overflowed"); got != o {
		t.Fatal("overflow bundle not shared with stream named other")
	}
}

// TestStreamLabelRendered: pooled instruments carry the stream label in
// the Prometheus exposition, alongside any per-instrument labels.
func TestStreamLabelRendered(t *testing.T) {
	r := NewRegistry()
	p := NewStreamMetricsPool(r, 4)
	m := p.Acquire("tenant-1")
	m.Ingested.Add(7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`disc_ingested_points_total{stream="tenant-1"} 7`,
		`disc_strides_total{stream="tenant-1"} 0`,
		`disc_phase_duration_seconds_bucket{phase="collect",stream="tenant-1"`,
		`disc_query_duration_seconds_bucket{endpoint="clusters",stream="tenant-1"`,
		`disc_checkpoint_attempts_total{stream="tenant-1"} 0`,
		`disc_connectivity_strategy{strategy="msbfs",stream="tenant-1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSingleStreamMetricsUnlabeled: the standalone bundle renders exactly
// the historical unlabeled names.
func TestSingleStreamMetricsUnlabeled(t *testing.T) {
	r := NewRegistry()
	m := SingleStreamMetrics(r)
	m.Ingested.Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "disc_ingested_points_total 1\n") {
		t.Fatalf("unlabeled ingest counter missing:\n%s", out)
	}
	if strings.Contains(out, `stream=`) {
		t.Fatal("single-stream bundle must not carry a stream label")
	}
}
