package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help", nil)
	c.Inc()
	c.Add(41)
	c.Add(-5) // dropped: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("x_level", "help", nil)
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %g, want 2.25", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.56) > 1e-9 {
		t.Fatalf("sum = %g, want 5.56", h.Sum())
	}
	// Quantiles interpolate within the crossing bucket and clamp overflow
	// ranks to the largest finite bound.
	if q := h.Quantile(0.5); q < 0 || q > 0.1 {
		t.Fatalf("p50 = %g, want within (0, 0.1]", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %g, want clamped to 1", q)
	}
	empty := r.Histogram("lat2_seconds", "help", []float64{1}, nil)
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

// TestQuantileDegenerateInputs pins Quantile's behavior on the edges a
// metrics endpoint can feed it: a zero-observation histogram at any q
// (including the endpoints and out-of-range values), a NaN q, and a
// histogram whose every sample landed in the overflow bucket.
func TestQuantileDegenerateInputs(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("e_seconds", "help", []float64{0.1, 1}, nil)
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.Inf(1), math.Inf(-1)} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%g) = %g, want 0", q, got)
		}
	}
	if got := empty.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("empty.Quantile(NaN) = %g, want NaN", got)
	}

	h := r.Histogram("h_seconds", "help", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(50) // overflow bucket
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}
	// Out-of-range q clamps to the endpoints rather than walking off the
	// bucket array.
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %g, want %g", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %g, want %g", got, want)
	}

	over := r.Histogram("o_seconds", "help", []float64{0.1, 1}, nil)
	over.Observe(2)
	over.Observe(3)
	// Every rank lands beyond the finite buckets: report the largest
	// finite bound, the documented overflow clamp.
	if got := over.Quantile(0.5); got != 1 {
		t.Errorf("overflow-only Quantile(0.5) = %g, want 1", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("disc_range_searches_total", "Range searches.", nil)
	c.Add(7)
	g := r.Gauge("disc_window_size", "Window size.", nil)
	g.Set(4000)
	h := r.Histogram("disc_stride_duration_seconds", "Stride latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	for _, ph := range []string{"collect", "finalize"} {
		r.Histogram("disc_phase_duration_seconds", "Phase latency.", []float64{1}, Labels{"phase": ph})
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP disc_range_searches_total Range searches.\n",
		"# TYPE disc_range_searches_total counter\n",
		"disc_range_searches_total 7\n",
		"disc_window_size 4000\n",
		"# TYPE disc_stride_duration_seconds histogram\n",
		`disc_stride_duration_seconds_bucket{le="0.1"} 1` + "\n",
		`disc_stride_duration_seconds_bucket{le="1"} 2` + "\n",
		`disc_stride_duration_seconds_bucket{le="+Inf"} 3` + "\n",
		"disc_stride_duration_seconds_sum 2.55\n",
		"disc_stride_duration_seconds_count 3\n",
		`disc_phase_duration_seconds_bucket{phase="collect",le="1"} 0` + "\n",
		`disc_phase_duration_seconds_bucket{phase="finalize",le="+Inf"} 0` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with several label sets.
	if n := strings.Count(out, "# TYPE disc_phase_duration_seconds"); n != 1 {
		t.Errorf("phase family has %d TYPE headers, want 1", n)
	}
}

func TestRegistryDuplicatesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", nil)
	mustPanic(t, "duplicate name", func() { r.Counter("a_total", "h", nil) })
	mustPanic(t, "family type clash", func() { r.Gauge("a_total", "h", Labels{"x": "y"}) })
	r.Counter("a_total", "h", Labels{"x": "y"}) // distinct labels: fine
	mustPanic(t, "unsorted buckets", func() { r.Histogram("b", "h", []float64{1, 1}, nil) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", nil).Add(3)
	h := r.Histogram("h_seconds", "h", []float64{1}, nil)
	h.Observe(0.5)
	var m map[string]any
	if err := json.Unmarshal([]byte(r.Expvar().String()), &m); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if m["c_total"] != float64(3) {
		t.Fatalf("c_total = %v", m["c_total"])
	}
	hist, ok := m["h_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Fatalf("h_seconds = %v", m["h_seconds"])
	}
}

// TestConcurrentScrape hammers one registry from writer and scraper
// goroutines; run under -race this proves scrape-while-update safety.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h", nil)
	g := r.Gauge("g", "h", nil)
	h := r.Histogram("h_seconds", "h", nil, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				_ = r.Expvar().String()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%g", c.Value(), h.Count(), g.Value())
	}
}

// TestLabelValueEscaping pins exposition-format escaping of hostile label
// values: exactly backslash, double-quote, and line feed are escaped;
// every other byte — tabs, non-ASCII — passes through verbatim. The old
// %q rendering Go-escaped those extra bytes into \x/\u sequences that a
// Prometheus parser would take literally.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := "evil\\path \"quoted\"\nnaïve\ttab"
	r.Counter("hostile_total", "help", Labels{"endpoint": hostile}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "hostile_total{endpoint=\"evil\\\\path \\\"quoted\\\"\\nnaïve\ttab\"} 1\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q\n---\n%s", want, b.String())
	}
	// The escaped value must not contain Go-style \x or \u escapes.
	if strings.Contains(b.String(), `\x`) || strings.Contains(b.String(), `\u`) {
		t.Fatalf("Go-style escapes leaked into exposition:\n%s", b.String())
	}
}
