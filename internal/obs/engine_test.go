package obs

import (
	"strings"
	"testing"
	"time"

	"disc/internal/core"
)

// TestEngineMetricsConnectivityFamily pins the disc_connectivity_* family:
// registration alongside the legacy disc_connectivity_checks_total counter
// (prefix overlap, distinct names — no panic), translation of a StrideRecord
// into the counters/gauges, and the strategy gauge flipping with the record.
func TestEngineMetricsConnectivityFamily(t *testing.T) {
	r := NewRegistry()
	m := NewEngineMetrics(r) // registers disc_connectivity_checks_total too

	m.ObserveStride(core.StrideRecord{
		ConnStrategy:       "dynamic",
		Connectivity:       2 * time.Millisecond,
		ForestUpdate:       500 * time.Microsecond,
		ConnChecks:         3,
		ForestOps:          17,
		ForestReplSearches: 2,
		ForestReplScans:    9,
		ForestRebuilds:     1,
		ForestVertices:     120,
		ForestEdges:        240,
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"disc_connectivity_checks_total 3\n",
		`disc_connectivity_strategy{strategy="dynamic"} 1` + "\n",
		`disc_connectivity_strategy{strategy="msbfs"} 0` + "\n",
		"disc_connectivity_forest_ops_total 17\n",
		"disc_connectivity_replacement_searches_total 2\n",
		"disc_connectivity_replacement_scans_total 9\n",
		"disc_connectivity_forest_rebuilds_total 1\n",
		"disc_connectivity_forest_vertices 120\n",
		"disc_connectivity_forest_edges 240\n",
		"disc_connectivity_traversal_searches_total 0\n",
		"disc_connectivity_check_duration_seconds_sum 0.002\n",
		"disc_connectivity_forest_update_duration_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// An MS-BFS stride flips the strategy gauge and feeds the traversal
	// counters instead.
	m.ObserveStride(core.StrideRecord{
		ConnStrategy: "msbfs",
		ConnSearches: 4,
		ConnNodes:    88,
	})
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{
		`disc_connectivity_strategy{strategy="msbfs"} 1` + "\n",
		`disc_connectivity_strategy{strategy="dynamic"} 0` + "\n",
		"disc_connectivity_traversal_searches_total 4\n",
		"disc_connectivity_traversal_nodes_total 88\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
