// Package obs is a dependency-free telemetry kit for the DISC stack: a
// metrics registry of counters, gauges, and fixed-bucket histograms whose
// hot paths are single atomic operations, rendered in the Prometheus text
// exposition format and publishable through the standard library's expvar.
//
// The design goals, in order:
//
//  1. Zero cost when unused — instruments are plain structs around
//     sync/atomic words; observing a value is one or two atomic adds, no
//     locks, no allocation, no time lookups.
//  2. Scrape-while-update safety — a /metrics render may run concurrently
//     with any number of writers; readers see a (per-instrument) consistent
//     snapshot without ever blocking the writers.
//  3. No dependencies — everything is stdlib, matching the repository rule.
//
// A Registry owns a set of named instruments. Names follow Prometheus
// conventions (snake_case, base-unit suffixes, _total for counters); an
// instrument may carry constant labels, which is how per-phase families
// such as disc_phase_duration_seconds{phase="collect"} are expressed.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant key→value pairs attached to one instrument. They are
// copied at registration; mutating the original map afterwards has no
// effect.
type Labels map[string]string

// With returns a new label set combining l and extra; extra wins on key
// collisions. Either side may be nil. The receiver is never mutated, so a
// base set (e.g. {stream="x"}) can be extended per instrument safely.
func (l Labels) With(extra Labels) Labels {
	if len(l) == 0 {
		return extra
	}
	out := make(Labels, len(l)+len(extra))
	for k, v := range l {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing metric. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must not be negative (counters only go up). Negative
// deltas are dropped rather than corrupting the monotonic contract.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Set forces the counter to v. This exists for exactly one situation:
// restoring a persisted total after a checkpoint load, where the counter
// must agree with the restored service state. A decrease is legal for
// Prometheus consumers — scrapers treat it as the counter reset that a
// restore semantically is.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// sense: counts[i] tallies observations ≤ bounds[i], with one overflow
// bucket (le="+Inf") at the end. Observing is a binary search plus two
// atomic adds; no locks are taken on the hot path.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf excluded
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Find the first bound >= v; sort.SearchFloat64s returns len(bounds)
	// when v exceeds every bound, which is exactly the +Inf bucket index.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket that crosses the target rank — the same estimate
// Prometheus's histogram_quantile computes. It returns 0 with no samples
// and NaN for a NaN q; q outside [0, 1] is clamped (a NaN or unclamped q
// would otherwise poison every comparison below and silently return the
// top bucket bound). Ranks landing in the overflow bucket return the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
		lower = bound
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// DefDurationBuckets are the default latency bounds in seconds: 100µs to
// 10s in a roughly 1-2.5-5 progression, sized for per-stride engine work
// that ranges from sub-millisecond (small strides) to seconds (bulk
// windows).
func DefDurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// instrument ties one registered metric to its identity.
type instrument struct {
	family string // metric family name (no labels)
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of instruments and renders them for scraping. All
// methods are safe for concurrent use; instruments are typically created
// once at startup and then only written.
type Registry struct {
	mu    sync.Mutex
	insts []*instrument
	seen  map[string]bool // family+labels, to reject duplicates
	types map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool), types: make(map[string]string)}
}

// Counter registers and returns a counter. It panics on a duplicate
// name+labels combination or a family re-registered under another type —
// both are programming errors, caught at startup.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(&instrument{family: name, help: help, typ: "counter", labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(&instrument{family: name, help: help, typ: "gauge", labels: renderLabels(labels), g: g})
	return g
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (strictly increasing, +Inf implied; nil selects
// DefDurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefDurationBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing at %d", name, i))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), buckets...), counts: make([]atomic.Int64, len(buckets)+1)}
	r.register(&instrument{family: name, help: help, typ: "histogram", labels: renderLabels(labels), h: h})
	return h
}

func (r *Registry) register(in *instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := in.family + in.labels
	if r.seen[key] {
		panic(fmt.Sprintf("obs: duplicate metric %s%s", in.family, in.labels))
	}
	if t, ok := r.types[in.family]; ok && t != in.typ {
		panic(fmt.Sprintf("obs: metric family %s registered as both %s and %s", in.family, t, in.typ))
	}
	r.seen[key] = true
	r.types[in.family] = in.typ
	r.insts = append(r.insts, in)
}

// renderLabels produces the canonical `{k="v",...}` suffix with keys
// sorted, or "" for no labels.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabelValue(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and line feed — and nothing else. Go's
// %q is close but wrong here: it additionally escapes non-printables and
// non-ASCII as \x/\u sequences, which the exposition parser takes
// literally, corrupting any label value that is not plain printable ASCII.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// mergeLabels splices extra into a rendered label suffix (for the le label
// of histogram buckets).
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4), grouping instruments of one
// family under a single HELP/TYPE header in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	insts := append([]*instrument(nil), r.insts...)
	r.mu.Unlock()

	// Group by family, preserving first-registration order.
	var families []string
	byFam := map[string][]*instrument{}
	for _, in := range insts {
		if _, ok := byFam[in.family]; !ok {
			families = append(families, in.family)
		}
		byFam[in.family] = append(byFam[in.family], in)
	}
	var b strings.Builder
	for _, fam := range families {
		group := byFam[fam]
		fmt.Fprintf(&b, "# HELP %s %s\n", fam, escapeHelp(group[0].help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, group[0].typ)
		for _, in := range group {
			switch in.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", fam, in.labels, in.c.Value())
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", fam, in.labels, fmtFloat(in.g.Value()))
			case "histogram":
				h := in.h
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, mergeLabels(in.labels, fmt.Sprintf("le=%q", fmtFloat(bound))), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, mergeLabels(in.labels, `le="+Inf"`), h.Count())
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam, in.labels, fmtFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam, in.labels, h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Expvar returns an expvar.Var whose String() is a JSON object mapping
// metric name (with labels) to its current value — counters and gauges to
// numbers, histograms to {count, sum, p50, p95, p99}.
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any {
		r.mu.Lock()
		insts := append([]*instrument(nil), r.insts...)
		r.mu.Unlock()
		out := make(map[string]any, len(insts))
		for _, in := range insts {
			key := in.family + in.labels
			switch in.typ {
			case "counter":
				out[key] = in.c.Value()
			case "gauge":
				out[key] = in.g.Value()
			case "histogram":
				out[key] = map[string]any{
					"count": in.h.Count(),
					"sum":   in.h.Sum(),
					"p50":   in.h.Quantile(0.50),
					"p95":   in.h.Quantile(0.95),
					"p99":   in.h.Quantile(0.99),
				}
			}
		}
		return out
	})
}

// PublishExpvar publishes the registry under the given expvar name (it
// then appears in GET /debug/vars). Publishing is first-wins: if the name
// is already taken — e.g. a second server in the same process — the call
// is a no-op, because expvar.Publish panics on duplicates and process-wide
// vars cannot be unpublished.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.Expvar())
}
