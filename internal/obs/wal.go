package obs

import "time"

// WALMetrics is a ckpt.WALObserver feeding a Registry: one instance
// registers the disc_wal_* family and translates append/sync/truncate
// activity into instrument updates. Attach with ckpt.WithWALObserver.
//
// Metric inventory (all prefixed disc_wal_):
//
//	appends_total             counter    records appended
//	append_bytes_total        counter    framed bytes appended (header included)
//	syncs_total               counter    fsyncs issued for appended records
//	sync_duration_seconds     histogram  wall-clock fsync latency
//	segments                  gauge      segment files currently on disk
//	truncated_segments_total  counter    segments removed by checkpoint truncation
type WALMetrics struct {
	appends   *Counter
	bytes     *Counter
	syncs     *Counter
	syncDur   *Histogram
	segments  *Gauge
	truncated *Counter
}

// NewWALMetrics registers the disc_wal_* instruments on r.
func NewWALMetrics(r *Registry) *WALMetrics {
	return NewWALMetricsLabeled(r, nil)
}

// NewWALMetricsLabeled registers the disc_wal_* instruments with the
// given constant base labels (the multi-tenant server passes
// {stream="<name>"}).
func NewWALMetricsLabeled(r *Registry, base Labels) *WALMetrics {
	return &WALMetrics{
		appends: r.Counter("disc_wal_appends_total",
			"Records appended to the write-ahead log.", base),
		bytes: r.Counter("disc_wal_append_bytes_total",
			"Framed bytes appended to the write-ahead log (frame headers included).", base),
		syncs: r.Counter("disc_wal_syncs_total",
			"fsyncs issued to make appended WAL records durable.", base),
		syncDur: r.Histogram("disc_wal_sync_duration_seconds",
			"Wall-clock latency of one WAL fsync.", nil, base),
		segments: r.Gauge("disc_wal_segments",
			"WAL segment files currently on disk.", base),
		truncated: r.Counter("disc_wal_truncated_segments_total",
			"WAL segments removed because a durable checkpoint superseded them.", base),
	}
}

// ObserveWALAppend implements ckpt.WALObserver.
func (m *WALMetrics) ObserveWALAppend(bytes, segments int) {
	m.appends.Inc()
	m.bytes.Add(int64(bytes))
	m.segments.Set(float64(segments))
}

// ObserveWALSync implements ckpt.WALObserver.
func (m *WALMetrics) ObserveWALSync(d time.Duration) {
	m.syncs.Inc()
	m.syncDur.Observe(d.Seconds())
}

// ObserveWALTruncate implements ckpt.WALObserver.
func (m *WALMetrics) ObserveWALTruncate(removed, remaining int) {
	m.truncated.Add(int64(removed))
	m.segments.Set(float64(remaining))
}

// ReplicationMetrics is the follower-side instrument bundle: how far the
// replica trails the leader's log and how much it has replayed.
//
//	disc_replica_records_applied_total  counter  WAL records replayed into the engine
//	disc_replica_points_applied_total   counter  points replayed into the window
//	disc_replica_stride_lag             gauge    strides between log end and replica
type ReplicationMetrics struct {
	Records *Counter
	Points  *Counter
	Lag     *Gauge
}

// NewReplicationMetrics registers the disc_replica_* instruments on r.
func NewReplicationMetrics(r *Registry) *ReplicationMetrics {
	return &ReplicationMetrics{
		Records: r.Counter("disc_replica_records_applied_total",
			"WAL records the follower has replayed into its engine.", nil),
		Points: r.Counter("disc_replica_points_applied_total",
			"Points the follower has replayed into its window.", nil),
		Lag: r.Gauge("disc_replica_stride_lag",
			"Strides between the newest WAL record seen and the follower's replayed position.", nil),
	}
}
