package obs

import (
	"strings"
	"testing"
	"time"

	"disc/internal/ckpt"
)

func TestCheckpointMetrics(t *testing.T) {
	r := NewRegistry()
	m := NewCheckpointMetrics(r)
	var _ ckpt.Observer = m

	m.ObserveCheckpoint(ckpt.Record{Gen: 1, Strides: 10, Bytes: 500, Duration: 2 * time.Millisecond})
	m.ObserveCheckpoint(ckpt.Record{Duration: time.Millisecond, Err: errFake{}})
	m.ObserveCheckpoint(ckpt.Record{Gen: 2, Strides: 20, Bytes: 700, Duration: 3 * time.Millisecond})

	if got := m.attempts.Value(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := m.failures.Value(); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
	if got := m.bytes.Value(); got != 1200 {
		t.Errorf("bytes = %d, want 1200", got)
	}
	if got := m.dur.Count(); got != 3 {
		t.Errorf("duration observations = %d, want 3 (failures must be timed too)", got)
	}
	if got := m.gen.Value(); got != 2 {
		t.Errorf("generation = %g, want 2", got)
	}
	if got := m.strides.Value(); got != 20 {
		t.Errorf("last_strides = %g, want 20", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"disc_checkpoint_attempts_total 3",
		"disc_checkpoint_failures_total 1",
		"disc_checkpoint_bytes_total 1200",
		"disc_checkpoint_duration_seconds_count 3",
		"disc_checkpoint_generation 2",
		"disc_checkpoint_last_strides 20",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }
