package obs

// QueryEndpoints are the label values of the disc_query_* family — one per
// lock-free GET endpoint of the serving read path.
var QueryEndpoints = []string{"clusters", "point", "events", "stats"}

// DefQueryBuckets are the default latency bounds in seconds for read-path
// queries: 10µs to 1s in a 1-2.5-5 progression. Queries serve a
// pre-materialized view, so they sit orders of magnitude below stride
// latencies; DefDurationBuckets would lump them all into its first bucket.
func DefQueryBuckets() []float64 {
	return []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
	}
}

// QueryMetrics instruments the server's read path: per-endpoint latency
// histograms plus a served-stride-lag histogram that measures how many
// strides were published between the view a query served and the newest
// view at the moment the response was written. Lag 0 means the query
// served the freshest state; sustained nonzero lag means reads overlap
// stride publication — the expected (and harmless) signature of queries
// proceeding while ingest advances the window.
//
// Metric inventory (all prefixed disc_):
//
//	query_duration_seconds{endpoint}  histogram  clusters|point|events|stats
//	query_stride_lag                  histogram  strides behind at response time
type QueryMetrics struct {
	dur map[string]*Histogram
	lag *Histogram
}

// NewQueryMetrics registers the disc_query_* instruments on r and returns
// the recorder. Register at most once per registry (duplicate names panic).
func NewQueryMetrics(r *Registry) *QueryMetrics {
	return NewQueryMetricsLabeled(r, nil)
}

// NewQueryMetricsLabeled registers the disc_query_* instruments with the
// given constant base labels (the multi-tenant server passes
// {stream="<name>"}). With a nil base it is identical to NewQueryMetrics.
func NewQueryMetricsLabeled(r *Registry, base Labels) *QueryMetrics {
	m := &QueryMetrics{dur: make(map[string]*Histogram, len(QueryEndpoints))}
	for _, ep := range QueryEndpoints {
		m.dur[ep] = r.Histogram("disc_query_duration_seconds",
			"Wall-clock latency of one read-path query, by endpoint.",
			DefQueryBuckets(), base.With(Labels{"endpoint": ep}))
	}
	m.lag = r.Histogram("disc_query_stride_lag",
		"Strides published between the view a query served and the newest view at response time.",
		[]float64{0, 1, 2, 4, 8, 16, 32}, base)
	return m
}

// ObserveQuery records one served read: endpoint, wall-clock seconds, and
// the stride lag of the served view at response time. Unknown endpoints
// record only the lag, so a future route cannot panic the read path.
func (m *QueryMetrics) ObserveQuery(endpoint string, seconds, strideLag float64) {
	if h, ok := m.dur[endpoint]; ok {
		h.Observe(seconds)
	}
	m.lag.Observe(strideLag)
}
