package obs

import "sync"

// OverflowStream is the stream label value shared by every tenant beyond
// the pool's cardinality cap.
const OverflowStream = "other"

// StreamMetrics bundles every instrument one stream of the multi-tenant
// server records into: the engine observer, the read-path recorder, the
// checkpoint observer, and the ingest counter — all registered with a
// constant {stream="<name>"} label. Streams past the cardinality cap share
// one bundle labeled {stream="other"}.
type StreamMetrics struct {
	// Label is the stream label value the bundle's instruments carry —
	// the stream's own name, or OverflowStream past the cap.
	Label string
	// Dedicated is false when the bundle is the shared overflow set. A
	// shared bundle aggregates counters across every overflow stream, so
	// absolute adjustments that only make sense per stream (the
	// restore-time ingest counter Set, for example) must be skipped on it.
	Dedicated bool

	Engine     *EngineMetrics
	Query      *QueryMetrics
	Checkpoint *CheckpointMetrics
	// WAL is the stream's disc_wal_* bundle, attached to the stream's
	// write-ahead log when one is configured (idle otherwise).
	WAL *WALMetrics
	// Ingested is the stream's disc_ingested_points_total counter.
	Ingested *Counter
}

// StreamMetricsPool hands out per-stream instrument bundles on one shared
// registry while capping the cardinality of the stream label: the first
// `cap` distinct stream names get dedicated label values, every stream
// beyond that shares a single {stream="other"} bundle. The cap is a hard
// bound on time-series growth — a tenant churn storm cannot blow up the
// scrape size — at the cost of per-stream resolution for the overflow
// set. Label slots are never reclaimed: Prometheus instruments cannot be
// unregistered, so a deleted stream's series stay (frozen) in the scrape
// and re-creating the stream reuses its bundle.
type StreamMetricsPool struct {
	r   *Registry
	cap int

	mu        sync.Mutex
	dedicated map[string]*StreamMetrics
	overflow  *StreamMetrics
}

// NewStreamMetricsPool returns a pool on r granting at most cap dedicated
// stream label values (minimum 1).
func NewStreamMetricsPool(r *Registry, cap int) *StreamMetricsPool {
	if cap < 1 {
		cap = 1
	}
	return &StreamMetricsPool{r: r, cap: cap, dedicated: make(map[string]*StreamMetrics)}
}

// Acquire returns the instrument bundle for the named stream, creating it
// on first use. Names beyond the cardinality cap — and the literal name
// "other", which would collide with the overflow label — share the
// overflow bundle.
func (p *StreamMetricsPool) Acquire(stream string) *StreamMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.dedicated[stream]; ok {
		return m
	}
	if stream != OverflowStream && len(p.dedicated) < p.cap {
		m := newStreamMetrics(p.r, stream, true)
		p.dedicated[stream] = m
		return m
	}
	if p.overflow == nil {
		p.overflow = newStreamMetrics(p.r, OverflowStream, false)
	}
	return p.overflow
}

// DedicatedStreams returns how many dedicated label values have been
// granted so far.
func (p *StreamMetricsPool) DedicatedStreams() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.dedicated)
}

func newStreamMetrics(r *Registry, label string, dedicated bool) *StreamMetrics {
	base := Labels{"stream": label}
	return &StreamMetrics{
		Label:      label,
		Dedicated:  dedicated,
		Engine:     NewEngineMetricsLabeled(r, base),
		Query:      NewQueryMetricsLabeled(r, base),
		Checkpoint: NewCheckpointMetricsLabeled(r, base),
		WAL:        NewWALMetricsLabeled(r, base),
		Ingested: r.Counter("disc_ingested_points_total",
			"Points accepted by POST .../ingest (including those still buffered below a stride boundary).", base),
	}
}

// SingleStreamMetrics builds the unlabeled bundle a standalone
// single-stream server uses: identical instrument names to the pooled
// bundles but with no stream label, preserving the original single-tenant
// scrape exactly. Checkpoint metrics are excluded — the standalone server
// has its checkpoint observer attached externally (NewCheckpointMetrics),
// and registering them here too would collide.
func SingleStreamMetrics(r *Registry) *StreamMetrics {
	return &StreamMetrics{
		Label:     "",
		Dedicated: true,
		Engine:    NewEngineMetrics(r),
		Query:     NewQueryMetrics(r),
		WAL:       NewWALMetrics(r),
		Ingested: r.Counter("disc_ingested_points_total",
			"Points accepted by POST /ingest (including those still buffered below a stride boundary).", nil),
	}
}
