package core

import (
	"testing"

	"disc/internal/model"
	"disc/internal/trace"
)

// spanNamed returns the first span with the given name, or nil.
func spanNamed(d *trace.TraceData, name string) *trace.Span {
	for i := range d.Spans {
		if d.Spans[i].Name == name {
			return &d.Spans[i]
		}
	}
	return nil
}

func countSpans(d *trace.TraceData, name string) int {
	n := 0
	for i := range d.Spans {
		if d.Spans[i].Name == name {
			n++
		}
	}
	return n
}

// TestAdvanceSelfTracedSpanTree drives a parallel engine with an attached
// tracer and checks the recorded span tree: advance → {collect,
// cluster.excores (→ connectivity), cluster.neocores, finalize} with
// per-worker fan-out segments, parent links intact. Run under -race this
// also proves the parallel COLLECT/CLUSTER span writes are race-clean.
func TestAdvanceSelfTracedSpanTree(t *testing.T) {
	tc := trace.NewTracer(trace.Config{Recent: 16, Slow: 4})
	var recs []StrideRecord
	eng := New(model.Config{Dims: 2, Eps: 1.0, MinPts: 2},
		WithWorkers(4), WithTracer(tc),
		WithObserver(ObserverFunc(func(r StrideRecord) { recs = append(recs, r) })))

	// Stride 1: bulk arrival of a 60-core chain — parallel COLLECT fan-out.
	pts := line(0, 0, 60, 0.9)
	eng.Advance(pts, nil)
	// Stride 2: remove the chain's middle point — an ex-core whose minimal
	// bonding cores are disconnected, forcing an MS-BFS connectivity check
	// and a split.
	eng.Advance(nil, []model.Point{pts[30]})

	snap := tc.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("resident traces = %d, want 2", len(snap))
	}
	// Newest first: snap[0] is stride 2, snap[1] stride 1.
	stride2, stride1 := &snap[0], &snap[1]

	for _, d := range []*trace.TraceData{stride1, stride2} {
		adv := spanNamed(d, "advance")
		if adv == nil {
			t.Fatalf("trace %s has no advance span", d.TraceID)
		}
		if adv.ParentID != 0 {
			t.Fatalf("self-traced advance has parent %d", adv.ParentID)
		}
		for _, phase := range []string{"collect", "cluster.excores", "cluster.neocores", "finalize"} {
			sp := spanNamed(d, phase)
			if sp == nil {
				t.Fatalf("trace %s missing %q span", d.TraceID, phase)
			}
			if sp.ParentID != adv.SpanID {
				t.Fatalf("%q parent = %d, want advance %d", phase, sp.ParentID, adv.SpanID)
			}
			if sp.End.IsZero() || sp.End.Before(sp.Start) {
				t.Fatalf("%q span not closed properly: %v..%v", phase, sp.Start, sp.End)
			}
		}
	}

	// Stride 1's 60-point COLLECT fanned out: per-worker spans under collect.
	collect := spanNamed(stride1, "collect")
	if n := countSpans(stride1, "collect.worker"); n < 2 {
		t.Fatalf("stride 1 has %d collect.worker spans, want >= 2", n)
	}
	for i := range stride1.Spans {
		if stride1.Spans[i].Name == "collect.worker" && stride1.Spans[i].ParentID != collect.SpanID {
			t.Fatalf("collect.worker parent = %d, want collect %d", stride1.Spans[i].ParentID, collect.SpanID)
		}
	}

	// Stride 2 ran a connectivity check, recorded under cluster.excores.
	conn := spanNamed(stride2, "connectivity")
	if conn == nil {
		t.Fatalf("stride 2 has no connectivity span (spans: %v)", names(stride2))
	}
	if ex := spanNamed(stride2, "cluster.excores"); conn.ParentID != ex.SpanID {
		t.Fatalf("connectivity parent = %d, want cluster.excores %d", conn.ParentID, ex.SpanID)
	}

	// The observer records carry the trace ids of the resident traces.
	if len(recs) != 2 {
		t.Fatalf("observer saw %d strides", len(recs))
	}
	if recs[0].TraceID != stride1.TraceID.String() || recs[1].TraceID != stride2.TraceID.String() {
		t.Fatalf("StrideRecord trace ids %q/%q do not match traces %s/%s",
			recs[0].TraceID, recs[1].TraceID, stride1.TraceID, stride2.TraceID)
	}
}

func names(d *trace.TraceData) []string {
	out := make([]string, len(d.Spans))
	for i := range d.Spans {
		out[i] = d.Spans[i].Name
	}
	return out
}

// TestAdvanceTracedCallerOwned checks the server-shaped mode: the caller
// starts the trace, AdvanceTraced contributes the stride's spans under the
// caller's root, and nothing is ring-resident until the caller finishes.
func TestAdvanceTracedCallerOwned(t *testing.T) {
	tc := trace.NewTracer(trace.Config{Recent: 8, Slow: 4})
	eng := New(model.Config{Dims: 2, Eps: 1.0, MinPts: 2})

	tr := tc.StartTrace(trace.SpanContext{})
	root := tr.StartSpan("ingest", nil)
	eng.AdvanceTraced(tr, root, line(0, 0, 20, 0.9), nil)
	if got := len(tc.Snapshot()); got != 0 {
		t.Fatalf("%d traces resident before caller Finish", got)
	}
	root.EndNow()
	tc.Finish(tr)

	snap := tc.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("resident traces = %d", len(snap))
	}
	d := &snap[0]
	ingest := spanNamed(d, "ingest")
	adv := spanNamed(d, "advance")
	if ingest == nil || adv == nil {
		t.Fatalf("span tree incomplete: %v", names(d))
	}
	if adv.ParentID != ingest.SpanID {
		t.Fatalf("advance parent = %d, want ingest %d", adv.ParentID, ingest.SpanID)
	}
	if spanNamed(d, "collect").ParentID != adv.SpanID {
		t.Fatalf("collect not parented under advance")
	}

	// The engine must not retain the finished trace.
	if eng.curTrace != nil || eng.advSpan != nil || eng.phaseSpan != nil || eng.fanParent != nil {
		t.Fatalf("engine retained trace references after AdvanceTraced")
	}

	// Nil trace falls back to a plain advance without panicking.
	eng.AdvanceTraced(nil, nil, line(100, 100, 3, 0.9), nil)
}

// TestTracedAdvanceMatchesUntraced pins that tracing is observation only:
// a traced engine and an untraced engine produce identical assignments,
// stats, and window contents over the same stream.
func TestTracedAdvanceMatchesUntraced(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
	plain := New(cfg, WithWorkers(4))
	traced := New(cfg, WithWorkers(4), WithTracer(trace.NewTracer(trace.Config{Recent: 4, Slow: 2})))

	pts := line(0, 0, 80, 0.9)
	strides := [][2][]model.Point{
		{pts, nil},
		{nil, {pts[40]}},
		{line(200, 0, 10, 0.9), {pts[10]}},
	}
	for _, s := range strides {
		plain.Advance(s[0], s[1])
		traced.Advance(s[0], s[1])
	}
	a, b := plain.Snapshot(), traced.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("window sizes diverge: %d vs %d", len(a), len(b))
	}
	for id, as := range a {
		if bs, ok := b[id]; !ok || as != bs {
			t.Fatalf("point %d: %+v vs %+v", id, as, b[id])
		}
	}
	sa, sb := plain.Stats(), traced.Stats()
	if sa != sb {
		t.Fatalf("stats diverge:\n%+v\n%+v", sa, sb)
	}
}

// TestSetTracerDetach verifies SetTracer(nil) stops recording.
func TestSetTracerDetach(t *testing.T) {
	tc := trace.NewTracer(trace.Config{Recent: 4, Slow: 2})
	eng := New(model.Config{Dims: 2, Eps: 1.0, MinPts: 2}, WithTracer(tc))
	eng.Advance(line(0, 0, 10, 0.9), nil)
	if len(tc.Snapshot()) != 1 {
		t.Fatalf("attached tracer recorded %d traces, want 1", len(tc.Snapshot()))
	}
	eng.SetTracer(nil)
	eng.Advance(line(50, 50, 5, 0.9), nil)
	if len(tc.Snapshot()) != 1 {
		t.Fatalf("detached tracer still recorded")
	}
	if eng.Tracer() != nil {
		t.Fatalf("Tracer() != nil after detach")
	}
}
