package core

import (
	"math/rand"
	"testing"

	"disc/internal/window"
)

// TestCollectZeroAlloc pins the Advance-path pooling contract: once the
// stride buffers, R-tree node free list, search contexts, and pstate free
// list have warmed past their high-water marks, sliding the window one
// stride performs (almost) no heap allocations. Before the pooled R-tree
// hot path and the bound-once search callbacks, the same workload cost
// ~7,700 allocs per Advance; the budget below is ~1% of that, far inside
// the "≥ 80% drop" bar, while leaving room for the irreducible jitter of a
// live workload — occasional split/merger event slices, a leaf slab or
// queue-pool node growing past its previous high-water mark, map-bucket
// churn in the window id set.
func TestCollectZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const win, stride = 4000, 200
	const warm, runs = 200, 80
	data := clustered2D(rng, win+stride*(warm+runs+10))
	steps, err := window.Steps(data, win, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg2(2.5, 5))
	for _, st := range steps[:warm] {
		eng.Advance(st.In, st.Out)
	}
	idx := warm
	avg := testing.AllocsPerRun(runs, func() {
		st := steps[idx]
		eng.Advance(st.In, st.Out)
		idx++
	})
	t.Logf("steady-state allocs per Advance: %.1f", avg)
	const budget = 64
	if avg > budget {
		t.Errorf("steady-state Advance allocates %.1f objects/op, budget %d", avg, budget)
	}
}
