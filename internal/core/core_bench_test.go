package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/window"
)

// benchAdvance measures one stride of a DISC variant over a synthetic
// evolving stream (window 4000, stride 5%).
func benchAdvance(b *testing.B, opts ...Option) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const win, stride = 4000, 200
	data := clustered2D(rng, win+stride*64)
	steps, err := window.Steps(data, win, stride)
	if err != nil {
		b.Fatal(err)
	}
	newEng := func() *Engine {
		eng := New(cfg2(2.5, 5), opts...)
		eng.Advance(steps[0].In, steps[0].Out)
		return eng
	}
	eng := newEng()
	idx := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx >= len(steps) {
			b.StopTimer()
			eng = newEng()
			idx = 1
			b.StartTimer()
		}
		st := steps[idx]
		eng.Advance(st.In, st.Out)
		idx++
	}
}

func BenchmarkAdvance(b *testing.B)        { benchAdvance(b) }
func BenchmarkAdvanceNoMSBFS(b *testing.B) { benchAdvance(b, WithMSBFS(false)) }
func BenchmarkAdvanceNoEpoch(b *testing.B) { benchAdvance(b, WithEpochProbing(false)) }
func BenchmarkAdvanceGridIdx(b *testing.B) { benchAdvance(b, WithGridIndex(0)) }

// BenchmarkAdvanceWorkers measures the parallel COLLECT across worker counts
// on a large-stride (25%) workload where COLLECT dominates; speedups are
// bounded by GOMAXPROCS.
func BenchmarkAdvanceWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchAdvanceStride(b, 1000, WithWorkers(w))
		})
	}
}

// benchAdvanceStride is benchAdvance with a configurable stride (window 4000).
func benchAdvanceStride(b *testing.B, stride int, opts ...Option) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const win = 4000
	data := clustered2D(rng, win+stride*16)
	steps, err := window.Steps(data, win, stride)
	if err != nil {
		b.Fatal(err)
	}
	newEng := func() *Engine {
		eng := New(cfg2(2.5, 5), opts...)
		eng.Advance(steps[0].In, steps[0].Out)
		return eng
	}
	eng := newEng()
	idx := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx >= len(steps) {
			b.StopTimer()
			eng = newEng()
			idx = 1
			b.StartTimer()
		}
		st := steps[idx]
		eng.Advance(st.In, st.Out)
		idx++
	}
}

// bridged2D generates a CLUSTER-heavy stream: dense blobs joined by thin
// bridges whose points churn as the window slides, so strides carry many
// ex-/neo-core components, splits and mergers.
func bridged2D(rng *rand.Rand, n int) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		var x, y float64
		switch rng.Intn(5) {
		case 0, 1: // blobs at (0,0), (20,0), (10,17)
			c := rng.Intn(3)
			cx := []float64{0, 20, 10}[c]
			cy := []float64{0, 0, 17}[c]
			x, y = cx+rng.NormFloat64()*2, cy+rng.NormFloat64()*2
		case 2: // bridge between blob 0 and 1
			x, y = rng.Float64()*20, rng.NormFloat64()*0.5
		case 3: // bridge between blob 0 and 2
			f := rng.Float64()
			x, y = f*10+rng.NormFloat64()*0.5, f*17+rng.NormFloat64()*0.5
		default: // background
			x, y = rng.Float64()*40-10, rng.Float64()*40-10
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
	}
	return pts
}

// BenchmarkClusterWorkers measures the parallel CLUSTER phase across worker
// counts on a bridge-churn workload where ex-/neo-core processing dominates;
// speedups are bounded by GOMAXPROCS.
func BenchmarkClusterWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			const win, stride = 4000, 1000
			data := bridged2D(rng, win+stride*16)
			steps, err := window.Steps(data, win, stride)
			if err != nil {
				b.Fatal(err)
			}
			newEng := func() *Engine {
				eng := New(cfg2(1.2, 4), WithWorkers(w))
				eng.Advance(steps[0].In, steps[0].Out)
				return eng
			}
			eng := newEng()
			idx := 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if idx >= len(steps) {
					b.StopTimer()
					eng = newEng()
					idx = 1
					b.StartTimer()
				}
				st := steps[idx]
				eng.Advance(st.In, st.Out)
				idx++
			}
		})
	}
}

// BenchmarkConnectivitySteady measures a warmed-up connectivity check
// through the pooled scratch path — the allocs/op column is the
// steady-state zero-allocation claim.
func BenchmarkConnectivitySteady(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []Option
	}{
		{"msbfs", nil},
		{"seq", []Option{WithMSBFS(false)}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
			eng := New(cfg, variant.opts...)
			a := line(0, 0, 500, 0.9)
			c := line(1000, 600, 100, 0.9)
			eng.Advance(append(a, c...), nil)
			eng.ensureScratches(1)
			s := eng.scratches[0]
			bonding := []int64{0, 250, 499, 1000}
			eng.connectivityInto(bonding, s, &eng.connRes) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.connectivityInto(bonding, s, &eng.connRes)
			}
		})
	}
}

// BenchmarkConnectivity measures one MS-BFS/sequential connectivity check
// over a chain of cores with starters at both ends (worst case for the
// early-exit: threads must traverse half the chain each to meet).
func BenchmarkConnectivity(b *testing.B) {
	for _, n := range []int{100, 1000} {
		for _, variant := range []struct {
			name string
			opts []Option
		}{
			{"msbfs+epoch", nil},
			{"msbfs", []Option{WithEpochProbing(false)}},
			{"seq", []Option{WithMSBFS(false), WithEpochProbing(false)}},
		} {
			b.Run(fmt.Sprintf("chain=%d/%s", n, variant.name), func(b *testing.B) {
				cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
				eng := New(cfg, variant.opts...)
				pts := line(0, 0, n, 0.9)
				eng.Advance(pts, nil)
				starters := []int64{0, int64(n - 1)}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.connectivity(starters)
				}
			})
		}
	}
}

// ringPoints lays n points on a circle with ~spacing chord length between
// ring neighbors, so with Eps just above spacing every point is adjacent to
// exactly its two ring neighbors — a single cluster shaped like one giant
// cycle.
func ringPoints(idBase int64, n int, spacing float64) []model.Point {
	r := float64(n) * spacing / (2 * math.Pi)
	pts := make([]model.Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = model.Point{ID: idBase + int64(i), Pos: geom.NewVec(r*math.Cos(th), r*math.Sin(th))}
	}
	return pts
}

// BenchmarkConnectivityStrategy is the churn-heavy workload the dynamic
// forest exists for: a ring of ~1k cores where each iteration removes a
// small interior block (forcing a connectivity check whose bonding cores are
// only connected the long way around) and re-adds it under fresh ids. The
// MS-BFS strategy re-traverses O(window) cores on every removal stride; the
// maintained forest answers the same query from a handful of root walks plus
// a polylog replacement-edge search per cut.
func BenchmarkConnectivityStrategy(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []Option
	}{
		{"msbfs", nil},
		{"dynamic", []Option{WithConnectivity(ConnDynamic)}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			const n, blockStart, blockLen = 1024, 100, 8
			cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
			eng := New(cfg, variant.opts...)
			ring := ringPoints(0, n, 0.9)
			eng.Advance(ring, nil)
			cur := make([]model.Point, blockLen)
			copy(cur, ring[blockStart:blockStart+blockLen])
			out := make([]model.Point, blockLen)
			in := make([]model.Point, blockLen)
			nextID := int64(n)
			churn := func() {
				for j := range out {
					out[j] = model.Point{ID: cur[j].ID}
				}
				eng.Advance(nil, out) // shrink: M⁻ connected only the long way
				for j := range in {
					in[j] = model.Point{ID: nextID, Pos: cur[j].Pos}
					cur[j] = in[j]
					nextID++
				}
				eng.Advance(in, nil) // expansion: the block returns, fresh ids
			}
			churn() // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn()
			}
		})
	}
}

// BenchmarkSnapshot measures full labeling extraction.
func BenchmarkSnapshot(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	eng := New(cfg2(2.5, 5))
	eng.Advance(clustered2D(rng, 10000), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eng.Snapshot()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkCheckpoint measures SaveSnapshot+LoadEngine round trips.
func BenchmarkCheckpoint(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	eng := New(cfg2(2.5, 5))
	eng.Advance(clustered2D(rng, 10000), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := eng.SaveSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadEngine(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
