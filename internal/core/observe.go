package core

import (
	"time"

	"disc/internal/model"
)

// This file is the engine's telemetry tap. DISC's whole claim is work
// proportional to the change, not the window (§VI of the paper breaks
// per-stride cost into COLLECT / ex-core / neo-core phases and Fig. 7
// counts range searches); the lump-sum Stats and PhaseTimings accumulators
// cannot show a latency distribution or a per-stride trend. An Observer
// receives one StrideRecord per Advance — everything the §VI-D drill-down
// measures, as deltas scoped to that stride — so callers can feed
// histograms, stride logs, or live dashboards without the engine knowing
// about any of them.
//
// The tap is free when unused: every per-stride aggregate the record needs
// is either already computed by Advance (phase timestamps, index stats
// deltas) or a plain integer increment on an existing code path (event
// tallies, MS-BFS merge count), and the record itself is a stack value
// built behind a nil check.

// StrideRecord is the per-Advance telemetry record. All counter-like
// fields are deltas for that stride, not running totals.
type StrideRecord struct {
	Stride     uint64 // 1-based window advance counter
	DeltaIn    int    // arrivals |Δin|
	DeltaOut   int    // departures |Δout|
	WindowSize int    // points resident after the advance

	ExCores  int // ex-cores identified by COLLECT
	NeoCores int // neo-cores identified by COLLECT

	// Phase durations; Total = Collect + ExCorePhase + NeoCorePhase +
	// Finalize (the phases partition the advance exactly).
	Collect      time.Duration
	ExCorePhase  time.Duration
	NeoCorePhase time.Duration
	Finalize     time.Duration
	Total        time.Duration

	RangeSearches int64 // ε-range searches issued this stride
	NodeAccesses  int64 // index nodes (or grid cells) touched this stride
	EpochPruned   int64 // entries/subtrees hidden by epoch probing this stride
	MSBFSMerges   int64 // MS-BFS thread (queue) merges this stride

	// Cluster-evolution event tallies for this stride.
	Emergences   int
	Expansions   int
	Mergers      int
	Splits       int
	Shrinks      int
	Dissipations int

	Workers        int   // COLLECT fan-out width actually used this stride
	ClusterWorkers int   // widest CLUSTER fan-out (captures or connectivity) this stride
	ConnChecks     int   // connectivity checks dispatched this stride
	PoolGrows      int64 // scratch-pool misses (new allocations) this stride

	// Connectivity-strategy telemetry. These fields are the one part of the
	// record that is NOT strategy-independent — they measure how the
	// configured strategy paid for the (identical) answers. Traversal
	// counters are zero under ConnDynamic; forest counters are zero under
	// the MS-BFS strategies.
	ConnStrategy       string        // "msbfs" or "dynamic"
	Connectivity       time.Duration // wall time of the phase-C query fan-out
	ForestUpdate       time.Duration // wall time syncing the dyncon forest
	ConnSearches       int64         // traversal expansion searches run
	ConnNodes          int64         // index nodes those searches touched
	ForestOps          int64         // forest mutations applied (vertices + edges)
	ForestReplSearches int64         // replacement-edge searches after tree cuts
	ForestReplScans    int64         // candidate edges scanned by those searches
	ForestRebuilds     int64         // full forest rebuilds (desync fallbacks)
	ForestVertices     int           // forest size after the stride (cores)
	ForestEdges        int           // core-adjacency edges tracked

	// TraceID is the 32-hex-char id of the trace that recorded this
	// stride's span tree ("" when the advance ran untraced). Slow-stride
	// capturers stamp it into their logs so a tail-latency stride can be
	// looked up in /debug/traces.
	TraceID string
}

// Observer receives one StrideRecord per Advance, synchronously, after the
// stride's labels are finalized. Implementations must not call back into
// the engine and should return quickly — they run on the Advance path.
type Observer interface {
	ObserveStride(StrideRecord)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(StrideRecord)

// ObserveStride implements Observer.
func (f ObserverFunc) ObserveStride(rec StrideRecord) { f(rec) }

// WithObserver attaches an Observer to the engine. Only one observer is
// held; attaching nil detaches. With no observer attached the telemetry
// path is a single nil check per Advance.
func WithObserver(o Observer) Option { return func(e *Engine) { e.observer = o } }

// SetObserver attaches (or, with nil, detaches) the engine's Observer
// between Advance calls — the post-construction form of WithObserver, for
// callers that receive an already-built engine (checkpoint restore, the
// bench runner).
func (e *Engine) SetObserver(o Observer) { e.observer = o }

// observeStride assembles and delivers the StrideRecord. Callers must have
// checked e.observer != nil; statsBefore/treeBefore are the engine and
// index counters captured at the top of Advance.
func (e *Engine) observeStride(in, out []model.Point, exCores, neoCores int,
	t0, t1, t2, t3, t4 time.Time, statsBefore model.Stats, epochPruned int64,
	poolGrows int64) {
	workers := e.workers
	if total := len(in) + len(out); workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	clusterWorkers := e.strideClusterWorkers
	if clusterWorkers < 1 {
		clusterWorkers = 1 // a stride with no CLUSTER fan-out still ran serially
	}
	var traceID string
	if e.curTrace != nil {
		traceID = e.curTrace.ID().String()
	}
	var forestVertices, forestEdges int
	if e.forest != nil {
		forestVertices, forestEdges = e.forest.NumVertices(), e.forest.NumEdges()
	}
	e.observer.ObserveStride(StrideRecord{
		Stride:         e.stride,
		DeltaIn:        len(in),
		DeltaOut:       len(out),
		WindowSize:     len(e.pts),
		ExCores:        exCores,
		NeoCores:       neoCores,
		Collect:        t1.Sub(t0),
		ExCorePhase:    t2.Sub(t1),
		NeoCorePhase:   t3.Sub(t2),
		Finalize:       t4.Sub(t3),
		Total:          t4.Sub(t0),
		RangeSearches:  e.stats.RangeSearches - statsBefore.RangeSearches,
		NodeAccesses:   e.stats.NodeAccesses - statsBefore.NodeAccesses,
		EpochPruned:    epochPruned,
		MSBFSMerges:    e.strideMerges,
		Emergences:     e.strideEvents[Emergence],
		Expansions:     e.strideEvents[Expansion],
		Mergers:        e.strideEvents[Merger],
		Splits:         e.strideEvents[Split],
		Shrinks:        e.strideEvents[Shrink],
		Dissipations:   e.strideEvents[Dissipation],
		Workers:        workers,
		ClusterWorkers: clusterWorkers,
		ConnChecks:     e.strideConnChecks,
		PoolGrows:      poolGrows,

		ConnStrategy:       e.connStrategy.String(),
		Connectivity:       e.strideConnDur,
		ForestUpdate:       e.strideForestDur,
		ConnSearches:       e.strideConnSearches,
		ConnNodes:          e.strideConnNodes,
		ForestOps:          e.strideForestOps,
		ForestReplSearches: e.strideForestReplSearches,
		ForestReplScans:    e.strideForestReplScans,
		ForestRebuilds:     e.strideForestRebuilds,
		ForestVertices:     forestVertices,
		ForestEdges:        forestEdges,

		TraceID: traceID,
	})
}
