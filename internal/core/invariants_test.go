package core

import (
	"math/rand"
	"testing"

	"disc/internal/window"
)

// TestInvariantsHoldAcrossStream runs the full state validator after every
// stride of an evolving stream, for every ablation variant.
func TestInvariantsHoldAcrossStream(t *testing.T) {
	variants := map[string][]Option{
		"full":    nil,
		"noms":    {WithMSBFS(false)},
		"noepoch": {WithEpochProbing(false)},
		"plain":   {WithMSBFS(false), WithEpochProbing(false)},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(321))
			data := clustered2D(rng, 1000)
			eng := New(cfg2(2.5, 5), opts...)
			steps, _ := window.Steps(data, 300, 30)
			for i, st := range steps {
				eng.Advance(st.In, st.Out)
				if err := eng.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		})
	}
}

// TestInvariantsUnderExtremeChurn uses stride == window so every stride
// replaces the entire population.
func TestInvariantsUnderExtremeChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(322))
	data := clustered2D(rng, 800)
	eng := New(cfg2(2.0, 4))
	steps, _ := window.Steps(data, 200, 200)
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestInvariantsWithTinyStride stresses per-point churn (stride 1).
func TestInvariantsWithTinyStride(t *testing.T) {
	rng := rand.New(rand.NewSource(323))
	data := clustered2D(rng, 300)
	eng := New(cfg2(2.0, 4))
	steps, _ := window.Steps(data, 120, 1)
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		if i%20 == 0 {
			if err := eng.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}
