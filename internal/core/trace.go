package core

import (
	"disc/internal/model"
	"disc/internal/trace"
)

// This file is the engine's span-recording seam, the tracing counterpart
// of observe.go. Where the Observer delivers per-stride aggregates, a
// trace.Tracer records the stride's internal timeline: one "advance" span
// with children for COLLECT, the two CLUSTER phases, MS-BFS connectivity,
// per-worker fan-out segments, and finalize. The contract matches the
// observer's: with no trace active the hooks cost one nil check each
// (verified by the interleaved A/B benchmark in trace_bench_test.go), and
// the per-worker spans are recorded under the trace's mutex, so the
// parallel COLLECT/CLUSTER paths stay race-clean.
//
// Two ownership modes exist:
//
//   - Self-traced: WithTracer/SetTracer attach a Tracer; every Advance
//     then records its own trace, finished (and ring-resident) when
//     Advance returns. This is the discbench path.
//   - Caller-owned: AdvanceTraced contributes the same span tree to a
//     trace the caller started and will finish — the server path, where
//     one ingest request owns a trace spanning decode, validation, every
//     stride it triggered, and the view publish.

// WithTracer attaches a span recorder to the engine. Only one tracer is
// held; attaching nil detaches. With no tracer attached (and no
// caller-owned trace active) the tracing path is a single nil check per
// Advance.
func WithTracer(t *trace.Tracer) Option { return func(e *Engine) { e.tracer = t } }

// SetTracer attaches (or, with nil, detaches) the engine's tracer between
// Advance calls — the post-construction form of WithTracer, mirroring
// SetObserver.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Tracer returns the attached tracer, nil when tracing is detached.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// AdvanceTraced is Advance contributing spans to a caller-owned trace:
// the stride's "advance" span (and its phase/worker children) are
// recorded into tr under parent. The caller keeps ownership — it ends its
// own spans and calls Tracer.Finish; the engine neither finishes nor
// retains tr past the call. A nil tr falls back to plain Advance (which
// self-traces when a tracer is attached).
func (e *Engine) AdvanceTraced(tr *trace.Trace, parent *trace.Span, in, out []model.Point) {
	if tr == nil {
		e.Advance(in, out)
		return
	}
	e.curTrace, e.advParent = tr, parent
	e.advance(in, out)
	e.clearTrace()
}

// clearTrace drops every per-advance trace reference so nothing pins a
// finished trace (rings recycle them) past the stride that recorded it.
func (e *Engine) clearTrace() {
	e.curTrace, e.advParent, e.advSpan = nil, nil, nil
	e.phaseSpan, e.fanParent = nil, nil
	e.fanSpanName = ""
}
