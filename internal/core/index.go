package core

import (
	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/kdtree"
	"disc/internal/rtree"
)

// spatialIndex abstracts the ε-search substrate DISC runs on. The paper's
// DISC is R-tree based — epoch probing (Algorithm 4) is an R-tree
// technique — but a hash grid is a natural alternative when ε is fixed and
// the data extent is bounded; WithGridIndex exposes it as an ablation of
// the index choice.
type spatialIndex interface {
	Insert(id int64, p geom.Vec)
	Delete(id int64, p geom.Vec) bool
	Len() int
	SearchBall(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) bool
	// SearchBallRO is SearchBall minus the statistics accounting: a pure
	// read of the index, safe for any number of concurrent callers while no
	// mutation runs. It returns the node (or cell) accesses the traversal
	// performed so callers can merge the work into their own counters —
	// the parallel COLLECT fan-out depends on this method.
	SearchBallRO(c geom.Vec, eps float64, fn func(id int64, p geom.Vec) bool) int64
	// SearchBallEpoch visits points whose epoch is below tick; fn returning
	// true stamps the point for the remainder of that tick's traversals.
	SearchBallEpoch(c geom.Vec, eps float64, tick uint64, fn func(id int64, p geom.Vec) bool)
	NextTick() uint64
	Stats() rtree.Stats
	BulkLoad(ids []int64, pos []geom.Vec)
	// BulkInsert adds a batch of points to the existing index contents. The
	// result is observationally identical to inserting the batch point by
	// point; backends may exploit the batch for better layout (the R-tree
	// STR-packs it into full leaves grafted in one descent each).
	BulkInsert(ids []int64, pos []geom.Vec)
}

// rtree.T implements spatialIndex directly.
var _ spatialIndex = (*rtree.T)(nil)

// gridIndex adapts the hash grid to the spatialIndex interface. The grid
// has no in-index epochs; stamping is emulated with a per-tick visited set,
// so the grid backend pays the map lookups the R-tree's epoch probing
// avoids — which is exactly the trade-off worth measuring.
type gridIndex struct {
	g       *grid.Grid
	tick    uint64
	curTick uint64
	stamped map[int64]bool
	stats   rtree.Stats
}

func newGridIndex(dims int, side float64) *gridIndex {
	return &gridIndex{g: grid.New(dims, side), stamped: make(map[int64]bool)}
}

func (gi *gridIndex) Insert(id int64, p geom.Vec) { gi.g.Insert(id, p) }

func (gi *gridIndex) Delete(id int64, p geom.Vec) bool { return gi.g.Delete(id, p) }

func (gi *gridIndex) Len() int { return gi.g.Len() }

func (gi *gridIndex) SearchBall(c geom.Vec, eps float64, fn func(int64, geom.Vec) bool) bool {
	gi.stats.RangeSearches++
	cells := 0
	ok := true
	gi.g.ForNeighborCells(c, eps, func(_ grid.Key, items []grid.Item) bool {
		cells++
		for _, it := range items {
			if geom.WithinEps(it.Pos, c, gi.g.Dims(), eps) {
				if !fn(it.ID, it.Pos) {
					ok = false
					return false
				}
			}
		}
		return true
	})
	gi.stats.NodeAccesses += int64(cells)
	return ok
}

func (gi *gridIndex) SearchBallRO(c geom.Vec, eps float64, fn func(int64, geom.Vec) bool) int64 {
	cells := int64(0)
	gi.g.ForNeighborCells(c, eps, func(_ grid.Key, items []grid.Item) bool {
		cells++
		for _, it := range items {
			if geom.WithinEps(it.Pos, c, gi.g.Dims(), eps) {
				if !fn(it.ID, it.Pos) {
					return false
				}
			}
		}
		return true
	})
	return cells
}

func (gi *gridIndex) SearchBallEpoch(c geom.Vec, eps float64, tick uint64, fn func(int64, geom.Vec) bool) {
	if tick != gi.curTick {
		gi.curTick = tick
		gi.stamped = make(map[int64]bool)
	}
	gi.SearchBall(c, eps, func(id int64, p geom.Vec) bool {
		if gi.stamped[id] {
			gi.stats.EpochPruned++
			return true
		}
		if fn(id, p) {
			gi.stamped[id] = true
		}
		return true
	})
}

func (gi *gridIndex) NextTick() uint64 {
	gi.tick++
	return gi.tick
}

func (gi *gridIndex) Stats() rtree.Stats { return gi.stats }

func (gi *gridIndex) BulkLoad(ids []int64, pos []geom.Vec) {
	gi.g = grid.New(gi.g.Dims(), gi.g.Side())
	for i := range ids {
		gi.g.Insert(ids[i], pos[i])
	}
}

func (gi *gridIndex) BulkInsert(ids []int64, pos []geom.Vec) {
	for i := range ids {
		gi.g.Insert(ids[i], pos[i])
	}
}

// WithGridIndex replaces the R-tree with a hash grid of the given cell side
// (≤ 0 selects ε/2, a good default balancing cell occupancy against the
// number of cells each ball search must touch). With a grid backend the
// epoch optimization degrades to an external visited set.
func WithGridIndex(side float64) Option {
	return func(e *Engine) {
		if side <= 0 {
			side = e.cfg.Eps / 2
		}
		e.indexKind = indexGrid
		e.gridSide = side
		e.tree = newGridIndex(e.cfg.Dims, side)
	}
}

// kdIndex adapts the bucket k-d tree to the spatialIndex interface, with
// the same visited-set epoch emulation as the grid backend.
type kdIndex struct {
	t       *kdtree.T
	tick    uint64
	curTick uint64
	stamped map[int64]bool
	pruned  int64 // stamped-set skips, the emulated analog of EpochPruned
}

func newKDIndex(dims int) *kdIndex {
	return &kdIndex{t: kdtree.New(dims), stamped: make(map[int64]bool)}
}

func (ki *kdIndex) Insert(id int64, p geom.Vec)      { ki.t.Insert(id, p) }
func (ki *kdIndex) Delete(id int64, p geom.Vec) bool { return ki.t.Delete(id, p) }
func (ki *kdIndex) Len() int                         { return ki.t.Len() }

func (ki *kdIndex) SearchBall(c geom.Vec, eps float64, fn func(int64, geom.Vec) bool) bool {
	return ki.t.SearchBall(c, eps, fn)
}

func (ki *kdIndex) SearchBallRO(c geom.Vec, eps float64, fn func(int64, geom.Vec) bool) int64 {
	return ki.t.SearchBallRO(c, eps, fn)
}

func (ki *kdIndex) SearchBallEpoch(c geom.Vec, eps float64, tick uint64, fn func(int64, geom.Vec) bool) {
	if tick != ki.curTick {
		ki.curTick = tick
		ki.stamped = make(map[int64]bool)
	}
	ki.t.SearchBall(c, eps, func(id int64, p geom.Vec) bool {
		if ki.stamped[id] {
			ki.pruned++
			return true
		}
		if fn(id, p) {
			ki.stamped[id] = true
		}
		return true
	})
}

func (ki *kdIndex) NextTick() uint64 {
	ki.tick++
	return ki.tick
}

func (ki *kdIndex) Stats() rtree.Stats {
	return rtree.Stats{RangeSearches: ki.t.Searches(), NodeAccesses: ki.t.NodeAccesses(), EpochPruned: ki.pruned}
}

func (ki *kdIndex) BulkLoad(ids []int64, pos []geom.Vec) { ki.t.BulkLoad(ids, pos) }

func (ki *kdIndex) BulkInsert(ids []int64, pos []geom.Vec) {
	for i := range ids {
		ki.t.Insert(ids[i], pos[i])
	}
}

// WithKDTreeIndex replaces the R-tree with a bucket k-d tree — the third
// index-choice ablation. Epoch probing degrades to an external visited set.
func WithKDTreeIndex() Option {
	return func(e *Engine) {
		e.indexKind = indexKDTree
		e.tree = newKDIndex(e.cfg.Dims)
	}
}

type indexKind uint8

const (
	indexRTree indexKind = iota
	indexGrid
	indexKDTree
)
