package core

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/window"
)

func collectEvents(t *testing.T) (*Engine, *[]Event) {
	t.Helper()
	var events []Event
	eng := New(cfg2(1.1, 3), WithEventHandler(func(ev Event) { events = append(events, ev) }))
	return eng, &events
}

func hasEvent(events []Event, typ EventType) *Event {
	for i := range events {
		if events[i].Type == typ {
			return &events[i]
		}
	}
	return nil
}

func TestEmergenceAndDissipationEvents(t *testing.T) {
	eng, events := collectEvents(t)
	blob := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0, 1)}, {ID: 4, Pos: geom.NewVec(1, 1)},
	}
	eng.Advance(blob, nil)
	em := hasEvent(*events, Emergence)
	if em == nil {
		t.Fatalf("no emergence event, got %v", *events)
	}
	if em.Cores != 4 || em.Stride != 1 {
		t.Fatalf("emergence = %+v", *em)
	}
	snap := eng.Snapshot()
	if snap[1].ClusterID != em.ClusterID {
		t.Fatalf("event cluster id %d does not match snapshot %d", em.ClusterID, snap[1].ClusterID)
	}

	*events = (*events)[:0]
	eng.Advance(nil, blob)
	di := hasEvent(*events, Dissipation)
	if di == nil {
		t.Fatalf("no dissipation event, got %v", *events)
	}
	if di.ClusterID != em.ClusterID {
		t.Fatalf("dissipated cluster %d, want %d", di.ClusterID, em.ClusterID)
	}
	if di.Cores != 4 {
		t.Fatalf("dissipation cores = %d, want 4", di.Cores)
	}
}

func TestSplitAndMergerEvents(t *testing.T) {
	eng, events := collectEvents(t)
	blobA := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0, 1)}, {ID: 4, Pos: geom.NewVec(1, 1)},
	}
	blobB := []model.Point{
		{ID: 5, Pos: geom.NewVec(2.8, 0)}, {ID: 6, Pos: geom.NewVec(3.8, 0)},
		{ID: 7, Pos: geom.NewVec(2.8, 1)}, {ID: 8, Pos: geom.NewVec(3.8, 1)},
	}
	bridge := model.Point{ID: 9, Pos: geom.NewVec(1.9, 0.5)}
	all := append(append(append([]model.Point{}, blobA...), blobB...), bridge)
	eng.Advance(all, nil)
	em := hasEvent(*events, Emergence)
	if em == nil {
		t.Fatal("no emergence on bootstrap")
	}
	oldCID := em.ClusterID

	// Bridge leaves: split.
	*events = (*events)[:0]
	eng.Advance(nil, []model.Point{bridge})
	sp := hasEvent(*events, Split)
	if sp == nil {
		t.Fatalf("no split event, got %v", *events)
	}
	if sp.ClusterID != oldCID {
		t.Fatalf("split reports cluster %d, want %d", sp.ClusterID, oldCID)
	}
	if len(sp.NewClusters) != 2 {
		t.Fatalf("split produced %v new clusters, want 2 fresh ids (every component is relabeled)", sp.NewClusters)
	}

	// New bridge arrives: merger of the two halves.
	*events = (*events)[:0]
	eng.Advance([]model.Point{{ID: 10, Pos: geom.NewVec(1.9, 0.5)}}, nil)
	mg := hasEvent(*events, Merger)
	if mg == nil {
		t.Fatalf("no merger event, got %v", *events)
	}
	if len(mg.Absorbed) != 1 {
		t.Fatalf("merger absorbed %v, want exactly one cluster", mg.Absorbed)
	}
	snap := eng.Snapshot()
	if snap[1].ClusterID != mg.ClusterID || snap[5].ClusterID != mg.ClusterID {
		t.Fatal("merger event id does not match the snapshot's unified cluster")
	}
}

func TestExpansionAndShrinkEvents(t *testing.T) {
	eng, events := collectEvents(t)
	blob := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0, 1)}, {ID: 4, Pos: geom.NewVec(1, 1)},
	}
	eng.Advance(blob, nil)
	em := hasEvent(*events, Emergence)

	// An adjacent newcomer extends the cluster: its arrival makes it a core
	// (neighbors 2, 4 and itself) -> expansion.
	*events = (*events)[:0]
	eng.Advance([]model.Point{{ID: 5, Pos: geom.NewVec(1.9, 0.5)}}, nil)
	ex := hasEvent(*events, Expansion)
	if ex == nil {
		t.Fatalf("no expansion event, got %v", *events)
	}
	if ex.ClusterID != em.ClusterID {
		t.Fatalf("expansion cluster %d, want %d", ex.ClusterID, em.ClusterID)
	}

	// The newcomer leaves again: the cluster shrinks but stays connected.
	*events = (*events)[:0]
	eng.Advance(nil, []model.Point{{ID: 5, Pos: geom.NewVec(1.9, 0.5)}})
	sh := hasEvent(*events, Shrink)
	if sh == nil {
		t.Fatalf("no shrink event, got %v", *events)
	}
	if sh.ClusterID != em.ClusterID {
		t.Fatalf("shrink cluster %d, want %d", sh.ClusterID, em.ClusterID)
	}
}

// TestEventStreamConsistency: over a random stream, every event's cluster id
// must be a cluster visible in (or absorbed from) the engine's state, and
// split/merge counts must match the stats counters.
func TestEventStreamConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	data := clustered2D(rng, 1500)
	var events []Event
	eng := New(cfg2(2.5, 5), WithEventHandler(func(ev Event) { events = append(events, ev) }))
	steps, _ := window.Steps(data, 400, 40)
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	var splits, merges int64
	for _, ev := range events {
		switch ev.Type {
		case Split:
			splits += int64(len(ev.NewClusters) - 1)
		case Merger:
			merges += int64(len(ev.Absorbed))
		}
		if ev.Cores <= 0 {
			t.Fatalf("event with no cores: %+v", ev)
		}
		if ev.Stride == 0 {
			t.Fatalf("event without stride: %+v", ev)
		}
	}
	s := eng.Stats()
	if splits != s.Splits {
		t.Errorf("event splits %d != stats %d", splits, s.Splits)
	}
	if merges != s.Merges {
		t.Errorf("event merges %d != stats %d", merges, s.Merges)
	}
	if len(events) == 0 {
		t.Error("no events over an evolving stream")
	}
}

func TestEventTypeStrings(t *testing.T) {
	want := map[EventType]string{
		Emergence: "emergence", Expansion: "expansion", Merger: "merger",
		Split: "split", Shrink: "shrink", Dissipation: "dissipation",
	}
	for typ, name := range want {
		if typ.String() != name {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), name)
		}
	}
	ev := Event{Type: Split, Stride: 3, ClusterID: 7, NewClusters: []int{9}}
	if ev.String() == "" {
		t.Error("empty event string")
	}
}
