package core

import (
	"math/rand"
	"testing"

	"disc/internal/datasets"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

// This file holds the differential tests for the parallel CLUSTER phase: for
// any worker count the engine must produce bit-identical snapshots, the same
// cluster-evolution event stream (same order, same ids, same absorbed lists),
// and identical Stats as the sequential engine — and the steady-state
// connectivity machinery must not allocate.

// recordEvents returns an option capturing every emitted event's rendered
// form. Event.String covers type, stride, cluster id, absorbed list and
// new-cluster list, so string equality is event equality.
func recordEvents(buf *[]string) Option {
	return WithEventHandler(func(ev Event) { *buf = append(*buf, ev.String()) })
}

// diffEngines advances seq (workers=1) and par over the same steps and fails
// on the first stride where snapshots, event streams, or stats diverge.
func diffEngines(t *testing.T, cfg model.Config, steps []window.Step, workers int, opts ...Option) {
	t.Helper()
	var seqEvents, parEvents []string
	seq := New(cfg, append([]Option{recordEvents(&seqEvents)}, opts...)...)
	par := New(cfg, append([]Option{recordEvents(&parEvents), WithWorkers(workers)}, opts...)...)
	for i, st := range steps {
		seq.Advance(st.In, st.Out)
		par.Advance(st.In, st.Out)
		want, got := seq.Snapshot(), par.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("step %d (workers=%d): %d points vs %d sequential", i, workers, len(got), len(want))
		}
		for id, w := range want {
			if g := got[id]; g != w {
				t.Fatalf("step %d (workers=%d): point %d: parallel %+v, sequential %+v",
					i, workers, id, g, w)
			}
		}
		if len(parEvents) != len(seqEvents) {
			t.Fatalf("step %d (workers=%d): %d events vs %d sequential\npar: %v\nseq: %v",
				i, workers, len(parEvents), len(seqEvents), parEvents, seqEvents)
		}
		for k := range seqEvents {
			if parEvents[k] != seqEvents[k] {
				t.Fatalf("step %d (workers=%d): event %d diverged:\npar: %s\nseq: %s",
					i, workers, k, parEvents[k], seqEvents[k])
			}
		}
	}
	if err := par.CheckInvariants(); err != nil {
		t.Fatalf("invariants (workers=%d): %v", workers, err)
	}
	if seq.Stats() != par.Stats() {
		t.Fatalf("stats diverged (workers=%d): sequential %+v, parallel %+v",
			workers, seq.Stats(), par.Stats())
	}
}

// TestParallelClusterDatasets runs the serial-vs-parallel differential over
// every bundled dataset generator with scaled-down Table II parameters, for
// worker counts beyond the fan-out chunk size and beyond typical core
// counts.
func TestParallelClusterDatasets(t *testing.T) {
	configs := map[string]struct {
		window int
		cfg    model.Config
	}{
		"dtg":     {2000, model.Config{Dims: 2, Eps: 0.002, MinPts: 4}},
		"geolife": {800, model.Config{Dims: 3, Eps: 0.01, MinPts: 7}},
		"covid":   {1000, model.Config{Dims: 2, Eps: 1.2, MinPts: 5}},
		"iris":    {1000, model.Config{Dims: 4, Eps: 2, MinPts: 9}},
		"maze":    {1200, model.Config{Dims: 2, Eps: 0.6, MinPts: 4}},
	}
	for _, name := range datasets.Names() {
		dc, ok := configs[name]
		if !ok {
			t.Fatalf("dataset %q has no differential config; add one", name)
		}
		t.Run(name, func(t *testing.T) {
			stride := dc.window / 4
			ds, err := datasets.ByName(name, dc.window+stride*5, 42)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := window.Steps(ds.Points, dc.window, stride)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				diffEngines(t, dc.cfg, steps, workers)
			}
		})
	}
}

// TestParallelClusterSequentialBFS repeats the differential with MS-BFS and
// epoch-stamped scratch reuse disabled, covering the sequential-BFS fold and
// the fresh-visited-state ablation under parallel capture.
func TestParallelClusterSequentialBFS(t *testing.T) {
	ds, err := datasets.ByName("maze", 1800, 9)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := window.Steps(ds.Points, 1200, 300)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.Config{Dims: 2, Eps: 0.6, MinPts: 4}
	diffEngines(t, cfg, steps, 4, WithMSBFS(false))
	diffEngines(t, cfg, steps, 4, WithEpochProbing(false))
}

// FuzzParallelCluster is the differential fuzz target for the parallel
// CLUSTER phase. The geometry is split-heavy by construction: two dense
// blobs joined by a thin bridge whose points churn as the window slides, so
// strides routinely produce splits, mergers, shrinks and dissipations —
// exactly the paths where capture/fold ordering could diverge. Run with
// `go test -fuzz=FuzzParallelCluster ./internal/core` to explore further.
func FuzzParallelCluster(f *testing.F) {
	f.Add(int64(1), uint8(100), uint8(20), uint8(10), uint8(3), uint8(4))
	f.Add(int64(2), uint8(60), uint8(60), uint8(4), uint8(1), uint8(8))
	f.Add(int64(3), uint8(140), uint8(3), uint8(24), uint8(6), uint8(2))
	f.Add(int64(4), uint8(80), uint8(10), uint8(1), uint8(2), uint8(3))
	f.Add(int64(5), uint8(120), uint8(40), uint8(30), uint8(5), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, winRaw, strideRaw, epsRaw, minPtsRaw, workersRaw uint8) {
		win := int(winRaw)%150 + 30
		stride := int(strideRaw)%win + 1
		eps := 0.3 + float64(epsRaw%40)*0.05
		minPts := int(minPtsRaw)%8 + 1
		workers := int(workersRaw)%16 + 2
		rng := rand.New(rand.NewSource(seed))
		n := win + stride*6
		data := make([]model.Point, n)
		for i := range data {
			var x, y float64
			switch rng.Intn(4) {
			case 0: // left blob
				x, y = rng.NormFloat64()*1.2, rng.NormFloat64()*1.2
			case 1: // right blob
				x, y = 10+rng.NormFloat64()*1.2, rng.NormFloat64()*1.2
			case 2: // bridge between the blobs — churn here causes splits/mergers
				x, y = rng.Float64()*10, rng.NormFloat64()*0.3
			default: // background noise
				x, y = rng.Float64()*20-5, rng.Float64()*20-10
			}
			data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		}
		cfg := model.Config{Dims: 2, Eps: eps, MinPts: minPts}
		steps, err := window.Steps(data, win, stride)
		if err != nil {
			t.Fatal(err)
		}
		var seqEvents, parEvents []string
		seq := New(cfg, recordEvents(&seqEvents))
		par := New(cfg, recordEvents(&parEvents), WithWorkers(workers))
		for i, st := range steps {
			seq.Advance(st.In, st.Out)
			par.Advance(st.In, st.Out)
			want, got := seq.Snapshot(), par.Snapshot()
			if len(got) != len(want) {
				t.Fatalf("step %d (workers=%d): %d points vs %d sequential", i, workers, len(got), len(want))
			}
			for id, w := range want {
				if g := got[id]; g != w {
					t.Fatalf("step %d (workers=%d): point %d: parallel %+v, sequential %+v",
						i, workers, id, g, w)
				}
			}
			if err := metrics.SameClustering(got, want, st.Window, cfg); err != nil {
				t.Fatalf("step %d (workers=%d): %v", i, workers, err)
			}
			if len(parEvents) != len(seqEvents) {
				t.Fatalf("step %d (workers=%d): %d events vs %d sequential",
					i, workers, len(parEvents), len(seqEvents))
			}
			for k := range seqEvents {
				if parEvents[k] != seqEvents[k] {
					t.Fatalf("step %d (workers=%d): event %d diverged:\npar: %s\nseq: %s",
						i, workers, k, parEvents[k], seqEvents[k])
				}
			}
		}
		if err := par.CheckInvariants(); err != nil {
			t.Fatalf("invariants (workers=%d): %v", workers, err)
		}
		if seq.Stats() != par.Stats() {
			t.Fatalf("stats diverged: sequential %+v, parallel %+v", seq.Stats(), par.Stats())
		}
	})
}

// TestConnectivityZeroAlloc verifies the connectivity scratch-pool
// contract: once warmed up, a connectivity check — connected or split,
// pooled MS-BFS, sequential-BFS, or a dynamic-forest query — performs zero
// heap allocations.
func TestConnectivityZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"msbfs", nil},
		{"seq", []Option{WithMSBFS(false)}},
		{"dynamic", []Option{WithConnectivity(ConnDynamic)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
			a := line(0, 0, 200, 0.9)    // ids 0..199, one component
			b := line(500, 400, 50, 0.9) // ids 500..549, far away
			eng := buildEngine(t, cfg, append(a, b...), tc.opts...)
			eng.ensureScratches(1)
			s := eng.scratches[0]
			res := &eng.connRes
			connected := []int64{0, 100, 199}
			split := []int64{0, 199, 500}
			for i := 0; i < 3; i++ { // warm the pools past their high-water mark
				eng.connectivityInto(connected, s, res)
				eng.connectivityInto(split, s, res)
			}
			for name, bonding := range map[string][]int64{"connected": connected, "split": split} {
				allocs := testing.AllocsPerRun(100, func() {
					eng.connectivityInto(bonding, s, res)
				})
				if allocs != 0 {
					t.Errorf("%s: %v allocs/op, want 0", name, allocs)
				}
			}
		})
	}
}
