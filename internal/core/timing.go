package core

import "time"

// PhaseTimings accumulates wall-clock time per DISC phase across all
// strides since construction or the last ResetStats — the drill-down behind
// the paper's §VI-D analysis: COLLECT is proportional to the stride size,
// the ex-core phase carries the connectivity checks (where MS-BFS and epoch
// probing act), and the neo-core phase is label inspection only.
type PhaseTimings struct {
	Collect  time.Duration // Algorithm 1: count maintenance, Δ application
	ExCores  time.Duration // R⁻ components, M⁻ gathering, MS-BFS, relabeling
	NeoCores time.Duration // R⁺ components, M⁺ label inspection
	Finalize time.Duration // label refresh, border-hint re-acquisition
}

// Total returns the sum over all phases.
func (p PhaseTimings) Total() time.Duration {
	return p.Collect + p.ExCores + p.NeoCores + p.Finalize
}

// PhaseTimings returns the accumulated per-phase durations.
func (e *Engine) PhaseTimings() PhaseTimings { return e.timings }
