package core

import (
	"runtime"
	"time"
)

// PhaseTimings accumulates wall-clock time per DISC phase across all
// strides since construction or the last ResetStats — the drill-down behind
// the paper's §VI-D analysis: COLLECT is proportional to the stride size,
// the ex-core phase carries the connectivity checks (where MS-BFS and epoch
// probing act), and the neo-core phase is label inspection only.
type PhaseTimings struct {
	Collect  time.Duration // Algorithm 1: count maintenance, Δ application
	ExCores  time.Duration // R⁻ components, M⁻ gathering, MS-BFS, relabeling
	NeoCores time.Duration // R⁺ components, M⁺ label inspection
	Finalize time.Duration // label refresh, border-hint re-acquisition
}

// Total returns the sum over all phases.
func (p PhaseTimings) Total() time.Duration {
	return p.Collect + p.ExCores + p.NeoCores + p.Finalize
}

// PhaseTimings returns the accumulated per-phase durations.
func (e *Engine) PhaseTimings() PhaseTimings { return e.timings }

// PhaseAllocs accumulates heap allocation counts and bytes per coarse DISC
// phase across all strides since construction or the last ResetStats. The
// counters are populated only under WithAllocTracking: each Advance brackets
// its phases with runtime.ReadMemStats, which is far too expensive for
// production but lets the bench harness report allocs/op without a separate
// -benchmem run. CLUSTER covers both the ex-core and neo-core walks (the
// tree deletion between them included).
type PhaseAllocs struct {
	CollectObjs, CollectBytes   uint64
	ClusterObjs, ClusterBytes   uint64
	FinalizeObjs, FinalizeBytes uint64
	Strides                     uint64 // Advance calls sampled
}

// accumulate folds one stride's four ReadMemStats samples (taken before
// COLLECT, after COLLECT, after CLUSTER, after finalize) into the totals.
// Mallocs/TotalAlloc are monotonic, so differences are valid even when the
// GC runs mid-phase.
func (a *PhaseAllocs) accumulate(m0, m1, m2, m3 *runtime.MemStats) {
	a.CollectObjs += m1.Mallocs - m0.Mallocs
	a.CollectBytes += m1.TotalAlloc - m0.TotalAlloc
	a.ClusterObjs += m2.Mallocs - m1.Mallocs
	a.ClusterBytes += m2.TotalAlloc - m1.TotalAlloc
	a.FinalizeObjs += m3.Mallocs - m2.Mallocs
	a.FinalizeBytes += m3.TotalAlloc - m2.TotalAlloc
	a.Strides++
}

// TotalObjs returns the allocation count summed over all phases.
func (a PhaseAllocs) TotalObjs() uint64 {
	return a.CollectObjs + a.ClusterObjs + a.FinalizeObjs
}

// TotalBytes returns the allocated bytes summed over all phases.
func (a PhaseAllocs) TotalBytes() uint64 {
	return a.CollectBytes + a.ClusterBytes + a.FinalizeBytes
}

// PhaseAllocs returns the accumulated per-phase allocation counters. All
// zeros unless the engine was built with WithAllocTracking(true).
func (e *Engine) PhaseAllocs() PhaseAllocs { return e.allocs }
