package core

import (
	"runtime"

	"disc/internal/geom"
	"disc/internal/model"
)

// This file implements the parallel half of COLLECT (Algorithm 1). COLLECT
// dominates per-stride cost (Fig. 7 of the paper): one ε-range search per
// point of Δin ∪ Δout, each an independent read against the spatial index.
// The step is restructured into three phases so those searches can fan out
// over a worker pool without changing a single resulting bit:
//
//  1. Structural phase (sequential): mark every Δout departure Deleted,
//     remove non-core departures from the index, insert every Δin arrival.
//     After this phase neither the index nor any pstate field read by a
//     search changes until phase 3.
//  2. Search phase (parallel): every point of Δout ∪ Δin runs one read-only
//     ε-range search (SearchBallRO) that accumulates its findings — counter
//     deltas, hint candidate, touched neighbor ids — into a private
//     collectDelta buffer owned by that point alone. Workers share nothing
//     but the immutable index and pstates; each also counts its search and
//     node-access work privately.
//  3. Merge phase (sequential): the buffers are folded into the engine in
//     Δout-then-Δin slice order. Because every buffer is keyed by its
//     point's position in the input and the fold order is fixed, the merged
//     state is identical for any worker count — including 1, where phase 2
//     runs inline without spawning goroutines.
//
// Exactness relative to the interleaved formulation of Algorithm 1 follows
// from three observations (see DESIGN.md for the full argument):
//
//   - Departure searches must decrement nε of surviving neighbors exactly
//     once. Marking all departures Deleted up front makes every departure
//     search skip every other departure; the interleaved code reached the
//     same totals because a departure's own nε is forced to zero anyway.
//   - Arrival searches in the interleaved code saw only earlier-inserted
//     co-arrivals, crediting each close pair exactly once (+1 to both
//     sides). With all arrivals pre-inserted each pair is seen from both
//     ends, so only the smaller-id endpoint records it ("pairs" below) and
//     the merge credits both sides — the same single +1/+1.
//   - Everything else a search reads (label, wasCore, enterStamp, position)
//     is written only in phase 1 or in previous strides.

// collectDelta is the private buffer one phase-2 search writes. Slices are
// retained across strides (resetDeltas) to keep the steady state
// allocation-free.
type collectDelta struct {
	selfN   int32   // arrivals: surviving neighbors found (adds to own nε)
	coreDeg int32   // arrivals: surviving cores among them
	hint    int64   // arrivals: first surviving core in traversal order
	touched []int64 // surviving neighbors whose nε this point changes
	pairs   []int64 // arrivals: co-arriving neighbors with a larger id
	nodes   int64   // index nodes the search traversed
}

// resetDeltas returns buf resized to n cleared entries, reusing the inner
// slice capacity accumulated by earlier strides.
func resetDeltas(buf []collectDelta, n int) []collectDelta {
	if cap(buf) < n {
		buf = append(buf[:cap(buf)], make([]collectDelta, n-cap(buf))...)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i].selfN, buf[i].coreDeg, buf[i].hint = 0, 0, noHint
		buf[i].touched = buf[i].touched[:0]
		buf[i].pairs = buf[i].pairs[:0]
		buf[i].nodes = 0
	}
	return buf
}

// searchCtx carries the per-call parameters of the hot-path search
// callbacks. One context lives per fan-out worker slot; each callback is a
// func value bound exactly once at construction, capturing only the stable
// context pointer, so issuing an ε-search creates no closure and therefore
// allocates nothing — the same trick msScratch.visit uses. A context must
// never be shared between concurrently running searches; the per-worker
// ownership fanOut guarantees is exactly that.
type searchCtx struct {
	e      *Engine
	selfID int64         // center point of the current search
	exited bool          // captureExCore: the ex-core left the window
	d      *collectDelta // COLLECT departure/arrival buffer
	xcp    *exCapture    // CLUSTER ex-core capture buffer
	ncp    *neoCapture   // CLUSTER neo-core capture buffer

	depFn func(qid int64, p geom.Vec) bool
	arrFn func(qid int64, p geom.Vec) bool
	exFn  func(qid int64, p geom.Vec) bool
	neoFn func(qid int64, p geom.Vec) bool
}

func newSearchCtx(e *Engine) *searchCtx {
	c := &searchCtx{e: e}
	c.depFn = c.onDeparture
	c.arrFn = c.onArrival
	c.exFn = c.onExCore
	c.neoFn = c.onNeoCore
	return c
}

// ensureSearchCtxs guarantees at least n per-worker search contexts.
func (e *Engine) ensureSearchCtxs(n int) {
	for len(e.searchCtxs) < n {
		e.searchCtxs = append(e.searchCtxs, newSearchCtx(e))
	}
}

// searchDeparture runs the phase-2 search for one Δout point: record every
// surviving neighbor whose nε must drop. Departures (label Deleted) and
// this stride's arrivals (which never counted the departure) are skipped.
func (c *searchCtx) searchDeparture(p model.Point, d *collectDelta) {
	e := c.e
	st := e.pts[p.ID]
	c.selfID, c.d = p.ID, d
	d.nodes = e.tree.SearchBallRO(st.pos, e.cfg.Eps, c.depFn)
	c.d = nil
}

func (c *searchCtx) onDeparture(qid int64, _ geom.Vec) bool {
	e := c.e
	if qid == c.selfID {
		return true
	}
	q := e.pts[qid]
	if q.label == model.Deleted || q.enterStamp == e.stride {
		return true
	}
	c.d.touched = append(c.d.touched, qid)
	return true
}

// searchArrival runs the phase-2 search for one Δin point: count surviving
// neighbors (crediting their nε and, for previous-window cores, the
// arrival's coreDeg and border hint) and record co-arriving pairs once, from
// the smaller-id endpoint.
func (c *searchCtx) searchArrival(p model.Point, d *collectDelta) {
	e := c.e
	st := e.pts[p.ID]
	c.selfID, c.d = p.ID, d
	d.nodes = e.tree.SearchBallRO(st.pos, e.cfg.Eps, c.arrFn)
	c.d = nil
}

func (c *searchCtx) onArrival(qid int64, _ geom.Vec) bool {
	e := c.e
	if qid == c.selfID {
		return true
	}
	q := e.pts[qid]
	if q.label == model.Deleted {
		return true
	}
	d := c.d
	if q.enterStamp == e.stride {
		if c.selfID < qid {
			d.pairs = append(d.pairs, qid)
		}
		return true
	}
	d.touched = append(d.touched, qid)
	d.selfN++
	// Initialize coreDeg against cores surviving from the previous
	// window; transitions (ex-cores, neo-cores) correct it later.
	if q.wasCore {
		d.coreDeg++
		if d.hint == noHint {
			d.hint = qid
		}
	}
	return true
}

// collectSearch is the bound-once phase-2 dispatcher fanOut invokes: Δout
// departures occupy work indices [0, len(fanOutPts)), Δin arrivals the rest.
func (e *Engine) collectSearch(w, k int) {
	c := e.searchCtxs[w]
	if out := e.fanOutPts; k < len(out) {
		c.searchDeparture(out[k], &e.outDeltas[k])
	} else {
		k -= len(out)
		c.searchArrival(e.fanInPts[k], &e.inDeltas[k])
	}
}

// fanOutSearches runs phase 2: one search per Δout and Δin point, fanned
// over the engine's shared worker dispatcher (fanOut, also used by CLUSTER;
// inline when one worker suffices). Search and node-access counts land in
// the private buffers and are summed in fixed slice order afterwards,
// keeping the totals identical to a sequential run — the same searches
// against the same fixed tree touch the same nodes.
func (e *Engine) fanOutSearches(in, out []model.Point) {
	total := len(out) + len(in)
	if total == 0 {
		return
	}
	e.ensureSearchCtxs(min(e.workers, total))
	e.fanInPts, e.fanOutPts = in, out
	if e.curTrace != nil {
		e.fanSpanName, e.fanParent = "collect.worker", e.phaseSpan
	}
	e.fanOut(total, e.collectFanFn)
	e.fanInPts, e.fanOutPts = nil, nil
	var nodes int64
	for i := range e.outDeltas {
		nodes += e.outDeltas[i].nodes
	}
	for i := range e.inDeltas {
		nodes += e.inDeltas[i].nodes
	}
	e.stats.RangeSearches += int64(total)
	e.stats.NodeAccesses += nodes
}

// defaultWorkers resolves the WithWorkers argument: n <= 0 selects
// GOMAXPROCS.
func defaultWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
