package core

import (
	"bytes"
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/metrics"
	"disc/internal/window"
)

// TestGridIndexEquivalence: the grid backend must produce exactly the same
// clustering as the R-tree backend (both verified against DBSCAN).
func TestGridIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	data := clustered2D(rng, 1200)
	cfg := cfg2(2.5, 5)
	verifyAgainstDBSCAN(t, data, cfg, 400, 40, WithGridIndex(0))
}

func TestGridIndexCustomSide(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	data := clustered2D(rng, 800)
	cfg := cfg2(2.0, 4)
	verifyAgainstDBSCAN(t, data, cfg, 250, 50, WithGridIndex(cfg.Eps))
}

func TestGridIndexInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	data := clustered2D(rng, 800)
	eng := New(cfg2(2.5, 5), WithGridIndex(0))
	steps, _ := window.Steps(data, 250, 25)
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestGridIndexSnapshotRoundTrip: checkpoints preserve the grid backend.
func TestGridIndexSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	data := clustered2D(rng, 900)
	cfg := cfg2(2.5, 5)
	steps, _ := window.Steps(data, 300, 30)
	eng := New(cfg, WithGridIndex(1.0))
	half := len(steps) / 2
	for _, st := range steps[:half] {
		eng.Advance(st.In, st.Out)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.indexKind != indexGrid || restored.gridSide != 1.0 {
		t.Fatalf("index choice not restored: kind=%d side=%g", restored.indexKind, restored.gridSide)
	}
	for i, st := range steps[half:] {
		restored.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(restored.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("post-restore step %d: %v", i, err)
		}
	}
}

// TestKDTreeIndexEquivalence: the k-d tree backend must also be exact.
func TestKDTreeIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	data := clustered2D(rng, 1000)
	verifyAgainstDBSCAN(t, data, cfg2(2.5, 5), 300, 30, WithKDTreeIndex())
}

func TestKDTreeIndexInvariantsAndSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	data := clustered2D(rng, 800)
	cfg := cfg2(2.0, 4)
	eng := New(cfg, WithKDTreeIndex())
	steps, _ := window.Steps(data, 250, 25)
	half := len(steps) / 2
	for i, st := range steps[:half] {
		eng.Advance(st.In, st.Out)
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.indexKind != indexKDTree {
		t.Fatal("index kind not restored")
	}
	for i, st := range steps[half:] {
		restored.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(restored.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("post-restore step %d: %v", i, err)
		}
	}
}
