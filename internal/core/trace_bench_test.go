package core

import (
	"testing"
	"time"

	"disc/internal/trace"
)

// BenchmarkAdvanceTrace is the tracing counterpart of the observer's A/B
// overhead check: the same benchAdvance workload with the recorder
// detached ("off") and attached ("on"). CI renames both sub-benchmarks to
// a common name and runs benchdiff across the two samples, bounding the
// attached-recorder overhead; the "off" sample doubles as evidence that
// the nil-trace fast path added to Advance costs nothing measurable
// relative to BenchmarkAdvance (which the main benchgate already gates at
// 10%).
func BenchmarkAdvanceTrace(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchAdvance(b)
	})
	b.Run("on", func(b *testing.B) {
		benchAdvance(b, WithTracer(trace.NewTracer(trace.Config{
			Recent: 64, Slow: 32, SlowThreshold: 50 * time.Millisecond,
		})))
	})
}

// BenchmarkAdvanceTraceWorkers exercises the per-worker span path: a
// parallel engine with the recorder attached, so every stride records
// fan-out worker spans under the trace mutex.
func BenchmarkAdvanceTraceWorkers(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchAdvance(b, WithWorkers(4))
	})
	b.Run("on", func(b *testing.B) {
		benchAdvance(b, WithWorkers(4), WithTracer(trace.NewTracer(trace.Config{
			Recent: 64, Slow: 32, SlowThreshold: 50 * time.Millisecond,
		})))
	})
}
