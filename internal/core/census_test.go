package core

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/window"
)

func TestClustersCensus(t *testing.T) {
	cfg := cfg2(1.1, 3)
	eng := New(cfg)
	// Square of 4 cores + one border + distant noise.
	pts := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0, 1)}, {ID: 4, Pos: geom.NewVec(1, 1)},
		{ID: 5, Pos: geom.NewVec(1.9, 0.5)}, // core too (nbrs 2,4 + self)
		{ID: 6, Pos: geom.NewVec(2.9, 0.5)}, // border of 5
		{ID: 7, Pos: geom.NewVec(50, 50)},   // noise
	}
	eng.Advance(pts, nil)
	clusters, noise := eng.Clusters()
	if noise != 1 {
		t.Fatalf("noise = %d, want 1", noise)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	c := clusters[0]
	if c.Cores != 5 || c.Borders != 1 || c.Size() != 6 {
		t.Fatalf("census = %+v", c)
	}
	members := eng.ClusterMembers(c.ID)
	if len(members) != 6 {
		t.Fatalf("members = %v", members)
	}
	// Cores first, sorted; border last.
	if members[len(members)-1] != 6 {
		t.Fatalf("border not last: %v", members)
	}
	if eng.ClusterMembers(999999) != nil {
		t.Fatal("phantom cluster returned members")
	}
}

func TestClustersCensusMatchesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := clustered2D(rng, 800)
	eng := New(cfg2(2.5, 5))
	steps, _ := window.Steps(data, 300, 50)
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	clusters, noise := eng.Clusters()
	snap := eng.Snapshot()
	wantNoise := 0
	wantSizes := map[int]int{}
	for _, a := range snap {
		if a.ClusterID == model.NoCluster {
			wantNoise++
		} else {
			wantSizes[a.ClusterID]++
		}
	}
	if noise != wantNoise {
		t.Fatalf("noise %d, want %d", noise, wantNoise)
	}
	if len(clusters) != len(wantSizes) {
		t.Fatalf("clusters %d, want %d", len(clusters), len(wantSizes))
	}
	for i, c := range clusters {
		if c.Size() != wantSizes[c.ID] {
			t.Fatalf("cluster %d size %d, want %d", c.ID, c.Size(), wantSizes[c.ID])
		}
		if i > 0 && clusters[i-1].Size() < c.Size() {
			t.Fatal("census not sorted by size")
		}
		if got := eng.ClusterMembers(c.ID); len(got) != c.Size() {
			t.Fatalf("cluster %d members %d, want %d", c.ID, len(got), c.Size())
		}
	}
}

func TestPhaseTimingsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data := clustered2D(rng, 600)
	eng := New(cfg2(2.5, 5))
	steps, _ := window.Steps(data, 200, 40)
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	pt := eng.PhaseTimings()
	if pt.Collect <= 0 || pt.Total() <= 0 {
		t.Fatalf("timings not accumulated: %+v", pt)
	}
	if pt.Total() != pt.Collect+pt.ExCores+pt.NeoCores+pt.Finalize {
		t.Fatal("Total mismatch")
	}
	eng.ResetStats()
	if eng.PhaseTimings() != (PhaseTimings{}) {
		t.Fatal("ResetStats did not clear timings")
	}
}
