package core

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

// FuzzParallelCollect is the differential fuzz target for the parallel
// COLLECT: over random stream geometries, thresholds and worker counts, the
// parallel engine must produce bit-identical snapshots to the sequential
// (workers=1) engine after every stride, and both must satisfy the engine
// invariants. The seed corpus mirrors FuzzDISCEquivalence's stream shapes so
// plain `go test` exercises the same geometries; run with
// `go test -fuzz=FuzzParallelCollect ./internal/core` to explore further.
func FuzzParallelCollect(f *testing.F) {
	f.Add(int64(1), uint8(100), uint8(20), uint8(25), uint8(5), uint8(4))
	f.Add(int64(2), uint8(60), uint8(60), uint8(5), uint8(1), uint8(8))
	f.Add(int64(3), uint8(200), uint8(3), uint8(40), uint8(12), uint8(2))
	f.Add(int64(4), uint8(80), uint8(10), uint8(1), uint8(3), uint8(3))
	f.Add(int64(5), uint8(120), uint8(40), uint8(30), uint8(7), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, winRaw, strideRaw, epsRaw, minPtsRaw, workersRaw uint8) {
		win := int(winRaw)%200 + 20
		stride := int(strideRaw)%win + 1
		eps := 0.2 + float64(epsRaw)*0.1
		minPts := int(minPtsRaw)%15 + 1
		workers := int(workersRaw)%16 + 2
		rng := rand.New(rand.NewSource(seed))
		n := win + stride*6
		data := make([]model.Point, n)
		for i := range data {
			var x, y float64
			if rng.Float64() < 0.2 {
				x, y = rng.Float64()*40, rng.Float64()*40
			} else {
				c := float64(rng.Intn(3)) * 12
				x, y = c+rng.NormFloat64()*1.5, c+rng.NormFloat64()*1.5
			}
			data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		}
		cfg := model.Config{Dims: 2, Eps: eps, MinPts: minPts}
		steps, err := window.Steps(data, win, stride)
		if err != nil {
			t.Fatal(err)
		}
		seq := New(cfg)
		par := New(cfg, WithWorkers(workers))
		for i, st := range steps {
			seq.Advance(st.In, st.Out)
			par.Advance(st.In, st.Out)
			want, got := seq.Snapshot(), par.Snapshot()
			if len(got) != len(want) {
				t.Fatalf("step %d (workers=%d): %d points vs %d sequential", i, workers, len(got), len(want))
			}
			for id, w := range want {
				if g := got[id]; g != w {
					t.Fatalf("step %d (workers=%d): point %d: parallel %+v, sequential %+v",
						i, workers, id, g, w)
				}
			}
			// Belt and braces: the shared-id check above implies clustering
			// equivalence, but SameClustering also validates density facts
			// against the raw window.
			if err := metrics.SameClustering(got, want, st.Window, cfg); err != nil {
				t.Fatalf("step %d (workers=%d): %v", i, workers, err)
			}
		}
		if err := par.CheckInvariants(); err != nil {
			t.Fatalf("invariants (workers=%d): %v", workers, err)
		}
		if seq.Stats() != par.Stats() {
			t.Fatalf("stats diverged: sequential %+v, parallel %+v", seq.Stats(), par.Stats())
		}
	})
}
