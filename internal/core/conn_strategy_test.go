package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"disc/internal/datasets"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

// This file holds the differential tests for the connectivity strategies:
// the maintained dyncon forest (WithConnectivity(ConnDynamic)) must produce
// bit-identical snapshots, event streams, and statistics to the per-stride
// MS-BFS reference for every dataset, worker count, and stride — across
// checkpoint restores and forest-desync rebuilds included.

// diffStrategies advances an MS-BFS reference engine and a dynamic-forest
// engine over the same steps and fails on the first stride where snapshots,
// event streams, or stats diverge. refOpts lets callers pin the reference to
// an ablation variant (sequential BFS, no epoch probing).
func diffStrategies(t *testing.T, cfg model.Config, steps []window.Step, workers int, refOpts ...Option) {
	t.Helper()
	var refEvents, dynEvents []string
	ref := New(cfg, append([]Option{recordEvents(&refEvents)}, refOpts...)...)
	dyn := New(cfg, recordEvents(&dynEvents), WithConnectivity(ConnDynamic), WithWorkers(workers))
	for i, st := range steps {
		ref.Advance(st.In, st.Out)
		dyn.Advance(st.In, st.Out)
		compareEngines(t, ref, dyn, refEvents, dynEvents, i, workers)
	}
	if err := dyn.CheckInvariants(); err != nil {
		t.Fatalf("invariants (workers=%d): %v", workers, err)
	}
	if got := dyn.ForestRebuilds(); got != 0 {
		t.Fatalf("incremental run fell back to %d full forest rebuilds", got)
	}
}

// compareEngines fails on any observable difference between the two engines
// after one stride: snapshot, event stream, stats.
func compareEngines(t *testing.T, ref, dyn *Engine, refEvents, dynEvents []string, step, workers int) {
	t.Helper()
	want, got := ref.Snapshot(), dyn.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("step %d (workers=%d): %d points vs %d reference", step, workers, len(got), len(want))
	}
	for id, w := range want {
		if g := got[id]; g != w {
			t.Fatalf("step %d (workers=%d): point %d: dynamic %+v, reference %+v",
				step, workers, id, g, w)
		}
	}
	if len(dynEvents) != len(refEvents) {
		t.Fatalf("step %d (workers=%d): %d events vs %d reference\ndyn: %v\nref: %v",
			step, workers, len(dynEvents), len(refEvents), dynEvents, refEvents)
	}
	for k := range refEvents {
		if dynEvents[k] != refEvents[k] {
			t.Fatalf("step %d (workers=%d): event %d diverged:\ndyn: %s\nref: %s",
				step, workers, k, dynEvents[k], refEvents[k])
		}
	}
	if ref.Stats() != dyn.Stats() {
		t.Fatalf("step %d (workers=%d): stats diverged:\nref %+v\ndyn %+v",
			step, workers, ref.Stats(), dyn.Stats())
	}
}

// TestConnectivityStrategyDatasets runs the MS-BFS-vs-dynamic differential
// over every bundled dataset generator, serial and fanned out.
func TestConnectivityStrategyDatasets(t *testing.T) {
	configs := map[string]struct {
		window int
		cfg    model.Config
	}{
		"dtg":     {2000, model.Config{Dims: 2, Eps: 0.002, MinPts: 4}},
		"geolife": {800, model.Config{Dims: 3, Eps: 0.01, MinPts: 7}},
		"covid":   {1000, model.Config{Dims: 2, Eps: 1.2, MinPts: 5}},
		"iris":    {1000, model.Config{Dims: 4, Eps: 2, MinPts: 9}},
		"maze":    {1200, model.Config{Dims: 2, Eps: 0.6, MinPts: 4}},
	}
	for _, name := range datasets.Names() {
		dc, ok := configs[name]
		if !ok {
			t.Fatalf("dataset %q has no differential config; add one", name)
		}
		t.Run(name, func(t *testing.T) {
			stride := dc.window / 4
			ds, err := datasets.ByName(name, dc.window+stride*5, 42)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := window.Steps(ds.Points, dc.window, stride)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				diffStrategies(t, dc.cfg, steps, workers)
			}
		})
	}
}

// TestConnectivityStrategyVsAblations pins that the dynamic forest is also
// bit-identical to the sequential-BFS and no-epoch-probing reference
// variants — the canonical component order is strategy-independent across
// all four implementations.
func TestConnectivityStrategyVsAblations(t *testing.T) {
	ds, err := datasets.ByName("maze", 1800, 9)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := window.Steps(ds.Points, 1200, 300)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.Config{Dims: 2, Eps: 0.6, MinPts: 4}
	diffStrategies(t, cfg, steps, 4, WithMSBFS(false))
	diffStrategies(t, cfg, steps, 4, WithEpochProbing(false))
}

// TestConnectivityCheckpointRoundTrip is the restore differential: a dynamic
// engine is checkpointed mid-run, restored (which must rebuild the forest —
// it is never serialized), and the restored engine must stay bit-identical
// to an MS-BFS reference over 20 subsequent strides.
func TestConnectivityCheckpointRoundTrip(t *testing.T) {
	ds, err := datasets.ByName("maze", 1200+100*26, 7)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := window.Steps(ds.Points, 1200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 26 {
		t.Fatalf("only %d steps generated", len(steps))
	}
	cfg := model.Config{Dims: 2, Eps: 0.6, MinPts: 4}

	var refEvents, dynEvents []string
	ref := New(cfg)
	dyn := New(cfg, WithConnectivity(ConnDynamic), WithWorkers(4))
	mid := len(steps) - 20
	for _, st := range steps[:mid] {
		ref.Advance(st.In, st.Out)
		dyn.Advance(st.In, st.Out)
	}

	// Round-trip BOTH engines: a restored engine's R-tree is rebuilt with
	// one STR bulk load, so its node layout — and with it per-search
	// NodeAccesses — legitimately differs from a continuously grown tree.
	// Comparing two restored engines keeps the strategy the only variable.
	var refBuf, buf bytes.Buffer
	if err := ref.SaveSnapshot(&refBuf); err != nil {
		t.Fatal(err)
	}
	ref, err = LoadEngine(&refBuf, recordEvents(&refEvents))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf, recordEvents(&dynEvents), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Connectivity() != ConnDynamic {
		t.Fatalf("restored strategy = %v, want ConnDynamic (persisted setting lost)", restored.Connectivity())
	}
	if restored.ForestRebuilds() != 1 {
		t.Fatalf("restore rebuilt the forest %d times, want exactly 1", restored.ForestRebuilds())
	}
	if restored.forest.NumVertices() == 0 {
		t.Fatal("restored forest is empty; rebuild did not run against the window")
	}

	for i, st := range steps[mid:] {
		ref.Advance(st.In, st.Out)
		restored.Advance(st.In, st.Out)
		compareEngines(t, ref, restored, refEvents, dynEvents, mid+i, 4)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConnectivityRestoreOverride pins that WithConnectivity passed to
// LoadEngine overrides the persisted strategy in both directions.
func TestConnectivityRestoreOverride(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
	for _, tc := range []struct {
		name     string
		saveOpt  []Option
		loadOpt  []Option
		restored ConnStrategy
	}{
		{"dynamic-to-msbfs", []Option{WithConnectivity(ConnDynamic)}, []Option{WithConnectivity(ConnMSBFS)}, ConnMSBFS},
		{"msbfs-to-dynamic", nil, []Option{WithConnectivity(ConnDynamic)}, ConnDynamic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := New(cfg, tc.saveOpt...)
			eng.Advance(line(0, 0, 40, 0.9), nil)
			var buf bytes.Buffer
			if err := eng.SaveSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadEngine(&buf, tc.loadOpt...)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Connectivity() != tc.restored {
				t.Fatalf("strategy = %v, want %v", restored.Connectivity(), tc.restored)
			}
			// The restored engine must work under the overriding strategy:
			// remove a middle core, forcing a split decision.
			restored.Advance(nil, []model.Point{{ID: 20}})
			if err := restored.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			snap := restored.Snapshot()
			if a, b := snap[0], snap[39]; a.ClusterID == b.ClusterID {
				t.Fatalf("severed chain halves share cluster %d", a.ClusterID)
			}
		})
	}
}

// TestForestDesyncRebuild sabotages the maintained forest mid-run and checks
// that the engine detects the desync on the next stride's delta, falls back
// to a full rebuild, and keeps producing bit-identical output.
func TestForestDesyncRebuild(t *testing.T) {
	ds, err := datasets.ByName("maze", 2400, 11)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := window.Steps(ds.Points, 1200, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.Config{Dims: 2, Eps: 0.6, MinPts: 4}
	var refEvents, dynEvents []string
	ref := New(cfg, recordEvents(&refEvents))
	dyn := New(cfg, recordEvents(&dynEvents), WithConnectivity(ConnDynamic))
	for i, st := range steps {
		if i == len(steps)/2 {
			dyn.forest.Reset() // sabotage: drop every vertex and edge
		}
		ref.Advance(st.In, st.Out)
		dyn.Advance(st.In, st.Out)
		compareEngines(t, ref, dyn, refEvents, dynEvents, i, 1)
	}
	if got := dyn.ForestRebuilds(); got < 1 {
		t.Fatalf("forest rebuilds = %d, want >= 1 after sabotage", got)
	}
	if err := dyn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConnectivitySequentialGuard is the -race regression for the
// sequential connectivity() convenience: it borrows engine-owned singletons
// (scratches[0], connRes), so concurrent callers must serialize under the
// engine's mutex instead of racing on them.
func TestConnectivitySequentialGuard(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
	a := line(0, 0, 120, 0.9)
	b := line(500, 300, 40, 0.9)
	eng := buildEngine(t, cfg, append(a, b...))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				bonding := []int64{0, 60, 119}
				wantNCC := 1
				if (g+i)%2 == 0 {
					bonding = []int64{0, 119, 500}
					wantNCC = 2
				}
				if _, ncc := eng.connectivity(bonding); ncc != wantNCC {
					t.Errorf("goroutine %d iter %d: ncc=%d, want %d", g, i, ncc, wantNCC)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// FuzzConnectivityEquivalence is the differential fuzz target for the
// connectivity strategies, on the same split-heavy churn geometry as
// FuzzParallelCluster: an MS-BFS reference against a dynamic-forest engine,
// with a checkpoint round-trip of both engines halfway through. Run
// with `go test -fuzz=FuzzConnectivityEquivalence ./internal/core`.
func FuzzConnectivityEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(100), uint8(20), uint8(10), uint8(3), uint8(4))
	f.Add(int64(2), uint8(60), uint8(60), uint8(4), uint8(1), uint8(8))
	f.Add(int64(3), uint8(140), uint8(3), uint8(24), uint8(6), uint8(2))
	f.Add(int64(4), uint8(80), uint8(10), uint8(1), uint8(2), uint8(3))
	f.Add(int64(5), uint8(120), uint8(40), uint8(30), uint8(5), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, winRaw, strideRaw, epsRaw, minPtsRaw, workersRaw uint8) {
		win := int(winRaw)%150 + 30
		stride := int(strideRaw)%win + 1
		eps := 0.3 + float64(epsRaw%40)*0.05
		minPts := int(minPtsRaw)%8 + 1
		workers := int(workersRaw)%16 + 2
		rng := rand.New(rand.NewSource(seed))
		n := win + stride*6
		data := make([]model.Point, n)
		for i := range data {
			var x, y float64
			switch rng.Intn(4) {
			case 0: // left blob
				x, y = rng.NormFloat64()*1.2, rng.NormFloat64()*1.2
			case 1: // right blob
				x, y = 10+rng.NormFloat64()*1.2, rng.NormFloat64()*1.2
			case 2: // bridge between the blobs — churn here causes splits/mergers
				x, y = rng.Float64()*10, rng.NormFloat64()*0.3
			default: // background noise
				x, y = rng.Float64()*20-5, rng.Float64()*20-10
			}
			data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		}
		cfg := model.Config{Dims: 2, Eps: eps, MinPts: minPts}
		steps, err := window.Steps(data, win, stride)
		if err != nil {
			t.Fatal(err)
		}
		var refEvents, dynEvents []string
		ref := New(cfg, recordEvents(&refEvents))
		dyn := New(cfg, recordEvents(&dynEvents), WithConnectivity(ConnDynamic), WithWorkers(workers))
		for i, st := range steps {
			if i == len(steps)/2 {
				// Round-trip BOTH engines through a checkpoint (each must
				// pick up exactly where it left off; restoring both keeps
				// the bulk-loaded tree layout — which NodeAccesses depends
				// on — identical between them).
				var refBuf, dynBuf bytes.Buffer
				if err := ref.SaveSnapshot(&refBuf); err != nil {
					t.Fatal(err)
				}
				ref, err = LoadEngine(&refBuf, recordEvents(&refEvents))
				if err != nil {
					t.Fatal(err)
				}
				if err := dyn.SaveSnapshot(&dynBuf); err != nil {
					t.Fatal(err)
				}
				dyn, err = LoadEngine(&dynBuf, recordEvents(&dynEvents), WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
			}
			ref.Advance(st.In, st.Out)
			dyn.Advance(st.In, st.Out)
			want, got := ref.Snapshot(), dyn.Snapshot()
			if len(got) != len(want) {
				t.Fatalf("step %d: %d points vs %d reference", i, len(got), len(want))
			}
			for id, w := range want {
				if g := got[id]; g != w {
					t.Fatalf("step %d: point %d: dynamic %+v, reference %+v", i, id, g, w)
				}
			}
			if err := metrics.SameClustering(got, want, st.Window, cfg); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if len(dynEvents) != len(refEvents) {
				t.Fatalf("step %d: %d events vs %d reference\ndyn: %v\nref: %v",
					i, len(dynEvents), len(refEvents), dynEvents, refEvents)
			}
			for k := range refEvents {
				if dynEvents[k] != refEvents[k] {
					t.Fatalf("step %d: event %d diverged:\ndyn: %s\nref: %s", i, k, dynEvents[k], refEvents[k])
				}
			}
			if ref.Stats() != dyn.Stats() {
				t.Fatalf("step %d: stats diverged:\nref %+v\ndyn %+v", i, ref.Stats(), dyn.Stats())
			}
		}
		if err := dyn.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
