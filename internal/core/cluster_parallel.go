package core

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/trace"
)

// This file implements the parallel CLUSTER step (Algorithm 2), restructured
// the way collect.go restructured COLLECT: read-only searches fan out over
// the WithWorkers pool into private capture buffers, and every side effect
// the serial walks applied inline is replayed single-threaded in a fixed
// order, so any worker count — including 1, which runs the fan-outs inline —
// produces bit-identical clusterings, event streams, and statistics.
//
// The ex-core phase runs as four sub-phases:
//
//	A. Capture (parallel): one SearchBallRO per ex-core — COLLECT already
//	   identified every ex-core, and retro-reachable components consist of
//	   nothing else — classifying each neighbor into the capture's buffers
//	   (coreDeg decrements, hint operations, affected ids, M⁻ candidates,
//	   R⁻ frontier edges) in ball order. Captures read only fields frozen
//	   during CLUSTER (pos, n, label, wasCore, enterStamp) and write only
//	   their own buffer, so they are trivially race-free. Advance hoists
//	   both capture fan-outs (ex-core AND neo-core) ahead of everything
//	   else, in every connectivity mode: the dynamic forest consumes the
//	   captured edge delta before phase C queries it, and identical capture
//	   timing is what keeps search statistics strategy-independent.
//	B. Assembly (sequential): a BFS over the captured frontier lists
//	   partitions the ex-cores into retro-reachable components, visiting
//	   members and deduplicating M⁻ (via bondTick/bondStamp) in exactly the
//	   order the serial walk did.
//	C. Connectivity (parallel): components with |M⁻| ≥ 2 run their MS-BFS
//	   checks on the worker pool, each against a per-worker scratch,
//	   recording results into a per-component connResult (msbfs.go).
//	D. Fold (sequential, in component order): replay each member's captured
//	   effects, then the component's connectivity effects, then decide
//	   dissipation / shrink / split, allocate fresh cluster ids, relabel,
//	   and emit the event — byte-for-byte the serial sequence.
//
// Determinism of the fold order is what resolves the hard case of two
// components whose neighbor balls overlap on a shared non-core point: both
// record hint writes for it, and the fold applies them in component order,
// so the point ends with the hint the serial walk would have left.
// Conditional effects — the serial walk clears a neighbor's hint only `if
// q.hint == eid` — are recorded as conditional hintOps and evaluated at
// fold time against the evolving state, which is exactly the state the
// serial walk would have seen at that step.
//
// The neo-core phase is the same shape but needs no connectivity sub-phase:
// captures fan out in parallel (hoisted; see above), then assembly and fold
// run fused, per-component, in seed order. Bonding cores are captured as
// point ids and resolved through pts[id].cid + cids.Find at fold time,
// because both an ex-core split folded earlier in the stride (which rewrites
// raw cids) and a merger folded earlier in the neo phase (which mutates the
// union-find) must be observed by later components.
//
// All buffers live on the Engine and are pooled across strides; nothing
// here is observable state and none of it is persisted (persist.go stores
// an explicit field list).

// hintOp is one deferred border-hint write captured during a read-only
// CLUSTER search, replayed by the fold.
type hintOp struct {
	target int64 // point whose hint is written
	arg    int64 // clear: the core id to test against; set: the new hint
	clear  bool  // true: "if hint == arg, clear it"; false: "hint = arg"
}

// applyHintOps replays recorded hint operations against live state. Must
// run single-threaded, in recording order.
func (e *Engine) applyHintOps(ops []hintOp) {
	for _, op := range ops {
		q := e.pts[op.target]
		if op.clear {
			if q.hint == op.arg {
				q.hint = noHint
			}
		} else {
			q.hint = op.arg
		}
	}
}

// exCapture is the private buffer one phase-A search around one ex-core
// fills. Slices are retained across strides; every list preserves ball
// (traversal) order so the fold replays the serial effect sequence.
type exCapture struct {
	degDec   []int64  // neighbors whose coreDeg drops
	hints    []hintOp // conditional clears + the ex-core's own hint updates
	affected []int64  // neighbors to mark affected
	bonding  []int64  // surviving-core neighbors: M⁻ candidates (pre-dedup)
	frontier []int64  // ex-core neighbors: R⁻ expansion edges
	nodes    int64    // index nodes the search touched
}

// neoCapture is the dual buffer for one neo-core. The same neighbor set
// receives the coreDeg credit, the hint refresh, and the affected mark, so
// one list serves all three.
type neoCapture struct {
	touched  []int64 // non-departed neighbors, ball order
	bondIDs  []int64 // surviving-core neighbors (M⁺); cids resolve at fold time
	frontier []int64 // neo-core neighbors: R⁺ expansion edges
	nodes    int64
}

// exComponent is one retro-reachable component: capture indices of its
// members in BFS discovery order plus its deduplicated M⁻.
type exComponent struct {
	seed    int64
	members []int32 // indices into exCores / e.exCaps
	bonding []int64 // M⁻, serial discovery order
}

// grow extends buf to n entries, preserving the pooled inner slices of
// entries beyond the previous length (the resetDeltas pattern).
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		buf = append(buf[:cap(buf)], make([]T, n-cap(buf))...)
	}
	return buf[:n]
}

func resetExCaps(buf []exCapture, n int) []exCapture {
	buf = grow(buf, n)
	for i := range buf {
		buf[i].degDec = buf[i].degDec[:0]
		buf[i].hints = buf[i].hints[:0]
		buf[i].affected = buf[i].affected[:0]
		buf[i].bonding = buf[i].bonding[:0]
		buf[i].frontier = buf[i].frontier[:0]
		buf[i].nodes = 0
	}
	return buf
}

func resetNeoCaps(buf []neoCapture, n int) []neoCapture {
	buf = grow(buf, n)
	for i := range buf {
		buf[i].touched = buf[i].touched[:0]
		buf[i].bondIDs = buf[i].bondIDs[:0]
		buf[i].frontier = buf[i].frontier[:0]
		buf[i].nodes = 0
	}
	return buf
}

func resetConnResults(buf []connResult, n int) []connResult {
	buf = grow(buf, n)
	for i := range buf {
		buf[i].reset()
	}
	return buf
}

// fanOutChunk is how many work items a worker claims from the shared cursor
// at a time — coarse enough to keep the atomic off the hot path, fine
// enough to balance skewed per-item cost (dense neighborhoods, large
// components).
const fanOutChunk = 8

// fanOut runs fn(worker, k) for every k in [0, total) across
// min(e.workers, total) goroutines — inline, without spawning, when that is
// one — and returns the width actually used. fn is invoked exactly once per
// k; distinct invocations must not share mutable state except through the
// per-worker slot index.
func (e *Engine) fanOut(total int, fn func(worker, k int)) int {
	workers := e.workers
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for k := 0; k < total; k++ {
			fn(0, k)
		}
		return 1
	}
	// Per-worker span parameters, captured before the spawn so workers
	// never read mutable engine fields. tr is nil for untraced strides
	// (the common case), leaving one nil check per worker.
	tr, fanName, fanParent := e.curTrace, e.fanSpanName, e.fanParent
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sp *trace.Span
			if tr != nil {
				sp = tr.StartSpan(fanName, fanParent, trace.Int("worker", w))
			}
			items := 0
			for {
				hi := cursor.Add(fanOutChunk)
				lo := hi - fanOutChunk
				if int(lo) >= total {
					break
				}
				if int(hi) > total {
					hi = int64(total)
				}
				for k := int(lo); k < int(hi); k++ {
					fn(w, k)
					items++
				}
			}
			if sp != nil {
				sp.SetInt("items", items)
				sp.EndNow()
			}
		}(w)
	}
	wg.Wait()
	return workers
}

// ensureScratches guarantees at least n per-worker connectivity scratches.
func (e *Engine) ensureScratches(n int) {
	for len(e.scratches) < n {
		e.scratches = append(e.scratches, newMSScratch(e))
	}
}

// poolGrows sums the growth counters of every pooled CLUSTER structure; the
// per-stride delta is the observer's PoolGrows (zero in the steady state).
func (e *Engine) poolGrows() int64 {
	var g int64
	for _, s := range e.scratches {
		g += s.grown + s.qpool.Grown()
	}
	return g
}

// noteClusterWorkers records the widest CLUSTER fan-out of the stride.
func (e *Engine) noteClusterWorkers(w int) {
	if w > e.strideClusterWorkers {
		e.strideClusterWorkers = w
	}
}

// captureExCore runs the phase-A search for one ex-core, recording the
// effects the serial walk would have applied while scanning its ε-ball.
func (c *searchCtx) captureExCore(eid int64, cp *exCapture) {
	e := c.e
	est := e.pts[eid]
	c.selfID, c.exited, c.xcp = eid, est.label == model.Deleted, cp
	cp.nodes = e.tree.SearchBallRO(est.pos, e.cfg.Eps, c.exFn)
	c.xcp = nil
}

func (c *searchCtx) onExCore(qid int64, _ geom.Vec) bool {
	e, cp, eid := c.e, c.xcp, c.selfID
	if qid == eid {
		return true
	}
	q := e.pts[qid]
	if q.label != model.Deleted {
		// The neighbor lost the core point eid. A point that entered
		// this stride never counted an exited core in its coreDeg
		// initialization, so skip that combination.
		if !(c.exited && q.enterStamp == e.stride) {
			cp.degDec = append(cp.degDec, qid)
		}
		cp.hints = append(cp.hints, hintOp{target: qid, arg: eid, clear: true})
		cp.affected = append(cp.affected, qid)
	}
	if e.isCoreNow(q) {
		// Any current core serves as a border hint for the ex-core
		// itself once it is demoted.
		cp.hints = append(cp.hints, hintOp{target: eid, arg: qid})
		if q.wasCore {
			cp.bonding = append(cp.bonding, qid)
		}
	} else if e.isExCore(q) {
		cp.frontier = append(cp.frontier, qid)
	}
	return true
}

// exCapSearch is the bound-once phase-A dispatcher for ex-core captures.
func (e *Engine) exCapSearch(w, k int) {
	e.searchCtxs[w].captureExCore(e.fanExCores[k], &e.exCaps[k])
}

// neoCapSearch is its neo-core counterpart.
func (e *Engine) neoCapSearch(w, k int) {
	e.searchCtxs[w].captureNeoCore(e.fanNeoCores[k], &e.neoCaps[k])
}

// connCheck is the bound-once phase-C dispatcher: one connectivity check per
// component queued in connWork, each against its worker's private scratch.
func (e *Engine) connCheck(w, k int) {
	ci := e.connWork[k]
	e.connectivityInto(e.exComps[ci].bonding, e.scratches[w], &e.connResults[ci])
}

// captureExCores is phase A of the ex-core pipeline: capture searches fan
// out over the worker pool. Advance calls it before the C_out points leave
// the index (retro-reachability needs them) and before any fold mutates
// engine state.
func (e *Engine) captureExCores(exCores []int64) {
	if len(exCores) == 0 {
		return
	}
	e.exCaps = resetExCaps(e.exCaps, len(exCores))
	for i, id := range exCores {
		st := e.pts[id]
		st.capStamp = e.stride
		st.capIdx = int32(i)
	}
	e.ensureSearchCtxs(min(e.workers, len(exCores)))
	e.fanExCores = exCores
	if e.curTrace != nil {
		e.fanSpanName, e.fanParent = "cluster.excap.worker", e.phaseSpan
	}
	e.noteClusterWorkers(e.fanOut(len(exCores), e.exCapFanFn))
	e.fanExCores = nil
}

// clusterExCores processes cluster evolution driven by ex-cores: for each
// retro-reachable component it computes the minimal bonding cores M⁻ and
// checks their density-connectedness. Theorem 1 of the paper justifies
// retiring the entire component after a single check — and, since distinct
// components share no minimal bonding cores, running those checks
// concurrently. Phase A (captureExCores) has already run. See the file
// header for the phase structure.
func (e *Engine) clusterExCores(exCores []int64) {
	if len(exCores) == 0 {
		return
	}

	// Phase B — assemble retro-reachable components from the captured
	// frontier lists, replaying the serial BFS discovery order.
	ncomp := 0
	for _, seed := range exCores {
		if e.pts[seed].exStamp == e.stride {
			continue // already covered by an earlier component (Alg. 2 line 7)
		}
		e.exComps = grow(e.exComps, ncomp+1)
		c := &e.exComps[ncomp]
		ncomp++
		c.seed = seed
		c.members = c.members[:0]
		c.bonding = c.bonding[:0]
		e.bondTick++
		e.walkQ = append(e.walkQ[:0], e.pts[seed].capIdx)
		e.pts[seed].exStamp = e.stride
		for head := 0; head < len(e.walkQ); head++ {
			ci := e.walkQ[head]
			c.members = append(c.members, ci)
			cp := &e.exCaps[ci]
			for _, qid := range cp.bonding {
				if q := e.pts[qid]; q.bondStamp != e.bondTick {
					q.bondStamp = e.bondTick
					c.bonding = append(c.bonding, qid)
				}
			}
			for _, fid := range cp.frontier {
				if q := e.pts[fid]; q.exStamp != e.stride {
					q.exStamp = e.stride
					e.walkQ = append(e.walkQ, q.capIdx)
				}
			}
		}
	}

	// Phase C — connectivity checks fan out over the components that need
	// one (|M⁻| ≥ 2; smaller sets decide without a traversal).
	e.connResults = resetConnResults(e.connResults, ncomp)
	e.connWork = e.connWork[:0]
	for i := 0; i < ncomp; i++ {
		if len(e.exComps[i].bonding) >= 2 {
			e.connWork = append(e.connWork, int32(i))
		}
	}
	if len(e.connWork) > 0 {
		e.strideConnChecks += len(e.connWork)
		if e.connStrategy == ConnDynamic {
			// Serial pre-verify: every bonding core must be a forest vertex
			// before the concurrent (read-only) queries run; a miss means
			// desync and triggers a rebuild here, where mutating is safe.
			e.verifyForestBonding()
		}
		cw := e.workers
		if cw > len(e.connWork) {
			cw = len(e.connWork)
		}
		if cw < 1 {
			cw = 1
		}
		e.ensureScratches(cw)
		var spConn *trace.Span
		if tr := e.curTrace; tr != nil {
			spConn = tr.StartSpan("connectivity", e.phaseSpan,
				trace.Int("checks", len(e.connWork)))
			e.fanSpanName, e.fanParent = "connectivity.worker", spConn
		}
		connStart := time.Now()
		e.noteClusterWorkers(e.fanOut(len(e.connWork), e.connFanFn))
		e.strideConnDur += time.Since(connStart)
		spConn.EndNow()
	}

	// Phase D — fold, in component order.
	for i := 0; i < ncomp; i++ {
		c := &e.exComps[i]
		// All retro-reachable ex-cores shared one cluster in the previous
		// window; remember it for event reporting before labels change.
		oldCID := e.cids.Find(e.pts[c.seed].cid)
		for _, ci := range c.members {
			cp := &e.exCaps[ci]
			for _, qid := range cp.degDec {
				e.pts[qid].coreDeg--
			}
			e.applyHintOps(cp.hints)
			for _, qid := range cp.affected {
				e.markAffected(qid, e.pts[qid])
			}
			e.stats.RangeSearches++
			e.stats.NodeAccesses += cp.nodes
		}
		res := &e.connResults[i]
		e.applyConnResult(res)

		// Decide the evolution of the component's previous cluster: an
		// empty M⁻ is a dissipation, a connected M⁻ a shrink, a
		// disconnected M⁻ a split (Algorithm 2 lines 4-6).
		size := len(c.members)
		if len(c.bonding) == 0 {
			e.emit(Event{Type: Dissipation, ClusterID: oldCID, Cores: size})
			continue
		}
		if len(c.bonding) == 1 || res.ncc <= 1 {
			e.emit(Event{Type: Shrink, ClusterID: oldCID, Cores: size})
			continue
		}
		e.stats.Splits += int64(res.ncc - 1)
		var fresh []int
		for k := 0; k < res.components(); k++ {
			cid := e.nextCID
			e.nextCID++
			fresh = append(fresh, cid)
			// Canonical member order: the recording order is traversal
			// (MS-BFS / sequential) or Euler-tour (forest) shaped, and the
			// relabel order feeds the affected set, whose order is
			// observable one stride later (it decides the next stride's
			// ex-core order). Sorting makes it strategy-independent.
			members := res.component(k)
			slices.Sort(members)
			for _, id := range members {
				st := e.pts[id]
				st.cid = cid
				e.markAffected(id, st)
			}
		}
		e.emit(Event{Type: Split, ClusterID: oldCID, NewClusters: fresh, Cores: size})
	}
}

// captureNeoCore runs the capture search for one neo-core.
func (c *searchCtx) captureNeoCore(nid int64, cp *neoCapture) {
	e := c.e
	nst := e.pts[nid]
	c.selfID, c.ncp = nid, cp
	cp.nodes = e.tree.SearchBallRO(nst.pos, e.cfg.Eps, c.neoFn)
	c.ncp = nil
}

func (c *searchCtx) onNeoCore(qid int64, _ geom.Vec) bool {
	e, cp := c.e, c.ncp
	if qid == c.selfID {
		return true
	}
	q := e.pts[qid]
	if q.label == model.Deleted {
		return true
	}
	// The neighbor gains the core point nid: +1 coreDeg, hint refresh,
	// affected mark — one list drives all three at fold time.
	cp.touched = append(cp.touched, qid)
	if !e.isCoreNow(q) {
		return true
	}
	if q.wasCore {
		// The id, not the cid: the fold reads pts[qid].cid and resolves it
		// through cids.Find, so both an ex-core split relabel and a merger
		// folded earlier in this stride are observed.
		cp.bondIDs = append(cp.bondIDs, qid)
	} else {
		cp.frontier = append(cp.frontier, qid)
	}
	return true
}

// captureNeoCores is the neo-core capture fan-out, hoisted by Advance next
// to captureExCores (see the file header): it runs while the C_out points
// are still resident in the index — they are skipped by label — and before
// any fold mutates engine state.
func (e *Engine) captureNeoCores(neoCores []int64) {
	if len(neoCores) == 0 {
		return
	}
	e.neoCaps = resetNeoCaps(e.neoCaps, len(neoCores))
	for i, id := range neoCores {
		st := e.pts[id]
		st.capStamp = e.stride
		st.capIdx = int32(i)
	}
	e.ensureSearchCtxs(min(e.workers, len(neoCores)))
	e.fanNeoCores = neoCores
	if e.curTrace != nil {
		e.fanSpanName, e.fanParent = "cluster.neocap.worker", e.phaseSpan
	}
	e.noteClusterWorkers(e.fanOut(len(neoCores), e.neoCapFanFn))
	e.fanNeoCores = nil
}

// clusterNeoCores processes cluster evolution driven by neo-cores: each
// nascent-reachable component gathers the cluster ids of its minimal
// bonding cores M⁺; no ids means a new cluster emerges, one id means the
// cluster expands, several mean those clusters merge (Algorithm 2 lines
// 9-13). Captures already fanned out (captureNeoCores); assembly and fold
// run fused per component, in seed order, so merger order — and therefore
// every union in the cid forest — matches the serial walk.
func (e *Engine) clusterNeoCores(neoCores []int64) {
	if len(neoCores) == 0 {
		return
	}
	for _, seed := range neoCores {
		if e.pts[seed].neoStamp == e.stride {
			continue // covered by an earlier component
		}
		// Assemble and fold one nascent-reachable component. walkQ is a
		// head-indexed ring, never shifted, so after the loop it holds the
		// full member list for relabeling; cidScratch deduplicates resolved
		// cluster ids in first-encounter order.
		e.walkQ = append(e.walkQ[:0], e.pts[seed].capIdx)
		e.cidScratch = e.cidScratch[:0]
		e.pts[seed].neoStamp = e.stride
		for head := 0; head < len(e.walkQ); head++ {
			ci := e.walkQ[head]
			nid := neoCores[ci]
			e.markAffected(nid, e.pts[nid])
			cp := &e.neoCaps[ci]
			for _, qid := range cp.touched {
				q := e.pts[qid]
				q.coreDeg++
				q.hint = nid
				e.markAffected(qid, q)
			}
			for _, bid := range cp.bondIDs {
				cid := e.cids.Find(e.pts[bid].cid)
				if !containsCID(e.cidScratch, cid) {
					e.cidScratch = append(e.cidScratch, cid)
				}
			}
			for _, fid := range cp.frontier {
				if q := e.pts[fid]; q.neoStamp != e.stride {
					q.neoStamp = e.stride
					e.walkQ = append(e.walkQ, q.capIdx)
				}
			}
			e.stats.RangeSearches++
			e.stats.NodeAccesses += cp.nodes
		}

		var cid int
		switch len(e.cidScratch) {
		case 0: // emergence
			cid = e.nextCID
			e.nextCID++
			e.emit(Event{Type: Emergence, ClusterID: cid, Cores: len(e.walkQ)})
		case 1: // expansion
			cid = e.cidScratch[0]
			e.emit(Event{Type: Expansion, ClusterID: cid, Cores: len(e.walkQ)})
		default: // merger
			cid = e.cidScratch[0]
			for _, c := range e.cidScratch[1:] {
				if c < cid {
					cid = c
				}
			}
			var absorbed []int
			for _, c := range e.cidScratch {
				if c != cid {
					e.cids.UnionInto(cid, c)
					e.stats.Merges++
					absorbed = append(absorbed, c)
				}
			}
			e.emit(Event{Type: Merger, ClusterID: cid, Absorbed: absorbed, Cores: len(e.walkQ)})
		}
		for _, ci := range e.walkQ {
			e.pts[neoCores[ci]].cid = cid
		}
	}
}

// containsCID reports whether the (small) dedup scratch already holds cid —
// a linear scan beats a map for the handful of clusters a component
// typically bonds to, and allocates nothing.
func containsCID(s []int, cid int) bool {
	for _, c := range s {
		if c == cid {
			return true
		}
	}
	return false
}
