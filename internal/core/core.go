// Package core implements DISC (Density-based Incremental Striding
// Clustering), the primary contribution of Kim et al., ICDE 2021: an exact
// incremental density-based clustering algorithm for the sliding-window
// stream model that produces clusterings identical to DBSCAN while touching
// only the neighborhood of change.
//
// Each window advance runs two steps (Fig. 2 of the paper):
//
//   - COLLECT (Algorithm 1) batch-updates the ε-neighbor count nε(p) of every
//     point affected by the stride's arrivals (Δin) and departures (Δout) and
//     identifies the ex-cores (were cores, no longer are or left the window)
//     and neo-cores (are cores, were not or just arrived).
//   - CLUSTER (Algorithm 2) resolves cluster evolution: for every connected
//     component of ex-cores (one retro-reachable set R⁻) it gathers the
//     minimal bonding cores M⁻ — the surviving cores directly ε-adjacent to
//     the component — and checks their density-connectedness with MS-BFS
//     (Algorithm 3) over epoch-stamped scratch state (msbfs.go); a
//     disconnected M⁻ is a cluster split. Neo-core components (R⁺) only
//     inspect the cluster ids of their bonding cores M⁺ to decide emergence,
//     expansion, or merger — no connectivity search is ever needed for them.
//     Both phases fan their searches over the WithWorkers pool and fold the
//     results deterministically (cluster_parallel.go).
//
// Label maintenance (§V of the paper) is folded into the same range searches:
// every point keeps the count of its current core ε-neighbors, which changes
// exactly when a neighbor is an ex-core or neo-core — points we already
// search around once per stride — so border/noise status updates are free,
// and each border keeps a "hint" (the id of one core neighbor) through which
// its cluster id resolves even across later splits and merges.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"disc/internal/dsu"
	"disc/internal/dyncon"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/rtree"
	"disc/internal/trace"
)

// compactInterval is the number of strides between cluster-id compactions
// (rewriting every stored cid to its union-find representative and resetting
// the forest, so the id space does not grow without bound).
const compactInterval = 1024

// noHint marks an absent or invalidated border hint.
const noHint = int64(-1)

// Option configures optional behaviors of the engine. The two switches
// correspond to the ablation study in Fig. 8 of the paper.
type Option func(*Engine)

// WithMSBFS enables (default) or disables the Multi-Starter BFS. When
// disabled, connectivity of minimal bonding cores is checked by sequential
// single-source BFS traversals that explore entire components.
func WithMSBFS(on bool) Option { return func(e *Engine) { e.useMSBFS = on } }

// WithEpochProbing enables (default) or disables epoch-stamped reuse of the
// connectivity scratch (the descendant of the paper's Algorithm 4: visited
// marks survive between checks and are invalidated in O(1) by bumping an
// instance tick). When disabled, every connectivity check rebuilds its
// visited set from scratch — the "no reuse" ablation — with identical
// traversal order and statistics, paying the allocations the pooled path
// avoids.
func WithEpochProbing(on bool) Option { return func(e *Engine) { e.useEpoch = on } }

// WithWorkers sets how many goroutines the per-stride search work fans out
// over — COLLECT's ε-range searches and CLUSTER's capture searches and
// MS-BFS connectivity checks alike; n <= 0 selects GOMAXPROCS and 1 (the
// default) runs everything inline. Every worker count produces bit-identical
// engine state, event streams, and statistics: the parallel work is
// read-only and fills private buffers that are folded single-threaded in a
// fixed order (see collect.go and cluster_parallel.go).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = defaultWorkers(n) } }

// WithAllocTracking enables per-phase heap-allocation accounting: Advance
// brackets each phase with runtime.ReadMemStats and accumulates the deltas
// readable via PhaseAllocs. This is bench instrumentation — the stops-the-
// world sampling distorts latency — so it is off by default and costs only
// a bool check when off.
func WithAllocTracking(on bool) Option { return func(e *Engine) { e.trackAllocs = on } }

// pstate is the per-point bookkeeping DISC maintains for every point in the
// current window (plus, transiently, the exited ex-cores C_out).
type pstate struct {
	pos     geom.Vec
	n       int32       // nε: neighbors within ε, the point itself included
	coreDeg int32       // current core points within ε, itself excluded
	cid     int         // raw cluster id for cores; resolve through Engine.cids
	hint    int64       // id of one core ε-neighbor justifying Border status
	label   model.Label // finalized label as of the last completed stride
	wasCore bool        // was a core at the end of the previous stride

	// Stride-scoped stamps; a field equals the current stride number when
	// the mark is set, so no per-stride clearing pass is needed.
	affStamp   uint64 // member of the affected set
	enterStamp uint64 // member of Δin
	exStamp    uint64 // visited by the retro-reachability (R⁻) traversal
	neoStamp   uint64 // visited by the nascent-reachability (R⁺) traversal
	bondStamp  uint64 // collected into the current component's M⁻ set
	capStamp   uint64 // capIdx is valid for the current stride
	capIdx     int32  // index of this ex-/neo-core's CLUSTER capture buffer
}

// Engine is the DISC clustering engine. It implements model.Engine. The
// zero value is unusable; construct with New. Not safe for concurrent use.
type Engine struct {
	cfg       model.Config
	tree      spatialIndex
	indexKind indexKind
	gridSide  float64
	pts       map[int64]*pstate
	cids      *dsu.Int
	nextCID   int
	stride    uint64 // current stride number; stamps compare against it
	bondTick  uint64 // per-component counter for M⁻ deduplication

	useMSBFS bool
	useEpoch bool
	workers  int // per-stride search fan-out (COLLECT and CLUSTER); 1 = inline
	onEvent  func(Event)
	observer Observer

	// Connectivity strategy (dyncon.go). With ConnDynamic the engine keeps
	// forest — a dynamic-connectivity structure over the core-adjacency
	// graph — in sync with every stride's core delta and answers phase-C
	// component queries from it instead of traversing. connMu serializes the
	// sequential connectivity() convenience, whose scratch and result are
	// engine-owned singletons. forestRebuilds counts lifetime full rebuilds
	// (restores and desync fallbacks).
	connStrategy   ConnStrategy
	forest         *dyncon.Forest
	connMu         sync.Mutex
	forestRebuilds int64

	// Span recording (trace.go). tracer enables self-traced advances;
	// curTrace/advParent are set for the duration of one traced advance
	// (either self-started or caller-owned via AdvanceTraced). advSpan is
	// the stride's "advance" span, phaseSpan the open phase span under it,
	// and fanParent/fanSpanName parameterize per-worker fan-out spans the
	// same way fanInPts/fanExCores parameterize the bound-once search
	// dispatchers. With no trace active every hook is one nil check.
	tracer      *trace.Tracer
	curTrace    *trace.Trace
	advParent   *trace.Span
	advSpan     *trace.Span
	phaseSpan   *trace.Span
	fanParent   *trace.Span
	fanSpanName string

	stats       model.Stats
	timings     PhaseTimings
	trackAllocs bool
	allocs      PhaseAllocs

	// Per-stride telemetry tallies, reset at the top of Advance and read by
	// observeStride; plain int fields so maintaining them costs one
	// increment on paths that already allocate Event values.
	strideEvents         [numEventTypes]int
	strideMerges         int64
	strideClusterWorkers int
	strideConnChecks     int

	// Connectivity telemetry for the stride: traversal work (MS-BFS modes),
	// phase-C wall time, and — under ConnDynamic — the forest maintenance
	// cost. None of this feeds model.Stats; engine statistics are
	// strategy-independent by contract (see msbfs.go).
	strideConnSearches       int64
	strideConnNodes          int64
	strideConnDur            time.Duration
	strideForestDur          time.Duration
	strideForestOps          int64
	strideForestReplSearches int64
	strideForestReplScans    int64
	strideForestRebuilds     int64

	// Scratch reused across strides. None of this is observable state and
	// none of it is persisted (persist.go serializes an explicit field
	// list); it exists purely to keep the steady state allocation-free.
	affected  []int64
	inDeltas  []collectDelta
	outDeltas []collectDelta

	// COLLECT stride buffers: the transition lists collect produces, the
	// Δin batch arrays feeding one BulkInsert per stride, and a pstate free
	// list recycling the state of departed points into arrivals. Stride
	// stamps need no clearing on reuse: a stale stamp is always below the
	// current stride.
	exCoresBuf  []int64
	neoCoresBuf []int64
	coutBuf     []int64
	bulkIDs     []int64
	bulkPos     []geom.Vec
	freePts     []*pstate

	// censusIdx maps cluster id -> index into the caller's ClustersInto
	// buffer; pooled so repeated censuses allocate nothing.
	censusIdx map[int]int32

	// CLUSTER pipeline scratch (cluster_parallel.go, msbfs.go).
	exCaps      []exCapture
	neoCaps     []neoCapture
	exComps     []exComponent
	connWork    []int32
	connResults []connResult
	walkQ       []int32
	cidScratch  []int
	scratches   []*msScratch
	connRes     connResult

	// Bound-once fan-out dispatchers and per-worker search contexts. Building
	// a closure per ε-search (or per fan-out) was the last steady-state
	// allocation on the Advance path; instead each hot callback is a func
	// value created once at construction that reads its per-call parameters
	// from stable engine or context fields (the msScratch.visit trick). The
	// fanInPts/fanOutPts/fanExCores/fanNeoCores fields alias the current
	// fan-out's inputs only for the duration of that fan-out.
	searchCtxs   []*searchCtx
	fanInPts     []model.Point
	fanOutPts    []model.Point
	fanExCores   []int64
	fanNeoCores  []int64
	collectFanFn func(worker, k int)
	exCapFanFn   func(worker, k int)
	neoCapFanFn  func(worker, k int)
	connFanFn    func(worker, k int)
	hintFn       func(qid int64, p geom.Vec) bool
	hintSelf     int64
	hintFound    int64
	rebuildFn    func(qid int64, p geom.Vec) bool
	rebuildSelf  int64
}

// New returns a DISC engine for the given configuration. It panics on an
// invalid configuration; use cfg.Validate to pre-check user input.
func New(cfg model.Config, opts ...Option) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:      cfg,
		tree:     rtree.New(cfg.Dims),
		pts:      make(map[int64]*pstate),
		cids:     dsu.NewInt(),
		nextCID:  1,
		useMSBFS: true,
		useEpoch: true,
		workers:  1,
	}
	// Method values allocate; bind the hot-path dispatchers exactly once.
	e.collectFanFn = e.collectSearch
	e.exCapFanFn = e.exCapSearch
	e.neoCapFanFn = e.neoCapSearch
	e.connFanFn = e.connCheck
	e.hintFn = e.hintVisit
	e.rebuildFn = e.rebuildVisit
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "DISC" }

// Advance implements model.Engine: it slides the window by one stride,
// running COLLECT and CLUSTER and finalizing every affected label. With a
// tracer attached (WithTracer) each advance records its own span tree; see
// AdvanceTraced for contributing to a caller-owned trace instead.
func (e *Engine) Advance(in, out []model.Point) {
	if e.tracer == nil || e.curTrace != nil {
		e.advance(in, out)
		return
	}
	// Self-traced advance: the engine owns the whole trace.
	tr := e.tracer.StartTrace(trace.SpanContext{})
	e.curTrace = tr
	e.advance(in, out)
	e.clearTrace()
	e.tracer.Finish(tr)
}

// advance is the untraced body of Advance; tracing hooks read e.curTrace.
func (e *Engine) advance(in, out []model.Point) {
	e.stride++
	e.affected = e.affected[:0]
	e.strideEvents = [numEventTypes]int{}
	e.strideMerges = 0
	e.strideClusterWorkers = 0
	e.strideConnChecks = 0
	e.strideConnSearches, e.strideConnNodes = 0, 0
	e.strideConnDur, e.strideForestDur = 0, 0
	e.strideForestOps, e.strideForestReplSearches, e.strideForestReplScans = 0, 0, 0
	e.strideForestRebuilds = 0
	poolBefore := e.poolGrows()
	treeBefore := e.tree.Stats()
	statsBefore := e.stats

	tr := e.curTrace
	var m0, m1, m2, m3 runtime.MemStats
	if e.trackAllocs {
		runtime.ReadMemStats(&m0)
	}
	t0 := time.Now()
	if tr != nil {
		e.advSpan = tr.StartSpanAt("advance", e.advParent, t0,
			trace.Int64("stride", int64(e.stride)),
			trace.Int("delta_in", len(in)), trace.Int("delta_out", len(out)))
		e.phaseSpan = tr.StartSpanAt("collect", e.advSpan, t0)
	}
	exCores, neoCores, cout := e.collect(in, out)
	t1 := time.Now()
	if tr != nil {
		e.phaseSpan.SetInt("ex_cores", len(exCores))
		e.phaseSpan.SetInt("neo_cores", len(neoCores))
		e.phaseSpan.EndAt(t1)
		e.phaseSpan = tr.StartSpanAt("cluster.excores", e.advSpan, t1)
	}
	if e.trackAllocs {
		runtime.ReadMemStats(&m1)
	}
	// Both capture fan-outs run up front, against the same index contents
	// (exited ex-cores still resident), in every connectivity mode: the
	// dynamic forest needs the full core-graph delta — neo-core edges
	// included — before the ex-core phase queries it, and running the
	// captures at the same point regardless of strategy is what keeps the
	// search statistics strategy-identical.
	e.captureExCores(exCores)
	e.captureNeoCores(neoCores)
	if e.connStrategy == ConnDynamic {
		e.syncForest(exCores, neoCores)
	}
	e.clusterExCores(exCores)
	// Algorithm 2 line 8: ex-cores that exited the window stay in the R-tree
	// through the ex-core phase (retro-reachability needs them) and are
	// removed before neo-cores are processed.
	for _, id := range cout {
		e.tree.Delete(id, e.pts[id].pos)
	}
	t2 := time.Now()
	if tr != nil {
		e.phaseSpan.EndAt(t2)
		e.phaseSpan = tr.StartSpanAt("cluster.neocores", e.advSpan, t2)
	}
	e.clusterNeoCores(neoCores)
	t3 := time.Now()
	if tr != nil {
		e.phaseSpan.EndAt(t3)
		e.phaseSpan = tr.StartSpanAt("finalize", e.advSpan, t3,
			trace.Int("affected", len(e.affected)))
	}
	if e.trackAllocs {
		runtime.ReadMemStats(&m2)
	}
	e.finalize()
	t4 := time.Now()
	if tr != nil {
		e.phaseSpan.EndAt(t4)
		e.phaseSpan = nil
		e.advSpan.EndAt(t4)
	}
	if e.trackAllocs {
		runtime.ReadMemStats(&m3)
		e.allocs.accumulate(&m0, &m1, &m2, &m3)
	}
	e.timings.Collect += t1.Sub(t0)
	e.timings.ExCores += t2.Sub(t1)
	e.timings.NeoCores += t3.Sub(t2)
	e.timings.Finalize += t4.Sub(t3)

	treeAfter := e.tree.Stats()
	e.stats.RangeSearches += treeAfter.RangeSearches - treeBefore.RangeSearches
	e.stats.NodeAccesses += treeAfter.NodeAccesses - treeBefore.NodeAccesses
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.pts))

	if e.observer != nil {
		e.observeStride(in, out, len(exCores), len(neoCores),
			t0, t1, t2, t3, t4, statsBefore,
			treeAfter.EpochPruned-treeBefore.EpochPruned,
			e.poolGrows()-poolBefore)
	}

	if e.stride%compactInterval == 0 {
		e.compactCIDs()
	}
}

// markAffected adds id to the stride's affected set exactly once.
func (e *Engine) markAffected(id int64, st *pstate) {
	if st.affStamp != e.stride {
		st.affStamp = e.stride
		e.affected = append(e.affected, id)
	}
}

// collect is the COLLECT step (Algorithm 1), restructured into three phases
// (see collect.go): structural index mutations first, then one read-only
// ε-range search per point of Δout ∪ Δin — fanned over e.workers goroutines
// into private delta buffers — and finally a deterministic single-threaded
// merge. It returns the ex-cores, neo-cores, and the exited ex-cores C_out
// (still resident in the R-tree).
func (e *Engine) collect(in, out []model.Point) (exCores, neoCores, cout []int64) {
	cout = e.coutBuf[:0]
	// Phase 1 — structural mutations, applied up front so every phase-2
	// search runs against one fixed index and immutable pstates.
	for _, p := range out {
		st, ok := e.pts[p.ID]
		if !ok {
			panic(fmt.Sprintf("disc: point %d left the window but was never inserted", p.ID))
		}
		if st.label == model.Core {
			cout = append(cout, p.ID) // keep in the R-tree until CLUSTER ends
		} else {
			e.tree.Delete(p.ID, st.pos)
		}
		st.label = model.Deleted
		st.n = 0
	}
	e.bulkIDs = e.bulkIDs[:0]
	e.bulkPos = e.bulkPos[:0]
	for _, p := range in {
		if _, dup := e.pts[p.ID]; dup {
			panic(fmt.Sprintf("disc: duplicate point id %d entered the window", p.ID))
		}
		st := e.newPstate()
		*st = pstate{pos: p.Pos, n: 1, hint: noHint, label: model.Unclassified, enterStamp: e.stride}
		e.pts[p.ID] = st
		e.bulkIDs = append(e.bulkIDs, p.ID)
		e.bulkPos = append(e.bulkPos, p.Pos)
	}
	e.tree.BulkInsert(e.bulkIDs, e.bulkPos)

	// Phase 2 — the parallel search fan-out.
	e.outDeltas = resetDeltas(e.outDeltas, len(out))
	e.inDeltas = resetDeltas(e.inDeltas, len(in))
	e.fanOutSearches(in, out)

	// Phase 3 — fold the private buffers into the engine, Δout then Δin, in
	// slice order; the fixed order makes the result independent of workers.
	for i, p := range out {
		for _, qid := range e.outDeltas[i].touched {
			q := e.pts[qid]
			q.n--
			e.markAffected(qid, q)
		}
		e.markAffected(p.ID, e.pts[p.ID])
	}
	for i, p := range in {
		st := e.pts[p.ID]
		d := &e.inDeltas[i]
		st.n += d.selfN
		st.coreDeg = d.coreDeg
		st.hint = d.hint
		for _, qid := range d.touched {
			q := e.pts[qid]
			q.n++
			e.markAffected(qid, q)
		}
		// Each co-arriving pair was recorded once, by its smaller-id
		// endpoint; credit both sides here.
		for _, qid := range d.pairs {
			q := e.pts[qid]
			q.n++
			st.n++
			e.markAffected(qid, q)
		}
		e.markAffected(p.ID, st)
	}

	// Every point whose nε changed is in the affected set; core-status
	// transitions can only happen there (Definitions 1 and 2).
	exCores = e.exCoresBuf[:0]
	neoCores = e.neoCoresBuf[:0]
	for _, id := range e.affected {
		st := e.pts[id]
		if st.label == model.Deleted {
			if st.wasCore {
				exCores = append(exCores, id)
			}
			continue
		}
		isCore := st.n >= int32(e.cfg.MinPts)
		switch {
		case st.wasCore && !isCore:
			exCores = append(exCores, id)
		case !st.wasCore && isCore:
			neoCores = append(neoCores, id)
		}
	}
	// Retain whatever growth the buffers saw for the next stride.
	e.exCoresBuf, e.neoCoresBuf, e.coutBuf = exCores, neoCores, cout
	return exCores, neoCores, cout
}

// newPstate pops a recycled pstate from the free list or allocates one.
// Callers overwrite every field, so no reset is needed here.
func (e *Engine) newPstate() *pstate {
	if k := len(e.freePts); k > 0 {
		st := e.freePts[k-1]
		e.freePts[k-1] = nil
		e.freePts = e.freePts[:k-1]
		return st
	}
	return &pstate{}
}

// isExCore reports whether st is an ex-core this stride: a previous-window
// core that exited or fell below the density threshold.
func (e *Engine) isExCore(st *pstate) bool {
	return st.wasCore && (st.label == model.Deleted || st.n < int32(e.cfg.MinPts))
}

// isCoreNow reports whether st is a core of the current window.
func (e *Engine) isCoreNow(st *pstate) bool {
	return st.label != model.Deleted && st.n >= int32(e.cfg.MinPts)
}

// survivingCore reports whether st is a core in both the previous and the
// current window — the membership condition of minimal bonding cores
// (Definitions 4 and 6).
func (e *Engine) survivingCore(st *pstate) bool {
	return st.wasCore && e.isCoreNow(st)
}

// finalize recomputes the label of every affected point from its maintained
// counters, refreshes wasCore for the next stride, re-acquires invalidated
// border hints (one early-terminating range search each — the paper's
// "updated later by examining labels of their ε-neighbors"), and drops the
// state of departed points.
func (e *Engine) finalize() {
	minPts := int32(e.cfg.MinPts)
	for _, id := range e.affected {
		st := e.pts[id]
		if st.label == model.Deleted {
			delete(e.pts, id)
			// The pstate is unreachable now (nothing retains pstate
			// pointers across strides), so recycle it into a future arrival.
			e.freePts = append(e.freePts, st)
			continue
		}
		if st.n >= minPts {
			if st.cid == 0 {
				panic(fmt.Sprintf("disc: core point %d finalized without a cluster id", id))
			}
			st.label = model.Core
			st.wasCore = true
			continue
		}
		st.wasCore = false
		st.cid = 0
		if st.coreDeg > 0 {
			st.label = model.Border
			if !e.hintValid(st) {
				st.hint = e.findHint(id, st)
			}
		} else {
			st.label = model.Noise
			st.hint = noHint
		}
	}
}

// hintValid reports whether st's stored hint still names a live core.
func (e *Engine) hintValid(st *pstate) bool {
	if st.hint == noHint {
		return false
	}
	h, ok := e.pts[st.hint]
	return ok && e.isCoreNow(h)
}

// findHint locates one core ε-neighbor of the border point id, terminating
// the range search as soon as one is found. finalize runs single-threaded,
// so one engine-level parameter slot (hintSelf/hintFound) serves the
// bound-once callback.
func (e *Engine) findHint(id int64, st *pstate) int64 {
	e.hintSelf, e.hintFound = id, noHint
	e.tree.SearchBall(st.pos, e.cfg.Eps, e.hintFn)
	if e.hintFound == noHint {
		panic(fmt.Sprintf("disc: point %d has coreDeg=%d but no core ε-neighbor", id, st.coreDeg))
	}
	return e.hintFound
}

// hintVisit is findHint's search callback.
func (e *Engine) hintVisit(qid int64, _ geom.Vec) bool {
	if qid == e.hintSelf {
		return true
	}
	if q := e.pts[qid]; e.isCoreNow(q) {
		e.hintFound = qid
		return false
	}
	return true
}

// compactCIDs rewrites every stored cluster id to its representative and
// resets the union-find forest, bounding its growth.
func (e *Engine) compactCIDs() {
	for _, st := range e.pts {
		if st.cid != 0 {
			st.cid = e.cids.Find(st.cid)
		}
	}
	e.cids.Reset()
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	st, ok := e.pts[id]
	if !ok {
		return model.Assignment{}, false
	}
	return e.assignmentOf(id, st), true
}

// Snapshot implements model.Engine. The returned map is freshly allocated
// and owned by the caller; use SnapshotInto to reuse a map across strides.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	return e.SnapshotInto(nil)
}

// SnapshotInto fills dst with the assignment of every windowed point,
// clearing it first, and returns it (allocating a map only when dst is nil).
// Callers that poll a snapshot every stride — benchmarks, metrics probes —
// reuse one map and stay allocation-free in the steady state. Unlike
// Snapshot it mutates dst, so the caller must not share dst with concurrent
// readers.
func (e *Engine) SnapshotInto(dst map[int64]model.Assignment) map[int64]model.Assignment {
	if dst == nil {
		dst = make(map[int64]model.Assignment, len(e.pts))
	} else {
		clear(dst)
	}
	for id, st := range e.pts {
		dst[id] = e.assignmentOf(id, st)
	}
	return dst
}

// assignmentOf resolves a point's current assignment. It is genuinely
// read-only — cluster ids resolve through the non-compressing FindRO and a
// stale border hint is healed by a statistics-free re-search — so any number
// of callers may run concurrently between Advance calls.
func (e *Engine) assignmentOf(id int64, st *pstate) model.Assignment {
	switch st.label {
	case model.Core:
		return model.Assignment{Label: model.Core, ClusterID: e.cids.FindRO(st.cid)}
	case model.Border:
		if h, ok := e.pts[st.hint]; ok && e.isCoreNow(h) {
			return model.Assignment{Label: model.Border, ClusterID: e.cids.FindRO(h.cid)}
		}
		// The hint names an absent or demoted point — possible only after a
		// corrupted checkpoint or an internal inconsistency. Degrade
		// gracefully: re-derive the assignment from any live core ε-neighbor
		// instead of crashing the serving process mid-query.
		if cid, ok := e.borderCID(id, st); ok {
			return model.Assignment{Label: model.Border, ClusterID: cid}
		}
		return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
	default:
		return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
	}
}

// borderCID locates one live core ε-neighbor of the border point id with a
// read-only search and returns its resolved cluster id.
func (e *Engine) borderCID(id int64, st *pstate) (int, bool) {
	cid, found := 0, false
	e.tree.SearchBallRO(st.pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
		if qid == id {
			return true
		}
		if q := e.pts[qid]; e.isCoreNow(q) {
			cid, found = e.cids.FindRO(q.cid), true
			return false
		}
		return true
	})
	return cid, found
}

// ConcurrentReadable marks the engine's query methods (Assignment, Snapshot,
// Stats, Name — and SaveSnapshot, which compacts cluster ids into the wire
// form without touching engine state) as safe for any number of concurrent
// callers while no Advance, ResetStats, or other mutation is in flight:
// they perform no writes, not even hidden ones (no union-find path
// compression, no index statistics). disc.Synchronized detects this marker
// and serves such engines' queries under a shared read lock.
func (e *Engine) ConcurrentReadable() {}

// Config returns the engine's clustering configuration. Restore paths use
// it to reject checkpoints taken under different thresholds or
// dimensionality than the target deployment.
func (e *Engine) Config() model.Config { return e.cfg }

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine. It also zeroes the phase timings and
// allocation counters.
func (e *Engine) ResetStats() {
	e.stats = model.Stats{}
	e.timings = PhaseTimings{}
	e.allocs = PhaseAllocs{}
}

// WindowSize returns the number of points currently tracked.
func (e *Engine) WindowSize() int { return len(e.pts) }
