package core

import (
	"fmt"
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/window"
)

func cfg2(eps float64, minPts int) model.Config {
	return model.Config{Dims: 2, Eps: eps, MinPts: minPts}
}

// runStream drives a DISC engine over a dataset with the given window and
// stride, verifying after every step that its clustering is exactly what
// DBSCAN computes from scratch on the same window.
func verifyAgainstDBSCAN(t *testing.T, data []model.Point, cfg model.Config, win, stride int, opts ...Option) {
	t.Helper()
	steps, err := window.Steps(data, win, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg, opts...)
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		got := eng.Snapshot()
		if err := metrics.SameClustering(got, want, st.Window, cfg); err != nil {
			t.Fatalf("step %d (|in|=%d |out|=%d): %v", i, len(st.In), len(st.Out), err)
		}
	}
}

// clustered2D generates a stream with evolving Gaussian clusters plus noise,
// designed to exercise splits, merges, emergence and dissipation as the
// window slides.
func clustered2D(rng *rand.Rand, n int) []model.Point {
	centers := [][2]float64{{10, 10}, {30, 10}, {20, 30}, {40, 40}}
	pts := make([]model.Point, n)
	for i := range pts {
		var x, y float64
		switch {
		case rng.Float64() < 0.15: // noise
			x, y = rng.Float64()*50, rng.Float64()*50
		default:
			// Centers drift with stream position so clusters move, touch,
			// and separate over time.
			c := centers[rng.Intn(len(centers))]
			drift := float64(i) / float64(n) * 15
			x = c[0] + drift*0.5 + rng.NormFloat64()*2
			y = c[1] + rng.NormFloat64()*2
		}
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y), Time: int64(i)}
	}
	return pts
}

func TestBootstrapMatchesDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := clustered2D(rng, 300)
	cfg := cfg2(2.5, 5)
	eng := New(cfg)
	eng.Advance(data, nil)
	want := dbscan.Run(data, cfg)
	if err := metrics.SameClustering(eng.Snapshot(), want, data, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingEquivalenceSmallStride(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := clustered2D(rng, 1200)
	verifyAgainstDBSCAN(t, data, cfg2(2.5, 5), 400, 20)
}

func TestSlidingEquivalenceLargeStride(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := clustered2D(rng, 1200)
	verifyAgainstDBSCAN(t, data, cfg2(2.5, 5), 400, 100)
}

func TestSlidingEquivalenceStrideEqualsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := clustered2D(rng, 900)
	verifyAgainstDBSCAN(t, data, cfg2(2.5, 5), 300, 300)
}

func TestSlidingEquivalenceMinPtsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := clustered2D(rng, 600)
	// MinPts 1: every point is a core; no borders or noise can exist.
	verifyAgainstDBSCAN(t, data, cfg2(2.0, 1), 200, 25)
}

func TestSlidingEquivalenceHighDensityThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := clustered2D(rng, 900)
	verifyAgainstDBSCAN(t, data, cfg2(3.0, 25), 300, 30)
}

func TestSlidingEquivalenceTinyEps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := clustered2D(rng, 600)
	// Tiny ε: nearly everything is noise.
	verifyAgainstDBSCAN(t, data, cfg2(0.05, 3), 200, 20)
}

func TestSlidingEquivalenceAblations(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"NoMSBFS", []Option{WithMSBFS(false)}},
		{"NoEpoch", []Option{WithEpochProbing(false)}},
		{"Neither", []Option{WithMSBFS(false), WithEpochProbing(false)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8))
			data := clustered2D(rng, 900)
			verifyAgainstDBSCAN(t, data, cfg2(2.5, 5), 300, 30, tc.opts...)
		})
	}
}

func TestSlidingEquivalence3D4D(t *testing.T) {
	for _, dims := range []int{3, 4} {
		t.Run(fmt.Sprintf("dims=%d", dims), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(dims)))
			n := 800
			data := make([]model.Point, n)
			for i := range data {
				var v geom.Vec
				c := float64(rng.Intn(3)) * 15
				for d := 0; d < dims; d++ {
					v[d] = c + rng.NormFloat64()*2
				}
				data[i] = model.Point{ID: int64(i), Pos: v}
			}
			cfg := model.Config{Dims: dims, Eps: 3, MinPts: 6}
			verifyAgainstDBSCAN(t, data, cfg, 250, 25)
		})
	}
}

// TestRandomizedFuzz sweeps random parameter combinations; each run checks
// full equivalence with DBSCAN at every stride. This is the flagship
// property test for DISC's exactness claim.
func TestRandomizedFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			n := 400 + rng.Intn(500)
			data := clustered2D(rng, n)
			win := 100 + rng.Intn(150)
			stride := 1 + rng.Intn(win)
			eps := 0.5 + rng.Float64()*4
			minPts := 2 + rng.Intn(12)
			t.Logf("n=%d win=%d stride=%d eps=%.2f minPts=%d", n, win, stride, eps, minPts)
			verifyAgainstDBSCAN(t, data, cfg2(eps, minPts), win, stride)
		})
	}
}

func TestDuplicateCoordinatesStream(t *testing.T) {
	// Many points stacked on few distinct locations.
	rng := rand.New(rand.NewSource(11))
	data := make([]model.Point, 400)
	for i := range data {
		x := float64(rng.Intn(5)) * 3
		y := float64(rng.Intn(5)) * 3
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
	}
	verifyAgainstDBSCAN(t, data, cfg2(1.0, 4), 120, 15)
}

func TestEmptyStride(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := clustered2D(rng, 200)
	cfg := cfg2(2.5, 5)
	eng := New(cfg)
	eng.Advance(data, nil)
	before := eng.Snapshot()
	eng.Advance(nil, nil) // advancing with an empty delta must be a no-op
	after := eng.Snapshot()
	if len(before) != len(after) {
		t.Fatalf("empty stride changed point count: %d -> %d", len(before), len(after))
	}
	for id, b := range before {
		if after[id] != b {
			t.Fatalf("empty stride changed assignment of %d: %+v -> %+v", id, b, after[id])
		}
	}
}

func TestAllNoiseWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := make([]model.Point, 300)
	for i := range data {
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*1000, rng.Float64()*1000)}
	}
	verifyAgainstDBSCAN(t, data, cfg2(0.5, 5), 100, 10)
}

func TestSingleGiantCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := make([]model.Point, 300)
	for i := range data {
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(rng.NormFloat64(), rng.NormFloat64())}
	}
	verifyAgainstDBSCAN(t, data, cfg2(1.0, 4), 100, 10)
}

// TestDeliberateSplitAndMerge drives a hand-built scenario: a dumbbell
// cluster whose bridge point leaves (split) and returns (merge).
func TestDeliberateSplitAndMerge(t *testing.T) {
	cfg := cfg2(1.1, 3)
	// Two blobs of 4 points each, 2 units apart, plus a bridge at the middle.
	blobA := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0, 1)}, {ID: 4, Pos: geom.NewVec(1, 1)},
	}
	blobB := []model.Point{
		{ID: 5, Pos: geom.NewVec(2.8, 0)}, {ID: 6, Pos: geom.NewVec(3.8, 0)},
		{ID: 7, Pos: geom.NewVec(2.8, 1)}, {ID: 8, Pos: geom.NewVec(3.8, 1)},
	}
	// The bridge is within ε=1.1 of two points of each blob, so it is a core
	// (nε = 5) whose presence density-connects the blobs.
	bridge := model.Point{ID: 9, Pos: geom.NewVec(1.9, 0.5)}
	bridge2 := model.Point{ID: 10, Pos: geom.NewVec(1.9, 0.5)}

	eng := New(cfg)
	all := append(append(append([]model.Point{}, blobA...), blobB...), bridge)
	eng.Advance(all, nil)
	snap := eng.Snapshot()
	if snap[1].ClusterID != snap[5].ClusterID {
		t.Fatal("bridged blobs should be one cluster")
	}
	nClusters := countClusters(snap)
	if nClusters != 1 {
		t.Fatalf("clusters = %d, want 1", nClusters)
	}

	// Bridge leaves: the cluster must split in two.
	eng.Advance(nil, []model.Point{bridge})
	snap = eng.Snapshot()
	if snap[1].ClusterID == snap[5].ClusterID {
		t.Fatal("split not detected after bridge exit")
	}
	if got := countClusters(snap); got != 2 {
		t.Fatalf("clusters after split = %d, want 2", got)
	}
	if eng.Stats().Splits == 0 {
		t.Error("split not counted in stats")
	}

	// A new bridge arrives: the clusters must merge back.
	eng.Advance([]model.Point{bridge2}, nil)
	snap = eng.Snapshot()
	if snap[1].ClusterID != snap[5].ClusterID {
		t.Fatal("merge not performed after bridge entry")
	}
	if eng.Stats().Merges == 0 {
		t.Error("merge not counted in stats")
	}

	// Cross-check the final state against DBSCAN.
	allNow := append(append(append([]model.Point{}, blobA...), blobB...), bridge2)
	want := dbscan.Run(allNow, cfg)
	if err := metrics.SameClustering(eng.Snapshot(), want, allNow, cfg); err != nil {
		t.Fatal(err)
	}
}

func countClusters(snap map[int64]model.Assignment) int {
	set := map[int]bool{}
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			set[a.ClusterID] = true
		}
	}
	return len(set)
}

func TestDissipation(t *testing.T) {
	cfg := cfg2(1.1, 3)
	blob := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)}, {ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(0, 1)}, {ID: 4, Pos: geom.NewVec(1, 1)},
	}
	eng := New(cfg)
	eng.Advance(blob, nil)
	if got := countClusters(eng.Snapshot()); got != 1 {
		t.Fatalf("clusters = %d, want 1", got)
	}
	// Remove two points: the remaining two can no longer be cores.
	eng.Advance(nil, blob[:2])
	snap := eng.Snapshot()
	if got := countClusters(snap); got != 0 {
		t.Fatalf("clusters after dissipation = %d, want 0", got)
	}
	for id, a := range snap {
		if a.Label != model.Noise {
			t.Fatalf("point %d is %v, want noise", id, a.Label)
		}
	}
}

func TestAdvancePanicsOnUnknownExit(t *testing.T) {
	eng := New(cfg2(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for exit of never-inserted point")
		}
	}()
	eng.Advance(nil, []model.Point{{ID: 42, Pos: geom.NewVec(0, 0)}})
}

func TestAdvancePanicsOnDuplicateID(t *testing.T) {
	eng := New(cfg2(1, 2))
	p := model.Point{ID: 1, Pos: geom.NewVec(0, 0)}
	eng.Advance([]model.Point{p}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate id")
		}
	}()
	eng.Advance([]model.Point{p}, nil)
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := clustered2D(rng, 400)
	steps, _ := window.Steps(data, 200, 20)
	eng := New(cfg2(2.5, 5))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	s := eng.Stats()
	if s.Strides != int64(len(steps)) {
		t.Errorf("Strides = %d, want %d", s.Strides, len(steps))
	}
	if s.RangeSearches == 0 || s.NodeAccesses == 0 {
		t.Errorf("work counters not accumulated: %+v", s)
	}
	eng.ResetStats()
	if eng.Stats() != (model.Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

// TestFewerSearchesThanDBSCAN asserts the headline efficiency claim on a
// small-stride workload: DISC must issue fewer range searches than the
// from-scratch baseline.
func TestFewerSearchesThanDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := clustered2D(rng, 2000)
	steps, _ := window.Steps(data, 1000, 50) // 5% stride
	eng := New(cfg2(2.5, 5))
	base := dbscan.New(cfg2(2.5, 5))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
		base.Advance(st.In, st.Out)
	}
	// Exclude the bootstrap stride from the comparison by construction: both
	// engines processed it identically often.
	d, b := eng.Stats().RangeSearches, base.Stats().RangeSearches
	if d >= b {
		t.Errorf("DISC range searches %d >= DBSCAN %d", d, b)
	}
	t.Logf("range searches: DISC=%d DBSCAN=%d (%.1fx fewer)", d, b, float64(b)/float64(d))
}

func TestSnapshotUnknownID(t *testing.T) {
	eng := New(cfg2(1, 2))
	if _, ok := eng.Assignment(123); ok {
		t.Fatal("unknown id reported as tracked")
	}
}

func TestCIDCompaction(t *testing.T) {
	// Run enough strides to cross the compaction interval and verify
	// assignments survive it.
	rng := rand.New(rand.NewSource(17))
	data := clustered2D(rng, 3000)
	cfg := cfg2(2.5, 5)
	eng := New(cfg)
	steps, _ := window.Steps(data, 200, 2)
	if len(steps) < compactInterval+2 {
		t.Skip("not enough steps to cross the compaction interval")
	}
	for i, st := range steps {
		eng.Advance(st.In, st.Out)
		if i == compactInterval || i == len(steps)-1 {
			want := dbscan.Run(st.Window, cfg)
			if err := metrics.SameClustering(eng.Snapshot(), want, st.Window, cfg); err != nil {
				t.Fatalf("step %d (post-compaction check): %v", i, err)
			}
		}
	}
}

// TestMultiCutSplitRegression pins the bug found by fuzzing: one cluster
// severed at TWO places in a single stride by ex-core components that are
// not retro-reachable from each other. Each connectivity check must relabel
// every component it discovers — if each check left "its" survivor with the
// old cluster id, two disconnected fragments would silently share it.
func TestMultiCutSplitRegression(t *testing.T) {
	cfg := cfg2(1.0, 1) // MinPts 1: every point is a core
	// A chain: A - e1 - B - e2 - C, with e1 and e2 more than ε apart so they
	// are separate retro components when both leave.
	mk := func(id int64, x float64) model.Point {
		return model.Point{ID: id, Pos: geom.NewVec(x, 0)}
	}
	pts := []model.Point{
		mk(1, 0.0), // A
		mk(2, 0.9), // e1
		mk(3, 1.8), // B (sandwiched survivor)
		mk(4, 2.7), // e2
		mk(5, 3.6), // C
	}
	for _, opts := range [][]Option{
		nil,
		{WithMSBFS(false)},
		{WithEpochProbing(false)},
		{WithMSBFS(false), WithEpochProbing(false)},
	} {
		eng := New(cfg, opts...)
		eng.Advance(pts, nil)
		snap := eng.Snapshot()
		if snap[1].ClusterID != snap[5].ClusterID {
			t.Fatal("chain must start as one cluster")
		}
		// e1 and e2 leave together: A, B, C become three separate clusters.
		eng.Advance(nil, []model.Point{pts[1], pts[3]})
		snap = eng.Snapshot()
		ids := map[int]bool{snap[1].ClusterID: true, snap[3].ClusterID: true, snap[5].ClusterID: true}
		if len(ids) != 3 {
			t.Fatalf("fragments share cluster ids: A=%d B=%d C=%d",
				snap[1].ClusterID, snap[3].ClusterID, snap[5].ClusterID)
		}
		want := dbscan.Run([]model.Point{pts[0], pts[2], pts[4]}, cfg)
		if err := metrics.SameClustering(snap, want, []model.Point{pts[0], pts[2], pts[4]}, cfg); err != nil {
			t.Fatal(err)
		}
		if err := eng.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSlidingEquivalence1D covers the one-dimensional case (interval
// clustering), which exercises degenerate rectangle geometry in the index.
func TestSlidingEquivalence1D(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]model.Point, 600)
	for i := range data {
		var x float64
		if rng.Float64() < 0.3 {
			x = rng.Float64() * 100
		} else {
			x = float64(rng.Intn(4))*25 + rng.NormFloat64()
		}
		data[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x)}
	}
	cfg := model.Config{Dims: 1, Eps: 1.5, MinPts: 4}
	verifyAgainstDBSCAN(t, data, cfg, 200, 25)
}
