package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/metrics"
	"disc/internal/window"
)

// TestSnapshotRoundTrip: save mid-stream, restore, and verify the restored
// engine produces exactly the same clustering as the original both
// immediately and after further strides.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	data := clustered2D(rng, 1200)
	cfg := cfg2(2.5, 5)
	steps, err := window.Steps(data, 400, 40)
	if err != nil {
		t.Fatal(err)
	}
	orig := New(cfg)
	half := len(steps) / 2
	for _, st := range steps[:half] {
		orig.Advance(st.In, st.Out)
	}

	var buf bytes.Buffer
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Immediate state must match point for point.
	a, b := orig.Snapshot(), restored.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("restored %d points, want %d", len(b), len(a))
	}
	for id, aa := range a {
		if b[id] != aa {
			t.Fatalf("point %d: restored %+v, original %+v", id, b[id], aa)
		}
	}
	if restored.Stats() != orig.Stats() {
		t.Errorf("stats not restored: %+v vs %+v", restored.Stats(), orig.Stats())
	}

	// Both engines must stay exact DBSCAN replicas over further strides.
	for i, st := range steps[half:] {
		orig.Advance(st.In, st.Out)
		restored.Advance(st.In, st.Out)
		want := dbscan.Run(st.Window, cfg)
		if err := metrics.SameClustering(restored.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("restored engine diverged at post-restore step %d: %v", i, err)
		}
		if err := metrics.SameClustering(orig.Snapshot(), want, st.Window, cfg); err != nil {
			t.Fatalf("original engine diverged at post-restore step %d: %v", i, err)
		}
	}
}

func TestSnapshotPreservesOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	data := clustered2D(rng, 300)
	eng := New(cfg2(2.5, 5), WithMSBFS(false), WithEpochProbing(false))
	eng.Advance(data, nil)
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.useMSBFS || restored.useEpoch {
		t.Fatal("ablation options not restored")
	}
}

func TestSnapshotEventHandlerReattach(t *testing.T) {
	eng := New(cfg2(1.1, 3))
	eng.Advance(clustered2D(rand.New(rand.NewSource(79)), 100), nil)
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fired := false
	restored, err := LoadEngine(&buf, WithEventHandler(func(Event) { fired = true }))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh dense blob must fire an emergence on the restored engine.
	blob := clustered2D(rand.New(rand.NewSource(80)), 50)
	for i := range blob {
		blob[i].ID += 10_000
	}
	restored.Advance(blob, nil)
	if !fired {
		t.Fatal("re-attached event handler never fired")
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadEngine(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSnapshotEmptyEngine(t *testing.T) {
	eng := New(cfg2(1, 2))
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.WindowSize() != 0 {
		t.Fatal("empty engine restored with points")
	}
	// And it must be usable.
	restored.Advance(clustered2D(rand.New(rand.NewSource(81)), 100), nil)
	if restored.WindowSize() != 100 {
		t.Fatal("restored empty engine unusable")
	}
}

// TestSaveSnapshotLeavesEngineUntouched: SaveSnapshot is a read path. The
// original implementation called compactCIDs, rewriting every stored
// cluster id and resetting the union-find forest — a hidden write that
// contradicted the ConcurrentReadable contract. The save must now leave
// every observable piece of engine state identical: per-point bookkeeping,
// union-find resolution of every id, id allocator, stride counter, stats.
func TestSaveSnapshotLeavesEngineUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	data := clustered2D(rng, 1200)
	steps, err := window.Steps(data, 400, 40)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg2(2.5, 5))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}

	type state struct {
		pts     map[int64]pstate
		roots   map[int]int // FindRO of every cid in use
		forest  int         // union-find keys seen
		nextCID int
		stride  uint64
		stats   interface{}
	}
	capture := func() state {
		s := state{
			pts:     make(map[int64]pstate, len(eng.pts)),
			roots:   make(map[int]int),
			forest:  eng.cids.Len(),
			nextCID: eng.nextCID,
			stride:  eng.stride,
			stats:   eng.stats,
		}
		for id, st := range eng.pts {
			s.pts[id] = *st
			if st.cid != 0 {
				s.roots[st.cid] = eng.cids.FindRO(st.cid)
			}
		}
		return s
	}

	before := capture()
	if len(before.roots) == 0 {
		t.Fatal("workload produced no clustered cores; test would be vacuous")
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	after := capture()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("SaveSnapshot mutated the engine:\nbefore: %+v\nafter:  %+v", before, after)
	}

	// Determinism bonus of the side-effect-free path: saving twice from
	// the same state yields byte-identical snapshots.
	var buf2 bytes.Buffer
	if err := eng.SaveSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two saves of the same state differ byte-wise")
	}

	// And the saved snapshot still restores to an equivalent engine.
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Snapshot(), eng.Snapshot()) {
		t.Fatal("snapshot saved without compaction restores differently")
	}
}

// TestSnapshotOmitsScratch: the CLUSTER capture buffers, MS-BFS scratches
// and queue pools are runtime-only — growing them between two saves of the
// same engine must not change the persisted state in any field.
func TestSnapshotOmitsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	data := clustered2D(rng, 1200)
	steps, err := window.Steps(data, 400, 40)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg2(2.5, 5), WithWorkers(8))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	decode := func(buf *bytes.Buffer) persistedEngine {
		var ps persistedEngine
		if err := gob.NewDecoder(buf).Decode(&ps); err != nil {
			t.Fatal(err)
		}
		sort.Slice(ps.Points, func(i, j int) bool { return ps.Points[i].ID < ps.Points[j].ID })
		return ps
	}
	var before bytes.Buffer
	if err := eng.SaveSnapshot(&before); err != nil {
		t.Fatal(err)
	}

	// Grow every scratch structure hard: extra worker scratches, repeated
	// connectivity checks over all surviving cores. None of this touches
	// logical engine state.
	var bonding []int64
	for id, st := range eng.pts {
		if st.wasCore && eng.isCoreNow(st) {
			bonding = append(bonding, id)
		}
	}
	sort.Slice(bonding, func(i, j int) bool { return bonding[i] < bonding[j] })
	if len(bonding) < 2 {
		t.Fatal("workload produced too few surviving cores to exercise scratch")
	}
	eng.ensureScratches(4)
	for i := 0; i < 3; i++ {
		for _, s := range eng.scratches {
			eng.connectivityInto(bonding, s, &eng.connRes)
		}
	}

	var after bytes.Buffer
	if err := eng.SaveSnapshot(&after); err != nil {
		t.Fatal(err)
	}
	a, b := decode(&before), decode(&after)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scratch growth changed the snapshot:\nbefore: %+v\nafter:  %+v", a, b)
	}
}
