package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
)

// buildEngine loads a static point set and returns the engine (bootstrap via
// one Advance).
func buildEngine(t *testing.T, cfg model.Config, pts []model.Point, opts ...Option) *Engine {
	t.Helper()
	eng := New(cfg, opts...)
	eng.Advance(pts, nil)
	return eng
}

// line builds n core points spaced just under ε apart along the x axis,
// starting at x0. With MinPts <= 3 every interior point is a core.
func line(idBase int64, x0 float64, n int, spacing float64) []model.Point {
	pts := make([]model.Point, n)
	for i := range pts {
		pts[i] = model.Point{ID: idBase + int64(i), Pos: geom.NewVec(x0+float64(i)*spacing, 0)}
	}
	return pts
}

// connectivityIDs collects the core ids of a component list, sorted.
func connectivityIDs(comps [][]int64) [][]int64 {
	out := make([][]int64, len(comps))
	for i, c := range comps {
		cc := append([]int64(nil), c...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		out[i] = cc
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

func TestConnectivityConnectedLine(t *testing.T) {
	for _, variant := range []struct {
		name string
		opts []Option
	}{
		{"msbfs+epoch", nil},
		{"msbfs", []Option{WithEpochProbing(false)}},
		{"seq+epoch", []Option{WithMSBFS(false)}},
		{"seq", []Option{WithMSBFS(false), WithEpochProbing(false)}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
			pts := line(0, 0, 20, 0.9)
			eng := buildEngine(t, cfg, pts, variant.opts...)
			// Starters: the two endpoints — connected through the line.
			closed, ncc := eng.connectivity([]int64{0, 19})
			if ncc != 1 {
				t.Fatalf("ncc = %d, want 1", ncc)
			}
			// With MS-BFS a connected set exits early with nothing closed;
			// sequential traverses and reports the single component. Either
			// way the caller relabels nothing when ncc == 1.
			if eng.useMSBFS && len(closed) != 0 {
				t.Fatalf("connected set reported %d closed components", len(closed))
			}
			if !eng.useMSBFS && len(closed) != 1 {
				t.Fatalf("sequential reported %d components, want 1", len(closed))
			}
		})
	}
}

func TestConnectivityTwoComponents(t *testing.T) {
	for _, variant := range []struct {
		name string
		opts []Option
	}{
		{"msbfs+epoch", nil},
		{"msbfs", []Option{WithEpochProbing(false)}},
		{"seq+epoch", []Option{WithMSBFS(false)}},
		{"seq", []Option{WithMSBFS(false), WithEpochProbing(false)}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
			a := line(0, 0, 6, 0.9)    // ids 0..5
			b := line(100, 50, 6, 0.9) // ids 100..105, far away
			eng := buildEngine(t, cfg, append(a, b...), variant.opts...)
			closed, ncc := eng.connectivity([]int64{0, 100})
			if ncc != 2 {
				t.Fatalf("ncc = %d, want 2", ncc)
			}
			if len(closed) != 2 {
				t.Fatalf("closed components = %d, want 2 (every component relabels on split)", len(closed))
			}
			// Both components must be complete lines of 6 cores each.
			comps := connectivityIDs(closed)
			if len(comps[0]) != 6 || len(comps[1]) != 6 {
				t.Fatalf("component sizes %d/%d, want 6/6", len(comps[0]), len(comps[1]))
			}
			if comps[0][0] != 0 || comps[0][5] != 5 || comps[1][0] != 100 || comps[1][5] != 105 {
				t.Fatalf("components mix lines: %v", comps)
			}
		})
	}
}

func TestConnectivityManyStartersOneComponent(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 2}
	pts := line(0, 0, 50, 0.5)
	eng := buildEngine(t, cfg, pts)
	// Every 5th core is a starter: they must all merge into one thread.
	var starters []int64
	for i := int64(0); i < 50; i += 5 {
		starters = append(starters, i)
	}
	_, ncc := eng.connectivity(starters)
	if ncc != 1 {
		t.Fatalf("ncc = %d, want 1", ncc)
	}
}

// TestConnectivityRandomGraphsAllVariants cross-checks all four
// implementation variants against a brute-force component count on random
// geometric graphs.
func TestConnectivityRandomGraphsAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(120)
		pts := make([]model.Point, n)
		for i := range pts {
			pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*20, rng.Float64()*20)}
		}
		cfg := model.Config{Dims: 2, Eps: 1.2, MinPts: 1} // every point is a core
		// Brute-force components over the ε-graph.
		comp := make([]int, n)
		for i := range comp {
			comp[i] = -1
		}
		nBrute := 0
		for i := 0; i < n; i++ {
			if comp[i] != -1 {
				continue
			}
			stack := []int{i}
			comp[i] = nBrute
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for j := 0; j < n; j++ {
					if comp[j] == -1 && geom.WithinEps(pts[c].Pos, pts[j].Pos, 2, cfg.Eps) {
						comp[j] = nBrute
						stack = append(stack, j)
					}
				}
			}
			nBrute++
		}
		// Starters: one random core from every brute component plus extras.
		var starters []int64
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			if !seen[comp[i]] {
				seen[comp[i]] = true
				starters = append(starters, int64(i))
			}
		}
		for k := 0; k < 5 && k < n; k++ {
			c := int64(rng.Intn(n))
			dup := false
			for _, s := range starters {
				if s == c {
					dup = true
				}
			}
			if !dup {
				starters = append(starters, c)
			}
		}
		for _, variant := range []struct {
			name string
			opts []Option
		}{
			{"msbfs+epoch", nil},
			{"msbfs", []Option{WithEpochProbing(false)}},
			{"seq+epoch", []Option{WithMSBFS(false)}},
			{"seq", []Option{WithMSBFS(false), WithEpochProbing(false)}},
		} {
			eng := buildEngine(t, cfg, pts, variant.opts...)
			_, ncc := eng.connectivity(starters)
			if ncc != nBrute {
				t.Fatalf("trial %d %s: ncc=%d, brute=%d (starters=%v)",
					trial, variant.name, ncc, nBrute, starters)
			}
		}
	}
}

// TestExpandIsSideEffectFree: a connectivity expansion must leave engine
// state untouched — hints, affected set, and model.Stats included — because
// the dyncon forest strategy answers the identical query with no traversal
// at all (see the msbfs.go header contract). Its traversal work lands in the
// per-stride telemetry counters instead.
func TestExpandIsSideEffectFree(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	pts := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)},
		{ID: 2, Pos: geom.NewVec(0.5, 0)},
		{ID: 3, Pos: geom.NewVec(1.0, 0)},
		{ID: 4, Pos: geom.NewVec(1.8, 0)}, // border: only neighbor 3
	}
	eng := buildEngine(t, cfg, pts)
	st := eng.pts[4]
	st.hint = noHint // a traversal touching 4 must NOT repair this
	statsBefore := eng.Stats()
	eng.affected = eng.affected[:0]
	eng.ensureScratches(1)
	s := eng.scratches[0]
	res := &eng.connRes
	res.reset()
	s.begin(eng.useEpoch)
	eng.expand(3, s, res)
	eng.applyConnResult(res)
	if st.hint != noHint {
		t.Fatalf("expansion wrote a border hint (%d); traversal must be side-effect-free", st.hint)
	}
	if len(eng.affected) != 0 {
		t.Fatalf("expansion marked %d points affected", len(eng.affected))
	}
	if got := eng.Stats(); got != statsBefore {
		t.Fatalf("expansion changed model.Stats:\nbefore %+v\nafter  %+v", statsBefore, got)
	}
	if res.searches != 1 || res.nodes == 0 {
		t.Fatalf("traversal work not recorded in the result: searches=%d nodes=%d", res.searches, res.nodes)
	}
	if eng.strideConnSearches != 1 || eng.strideConnNodes != res.nodes {
		t.Fatalf("applyConnResult must fold work into telemetry: searches=%d nodes=%d",
			eng.strideConnSearches, eng.strideConnNodes)
	}
}

// TestFinalizeHealsInvalidHint: the border-hint repair that used to ride on
// connectivity traversals is owned by finalize — an invalidated hint is
// re-acquired there via a targeted range search.
func TestFinalizeHealsInvalidHint(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 3}
	pts := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)},
		{ID: 2, Pos: geom.NewVec(0.5, 0)},
		{ID: 3, Pos: geom.NewVec(1.0, 0)},
		{ID: 4, Pos: geom.NewVec(1.8, 0)}, // border: only neighbor 3
	}
	eng := buildEngine(t, cfg, pts)
	st := eng.pts[4]
	st.hint = noHint // sabotage
	eng.stride++     // fresh stride scope for markAffected
	eng.affected = eng.affected[:0]
	eng.markAffected(4, st)
	eng.finalize()
	if st.hint != 3 {
		t.Fatalf("finalize left hint = %d, want 3", st.hint)
	}
	if st.label != model.Border {
		t.Fatalf("finalize left label = %v, want Border", st.label)
	}
}

func TestConnectivityEmptyAndSingleton(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1.0, MinPts: 1}
	eng := buildEngine(t, cfg, line(0, 0, 3, 0.5))
	if closed, ncc := eng.connectivity(nil); ncc != 0 || closed != nil {
		t.Fatal("empty bonding set must report zero components")
	}
	if _, ncc := eng.connectivity([]int64{1}); ncc != 1 {
		t.Fatal("singleton bonding set must report one component")
	}
}

func ExampleEventType_String() {
	fmt.Println(Split, Merger, Emergence)
	// Output: split merger emergence
}
