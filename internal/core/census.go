package core

import (
	"sort"

	"disc/internal/model"
)

// ClusterInfo summarizes one cluster of the current window.
type ClusterInfo struct {
	ID      int
	Cores   int
	Borders int
}

// Size returns the total member count.
func (c ClusterInfo) Size() int { return c.Cores + c.Borders }

// Clusters returns a census of the current window's clusters, sorted by
// descending size (ties by ascending id), plus the number of noise points.
// Border points count toward the cluster their hint resolves to. The
// returned slice is freshly allocated; use ClustersInto to reuse a buffer.
func (e *Engine) Clusters() (clusters []ClusterInfo, noise int) {
	return e.ClustersInto(nil)
}

// ClustersInto is Clusters writing into buf (grown as needed, contents
// replaced). The cluster-id lookup table is pooled on the engine, so a
// caller that recycles buf performs a census with zero steady-state
// allocations. Unlike Clusters it is not safe for concurrent callers: the
// pooled lookup table is engine state.
func (e *Engine) ClustersInto(buf []ClusterInfo) (clusters []ClusterInfo, noise int) {
	if e.censusIdx == nil {
		e.censusIdx = make(map[int]int32)
	} else {
		clear(e.censusIdx)
	}
	clusters = buf[:0]
	for id, st := range e.pts {
		a := e.assignmentOf(id, st)
		if a.ClusterID == model.NoCluster {
			noise++
			continue
		}
		idx, ok := e.censusIdx[a.ClusterID]
		if !ok {
			idx = int32(len(clusters))
			e.censusIdx[a.ClusterID] = idx
			clusters = append(clusters, ClusterInfo{ID: a.ClusterID})
		}
		if a.Label == model.Core {
			clusters[idx].Cores++
		} else {
			clusters[idx].Borders++
		}
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Size() != clusters[j].Size() {
			return clusters[i].Size() > clusters[j].Size()
		}
		return clusters[i].ID < clusters[j].ID
	})
	return clusters, noise
}

// ClusterMembers returns the ids of every point assigned to the cluster,
// cores first, then borders; nil if the cluster does not exist.
func (e *Engine) ClusterMembers(clusterID int) []int64 {
	var cores, borders []int64
	for id, st := range e.pts {
		a := e.assignmentOf(id, st)
		if a.ClusterID != clusterID {
			continue
		}
		if a.Label == model.Core {
			cores = append(cores, id)
		} else {
			borders = append(borders, id)
		}
	}
	if len(cores) == 0 && len(borders) == 0 {
		return nil
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
	sort.Slice(borders, func(i, j int) bool { return borders[i] < borders[j] })
	return append(cores, borders...)
}
