package core

import (
	"sort"

	"disc/internal/model"
)

// ClusterInfo summarizes one cluster of the current window.
type ClusterInfo struct {
	ID      int
	Cores   int
	Borders int
}

// Size returns the total member count.
func (c ClusterInfo) Size() int { return c.Cores + c.Borders }

// Clusters returns a census of the current window's clusters, sorted by
// descending size (ties by ascending id), plus the number of noise points.
// Border points count toward the cluster their hint resolves to.
func (e *Engine) Clusters() (clusters []ClusterInfo, noise int) {
	byID := make(map[int]*ClusterInfo)
	for id, st := range e.pts {
		a := e.assignmentOf(id, st)
		if a.ClusterID == model.NoCluster {
			noise++
			continue
		}
		ci := byID[a.ClusterID]
		if ci == nil {
			ci = &ClusterInfo{ID: a.ClusterID}
			byID[a.ClusterID] = ci
		}
		if a.Label == model.Core {
			ci.Cores++
		} else {
			ci.Borders++
		}
	}
	clusters = make([]ClusterInfo, 0, len(byID))
	for _, ci := range byID {
		clusters = append(clusters, *ci)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Size() != clusters[j].Size() {
			return clusters[i].Size() > clusters[j].Size()
		}
		return clusters[i].ID < clusters[j].ID
	})
	return clusters, noise
}

// ClusterMembers returns the ids of every point assigned to the cluster,
// cores first, then borders; nil if the cluster does not exist.
func (e *Engine) ClusterMembers(clusterID int) []int64 {
	var cores, borders []int64
	for id, st := range e.pts {
		a := e.assignmentOf(id, st)
		if a.ClusterID != clusterID {
			continue
		}
		if a.Label == model.Core {
			cores = append(cores, id)
		} else {
			borders = append(borders, id)
		}
	}
	if len(cores) == 0 && len(borders) == 0 {
		return nil
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
	sort.Slice(borders, func(i, j int) bool { return borders[i] < borders[j] })
	return append(cores, borders...)
}
