package core

import (
	"fmt"

	"disc/internal/geom"
	"disc/internal/model"
)

// CheckInvariants validates the engine's maintained state against a
// recomputation from first principles: ε-neighbor counts, core-neighbor
// degrees, label consistency, border hints, and cluster-id connectivity.
// It is O(n·search) and intended for tests and debugging, not production
// paths. A nil return means every invariant holds.
func (e *Engine) CheckInvariants() error {
	minPts := int32(e.cfg.MinPts)
	if got, want := e.tree.Len(), len(e.pts); got != want {
		return fmt.Errorf("index holds %d entries, state holds %d points", got, want)
	}
	for id, st := range e.pts {
		if st.label == model.Deleted || st.label == model.Unclassified {
			return fmt.Errorf("point %d finalized with transient label %v", id, st.label)
		}
		// Recompute nε and coreDeg by brute search.
		var n, coreDeg int32
		hintSeen := false
		e.tree.SearchBall(st.pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
			n++
			if qid == id {
				return true
			}
			q := e.pts[qid]
			if q.n >= minPts {
				coreDeg++
			}
			if qid == st.hint {
				hintSeen = true
			}
			return true
		})
		if st.n != n {
			return fmt.Errorf("point %d: maintained nε=%d, actual %d", id, st.n, n)
		}
		if st.coreDeg != coreDeg {
			return fmt.Errorf("point %d: maintained coreDeg=%d, actual %d", id, st.coreDeg, coreDeg)
		}
		// Label consistency with the recomputed counts.
		switch {
		case n >= minPts:
			if st.label != model.Core {
				return fmt.Errorf("point %d: nε=%d >= τ but labeled %v", id, n, st.label)
			}
			if st.cid == 0 {
				return fmt.Errorf("core point %d without cluster id", id)
			}
			if !st.wasCore {
				return fmt.Errorf("core point %d with stale wasCore=false", id)
			}
		case coreDeg > 0:
			if st.label != model.Border {
				return fmt.Errorf("point %d: coreDeg=%d but labeled %v", id, coreDeg, st.label)
			}
			h, ok := e.pts[st.hint]
			if !ok {
				return fmt.Errorf("border point %d hints at absent point %d", id, st.hint)
			}
			if h.n < minPts {
				return fmt.Errorf("border point %d hints at non-core %d", id, st.hint)
			}
			if !hintSeen {
				return fmt.Errorf("border point %d hints at out-of-range point %d", id, st.hint)
			}
			if st.wasCore {
				return fmt.Errorf("border point %d with stale wasCore=true", id)
			}
		default:
			if st.label != model.Noise {
				return fmt.Errorf("point %d: isolated but labeled %v", id, st.label)
			}
			if st.wasCore {
				return fmt.Errorf("noise point %d with stale wasCore=true", id)
			}
		}
	}
	// Cluster-id soundness: ε-adjacent cores must share a resolved id, and
	// non-adjacent clusters must not leak ids across components. The first
	// half suffices: together with the transitivity of resolution it implies
	// each cluster is a union of components; the equivalence tests against
	// DBSCAN cover the rest.
	for id, st := range e.pts {
		if st.label != model.Core {
			continue
		}
		cid := e.cids.Find(st.cid)
		var bad error
		e.tree.SearchBall(st.pos, e.cfg.Eps, func(qid int64, _ geom.Vec) bool {
			if qid == id {
				return true
			}
			q := e.pts[qid]
			if q.n >= minPts && e.cids.Find(q.cid) != cid {
				bad = fmt.Errorf("adjacent cores %d and %d in clusters %d and %d",
					id, qid, cid, e.cids.Find(q.cid))
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
