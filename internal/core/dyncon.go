package core

import (
	"fmt"
	"time"

	"disc/internal/dyncon"
	"disc/internal/geom"
	"disc/internal/trace"
)

// This file wires the dynamic-connectivity forest (internal/dyncon) into
// the CLUSTER pipeline as an alternative connectivity strategy.
//
// With ConnDynamic the engine maintains a dyncon.Forest over the core-
// adjacency graph of the current window — vertices are the cores, edges the
// ε-adjacent core pairs — applying only the stride's delta right after the
// capture fan-outs: every edge incident to an ex-core is removed (its
// surviving-core neighbors are the capture's bonding list, its fellow
// ex-cores the frontier list), ex-core vertices go, neo-core vertices
// arrive, and every edge incident to a neo-core is added (bondIDs +
// frontier). Ex-core↔neo-core edges cannot exist: an ex-core is not a core
// of the current window and a neo-core was not a core of the previous one,
// so no edge of either graph joins them. Edges between two ex-cores (and
// between two neo-cores) appear in both endpoints' captures and are
// deduplicated by processing only the smaller-id direction.
//
// The phase-C component query (forestConnectivityInto) then replaces the
// MS-BFS traversal: one read-only root walk per bonding core, components in
// first-seen starter order — exactly the canonical order the traversal
// strategies report (see msbfs.go) — and member enumeration only in the
// split case. Queries are read-only, so the existing phase-C fan-out runs
// them concurrently, unchanged.
//
// Every forest mutation is strict (returns false when the forest disagrees
// with the expected state). Any strict failure means the engine's view has
// desynced from the forest — a bug, a corrupted restore, or a caller
// violating the single-writer contract — and the engine falls back to a
// full rebuild from the spatial index, which restores the invariant for
// every subsequent stride. Restores always rebuild (the forest is scratch
// state and is never serialized; see persist.go).

// ConnStrategy selects how the CLUSTER phase answers density-connectivity
// queries over minimal bonding cores.
type ConnStrategy uint8

const (
	// ConnMSBFS recomputes components per stride with the Multi-Starter
	// BFS traversal (Algorithm 3) — the always-available reference.
	ConnMSBFS ConnStrategy = iota
	// ConnDynamic answers from a maintained dynamic-connectivity forest
	// over the core-adjacency graph, updated incrementally as cores gain
	// and lose bonding edges each stride.
	ConnDynamic
)

// String returns the stride-log / metrics label of the strategy.
func (s ConnStrategy) String() string {
	if s == ConnDynamic {
		return "dynamic"
	}
	return "msbfs"
}

// WithConnectivity selects the connectivity strategy (default ConnMSBFS).
// Every strategy produces bit-identical labels, statistics, and event
// streams; they differ only in per-stride cost. Passed to LoadEngine it
// overrides the strategy persisted in the snapshot.
func WithConnectivity(s ConnStrategy) Option {
	return func(e *Engine) {
		e.connStrategy = s
		if s == ConnDynamic && e.forest == nil {
			e.forest = dyncon.New()
		}
	}
}

// Connectivity returns the engine's connectivity strategy.
func (e *Engine) Connectivity() ConnStrategy { return e.connStrategy }

// ForestRebuilds returns how many times the dynamic-connectivity forest was
// rebuilt from scratch (restores and desync fallbacks). Always zero under
// ConnMSBFS.
func (e *Engine) ForestRebuilds() int64 { return e.forestRebuilds }

// forestConnectivityInto answers one phase-C component query from the
// maintained forest: deduplicate the bonding cores' component roots in
// first-seen order; a single root means connected, several mean a split, in
// which case every component's members are enumerated (tour order) for
// relabeling. Read-only — safe under the concurrent phase-C fan-out — and
// allocation-free in the steady state (scratch pooled on res).
func (e *Engine) forestConnectivityInto(bonding []int64, res *connResult) {
	f := e.forest
	for _, id := range bonding {
		c, ok := f.Root(id)
		if !ok {
			// Bonding vertices are verified present before the fan-out
			// (verifyForestBonding); a miss here is an engine bug.
			panic(fmt.Sprintf("disc: bonding core %d missing from connectivity forest", id))
		}
		if !containsComponent(res.roots, c) {
			res.roots = append(res.roots, c)
		}
	}
	res.ncc = len(res.roots)
	if res.ncc <= 1 {
		return
	}
	for _, c := range res.roots {
		res.closedIDs = f.AppendMembers(c, res.closedIDs)
		res.closedOff = append(res.closedOff, len(res.closedIDs))
	}
}

// containsComponent reports whether the (small) root scratch already holds
// c — the linear-scan-over-map trade the cid dedup also makes.
func containsComponent(s []dyncon.Component, c dyncon.Component) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

// verifyForestBonding checks, before the concurrent phase-C fan-out, that
// every bonding core of every queued component is a forest vertex; on a
// miss the forest has desynced and is rebuilt serially, here, where a
// rebuild is still safe. After syncForest succeeded this never fires —
// bonding cores are surviving cores, which the update left in place.
func (e *Engine) verifyForestBonding() {
	for _, ci := range e.connWork {
		for _, id := range e.exComps[ci].bonding {
			if !e.forest.HasVertex(id) {
				e.rebuildForest()
				return
			}
		}
	}
}

// syncForest brings the forest from the previous window's core graph to the
// current one by applying the stride's delta, captured by the (already
// completed) ex-core and neo-core capture fan-outs. Any strict-mutation
// failure abandons the delta and rebuilds. Runs single-threaded.
func (e *Engine) syncForest(exCores, neoCores []int64) {
	start := time.Now()
	statsBefore := e.forest.Stats()
	tr := e.curTrace
	var sp *trace.Span
	if tr != nil {
		sp = tr.StartSpanAt("forest.sync", e.phaseSpan, start,
			trace.Int("ex_cores", len(exCores)), trace.Int("neo_cores", len(neoCores)))
	}
	if !e.updateForest(exCores, neoCores) {
		e.rebuildForest()
	}
	statsAfter := e.forest.Stats()
	e.strideForestOps += statsAfter.Ops() - statsBefore.Ops()
	e.strideForestReplSearches += statsAfter.ReplacementSearches - statsBefore.ReplacementSearches
	e.strideForestReplScans += statsAfter.ReplacementScans - statsBefore.ReplacementScans
	e.strideForestDur += time.Since(start)
	if sp != nil {
		sp.SetInt("forest_ops", int(statsAfter.Ops()-statsBefore.Ops()))
		sp.SetInt("rebuilds", int(e.strideForestRebuilds))
		sp.EndNow()
	}
}

// updateForest applies the stride's core-graph delta; false on the first
// strict-mutation mismatch (desync).
func (e *Engine) updateForest(exCores, neoCores []int64) bool {
	f := e.forest
	// 1. Every edge incident to an ex-core leaves: to surviving cores
	// (captured as bonding) and to fellow ex-cores (captured as frontier,
	// present in both directions — keep the smaller-id one).
	for i, eid := range exCores {
		cp := &e.exCaps[i]
		for _, b := range cp.bonding {
			if !f.RemoveEdge(eid, b) {
				return false
			}
		}
		for _, fid := range cp.frontier {
			if eid < fid && !f.RemoveEdge(eid, fid) {
				return false
			}
		}
	}
	// 2. Ex-core vertices leave (now isolated).
	for _, eid := range exCores {
		if !f.RemoveVertex(eid) {
			return false
		}
	}
	// 3. Neo-core vertices arrive.
	for _, nid := range neoCores {
		if !f.AddVertex(nid) {
			return false
		}
	}
	// 4. Every edge incident to a neo-core arrives: to surviving cores
	// (bondIDs) and to fellow neo-cores (frontier, deduplicated as above).
	for i, nid := range neoCores {
		cp := &e.neoCaps[i]
		for _, b := range cp.bondIDs {
			if !f.AddEdge(nid, b) {
				return false
			}
		}
		for _, fid := range cp.frontier {
			if nid < fid && !f.AddEdge(nid, fid) {
				return false
			}
		}
	}
	return true
}

// rebuildForest reconstructs the forest from scratch out of the current
// window: one read-only ε-search per core, adding each core-core edge once
// (from its smaller-id endpoint). Point iteration order does not matter —
// the edge set is deterministic and tour shapes are unobservable. The
// searches use SearchBallRO and bypass engine statistics entirely, so a
// rebuild never perturbs the bit-identical-stats contract.
func (e *Engine) rebuildForest() {
	f := e.forest
	f.Reset()
	for id, st := range e.pts {
		if e.isCoreNow(st) {
			f.AddVertex(id)
		}
	}
	for id, st := range e.pts {
		if !e.isCoreNow(st) {
			continue
		}
		e.rebuildSelf = id
		e.tree.SearchBallRO(st.pos, e.cfg.Eps, e.rebuildFn)
	}
	e.rebuildSelf = 0
	e.forestRebuilds++
	e.strideForestRebuilds++
}

// rebuildVisit is rebuildForest's bound-once search callback: add the edge
// (rebuildSelf, qid) once, from the smaller-id side.
func (e *Engine) rebuildVisit(qid int64, _ geom.Vec) bool {
	if qid <= e.rebuildSelf {
		return true
	}
	if q := e.pts[qid]; e.isCoreNow(q) {
		e.forest.AddEdge(e.rebuildSelf, qid)
	}
	return true
}
