package core

import (
	"math/rand"
	"testing"
	"time"

	"disc/internal/model"
	"disc/internal/window"
)

// driveObserved runs a clustered stream through an engine with a recording
// observer and returns the records alongside the engine.
func driveObserved(t *testing.T, opts ...Option) ([]StrideRecord, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := clustered2D(rng, 1200)
	steps, err := window.Steps(data, 600, 100)
	if err != nil {
		t.Fatal(err)
	}
	var recs []StrideRecord
	opts = append(opts, WithObserver(ObserverFunc(func(r StrideRecord) { recs = append(recs, r) })))
	eng := New(cfg2(2.5, 5), opts...)
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	return recs, eng
}

func TestObserverStrideRecords(t *testing.T) {
	recs, eng := driveObserved(t)
	if len(recs) != int(eng.Stats().Strides) {
		t.Fatalf("%d records for %d strides", len(recs), eng.Stats().Strides)
	}

	var searches, nodes int64
	var in, out int
	for i, r := range recs {
		if r.Stride != uint64(i+1) {
			t.Fatalf("record %d has stride %d", i, r.Stride)
		}
		// The four phases partition the advance exactly.
		if sum := r.Collect + r.ExCorePhase + r.NeoCorePhase + r.Finalize; sum != r.Total {
			t.Fatalf("stride %d: phases sum to %v, total %v", r.Stride, sum, r.Total)
		}
		if r.Total <= 0 {
			t.Fatalf("stride %d: non-positive total %v", r.Stride, r.Total)
		}
		if r.Workers != 1 {
			t.Fatalf("stride %d: workers = %d, want 1", r.Stride, r.Workers)
		}
		if r.ClusterWorkers != 1 {
			t.Fatalf("stride %d: cluster workers = %d, want 1 on a workers=1 engine",
				r.Stride, r.ClusterWorkers)
		}
		if r.ConnChecks < 0 || r.PoolGrows < 0 {
			t.Fatalf("stride %d: negative pool telemetry %d/%d",
				r.Stride, r.ConnChecks, r.PoolGrows)
		}
		searches += r.RangeSearches
		nodes += r.NodeAccesses
		in += r.DeltaIn
		out += r.DeltaOut
	}
	// Per-stride deltas add back up to the engine's lump-sum counters.
	if st := eng.Stats(); searches != st.RangeSearches || nodes != st.NodeAccesses {
		t.Fatalf("delta sums (%d searches, %d nodes) != stats (%d, %d)",
			searches, nodes, st.RangeSearches, st.NodeAccesses)
	}
	if first := recs[0]; first.DeltaIn != 600 || first.DeltaOut != 0 {
		t.Fatalf("bootstrap record Δin=%d Δout=%d", first.DeltaIn, first.DeltaOut)
	}
	if last := recs[len(recs)-1]; last.WindowSize != eng.WindowSize() {
		t.Fatalf("last window size %d != %d", last.WindowSize, eng.WindowSize())
	}
	if in <= out {
		t.Fatalf("Δin total %d should exceed Δout total %d on a growing stream", in, out)
	}
}

// TestObserverEventTalliesMatchHandler cross-checks the per-stride event
// tallies against the event handler stream, and the epoch-prune totals
// against the index.
func TestObserverEventTalliesMatchHandler(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := clustered2D(rng, 3000)
	steps, err := window.Steps(data, 1000, 250)
	if err != nil {
		t.Fatal(err)
	}
	handlerCounts := map[EventType]int{}
	var tallies [numEventTypes]int
	var pruned, merges int64
	eng := New(cfg2(2.5, 5),
		WithEventHandler(func(ev Event) { handlerCounts[ev.Type]++ }),
		WithObserver(ObserverFunc(func(r StrideRecord) {
			tallies[Emergence] += r.Emergences
			tallies[Expansion] += r.Expansions
			tallies[Merger] += r.Mergers
			tallies[Split] += r.Splits
			tallies[Shrink] += r.Shrinks
			tallies[Dissipation] += r.Dissipations
			pruned += r.EpochPruned
			merges += r.MSBFSMerges
		})))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	for typ := EventType(0); typ < numEventTypes; typ++ {
		if tallies[typ] != handlerCounts[typ] {
			t.Fatalf("%v: observer tallied %d, handler saw %d", typ, tallies[typ], handlerCounts[typ])
		}
	}
	if pruned != eng.tree.Stats().EpochPruned {
		t.Fatalf("observer pruned %d, index counted %d", pruned, eng.tree.Stats().EpochPruned)
	}
	total := 0
	for _, n := range tallies {
		total += n
	}
	if total == 0 {
		t.Fatal("stream produced no cluster-evolution events; tallies untested")
	}
	_ = merges // merges can legitimately be zero on easy streams
}

// TestObserverAcrossIndexBackends ensures the telemetry tap works for the
// grid and k-d backends, whose epoch emulation feeds EpochPruned.
func TestObserverAcrossIndexBackends(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"grid", []Option{WithGridIndex(0)}},
		{"kd", []Option{WithKDTreeIndex()}},
		{"workers", []Option{WithWorkers(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs, eng := driveObserved(t, tc.opts...)
			if len(recs) != int(eng.Stats().Strides) {
				t.Fatalf("%d records for %d strides", len(recs), eng.Stats().Strides)
			}
			var searches int64
			for _, r := range recs {
				searches += r.RangeSearches
			}
			if searches != eng.Stats().RangeSearches {
				t.Fatalf("delta sum %d != stats %d", searches, eng.Stats().RangeSearches)
			}
		})
	}
}

// TestSetObserverDetach verifies SetObserver(nil) stops emission.
func TestSetObserverDetach(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := clustered2D(rng, 900)
	steps, err := window.Steps(data, 600, 100)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	eng := New(cfg2(2.5, 5), WithObserver(ObserverFunc(func(StrideRecord) { n++ })))
	eng.Advance(steps[0].In, steps[0].Out)
	if n != 1 {
		t.Fatalf("observed %d strides, want 1", n)
	}
	eng.SetObserver(nil)
	eng.Advance(steps[1].In, steps[1].Out)
	if n != 1 {
		t.Fatalf("detached observer still fired (n=%d)", n)
	}
}

// TestResetStatsZeroesPhaseTimings is the regression test for the
// documented ResetStats contract: timings accumulate "since construction
// or the last ResetStats", so ResetStats must zero them along with Stats.
func TestResetStatsZeroesPhaseTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := clustered2D(rng, 900)
	steps, err := window.Steps(data, 600, 100)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg2(2.5, 5))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
	}
	if eng.PhaseTimings().Total() <= 0 {
		t.Fatal("no phase time accumulated before reset")
	}
	if eng.Stats() == (model.Stats{}) {
		t.Fatal("no stats accumulated before reset")
	}
	eng.ResetStats()
	if got := eng.PhaseTimings(); got != (PhaseTimings{}) {
		t.Fatalf("ResetStats left phase timings %+v", got)
	}
	if got := eng.Stats(); got != (model.Stats{}) {
		t.Fatalf("ResetStats left stats %+v", got)
	}
	// And they accumulate again afterwards.
	eng.Advance([]model.Point{{ID: 10_000, Pos: steps[0].In[0].Pos}}, nil)
	if eng.PhaseTimings().Total() <= 0 {
		t.Fatal("phase timings did not resume after reset")
	}
	if eng.Stats().Strides != 1 {
		t.Fatalf("strides = %d after reset+advance, want 1", eng.Stats().Strides)
	}
}

// TestObserverZeroOverheadPath sanity-checks that the unobserved engine
// allocates no telemetry records: the only per-stride cost is the tally
// resets, which involve no heap. (The <2% wall-clock bound is checked by
// comparing BenchmarkAdvance against the pre-observer baseline.)
func TestObserverZeroOverheadPath(t *testing.T) {
	eng := New(cfg2(1, 2))
	eng.Advance(line(0, 0, 50, 0.5), nil)
	if eng.observer != nil {
		t.Fatal("engine has an observer by default")
	}
	// One tiny advance purely to exercise the nil-observer branch.
	start := time.Now()
	eng.Advance(line(100, 100, 2, 0.5), nil)
	if time.Since(start) > time.Second {
		t.Fatal("unobserved advance implausibly slow")
	}
}
