package core

import "fmt"

// EventType enumerates the kinds of cluster evolution DISC distinguishes
// (§III-C of the paper): ex-cores drive splits, shrinks and dissipations;
// neo-cores drive emergences, expansions and mergers.
type EventType uint8

const (
	// Emergence: a new cluster formed solely of neo-cores (M⁺ empty).
	Emergence EventType = iota
	// Expansion: neo-cores joined one existing cluster (M⁺ spans one).
	Expansion
	// Merger: neo-cores connected several existing clusters (M⁺ spans many).
	Merger
	// Split: the minimal bonding cores of an ex-core component fell into
	// more than one density-connected component.
	Split
	// Shrink: ex-cores left a cluster but its bonding cores stayed connected.
	Shrink
	// Dissipation: an ex-core component with no surviving bonding cores —
	// the whole cluster dissolved.
	Dissipation

	// numEventTypes sizes per-type tally arrays; keep it last.
	numEventTypes
)

// String returns the lower-case name of the event type.
func (t EventType) String() string {
	switch t {
	case Emergence:
		return "emergence"
	case Expansion:
		return "expansion"
	case Merger:
		return "merger"
	case Split:
		return "split"
	case Shrink:
		return "shrink"
	case Dissipation:
		return "dissipation"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event describes one cluster-evolution occurrence. Cluster ids are the
// resolved ids as visible in snapshots taken after the same Advance call.
type Event struct {
	Type   EventType
	Stride uint64 // 1-based window advance counter
	// ClusterID is the primary cluster: the new cluster for Emergence, the
	// expanded cluster for Expansion, the surviving (winning) cluster for
	// Merger and Split, and the affected cluster for Shrink/Dissipation.
	ClusterID int
	// Absorbed lists the cluster ids merged away (Merger only).
	Absorbed []int
	// NewClusters lists the fresh ids assigned to the split-off components
	// (Split only).
	NewClusters []int
	// Cores is the number of core points directly involved: the
	// nascent-reachable component size for neo-core events, the number of
	// retro-reachable ex-cores for ex-core events.
	Cores int
}

// String renders the event compactly for logs.
func (ev Event) String() string {
	switch ev.Type {
	case Merger:
		return fmt.Sprintf("stride %d: merger -> cluster %d absorbed %v (%d neo-cores)", ev.Stride, ev.ClusterID, ev.Absorbed, ev.Cores)
	case Split:
		return fmt.Sprintf("stride %d: split of cluster %d -> new %v (%d ex-cores)", ev.Stride, ev.ClusterID, ev.NewClusters, ev.Cores)
	default:
		return fmt.Sprintf("stride %d: %s of cluster %d (%d cores)", ev.Stride, ev.Type, ev.ClusterID, ev.Cores)
	}
}

// WithEventHandler registers a callback invoked synchronously during
// Advance for every cluster-evolution event, in detection order. The
// handler must not call back into the engine.
func WithEventHandler(fn func(Event)) Option {
	return func(e *Engine) { e.onEvent = fn }
}

// emit dispatches an event if a handler is registered, and tallies it for
// the stride's telemetry record.
func (e *Engine) emit(ev Event) {
	e.strideEvents[ev.Type]++
	if e.onEvent != nil {
		ev.Stride = e.stride
		e.onEvent(ev)
	}
}
