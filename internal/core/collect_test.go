package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/window"
)

// assignmentsEqual requires two snapshots to be identical maps — not merely
// the same clustering up to renaming. The parallel COLLECT merge is
// deterministic, so engines differing only in worker count must agree on
// every label AND every resolved cluster id.
func assignmentsEqual(t *testing.T, got, want map[int64]model.Assignment, ctx string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		for id, w := range want {
			if g, ok := got[id]; !ok || g != w {
				t.Fatalf("%s: point %d: got %+v, want %+v", ctx, id, got[id], w)
			}
		}
		t.Fatalf("%s: snapshots differ (got %d points, want %d)", ctx, len(got), len(want))
	}
}

// TestParallelCollectBitIdentical drives engines with worker counts 1, 2, 4
// and 8 through the same evolving stream on all three index backends and
// requires bit-identical snapshots and work counters after every stride.
func TestParallelCollectBitIdentical(t *testing.T) {
	backends := []struct {
		name string
		opts []Option
	}{
		{"rtree", nil},
		{"grid", []Option{WithGridIndex(0)}},
		{"kdtree", []Option{WithKDTreeIndex()}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			const win, stride = 1200, 300
			data := clustered2D(rng, win+stride*8)
			steps, err := window.Steps(data, win, stride)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cfg2(2.5, 5)
			newEng := func(w int) *Engine {
				return New(cfg, append([]Option{WithWorkers(w)}, be.opts...)...)
			}
			seq := newEng(1)
			pars := map[int]*Engine{2: newEng(2), 4: newEng(4), 8: newEng(8)}
			for i, st := range steps {
				seq.Advance(st.In, st.Out)
				want := seq.Snapshot()
				wantStats := seq.Stats()
				for w, par := range pars {
					par.Advance(st.In, st.Out)
					assignmentsEqual(t, par.Snapshot(), want,
						fmt.Sprintf("step %d workers=%d", i, w))
					if got := par.Stats(); got != wantStats {
						t.Fatalf("step %d workers=%d: stats %+v, want %+v", i, w, got, wantStats)
					}
				}
			}
			for w, par := range pars {
				if err := par.CheckInvariants(); err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
			}
		})
	}
}

// TestParallelCollectMatchesDBSCAN reruns the exactness oracle with a
// parallel engine: every stride of the parallel DISC must match from-scratch
// DBSCAN.
func TestParallelCollectMatchesDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := clustered2D(rng, 2200)
	verifyAgainstDBSCAN(t, data, cfg2(2.5, 5), 1000, 250, WithWorkers(4))
	verifyAgainstDBSCAN(t, clustered2D(rand.New(rand.NewSource(11)), 1500),
		cfg2(3, 8), 900, 900, WithWorkers(8)) // tumbling window: Δin = Δout = everything
}

// TestWorkersPersisted checks the WithWorkers setting survives a checkpoint
// round trip.
func TestWorkersPersisted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	eng := New(cfg2(2.5, 5), WithWorkers(4))
	eng.Advance(clustered2D(rng, 500), nil)
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.workers != 4 {
		t.Fatalf("workers = %d after reload, want 4", loaded.workers)
	}
}

// TestConcurrentQueriesDuringStream runs one feeder goroutine against a raw
// (unwrapped) engine and, between strides, several concurrent query
// goroutines — verifying under -race that Snapshot, Assignment and Stats
// perform no hidden writes (union-find path compression, index statistics).
func TestConcurrentQueriesDuringStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const win, stride = 800, 200
	data := clustered2D(rng, win+stride*6)
	steps, err := window.Steps(data, win, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg2(2.5, 5), WithWorkers(4))
	for _, st := range steps {
		eng.Advance(st.In, st.Out)
		// Queries are only safe between Advance calls; hammer them from
		// several goroutines at once to let the race detector inspect the
		// full read path.
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for k := 0; k < 50; k++ {
					eng.Assignment(int64(r.Intn(len(data))))
					eng.Stats()
				}
				eng.Snapshot()
			}(int64(g))
		}
		wg.Wait()
	}
}

// TestSearchBallROMatchesSearchBall verifies the read-only search variant
// visits exactly the same points as the accounted one on every backend, and
// that concurrent SearchBallRO calls are race-free.
func TestSearchBallROMatchesSearchBall(t *testing.T) {
	backends := []struct {
		name string
		opts []Option
	}{
		{"rtree", nil},
		{"grid", []Option{WithGridIndex(0)}},
		{"kdtree", []Option{WithKDTreeIndex()}},
	}
	rng := rand.New(rand.NewSource(14))
	data := clustered2D(rng, 1500)
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			eng := New(cfg2(2.5, 5), be.opts...)
			eng.Advance(data, nil)
			for trial := 0; trial < 40; trial++ {
				c := geom.NewVec(rng.Float64()*60, rng.Float64()*60)
				eps := 0.5 + rng.Float64()*4
				before := eng.tree.Stats()
				want := map[int64]bool{}
				eng.tree.SearchBall(c, eps, func(id int64, _ geom.Vec) bool {
					want[id] = true
					return true
				})
				wantNodes := eng.tree.Stats().NodeAccesses - before.NodeAccesses
				got := map[int64]bool{}
				nodes := eng.tree.SearchBallRO(c, eps, func(id int64, _ geom.Vec) bool {
					got[id] = true
					return true
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: RO visited %d points, accounted visited %d", trial, len(got), len(want))
				}
				if nodes != wantNodes {
					t.Fatalf("trial %d: RO search counted %d node accesses, accounted search %d", trial, nodes, wantNodes)
				}
			}
			// Concurrent read-only searches over one fixed index must be
			// race-free on every backend.
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for k := 0; k < 30; k++ {
						c := geom.NewVec(r.Float64()*60, r.Float64()*60)
						eng.tree.SearchBallRO(c, 2.5, func(int64, geom.Vec) bool { return true })
					}
				}(int64(g))
			}
			wg.Wait()
		})
	}
}

// TestAssignmentSelfHeals corrupts a border hint in a running engine and
// checks queries degrade gracefully instead of panicking: the healed
// assignment must still name the cluster of a live core ε-neighbor, and a
// border stripped of all core neighbors must degrade to noise.
func TestAssignmentSelfHeals(t *testing.T) {
	// A 4-core cluster (minPts 3 within ε=1.5 of each other) plus one border
	// point within ε of only the rightmost core.
	pts := []model.Point{
		{ID: 1, Pos: geom.NewVec(0, 0)},
		{ID: 2, Pos: geom.NewVec(1, 0)},
		{ID: 3, Pos: geom.NewVec(2, 0)},
		{ID: 4, Pos: geom.NewVec(3, 0)},
		{ID: 5, Pos: geom.NewVec(4.2, 0)}, // border: within ε of core 4 only
	}
	eng := New(cfg2(1.5, 3))
	eng.Advance(pts, nil)
	a, ok := eng.Assignment(5)
	if !ok || a.Label != model.Border {
		t.Fatalf("point 5 = %+v, want border", a)
	}
	wantCID := a.ClusterID

	// Corrupt the hint to an absent id, as a poisoned checkpoint would.
	eng.pts[5].hint = 999
	healed, ok := eng.Assignment(5)
	if !ok {
		t.Fatal("point 5 vanished")
	}
	if healed.Label != model.Border || healed.ClusterID != wantCID {
		t.Fatalf("healed assignment = %+v, want border in cluster %d", healed, wantCID)
	}
	// Snapshot takes the same path.
	if snap := eng.Snapshot(); snap[5] != healed {
		t.Fatalf("snapshot[5] = %+v, want %+v", snap[5], healed)
	}

	// With the hint corrupted AND no core in range, the query degrades to
	// noise rather than crashing.
	eng.pts[5].pos = geom.NewVec(100, 100) // teleport state only; tree untouched is fine for this query
	if a, _ := eng.Assignment(5); a.Label != model.Noise || a.ClusterID != model.NoCluster {
		t.Fatalf("orphaned border = %+v, want noise", a)
	}
}
