package core

import (
	"disc/internal/dsu"
	"disc/internal/dyncon"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/queue"
)

// This file implements the density-connectedness check for a set of minimal
// bonding cores: Multi-Starter BFS (Algorithm 3 of the paper), plus the
// degraded sequential variant used by the Fig. 8 ablation study.
//
// # Read-only traversal and the scratch pool contract
//
// Since the CLUSTER phase went parallel (cluster_parallel.go), connectivity
// checks for independent components may run concurrently, so a check must
// not write anything another check could read: every expansion search uses
// SearchBallRO, the visited set lives outside the index, and the check's
// outputs (component count, members, work counters) are recorded into a
// caller-owned connResult. The paper's in-tree epoch probing (Algorithm 4)
// is therefore retired from this path — its entry stamps are writes into
// shared index pages — and its idea survives as the instance tick below; the
// index implementations keep SearchBallEpoch for single-threaded users (see
// internal/incdbscan).
//
// A connectivity check is free of engine side effects by contract: it must
// answer exactly the same observable question as the maintained dyncon
// forest (WithConnectivity(ConnDynamic)), which performs no traversal at
// all, so nothing the traversal incidentally touches may leak into engine
// state. Border-hint refreshes and affected-set marks are owned entirely by
// the capture/fold pipeline (every border adjacent to a dying core is
// marked affected by that core's capture, and finalize re-derives any hint
// the stride invalidated), and the traversal's search/node counts feed
// per-stride telemetry (StrideRecord.ConnSearches/ConnNodes), not
// model.Stats. For the same reason closed components are reported in a
// strategy-independent canonical order: ascending minimum starter
// (bonding-core) index. Sequential BFS produces that order naturally; MS-
// BFS closes components in an emergent round-robin order and sorts them
// (canonicalizeComponents); the forest reports roots in first-seen starter
// order, which is the same order by construction.
//
// All per-instance state lives in an msScratch owned by one goroutine
// (the engine keeps one per CLUSTER worker slot) and reused across
// instances and strides:
//
//   - the visited map is epoch-stamped: each instance bumps s.tick and
//     entries from older instances are treated as absent, so there is no
//     per-instance clearing pass and no rebuild (the map is compacted only
//     when it outgrows scratchVisitedCap);
//   - group structs, their member slices, the round-robin active list, the
//     thread union-find, and every queue node are pooled and recycled, so a
//     steady-state connectivity check performs zero heap allocations
//     (pinned by TestConnectivityZeroAlloc and BenchmarkConnectivitySteady);
//   - the search callback is built once per scratch and parameterized
//     through scratch fields, keeping closures off the per-expansion path.
//
// An msScratch must never be shared between concurrently running checks,
// and a connResult must not be read before the check that fills it returns.
// With WithEpochProbing(false) the visited map is rebuilt per instance —
// the "no reuse" ablation — with identical traversal order and statistics.
//
// # Composition of MS-BFS with visit-on-expansion
//
// For MS-BFS to detect that two search threads meet, a vertex must remain
// discoverable while it sits in a queue and may only be hidden once it has
// been expanded. We therefore stamp a core when it is dequeued and its own
// expansion search runs (the ball around a core covers the core itself),
// and record thread ownership separately at enqueue time.
//
// Why no merge is ever missed: suppose threads s and t both finish without
// merging although their regions are connected; then some edge (u, v) exists
// with u expanded by s's group and v by t's group. Consider the earlier of
// the two expansions, say v by t. At that moment u was not yet expanded, so
// u was not stamped and t's search of v returned u. If u was already owned
// by s's group, the merge was detected — contradiction. Otherwise t enqueued
// u and u would have been expanded by t's group, not s's — contradiction.
// Non-core points never join the traversal; they are stamped on first touch
// since nothing revisits them within one instance.

// scratchVisitedCap bounds the visited map's retained size: after an
// instance that left more entries than this, the map is compacted (capacity
// is kept, so the steady state stays allocation-free; only the key set is
// dropped to stop unbounded growth as window ids churn across strides).
const scratchVisitedCap = 1 << 16

// visitEntry flags.
const (
	visitOwned   uint8 = 1 << iota // a thread owns this core (owner valid)
	visitStamped                   // hidden from later expansion searches
)

// visitEntry is one epoch-stamped visited-map slot; it is current only when
// its tick matches the scratch's instance tick.
type visitEntry struct {
	tick  uint64
	owner int32
	flags uint8
}

// group is one MS-BFS search thread: its frontier queue and the cores it has
// expanded so far. Merged groups concatenate both. Groups are pooled on the
// scratch; reset reuses the member slice's capacity.
type group struct {
	q        queue.Q
	members  []int64
	closed   bool // finished a whole connected component
	dead     bool // absorbed into another thread
	root     int  // current starter index whose slot points at this group
	minStart int  // smallest starter index merged into this thread
}

func (g *group) reset(i int) {
	g.members = g.members[:0]
	g.closed, g.dead = false, false
	g.root = i
	g.minStart = i
}

// msScratch is the pooled per-goroutine state of connectivity checks; see
// the header comment for the reuse contract.
type msScratch struct {
	e       *Engine
	tick    uint64
	visited map[int64]visitEntry

	groupArr []group   // backing storage for this instance's groups
	slots    []*group  // starter index → owning group (aliased after merges)
	active   []*group  // round-robin worklist
	threads  dsu.Dense // starter-index union-find
	qpool    queue.Pool
	seqQ     queue.Q // sequentialBFS frontier

	// Per-expansion parameters of the prebuilt search callback.
	res     *connResult
	center  int64
	coreBuf []int64 // un-stamped core neighbors found by the last expansion

	visit func(qid int64, _ geom.Vec) bool
	grown int64 // pooled-structure growth events (with qpool: pool misses)
}

func newMSScratch(e *Engine) *msScratch {
	s := &msScratch{e: e, visited: make(map[int64]visitEntry)}
	// Built once: the callback reads its per-expansion parameters from the
	// scratch so the hot path creates no closures (and so allocates nothing).
	s.visit = func(qid int64, _ geom.Vec) bool {
		if en, ok := s.visited[qid]; ok && en.tick == s.tick && en.flags&visitStamped != 0 {
			return true
		}
		if qid == s.center {
			s.stamp(qid) // visit-on-expansion: hide the expanded vertex itself
			return true
		}
		q := e.pts[qid]
		if q.label == model.Deleted {
			s.stamp(qid) // exited ex-core still in the tree: hide it
			return true
		}
		if !e.isCoreNow(q) {
			// Non-core neighbor: not part of the traversal. No side effect is
			// recorded (see the header contract): its hint and affected state
			// are owned by the capture/fold pipeline and finalize.
			s.stamp(qid)
			return true
		}
		// Cores stay discoverable until they are expanded.
		s.coreBuf = append(s.coreBuf, qid)
		return true
	}
	return s
}

// begin opens a new instance: bump the epoch (older entries become stale
// in O(1)) and compact the map only when it has outgrown its cap. With
// reuse=false (the WithEpochProbing(false) ablation) the map is rebuilt
// from scratch instead, paying the allocation the pooled path avoids.
func (s *msScratch) begin(reuse bool) {
	s.tick++
	if !reuse {
		s.visited = make(map[int64]visitEntry)
		return
	}
	if len(s.visited) > scratchVisitedCap {
		clear(s.visited)
	}
}

func (s *msScratch) stamp(id int64) {
	en := s.visited[id]
	if en.tick != s.tick {
		en = visitEntry{tick: s.tick}
	}
	en.flags |= visitStamped
	s.visited[id] = en
}

func (s *msScratch) owner(id int64) (int, bool) {
	en, ok := s.visited[id]
	if !ok || en.tick != s.tick || en.flags&visitOwned == 0 {
		return 0, false
	}
	return int(en.owner), true
}

func (s *msScratch) setOwner(id int64, w int) {
	en := s.visited[id]
	if en.tick != s.tick {
		en = visitEntry{tick: s.tick}
	}
	en.owner = int32(w)
	en.flags |= visitOwned
	s.visited[id] = en
}

// ensureGroups sizes the pooled group storage and slot table for n starters,
// preserving the member-slice capacities accumulated by earlier instances.
func (s *msScratch) ensureGroups(n int) {
	if cap(s.groupArr) < n {
		s.groupArr = append(s.groupArr[:cap(s.groupArr)], make([]group, n-cap(s.groupArr))...)
		s.grown++
	}
	s.groupArr = s.groupArr[:n]
	if cap(s.slots) < n {
		s.slots = make([]*group, n)
		s.grown++
	}
	s.slots = s.slots[:n]
}

// connResult records everything one connectivity check computed — the check
// itself mutates nothing shared. All slices are pooled by reset. Closed
// components are stored flattened: component i is
// closedIDs[closedOff[i]:closedOff[i+1]], in the canonical strategy-
// independent order (ascending minimum starter index).
type connResult struct {
	ncc      int
	merges   int64 // MS-BFS thread merges
	searches int64 // expansion searches run
	nodes    int64 // index nodes those searches touched

	closedIDs []int64
	closedOff []int
	closedMin []int // per closed component: minimum starter index (MS-BFS)

	// Canonicalization and forest-query scratch, pooled like the rest.
	ordIdx []int32
	tmpIDs []int64
	tmpOff []int
	roots  []dyncon.Component
}

func (r *connResult) reset() {
	r.ncc, r.merges, r.searches, r.nodes = 0, 0, 0, 0
	r.closedIDs = r.closedIDs[:0]
	r.closedOff = append(r.closedOff[:0], 0)
	r.closedMin = r.closedMin[:0]
	r.roots = r.roots[:0]
}

// components returns how many closed components were recorded. MS-BFS
// records none when the set proves connected (early exit); the sequential
// variant records every component it traverses.
func (r *connResult) components() int { return len(r.closedOff) - 1 }

func (r *connResult) component(i int) []int64 {
	return r.closedIDs[r.closedOff[i]:r.closedOff[i+1]]
}

// closeComponent flattens a finished component's members into the result.
func (r *connResult) closeComponent(members []int64) {
	r.closedIDs = append(r.closedIDs, members...)
	r.closedOff = append(r.closedOff, len(r.closedIDs))
}

// connectivityInto determines how many density-connected components the
// given bonding cores span in the current window's core graph, recording
// results and side effects into res. It reads only state that is frozen
// during CLUSTER, so checks for disjoint components may run concurrently,
// each with its own scratch and result.
//
// When the set is connected (res.ncc == 1 via MS-BFS), the check stops as
// soon as all threads have merged — the early exit that makes the common
// shrink case cheap — and no component is recorded: nothing needs
// relabeling. When a split is detected (some thread exhausts a component),
// the traversal runs to completion and EVERY component is recorded in full.
// The caller then assigns a fresh cluster id to each; no component may keep
// the previous cluster's id, because one old cluster can be severed by
// several independent retro-reachable ex-core components in a single
// stride, and two "survivor" components each keeping the old id would
// silently share it (a bug found by fuzzing; see
// TestMultiCutSplitRegression).
func (e *Engine) connectivityInto(bonding []int64, s *msScratch, res *connResult) {
	res.reset()
	if len(bonding) == 0 {
		return
	}
	if e.connStrategy == ConnDynamic {
		e.forestConnectivityInto(bonding, res)
		return
	}
	s.begin(e.useEpoch)
	if e.useMSBFS {
		e.multiStarterBFS(bonding, s, res)
	} else {
		e.sequentialBFS(bonding, s, res)
	}
}

// connectivity is the sequential convenience form used by tests and tools:
// it runs one check against the engine's own scratch (e.scratches[0]) and
// shared result buffer (e.connRes), returning materialized components. The
// CLUSTER pipeline instead calls connectivityInto with per-worker scratches
// and folds the results in component order (cluster_parallel.go).
//
// Because the borrowed scratch and result are engine-owned singletons, the
// body runs under connMu: concurrent callers serialize instead of racing on
// them. It still must not run concurrently with Advance (which owns the
// same scratches through the CLUSTER fan-out), and with ConnDynamic it
// answers from the forest as of the last completed stride.
func (e *Engine) connectivity(bonding []int64) (closed [][]int64, ncc int) {
	if len(bonding) == 0 {
		return nil, 0
	}
	e.connMu.Lock()
	defer e.connMu.Unlock()
	e.ensureScratches(1)
	res := &e.connRes
	e.connectivityInto(bonding, e.scratches[0], res)
	e.applyConnResult(res)
	for i := 0; i < res.components(); i++ {
		closed = append(closed, append([]int64(nil), res.component(i)...))
	}
	return closed, res.ncc
}

// applyConnResult folds a check's work counters into the per-stride
// connectivity telemetry. Deliberately NOT model.Stats: the traversal work
// is an implementation cost of the MS-BFS strategy, and engine statistics
// must stay bit-identical when the dyncon forest answers the same query
// with no traversal at all. Must run single-threaded.
func (e *Engine) applyConnResult(res *connResult) {
	e.strideConnSearches += res.searches
	e.strideConnNodes += res.nodes
	e.strideMerges += res.merges
}

// expand runs the read-only expansion search around core center, collecting
// every un-stamped core neighbor into s.coreBuf (valid until the next
// expand on this scratch).
func (e *Engine) expand(center int64, s *msScratch, res *connResult) {
	s.center = center
	s.res = res
	s.coreBuf = s.coreBuf[:0]
	nodes := e.tree.SearchBallRO(e.pts[center].pos, e.cfg.Eps, s.visit)
	res.searches++
	res.nodes += nodes
	s.res = nil
}

// multiStarterBFS is Algorithm 3: one BFS thread per bonding core, run
// round-robin; threads merge when they meet, an emptied queue closes one
// connected component, and the instance stops as soon as a single live
// thread remains.
func (e *Engine) multiStarterBFS(bonding []int64, s *msScratch, res *connResult) {
	n := len(bonding)
	s.ensureGroups(n)
	s.threads.Reset(n)
	s.active = s.active[:0]
	for i, m := range bonding {
		g := &s.groupArr[i]
		g.reset(i)
		g.q.PushPool(&s.qpool, m)
		s.setOwner(m, i)
		s.slots[i] = g
		s.active = append(s.active, g)
	}
	live := n

	// Round-robin over the live threads only; absorbed and closed threads
	// are compacted out of the active list so each round costs O(live), not
	// O(|M⁻|). While no component has closed, a single surviving thread
	// means "connected" and the instance exits early; once any component
	// closed (a split), every thread drains fully so all components are
	// recorded complete.
	for live > 0 {
		if live == 1 && res.ncc == 0 {
			res.ncc = 1
			// Early exit abandons non-empty frontiers; recycle their nodes
			// so the next instance still runs allocation-free.
			for i := range s.groupArr {
				s.groupArr[i].q.Recycle(&s.qpool)
			}
			return
		}
		w := s.active[:0]
		for _, g := range s.active {
			if g.dead || g.closed {
				continue
			}
			w = append(w, g)
			if g.q.Empty() {
				// This thread exhausted a whole connected component.
				g.closed = true
				live--
				res.closeComponent(g.members)
				res.closedMin = append(res.closedMin, g.minStart)
				res.ncc++
				continue
			}
			id := g.q.PopPool(&s.qpool)
			g.members = append(g.members, id)
			e.expand(id, s, res)
			for _, qid := range s.coreBuf {
				j, seen := s.owner(qid)
				if !seen {
					s.setOwner(qid, g.root)
					g.q.PushPool(&s.qpool, qid)
					continue
				}
				other := s.slots[s.threads.Find(j)]
				if other == g {
					continue // already ours
				}
				// Two searches met: merge the other thread into this one
				// (Algorithm 3 line 11). Group identity, not starter index,
				// decides "ours": after a union the dense-DSU root may be
				// either starter, so the winning root's slot is re-pointed
				// at g and recorded as g's root.
				s.threads.Union(g.root, j)
				res.merges++
				g.q.Concat(&other.q)
				g.members = append(g.members, other.members...)
				other.members = other.members[:0]
				other.dead = true
				if other.minStart < g.minStart {
					g.minStart = other.minStart
				}
				g.root = s.threads.Find(g.root)
				s.slots[g.root] = g
				live--
			}
		}
		s.active = w
	}
	canonicalizeComponents(res)
}

// canonicalizeComponents reorders the closed components into the canonical
// strategy-independent order: ascending minimum starter index (closedMin).
// MS-BFS closes components in an emergent order — whichever thread drains
// first — which depends on traversal geometry; the other strategies produce
// the canonical order natively, and split relabeling assigns fresh cluster
// ids per component in recorded order, so the order is observable and must
// match. All scratch is pooled on the result; the common already-sorted
// case costs one scan.
func canonicalizeComponents(res *connResult) {
	n := res.components()
	if n <= 1 {
		return
	}
	sorted := true
	for i := 1; i < n; i++ {
		if res.closedMin[i] < res.closedMin[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	res.ordIdx = res.ordIdx[:0]
	for i := 0; i < n; i++ {
		res.ordIdx = append(res.ordIdx, int32(i))
	}
	// Insertion sort: component counts are small and a closure-based sort
	// would allocate on this otherwise allocation-free path.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && res.closedMin[res.ordIdx[j]] < res.closedMin[res.ordIdx[j-1]]; j-- {
			res.ordIdx[j], res.ordIdx[j-1] = res.ordIdx[j-1], res.ordIdx[j]
		}
	}
	res.tmpIDs = res.tmpIDs[:0]
	res.tmpOff = append(res.tmpOff[:0], 0)
	for _, k := range res.ordIdx {
		res.tmpIDs = append(res.tmpIDs, res.component(int(k))...)
		res.tmpOff = append(res.tmpOff, len(res.tmpIDs))
	}
	// Swap the buffers so both stay pooled; closedMin is stale afterwards
	// but is only consumed by this ordering pass.
	res.closedIDs, res.tmpIDs = res.tmpIDs, res.closedIDs
	res.closedOff, res.tmpOff = res.tmpOff, res.closedOff
}

// sequentialBFS is the ablation fallback: classic one-source BFS repeated
// from each not-yet-covered bonding core. Every component is traversed to
// completion and recorded (the caller relabels only when more than one
// component exists).
func (e *Engine) sequentialBFS(bonding []int64, s *msScratch, res *connResult) {
	for idx, m := range bonding {
		if _, seen := s.owner(m); seen {
			continue
		}
		s.seqQ.PushPool(&s.qpool, m)
		s.setOwner(m, idx)
		for !s.seqQ.Empty() {
			id := s.seqQ.PopPool(&s.qpool)
			res.closedIDs = append(res.closedIDs, id)
			e.expand(id, s, res)
			for _, qid := range s.coreBuf {
				if _, seen := s.owner(qid); !seen {
					s.setOwner(qid, idx)
					s.seqQ.PushPool(&s.qpool, qid)
				}
			}
		}
		res.closedOff = append(res.closedOff, len(res.closedIDs))
		res.ncc++
	}
}
