package core

import (
	"disc/internal/dsu"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/queue"
)

// This file implements the density-connectedness check for a set of minimal
// bonding cores: Multi-Starter BFS (Algorithm 3 of the paper) with optional
// epoch-based R-tree probing (Algorithm 4), plus the degraded variants used
// by the Fig. 8 ablation study (sequential BFS, external visited set).
//
// Composition of the two optimizations requires care. The paper stores
// visited marks inside the index; for MS-BFS to still detect that two search
// threads meet, a vertex must remain discoverable while it sits in a queue
// and may only be hidden once it has been expanded. We therefore stamp a
// core's leaf entry with the instance tick when the core is dequeued and its
// own expansion search runs (the ball around a core covers the core itself),
// and record thread ownership separately at enqueue time.
//
// Why no merge is ever missed: suppose threads s and t both finish without
// merging although their regions are connected; then some edge (u, v) exists
// with u expanded by s's group and v by t's group. Consider the earlier of
// the two expansions, say v by t. At that moment u was not yet expanded, so
// u was not stamped and t's search of v returned u. If u was already owned
// by s's group, the merge was detected — contradiction. Otherwise t enqueued
// u and u would have been expanded by t's group, not s's — contradiction.
// Non-core points never join the traversal; they are stamped on first touch
// (after refreshing their border hint) since nothing revisits them within
// one instance.

// group is one MS-BFS search thread: its frontier queue and the cores it has
// expanded so far. Merged groups concatenate both.
type group struct {
	q       queue.Q
	members []int64
	closed  bool // finished a whole connected component
	dead    bool // absorbed into another thread
	root    int  // current starter index whose slot points at this group
}

// connectivity determines how many density-connected components the given
// bonding cores span in the current window's core graph.
//
// When the set is connected (ncc == 1), MS-BFS stops as soon as all threads
// have merged — the early exit that makes the common shrink case cheap —
// and closed is empty: nothing needs relabeling. When a split is detected
// (some thread exhausts a component), the traversal runs to completion and
// closed returns EVERY component in full. The caller then assigns a fresh
// cluster id to each; no component may keep the previous cluster's id,
// because one old cluster can be severed by several independent
// retro-reachable ex-core components in a single stride, and two "survivor"
// components each keeping the old id would silently share it (a bug found
// by fuzzing; see TestMultiCutSplitRegression).
func (e *Engine) connectivity(bonding []int64) (closed [][]int64, ncc int) {
	if len(bonding) == 0 {
		return nil, 0
	}
	if e.useMSBFS {
		return e.multiStarterBFS(bonding)
	}
	return e.sequentialBFS(bonding)
}

// visitState tracks traversal bookkeeping for one connectivity instance.
type visitState struct {
	tick    uint64         // R-tree epoch tick; 0 when epoch probing is off
	owner   map[int64]int  // core id → starter index of the owning group
	stamped map[int64]bool // external visited set when epoch probing is off
}

func (e *Engine) newVisitState() *visitState {
	vs := &visitState{owner: make(map[int64]int)}
	if e.useEpoch {
		vs.tick = e.tree.NextTick()
	} else {
		vs.stamped = make(map[int64]bool)
	}
	return vs
}

// expand runs the expansion search around core center. For every un-stamped
// core within ε it calls onCore with the core's id; bookkeeping for non-core
// neighbors (border hint refresh) happens inline. The center itself is
// stamped, implementing visit-on-expansion.
func (e *Engine) expand(center int64, vs *visitState, onCore func(id int64)) {
	cst := e.pts[center]
	visit := func(qid int64, _ geom.Vec) bool {
		q := e.pts[qid]
		if qid == center {
			return true // stamp the expanded vertex itself
		}
		if q.label == model.Deleted {
			return true // exited ex-core still in the tree: hide it
		}
		if !e.isCoreNow(q) {
			// Refresh the border hint: center is a current core ε-adjacent
			// to q. One touch suffices within this instance.
			q.hint = center
			e.markAffected(qid, q)
			return true
		}
		onCore(qid)
		return false // cores stay discoverable until they are expanded
	}
	if e.useEpoch {
		e.tree.SearchBallEpoch(cst.pos, e.cfg.Eps, vs.tick, visit)
		return
	}
	e.tree.SearchBall(cst.pos, e.cfg.Eps, func(qid int64, p geom.Vec) bool {
		if vs.stamped[qid] {
			return true
		}
		if visit(qid, p) {
			vs.stamped[qid] = true
		}
		return true
	})
}

// multiStarterBFS is Algorithm 3: one BFS thread per bonding core, run
// round-robin; threads merge when they meet, an emptied queue closes one
// connected component, and the instance stops as soon as a single live
// thread remains.
func (e *Engine) multiStarterBFS(bonding []int64) (closed [][]int64, ncc int) {
	vs := e.newVisitState()
	groups := make([]*group, len(bonding))
	threads := dsu.NewDense(len(bonding))
	active := make([]*group, len(bonding))
	for i, m := range bonding {
		groups[i] = &group{root: i}
		groups[i].q.Push(m)
		vs.owner[m] = i
		active[i] = groups[i]
	}
	live := len(bonding)

	// Round-robin over the live threads only; absorbed and closed threads
	// are compacted out of the active list so each round costs O(live), not
	// O(|M⁻|). While no component has closed, a single surviving thread
	// means "connected" and the instance exits early; once any component
	// closed (a split), every thread drains fully so all components are
	// returned complete.
	for live > 0 {
		if live == 1 && ncc == 0 {
			return nil, 1 // connected: early exit, nothing to relabel
		}
		w := active[:0]
		for _, g := range active {
			if g.dead || g.closed {
				continue
			}
			w = append(w, g)
			if g.q.Empty() {
				// This thread exhausted a whole connected component.
				g.closed = true
				live--
				closed = append(closed, g.members)
				ncc++
				continue
			}
			id := g.q.Pop()
			g.members = append(g.members, id)
			e.expand(id, vs, func(qid int64) {
				j, seen := vs.owner[qid]
				if !seen {
					vs.owner[qid] = g.root
					g.q.Push(qid)
					return
				}
				other := groups[threads.Find(j)]
				if other == g {
					return // already ours
				}
				// Two searches met: merge the other thread into this one
				// (Algorithm 3 line 11). Group identity, not starter index,
				// decides "ours": after a union the dense-DSU root may be
				// either starter, so the winning root's slot is re-pointed
				// at g and recorded as g's root.
				threads.Union(g.root, j)
				e.strideMerges++
				g.q.Concat(&other.q)
				g.members = append(g.members, other.members...)
				other.members = nil
				other.dead = true
				g.root = threads.Find(g.root)
				groups[g.root] = g
				live--
			})
		}
		active = w
	}
	return closed, ncc
}

// sequentialBFS is the ablation fallback: classic one-source BFS repeated
// from each not-yet-covered bonding core. Every component is traversed to
// completion and returned for relabeling (the caller relabels only when
// more than one component exists).
func (e *Engine) sequentialBFS(bonding []int64) (closed [][]int64, ncc int) {
	vs := e.newVisitState()
	for idx, m := range bonding {
		if _, seen := vs.owner[m]; seen {
			continue
		}
		ncc++
		var members []int64
		var q queue.Q
		q.Push(m)
		vs.owner[m] = idx
		for !q.Empty() {
			id := q.Pop()
			members = append(members, id)
			e.expand(id, vs, func(qid int64) {
				if _, seen := vs.owner[qid]; !seen {
					vs.owner[qid] = idx
					q.Push(qid)
				}
			})
		}
		closed = append(closed, members)
	}
	return closed, ncc
}
