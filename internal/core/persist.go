package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/rtree"
)

// This file implements checkpointing: a long-running stream processor can
// persist the engine between strides and resume after a restart without
// replaying the window. The snapshot stores the per-point bookkeeping with
// cluster ids compacted to their union-find representatives; the R-tree is
// not serialized — it is rebuilt with one STR bulk load, which is both
// faster and smaller than persisting tree pages.

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// persistedPoint mirrors pstate for encoding; stride-scoped stamps are
// deliberately dropped (they are meaningless across restarts).
type persistedPoint struct {
	ID      int64
	Pos     geom.Vec
	N       int32
	CoreDeg int32
	CID     int
	Hint    int64
	Label   model.Label
	WasCore bool
}

// persistedEngine is the explicit wire schema. Listing fields by hand (as
// opposed to encoding *Engine) is what keeps runtime-only state — the
// CLUSTER capture buffers, MS-BFS scratches, queue pools, and every other
// per-stride scratch field on Engine — structurally unable to leak into a
// snapshot: a field absent here is never written. TestSnapshotOmitsScratch
// pins this by checking snapshots taken before and after heavy scratch
// growth decode to identical state.
type persistedEngine struct {
	Version   int
	Cfg       model.Config
	UseMSBFS  bool
	UseEpoch  bool
	IndexKind uint8
	GridSide  float64
	Workers   int // COLLECT search fan-out; 0 in pre-worker snapshots means 1
	NextCID   int
	Stride    uint64
	Stats     model.Stats
	Points    []persistedPoint

	// ConnStrategy is the configured connectivity strategy (zero in older
	// snapshots decodes as ConnMSBFS). Only the setting is persisted: the
	// dyncon forest itself is scratch, derivable from the points, and is
	// rebuilt by LoadEngine.
	ConnStrategy uint8
}

// SaveSnapshot writes the engine's full state to w. It must not be called
// concurrently with Advance, but it performs no writes of its own — not
// even hidden ones: cluster ids are compacted into the wire form through
// the non-compressing FindRO, leaving the in-memory union-find forest and
// every pstate untouched (TestSaveSnapshotLeavesEngineUntouched pins
// this), so saving composes with the ConcurrentReadable contract and may
// run concurrently with queries. The union-find forest need not be
// serialized because the persisted ids are already representatives.
// Points are written in ascending id order, making the bytes a pure
// function of engine state (equal states ⇒ equal snapshots ⇒ equal
// checkpoint CRCs).
func (e *Engine) SaveSnapshot(w io.Writer) error {
	ps := persistedEngine{
		Version:   snapshotVersion,
		Cfg:       e.cfg,
		UseMSBFS:  e.useMSBFS,
		UseEpoch:  e.useEpoch,
		IndexKind: uint8(e.indexKind),
		GridSide:  e.gridSide,
		Workers:   e.workers,
		NextCID:   e.nextCID,
		Stride:    e.stride,
		Stats:     e.stats,
		Points:    make([]persistedPoint, 0, len(e.pts)),

		ConnStrategy: uint8(e.connStrategy),
	}
	for id, st := range e.pts {
		cid := st.cid
		if cid != 0 {
			cid = e.cids.FindRO(cid)
		}
		ps.Points = append(ps.Points, persistedPoint{
			ID: id, Pos: st.pos, N: st.n, CoreDeg: st.coreDeg,
			CID: cid, Hint: st.hint, Label: st.label, WasCore: st.wasCore,
		})
	}
	sort.Slice(ps.Points, func(i, j int) bool { return ps.Points[i].ID < ps.Points[j].ID })
	if err := gob.NewEncoder(w).Encode(&ps); err != nil {
		return fmt.Errorf("disc: encoding snapshot: %w", err)
	}
	return nil
}

// LoadEngine reconstructs an engine from a snapshot written by SaveSnapshot.
// Options given at save time are restored; an event handler (not
// serializable) can be re-attached via opts.
func LoadEngine(r io.Reader, opts ...Option) (*Engine, error) {
	var ps persistedEngine
	if err := gob.NewDecoder(r).Decode(&ps); err != nil {
		return nil, fmt.Errorf("disc: decoding snapshot: %w", err)
	}
	if ps.Version != snapshotVersion {
		return nil, fmt.Errorf("disc: snapshot version %d not supported (want %d)", ps.Version, snapshotVersion)
	}
	if err := ps.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("disc: snapshot carries invalid config: %w", err)
	}
	e := New(ps.Cfg)
	e.useMSBFS = ps.UseMSBFS
	e.useEpoch = ps.UseEpoch
	if ps.Workers > 0 {
		e.workers = ps.Workers
	}
	e.nextCID = ps.NextCID
	e.stride = ps.Stride
	e.stats = ps.Stats
	ids := make([]int64, 0, len(ps.Points))
	pos := make([]geom.Vec, 0, len(ps.Points))
	for _, pp := range ps.Points {
		if _, dup := e.pts[pp.ID]; dup {
			return nil, fmt.Errorf("disc: snapshot contains duplicate point id %d", pp.ID)
		}
		e.pts[pp.ID] = &pstate{
			pos: pp.Pos, n: pp.N, coreDeg: pp.CoreDeg,
			cid: pp.CID, hint: pp.Hint, label: pp.Label, wasCore: pp.WasCore,
		}
		ids = append(ids, pp.ID)
		pos = append(pos, pp.Pos)
	}
	// Border hints are dereferenced on every query; validate them now so a
	// corrupt or hand-edited snapshot surfaces as a load error instead of a
	// degraded (self-healed) assignment at some later query.
	for id, st := range e.pts {
		if st.label != model.Border {
			continue
		}
		if st.hint == noHint {
			return nil, fmt.Errorf("disc: snapshot border point %d carries no hint", id)
		}
		if _, ok := e.pts[st.hint]; !ok {
			return nil, fmt.Errorf("disc: snapshot border point %d hints at absent point %d", id, st.hint)
		}
	}
	switch indexKind(ps.IndexKind) {
	case indexGrid:
		e.indexKind = indexGrid
		e.gridSide = ps.GridSide
		e.tree = newGridIndex(ps.Cfg.Dims, ps.GridSide)
	case indexKDTree:
		e.indexKind = indexKDTree
		e.tree = newKDIndex(ps.Cfg.Dims)
	default:
		e.tree = rtree.New(ps.Cfg.Dims)
	}
	e.tree.BulkLoad(ids, pos)
	// Restore the persisted strategy through its own option so the forest is
	// allocated too; caller options run after and may override it.
	WithConnectivity(ConnStrategy(ps.ConnStrategy))(e)
	for _, o := range opts {
		o(e)
	}
	if e.connStrategy == ConnDynamic {
		// The forest is never serialized; rebuild it from the restored
		// window so the first Advance finds it in sync.
		e.rebuildForest()
	}
	return e, nil
}
