// Package model defines the data types shared by every clustering engine in
// this repository: stream points, the core/border/noise labeling of
// density-based clustering, per-point assignments, the common Engine
// interface each algorithm implements, and the work counters the DISC
// evaluation reports.
package model

import (
	"fmt"
	"math"

	"disc/internal/geom"
)

// Point is one stream record: a unique id, a position in up-to-4-dimensional
// space, and an arrival timestamp (used by time-based windows; count-based
// windows rely on slice order only).
type Point struct {
	ID   int64
	Pos  geom.Vec
	Time int64
}

// Label is the density-based category of a point, following Ester et al.
type Label uint8

const (
	// Unclassified marks a point that entered the window but has not been
	// labeled yet (transient, only visible mid-update).
	Unclassified Label = iota
	// Core marks a point with at least τ points (itself included) within ε.
	Core
	// Border marks a non-core point within ε of at least one core.
	Border
	// Noise marks a point that is neither core nor border.
	Noise
	// Deleted marks a point that left the window but is still referenced by
	// in-flight bookkeeping (e.g. ex-cores kept in the R-tree during CLUSTER).
	Deleted
)

// String returns the lower-case name of the label.
func (l Label) String() string {
	switch l {
	case Unclassified:
		return "unclassified"
	case Core:
		return "core"
	case Border:
		return "border"
	case Noise:
		return "noise"
	case Deleted:
		return "deleted"
	default:
		return fmt.Sprintf("label(%d)", uint8(l))
	}
}

// NoCluster is the ClusterID of noise and unclassified points.
const NoCluster = 0

// Assignment is the clustering outcome for one point.
type Assignment struct {
	Label     Label
	ClusterID int // NoCluster for noise
}

// Stats counts the work an engine performed since its last ResetStats.
// RangeSearches is the metric Fig. 7 of the paper reports; the rest aid
// drill-down analysis.
type Stats struct {
	RangeSearches int64 // ε-range queries issued against the spatial index
	NodeAccesses  int64 // index nodes touched by those queries
	Strides       int64 // window advances processed
	Splits        int64 // cluster splits detected
	Merges        int64 // cluster merges performed
	MemoryItems   int64 // engine-specific resident bookkeeping entries (EXTRA-N's sub-window records, micro-cluster counts, ...)
}

// Add accumulates other into s. Flow counters (searches, accesses,
// strides, splits, merges) sum; MemoryItems does NOT — it is a level, the
// resident bookkeeping high-water mark, so Add keeps the maximum of the
// two sides. Summing it across strides or engines would double-count state
// that stayed resident the whole time (and would break DNF memory-cap
// checks, which compare against a peak, not a total).
func (s *Stats) Add(other Stats) {
	s.RangeSearches += other.RangeSearches
	s.NodeAccesses += other.NodeAccesses
	s.Strides += other.Strides
	s.Splits += other.Splits
	s.Merges += other.Merges
	if other.MemoryItems > s.MemoryItems {
		s.MemoryItems = other.MemoryItems
	}
}

// Engine is the interface every clustering algorithm in this repository
// implements. An engine maintains the clustering of the points currently in
// the sliding window; Advance applies one window slide.
type Engine interface {
	// Name identifies the algorithm ("DISC", "DBSCAN", ...).
	Name() string
	// Advance slides the window: out lists the points leaving, in the points
	// entering. Engines without deletion support (summarization-based ones)
	// ignore out.
	Advance(in, out []Point)
	// Assignment returns the current labeling of the point with the given
	// id, and whether the engine is tracking it.
	Assignment(id int64) (Assignment, bool)
	// Snapshot returns the labeling of every tracked point. The returned map
	// is owned by the caller.
	Snapshot() map[int64]Assignment
	// Stats returns work counters accumulated since the last ResetStats.
	Stats() Stats
	// ResetStats zeroes the work counters.
	ResetStats()
}

// Config carries the two DBSCAN thresholds shared by all engines plus the
// dimensionality of the data.
type Config struct {
	Dims   int     // number of active dimensions (1..geom.MaxDims)
	Eps    float64 // ε distance threshold
	MinPts int     // τ density threshold, counting the point itself
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Dims < 1 || c.Dims > geom.MaxDims {
		return fmt.Errorf("model: Dims must be in [1,%d], got %d", geom.MaxDims, c.Dims)
	}
	// The NaN check must be explicit: NaN <= 0 is false, so a bare
	// positivity test would wave a NaN ε through to poison every distance
	// comparison downstream. +Inf passes the same test and turns the
	// clustering into one all-absorbing component, so ε must be finite.
	if math.IsNaN(c.Eps) || math.IsInf(c.Eps, 0) || c.Eps <= 0 {
		return fmt.Errorf("model: Eps must be positive and finite, got %g", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("model: MinPts must be at least 1, got %d", c.MinPts)
	}
	return nil
}
