package model

import (
	"math"
	"strings"
	"testing"
)

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		Unclassified: "unclassified",
		Core:         "core",
		Border:       "border",
		Noise:        "noise",
		Deleted:      "deleted",
		Label(99):    "label(99)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Dims: 2, Eps: 1.5, MinPts: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Dims: 0, Eps: 1, MinPts: 1},
		{Dims: 5, Eps: 1, MinPts: 1},
		{Dims: 2, Eps: 0, MinPts: 1},
		{Dims: 2, Eps: -1, MinPts: 1},
		{Dims: 2, Eps: 1, MinPts: 0},
		// NaN slips past a bare `Eps <= 0` check (NaN <= 0 is false), and
		// ±Inf passes positivity; all three must be rejected explicitly.
		{Dims: 2, Eps: math.NaN(), MinPts: 1},
		{Dims: 2, Eps: math.Inf(1), MinPts: 1},
		{Dims: 2, Eps: math.Inf(-1), MinPts: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestConfigValidateMessages(t *testing.T) {
	err := Config{Dims: 9, Eps: 1, MinPts: 1}.Validate()
	if err == nil || !strings.Contains(err.Error(), "Dims") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{RangeSearches: 1, NodeAccesses: 2, Strides: 3, Splits: 4, Merges: 5, MemoryItems: 10}
	b := Stats{RangeSearches: 10, NodeAccesses: 20, Strides: 30, Splits: 40, Merges: 50, MemoryItems: 5}
	a.Add(b)
	want := Stats{RangeSearches: 11, NodeAccesses: 22, Strides: 33, Splits: 44, Merges: 55, MemoryItems: 10}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	// MemoryItems takes the max, not the sum.
	a.Add(Stats{MemoryItems: 100})
	if a.MemoryItems != 100 {
		t.Fatalf("MemoryItems = %d, want 100", a.MemoryItems)
	}
}

// TestStatsAddMemoryItemsIsLevel pins the documented Add contract: folding
// per-stride snapshots that each report the same resident footprint must
// yield that footprint (a peak), never a multiple of it (a total).
func TestStatsAddMemoryItemsIsLevel(t *testing.T) {
	var total Stats
	for i := 0; i < 10; i++ {
		total.Add(Stats{Strides: 1, MemoryItems: 4000})
	}
	if total.Strides != 10 {
		t.Fatalf("Strides = %d, want 10 (flow counters sum)", total.Strides)
	}
	if total.MemoryItems != 4000 {
		t.Fatalf("MemoryItems = %d, want 4000 (levels keep the max)", total.MemoryItems)
	}
}
