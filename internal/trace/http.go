package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// traceJSON is the wire shape of one trace at GET /debug/traces.
type traceJSON struct {
	TraceID    string     `json:"trace_id"`
	Start      time.Time  `json:"start"`
	DurationUS int64      `json:"duration_us"`
	Slow       bool       `json:"slow"`
	Remote     bool       `json:"remote,omitempty"`
	Root       string     `json:"root,omitempty"`
	Spans      []spanJSON `json:"spans"`
}

type spanJSON struct {
	ID         string         `json:"id"`
	Parent     string         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Handler serves the resident rings as JSON, newest first.
//
//	GET /debug/traces?min=5ms&slow=1&limit=20&trace=<32 hex>
//
// min filters by total trace duration (any time.ParseDuration string),
// slow=1 keeps only slow-ring captures, trace selects one id, and limit
// caps the result count. Span start offsets are microseconds relative to
// the trace start, which keeps the payload free of 25-byte timestamps
// per span.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		var min time.Duration
		if s := q.Get("min"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "bad min: "+err.Error(), http.StatusBadRequest)
				return
			}
			min = d
		}
		limit := 0
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		slowOnly := q.Get("slow") == "1" || q.Get("slow") == "true"
		wantID := q.Get("trace")

		all := t.Snapshot()
		out := make([]traceJSON, 0, len(all))
		for i := range all {
			d := &all[i]
			if d.Duration < min {
				continue
			}
			if slowOnly && !d.Slow {
				continue
			}
			if wantID != "" && d.TraceID.String() != wantID {
				continue
			}
			out = append(out, renderTrace(d))
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Traces []traceJSON `json:"traces"`
		}{out}) //nolint:errcheck // client gone; nothing to do
	})
}

// WriteJSON renders the resident traces (optionally only slow ones) to w
// — the offline path used by discbench to dump slow-stride exemplars.
func (t *Tracer) WriteJSON(w interface{ Write([]byte) (int, error) }, slowOnly bool) error {
	all := t.Snapshot()
	out := make([]traceJSON, 0, len(all))
	for i := range all {
		if slowOnly && !all[i].Slow {
			continue
		}
		out = append(out, renderTrace(&all[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Traces []traceJSON `json:"traces"`
	}{out})
}

func renderTrace(d *TraceData) traceJSON {
	tj := traceJSON{
		TraceID:    d.TraceID.String(),
		Start:      d.Start,
		DurationUS: d.Duration.Microseconds(),
		Slow:       d.Slow,
		Remote:     d.Remote,
		Root:       d.Root(),
		Spans:      make([]spanJSON, len(d.Spans)),
	}
	for i := range d.Spans {
		s := &d.Spans[i]
		sj := spanJSON{
			ID:         strconv.FormatUint(s.SpanID, 16),
			Name:       s.Name,
			StartUS:    s.Start.Sub(d.Start).Microseconds(),
			DurationUS: s.Duration().Microseconds(),
		}
		if s.ParentID != 0 {
			sj.Parent = strconv.FormatUint(s.ParentID, 16)
		}
		if len(s.Attrs) > 0 {
			sj.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				if a.IsStr {
					sj.Attrs[a.Key] = a.Str
				} else {
					sj.Attrs[a.Key] = a.Int
				}
			}
		}
		tj.Spans[i] = sj
	}
	return tj
}
