// Package trace is a stdlib-only, allocation-conscious span recorder for
// following one ingest batch through the full write path: HTTP handler →
// slider advance → COLLECT/CLUSTER fan-out → view publish → checkpoint
// write. It is deliberately not OpenTelemetry: there is no exporter, no
// sampler tree, no context.Context plumbing through the hot loop. A Trace
// is a mutex-guarded span list owned by one request; completed traces land
// in fixed-size ring buffers (a "recent" ring plus a "slow" ring that
// retains strides exceeding a latency threshold) and are served as JSON
// from GET /debug/traces.
//
// The concurrency contract mirrors the engine's observer seam from the
// telemetry layer: every hook in the hot path is guarded by a single
// nil-check, so an unattached recorder costs one predictable branch and
// zero allocations. Span and Trace objects are pooled like the MS-BFS
// scratch buffers — rings recycle evicted traces, and a recycled trace
// keeps its span capacity, so steady-state tracing settles into a fixed
// working set.
//
// W3C trace context: ParseTraceparent accepts the `traceparent` request
// header (version 00), so client batches propagate their trace id into the
// recorded spans and can look their slow strides up by id afterwards.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte W3C trace id. The zero value is invalid (per spec,
// all-zero trace ids must be rejected), which lets SpanContext use it as
// the "no inherited context" sentinel.
type TraceID [16]byte

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string {
	return hex.EncodeToString(id[:])
}

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool {
	return id == TraceID{}
}

// randSeq perturbs generated trace ids so that a (vanishingly unlikely)
// crypto/rand failure still yields distinct ids within a process.
var randSeq atomic.Uint64

// NewTraceID returns a random trace id. crypto/rand failures degrade to a
// process-local counter rather than panicking: trace ids guard debugging
// visibility, not security.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		binary.BigEndian.PutUint64(id[8:], randSeq.Add(1))
		id[0] = 0xd1 // non-zero marker: degraded id
	}
	return id
}

// SpanContext identifies a parent for a new trace fragment: the trace to
// join and the span to hang the fragment's root under. The zero value
// means "no inherited context"; StartTrace then mints a fresh trace id.
type SpanContext struct {
	TraceID TraceID
	SpanID  uint64
}

// Valid reports whether the context carries a usable trace id.
func (c SpanContext) Valid() bool { return !c.TraceID.IsZero() }

// Attr is one key/value span attribute. Values are either int64 or string
// — the two shapes the write path actually produces (counts and names) —
// held inline so attaching an attribute never allocates an interface box.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsStr selects which value field is live.
	IsStr bool
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Int: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// Span is one timed segment of a trace. Spans are created via
// Trace.StartSpan and closed with End/EndAt; between those two calls the
// span is owned by the goroutine that started it, so attribute appends
// need no locking. After Tracer.Finish the span is read-only until its
// trace is evicted from the rings and recycled.
type Span struct {
	Name     string
	SpanID   uint64
	ParentID uint64
	Start    time.Time
	End      time.Time
	Attrs    []Attr
}

// EndAt closes the span at the given instant. Using a caller-supplied
// timestamp lets the engine reuse the phase boundary clock reads it
// already takes for the observer, so tracing adds no time.Now calls to
// the stride path. Nil-safe: a no-op on a nil span.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.End = t
}

// EndNow closes the span at time.Now(). Nil-safe.
func (s *Span) EndNow() {
	if s == nil {
		return
	}
	s.End = time.Now()
}

// SetInt appends an integer attribute. Nil-safe. Only the goroutine that
// started the span may call this, and only before End.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Int(key, v))
}

// SetStr appends a string attribute under the same rules as SetInt.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Str(key, v))
}

// ID returns the span's id, 0 for nil. The id is unique within its trace
// fragment, not globally.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.SpanID
}

// Duration returns End−Start, or 0 when the span is still open.
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is one in-flight trace fragment: a span list plus the id counter
// that names new spans. StartSpan is mutex-guarded so parallel fan-out
// workers can open per-worker spans concurrently; everything else (Finish,
// JSON rendering) happens after those workers are joined.
//
// A fragment either starts a new trace (zero SpanContext) or joins an
// existing one (same TraceID, roots parented under SpanContext.SpanID).
// The checkpoint runner uses the latter: its asynchronous write becomes a
// late fragment of the stride's ingest trace, merged by id when it
// finishes.
type Trace struct {
	id TraceID
	// parentID is the inherited parent span id (from a traceparent header
	// or a stride SpanContext); roots started with a nil parent hang under
	// it. remote records that the parent span lives outside this process's
	// rings (W3C header), purely for JSON annotation.
	parentID uint64
	remote   bool

	mu    sync.Mutex
	spans []*Span
	// nextSpan seeds span ids for this fragment. Fragments of the same
	// trace must not collide, so ids are drawn from a 16-bit-shifted
	// fragment counter (see Tracer.StartTrace) rather than starting at 1.
	nextSpan uint64

	// ring bookkeeping, owned by the Tracer while the trace is resident.
	start time.Time
	dur   time.Duration
	slow  bool
	seq   uint64
}

// ID returns the trace id (zero for nil).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// StartSpan opens a span at time.Now(). A nil parent parents the span
// under the trace's inherited context (the W3C remote parent, or the
// stride span for checkpoint fragments), making it a root of this
// fragment. Nil-safe: returns nil on a nil trace, and the returned nil
// span absorbs End/attr calls, so call sites need only one guard.
func (t *Trace) StartSpan(name string, parent *Span, attrs ...Attr) *Span {
	return t.StartSpanAt(name, parent, time.Now(), attrs...)
}

// StartSpanAt opens a span at a caller-supplied instant (see Span.EndAt).
func (t *Trace) StartSpanAt(name string, parent *Span, at time.Time, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	pid := t.parentID
	if parent != nil {
		pid = parent.SpanID
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	// Reuse the pooled Span slots below cap before growing, mirroring the
	// engine's resetDeltas idiom: a recycled trace re-fills the same Span
	// objects instead of allocating.
	n := len(t.spans)
	var s *Span
	if n < cap(t.spans) {
		t.spans = t.spans[:n+1]
		if t.spans[n] == nil {
			t.spans[n] = new(Span)
		}
		s = t.spans[n]
	} else {
		s = new(Span)
		t.spans = append(t.spans, s)
	}
	s.Name = name
	s.SpanID = id
	s.ParentID = pid
	s.Start = at
	s.End = time.Time{}
	s.Attrs = append(s.Attrs[:0], attrs...)
	t.mu.Unlock()
	return s
}

// Context returns a SpanContext that continues this trace under the given
// span (or under the fragment's inherited parent when sp is nil). Safe on
// a nil trace, returning the zero context.
func (t *Trace) Context(sp *Span) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	id := t.parentID
	if sp != nil {
		id = sp.SpanID
	}
	return SpanContext{TraceID: t.id, SpanID: id}
}

// reset prepares a recycled trace for reuse, keeping span capacity but
// dropping span pointers is NOT done here: the spans still belong to this
// trace object, so they stay in the slice beyond len and are re-filled by
// StartSpanAt.
func (t *Trace) reset() {
	t.id = TraceID{}
	t.parentID = 0
	t.remote = false
	t.spans = t.spans[:0]
	t.nextSpan = 0
	t.start = time.Time{}
	t.dur = 0
	t.slow = false
	t.seq = 0
}

// disown clears the span pointers out of a fragment whose spans were
// transferred to another resident trace during a ring merge, so recycling
// the fragment cannot alias spans the ring still serves.
func (t *Trace) disown() {
	for i := range t.spans {
		t.spans[i] = nil
	}
	t.spans = t.spans[:0]
}
