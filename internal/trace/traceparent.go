package trace

import (
	"encoding/hex"
	"strconv"
)

// ParseTraceparent extracts a SpanContext from a W3C traceparent header:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// version(2) "-" trace-id(32) "-" parent-id(16) "-" flags(2), lowercase
// hex. Malformed headers, unknown versions, and the all-zero trace or
// parent ids return the zero (invalid) context: the server then starts a
// fresh trace rather than rejecting the batch — propagation is an
// assist, never a gate.
func ParseTraceparent(h string) SpanContext {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}
	}
	// Version: two lowercase hex digits, 0xff forbidden by spec. Accept
	// future versions (>00) as long as the 00 prefix fields parse, per
	// the spec's forward-compatibility rule, but then ignore any suffix.
	if !isHexLower(h[0:2]) || h[0:2] == "ff" {
		return SpanContext{}
	}
	if h[0:2] == "00" && len(h) != 55 {
		return SpanContext{}
	}
	var ctx SpanContext
	if !isHexLower(h[3:35]) {
		return SpanContext{}
	}
	if _, err := hex.Decode(ctx.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}
	}
	if !isHexLower(h[36:52]) {
		return SpanContext{}
	}
	parent, err := strconv.ParseUint(h[36:52], 16, 64)
	if err != nil || parent == 0 {
		return SpanContext{}
	}
	if !isHexLower(h[53:55]) {
		return SpanContext{}
	}
	if ctx.TraceID.IsZero() {
		return SpanContext{}
	}
	ctx.SpanID = parent
	return ctx
}

// FormatTraceparent renders a version-00 traceparent header for ctx with
// the sampled flag set. Load generators use it to stamp outgoing batches
// so slow requests can be found in /debug/traces afterwards.
func FormatTraceparent(ctx SpanContext) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hexAppend(b, ctx.TraceID[:])
	b = append(b, '-')
	var sp [8]byte
	for i := 0; i < 8; i++ {
		sp[i] = byte(ctx.SpanID >> (8 * (7 - i)))
	}
	b = hexAppend(b, sp[:])
	b = append(b, "-01"...)
	return string(b)
}

func hexAppend(dst, src []byte) []byte {
	const digits = "0123456789abcdef"
	for _, c := range src {
		dst = append(dst, digits[c>>4], digits[c&0xf])
	}
	return dst
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
