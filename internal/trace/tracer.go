package trace

import (
	"sync"
	"time"
)

// Defaults for NewTracer sizing; chosen so a tracer's steady-state
// footprint stays a few hundred KB even with deep per-worker span trees.
const (
	// DefRecent is the default capacity of the recent-trace ring.
	DefRecent = 64
	// DefSlow is the default capacity of the slow-trace ring.
	DefSlow = 32
	// maxFree caps the recycled-trace free list.
	maxFree = 32
	// fragShift spaces span-id ranges between fragments of one trace, so
	// a checkpoint fragment joining a stride trace cannot collide with the
	// ids already issued by the ingest fragment.
	fragShift = 20
)

// Tracer owns the completed-trace rings and the trace/span pools. All
// methods are safe for concurrent use; a nil *Tracer is a valid
// "recording disabled" tracer whose StartTrace returns nil, which the
// nil-safe Trace/Span methods then absorb.
type Tracer struct {
	slowThresh time.Duration

	mu     sync.Mutex
	recent ring
	slow   ring
	seq    uint64 // insertion order, for newest-first serving
	frag   uint64 // fragment counter, spaces span-id ranges
	free   []*Trace
}

// ring is a fixed-capacity circular buffer of resident traces.
type ring struct {
	buf  []*Trace
	next int // index of the slot the next insert overwrites
	n    int // live count
}

func (r *ring) init(capacity int) { r.buf = make([]*Trace, capacity) }

// push inserts tr, returning the evicted trace (nil when the ring still
// had room).
func (r *ring) push(tr *Trace) *Trace {
	old := r.buf[r.next]
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
		return nil
	}
	return old
}

// find returns the resident trace with the given id, or nil.
func (r *ring) find(id TraceID) *Trace {
	for _, tr := range r.buf {
		if tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// Config sizes a Tracer.
type Config struct {
	// Recent is the recent-ring capacity; <=0 means DefRecent.
	Recent int
	// Slow is the slow-ring capacity; <=0 means DefSlow.
	Slow int
	// SlowThreshold marks a finished trace as slow (retained in the slow
	// ring and surfaced to the stride log) when its root duration meets
	// it. <=0 disables slow capture.
	SlowThreshold time.Duration
}

// NewTracer builds a tracer with the given ring sizes and slow threshold.
func NewTracer(cfg Config) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = DefRecent
	}
	if cfg.Slow <= 0 {
		cfg.Slow = DefSlow
	}
	t := &Tracer{slowThresh: cfg.SlowThreshold}
	t.recent.init(cfg.Recent)
	t.slow.init(cfg.Slow)
	return t
}

// SlowThreshold returns the configured slow-capture threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slowThresh
}

// StartTrace begins a trace fragment. A zero ctx mints a fresh trace id;
// a valid ctx joins the identified trace (the fragment's root spans hang
// under ctx.SpanID, and Finish merges the fragment into the resident
// trace with the same id, if any). Nil-safe: returns nil on a nil tracer.
func (t *Tracer) StartTrace(ctx SpanContext) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.frag++
	frag := t.frag
	var tr *Trace
	if n := len(t.free); n > 0 {
		tr = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	}
	t.mu.Unlock()
	if tr == nil {
		tr = new(Trace)
	}
	if ctx.Valid() {
		tr.id = ctx.TraceID
		tr.parentID = ctx.SpanID
		tr.remote = true
	} else {
		tr.id = NewTraceID()
	}
	tr.nextSpan = frag << fragShift
	tr.start = time.Now()
	return tr
}

// Finish completes a fragment: computes its duration from its spans,
// decides slowness, and installs it in the rings — merging into an
// already-resident trace with the same id when one exists (the checkpoint
// fragment path). It returns the trace id and whether the trace is now
// considered slow, so callers can stamp slow-stride exemplars. The
// fragment must not be used after Finish. Nil-safe on both receiver and
// argument.
//
// Callers must end all spans (and join any worker goroutines that opened
// spans) before calling Finish; the tracer's mutex then publishes the
// span data to /debug/traces readers.
func (t *Tracer) Finish(tr *Trace) (id TraceID, slow bool) {
	if t == nil || tr == nil {
		return TraceID{}, false
	}
	// Duration: prefer the fragment's first root span (start→end covers
	// the whole request); fall back to wall time since StartTrace.
	dur := time.Since(tr.start)
	if len(tr.spans) > 0 && !tr.spans[0].End.IsZero() {
		dur = tr.spans[0].End.Sub(tr.spans[0].Start)
	}
	id = tr.id
	tr.dur = dur
	tr.slow = t.slowThresh > 0 && dur >= t.slowThresh

	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	tr.seq = t.seq

	// Merge path: a resident trace with the same id adopts this
	// fragment's spans. The fragment then recycles WITHOUT its spans
	// (disown) so the ring never serves aliased, reused span objects.
	if host := t.findLocked(id); host != nil {
		host.spans = append(host.spans, tr.spans...)
		host.seq = t.seq // refreshed: merged traces are news again
		if end := tr.start.Add(dur); end.After(host.start) {
			host.dur = end.Sub(host.start)
		}
		tr.disown()
		t.recycleLocked(tr)
		return id, host.slow
	}

	slow = tr.slow
	var evicted *Trace
	if slow {
		evicted = t.slow.push(tr)
	} else {
		evicted = t.recent.push(tr)
	}
	if evicted != nil {
		t.recycleLocked(evicted)
	}
	return id, slow
}

func (t *Tracer) findLocked(id TraceID) *Trace {
	if tr := t.recent.find(id); tr != nil {
		return tr
	}
	return t.slow.find(id)
}

func (t *Tracer) recycleLocked(tr *Trace) {
	tr.reset()
	if len(t.free) < maxFree {
		t.free = append(t.free, tr)
	}
}

// Snapshot copies out the resident traces, newest first, for rendering.
// Each entry is deep-copied under the tracer mutex so callers can encode
// without racing ring eviction.
func (t *Tracer) Snapshot() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceData, 0, t.recent.n+t.slow.n)
	for _, r := range []*ring{&t.recent, &t.slow} {
		for _, tr := range r.buf {
			if tr != nil {
				out = append(out, snapshotTrace(tr))
			}
		}
	}
	// Newest first by insertion sequence.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].seq > out[j-1].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TraceData is an immutable copy of one resident trace.
type TraceData struct {
	TraceID  TraceID
	Start    time.Time
	Duration time.Duration
	Slow     bool
	Remote   bool
	Spans    []Span
	seq      uint64
}

// Root returns the first root span's name, or "".
func (d *TraceData) Root() string {
	for i := range d.Spans {
		if d.Spans[i].ParentID == 0 || !d.hasSpan(d.Spans[i].ParentID) {
			return d.Spans[i].Name
		}
	}
	return ""
}

func (d *TraceData) hasSpan(id uint64) bool {
	for i := range d.Spans {
		if d.Spans[i].SpanID == id {
			return true
		}
	}
	return false
}

func snapshotTrace(tr *Trace) TraceData {
	d := TraceData{
		TraceID:  tr.id,
		Start:    tr.start,
		Duration: tr.dur,
		Slow:     tr.slow,
		Remote:   tr.remote,
		Spans:    make([]Span, len(tr.spans)),
		seq:      tr.seq,
	}
	for i, s := range tr.spans {
		d.Spans[i] = *s
		if len(s.Attrs) > 0 {
			d.Spans[i].Attrs = append([]Attr(nil), s.Attrs...)
		}
	}
	return d
}
