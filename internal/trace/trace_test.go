package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// finishOne records a single-span trace with the given duration.
func finishOne(t *Tracer, name string, dur time.Duration) TraceID {
	tr := t.StartTrace(SpanContext{})
	sp := tr.StartSpan(name, nil)
	sp.EndAt(sp.Start.Add(dur))
	id, _ := t.Finish(tr)
	return id
}

func TestNilTracerAndSpansAreNoOps(t *testing.T) {
	var tc *Tracer
	tr := tc.StartTrace(SpanContext{})
	if tr != nil {
		t.Fatalf("nil tracer StartTrace = %v, want nil", tr)
	}
	sp := tr.StartSpan("x", nil, Int("k", 1))
	if sp != nil {
		t.Fatalf("nil trace StartSpan = %v, want nil", sp)
	}
	// All of these must be silent no-ops.
	sp.EndNow()
	sp.EndAt(time.Now())
	sp.SetInt("k", 2)
	sp.SetStr("s", "v")
	if got := sp.ID(); got != 0 {
		t.Fatalf("nil span ID = %d", got)
	}
	if ctx := tr.Context(sp); ctx.Valid() {
		t.Fatalf("nil trace Context valid")
	}
	if id, slow := tc.Finish(tr); !id.IsZero() || slow {
		t.Fatalf("nil Finish = %v %v", id, slow)
	}
	if s := tc.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot = %v", s)
	}
}

func TestRingWraparoundNewestFirst(t *testing.T) {
	tc := NewTracer(Config{Recent: 4, Slow: 2})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		ids = append(ids, finishOne(tc, fmt.Sprintf("t%d", i), time.Millisecond))
	}
	snap := tc.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("resident traces = %d, want ring capacity 4", len(snap))
	}
	// Newest first: t9, t8, t7, t6.
	for i, want := range []int{9, 8, 7, 6} {
		if snap[i].TraceID != ids[want] {
			t.Errorf("snap[%d] = %s (root %q), want trace %d", i, snap[i].TraceID, snap[i].Root(), want)
		}
		if wantName := fmt.Sprintf("t%d", want); snap[i].Root() != wantName {
			t.Errorf("snap[%d] root = %q, want %q", i, snap[i].Root(), wantName)
		}
	}
}

func TestSlowRingRetainsSlowTraces(t *testing.T) {
	tc := NewTracer(Config{Recent: 2, Slow: 4, SlowThreshold: 10 * time.Millisecond})
	slowID := finishOne(tc, "slow", 50*time.Millisecond)
	// Flood the recent ring: the slow capture must survive.
	for i := 0; i < 8; i++ {
		finishOne(tc, "fast", time.Millisecond)
	}
	snap := tc.Snapshot()
	var found *TraceData
	for i := range snap {
		if snap[i].TraceID == slowID {
			found = &snap[i]
		}
	}
	if found == nil {
		t.Fatalf("slow trace evicted by fast traffic; snapshot has %d traces", len(snap))
	}
	if !found.Slow {
		t.Fatalf("slow trace not marked slow")
	}
	if found.Duration < 10*time.Millisecond {
		t.Fatalf("slow duration = %v", found.Duration)
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	tc := NewTracer(Config{Recent: 8, Slow: 4, SlowThreshold: time.Nanosecond})
	const writers = 8
	const perWriter = 50
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers exercising Snapshot and the HTTP handler while
	// the rings churn.
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			h := tc.Handler()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tc.Snapshot()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min=1ns", nil))
				if rec.Code != 200 {
					t.Errorf("handler status %d", rec.Code)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				tr := tc.StartTrace(SpanContext{})
				root := tr.StartSpan("root", nil, Int("writer", w))
				// Concurrent child spans on ONE trace, as the engine's
				// fan-out workers produce them.
				var cwg sync.WaitGroup
				for c := 0; c < 4; c++ {
					cwg.Add(1)
					go func(c int) {
						defer cwg.Done()
						sp := tr.StartSpan("worker", root, Int("c", c))
						sp.SetInt("items", c*2)
						sp.EndNow()
					}(c)
				}
				cwg.Wait()
				root.EndNow()
				tc.Finish(tr)
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	// All traces complete; validate structure of survivors.
	snap := tc.Snapshot()
	if len(snap) == 0 {
		t.Fatalf("no resident traces after %d writes", writers*perWriter)
	}
	for _, d := range snap {
		if len(d.Spans) != 5 {
			t.Fatalf("trace has %d spans, want 5", len(d.Spans))
		}
		rootID := uint64(0)
		for i := range d.Spans {
			if d.Spans[i].Name == "root" {
				rootID = d.Spans[i].SpanID
			}
		}
		if rootID == 0 {
			t.Fatalf("no root span in %s", d.TraceID)
		}
		for i := range d.Spans {
			if d.Spans[i].Name == "worker" && d.Spans[i].ParentID != rootID {
				t.Fatalf("worker span parent = %d, want %d", d.Spans[i].ParentID, rootID)
			}
		}
	}
}

func TestHandlerMinDurationFilterAndLimit(t *testing.T) {
	tc := NewTracer(Config{Recent: 16, Slow: 4})
	finishOne(tc, "fast", 100*time.Microsecond)
	finishOne(tc, "mid", 5*time.Millisecond)
	finishOne(tc, "slow", 80*time.Millisecond)

	get := func(url string) (int, []traceJSON) {
		rec := httptest.NewRecorder()
		tc.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body struct {
			Traces []traceJSON `json:"traces"`
		}
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
			}
		}
		return rec.Code, body.Traces
	}

	if code, all := get("/debug/traces"); code != 200 || len(all) != 3 {
		t.Fatalf("unfiltered: code %d, %d traces, want 3", code, len(all))
	}
	code, filtered := get("/debug/traces?min=1ms")
	if code != 200 || len(filtered) != 2 {
		t.Fatalf("min=1ms: code %d, %d traces, want 2 (mid+slow)", code, len(filtered))
	}
	// Newest-first ordering within the filtered set.
	if filtered[0].Root != "slow" || filtered[1].Root != "mid" {
		t.Fatalf("order = %q, %q; want slow, mid", filtered[0].Root, filtered[1].Root)
	}
	if _, lim := get("/debug/traces?min=1ms&limit=1"); len(lim) != 1 || lim[0].Root != "slow" {
		t.Fatalf("limit=1 returned %d traces", len(lim))
	}
	if code, _ := get("/debug/traces?min=banana"); code != 400 {
		t.Fatalf("bad min: code %d, want 400", code)
	}
	if code, _ := get("/debug/traces?limit=-1"); code != 400 {
		t.Fatalf("bad limit: code %d, want 400", code)
	}
}

func TestFinishMergesFragmentsByTraceID(t *testing.T) {
	tc := NewTracer(Config{Recent: 8, Slow: 4})

	// Stride fragment: ingest → advance.
	tr := tc.StartTrace(SpanContext{})
	ingest := tr.StartSpan("ingest", nil)
	adv := tr.StartSpan("advance", ingest)
	adv.EndNow()
	ingest.EndNow()
	ctx := tr.Context(ingest)
	id, _ := tc.Finish(tr)

	// Late checkpoint fragment joins by SpanContext, like the ckpt runner.
	frag := tc.StartTrace(ctx)
	ck := frag.StartSpan("checkpoint", nil, Int("generation", 3))
	ck.EndNow()
	fid, _ := tc.Finish(frag)
	if fid != id {
		t.Fatalf("fragment trace id = %s, want %s", fid, id)
	}

	snap := tc.Snapshot()
	var merged *TraceData
	for i := range snap {
		if snap[i].TraceID == id {
			if merged != nil {
				t.Fatalf("trace %s resident twice", id)
			}
			merged = &snap[i]
		}
	}
	if merged == nil {
		t.Fatalf("merged trace not resident")
	}
	if len(merged.Spans) != 3 {
		t.Fatalf("merged spans = %d, want 3", len(merged.Spans))
	}
	var ingestID uint64
	byName := map[string]*Span{}
	for i := range merged.Spans {
		byName[merged.Spans[i].Name] = &merged.Spans[i]
		if merged.Spans[i].Name == "ingest" {
			ingestID = merged.Spans[i].SpanID
		}
	}
	if byName["advance"].ParentID != ingestID {
		t.Fatalf("advance parent = %d, want ingest %d", byName["advance"].ParentID, ingestID)
	}
	if byName["checkpoint"].ParentID != ingestID {
		t.Fatalf("checkpoint parent = %d, want ingest %d", byName["checkpoint"].ParentID, ingestID)
	}
	// Span ids must not collide across fragments.
	seen := map[uint64]bool{}
	for i := range merged.Spans {
		if seen[merged.Spans[i].SpanID] {
			t.Fatalf("duplicate span id %d after merge", merged.Spans[i].SpanID)
		}
		seen[merged.Spans[i].SpanID] = true
	}
}

func TestRecycledFragmentDoesNotAliasMergedSpans(t *testing.T) {
	tc := NewTracer(Config{Recent: 8, Slow: 2})
	tr := tc.StartTrace(SpanContext{})
	root := tr.StartSpan("host", nil)
	root.EndNow()
	ctx := tr.Context(root)
	id, _ := tc.Finish(tr)

	frag := tc.StartTrace(ctx)
	frag.StartSpan("fragment-span", nil).EndNow()
	tc.Finish(frag)

	// Recycle pressure (below ring capacity, so the host trace stays
	// resident): the disowned, recycled fragment must not rewrite the
	// merged spans when its object is reused.
	for i := 0; i < 5; i++ {
		t2 := tc.StartTrace(SpanContext{})
		t2.StartSpan("churn", nil, Str("n", "x")).EndNow()
		tc.Finish(t2)
	}
	for _, d := range tc.Snapshot() {
		if d.TraceID != id {
			continue
		}
		names := map[string]bool{}
		for i := range d.Spans {
			names[d.Spans[i].Name] = true
		}
		if !names["host"] || !names["fragment-span"] {
			t.Fatalf("merged trace lost spans: %v", names)
		}
		if names["churn"] {
			t.Fatalf("recycled fragment aliased into merged trace")
		}
		return
	}
	t.Fatalf("merged trace evicted unexpectedly (capacity 8, 5 churn traces)")
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx := ParseTraceparent(valid)
	if !ctx.Valid() {
		t.Fatalf("valid header rejected")
	}
	if got := ctx.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", got)
	}
	if ctx.SpanID != 0x00f067aa0ba902b7 {
		t.Fatalf("span id = %x", ctx.SpanID)
	}

	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-", // v00 with suffix
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e47xx-00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if got := ParseTraceparent(h); got.Valid() {
			t.Errorf("ParseTraceparent(%q) = %+v, want invalid", h, got)
		}
	}

	// Future version with vendor suffix is accepted (forward compat).
	fut := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if got := ParseTraceparent(fut); !got.Valid() {
		t.Errorf("future-version header rejected")
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	want := SpanContext{TraceID: NewTraceID(), SpanID: 0xdeadbeef12345678}
	h := FormatTraceparent(want)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("formatted header %q", h)
	}
	got := ParseTraceparent(h)
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestStartSpanAtUsesSuppliedClock(t *testing.T) {
	tc := NewTracer(Config{Recent: 4, Slow: 2})
	tr := tc.StartTrace(SpanContext{})
	t0 := time.Now()
	t1 := t0.Add(7 * time.Millisecond)
	sp := tr.StartSpanAt("phase", nil, t0)
	sp.EndAt(t1)
	tc.Finish(tr)
	d := tc.Snapshot()[0]
	if d.Spans[0].Duration() != 7*time.Millisecond {
		t.Fatalf("span duration = %v, want 7ms", d.Spans[0].Duration())
	}
	if d.Duration != 7*time.Millisecond {
		t.Fatalf("trace duration = %v, want root span's 7ms", d.Duration)
	}
}

func TestTraceparentContextBecomesRemoteParent(t *testing.T) {
	tc := NewTracer(Config{Recent: 4, Slow: 2})
	ctx := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := tc.StartTrace(ctx)
	if tr.ID() != ctx.TraceID {
		t.Fatalf("trace id not inherited")
	}
	root := tr.StartSpan("ingest", nil)
	root.EndNow()
	tc.Finish(tr)
	d := tc.Snapshot()[0]
	if !d.Remote {
		t.Fatalf("remote flag not set")
	}
	if d.Spans[0].ParentID != ctx.SpanID {
		t.Fatalf("root parent = %x, want remote parent %x", d.Spans[0].ParentID, ctx.SpanID)
	}
}
