package edmstream

import (
	"math/rand"
	"testing"

	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
)

func threeBlobs(rng *rand.Rand, n int) ([]model.Point, map[int64]int) {
	truth := make(map[int64]int, n)
	pts := make([]model.Point, n)
	for i := range pts {
		b := rng.Intn(3)
		x := float64(b)*30 + rng.NormFloat64()*1.5
		y := rng.NormFloat64() * 1.5
		pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(x, y)}
		truth[int64(i)] = b + 1
	}
	return pts, truth
}

func TestSeparatedBlobsClusterWell(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data, truth := threeBlobs(rng, 3000)
	cfg := model.Config{Dims: 2, Eps: 1.5, MinPts: 5}
	eng, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(data, nil)
	ari := metrics.ARI(truth, metrics.Labels(eng.Snapshot()))
	if ari < 0.9 {
		t.Fatalf("ARI on separated blobs = %.3f, want >= 0.9", ari)
	}
	t.Logf("ARI = %.3f with %d cells", ari, eng.Cells())
}

func TestDensityPeakSeparation(t *testing.T) {
	// Two dense blobs far apart must form two clusters: the lower peak's
	// dependency distance to the higher peak exceeds DeltaCut.
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(62))
	var pts []model.Point
	for i := 0; i < 1000; i++ {
		cx := 0.0
		if i%2 == 0 {
			cx = 20
		}
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(cx+rng.NormFloat64(), rng.NormFloat64())})
	}
	eng.Advance(pts, nil)
	snap := eng.Snapshot()
	clusters := map[int]bool{}
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			clusters[a.ClusterID] = true
		}
	}
	if len(clusters) < 2 {
		t.Fatalf("found %d clusters, want >= 2 (peaks not separated)", len(clusters))
	}
	// And the two blob centers must be in different clusters.
	var a0, a20 model.Assignment
	for id, a := range snap {
		if pts[id].Pos[0] < 5 && a.ClusterID != model.NoCluster {
			a0 = a
		}
		if pts[id].Pos[0] > 15 && a.ClusterID != model.NoCluster {
			a20 = a
		}
	}
	if a0.ClusterID == a20.ClusterID {
		t.Fatal("distant blobs share one cluster")
	}
}

func TestContiguousRidgeIsOneCluster(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(63))
	var pts []model.Point
	for i := 0; i < 3000; i++ {
		pts = append(pts, model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*12, rng.NormFloat64()*0.3)})
	}
	eng.Advance(pts, nil)
	snap := eng.Snapshot()
	counts := map[int]int{}
	clustered := 0
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			counts[a.ClusterID]++
			clustered++
		}
	}
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	if maxc < clustered*8/10 {
		t.Fatalf("ridge fragmented: largest cluster %d of %d clustered points", maxc, clustered)
	}
}

func TestDepartedPointsLeaveSnapshot(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{})
	rng := rand.New(rand.NewSource(64))
	data, _ := threeBlobs(rng, 100)
	eng.Advance(data[:60], nil)
	eng.Advance(data[60:], data[:30])
	if got := len(eng.Snapshot()); got != 70 {
		t.Fatalf("snapshot size %d, want 70", got)
	}
	if _, ok := eng.Assignment(data[0].ID); ok {
		t.Fatal("departed point still assigned")
	}
}

func TestCellEviction(t *testing.T) {
	cfg := model.Config{Dims: 2, Eps: 1, MinPts: 3}
	eng, _ := New(cfg, Options{Lambda: 0.05})
	var burst []model.Point
	for i := 0; i < 10; i++ {
		burst = append(burst, model.Point{ID: int64(i), Pos: geom.NewVec(0, 0)})
	}
	eng.Advance(burst, nil)
	var far []model.Point
	for i := 0; i < 2000; i++ {
		far = append(far, model.Point{ID: int64(1000 + i), Pos: geom.NewVec(50, 50)})
	}
	eng.Advance(far, nil)
	for k := range eng.cells {
		if k[0] < 25 {
			t.Fatal("stale cell survived eviction")
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(model.Config{}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}
