// Package edmstream implements an EDMStream-style stream clustering engine
// (Gong, Zhang, Yu: PVLDB 2017): clustering by tracking the evolution of the
// "density mountain". Streaming points are summarized into cluster-cells;
// each cell depends on its nearest cell of higher density, forming a
// dependency tree (DP-tree) in the spirit of Rodriguez & Laio's density
// peaks. Cells whose dependency distance is large are density peaks and seed
// clusters; every other cell joins the cluster of its dependent.
//
// Insertion-only, with exponential decay as its forgetting mechanism — the
// paper's evaluation measures only its insertion latency and shows its ARI
// degrading once windows hold many small, fine-grained structures, because
// cell-granularity summaries cannot separate clusters whose gaps are
// comparable to the cell size, and the density ranking that drives the
// dependency tree is blurred by decay. This implementation reproduces those
// mechanics; dependencies are recomputed lazily per stride for cells whose
// density changed, with a bounded outward ring search.
package edmstream

import (
	"fmt"
	"math"
	"sort"

	"disc/internal/geom"
	"disc/internal/grid"
	"disc/internal/model"
)

// Options are the EDMStream-style tuning knobs. CellSide <= 0 selects ε.
type Options struct {
	CellSide  float64 // summarization grain; defaults to cfg.Eps
	Lambda    float64 // decay rate per point; default ln2/2000
	DeltaCut  float64 // dependency distance beyond which a cell is a density peak; default 2ε
	OutlierW  float64 // cells lighter than this read as noise; default 2
	SearchMax int     // max ring radius (in cells) for dependency search; default 8
}

func (o *Options) fill(cfg model.Config) {
	if o.CellSide <= 0 {
		o.CellSide = cfg.Eps
	}
	if o.Lambda <= 0 {
		o.Lambda = math.Ln2 / 2000
	}
	if o.DeltaCut <= 0 {
		o.DeltaCut = 2 * cfg.Eps
	}
	if o.OutlierW <= 0 {
		o.OutlierW = 2
	}
	if o.SearchMax <= 0 {
		o.SearchMax = 8
	}
}

type cell struct {
	key    grid.Key
	center geom.Vec // fixed: geometric center of the cell box
	weight float64
	last   int64

	dep     grid.Key // nearest cell with higher density
	hasDep  bool
	depDist float64
	cid     int // cluster id, rebuilt per stride
}

// Engine implements model.Engine for the EDMStream-style method.
type Engine struct {
	cfg   model.Config
	opt   Options
	cells map[grid.Key]*cell
	now   int64

	assign map[int64]grid.Key // point id -> cell
	stats  model.Stats
}

// New returns an EDMStream-style engine.
func New(cfg model.Config, opt Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.fill(cfg)
	return &Engine{
		cfg:    cfg,
		opt:    opt,
		cells:  make(map[grid.Key]*cell),
		assign: make(map[int64]grid.Key),
	}, nil
}

// Name implements model.Engine.
func (e *Engine) Name() string { return "EDMStream" }

func (e *Engine) keyOf(pos geom.Vec) grid.Key {
	var k grid.Key
	for d := 0; d < e.cfg.Dims; d++ {
		k[d] = int32(math.Floor(pos[d] / e.opt.CellSide))
	}
	return k
}

func (e *Engine) centerOf(k grid.Key) geom.Vec {
	var c geom.Vec
	for d := 0; d < e.cfg.Dims; d++ {
		c[d] = (float64(k[d]) + 0.5) * e.opt.CellSide
	}
	return c
}

func decay(lambda float64, dt int64) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp(-lambda * float64(dt))
}

// Advance implements model.Engine. Departing points only leave the label
// map; arriving points feed the density mountain.
func (e *Engine) Advance(in, out []model.Point) {
	for _, p := range out {
		delete(e.assign, p.ID)
	}
	for _, p := range in {
		e.now++
		k := e.keyOf(p.Pos)
		c, ok := e.cells[k]
		if !ok {
			c = &cell{key: k, center: e.centerOf(k)}
			e.cells[k] = c
		}
		c.weight = c.weight*decay(e.opt.Lambda, e.now-c.last) + 1
		c.last = e.now
		e.assign[p.ID] = k
	}
	e.evict()
	e.rebuildTree()
	e.stats.Strides++
	e.stats.MemoryItems = int64(len(e.cells))
}

// evict drops cells whose decayed weight is negligible.
func (e *Engine) evict() {
	for k, c := range e.cells {
		if c.weight*decay(e.opt.Lambda, e.now-c.last) < 0.1 {
			delete(e.cells, k)
		}
	}
}

// rebuildTree recomputes every cell's dependent (nearest strictly denser
// cell, ties broken toward the earlier cell in density order) and extracts
// clusters by assigning each cell to its dependent's cluster unless its
// dependency distance exceeds DeltaCut, in which case it seeds a new
// cluster (it is a density peak).
func (e *Engine) rebuildTree() {
	type ranked struct {
		c *cell
		w float64
	}
	cellsByDensity := make([]ranked, 0, len(e.cells))
	for _, c := range e.cells {
		cellsByDensity = append(cellsByDensity, ranked{c, c.weight * decay(e.opt.Lambda, e.now-c.last)})
	}
	sort.Slice(cellsByDensity, func(i, j int) bool {
		if cellsByDensity[i].w != cellsByDensity[j].w {
			return cellsByDensity[i].w > cellsByDensity[j].w
		}
		return keyLess(cellsByDensity[i].c.key, cellsByDensity[j].c.key)
	})
	rank := make(map[grid.Key]int, len(cellsByDensity))
	for i, r := range cellsByDensity {
		rank[r.c.key] = i
	}

	// Dependency: nearest cell with strictly smaller rank (denser), searched
	// outward ring by ring, bounded by SearchMax.
	for i, r := range cellsByDensity {
		c := r.c
		c.hasDep = false
		c.depDist = math.Inf(1)
		if i == 0 {
			continue // global density peak
		}
		e.nearestDenser(c, rank, i)
	}

	// Cluster extraction in density order: peaks seed; others follow their
	// dependent.
	next := 0
	for _, r := range cellsByDensity {
		c := r.c
		switch {
		case r.w < e.opt.OutlierW:
			c.cid = model.NoCluster
		case !c.hasDep || c.depDist > e.opt.DeltaCut:
			next++
			c.cid = next
		default:
			c.cid = e.cells[c.dep].cid
		}
	}
}

// nearestDenser finds the nearest cell with smaller density rank than c,
// searching rings of cells outward from c's key.
func (e *Engine) nearestDenser(c *cell, rank map[grid.Key]int, myRank int) {
	dims := e.cfg.Dims
	best := math.Inf(1)
	var bestKey grid.Key
	found := false
	for radius := 1; radius <= e.opt.SearchMax; radius++ {
		// Enumerate the ring at L∞ distance radius.
		var walk func(d int, cur grid.Key, onEdge bool)
		walk = func(d int, cur grid.Key, onEdge bool) {
			if d == dims {
				if !onEdge {
					return
				}
				oc, ok := e.cells[cur]
				if !ok {
					return
				}
				if rank[cur] >= myRank {
					return
				}
				dist := geom.Dist(c.center, oc.center, dims)
				if dist < best {
					best, bestKey, found = dist, cur, true
				}
				return
			}
			for off := -radius; off <= radius; off++ {
				cur[d] = c.key[d] + int32(off)
				walk(d+1, cur, onEdge || off == -radius || off == radius)
			}
		}
		walk(0, grid.Key{}, false)
		if found {
			// One extra ring guards against a closer cell diagonally inside
			// the next ring; then stop.
			if radius+1 <= e.opt.SearchMax && best > float64(radius)*e.opt.CellSide {
				continue
			}
			break
		}
	}
	if found {
		c.hasDep = true
		c.dep = bestKey
		c.depDist = best
	}
}

func keyLess(a, b grid.Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Assignment implements model.Engine.
func (e *Engine) Assignment(id int64) (model.Assignment, bool) {
	k, ok := e.assign[id]
	if !ok {
		return model.Assignment{}, false
	}
	return e.assignmentOf(k), true
}

// Snapshot implements model.Engine.
func (e *Engine) Snapshot() map[int64]model.Assignment {
	out := make(map[int64]model.Assignment, len(e.assign))
	for id, k := range e.assign {
		out[id] = e.assignmentOf(k)
	}
	return out
}

func (e *Engine) assignmentOf(k grid.Key) model.Assignment {
	c, ok := e.cells[k]
	if !ok || c.cid == model.NoCluster {
		return model.Assignment{Label: model.Noise, ClusterID: model.NoCluster}
	}
	return model.Assignment{Label: model.Core, ClusterID: c.cid}
}

// Stats implements model.Engine.
func (e *Engine) Stats() model.Stats { return e.stats }

// ResetStats implements model.Engine.
func (e *Engine) ResetStats() { e.stats = model.Stats{} }

// Cells returns the number of live cluster-cells.
func (e *Engine) Cells() int { return len(e.cells) }

// String describes the engine configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("EDMStream(side=%g λ=%g δcut=%g)", e.opt.CellSide, e.opt.Lambda, e.opt.DeltaCut)
}
