// Package geom provides low-dimensional (2–4D) geometric primitives used by
// the spatial indexes and clustering engines: points, axis-aligned
// rectangles, Euclidean distances, and ball/rectangle predicates.
//
// Coordinates are stored in fixed-size arrays of MaxDims entries with an
// explicit dimension count, which keeps points and rectangle bounds free of
// per-object heap allocations on the hot search paths.
package geom

import (
	"fmt"
	"math"
)

// MaxDims is the largest dimensionality supported. The datasets evaluated in
// the DISC paper use 2 (DTG, COVID-19), 3 (GeoLife) and 4 (IRIS) dimensions.
const MaxDims = 4

// Vec is a coordinate vector. Only the first Dims(…) components of a Vec are
// meaningful; the remainder must be zero so that comparisons and hashing work.
type Vec [MaxDims]float64

// NewVec builds a Vec from a slice of coordinates. It panics if the slice has
// more than MaxDims entries; unfilled components stay zero.
func NewVec(coords ...float64) Vec {
	if len(coords) > MaxDims {
		panic(fmt.Sprintf("geom: %d coordinates exceed MaxDims=%d", len(coords), MaxDims))
	}
	var v Vec
	copy(v[:], coords)
	return v
}

// Dist2 returns the squared Euclidean distance between a and b over the first
// dims components. Squared distances avoid math.Sqrt on hot paths.
func Dist2(a, b Vec, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b over dims components.
func Dist(a, b Vec, dims int) float64 {
	return math.Sqrt(Dist2(a, b, dims))
}

// WithinEps reports whether a and b are within distance eps of each other.
func WithinEps(a, b Vec, dims int, eps float64) bool {
	return Dist2(a, b, dims) <= eps*eps
}

// Dist2Slab returns the squared Euclidean distance between c and the point
// stored in the first dims components of a packed coordinate slab. It is the
// inner kernel of batched leaf scans over struct-of-arrays node layouts:
// coords is a view into a contiguous float64 slab, so consecutive calls walk
// memory linearly instead of chasing per-entry rectangles.
func Dist2Slab(coords []float64, c Vec, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		d := coords[i] - c[i]
		s += d * d
	}
	return s
}

// VecFromSlab materializes a Vec from the first len(coords) components of a
// packed coordinate slab. len(coords) must not exceed MaxDims; the remaining
// components stay zero, preserving the Vec comparability contract.
func VecFromSlab(coords []float64) Vec {
	var v Vec
	copy(v[:], coords)
	return v
}

// Rect is an axis-aligned rectangle (hyper-box) given by its min and max
// corners. A Rect with Min[i] > Max[i] for the active dimensions is empty.
type Rect struct {
	Min, Max Vec
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Vec) Rect { return Rect{Min: p, Max: p} }

// BallRect returns the bounding rectangle of the ball centered at c with
// radius r, over dims dimensions.
func BallRect(c Vec, dims int, r float64) Rect {
	var rect Rect
	for i := 0; i < dims; i++ {
		rect.Min[i] = c[i] - r
		rect.Max[i] = c[i] + r
	}
	return rect
}

// Contains reports whether r contains point p over dims dimensions.
func (r Rect) Contains(p Vec, dims int) bool {
	for i := 0; i < dims; i++ {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether r fully contains s over dims dimensions.
func (r Rect) ContainsRect(s Rect, dims int) bool {
	for i := 0; i < dims; i++ {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap over dims dimensions.
func (r Rect) Intersects(s Rect, dims int) bool {
	for i := 0; i < dims; i++ {
		if r.Min[i] > s.Max[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Enlarged returns the smallest rectangle covering both r and s.
func (r Rect) Enlarged(s Rect, dims int) Rect {
	out := r
	for i := 0; i < dims; i++ {
		if s.Min[i] < out.Min[i] {
			out.Min[i] = s.Min[i]
		}
		if s.Max[i] > out.Max[i] {
			out.Max[i] = s.Max[i]
		}
	}
	return out
}

// Area returns the measure (area/volume) of r over dims dimensions.
// An empty rectangle has area 0.
func (r Rect) Area(dims int) float64 {
	a := 1.0
	for i := 0; i < dims; i++ {
		side := r.Max[i] - r.Min[i]
		if side < 0 {
			return 0
		}
		a *= side
	}
	return a
}

// Margin returns the sum of side lengths of r over dims dimensions.
func (r Rect) Margin(dims int) float64 {
	var m float64
	for i := 0; i < dims; i++ {
		if side := r.Max[i] - r.Min[i]; side > 0 {
			m += side
		}
	}
	return m
}

// EnlargementArea returns how much r's area grows when enlarged to cover s.
func (r Rect) EnlargementArea(s Rect, dims int) float64 {
	return r.Enlarged(s, dims).Area(dims) - r.Area(dims)
}

// MinDist2 returns the squared distance from point p to the nearest point of
// rectangle r (0 if p is inside r), over dims dimensions.
func (r Rect) MinDist2(p Vec, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		switch {
		case p[i] < r.Min[i]:
			d := r.Min[i] - p[i]
			s += d * d
		case p[i] > r.Max[i]:
			d := p[i] - r.Max[i]
			s += d * d
		}
	}
	return s
}

// MaxDist2 returns the squared distance from point p to the farthest point of
// rectangle r, over dims dimensions.
func (r Rect) MaxDist2(p Vec, dims int) float64 {
	var s float64
	for i := 0; i < dims; i++ {
		d1 := math.Abs(p[i] - r.Min[i])
		d2 := math.Abs(p[i] - r.Max[i])
		d := math.Max(d1, d2)
		s += d * d
	}
	return s
}

// IntersectsBall reports whether r intersects the ball centered at c with
// radius eps, over dims dimensions.
func (r Rect) IntersectsBall(c Vec, dims int, eps float64) bool {
	return r.MinDist2(c, dims) <= eps*eps
}

// InsideBall reports whether every point of r lies within the ball centered
// at c with radius eps, over dims dimensions.
func (r Rect) InsideBall(c Vec, dims int, eps float64) bool {
	return r.MaxDist2(c, dims) <= eps*eps
}
