package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVec(t *testing.T) {
	v := NewVec(1, 2, 3)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 || v[3] != 0 {
		t.Fatalf("NewVec(1,2,3) = %v", v)
	}
}

func TestNewVecPanicsBeyondMaxDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 5 coordinates")
		}
	}()
	NewVec(1, 2, 3, 4, 5)
}

func TestDist(t *testing.T) {
	a := NewVec(0, 0)
	b := NewVec(3, 4)
	if got := Dist(a, b, 2); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist2(a, b, 2); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	// Higher dims must be ignored when dims=2.
	c := NewVec(3, 4, 100, 100)
	if got := Dist(a, c, 2); got != 5 {
		t.Errorf("Dist with trailing dims = %v, want 5", got)
	}
}

func TestWithinEps(t *testing.T) {
	a, b := NewVec(0, 0), NewVec(1, 0)
	if !WithinEps(a, b, 2, 1.0) {
		t.Error("distance exactly eps must be within")
	}
	if WithinEps(a, b, 2, 0.999) {
		t.Error("distance beyond eps must not be within")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: NewVec(0, 0), Max: NewVec(2, 2)}
	for _, tc := range []struct {
		p    Vec
		want bool
	}{
		{NewVec(1, 1), true},
		{NewVec(0, 0), true},
		{NewVec(2, 2), true},
		{NewVec(2.001, 1), false},
		{NewVec(-0.001, 1), false},
	} {
		if got := r.Contains(tc.p, 2); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: NewVec(0, 0), Max: NewVec(2, 2)}
	b := Rect{Min: NewVec(2, 2), Max: NewVec(3, 3)} // touching corner
	c := Rect{Min: NewVec(2.1, 2.1), Max: NewVec(3, 3)}
	if !a.Intersects(b, 2) {
		t.Error("touching rectangles must intersect")
	}
	if a.Intersects(c, 2) {
		t.Error("disjoint rectangles must not intersect")
	}
	if !a.Intersects(a, 2) {
		t.Error("rect must intersect itself")
	}
}

func TestEnlargedAndArea(t *testing.T) {
	a := Rect{Min: NewVec(0, 0), Max: NewVec(1, 1)}
	b := Rect{Min: NewVec(2, 2), Max: NewVec(3, 3)}
	e := a.Enlarged(b, 2)
	want := Rect{Min: NewVec(0, 0), Max: NewVec(3, 3)}
	if e != want {
		t.Errorf("Enlarged = %+v, want %+v", e, want)
	}
	if e.Area(2) != 9 {
		t.Errorf("Area = %v, want 9", e.Area(2))
	}
	if got := a.EnlargementArea(b, 2); got != 8 {
		t.Errorf("EnlargementArea = %v, want 8", got)
	}
}

func TestMargin(t *testing.T) {
	r := Rect{Min: NewVec(0, 0, 0), Max: NewVec(1, 2, 3)}
	if got := r.Margin(3); got != 6 {
		t.Errorf("Margin = %v, want 6", got)
	}
}

func TestMinMaxDist2(t *testing.T) {
	r := Rect{Min: NewVec(1, 1), Max: NewVec(2, 2)}
	// Point inside.
	if got := r.MinDist2(NewVec(1.5, 1.5), 2); got != 0 {
		t.Errorf("MinDist2 inside = %v, want 0", got)
	}
	// Point left of the box.
	if got := r.MinDist2(NewVec(0, 1.5), 2); got != 1 {
		t.Errorf("MinDist2 = %v, want 1", got)
	}
	// Corner distance.
	if got := r.MinDist2(NewVec(0, 0), 2); got != 2 {
		t.Errorf("MinDist2 corner = %v, want 2", got)
	}
	if got := r.MaxDist2(NewVec(0, 0), 2); got != 8 {
		t.Errorf("MaxDist2 = %v, want 8", got)
	}
}

func TestBallRect(t *testing.T) {
	r := BallRect(NewVec(1, 1), 2, 0.5)
	want := Rect{Min: NewVec(0.5, 0.5), Max: NewVec(1.5, 1.5)}
	if r != want {
		t.Errorf("BallRect = %+v, want %+v", r, want)
	}
}

func TestBallPredicates(t *testing.T) {
	r := Rect{Min: NewVec(1, 1), Max: NewVec(2, 2)}
	if !r.IntersectsBall(NewVec(0, 1.5), 2, 1.0) {
		t.Error("ball touching rect edge must intersect")
	}
	if r.IntersectsBall(NewVec(0, 1.5), 2, 0.5) {
		t.Error("distant ball must not intersect")
	}
	if !r.InsideBall(NewVec(1.5, 1.5), 2, 1.0) {
		t.Error("rect with corners at dist sqrt(0.5) must be inside ball r=1")
	}
	if r.InsideBall(NewVec(1.5, 1.5), 2, 0.5) {
		t.Error("rect corners at dist ~0.707 must not be inside ball r=0.5")
	}
}

// Property: MinDist2(p) <= Dist2(p, q) <= MaxDist2(p) for any q inside r.
func TestMinMaxDistBracketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		var lo, hi, p Vec
		for i := 0; i < MaxDims; i++ {
			a, b := rng.Float64()*10-5, rng.Float64()*10-5
			lo[i], hi[i] = math.Min(a, b), math.Max(a, b)
			p[i] = rng.Float64()*20 - 10
		}
		r := Rect{Min: lo, Max: hi}
		var q Vec
		for i := 0; i < MaxDims; i++ {
			q[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		d := Dist2(p, q, MaxDims)
		const tol = 1e-9
		return r.MinDist2(p, MaxDims) <= d+tol && d <= r.MaxDist2(p, MaxDims)+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Enlarged covers both inputs and is the smallest such rect.
func TestEnlargedCoversProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		var lo, hi Vec
		for i := 0; i < MaxDims; i++ {
			a, b := rng.Float64()*10, rng.Float64()*10
			lo[i], hi[i] = math.Min(a, b), math.Max(a, b)
		}
		return Rect{Min: lo, Max: hi}
	}
	for i := 0; i < 500; i++ {
		a, b := randRect(), randRect()
		e := a.Enlarged(b, MaxDims)
		if !e.ContainsRect(a, MaxDims) || !e.ContainsRect(b, MaxDims) {
			t.Fatalf("Enlarged does not cover inputs: %+v %+v -> %+v", a, b, e)
		}
		for d := 0; d < MaxDims; d++ {
			if e.Min[d] != math.Min(a.Min[d], b.Min[d]) || e.Max[d] != math.Max(a.Max[d], b.Max[d]) {
				t.Fatalf("Enlarged not minimal in dim %d", d)
			}
		}
	}
}
