// Package dsu provides disjoint-set (union-find) structures used for
// cluster-id bookkeeping: merging clusters is a single Union instead of a
// scan over every member point, and MS-BFS thread groups union as their
// frontiers meet.
package dsu

// Int is a union-find over arbitrary non-negative int keys, backed by a map
// so the key space can grow and be garbage-collected wholesale. Find uses
// path halving; Union uses union by size.
type Int struct {
	parent map[int]int
	size   map[int]int
}

// NewInt returns an empty disjoint-set forest.
func NewInt() *Int {
	return &Int{parent: make(map[int]int), size: make(map[int]int)}
}

// Find returns the canonical representative of x, adding x as a singleton if
// it was never seen.
func (d *Int) Find(x int) int {
	p, ok := d.parent[x]
	if !ok {
		d.parent[x] = x
		d.size[x] = 1
		return x
	}
	for p != x {
		gp := d.parent[p]
		d.parent[x] = gp // path halving
		x, p = gp, d.parent[gp]
	}
	return x
}

// FindRO returns the canonical representative of x without modifying the
// forest: no path compression, and an unseen x is reported as its own
// representative without being added. Because it performs no writes, any
// number of FindRO calls may run concurrently as long as no Find/Union/Reset
// is in flight — this is what makes engine query paths (Snapshot,
// Assignment) genuinely read-only.
func (d *Int) FindRO(x int) int {
	for {
		p, ok := d.parent[x]
		if !ok || p == x {
			return x
		}
		x = p
	}
}

// Union merges the sets containing a and b and returns the surviving
// representative. The larger set's representative wins ties to keep trees
// shallow.
func (d *Int) Union(a, b int) int {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return ra
}

// UnionInto merges the set containing loser into the set containing winner,
// forcing winner's representative to survive. Used when a specific cluster
// id must remain the canonical label (e.g. the oldest cid in a merge).
func (d *Int) UnionInto(winner, loser int) int {
	rw, rl := d.Find(winner), d.Find(loser)
	if rw == rl {
		return rw
	}
	d.parent[rl] = rw
	d.size[rw] += d.size[rl]
	return rw
}

// Same reports whether a and b are in the same set.
func (d *Int) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// Len returns the number of keys ever seen.
func (d *Int) Len() int { return len(d.parent) }

// Reset drops all state.
func (d *Int) Reset() {
	d.parent = make(map[int]int)
	d.size = make(map[int]int)
}

// Dense is a union-find over the fixed key range [0, n), backed by slices.
// It is used for short-lived per-operation grouping (e.g. MS-BFS threads)
// where allocation-free resets matter.
type Dense struct {
	parent []int32
	rank   []int8
}

// NewDense returns a disjoint-set forest over keys 0..n-1, each a singleton.
func NewDense(n int) *Dense {
	d := &Dense{}
	d.Reset(n)
	return d
}

// Reset reinitializes the forest over keys 0..n-1, all singletons, reusing
// the backing storage when it is large enough. It lets one Dense value be
// pooled across short-lived instances of varying size without allocating in
// the steady state.
func (d *Dense) Reset(n int) {
	if cap(d.parent) < n {
		d.parent = make([]int32, n)
		d.rank = make([]int8, n)
	}
	d.parent = d.parent[:n]
	d.rank = d.rank[:n]
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
	}
}

// Find returns the representative of x with path halving.
func (d *Dense) Find(x int) int {
	for int(d.parent[x]) != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = int(d.parent[x])
	}
	return x
}

// Union merges the sets of a and b by rank and returns the representative.
func (d *Dense) Union(a, b int) int {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return ra
}

// Same reports whether a and b share a set.
func (d *Dense) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// Len returns the size of the key range.
func (d *Dense) Len() int { return len(d.parent) }
