package dsu

import (
	"math/rand"
	"testing"
)

func TestIntBasic(t *testing.T) {
	d := NewInt()
	if d.Find(5) != 5 {
		t.Fatal("fresh key must be its own representative")
	}
	d.Union(1, 2)
	d.Union(3, 4)
	if d.Same(1, 3) {
		t.Fatal("disjoint sets reported same")
	}
	d.Union(2, 3)
	if !d.Same(1, 4) {
		t.Fatal("transitively merged sets reported different")
	}
}

func TestIntUnionInto(t *testing.T) {
	d := NewInt()
	// Make loser's set much bigger so union-by-size would pick it.
	for i := 10; i < 20; i++ {
		d.Union(100, i)
	}
	got := d.UnionInto(7, 100)
	if got != d.Find(7) || d.Find(100) != d.Find(7) {
		t.Fatalf("UnionInto: representative %d, want Find(7)=%d", got, d.Find(7))
	}
	if d.Find(7) != 7 {
		t.Fatalf("winner's original representative must survive, got %d", d.Find(7))
	}
}

// TestIntFindRO checks the read-only Find agrees with the compressing one
// and performs no writes: it must not add unseen keys, and concurrent
// FindRO calls over a quiescent forest must be race-free.
func TestIntFindRO(t *testing.T) {
	d := NewInt()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		d.Union(rng.Intn(100), rng.Intn(100))
	}
	for x := 0; x < 100; x++ {
		if got, want := d.FindRO(x), d.Find(x); got != want {
			t.Fatalf("FindRO(%d) = %d, Find = %d", x, got, want)
		}
	}
	before := d.Len()
	if d.FindRO(10_000) != 10_000 {
		t.Fatal("unseen key must be its own representative")
	}
	if d.Len() != before {
		t.Fatalf("FindRO added a key: Len %d -> %d", before, d.Len())
	}

	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				d.FindRO(r.Intn(120))
			}
			done <- struct{}{}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestIntIdempotentUnion(t *testing.T) {
	d := NewInt()
	d.Union(1, 2)
	r1 := d.Find(1)
	r2 := d.Union(1, 2)
	if r1 != r2 {
		t.Fatal("repeated union changed the representative")
	}
}

func TestIntReset(t *testing.T) {
	d := NewInt()
	d.Union(1, 2)
	d.Reset()
	if d.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if d.Same(1, 2) {
		t.Fatal("sets survived Reset")
	}
}

func TestDenseBasic(t *testing.T) {
	d := NewDense(10)
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	d.Union(0, 9)
	d.Union(9, 5)
	if !d.Same(0, 5) {
		t.Fatal("union chain broken")
	}
	if d.Same(0, 1) {
		t.Fatal("unrelated keys reported same")
	}
}

// Property: union-find equivalence matches a brute-force labeling after a
// random sequence of unions.
func TestDenseMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200
	d := NewDense(n)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	relabel := func(from, to int) {
		for i := range labels {
			if labels[i] == from {
				labels[i] = to
			}
		}
	}
	for k := 0; k < 500; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		d.Union(a, b)
		relabel(labels[a], labels[b])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d.Same(i, j) != (labels[i] == labels[j]) {
				t.Fatalf("disagreement on (%d,%d)", i, j)
			}
		}
	}
}

func TestIntMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 100
	di := NewInt()
	dd := NewDense(n)
	for k := 0; k < 300; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		di.Union(a, b)
		dd.Union(a, b)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if di.Same(i, j) != dd.Same(i, j) {
				t.Fatalf("Int and Dense disagree on (%d,%d)", i, j)
			}
		}
	}
}
